// asdf_supervise — restart-on-exit supervisor for chaos/rejoin tests.
//
// Runs a command and restarts it whenever it exits uncleanly (crash,
// SIGKILL, nonzero status), with capped exponential backoff between
// restarts; a child that stays up past --healthy-after resets the
// backoff streak. A clean exit (status 0) ends supervision — that is
// how a daemon answering kShutdown terminates the pair.
//
//   asdf_supervise [--max-restarts=N] [--backoff-base=T]
//                  [--backoff-max=T] [--healthy-after=T]
//                  [--status-file=F] [--verbose] -- command args...
//
// SIGINT/SIGTERM are forwarded to the child and stop the restart
// loop. --status-file (re)writes "pid=<pid> restarts=<n>" at every
// spawn so tests can find the current incarnation.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "../examples/example_util.h"

namespace {

volatile sig_atomic_t g_stop = 0;
volatile pid_t g_child = -1;

void forwardSignal(int sig) {
  g_stop = 1;
  const pid_t child = g_child;
  if (child > 0) kill(child, sig);
}

double monotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void writeStatus(const std::string& path, pid_t pid, int restarts) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fprintf(f, "pid=%d restarts=%d\n", static_cast<int>(pid), restarts);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  using asdf::examples::flagDouble;
  using asdf::examples::flagInt;
  using asdf::examples::flagPresent;
  using asdf::examples::flagValue;

  int sep = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--") == 0) {
      sep = i;
      break;
    }
  }
  const int ownArgc = sep < 0 ? argc : sep;
  if (!asdf::examples::checkFlags(
          ownArgc, argv,
          {"max-restarts", "backoff-base", "backoff-max", "healthy-after",
           "status-file", "verbose"},
          "asdf_supervise [--max-restarts=N] [--backoff-base=T] "
          "[--backoff-max=T] [--healthy-after=T] [--status-file=F] "
          "[--verbose] -- command args...\n") ||
      sep < 0 || sep + 1 >= argc) {
    if (sep < 0 || sep + 1 >= argc) {
      std::fprintf(stderr,
                   "asdf_supervise: missing '-- command args...'\n");
    }
    return 2;
  }

  const long maxRestarts = flagInt(ownArgc, argv, "max-restarts", 100);
  const double backoffBase = flagDouble(ownArgc, argv, "backoff-base", 0.1);
  const double backoffMax = flagDouble(ownArgc, argv, "backoff-max", 5.0);
  const double healthyAfter =
      flagDouble(ownArgc, argv, "healthy-after", 5.0);
  const std::string statusFile = flagValue(ownArgc, argv, "status-file", "");
  const bool verbose = flagPresent(ownArgc, argv, "verbose");

  std::vector<char*> child;
  for (int i = sep + 1; i < argc; ++i) child.push_back(argv[i]);
  child.push_back(nullptr);

  std::signal(SIGINT, forwardSignal);
  std::signal(SIGTERM, forwardSignal);
  std::signal(SIGPIPE, SIG_IGN);

  int restarts = 0;
  int streak = 0;
  int lastStatus = 0;
  while (g_stop == 0) {
    const double started = monotonicSeconds();
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("asdf_supervise: fork");
      return 1;
    }
    if (pid == 0) {
      execvp(child[0], child.data());
      std::perror("asdf_supervise: exec");
      _exit(127);
    }
    g_child = pid;
    writeStatus(statusFile, pid, restarts);
    if (verbose) {
      std::fprintf(stderr, "asdf_supervise: spawned pid %d (restart %d)\n",
                   static_cast<int>(pid), restarts);
    }

    int status = 0;
    for (;;) {
      const pid_t r = waitpid(pid, &status, 0);
      if (r == pid) break;
      if (r < 0 && errno == EINTR) continue;  // signal forwarded above
      if (r < 0) {
        std::perror("asdf_supervise: waitpid");
        return 1;
      }
    }
    g_child = -1;
    lastStatus = status;
    const double ran = monotonicSeconds() - started;

    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      if (verbose) {
        std::fprintf(stderr, "asdf_supervise: clean exit after %.1f s\n",
                     ran);
      }
      return 0;
    }
    if (g_stop != 0) break;
    if (ran >= healthyAfter) streak = 0;
    if (++restarts > maxRestarts) {
      std::fprintf(stderr, "asdf_supervise: gave up after %d restarts\n",
                   restarts - 1);
      break;
    }
    const double backoff =
        std::min(backoffMax,
                 backoffBase * std::pow(2.0, std::min(streak, 20)));
    ++streak;
    if (verbose) {
      std::fprintf(stderr,
                   "asdf_supervise: child %s (%d), restarting in %.2f s\n",
                   WIFSIGNALED(status) ? "killed by signal" : "exited",
                   WIFSIGNALED(status) ? WTERMSIG(status)
                                       : WEXITSTATUS(status),
                   backoff);
    }
    const double until = monotonicSeconds() + backoff;
    while (g_stop == 0 && monotonicSeconds() < until) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  if (WIFEXITED(lastStatus)) return WEXITSTATUS(lastStatus);
  if (WIFSIGNALED(lastStatus)) return 128 + WTERMSIG(lastStatus);
  return 1;
}
