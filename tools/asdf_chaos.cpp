// asdf_chaos — standalone deterministic chaos proxy (DESIGN.md §13).
//
// Forwards 127.0.0.1:<listen> to an upstream daemon while applying the
// seeded toxic schedule of net::ChaosProxy, for driving real daemons
// through pathological networks in CI:
//
//   asdf_chaos --listen=P --upstream=H:P [--seed=N]
//              [--latency=T] [--jitter=T] [--rate=BPS] [--slice=N]
//              [--coalesce=N] [--corrupt-per-kb=X] [--reset-after=N]
//              [--partition=A:B[,A:B...]] [--duration=T]
//              [--print-schedule=CONNS:BYTES] [--verbose]
//
// The toxics apply in both directions. Each --partition window A:B
// (seconds since start) becomes a blackhole phase: nothing moves and
// new dials stall until B. On exit the realized chaos event log is
// printed — byte offsets and connection ordinals only, no wall-clock
// fields — so two runs with the same seed against the same workload
// print the same log. --print-schedule prints the pure-function
// schedule fingerprint (phase timeline + every corruption offset for
// the first CONNS connections below BYTES) without proxying anything.
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "../examples/example_util.h"
#include "common/strings.h"
#include "net/chaos_proxy.h"
#include "net/fanout_collector.h"

namespace {

asdf::net::EventLoop* g_loop = nullptr;

void handleSignal(int) {
  if (g_loop != nullptr) g_loop->stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace asdf;
  using examples::flagDouble;
  using examples::flagInt;
  using examples::flagPresent;
  using examples::flagValue;

  if (!examples::checkFlags(
          argc, argv,
          {"listen", "upstream", "seed", "latency", "jitter", "rate",
           "slice", "coalesce", "corrupt-per-kb", "reset-after",
           "partition", "duration", "print-schedule", "verbose"},
          "asdf_chaos --listen=P --upstream=H:P [--seed=N] [--latency=T] "
          "[--jitter=T] [--rate=BPS] [--slice=N] [--coalesce=N] "
          "[--corrupt-per-kb=X] [--reset-after=N] [--partition=A:B,...] "
          "[--duration=T] [--print-schedule=CONNS:BYTES] [--verbose]\n")) {
    return 2;
  }

  std::signal(SIGPIPE, SIG_IGN);

  net::ChaosOptions opts;
  opts.listenPort =
      static_cast<std::uint16_t>(flagInt(argc, argv, "listen", 0));
  opts.seed = static_cast<std::uint64_t>(flagInt(argc, argv, "seed", 1));
  const std::string upstream = flagValue(argc, argv, "upstream", "");
  if (upstream.empty()) {
    std::fprintf(stderr, "asdf_chaos: --upstream is required\n");
    return 2;
  }
  try {
    net::parseEndpoint(upstream, opts.upstreamHost, opts.upstreamPort);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "asdf_chaos: %s\n", e.what());
    return 2;
  }

  net::ChaosToxics toxics;
  toxics.latencySeconds = flagDouble(argc, argv, "latency", 0.0);
  toxics.jitterSeconds = flagDouble(argc, argv, "jitter", 0.0);
  toxics.rateBytesPerSec = flagDouble(argc, argv, "rate", 0.0);
  toxics.sliceBytes =
      static_cast<std::size_t>(flagInt(argc, argv, "slice", 0));
  toxics.coalesceBytes =
      static_cast<std::size_t>(flagInt(argc, argv, "coalesce", 0));
  toxics.corruptPerKb = flagDouble(argc, argv, "corrupt-per-kb", 0.0);
  toxics.resetAfterBytes =
      static_cast<std::uint64_t>(flagInt(argc, argv, "reset-after", 0));

  net::ChaosPhase base;
  base.up = toxics;
  base.down = toxics;
  opts.phases.push_back(base);

  // Each partition window becomes blackhole-on / blackhole-off phases
  // spliced into the timeline (windows are given in order).
  const std::string partitions = flagValue(argc, argv, "partition", "");
  if (!partitions.empty()) {
    for (const std::string& window : split(partitions, ',')) {
      const std::size_t colon = window.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "asdf_chaos: bad --partition window '%s'\n",
                     window.c_str());
        return 2;
      }
      const double from = std::atof(window.substr(0, colon).c_str());
      const double to = std::atof(window.substr(colon + 1).c_str());
      if (to <= from || from < opts.phases.back().startSeconds) {
        std::fprintf(stderr, "asdf_chaos: bad --partition window '%s'\n",
                     window.c_str());
        return 2;
      }
      net::ChaosPhase dark = base;
      dark.startSeconds = from;
      dark.blackhole = true;
      net::ChaosPhase light = base;
      light.startSeconds = to;
      opts.phases.push_back(dark);
      opts.phases.push_back(light);
    }
  }

  const std::string printSchedule =
      flagValue(argc, argv, "print-schedule", "");
  const double duration = flagDouble(argc, argv, "duration", 0.0);

  try {
    net::EventLoop loop;
    net::ChaosProxy proxy(loop, opts);

    if (!printSchedule.empty()) {
      std::uint64_t conns = 2, horizon = 4096;
      const std::size_t colon = printSchedule.find(':');
      if (colon != std::string::npos) {
        conns = std::strtoull(printSchedule.c_str(), nullptr, 10);
        horizon =
            std::strtoull(printSchedule.c_str() + colon + 1, nullptr, 10);
      }
      std::fputs(proxy.describeSchedule(conns, horizon).c_str(), stdout);
      return 0;
    }

    g_loop = &loop;
    std::signal(SIGINT, handleSignal);
    std::signal(SIGTERM, handleSignal);
    if (duration > 0.0) {
      loop.addTimer(duration, [&loop] { loop.stop(); });
    }
    std::printf("asdf_chaos: 127.0.0.1:%u -> %s (seed %llu, %zu phases)\n",
                static_cast<unsigned>(proxy.port()), upstream.c_str(),
                static_cast<unsigned long long>(opts.seed),
                opts.phases.size());
    std::fflush(stdout);
    loop.run();

    std::printf("asdf_chaos: %ld connections, %llu up / %llu down bytes, "
                "%ld corrupted, %ld resets\n",
                proxy.accepted(),
                static_cast<unsigned long long>(proxy.relayedBytes(0)),
                static_cast<unsigned long long>(proxy.relayedBytes(1)),
                proxy.corruptedBytes(), proxy.resets());
    std::printf("chaos event log:\n");
    for (const net::ChaosEvent& ev : proxy.events()) {
      std::printf("  %s\n", ev.describe().c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "asdf_chaos: %s\n", e.what());
    return 1;
  }
  return 0;
}
