// asdf_archive — flight-recorder archive inspector (DESIGN.md §11).
//
// Usage: asdf_archive <command> <dir> [flags]
//
//   info <dir> [--brief]       run parameters, segments, record counts.
//                              --brief prints one parseable line
//                              (records=N last_now=T) for scripts that
//                              poll a recording in progress.
//   verify <dir>               full integrity check: every frame CRC,
//                              footer indexes, trailer fields. Exits
//                              nonzero on any corruption; tolerates the
//                              torn tail of a crashed recorder.
//   cat <dir> [--kind=K]       one line per record
//       [--node=N] [--limit=N]
//   trim <dir> --out=DIR       copy records in [--from, --to] (plus
//       [--from=T] [--to=T]    meta + truth) into a fresh archive
//   replay <dir> [--threads=N] re-run the analysis pipeline from the
//       [--require-localized]  archive: retrains the model from the
//                              archived parameters, replays every
//                              collection round through the
//                              fault-tolerant client, and prints the
//                              same report live_fingerpoint prints.
//                              Alarms reproduce the recording run
//                              byte-identically.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/strings.h"
#include "archive/collector.h"
#include "archive/reader.h"
#include "examples/example_util.h"
#include "faults/faults.h"
#include "harness/experiment.h"
#include "modules/modules.h"

namespace {

using namespace asdf;
using examples::flagDouble;
using examples::flagInt;
using examples::flagPresent;
using examples::flagValue;

int usage() {
  std::fprintf(stderr,
               "usage: asdf_archive <info|verify|cat|trim|replay> <dir> "
               "[flags]\n");
  return 2;
}

void printMeta(const archive::ArchiveMeta& meta) {
  std::printf("  source=%s seed=%llu slaves=%d duration=%.0f\n",
              meta.source.c_str(),
              static_cast<unsigned long long>(meta.seed), meta.slaves,
              meta.duration);
  std::printf("  train: %.0f s (warmup %.0f s), %d centroids\n",
              meta.trainDuration, meta.trainWarmup, meta.centroids);
  std::printf("  fault: %s on slave %d at %.0f s\n",
              faults::faultName(
                  static_cast<faults::FaultType>(meta.faultType)),
              meta.faultNode, meta.faultStart);
}

int cmdInfo(const std::string& dir, int argc, char** argv) {
  archive::ArchiveReader reader(dir);
  if (flagPresent(argc, argv, "brief")) {
    std::printf("records=%zu last_now=%.3f torn_tail_bytes=%zu\n",
                reader.records().size(), reader.lastNow(),
                reader.tornTailBytes());
    return 0;
  }
  std::printf("archive %s\n", dir.c_str());
  printMeta(reader.meta());
  std::printf("  %zu segments, %zu records, now [%.3f, %.3f]\n",
              reader.segments().size(), reader.records().size(),
              reader.firstNow(), reader.lastNow());
  for (const archive::SegmentInfo& seg : reader.segments()) {
    std::printf("  %-24s %s %8lld bytes %7lld records [%.3f, %.3f]%s\n",
                seg.path.substr(seg.path.find_last_of('/') + 1).c_str(),
                seg.sealed ? "sealed" : "open  ",
                static_cast<long long>(seg.fileBytes),
                static_cast<long long>(seg.records), seg.firstNow,
                seg.lastNow,
                seg.tornTailBytes > 0
                    ? strformat(" (torn tail %zu B)", seg.tornTailBytes)
                          .c_str()
                    : "");
  }
  if (reader.truth().has_value()) {
    std::printf("  truth: slave index %d, fault [%.0f, %.0f], %.0f s run\n",
                reader.truth()->slaveIndex, reader.truth()->faultStart,
                reader.truth()->faultEnd, reader.truth()->simulatedSeconds);
  } else {
    std::printf("  truth: absent (recorder did not shut down cleanly)\n");
  }
  return 0;
}

int cmdVerify(const std::string& dir) {
  const archive::ArchiveReader::VerifyResult result =
      archive::ArchiveReader::verify(dir);
  if (result.ok) {
    std::printf("OK: %lld records verified (%zu torn tail bytes)\n",
                static_cast<long long>(result.recordsVerified),
                result.tornTailBytes);
    return 0;
  }
  for (const std::string& err : result.errors) {
    std::fprintf(stderr, "CORRUPT: %s\n", err.c_str());
  }
  return 1;
}

int cmdCat(const std::string& dir, int argc, char** argv) {
  archive::ArchiveReader reader(dir);
  const std::string kindFilter = flagValue(argc, argv, "kind", "");
  const long nodeFilter = flagInt(argc, argv, "node", -1);
  const long limit = flagInt(argc, argv, "limit", -1);
  long printed = 0;
  for (const archive::SampleRecord& rec : reader.records()) {
    if (!kindFilter.empty() &&
        kindFilter != rpc::collectKindName(rec.kind)) {
      continue;
    }
    if (nodeFilter >= 0 && rec.node != static_cast<NodeId>(nodeFilter)) {
      continue;
    }
    std::printf("%10.3f %-6s node=%-3d seq=%-6lld attempts=%d %s %zu B\n",
                rec.now, rpc::collectKindName(rec.kind), rec.node,
                static_cast<long long>(rec.seq), rec.attempts,
                rec.ok ? "ok  " : "fail", rec.payload.size());
    if (limit >= 0 && ++printed >= limit) break;
  }
  return 0;
}

int cmdTrim(const std::string& dir, int argc, char** argv) {
  const std::string out = flagValue(argc, argv, "out", "");
  if (out.empty()) {
    std::fprintf(stderr, "asdf_archive trim: --out=DIR is required\n");
    return 2;
  }
  const double from = flagDouble(argc, argv, "from", 0.0);
  const double to = flagDouble(argc, argv, "to", 1.0e18);
  const std::int64_t kept = archive::trimArchive(dir, out, from, to);
  std::printf("trimmed %s -> %s: kept %lld records in [%.3f, %.3f]\n",
              dir.c_str(), out.c_str(), static_cast<long long>(kept), from,
              to);
  return 0;
}

int cmdReplay(const std::string& dir, int argc, char** argv) {
  modules::registerBuiltinModules();

  archive::ArchiveReader probe(dir);
  const archive::ArchiveMeta& meta = probe.meta();

  harness::ExperimentSpec spec;
  spec.transport = harness::TransportMode::kReplay;
  spec.archiveDir = dir;
  spec.seed = meta.seed;
  spec.slaves = meta.slaves;
  // Durations stamped by harness recorders; daemon-side archives
  // (rpcd-*) have no run plan, so fall back to the archived time range
  // and the stock training regimen.
  spec.duration = meta.duration > 0 ? meta.duration : probe.lastNow();
  spec.trainDuration = meta.trainDuration > 0 ? meta.trainDuration : 300.0;
  spec.trainWarmup = meta.trainWarmup > 0 ? meta.trainWarmup : 90.0;
  spec.centroids = meta.centroids > 0 ? meta.centroids : 8;
  spec.mixChangeTime = meta.mixChangeTime;
  spec.fault.type = static_cast<faults::FaultType>(meta.faultType);
  spec.fault.node = meta.faultNode;
  spec.fault.startTime = meta.faultStart;
  spec.fault.endTime = meta.faultEnd;
  spec.threads = static_cast<int>(flagInt(argc, argv, "threads", 1));
  spec.duration = flagDouble(argc, argv, "duration", spec.duration);
  spec.trainDuration =
      flagDouble(argc, argv, "train-duration", spec.trainDuration);
  spec.pipeline.quietPrint = !flagPresent(argc, argv, "verbose");

  std::printf("replaying %s\n", dir.c_str());
  printMeta(meta);
  std::printf("training black-box model (fault-free %.0f s sim run)...\n",
              spec.trainDuration);
  const analysis::BlackBoxModel model = harness::trainModel(spec);

  std::printf("replaying %zu archived records over %.0f s...\n",
              probe.records().size(), spec.duration);
  const harness::ExperimentResult result =
      harness::runExperiment(spec, model);
  std::printf("  rpc rounds %ld (%ld retries, %ld failed)\n",
              result.rpcRounds, result.rpcRetries, result.rpcFailedRounds);
  std::printf("  alarm windows: %zu black-box, %zu white-box\n",
              result.blackBox.size(), result.whiteBox.size());

  const harness::ExperimentSummary summary = harness::summarize(result);
  auto show = [](const char* name, const harness::ApproachSummary& s) {
    std::printf("  %-10s balanced accuracy %5.1f%%  latency %s\n", name,
                s.eval.balancedAccuracyPct(),
                s.latencySeconds < 0
                    ? "n/a"
                    : strformat("%.0f s", s.latencySeconds).c_str());
  };
  std::printf("results:\n");
  show("black-box", summary.blackBox);
  show("white-box", summary.whiteBox);
  show("combined", summary.combined);

  for (const harness::RpcChannelReport& ch : result.rpcChannels) {
    std::printf("  channel %-10s %ld calls (%ld failed), %.2f KB/s/node\n",
                ch.name.c_str(), ch.calls, ch.failedCalls,
                ch.perIterationKbPerSec);
  }

  const bool localized = summary.combined.latencySeconds >= 0;
  std::printf(localized ? "fault localized from archive (latency %.0f s)\n"
                        : "fault not localized from archive\n",
              summary.combined.latencySeconds);
  if (flagPresent(argc, argv, "require-localized") && !localized) {
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string dir = argv[2];
  try {
    if (command == "info") return cmdInfo(dir, argc, argv);
    if (command == "verify") return cmdVerify(dir);
    if (command == "cat") return cmdCat(dir, argc, argv);
    if (command == "trim") return cmdTrim(dir, argc, argv);
    if (command == "replay") return cmdReplay(dir, argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "asdf_archive %s: %s\n", command.c_str(), e.what());
    return 1;
  }
  return usage();
}
