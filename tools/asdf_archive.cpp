// asdf_archive — flight-recorder archive inspector (DESIGN.md §11, §14).
//
// Usage: asdf_archive <command> <dir> [flags]
//
//   info <dir> [--brief]       run parameters, segments, record counts,
//                              compaction state. --brief prints one
//                              parseable line (records=N last_now=T)
//                              for scripts that poll a recording.
//   verify <dir>               full integrity check: every frame CRC,
//                              footer indexes, trailer fields, plus
//                              every compacted tsdb file. Prints one
//                              line per segment (records, checkpoints,
//                              time range). Exits nonzero on any
//                              corruption; tolerates the torn tail of
//                              a crashed recorder.
//   cat <dir> [--kind=K]       one line per record
//       [--node=N] [--limit=N]
//   trim <dir> --out=DIR       copy records in [--from, --to] (plus
//       [--from=T] [--to=T]    meta + truth) into a fresh archive
//   compact <dir> [--force]    build/refresh the queryable tsdb store:
//                              every sealed segment gets a column-
//                              oriented tsdb/seg-N.astd with raw and
//                              downsampled chunks. Raw segments are
//                              never modified; replay stays
//                              byte-identical.
//   query <dir> --node=N       time-ranged scan of one (node, metric)
//       --metric=NAME          series. --resolution=raw|10s|1m|10m
//       --from=T --to=T        (default raw); rollups print min, max,
//       [--resolution=R]       mean, count per bucket. --csv emits
//       [--csv]                machine-readable rows instead.
//   replay <dir> [--threads=N] re-run the analysis pipeline from the
//       [--require-localized]  archive: retrains the model from the
//                              archived parameters, replays every
//                              collection round through the
//                              fault-tolerant client, and prints the
//                              same report live_fingerpoint prints.
//                              Alarms reproduce the recording run
//                              byte-identically.
//
// Every command validates its flags strictly: a mistyped or unknown
// option exits 2 instead of silently falling back to a default.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/strings.h"
#include "archive/collector.h"
#include "archive/reader.h"
#include "examples/example_util.h"
#include "faults/faults.h"
#include "harness/experiment.h"
#include "modules/modules.h"
#include "tsdb/compactor.h"
#include "tsdb/store.h"

namespace {

using namespace asdf;
using examples::checkFlags;
using examples::flagDouble;
using examples::flagInt;
using examples::flagPresent;
using examples::flagValue;

int usage() {
  std::fprintf(stderr,
               "usage: asdf_archive <info|verify|cat|trim|compact|query|"
               "replay> <dir> [flags]\n");
  return 2;
}

void printMeta(const archive::ArchiveMeta& meta) {
  std::printf("  source=%s seed=%llu slaves=%d duration=%.0f\n",
              meta.source.c_str(),
              static_cast<unsigned long long>(meta.seed), meta.slaves,
              meta.duration);
  std::printf("  train: %.0f s (warmup %.0f s), %d centroids\n",
              meta.trainDuration, meta.trainWarmup, meta.centroids);
  std::printf("  fault: %s on slave %d at %.0f s\n",
              faults::faultName(
                  static_cast<faults::FaultType>(meta.faultType)),
              meta.faultNode, meta.faultStart);
}

void printSegmentLine(const archive::SegmentInfo& seg) {
  std::printf(
      "  %-24s %s v%u %8lld bytes %7lld records %3lld checkpoints "
      "[%.3f, %.3f]%s\n",
      seg.path.substr(seg.path.find_last_of('/') + 1).c_str(),
      seg.sealed ? "sealed" : "open  ", seg.version,
      static_cast<long long>(seg.fileBytes),
      static_cast<long long>(seg.records),
      static_cast<long long>(seg.checkpoints), seg.firstNow, seg.lastNow,
      seg.tornTailBytes > 0
          ? strformat(" (torn tail %zu B)", seg.tornTailBytes).c_str()
          : "");
}

int cmdInfo(const std::string& dir, int argc, char** argv) {
  archive::ArchiveReader reader(dir);
  if (flagPresent(argc, argv, "brief")) {
    std::printf("records=%zu last_now=%.3f torn_tail_bytes=%zu\n",
                reader.records().size(), reader.lastNow(),
                reader.tornTailBytes());
    return 0;
  }
  std::printf("archive %s\n", dir.c_str());
  printMeta(reader.meta());
  std::printf("  %zu segments, %zu records, now [%.3f, %.3f]\n",
              reader.segments().size(), reader.records().size(),
              reader.firstNow(), reader.lastNow());
  for (const archive::SegmentInfo& seg : reader.segments()) {
    printSegmentLine(seg);
  }
  if (reader.truth().has_value()) {
    std::printf("  truth: slave index %d, fault [%.0f, %.0f], %.0f s run\n",
                reader.truth()->slaveIndex, reader.truth()->faultStart,
                reader.truth()->faultEnd, reader.truth()->simulatedSeconds);
  } else {
    std::printf("  truth: absent (recorder did not shut down cleanly)\n");
  }
  const tsdb::StoreStats stats = tsdb::Store(dir).stats();
  if (stats.compactedSegments > 0) {
    std::printf("  tsdb: %lld/%lld sealed segments compacted, %lld points, "
                "%lld bytes, now [%.3f, %.3f]%s\n",
                static_cast<long long>(stats.compactedSegments),
                static_cast<long long>(stats.sealedSegments),
                static_cast<long long>(stats.compactedPoints),
                static_cast<long long>(stats.tsdbBytes), stats.firstNow,
                stats.lastNow,
                stats.staleCompactions > 0
                    ? strformat(" (%lld stale)",
                                static_cast<long long>(
                                    stats.staleCompactions))
                          .c_str()
                    : "");
  } else {
    std::printf("  tsdb: not compacted (run `asdf_archive compact %s`)\n",
                dir.c_str());
  }
  return 0;
}

int cmdVerify(const std::string& dir) {
  const archive::ArchiveReader::VerifyResult result =
      archive::ArchiveReader::verify(dir);
  int rc = 0;
  if (result.ok) {
    for (const archive::SegmentInfo& seg : result.segments) {
      printSegmentLine(seg);
    }
    std::printf("OK: %lld records verified (%zu torn tail bytes)\n",
                static_cast<long long>(result.recordsVerified),
                result.tornTailBytes);
  } else {
    for (const std::string& err : result.errors) {
      std::fprintf(stderr, "CORRUPT: %s\n", err.c_str());
    }
    rc = 1;
  }
  const tsdb::TsdbVerifyResult tv = tsdb::verifyTsdb(dir);
  if (tv.ok) {
    if (tv.files > 0) {
      std::printf("tsdb OK: %lld compacted files, %lld chunks verified\n",
                  static_cast<long long>(tv.files),
                  static_cast<long long>(tv.chunks));
    }
  } else {
    for (const std::string& err : tv.errors) {
      std::fprintf(stderr, "CORRUPT: %s\n", err.c_str());
    }
    rc = 1;
  }
  return rc;
}

int cmdCat(const std::string& dir, int argc, char** argv) {
  archive::ArchiveReader reader(dir);
  const std::string kindFilter = flagValue(argc, argv, "kind", "");
  const long nodeFilter = flagInt(argc, argv, "node", -1);
  const long limit = flagInt(argc, argv, "limit", -1);
  long printed = 0;
  for (const archive::SampleRecord& rec : reader.records()) {
    if (!kindFilter.empty() &&
        kindFilter != rpc::collectKindName(rec.kind)) {
      continue;
    }
    if (nodeFilter >= 0 && rec.node != static_cast<NodeId>(nodeFilter)) {
      continue;
    }
    std::printf("%10.3f %-6s node=%-3d seq=%-6lld attempts=%d %s %zu B\n",
                rec.now, rpc::collectKindName(rec.kind), rec.node,
                static_cast<long long>(rec.seq), rec.attempts,
                rec.ok ? "ok  " : "fail", rec.payload.size());
    if (limit >= 0 && ++printed >= limit) break;
  }
  return 0;
}

int cmdTrim(const std::string& dir, int argc, char** argv) {
  const std::string out = flagValue(argc, argv, "out", "");
  if (out.empty()) {
    std::fprintf(stderr, "asdf_archive trim: --out=DIR is required\n");
    return 2;
  }
  const double from = flagDouble(argc, argv, "from", 0.0);
  const double to = flagDouble(argc, argv, "to", 1.0e18);
  const std::int64_t kept = archive::trimArchive(dir, out, from, to);
  std::printf("trimmed %s -> %s: kept %lld records in [%.3f, %.3f]\n",
              dir.c_str(), out.c_str(), static_cast<long long>(kept), from,
              to);
  return 0;
}

int cmdCompact(const std::string& dir, int argc, char** argv) {
  const bool force = flagPresent(argc, argv, "force");
  const std::vector<tsdb::CompactResult> results =
      tsdb::compactArchive(dir, force);
  std::int64_t built = 0;
  for (const tsdb::CompactResult& r : results) {
    if (r.skipped) {
      std::printf("  %-24s up to date (%lld bytes)\n",
                  r.path.substr(r.path.find_last_of('/') + 1).c_str(),
                  static_cast<long long>(r.fileBytes));
      continue;
    }
    ++built;
    std::printf("  %-24s %lld points, %lld chunks, %lld bytes\n",
                r.path.substr(r.path.find_last_of('/') + 1).c_str(),
                static_cast<long long>(r.rawPoints),
                static_cast<long long>(r.chunks),
                static_cast<long long>(r.fileBytes));
  }
  std::printf("compacted %lld/%zu sealed segments\n",
              static_cast<long long>(built), results.size());
  return 0;
}

int cmdQuery(const std::string& dir, int argc, char** argv) {
  tsdb::ScanOptions opts;
  const long node = flagInt(argc, argv, "node", -1);
  opts.metric = flagValue(argc, argv, "metric", "");
  if (node < 0 || opts.metric.empty() ||
      !flagPresent(argc, argv, "from") || !flagPresent(argc, argv, "to")) {
    std::fprintf(stderr,
                 "asdf_archive query: --node, --metric, --from and --to "
                 "are required\n");
    return 2;
  }
  opts.node = static_cast<NodeId>(node);
  opts.from = flagDouble(argc, argv, "from", 0.0);
  opts.to = flagDouble(argc, argv, "to", 0.0);
  opts.resolution =
      tsdb::resolutionFromName(flagValue(argc, argv, "resolution", "raw"));
  const bool csv = flagPresent(argc, argv, "csv");

  const tsdb::Store store(dir);
  const tsdb::ScanResult result = store.scan(opts);

  if (opts.resolution == tsdb::Resolution::kRaw) {
    if (csv) {
      std::printf("time,value\n");
      for (const tsdb::RawPoint& p : result.points) {
        std::printf("%.3f,%.17g\n", p.t, p.v);
      }
    } else {
      std::printf("node %d %s [%.3f, %.3f] raw: %zu points\n", opts.node,
                  opts.metric.c_str(), opts.from, opts.to,
                  result.points.size());
      for (const tsdb::RawPoint& p : result.points) {
        std::printf("%12.3f  %.6f\n", p.t, p.v);
      }
    }
  } else {
    const std::uint32_t level =
        static_cast<std::uint32_t>(opts.resolution);
    if (csv) {
      std::printf("bucket_start,min,max,mean,count\n");
      for (const tsdb::Bucket& b : result.buckets) {
        std::printf("%.3f,%.17g,%.17g,%.17g,%lld\n", b.startTime(level),
                    b.min, b.max, b.mean(),
                    static_cast<long long>(b.count));
      }
    } else {
      std::printf("node %d %s [%.3f, %.3f] %s: %zu buckets\n", opts.node,
                  opts.metric.c_str(), opts.from, opts.to,
                  tsdb::resolutionName(opts.resolution),
                  result.buckets.size());
      std::printf("%12s %12s %12s %12s %8s\n", "bucket", "min", "max",
                  "mean", "count");
      for (const tsdb::Bucket& b : result.buckets) {
        std::printf("%12.3f %12.6f %12.6f %12.6f %8lld\n",
                    b.startTime(level), b.min, b.max, b.mean(),
                    static_cast<long long>(b.count));
      }
    }
  }
  if (!csv) {
    std::printf(
        "scanned %lld segments: %lld compacted, %lld raw walks "
        "(%lld checkpoint seeks), %lld skipped by index\n",
        static_cast<long long>(result.segmentsVisited),
        static_cast<long long>(result.compactedScans),
        static_cast<long long>(result.rawScans),
        static_cast<long long>(result.checkpointSeeks),
        static_cast<long long>(result.segmentsSkipped));
  }
  return 0;
}

int cmdReplay(const std::string& dir, int argc, char** argv) {
  modules::registerBuiltinModules();

  archive::ArchiveReader probe(dir);
  const archive::ArchiveMeta& meta = probe.meta();

  harness::ExperimentSpec spec;
  spec.transport = harness::TransportMode::kReplay;
  spec.archiveDir = dir;
  spec.seed = meta.seed;
  spec.slaves = meta.slaves;
  // Durations stamped by harness recorders; daemon-side archives
  // (rpcd-*) have no run plan, so fall back to the archived time range
  // and the stock training regimen.
  spec.duration = meta.duration > 0 ? meta.duration : probe.lastNow();
  spec.trainDuration = meta.trainDuration > 0 ? meta.trainDuration : 300.0;
  spec.trainWarmup = meta.trainWarmup > 0 ? meta.trainWarmup : 90.0;
  spec.centroids = meta.centroids > 0 ? meta.centroids : 8;
  spec.mixChangeTime = meta.mixChangeTime;
  spec.fault.type = static_cast<faults::FaultType>(meta.faultType);
  spec.fault.node = meta.faultNode;
  spec.fault.startTime = meta.faultStart;
  spec.fault.endTime = meta.faultEnd;
  spec.threads = static_cast<int>(flagInt(argc, argv, "threads", 1));
  spec.duration = flagDouble(argc, argv, "duration", spec.duration);
  spec.trainDuration =
      flagDouble(argc, argv, "train-duration", spec.trainDuration);
  spec.pipeline.quietPrint = !flagPresent(argc, argv, "verbose");

  std::printf("replaying %s\n", dir.c_str());
  printMeta(meta);
  std::printf("training black-box model (fault-free %.0f s sim run)...\n",
              spec.trainDuration);
  const analysis::BlackBoxModel model = harness::trainModel(spec);

  std::printf("replaying %zu archived records over %.0f s...\n",
              probe.records().size(), spec.duration);
  const harness::ExperimentResult result =
      harness::runExperiment(spec, model);
  std::printf("  rpc rounds %ld (%ld retries, %ld failed)\n",
              result.rpcRounds, result.rpcRetries, result.rpcFailedRounds);
  std::printf("  alarm windows: %zu black-box, %zu white-box\n",
              result.blackBox.size(), result.whiteBox.size());

  const harness::ExperimentSummary summary = harness::summarize(result);
  auto show = [](const char* name, const harness::ApproachSummary& s) {
    std::printf("  %-10s balanced accuracy %5.1f%%  latency %s\n", name,
                s.eval.balancedAccuracyPct(),
                s.latencySeconds < 0
                    ? "n/a"
                    : strformat("%.0f s", s.latencySeconds).c_str());
  };
  std::printf("results:\n");
  show("black-box", summary.blackBox);
  show("white-box", summary.whiteBox);
  show("combined", summary.combined);

  for (const harness::RpcChannelReport& ch : result.rpcChannels) {
    std::printf("  channel %-10s %ld calls (%ld failed), %.2f KB/s/node\n",
                ch.name.c_str(), ch.calls, ch.failedCalls,
                ch.perIterationKbPerSec);
  }

  const bool localized = summary.combined.latencySeconds >= 0;
  std::printf(localized ? "fault localized from archive (latency %.0f s)\n"
                        : "fault not localized from archive\n",
              summary.combined.latencySeconds);
  if (flagPresent(argc, argv, "require-localized") && !localized) {
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string dir = argv[2];
  // Flags follow "<command> <dir>": validate them strictly, with the
  // dir positional already consumed (argv+2's element 0).
  const int flagc = argc - 2;
  char** flagv = argv + 2;
  const std::string usageLine =
      "asdf_archive " + command + " <dir> [flags]\n";
  try {
    if (command == "info") {
      if (!checkFlags(flagc, flagv, {"brief"}, usageLine)) return 2;
      return cmdInfo(dir, flagc, flagv);
    }
    if (command == "verify") {
      if (!checkFlags(flagc, flagv, {}, usageLine)) return 2;
      return cmdVerify(dir);
    }
    if (command == "cat") {
      if (!checkFlags(flagc, flagv, {"kind", "node", "limit"}, usageLine)) {
        return 2;
      }
      return cmdCat(dir, flagc, flagv);
    }
    if (command == "trim") {
      if (!checkFlags(flagc, flagv, {"out", "from", "to"}, usageLine)) {
        return 2;
      }
      return cmdTrim(dir, flagc, flagv);
    }
    if (command == "compact") {
      if (!checkFlags(flagc, flagv, {"force"}, usageLine)) return 2;
      return cmdCompact(dir, flagc, flagv);
    }
    if (command == "query") {
      if (!checkFlags(flagc, flagv,
                      {"node", "metric", "from", "to", "resolution", "csv"},
                      usageLine)) {
        return 2;
      }
      return cmdQuery(dir, flagc, flagv);
    }
    if (command == "replay") {
      if (!checkFlags(flagc, flagv,
                      {"threads", "duration", "train-duration", "verbose",
                       "require-localized"},
                      usageLine)) {
        return 2;
      }
      return cmdReplay(dir, flagc, flagv);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "asdf_archive %s: %s\n", command.c_str(), e.what());
    return 1;
  }
  return usage();
}
