#include "workload/gridmix.h"

#include <gtest/gtest.h>

#include "sim/engine.h"

namespace asdf::workload {
namespace {

TEST(GridMix, SpecsRespectTypeProfiles) {
  sim::SimEngine engine;
  hadoop::HadoopParams params;
  params.slaveCount = 16;
  hadoop::Cluster cluster(params, 1, engine);
  GridMixGenerator gen(cluster, GridMixParams{}, 5);

  const auto sample = gen.makeSpec(hadoop::JobType::kWebdataSample);
  EXPECT_EQ(sample.numReduces, 1);
  EXPECT_LT(sample.mapOutputRatio, 0.1);

  const auto sort = gen.makeSpec(hadoop::JobType::kWebdataSort);
  EXPECT_GE(sort.numReduces, 2);
  EXPECT_DOUBLE_EQ(sort.mapOutputRatio, 1.0);
  EXPECT_DOUBLE_EQ(sort.outputRatio, 1.0);

  const auto combiner = gen.makeSpec(hadoop::JobType::kCombiner);
  EXPECT_GT(combiner.mapCpuPerByte, sort.mapCpuPerByte);
  EXPECT_LT(combiner.mapOutputRatio, 0.1);
}

TEST(GridMix, SizesScaleWithCluster) {
  sim::SimEngine engineA;
  hadoop::HadoopParams small;
  small.slaveCount = 8;
  hadoop::Cluster clusterA(small, 1, engineA);
  GridMixGenerator genA(clusterA, GridMixParams{}, 7);

  sim::SimEngine engineB;
  hadoop::HadoopParams big;
  big.slaveCount = 32;
  hadoop::Cluster clusterB(big, 1, engineB);
  GridMixGenerator genB(clusterB, GridMixParams{}, 7);

  // Same seed, same type: the 32-slave spec is 4x the 8-slave one.
  const auto a = genA.makeSpec(hadoop::JobType::kWebdataSort);
  const auto b = genB.makeSpec(hadoop::JobType::kWebdataSort);
  EXPECT_NEAR(b.inputBytes / a.inputBytes, 4.0, 1e-9);
}

TEST(GridMix, WavesSubmitJobs) {
  sim::SimEngine engine;
  hadoop::HadoopParams params;
  params.slaveCount = 4;
  hadoop::Cluster cluster(params, 2, engine);
  cluster.start();
  GridMixParams gp;
  gp.waveGapMean = 60.0;
  GridMixGenerator gen(cluster, gp, 9);
  gen.start();
  engine.runUntil(400.0);
  EXPECT_GE(gen.submitted(), 4);
  EXPECT_EQ(cluster.jobTracker().jobsSubmitted(), gen.submitted());
}

TEST(GridMix, AdmissionCapHolds) {
  sim::SimEngine engine;
  hadoop::HadoopParams params;
  params.slaveCount = 2;
  hadoop::Cluster cluster(params, 3, engine);
  cluster.start();
  GridMixParams gp;
  gp.waveGapMean = 20.0;  // aggressive arrivals
  gp.maxActiveJobs = 3;
  GridMixGenerator gen(cluster, gp, 10);
  gen.start();
  for (int t = 50; t <= 600; t += 50) {
    engine.runUntil(t);
    EXPECT_LE(cluster.jobTracker().activeJobCount(), 3);
  }
}

TEST(GridMix, MixChangeShiftsTypeDistribution) {
  sim::SimEngine engine;
  hadoop::HadoopParams params;
  params.slaveCount = 4;
  hadoop::Cluster cluster(params, 4, engine);
  GridMixParams gp;
  gp.mixChangeTime = 100.0;
  GridMixGenerator gen(cluster, gp, 11);

  auto countSorts = [&](int draws) {
    int sorts = 0;
    for (int i = 0; i < draws; ++i) {
      const auto spec = gen.randomSpec();
      if (spec.type == hadoop::JobType::kWebdataSort) ++sorts;
    }
    return sorts;
  };
  const int before = countSorts(300);
  engine.runUntil(150.0);  // cross the change point
  const int after = countSorts(300);
  // Sorts drop from 20% to 5% of the mix.
  EXPECT_GT(before, after + 10);
}

TEST(GridMix, DeterministicForSeed) {
  sim::SimEngine engine;
  hadoop::HadoopParams params;
  params.slaveCount = 4;
  hadoop::Cluster cluster(params, 5, engine);
  GridMixGenerator a(cluster, GridMixParams{}, 42);
  GridMixGenerator b(cluster, GridMixParams{}, 42);
  for (int i = 0; i < 50; ++i) {
    const auto sa = a.randomSpec();
    const auto sb = b.randomSpec();
    EXPECT_EQ(sa.type, sb.type);
    EXPECT_DOUBLE_EQ(sa.inputBytes, sb.inputBytes);
  }
}

}  // namespace
}  // namespace asdf::workload
