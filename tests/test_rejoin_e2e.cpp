// Crash-rejoin, end to end (DESIGN.md §13): restarted daemons come
// back *useful*, dead never stays dead, and a tiered deployment keeps
// localizing through a deliberately hostile network.
//
//   * a leaf asdf_rpcd killed and restarted on the same port mid live
//     run: the transport redials (backoff-gated), the circuit breaker
//     re-closes, the restarted daemon replays its deterministic sim up
//     to the requested virtual time, and the run still localizes;
//
//   * a regional aggregator killed and recreated on the same port mid
//     tiered run: the root marks the region down (transient!), keeps
//     merging it as synthetic-unmonitorable, then re-admits it when
//     fresh windows appear — the monitoring events record the full
//     unmonitorable -> healthy round trip;
//
//   * the whole root <-> aggregator plane routed through deterministic
//     ChaosProxy instances (latency + jitter + corruption + slicing +
//     a timed partition window) still completes and localizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness/aggregator.h"
#include "harness/experiment.h"
#include "modules/modules.h"
#include "net/chaos_proxy.h"
#include "net/rpcd_server.h"

namespace asdf::harness {
namespace {

struct LeafFixture {
  explicit LeafFixture(net::RpcdOptions opts) : server(opts) {
    thread = std::thread([this] { server.run(); });
  }
  ~LeafFixture() {
    server.stop();
    if (thread.joinable()) thread.join();
  }
  net::RpcdServer server;
  std::thread thread;
};

struct AggFixture {
  AggFixture(const AggregatorOptions& opts,
             const analysis::BlackBoxModel& model)
      : node(opts, model) {
    thread = std::thread([this] { node.run(); });
  }
  ~AggFixture() {
    node.stop();
    if (thread.joinable()) thread.join();
  }
  AggregatorNode node;
  std::thread thread;
};

/// A set of chaos proxies sharing one EventLoop thread.
struct ChaosPlane {
  explicit ChaosPlane(std::vector<net::ChaosOptions> optionSets) {
    for (net::ChaosOptions& opts : optionSets) {
      proxies.push_back(
          std::make_unique<net::ChaosProxy>(loop, std::move(opts)));
    }
    thread = std::thread([this] { loop.run(); });
  }
  ~ChaosPlane() {
    loop.stop();
    thread.join();
  }
  net::EventLoop loop;
  std::vector<std::unique_ptr<net::ChaosProxy>> proxies;
  std::thread thread;
};

ExperimentSpec baseSpec(int slaves) {
  ExperimentSpec spec;
  spec.slaves = slaves;
  spec.duration = 300.0;
  spec.trainDuration = 180.0;
  spec.seed = 4242;
  spec.fault.type = faults::FaultType::kCpuHog;
  spec.fault.node = 2;
  spec.fault.startTime = 120.0;
  spec.pipeline.quietPrint = true;
  spec.realtimeScale = 150.0;  // 300 virtual seconds in ~2 s wall
  spec.rpcPolicy.timeoutSeconds = 5.0;
  return spec;
}

std::string endpointOf(std::uint16_t port) {
  return "127.0.0.1:" + std::to_string(port);
}

/// tiered_fingerpoint's --require-rejoin logic: some nodes appear in
/// an event's unmonitorable set and a later event on the same channel
/// no longer lists one of them.
bool sawUnmonitorableThenHealthy(
    const std::vector<core::MonitoringEvent>& events,
    const std::string& channel) {
  bool sawDown = false, sawRejoin = false;
  std::vector<std::string> down;
  for (const core::MonitoringEvent& ev : events) {
    if (ev.channel != channel) continue;
    if (!ev.unmonitorable.empty()) sawDown = true;
    for (const std::string& node : down) {
      if (std::find(ev.unmonitorable.begin(), ev.unmonitorable.end(),
                    node) == ev.unmonitorable.end()) {
        sawRejoin = true;
      }
    }
    down = ev.unmonitorable;
  }
  return sawDown && sawRejoin;
}

// Kill the leaf daemon mid live run and bring a fresh one up on the
// same port: the transport reconnects (the breaker re-closes after its
// recovery probe), the restarted daemon's deterministic sim catches up
// to the requested virtual time, and the run still localizes.
TEST(RejoinE2E, LeafDaemonRestartMidRunStillLocalizes) {
  modules::registerBuiltinModules();

  ExperimentSpec spec = baseSpec(/*slaves=*/4);
  spec.duration = 450.0;  // ~3 s wall: room for kill + redial + recovery
  spec.faultTolerantRpc = true;
  // Backoff sleeps are real in live mode; keep the retry loop tight so
  // the downtime costs rounds, not seconds of wall clock.
  spec.rpcPolicy.backoffBase = 0.001;
  spec.rpcPolicy.backoffMax = 0.002;

  const analysis::BlackBoxModel model = trainModel(spec);

  net::RpcdOptions leafOpts;
  leafOpts.port = 0;
  leafOpts.slaves = spec.slaves;
  leafOpts.seed = spec.seed;
  leafOpts.fault = spec.fault;
  auto leaf = std::make_unique<LeafFixture>(leafOpts);
  const std::uint16_t port = leaf->server.port();

  ExperimentSpec liveSpec = spec;
  liveSpec.transport = TransportMode::kLive;
  liveSpec.livePort = port;

  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1000));
    leaf.reset();  // SIGKILL-equivalent: sockets vanish, state is gone
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    net::RpcdOptions restartOpts = leafOpts;
    restartOpts.port = port;  // same endpoint, fresh process state
    leaf = std::make_unique<LeafFixture>(restartOpts);
  });
  const ExperimentResult live = runExperiment(liveSpec, model);
  killer.join();

  // The downtime cost failed attempts, and the restarted daemon served
  // the rest of the run.
  bool anyFailed = false;
  for (const RpcChannelReport& ch : live.rpcChannels) {
    if (ch.failedCalls > 0) anyFailed = true;
  }
  EXPECT_TRUE(anyFailed);
  EXPECT_GT(leaf->server.framesServed(), 0);

  // Nodes went unmonitorable during the outage and came back: the
  // last transition restored full monitoring.
  ASSERT_FALSE(live.monitoringEvents.empty());
  bool sawDown = false;
  for (const core::MonitoringEvent& ev : live.monitoringEvents) {
    if (!ev.unmonitorable.empty()) sawDown = true;
  }
  EXPECT_TRUE(sawDown);
  EXPECT_TRUE(live.monitoringEvents.back().unmonitorable.empty());

  // And the verdict survived the crash: the fault is still localized.
  ASSERT_FALSE(live.blackBox.empty());
  const ExperimentSummary summary = summarize(live);
  EXPECT_GE(summary.combined.latencySeconds, 0.0);
}

// Kill one aggregator mid tiered run and recreate it on the same port:
// the root demotes the region to down, keeps every round flowing with
// the region synthesized as unmonitorable, then re-admits it from the
// freshest published window once the restarted daemon answers with
// fresh state — no test may rely on "dead stays dead".
TEST(RejoinE2E, AggregatorRestartIsReadmittedAndRunLocalizes) {
  modules::registerBuiltinModules();

  ExperimentSpec spec = baseSpec(/*slaves=*/6);
  // ~3.5 s wall: kill at 1.2 s, restart at 1.5 s, the restarted
  // aggregator republishes its first window ~1.2 s later (its virtual
  // clock restarts at zero and windows start after trainDuration), and
  // the re-admitted region still merges for a stretch of the run.
  spec.duration = 520.0;
  spec.fault.node = 2;  // region 1: keeps the fault observable

  const analysis::BlackBoxModel model = trainModel(spec);

  net::RpcdOptions leafOpts;
  leafOpts.port = 0;
  leafOpts.slaves = spec.slaves;
  leafOpts.seed = spec.seed;
  leafOpts.fault = spec.fault;
  LeafFixture leaf1(leafOpts);
  LeafFixture leaf2(leafOpts);

  AggregatorOptions a1;
  a1.base = spec;
  a1.firstNode = 1;
  a1.groupSize = 3;
  a1.leafEndpoints = {endpointOf(leaf1.server.port())};
  AggregatorOptions a2 = a1;
  a2.firstNode = 4;
  a2.leafEndpoints = {endpointOf(leaf2.server.port())};
  AggFixture agg1(a1, model);
  auto agg2 = std::make_unique<AggFixture>(a2, model);
  const std::uint16_t agg2Port = agg2->node.port();

  ExperimentSpec rootSpec = spec;
  rootSpec.transport = TransportMode::kLive;
  rootSpec.tiered = true;
  rootSpec.tierGroups = {3, 3};
  rootSpec.pipeline.quorum = 3;
  rootSpec.rpcPolicy.timeoutSeconds = 1.0;
  rootSpec.aggEndpoints = {endpointOf(agg1.node.port()),
                           endpointOf(agg2Port)};

  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1200));
    agg2.reset();
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    AggregatorOptions restart = a2;
    restart.port = agg2Port;  // same endpoint the root keeps probing
    agg2 = std::make_unique<AggFixture>(restart, model);
  });
  const ExperimentResult live = runExperiment(rootSpec, model);
  killer.join();

  // The monitoring events record the full round trip: slaves 4..6
  // unmonitorable while the region was down, healthy again after the
  // re-admission.
  bool sawRegionDown = false;
  for (const core::MonitoringEvent& ev : live.monitoringEvents) {
    if (ev.unmonitorable.size() == 3 && !ev.belowQuorum) {
      EXPECT_EQ(ev.unmonitorable[0], "slave4");
      EXPECT_EQ(ev.unmonitorable[2], "slave6");
      sawRegionDown = true;
    }
  }
  EXPECT_TRUE(sawRegionDown);
  EXPECT_TRUE(sawUnmonitorableThenHealthy(live.monitoringEvents,
                                          "analysis_bb"));

  // Post-rejoin rounds score the returned region again: the last
  // window monitors every node (health 0), nothing stuck at
  // unmonitorable (2).
  ASSERT_FALSE(live.blackBox.empty());
  const analysis::AlarmRecord& last = live.blackBox.back();
  ASSERT_EQ(last.health.size(), 6u);
  for (double h : last.health) EXPECT_EQ(h, 0.0);

  // And the verdict matches the uninterrupted run's: fault localized.
  const ExperimentSummary summary = summarize(live);
  EXPECT_GE(summary.combined.latencySeconds, 0.0);
}

// The whole summary plane behind deterministic chaos: added latency
// and jitter, a byte-corruption rate that periodically poisons a frame
// (CRC rejects it, the client redials), sliced segments, and a timed
// partition window across one region. The run completes and localizes
// anyway — and none of the injected failures crashes anything.
TEST(RejoinE2E, TieredRunLocalizesThroughChaosProxies) {
  modules::registerBuiltinModules();

  ExperimentSpec spec = baseSpec(/*slaves=*/4);
  const analysis::BlackBoxModel model = trainModel(spec);

  net::RpcdOptions leafOpts;
  leafOpts.port = 0;
  leafOpts.slaves = spec.slaves;
  leafOpts.seed = spec.seed;
  leafOpts.fault = spec.fault;
  LeafFixture leaf1(leafOpts);
  LeafFixture leaf2(leafOpts);

  AggregatorOptions a1;
  a1.base = spec;
  a1.firstNode = 1;
  a1.groupSize = 2;
  a1.leafEndpoints = {endpointOf(leaf1.server.port())};
  AggregatorOptions a2 = a1;
  a2.firstNode = 3;
  a2.leafEndpoints = {endpointOf(leaf2.server.port())};
  AggFixture agg1(a1, model);
  AggFixture agg2(a2, model);

  net::ChaosToxics toxics;
  toxics.latencySeconds = 0.003;
  toxics.jitterSeconds = 0.002;
  toxics.corruptPerKb = 0.05;
  net::ChaosPhase noisy;
  noisy.up = toxics;
  noisy.down = toxics;
  noisy.down.sliceBytes = 512;  // summary frames arrive in segments

  net::ChaosOptions c1;
  c1.upstreamPort = agg1.node.port();
  c1.seed = spec.seed;
  c1.phases = {noisy};

  // Region 2 additionally rides through a 0.4 s partition window.
  net::ChaosPhase dark = noisy;
  dark.startSeconds = 0.9;
  dark.blackhole = true;
  net::ChaosPhase healed = noisy;
  healed.startSeconds = 1.3;
  net::ChaosOptions c2 = c1;
  c2.upstreamPort = agg2.node.port();
  c2.seed = spec.seed + 1;
  c2.phases = {noisy, dark, healed};

  ChaosPlane chaos({c1, c2});

  ExperimentSpec rootSpec = spec;
  rootSpec.transport = TransportMode::kLive;
  rootSpec.tiered = true;
  rootSpec.tierGroups = {2, 2};
  rootSpec.rpcPolicy.timeoutSeconds = 1.0;
  rootSpec.aggEndpoints = {endpointOf(chaos.proxies[0]->port()),
                           endpointOf(chaos.proxies[1]->port())};

  const ExperimentResult live = runExperiment(rootSpec, model);

  EXPECT_GE(chaos.proxies[0]->accepted(), 1);
  EXPECT_GE(chaos.proxies[1]->accepted(), 1);
  EXPECT_GT(chaos.proxies[0]->relayedBytes(1), 0u);

  ASSERT_FALSE(live.blackBox.empty());
  const ExperimentSummary summary = summarize(live);
  EXPECT_GE(summary.combined.latencySeconds, 0.0);
}

}  // namespace
}  // namespace asdf::harness
