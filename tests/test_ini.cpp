#include "common/ini.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace asdf {
namespace {

TEST(Ini, ParsesFigure3Snippet) {
  // The exact shape of the paper's Figure 3 configuration.
  const char* config = R"(
[ibuffer]
id = buf1
input[input] = onenn0.output0
size = 10

[analysis_bb]
id = analysis
threshold = 5
window = 15
slide = 5
input[l0] = @buf0
input[l1] = @buf1

[print]
id = BlackBoxAlarm
input[a] = @analysis
)";
  const IniFile file = parseIni(config);
  ASSERT_EQ(file.sections.size(), 3u);
  EXPECT_EQ(file.sections[0].name, "ibuffer");
  EXPECT_EQ(file.sections[0].get("id"), "buf1");
  EXPECT_EQ(file.sections[0].get("size"), "10");
  EXPECT_EQ(file.sections[1].get("threshold"), "5");
  const auto inputs = file.sections[1].getAll("input[l0]");
  ASSERT_EQ(inputs.size(), 1u);
  EXPECT_EQ(inputs[0], "@buf0");
  EXPECT_EQ(file.sections[2].name, "print");
}

TEST(Ini, PreservesSectionOrderWithRepeatedNames) {
  const IniFile file = parseIni("[m]\nid = a\n[m]\nid = b\n[m]\nid = c\n");
  ASSERT_EQ(file.sections.size(), 3u);
  EXPECT_EQ(file.sections[0].get("id"), "a");
  EXPECT_EQ(file.sections[1].get("id"), "b");
  EXPECT_EQ(file.sections[2].get("id"), "c");
}

TEST(Ini, RepeatedKeysKeptInOrder) {
  const IniFile file =
      parseIni("[m]\ninput[x] = a.o\ninput[x] = b.o\ninput[x] = c.o\n");
  const auto all = file.sections[0].getAll("input[x]");
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], "a.o");
  EXPECT_EQ(all[2], "c.o");
  // get() returns the first.
  EXPECT_EQ(file.sections[0].get("input[x]"), "a.o");
}

TEST(Ini, CommentsAndBlankLinesIgnored) {
  const IniFile file = parseIni(
      "# leading comment\n\n[m]\n; semicolon comment\nkey = value\n\n");
  ASSERT_EQ(file.sections.size(), 1u);
  ASSERT_EQ(file.sections[0].assignments.size(), 1u);
  EXPECT_EQ(file.sections[0].get("key"), "value");
}

TEST(Ini, TrimsKeysAndValues) {
  const IniFile file = parseIni("[m]\n  key   =   spaced value  \n");
  EXPECT_EQ(file.sections[0].get("key"), "spaced value");
}

TEST(Ini, ValueMayContainEquals) {
  const IniFile file = parseIni("[m]\nexpr = a=b\n");
  EXPECT_EQ(file.sections[0].get("expr"), "a=b");
}

TEST(Ini, GetFallback) {
  const IniFile file = parseIni("[m]\nkey = v\n");
  EXPECT_EQ(file.sections[0].get("missing", "dflt"), "dflt");
  EXPECT_TRUE(file.sections[0].has("key"));
  EXPECT_FALSE(file.sections[0].has("missing"));
}

TEST(Ini, ErrorOnAssignmentBeforeSection) {
  EXPECT_THROW(parseIni("key = value\n"), ConfigError);
}

TEST(Ini, ErrorOnMalformedSectionHeader) {
  EXPECT_THROW(parseIni("[unterminated\n"), ConfigError);
  EXPECT_THROW(parseIni("[]\n"), ConfigError);
}

TEST(Ini, ErrorOnLineWithoutEquals) {
  EXPECT_THROW(parseIni("[m]\nnot an assignment\n"), ConfigError);
}

TEST(Ini, ErrorOnEmptyKey) {
  EXPECT_THROW(parseIni("[m]\n = value\n"), ConfigError);
}

TEST(Ini, ErrorMessagesCarryLineNumbers) {
  try {
    parseIni("[m]\nok = 1\nbroken line\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Ini, MissingFileThrows) {
  EXPECT_THROW(parseIniFile("/nonexistent/path/config.ini"), ConfigError);
}

TEST(Ini, TracksSourceLines) {
  const IniFile file = parseIni("\n[m]\nkey = v\n");
  EXPECT_EQ(file.sections[0].line, 2);
  EXPECT_EQ(file.sections[0].assignments[0].line, 3);
}

}  // namespace
}  // namespace asdf
