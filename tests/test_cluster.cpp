// Integration tests of the Hadoop substrate: jobs actually run to
// completion, logs get written, metrics respond, fault-tolerance
// machinery (retries, speculation) engages.
#include "hadoop/cluster.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "hadooplog/parser.h"
#include "metrics/catalog.h"
#include "sim/engine.h"

namespace asdf::hadoop {
namespace {

HadoopParams smallParams(int slaves = 4) {
  HadoopParams p;
  p.slaveCount = slaves;
  return p;
}

JobSpec smallJob() {
  JobSpec spec;
  spec.inputBytes = 64.0e6;  // 4 blocks
  spec.numReduces = 2;
  spec.mapCpuPerByte = 5.0e-7;
  spec.mapOutputRatio = 0.5;
  spec.reduceCpuPerByte = 2.0e-7;
  spec.outputRatio = 0.25;
  return spec;
}

TEST(Cluster, RunsOneJobToCompletion) {
  sim::SimEngine engine;
  Cluster cluster(smallParams(), 1, engine);
  cluster.start();
  cluster.jobTracker().submit(smallJob(), 0.0);
  engine.runUntil(600.0);
  EXPECT_EQ(cluster.jobTracker().jobsCompleted(), 1);
  EXPECT_TRUE(cluster.jobTracker().activeJobs().empty());
  const Job& job = *cluster.jobTracker().completedJobs().front();
  EXPECT_TRUE(job.complete());
  EXPECT_GT(job.finishTime, job.submitTime);
}

TEST(Cluster, JobCompletionCallbackFires) {
  sim::SimEngine engine;
  Cluster cluster(smallParams(), 2, engine);
  int completions = 0;
  cluster.onJobComplete = [&](Job&, SimTime) { ++completions; };
  cluster.start();
  cluster.jobTracker().submit(smallJob(), 0.0);
  engine.runUntil(600.0);
  EXPECT_EQ(completions, 1);
}

TEST(Cluster, TaskLogsAreWritten) {
  sim::SimEngine engine;
  Cluster cluster(smallParams(), 3, engine);
  cluster.start();
  cluster.jobTracker().submit(smallJob(), 0.0);
  engine.runUntil(600.0);
  std::size_t ttLines = 0;
  std::size_t dnLines = 0;
  bool sawLaunch = false;
  bool sawDone = false;
  for (Node* node : cluster.slaveNodes()) {
    ttLines += node->ttLog().lineCount();
    dnLines += node->dnLog().lineCount();
    for (std::size_t i = 0; i < node->ttLog().lineCount(); ++i) {
      if (contains(node->ttLog().line(i), "LaunchTaskAction")) sawLaunch = true;
      if (contains(node->ttLog().line(i), "is done")) sawDone = true;
    }
  }
  EXPECT_GT(ttLines, 10u);
  EXPECT_GT(dnLines, 4u);  // input block reads at minimum
  EXPECT_TRUE(sawLaunch);
  EXPECT_TRUE(sawDone);
}

TEST(Cluster, LogsParseBackToConsistentStates) {
  sim::SimEngine engine;
  Cluster cluster(smallParams(), 4, engine);
  cluster.start();
  cluster.jobTracker().submit(smallJob(), 0.0);
  engine.runUntil(600.0);
  for (Node* node : cluster.slaveNodes()) {
    hadooplog::TtLogParser parser;
    parser.startAt(0);
    parser.consume(node->ttLog().linesFrom(0));
    parser.poll(600.0);
    // All launched tasks completed: no task should remain open.
    EXPECT_EQ(parser.openTaskCount(), 0u) << "node " << node->id();
    EXPECT_EQ(parser.ignoredLineCount(), 0u) << "node " << node->id();
  }
}

TEST(Cluster, MetricsRespondToLoad) {
  sim::SimEngine engine;
  Cluster cluster(smallParams(), 5, engine);
  cluster.start();
  // Warm up idle, snapshot, then load the cluster and compare.
  engine.runUntil(30.0);
  double idleCpu = 0.0;
  for (Node* node : cluster.slaveNodes()) {
    idleCpu += node->sadcCollect().node[metrics::kCpuUserPct];
  }
  JobSpec heavy = smallJob();
  heavy.inputBytes = 512.0e6;
  heavy.mapCpuPerByte = 2.0e-6;
  cluster.jobTracker().submit(heavy, engine.now());
  engine.runUntil(70.0);  // sample mid-execution
  double busyCpu = 0.0;
  for (Node* node : cluster.slaveNodes()) {
    busyCpu += node->sadcCollect().node[metrics::kCpuUserPct];
  }
  EXPECT_GT(busyCpu, idleCpu + 50.0);
}

TEST(Cluster, SnapshotsAdvanceEverySecond) {
  sim::SimEngine engine;
  Cluster cluster(smallParams(), 6, engine);
  cluster.start();
  engine.runUntil(10.0);
  for (Node* node : cluster.slaveNodes()) {
    EXPECT_DOUBLE_EQ(node->lastSnapshotTime(), 10.0);
  }
}

TEST(Cluster, MultipleJobsShareTheCluster) {
  sim::SimEngine engine;
  Cluster cluster(smallParams(8), 7, engine);
  cluster.start();
  for (int i = 0; i < 3; ++i) {
    cluster.jobTracker().submit(smallJob(), 0.0);
  }
  engine.runUntil(900.0);
  EXPECT_EQ(cluster.jobTracker().jobsCompleted(), 3);
}

TEST(Cluster, HungMapTriggersSpeculationAndKill) {
  sim::SimEngine engine;
  HadoopParams params = smallParams();
  Cluster cluster(params, 8, engine);
  cluster.start();
  // Every map on slave 2 hangs from the start. The job is big enough
  // (32 maps over 4 slaves) that slave 2 certainly hosts some.
  cluster.node(2).faults().mapHang = true;
  JobSpec spec = smallJob();
  spec.inputBytes = 512.0e6;
  cluster.jobTracker().submit(spec, 0.0);
  engine.runUntil(1500.0);
  // Speculative backups rescue the job despite the hangs.
  EXPECT_EQ(cluster.jobTracker().jobsCompleted(), 1);
  EXPECT_GT(cluster.jobTracker().speculativeLaunches(), 0);
  // The kill shows up in slave 2's TaskTracker log.
  bool sawKill = false;
  for (std::size_t i = 0; i < cluster.node(2).ttLog().lineCount(); ++i) {
    if (contains(cluster.node(2).ttLog().line(i), "KillTaskAction")) {
      sawKill = true;
    }
  }
  EXPECT_TRUE(sawKill);
}

TEST(Cluster, CleanupEmitsDeleteBlockEvents) {
  sim::SimEngine engine;
  HadoopParams params = smallParams();
  params.outputDeleteDelay = 30.0;
  Cluster cluster(params, 9, engine);
  cluster.start();
  cluster.jobTracker().submit(smallJob(), 0.0);
  engine.runUntil(900.0);
  bool sawDelete = false;
  for (Node* node : cluster.slaveNodes()) {
    for (std::size_t i = 0; i < node->dnLog().lineCount(); ++i) {
      if (contains(node->dnLog().line(i), "Deleting block")) sawDelete = true;
    }
  }
  EXPECT_TRUE(sawDelete);
}

TEST(Cluster, DeterministicAcrossIdenticalRuns) {
  auto run = [](std::uint64_t seed) {
    sim::SimEngine engine;
    Cluster cluster(smallParams(), seed, engine);
    cluster.start();
    cluster.jobTracker().submit(smallJob(), 0.0);
    engine.runUntil(400.0);
    std::string logs;
    for (Node* node : cluster.slaveNodes()) {
      for (std::size_t i = 0; i < node->ttLog().lineCount(); ++i) {
        logs += node->ttLog().line(i);
        logs += '\n';
      }
    }
    return logs;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(Cluster, TickCountMatchesDuration) {
  sim::SimEngine engine;
  Cluster cluster(smallParams(), 10, engine);
  cluster.start();
  engine.runUntil(25.0);
  EXPECT_EQ(cluster.tickCount(), 25);
}

TEST(Cluster, SlaveAccessors) {
  sim::SimEngine engine;
  Cluster cluster(smallParams(), 11, engine);
  EXPECT_EQ(cluster.slaveNodes().size(), 4u);
  EXPECT_TRUE(cluster.node(0).isMaster());
  EXPECT_FALSE(cluster.node(1).isMaster());
  EXPECT_EQ(cluster.node(3).ip(), "10.250.0.4");
  EXPECT_EQ(cluster.taskTracker(2).nodeId(), 2);
}

}  // namespace
}  // namespace asdf::hadoop
