#include "hadoop/job.h"

#include <gtest/gtest.h>

namespace asdf::hadoop {
namespace {

class JobTest : public ::testing::Test {
 protected:
  JobTest() : nameNode_(8, 3), rng_(11) {}

  JobSpec spec(double inputBytes = 64.0e6, int reduces = 4) {
    JobSpec s;
    s.inputBytes = inputBytes;
    s.numReduces = reduces;
    s.mapOutputRatio = 0.5;
    s.outputRatio = 0.25;
    return s;
  }

  NameNode nameNode_;
  Rng rng_;
};

TEST_F(JobTest, MapsMatchBlockCount) {
  Job job(1, spec(64.0e6), 16.0e6, nameNode_, 8, rng_);
  EXPECT_EQ(job.numMaps(), 4);
  EXPECT_EQ(job.numReduces(), 4);
  EXPECT_EQ(job.pendingMaps().size(), 4u);
  EXPECT_EQ(job.pendingReduces().size(), 4u);
  EXPECT_FALSE(job.complete());
}

TEST_F(JobTest, ShuffleArithmetic) {
  Job job(1, spec(64.0e6, 4), 16.0e6, nameNode_, 8, rng_);
  // map output = 64 MB * 0.5 = 32 MB over 4 maps and 4 reduces.
  EXPECT_NEAR(job.mapOutputPerReducePerMap(), 32.0e6 / 4 / 4, 1.0);
  EXPECT_NEAR(job.shuffleBytesPerReduce(), 32.0e6 / 4, 1.0);
  EXPECT_NEAR(job.outputBytesPerReduce(), 64.0e6 * 0.25 / 4, 1.0);
}

TEST_F(JobTest, CompleteMapPublishesShuffleOutput) {
  Job job(1, spec(64.0e6, 4), 16.0e6, nameNode_, 8, rng_);
  EXPECT_DOUBLE_EQ(job.shuffleAvailable(3), 0.0);
  EXPECT_TRUE(job.completeMap(0, 3, 12.0));
  EXPECT_NEAR(job.shuffleAvailable(3), job.mapOutputPerReducePerMap(), 1e-9);
  EXPECT_EQ(job.completedMaps(), 1);
  EXPECT_TRUE(job.mapDone(0));
}

TEST_F(JobTest, DuplicateCompletionIgnored) {
  Job job(1, spec(), 16.0e6, nameNode_, 8, rng_);
  EXPECT_TRUE(job.completeMap(0, 1, 10.0));
  EXPECT_FALSE(job.completeMap(0, 2, 11.0));  // speculative loser
  EXPECT_EQ(job.completedMaps(), 1);
  EXPECT_NEAR(job.shuffleAvailable(2), 0.0, 1e-9);
}

TEST_F(JobTest, CompletesWhenAllTasksDone) {
  Job job(1, spec(32.0e6, 2), 16.0e6, nameNode_, 8, rng_);
  job.completeMap(0, 1, 5.0);
  job.completeMap(1, 2, 6.0);
  EXPECT_TRUE(job.mapsComplete());
  EXPECT_FALSE(job.complete());
  job.completeReduce(0, 30.0);
  job.completeReduce(1, 31.0);
  EXPECT_TRUE(job.complete());
}

TEST_F(JobTest, AttemptBookkeeping) {
  Job job(1, spec(), 16.0e6, nameNode_, 8, rng_);
  EXPECT_EQ(job.runningAttempts(true, 0), 0);
  job.noteAttemptStarted(true, 0);
  job.noteAttemptStarted(true, 0);  // speculative backup
  EXPECT_EQ(job.runningAttempts(true, 0), 2);
  job.noteAttemptEnded(true, 0);
  EXPECT_EQ(job.runningAttempts(true, 0), 1);
}

TEST_F(JobTest, AttemptSerialsIncrement) {
  Job job(1, spec(), 16.0e6, nameNode_, 8, rng_);
  EXPECT_EQ(job.nextAttemptSerial(false, 1), 0);
  EXPECT_EQ(job.nextAttemptSerial(false, 1), 1);
  EXPECT_EQ(job.nextAttemptSerial(false, 2), 0);
}

TEST_F(JobTest, FailureCounting) {
  Job job(1, spec(), 16.0e6, nameNode_, 8, rng_);
  EXPECT_EQ(job.failureCount(false, 0), 0);
  job.noteFailure(false, 0);
  job.noteFailure(false, 0);
  EXPECT_EQ(job.failureCount(false, 0), 2);
  EXPECT_EQ(job.failureCount(true, 0), 0);
}

TEST_F(JobTest, DurationsRecorded) {
  Job job(1, spec(32.0e6, 2), 16.0e6, nameNode_, 8, rng_);
  job.completeMap(0, 1, 5.0);
  job.completeMap(1, 1, 9.0);
  ASSERT_EQ(job.completedMapDurations().size(), 2u);
  EXPECT_DOUBLE_EQ(job.completedMapDurations()[1], 9.0);
}

TEST_F(JobTest, OutputBlocksRecorded) {
  Job job(1, spec(), 16.0e6, nameNode_, 8, rng_);
  job.addOutputBlock(1001);
  job.addOutputBlock(1002);
  EXPECT_EQ(job.outputBlocks().size(), 2u);
  EXPECT_EQ(job.inputBlocks().size(), 4u);
}

TEST(JobType, NamesRoundTrip) {
  EXPECT_STREQ(jobTypeName(JobType::kWebdataSample), "webdataSample");
  EXPECT_STREQ(jobTypeName(JobType::kMonsterQuery), "monsterQuery");
  EXPECT_STREQ(jobTypeName(JobType::kWebdataSort), "webdataSort");
  EXPECT_STREQ(jobTypeName(JobType::kStreamingSort), "streamingSort");
  EXPECT_STREQ(jobTypeName(JobType::kCombiner), "combiner");
}

}  // namespace
}  // namespace asdf::hadoop
