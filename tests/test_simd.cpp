// The SIMD dispatch contract (src/common/simd.h, DESIGN.md §15):
// every vector path is bit-exact against the scalar reference on every
// input — length sweeps that cover every tail residue, NaNs, signed
// zeros, denormals — and the analysis consumers (kmeans, the peer
// comparisons, MAD) produce identical results whichever ISA dispatch
// picks. These are the tests that make ASDF_SIMD=ON vs OFF a pure
// performance knob: alarms cannot move.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "analysis/kmeans.h"
#include "analysis/mad.h"
#include "analysis/peercompare.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/stats.h"

namespace asdf {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kDenormal = std::numeric_limits<double>::denorm_min();

/// Bitwise double equality: distinguishes -0.0 from 0.0 and treats two
/// NaNs with the same payload as equal — exactly the "byte-identical
/// alarms" standard.
bool sameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// The ISAs this machine can actually run (kScalar always; wider ones
/// when forceIsa doesn't clamp them away).
std::vector<simd::Isa> supportedIsas() {
  std::vector<simd::Isa> isas{simd::Isa::kScalar};
  for (simd::Isa isa : {simd::Isa::kSse2, simd::Isa::kAvx2}) {
    if (simd::forceIsa(isa) == isa) isas.push_back(isa);
  }
  simd::forceIsa(simd::bestSupportedIsa());
  return isas;
}

/// Restores best-ISA dispatch when a test returns, even on failure.
struct IsaGuard {
  ~IsaGuard() { simd::forceIsa(simd::bestSupportedIsa()); }
};

void fillDeterministic(std::vector<double>& v, std::uint64_t seed) {
  std::uint64_t s = seed;
  for (double& x : v) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    const double u =
        static_cast<double>((s >> 11) & ((1ull << 40) - 1)) / (1ull << 40);
    x = (u - 0.5) * 1000.0;
  }
}

// --- length sweep: every vector-width residue -----------------------

TEST(SimdKernels, BitExactAcrossIsasForEveryLength1To67) {
  IsaGuard guard;
  for (std::size_t n = 1; n <= 67; ++n) {
    std::vector<double> a(n), b(n), sigma(n), outRef(n), outIsa(n);
    fillDeterministic(a, n * 3 + 1);
    fillDeterministic(b, n * 5 + 2);
    fillDeterministic(sigma, n * 7 + 3);
    for (double& s : sigma) s = std::fabs(s);
    // A few exact ties exercise the |mean - median| <= 1 branch.
    for (std::size_t i = 0; i < n; i += 5) b[i] = a[i] + 0.5;

    simd::forceIsa(simd::Isa::kScalar);
    const double sqRef = simd::sqDistance(a.data(), b.data(), n);
    const double l1Ref = simd::l1Distance(a.data(), b.data(), n);
    const double wbRef =
        simd::whiteBoxCriticalK(a.data(), b.data(), sigma.data(), n, 1e18);
    simd::absDeviations(a.data(), 12.5, outRef.data(), n);

    for (simd::Isa isa : supportedIsas()) {
      simd::forceIsa(isa);
      EXPECT_TRUE(sameBits(sqRef, simd::sqDistance(a.data(), b.data(), n)))
          << "sqDistance n=" << n << " isa=" << simd::isaName(isa);
      EXPECT_TRUE(sameBits(l1Ref, simd::l1Distance(a.data(), b.data(), n)))
          << "l1Distance n=" << n << " isa=" << simd::isaName(isa);
      EXPECT_TRUE(sameBits(wbRef, simd::whiteBoxCriticalK(
                                      a.data(), b.data(), sigma.data(), n,
                                      1e18)))
          << "whiteBoxCriticalK n=" << n << " isa=" << simd::isaName(isa);
      simd::absDeviations(a.data(), 12.5, outIsa.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(sameBits(outRef[i], outIsa[i]))
            << "absDeviations n=" << n << " i=" << i
            << " isa=" << simd::isaName(isa);
      }
    }
  }
}

// --- special values -------------------------------------------------

TEST(SimdKernels, SpecialValuesMatchScalarBitForBit) {
  IsaGuard guard;
  // NaN, +-inf, -0.0, denormals, and huge/tiny magnitudes, scattered
  // so they land in different lanes and in the tail.
  const std::vector<double> a = {kNan,  1.0,   -0.0, kDenormal, 1e308,
                                 -1e308, 0.0,  kInf, -kInf,     2.5,
                                 kNan,  -2.5,  1e-300};
  const std::vector<double> b = {1.0,  kNan,  0.0,  -kDenormal, 1e308,
                                 1e308, -0.0, kInf, kInf,       2.5,
                                 kNan, 7.75,  -1e-300};
  std::vector<double> sigma = {0.0, 1.0, kNan, kDenormal, 1e-12,
                               2.0, 0.5, 1.0,  1.0,       0.25,
                               1.0, 4.0, 1e-13};
  const std::size_t n = a.size();
  std::vector<double> outRef(n), outIsa(n);

  simd::forceIsa(simd::Isa::kScalar);
  const double sqRef = simd::sqDistance(a.data(), b.data(), n);
  const double l1Ref = simd::l1Distance(a.data(), b.data(), n);
  const double wbRef =
      simd::whiteBoxCriticalK(a.data(), b.data(), sigma.data(), n, 1e18);
  simd::absDeviations(a.data(), -0.0, outRef.data(), n);

  for (simd::Isa isa : supportedIsas()) {
    simd::forceIsa(isa);
    EXPECT_TRUE(sameBits(sqRef, simd::sqDistance(a.data(), b.data(), n)))
        << simd::isaName(isa);
    EXPECT_TRUE(sameBits(l1Ref, simd::l1Distance(a.data(), b.data(), n)))
        << simd::isaName(isa);
    EXPECT_TRUE(sameBits(wbRef, simd::whiteBoxCriticalK(
                                    a.data(), b.data(), sigma.data(), n,
                                    1e18)))
        << simd::isaName(isa);
    simd::absDeviations(a.data(), -0.0, outIsa.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(sameBits(outRef[i], outIsa[i]))
          << "i=" << i << " isa=" << simd::isaName(isa);
    }
  }
}

TEST(SimdKernels, NanCandidateNeverReplacesTheWhiteBoxMax) {
  IsaGuard guard;
  // Metric 1 produces a NaN critical k (NaN mean); metric 2 a real
  // one. std::max semantics: the NaN candidate is dropped, the real
  // max survives — on every ISA.
  const std::vector<double> mean = {5.0, kNan, 30.0, 5.0};
  const std::vector<double> median = {5.0, 1.0, 10.0, 5.0};
  const std::vector<double> sigma = {1.0, 1.0, 4.0, 1.0};
  simd::forceIsa(simd::Isa::kScalar);
  const double ref = simd::whiteBoxCriticalK(mean.data(), median.data(),
                                             sigma.data(), 4, 1e18);
  EXPECT_TRUE(sameBits(ref, 5.0));
  for (simd::Isa isa : supportedIsas()) {
    simd::forceIsa(isa);
    EXPECT_TRUE(sameBits(ref, simd::whiteBoxCriticalK(
                                  mean.data(), median.data(), sigma.data(),
                                  4, 1e18)))
        << simd::isaName(isa);
  }
}

TEST(SimdKernels, ZeroSigmaFallsToTheSentinelOnEveryIsa) {
  IsaGuard guard;
  const std::vector<double> mean = {10.0, 1.0};
  const std::vector<double> median = {1.0, 1.0};
  const std::vector<double> sigma = {0.0, 1.0};  // below the 1e-12 floor
  const double sentinel = 424242.0;
  for (simd::Isa isa : supportedIsas()) {
    simd::forceIsa(isa);
    EXPECT_TRUE(sameBits(sentinel,
                         simd::whiteBoxCriticalK(mean.data(), median.data(),
                                                 sigma.data(), 2, sentinel)))
        << simd::isaName(isa);
  }
}

// --- dispatch plumbing ----------------------------------------------

TEST(SimdDispatch, ForceIsaClampsToSupportAndReports) {
  IsaGuard guard;
  EXPECT_EQ(simd::forceIsa(simd::Isa::kScalar), simd::Isa::kScalar);
  EXPECT_EQ(simd::activeIsa(), simd::Isa::kScalar);
  const simd::Isa best = simd::bestSupportedIsa();
  EXPECT_LE(static_cast<int>(simd::forceIsa(simd::Isa::kAvx2)),
            static_cast<int>(best));
  EXPECT_EQ(simd::forceIsa(best), best);
  EXPECT_EQ(simd::activeIsa(), best);
  EXPECT_STREQ(simd::isaName(simd::Isa::kScalar), "scalar");
}

// --- end-to-end: the analysis consumers -----------------------------

template <typename Fn>
void compareAcrossIsas(Fn&& run) {
  IsaGuard guard;
  simd::forceIsa(simd::Isa::kScalar);
  const auto ref = run();
  for (simd::Isa isa : supportedIsas()) {
    simd::forceIsa(isa);
    const auto got = run();
    ASSERT_EQ(ref, got) << "diverged on " << simd::isaName(isa);
  }
}

Matrix makePoints(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  std::vector<double> row(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    fillDeterministic(row, seed + r);
    for (std::size_t c = 0; c < cols; ++c) m.row(r)[c] = row[c];
  }
  return m;
}

TEST(SimdEndToEnd, KMeansTrainingIsIsaInvariant) {
  const Matrix points = makePoints(60, 17, 99);  // odd dims: nonzero tail
  compareAcrossIsas([&] {
    analysis::KMeansOptions options;
    options.k = 5;
    Rng rng(1234);
    const analysis::KMeansResult result =
        analysis::kmeans(points, options, rng);
    std::vector<double> flat;
    for (std::size_t r = 0; r < result.centroids.rows(); ++r) {
      const double* row = result.centroids.row(r);
      flat.insert(flat.end(), row, row + result.centroids.cols());
    }
    flat.push_back(result.inertia);
    flat.push_back(static_cast<double>(result.iterations));
    for (int a : result.assignment) flat.push_back(static_cast<double>(a));
    return flat;
  });
}

TEST(SimdEndToEnd, PeerComparisonsAreIsaInvariant) {
  const std::size_t nodes = 23, dims = 19;
  const Matrix hists = makePoints(nodes, dims, 7);
  const Matrix means = makePoints(nodes, dims, 11);
  Matrix stddevs = makePoints(nodes, dims, 13);
  for (std::size_t r = 0; r < nodes; ++r) {
    for (std::size_t c = 0; c < dims; ++c) {
      stddevs.row(r)[c] = std::fabs(stddevs.row(r)[c]) + 0.25;
    }
  }
  std::vector<const double*> histRows(nodes), meanRows(nodes), sdRows(nodes);
  for (std::size_t r = 0; r < nodes; ++r) {
    histRows[r] = hists.row(r);
    meanRows[r] = means.row(r);
    sdRows[r] = stddevs.row(r);
  }
  compareAcrossIsas([&] {
    analysis::PeerScratch scratch;
    std::vector<double> flags(nodes), scores(nodes);
    analysis::blackBoxCompareInto(histRows.data(), nodes, dims, 40.0,
                                  scratch, flags.data(), scores.data());
    std::vector<double> all(flags);
    all.insert(all.end(), scores.begin(), scores.end());
    analysis::whiteBoxCompareInto(meanRows.data(), sdRows.data(), nodes,
                                  dims, 2.0, scratch, flags.data(),
                                  scores.data());
    all.insert(all.end(), flags.begin(), flags.end());
    all.insert(all.end(), scores.begin(), scores.end());
    return all;
  });
}

TEST(SimdEndToEnd, MadCompareIsIsaInvariant) {
  std::vector<double> scores(37);
  fillDeterministic(scores, 21);
  for (double& s : scores) s = std::fabs(s);
  scores[5] *= 50.0;  // one loud node
  compareAcrossIsas([&] {
    const analysis::PeerComparisonResult r = analysis::madCompare(scores, 3.0);
    std::vector<double> all(r.flags);
    all.insert(all.end(), r.scores.begin(), r.scores.end());
    return all;
  });
}

TEST(SimdEndToEnd, L1DistanceNMatchesNaiveSum) {
  // l1DistanceN (stats.cpp) now routes through the blocked kernel;
  // the blocked order must still equal the naive left-to-right sum
  // whenever the sum is exact — integers small enough that every
  // partial is representable.
  std::vector<double> a(31), b(31);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<double>(i * 3);
    b[i] = static_cast<double>((i % 7) * 5);
  }
  double naive = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    naive += std::fabs(a[i] - b[i]);
  }
  EXPECT_EQ(naive, l1DistanceN(a.data(), b.data(), a.size()));
}

}  // namespace
}  // namespace asdf
