// End-to-end harness tests: generated configurations build real DAGs,
// training produces usable models, and a scaled-down experiment
// fingerpoints an injected fault. These are the slowest tests in the
// suite (a few seconds each).
#include "harness/experiment.h"

#include <gtest/gtest.h>

#include "common/ini.h"
#include "core/fpt_core.h"
#include "harness/pipelines.h"
#include "modules/modules.h"

namespace asdf::harness {
namespace {

class HarnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    modules::registerBuiltinModules();
    // One shared scaled-down training run for all experiment tests.
    model_ = new analysis::BlackBoxModel(trainModel(baseSpec()));
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
  }

  static ExperimentSpec baseSpec() {
    ExperimentSpec spec;
    spec.slaves = 8;
    spec.duration = 900.0;
    spec.trainDuration = 300.0;
    spec.trainWarmup = 90.0;
    spec.seed = 4242;
    spec.centroids = 8;
    spec.fault.node = 3;
    spec.fault.startTime = 250.0;
    return spec;
  }

  static analysis::BlackBoxModel* model_;
};

analysis::BlackBoxModel* HarnessTest::model_ = nullptr;

TEST_F(HarnessTest, GeneratedConfigsParse) {
  PipelineParams params;
  params.slaves = 5;
  const IniFile bb = parseIni(buildBlackBoxConfig(params));
  // Per slave: sadc + knn + ibuffer; plus analysis + print.
  EXPECT_EQ(bb.sections.size(), 5u * 3u + 2u);
  const IniFile wb = parseIni(buildWhiteBoxConfig(params));
  EXPECT_EQ(wb.sections.size(), 5u * 2u + 2u);
  const IniFile both = parseIni(buildCombinedConfig(params));
  EXPECT_EQ(both.sections.size(), bb.sections.size() + wb.sections.size());
}

TEST_F(HarnessTest, TrainedModelHasExpectedShape) {
  EXPECT_EQ(model_->states(), 8u);
  EXPECT_EQ(model_->dims(), 82u);  // 64 node + 18 NIC metrics
  for (double s : model_->sigmas) EXPECT_GT(s, 0.0);
}

TEST_F(HarnessTest, FaultFreeRunHasLowFalsePositiveRate) {
  ExperimentSpec spec = baseSpec();
  spec.fault.type = faults::FaultType::kNone;
  const ExperimentResult result = runExperiment(spec, *model_);
  EXPECT_GT(result.blackBox.size(), 50u);
  EXPECT_GT(result.whiteBox.size(), 50u);
  EXPECT_LT(analysis::flaggedFractionPct(result.blackBox), 8.0);
  EXPECT_LT(analysis::flaggedFractionPct(result.whiteBox), 8.0);
  EXPECT_GT(result.jobsCompleted, 0);
}

TEST_F(HarnessTest, CpuHogIsFingerpointedByBlackBox) {
  ExperimentSpec spec = baseSpec();
  spec.fault.type = faults::FaultType::kCpuHog;
  const ExperimentResult result = runExperiment(spec, *model_);
  const ExperimentSummary summary = summarize(result);
  EXPECT_GT(summary.blackBox.eval.balancedAccuracyPct(), 70.0);
  EXPECT_GE(summary.blackBox.latencySeconds, 0.0);
  EXPECT_GT(summary.combined.eval.balancedAccuracyPct(), 70.0);
}

TEST_F(HarnessTest, ReduceHangIsFingerpointedByWhiteBox) {
  ExperimentSpec spec = baseSpec();
  spec.fault.type = faults::FaultType::kHadoop2080;
  const ExperimentResult result = runExperiment(spec, *model_);
  const ExperimentSummary summary = summarize(result);
  // HADOOP-2080 stays dormant until a reduce on the sick node reaches
  // its sort phase — the paper reports exactly this: long latencies
  // and depressed accuracy for reduce hangs. Assert that the culprit
  // IS eventually fingerpointed, and that once the hang manifests the
  // white-box analysis keeps flagging it.
  ASSERT_GE(summary.whiteBox.latencySeconds, 0.0);
  analysis::GroundTruth postManifest = result.truth;
  postManifest.faultStart =
      result.truth.faultStart + summary.whiteBox.latencySeconds;
  const analysis::EvalResult post =
      analysis::evaluate(result.whiteBox, postManifest);
  EXPECT_GT(post.balancedAccuracyPct(), 60.0);
}

TEST_F(HarnessTest, MonitoringCostIsNegligible) {
  ExperimentSpec spec = baseSpec();
  spec.fault.type = faults::FaultType::kNone;
  const ExperimentResult result = runExperiment(spec, *model_);
  // The paper's Table 3 bound: everything well under 1% of a core.
  EXPECT_LT(result.sadcRpcdCpuPct, 1.0);
  EXPECT_LT(result.hadoopLogRpcdCpuPct, 1.0);
  EXPECT_GT(result.sadcRpcdCpuPct, 0.0);
  EXPECT_GT(result.fptCoreCpuPct, 0.0);
  EXPECT_GT(result.fptCoreMemMb, 0.0);
}

TEST_F(HarnessTest, RpcBandwidthMatchesTable4Shape) {
  ExperimentSpec spec = baseSpec();
  spec.fault.type = faults::FaultType::kNone;
  const ExperimentResult result = runExperiment(spec, *model_);
  ASSERT_EQ(result.rpcChannels.size(), 3u);
  double totalPerIter = 0.0;
  for (const auto& ch : result.rpcChannels) {
    EXPECT_EQ(ch.connects, spec.slaves);
    EXPECT_GT(ch.calls, 0);
    // Static overhead ~2 kB per node per channel, per-iteration under
    // a few kB/s (Table 4's order of magnitude).
    EXPECT_GT(ch.staticOverheadKb, 1.0);
    EXPECT_LT(ch.staticOverheadKb, 4.0);
    EXPECT_GT(ch.perIterationKbPerSec, 0.05);
    EXPECT_LT(ch.perIterationKbPerSec, 5.0);
    totalPerIter += ch.perIterationKbPerSec;
  }
  EXPECT_LT(totalPerIter, 8.0);
}

TEST_F(HarnessTest, ThresholdSweepUsesRecordedScores) {
  ExperimentSpec spec = baseSpec();
  spec.fault.type = faults::FaultType::kCpuHog;
  const ExperimentResult result = runExperiment(spec, *model_);
  // Higher thresholds can only reduce flagged decisions.
  long prevFlags = 1L << 40;
  for (double threshold : {0.0, 20.0, 60.0, 120.0}) {
    const auto swept = analysis::applyThreshold(result.blackBox, threshold);
    long flags = 0;
    for (const auto& r : swept) {
      for (double f : r.flags) flags += f > 0.5 ? 1 : 0;
    }
    EXPECT_LE(flags, prevFlags);
    prevFlags = flags;
  }
}

TEST_F(HarnessTest, ExperimentsAreReproducible) {
  ExperimentSpec spec = baseSpec();
  spec.duration = 400.0;
  spec.fault.type = faults::FaultType::kCpuHog;
  const ExperimentResult a = runExperiment(spec, *model_);
  const ExperimentResult b = runExperiment(spec, *model_);
  ASSERT_EQ(a.blackBox.size(), b.blackBox.size());
  for (std::size_t i = 0; i < a.blackBox.size(); ++i) {
    EXPECT_EQ(a.blackBox[i].flags, b.blackBox[i].flags);
  }
  EXPECT_EQ(a.jobsCompleted, b.jobsCompleted);
}

}  // namespace
}  // namespace asdf::harness
