// Parameterized end-to-end sweep: every Table 2 fault, injected on one
// slave, must be fingerpointed by the combined analysis with balanced
// accuracy meaningfully above chance and without flooding false
// positives on the healthy peers. This is the repository's headline
// regression test: it pins the paper's central result.
#include <gtest/gtest.h>

#include "faults/faults.h"
#include "harness/experiment.h"
#include "modules/modules.h"

namespace asdf::harness {
namespace {

class AllFaultsTest : public ::testing::TestWithParam<faults::FaultType> {
 protected:
  static void SetUpTestSuite() {
    modules::registerBuiltinModules();
    model_ = new analysis::BlackBoxModel(trainModel(baseSpec()));
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
  }

  static ExperimentSpec baseSpec() {
    ExperimentSpec spec;
    spec.slaves = 8;
    spec.duration = 1200.0;
    spec.trainDuration = 400.0;
    spec.seed = 42;
    spec.fault.node = 3;
    spec.fault.startTime = 400.0;
    return spec;
  }

  static analysis::BlackBoxModel* model_;
};

analysis::BlackBoxModel* AllFaultsTest::model_ = nullptr;

TEST_P(AllFaultsTest, CombinedAnalysisLocalizesTheCulprit) {
  ExperimentSpec spec = baseSpec();
  spec.fault.type = GetParam();
  const ExperimentResult result = runExperiment(spec, *model_);
  const ExperimentSummary summary = summarize(result);

  // The culprit is eventually fingerpointed...
  EXPECT_GE(summary.combined.latencySeconds, 0.0)
      << faults::faultName(GetParam());
  // ...with above-chance balanced accuracy (the dormant reduce-side
  // bugs legitimately score lower — the paper reports the same)...
  const bool dormantFault = GetParam() == faults::FaultType::kHadoop1152;
  EXPECT_GT(summary.combined.eval.balancedAccuracyPct(),
            dormantFault ? 55.0 : 70.0)
      << faults::faultName(GetParam());
  // ...and healthy peers stay mostly quiet.
  EXPECT_GT(summary.combined.eval.trueNegativeRate(), 0.60)
      << faults::faultName(GetParam());
}

TEST_P(AllFaultsTest, BothAnalysesKeepEmittingThroughTheFault) {
  ExperimentSpec spec = baseSpec();
  spec.duration = 800.0;
  spec.fault.type = GetParam();
  const ExperimentResult result = runExperiment(spec, *model_);
  // Monitoring must not stall under any fault (the lockstep white-box
  // synchronization is the risky path here).
  EXPECT_GT(result.blackBox.size(), 100u) << faults::faultName(GetParam());
  EXPECT_GT(result.whiteBox.size(), 100u) << faults::faultName(GetParam());
  EXPECT_EQ(result.syncDroppedSeconds, 0) << faults::faultName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Table2, AllFaultsTest, ::testing::ValuesIn(faults::allFaults()),
    [](const ::testing::TestParamInfo<faults::FaultType>& info) {
      std::string name = faults::faultName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace asdf::harness
