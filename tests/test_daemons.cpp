#include "rpc/daemons.h"

#include <gtest/gtest.h>

#include "hadoop/cluster.h"
#include "metrics/catalog.h"
#include "sim/engine.h"

namespace asdf::rpc {
namespace {

class DaemonTest : public ::testing::Test {
 protected:
  DaemonTest()
      : cluster_(makeParams(), 21, engine_) {
    cluster_.start();
  }

  static hadoop::HadoopParams makeParams() {
    hadoop::HadoopParams p;
    p.slaveCount = 3;
    return p;
  }

  static hadoop::JobSpec smallJob() {
    hadoop::JobSpec spec;
    spec.inputBytes = 48.0e6;
    spec.numReduces = 2;
    spec.mapOutputRatio = 0.5;
    return spec;
  }

  sim::SimEngine engine_;
  hadoop::Cluster cluster_;
};

TEST_F(DaemonTest, SadcFetchRoundTripsSnapshot) {
  RpcHub hub(cluster_, 0.0);
  engine_.runUntil(5.0);
  const metrics::SadcSnapshot direct = cluster_.node(1).sadcCollect();
  const metrics::SadcSnapshot viaRpc = hub.sadc(1).fetch();
  ASSERT_EQ(viaRpc.node.size(), metrics::kNodeMetricCount);
  ASSERT_EQ(viaRpc.nic.size(), metrics::kNicMetricCount);
  EXPECT_DOUBLE_EQ(viaRpc.time, direct.time);
  for (std::size_t i = 0; i < direct.node.size(); ++i) {
    EXPECT_DOUBLE_EQ(viaRpc.node[i], direct.node[i]) << i;
  }
  EXPECT_EQ(viaRpc.processes.size(), direct.processes.size());
}

TEST_F(DaemonTest, SadcChannelTracksTraffic) {
  RpcHub hub(cluster_, 0.0);
  engine_.runUntil(3.0);
  for (int i = 0; i < 10; ++i) hub.sadc(1).fetch();
  const RpcChannelStats& ch = hub.transports().channel("sadc-tcp");
  EXPECT_EQ(ch.calls(), 10);
  EXPECT_EQ(ch.connects(), 3);  // one per slave at hub construction
  // One sadc snapshot is roughly a kilobyte on the wire (Table 4).
  EXPECT_GT(ch.bytesPerCall(), 500.0);
  EXPECT_LT(ch.bytesPerCall(), 4000.0);
}

TEST_F(DaemonTest, HadoopLogDaemonProducesStateVectors) {
  RpcHub hub(cluster_, 0.0);
  cluster_.jobTracker().submit(smallJob(), 0.0);
  std::size_t ttSamples = 0;
  std::size_t dnSamples = 0;
  for (int t = 1; t <= 120; ++t) {
    engine_.runUntil(t);
    for (const auto& s : hub.hadoopLog(1).fetchTt(t)) {
      EXPECT_EQ(s.counts.size(), hadooplog::kTtStateCount);
      ++ttSamples;
    }
    for (const auto& s : hub.hadoopLog(1).fetchDn(t)) {
      EXPECT_EQ(s.counts.size(), hadooplog::kDnStateCount);
      ++dnSamples;
    }
  }
  // One sample per second, minus the finalization lag.
  EXPECT_GE(ttSamples, 115u);
  EXPECT_GE(dnSamples, 115u);
}

TEST_F(DaemonTest, HadoopLogSamplesAreContiguousSeconds) {
  RpcHub hub(cluster_, 0.0);
  cluster_.jobTracker().submit(smallJob(), 0.0);
  long expected = 0;
  for (int t = 1; t <= 60; ++t) {
    engine_.runUntil(t);
    for (const auto& s : hub.hadoopLog(2).fetchTt(t)) {
      EXPECT_EQ(s.second, expected);
      ++expected;
    }
  }
  EXPECT_GT(expected, 50);
}

TEST_F(DaemonTest, DaemonsMeterTheirCpu) {
  RpcHub hub(cluster_, 0.0);
  engine_.runUntil(5.0);
  for (int i = 0; i < 100; ++i) {
    hub.sadc(1).fetch();
    hub.hadoopLog(1).fetchTt(5.0);
  }
  EXPECT_GT(hub.sadcCpuSeconds(), 0.0);
  EXPECT_GT(hub.hadoopLogCpuSeconds(), 0.0);
  EXPECT_GT(hub.sadcMemoryBytes(), 0u);
  EXPECT_GT(hub.hadoopLogMemoryBytes(), 0u);
}

TEST_F(DaemonTest, FetchChargesTheMonitoredNode) {
  RpcHub hub(cluster_, 0.0);
  engine_.runUntil(2.0);
  // Fetch repeatedly within one tick, then close the tick and check
  // that the node recorded monitoring traffic.
  for (int i = 0; i < 50; ++i) hub.sadc(1).fetch();
  cluster_.node(1).endTick(3.0);
  const auto snap = cluster_.node(1).sadcCollect();
  EXPECT_GT(snap.nic[metrics::kNicTxKbPerSec], 10.0);
}

TEST_F(DaemonTest, SeparateChannelsForTtAndDn) {
  RpcHub hub(cluster_, 0.0);
  engine_.runUntil(10.0);
  hub.hadoopLog(1).fetchTt(10.0);
  hub.hadoopLog(1).fetchDn(10.0);
  EXPECT_EQ(hub.transports().channel("hl-tt-tcp").calls(), 1);
  EXPECT_EQ(hub.transports().channel("hl-dn-tcp").calls(), 1);
}

}  // namespace
}  // namespace asdf::rpc
