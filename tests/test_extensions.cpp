// Integration tests for the Section 5 extension modules: strace
// collection + Markov scoring, active mitigation, and the csv_sink
// offline-logging path.
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/strings.h"
#include "core/fpt_core.h"
#include "faults/faults.h"
#include "harness/experiment.h"
#include "modules/modules.h"
#include "rpc/daemons.h"
#include "workload/gridmix.h"

namespace asdf {
namespace {

class ExtensionTest : public ::testing::Test {
 protected:
  ExtensionTest()
      : cluster_(makeParams(), 4321, engine_),
        gridmix_(cluster_, {}, 4322) {
    modules::registerBuiltinModules();
    cluster_.start();
    gridmix_.start();
    hub_ = std::make_unique<rpc::RpcHub>(cluster_, 0.0);
    env_.provide("rpc", hub_.get());
  }

  static hadoop::HadoopParams makeParams() {
    hadoop::HadoopParams p;
    p.slaveCount = 4;
    return p;
  }

  /// Config: per-slave strace -> mavgvec, one analysis_wb, print.
  std::string straceConfig(double k = 3.0) const {
    std::string config;
    for (int i = 1; i <= 4; ++i) {
      config += strformat(
          "[strace]\nid = st%d\nnode = %d\nwarmup = 90\n\n", i, i);
      config += strformat(
          "[mavgvec]\nid = m%d\nwindow = 60\nslide = 10\n"
          "input[input] = st%d.output0\n\n",
          i, i);
    }
    config += strformat("[analysis_wb]\nid = wb\nk = %g\n", k);
    for (int i = 1; i <= 4; ++i) {
      config += strformat("input[a%d] = m%d.mean\n", i - 1, i);
      config += strformat("input[d%d] = m%d.stddev\n", i - 1, i);
    }
    config += "\n[print]\nid = StraceAlarm\nquiet = 1\ninput[a] = @wb\n";
    return config;
  }

  sim::SimEngine engine_;
  hadoop::Cluster cluster_;
  workload::GridMixGenerator gridmix_;
  std::unique_ptr<rpc::RpcHub> hub_;
  core::Environment env_;
};

TEST_F(ExtensionTest, StraceDaemonShipsTraces) {
  engine_.runUntil(30.0);
  const auto trace = hub_->strace(1).fetch();
  EXPECT_FALSE(trace.empty());
  EXPECT_GT(hub_->transports().channel("strace-tcp").calls(), 0);
  EXPECT_GT(hub_->strace(1).cpuSeconds(), 0.0);
}

TEST_F(ExtensionTest, StracePipelineFlagsHungNode) {
  std::vector<core::Alarm> alarms;
  env_.alarmSink = [&](const core::Alarm& a) { alarms.push_back(a); };
  core::FptCore fpt(engine_, env_, nullptr);
  fpt.configureFromText(straceConfig());

  // Inject the reduce hang: its futex/nanosleep storm is exactly what
  // the Markov model calls off-distribution.
  faults::FaultSpec spec;
  spec.type = faults::FaultType::kHadoop2080;
  spec.node = 2;
  spec.startTime = 200.0;
  faults::FaultInjector injector(cluster_, spec);
  injector.arm();

  engine_.runUntil(1200.0);
  ASSERT_FALSE(alarms.empty());
  long culpritFlags = 0;
  long otherFlags = 0;
  for (const auto& a : alarms) {
    for (std::size_t i = 0; i < a.flags.size(); ++i) {
      if (a.flags[i] < 0.5) continue;
      if (i == 1) {
        ++culpritFlags;  // slave2 is index 1
      } else {
        ++otherFlags;
      }
    }
  }
  EXPECT_GT(culpritFlags, 0);
  EXPECT_GT(culpritFlags, otherFlags);
}

TEST_F(ExtensionTest, StraceRequiresNodeParam) {
  core::FptCore fpt(engine_, env_, nullptr);
  EXPECT_THROW(fpt.configureFromText("[strace]\nid = s\n"), ConfigError);
}

class RecordingMitigator : public modules::Mitigator {
 public:
  void quarantine(const std::string& origin, SimTime when) override {
    quarantined.emplace_back(origin, when);
  }
  std::vector<std::pair<std::string, SimTime>> quarantined;
};

// Scripted alarm source for mitigation tests.
class AlarmFeeder final : public core::Module {
 public:
  static std::vector<std::vector<double>>* script;
  void init(core::ModuleContext& ctx) override {
    out_ = ctx.addOutput("alarms", "slave1;slave2;slave3");
    ctx.requestPeriodic(1.0);
  }
  void run(core::ModuleContext& ctx, core::RunReason) override {
    if (i_ < script->size()) ctx.write(out_, (*script)[i_++]);
  }

 private:
  std::size_t i_ = 0;
  int out_ = -1;
};
std::vector<std::vector<double>>* AlarmFeeder::script = nullptr;

TEST(MitigateModule, QuarantinesAfterConsecutiveAlarms) {
  modules::registerBuiltinModules();
  core::ModuleRegistry::global().registerType(
      "alarm_feeder", [] { return std::make_unique<AlarmFeeder>(); });
  std::vector<std::vector<double>> script = {
      {0, 1, 0}, {0, 1, 0},  // only 2 consecutive: no action yet
      {0, 0, 0},             // streak broken
      {0, 1, 0}, {0, 1, 0}, {0, 1, 0},  // 3 consecutive -> quarantine
      {0, 1, 0},                        // already quarantined: no repeat
  };
  AlarmFeeder::script = &script;

  sim::SimEngine engine;
  RecordingMitigator mitigator;
  core::Environment env;
  env.provide<modules::Mitigator>("mitigator", &mitigator);
  core::FptCore fpt(engine, env);
  fpt.configureFromText(R"(
[alarm_feeder]
id = feeder

[mitigate]
id = medic
consecutive = 3
input[a] = @feeder
)");
  engine.runUntil(10.0);
  ASSERT_EQ(mitigator.quarantined.size(), 1u);
  EXPECT_EQ(mitigator.quarantined[0].first, "slave2");
  EXPECT_DOUBLE_EQ(mitigator.quarantined[0].second, 6.0);
}

TEST(MitigateModule, RequiresMitigatorService) {
  modules::registerBuiltinModules();
  core::ModuleRegistry::global().registerType(
      "alarm_feeder", [] { return std::make_unique<AlarmFeeder>(); });
  std::vector<std::vector<double>> script;
  AlarmFeeder::script = &script;
  sim::SimEngine engine;
  core::FptCore fpt(engine, core::Environment{});
  EXPECT_THROW(fpt.configureFromText(R"(
[alarm_feeder]
id = feeder

[mitigate]
id = medic
input[a] = @feeder
)"),
               std::logic_error);
}

TEST_F(ExtensionTest, MitigationBlacklistsTheFingerpointedNode) {
  // Full loop: analysis alarms -> mitigate -> JobTracker blacklist.
  class JtMitigator : public modules::Mitigator {
   public:
    explicit JtMitigator(hadoop::Cluster& cluster) : cluster_(cluster) {}
    void quarantine(const std::string& origin, SimTime) override {
      long node = 0;
      if (startsWith(origin, "slave") &&
          parseInt(origin.substr(5), node)) {
        cluster_.jobTracker().blacklistNode(static_cast<NodeId>(node));
      }
    }

   private:
    hadoop::Cluster& cluster_;
  };
  JtMitigator mitigator(cluster_);
  env_.provide<modules::Mitigator>("mitigator", &mitigator);

  std::string config = straceConfig();
  config += "\n[mitigate]\nid = medic\nconsecutive = 2\ninput[a] = @wb\n";
  core::FptCore fpt(engine_, env_, nullptr);
  fpt.configureFromText(config);

  faults::FaultSpec spec;
  spec.type = faults::FaultType::kHadoop2080;
  spec.node = 2;
  spec.startTime = 200.0;
  faults::FaultInjector injector(cluster_, spec);
  injector.arm();

  engine_.runUntil(1200.0);
  EXPECT_TRUE(cluster_.jobTracker().isBlacklisted(2));
  EXPECT_FALSE(cluster_.jobTracker().isBlacklisted(1));
}

TEST(CsvSink, WritesRowsForEverySample) {
  modules::registerBuiltinModules();
  core::ModuleRegistry::global().registerType(
      "alarm_feeder", [] { return std::make_unique<AlarmFeeder>(); });
  std::vector<std::vector<double>> script = {{1, 0, 0}, {0, 1, 0}};
  AlarmFeeder::script = &script;
  const std::string path = "/tmp/asdf_csv_sink_test.csv";
  std::remove(path.c_str());

  sim::SimEngine engine;
  core::FptCore fpt(engine, core::Environment{});
  fpt.configureFromText("[alarm_feeder]\nid = feeder\n\n[csv_sink]\nid = "
                        "log\nfile = " +
                        path + "\ninput[a] = @feeder\n");
  engine.runUntil(5.0);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);  // header + 2 samples
  EXPECT_TRUE(contains(lines[0], "time"));
  EXPECT_TRUE(contains(lines[1], "slave1;slave2;slave3"));
  EXPECT_TRUE(contains(lines[1], "alarms"));
  EXPECT_TRUE(contains(lines[2], "2.000"));
}

TEST(CsvSink, RequiresFileParam) {
  modules::registerBuiltinModules();
  core::ModuleRegistry::global().registerType(
      "alarm_feeder", [] { return std::make_unique<AlarmFeeder>(); });
  std::vector<std::vector<double>> script;
  AlarmFeeder::script = &script;
  sim::SimEngine engine;
  core::FptCore fpt(engine, core::Environment{});
  EXPECT_THROW(fpt.configureFromText(
                   "[alarm_feeder]\nid = feeder\n\n[csv_sink]\nid = "
                   "log\ninput[a] = @feeder\n"),
               ConfigError);
}

}  // namespace
}  // namespace asdf
