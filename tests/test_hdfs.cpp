#include "hadoop/hdfs.h"

#include <set>

#include <gtest/gtest.h>

#include "hadoop/config.h"
#include "hadoop/node.h"

namespace asdf::hadoop {
namespace {

class HdfsTest : public ::testing::Test {
 protected:
  HdfsTest() : params_(), rng_(7) {
    params_.slaveCount = 8;
    for (NodeId id = 0; id <= params_.slaveCount; ++id) {
      nodes_.push_back(std::make_unique<Node>(id, params_, rng_.split()));
    }
  }

  Node& node(NodeId id) { return *nodes_[static_cast<std::size_t>(id)]; }

  void tickBegin() {
    for (auto& n : nodes_) n->beginTick();
  }
  void tickFinalize() {
    for (auto& n : nodes_) n->finalizeResources();
  }

  HadoopParams params_;
  Rng rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST_F(HdfsTest, CreateFileProducesCorrectBlockCount) {
  NameNode nn(8, 3);
  Rng rng(1);
  EXPECT_EQ(nn.createFile(64.0e6, 16.0e6, rng).size(), 4u);
  EXPECT_EQ(nn.createFile(65.0e6, 16.0e6, rng).size(), 5u);  // ceil
  EXPECT_EQ(nn.createFile(1.0, 16.0e6, rng).size(), 1u);     // min 1
}

TEST_F(HdfsTest, ReplicasAreDistinctSlaves) {
  NameNode nn(8, 3);
  Rng rng(2);
  const auto blocks = nn.createFile(320.0e6, 16.0e6, rng);
  for (long b : blocks) {
    const auto& reps = nn.replicas(b);
    ASSERT_EQ(reps.size(), 3u);
    std::set<NodeId> unique(reps.begin(), reps.end());
    EXPECT_EQ(unique.size(), 3u);
    for (NodeId r : reps) {
      EXPECT_GE(r, 1);
      EXPECT_LE(r, 8);
    }
  }
}

TEST_F(HdfsTest, ReplicationCappedBySlaveCount) {
  NameNode nn(2, 3);
  Rng rng(3);
  const long b = nn.createBlock(kInvalidNode, rng);
  EXPECT_EQ(nn.replicas(b).size(), 2u);
}

TEST_F(HdfsTest, CreateBlockHonorsPreferredFirstReplica) {
  NameNode nn(8, 3);
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const long b = nn.createBlock(5, rng);
    ASSERT_FALSE(nn.replicas(b).empty());
    EXPECT_EQ(nn.replicas(b)[0], 5);
  }
}

TEST_F(HdfsTest, DeleteBlockReturnsReplicasThenForgets) {
  NameNode nn(8, 3);
  Rng rng(5);
  const long b = nn.createBlock(2, rng);
  const auto where = nn.deleteBlock(b);
  EXPECT_EQ(where.size(), 3u);
  EXPECT_TRUE(nn.replicas(b).empty());
  EXPECT_TRUE(nn.deleteBlock(b).empty());  // idempotent
}

TEST_F(HdfsTest, BlockIdsAreUnique) {
  NameNode nn(8, 3);
  Rng rng(6);
  std::set<long> ids;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ids.insert(nn.createBlock(kInvalidNode, rng)).second);
  }
}

TEST_F(HdfsTest, LocalTransferUsesDiskOnly) {
  BlockTransfer t(&node(1), &node(1), 16.0e6, /*readsSrcDisk=*/true);
  double moved = 0.0;
  for (int i = 0; i < 10 && !t.complete(); ++i) {
    tickBegin();
    t.requestResources();
    tickFinalize();
    moved += t.advance(1.0);
  }
  EXPECT_TRUE(t.complete());
  EXPECT_NEAR(moved, 16.0e6, 1.0);
}

TEST_F(HdfsTest, RemoteTransferBoundedByNic) {
  // 200 MB across a 125 MB/s NIC takes at least 2 ticks.
  BlockTransfer t(&node(1), &node(2), 200.0e6, /*readsSrcDisk=*/false);
  int ticks = 0;
  while (!t.complete() && ticks < 20) {
    tickBegin();
    t.requestResources();
    tickFinalize();
    t.advance(1.0);
    ++ticks;
  }
  EXPECT_TRUE(t.complete());
  EXPECT_GE(ticks, 2);
}

TEST_F(HdfsTest, LossOnEitherEndThrottlesTransfer) {
  node(2).nic().setLossRate(0.5);
  BlockTransfer t(&node(1), &node(2), 16.0e6, /*readsSrcDisk=*/false);
  tickBegin();
  t.requestResources();
  tickFinalize();
  const double moved = t.advance(1.0);
  // At 50% loss goodput collapses to a few percent of line rate.
  EXPECT_LT(moved, 0.10 * 125.0e6);
  EXPECT_GT(moved, 0.0);
}

TEST_F(HdfsTest, ConsumerThrottleScalesProgressAndResets) {
  BlockTransfer t(&node(1), &node(2), 1000.0e6, /*readsSrcDisk=*/false);
  tickBegin();
  t.requestResources();
  tickFinalize();
  t.setConsumerThrottle(0.5);
  const double throttled = t.advance(1.0);

  tickBegin();
  t.requestResources();
  tickFinalize();
  const double full = t.advance(1.0);
  EXPECT_NEAR(throttled, 0.5 * full, full * 0.05);
}

TEST_F(HdfsTest, TransferRecordsActivityOnBothNodes) {
  BlockTransfer t(&node(1), &node(2), 16.0e6, /*readsSrcDisk=*/true);
  tickBegin();
  t.requestResources();
  tickFinalize();
  const double moved = t.advance(1.0);
  ASSERT_GT(moved, 0.0);
  // endTick() consumes the accumulated activity into the OS model.
  node(1).endTick(1.0);
  node(2).endTick(1.0);
  const auto src = node(1).sadcCollect();
  const auto dst = node(2).sadcCollect();
  EXPECT_GT(src.node[metrics::kIoReadBlocksPerSec], 0.0);
  EXPECT_GT(src.nic[metrics::kNicTxKbPerSec], 0.0);
  EXPECT_GT(dst.nic[metrics::kNicRxKbPerSec], 0.0);
}

TEST_F(HdfsTest, LossyTransferReportsDrops) {
  node(1).nic().setLossRate(0.5);
  BlockTransfer t(&node(1), &node(2), 16.0e6, /*readsSrcDisk=*/false);
  tickBegin();
  t.requestResources();
  tickFinalize();
  t.advance(1.0);
  node(1).endTick(1.0);
  EXPECT_GT(node(1).sadcCollect().nic[metrics::kNicTxDropPerSec], 0.0);
}

}  // namespace
}  // namespace asdf::hadoop
