// EventLoop, TcpServer and RealTimeDriver behavior over real sockets
// and real (but short) wall-clock waits.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/realtime.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/tcp_server.h"
#include "rpc/wire.h"
#include "sim/engine.h"

namespace asdf::net {
namespace {

// Minimal blocking client for poking the server from the test thread.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void sendAll(const std::vector<std::uint8_t>& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  /// Blocks until one full frame arrives (or EOF, returning false).
  bool readFrame(Frame& out) {
    std::uint8_t chunk[512];
    while (!decoder_.next(out)) {
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return false;
      if (!decoder_.feed(chunk, static_cast<std::size_t>(n))) return false;
    }
    return true;
  }

  /// Blocks until the server closes the connection.
  bool waitForEof() {
    std::uint8_t chunk[64];
    for (;;) {
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

TEST(EventLoop, TimersFireInDeadlineOrderAndCancelWorks) {
  EventLoop loop;
  std::vector<char> order;
  loop.addTimer(0.02, [&] { order.push_back('a'); });
  const int cancelMe = loop.addTimer(0.03, [&] { order.push_back('X'); });
  loop.addTimer(0.005, [&] { order.push_back('c'); });
  loop.addTimer(0.05, [&] {
    order.push_back('d');
    loop.stop();
  });
  loop.cancelTimer(cancelMe);
  loop.run();
  EXPECT_EQ(std::string(order.begin(), order.end()), "cad");
}

TEST(EventLoop, WatchedFdDeliversReadable) {
  EventLoop loop;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::string received;
  loop.watchFd(fds[0], /*wantRead=*/true, /*wantWrite=*/false,
               [&](int fd, std::uint32_t events) {
                 ASSERT_TRUE(events & EventLoop::kReadable);
                 char buf[16];
                 const ssize_t n = ::read(fd, buf, sizeof(buf));
                 ASSERT_GT(n, 0);
                 received.assign(buf, static_cast<std::size_t>(n));
                 loop.stop();
               });
  ASSERT_EQ(::write(fds[1], "ping", 4), 4);
  loop.run();
  EXPECT_EQ(received, "ping");
  loop.unwatchFd(fds[0]);
  EXPECT_EQ(loop.watchedFds(), 0u);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoop, StopFromAnotherThreadUnblocksRun) {
  EventLoop loop;
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    loop.stop();
  });
  loop.run();  // no fds, no timers: blocks until the wakeup fd fires
  stopper.join();
  EXPECT_TRUE(loop.stopped());
}

TEST(EventLoop, RunOnceHonorsTimeout) {
  EventLoop loop;
  EXPECT_EQ(loop.runOnce(0.01), 0);  // nothing due, returns after timeout
}

TEST(TcpServer, ServesFramesAndSurvivesHandlerErrors) {
  EventLoop loop;
  TcpServer server(loop, 0);
  ASSERT_GT(server.port(), 0);
  server.onFrame([](TcpServer::Connection& conn, const Frame& frame) {
    if (frame.type == MsgType::kHello) {
      rpc::Decoder in(frame.payload);
      in.getU32();
      rpc::Encoder out;
      out.putString("echo:" + in.getString());
      conn.send(MsgType::kHelloAck, out);
    } else {
      throw std::runtime_error("unhandled type");  // must not kill server
    }
  });
  std::thread loopThread([&] { loop.run(); });

  {
    TestClient client(server.port());
    rpc::Encoder hello;
    hello.putU32(kProtocolVersion);
    hello.putString("hi");
    client.sendAll(encodeFrame(MsgType::kHello, hello));

    Frame reply;
    ASSERT_TRUE(client.readFrame(reply));
    EXPECT_EQ(reply.type, MsgType::kHelloAck);
    rpc::Decoder in(reply.payload);
    EXPECT_EQ(in.getString(), "echo:hi");

    // A handler exception comes back as kError, on the same connection.
    client.sendAll(encodeFrame(MsgType::kStats, nullptr, 0));
    ASSERT_TRUE(client.readFrame(reply));
    EXPECT_EQ(reply.type, MsgType::kError);
  }

  loop.stop();
  loopThread.join();
  EXPECT_EQ(server.framesServed(), 2);
  EXPECT_EQ(server.connectionsRejected(), 0);
}

TEST(TcpServer, MalformedFramingDropsOnlyThatConnection) {
  EventLoop loop;
  TcpServer server(loop, 0);
  server.onFrame([](TcpServer::Connection& conn, const Frame& frame) {
    rpc::Encoder out;
    out.putU32(0);
    conn.send(frame.type, out);
  });
  std::thread loopThread([&] { loop.run(); });

  {
    TestClient vandal(server.port());
    TestClient bystander(server.port());

    const char* garbage = "this is definitely not an ASDF frame";
    vandal.sendAll(std::vector<std::uint8_t>(
        garbage, garbage + std::strlen(garbage)));
    EXPECT_TRUE(vandal.waitForEof());  // dropped, not wedged

    // The other connection keeps working.
    bystander.sendAll(encodeFrame(MsgType::kStats, nullptr, 0));
    Frame reply;
    ASSERT_TRUE(bystander.readFrame(reply));
    EXPECT_EQ(reply.type, MsgType::kStats);
  }

  loop.stop();
  loopThread.join();
  EXPECT_EQ(server.connectionsRejected(), 1);
  EXPECT_EQ(server.connectionCount(), 0u);
}

TEST(TcpServer, CrcCorruptionDropsConnection) {
  EventLoop loop;
  TcpServer server(loop, 0);
  server.onFrame([](TcpServer::Connection&, const Frame&) {});
  std::thread loopThread([&] { loop.run(); });

  {
    TestClient client(server.port());
    std::vector<std::uint8_t> frame = encodeFrame(MsgType::kStats, nullptr, 0);
    frame[12] ^= 0x01;  // corrupt the CRC field
    client.sendAll(frame);
    EXPECT_TRUE(client.waitForEof());
  }

  loop.stop();
  loopThread.join();
  EXPECT_EQ(server.connectionsRejected(), 1);
}

// A connection that goes quiet for longer than the idle timeout is
// reaped — the daemon's defense against leaked client sockets pinning
// buffers forever (DESIGN.md §13).
TEST(TcpServer, ReapsIdleConnections) {
  EventLoop loop;
  TcpServer server(loop, 0);
  server.onFrame([](TcpServer::Connection& conn, const Frame& frame) {
    rpc::Encoder out;
    out.putU32(0);
    conn.send(frame.type, out);
  });
  server.setIdleTimeout(0.15);  // before the loop thread starts
  std::thread loopThread([&] { loop.run(); });

  {
    TestClient client(server.port());
    client.sendAll(encodeFrame(MsgType::kStats, nullptr, 0));
    Frame reply;
    ASSERT_TRUE(client.readFrame(reply));  // active: not reaped yet
    EXPECT_TRUE(client.waitForEof());      // idle: reaped within ~0.3 s
  }

  loop.stop();
  loopThread.join();
  EXPECT_EQ(server.connectionsReaped(), 1);
  EXPECT_EQ(server.connectionCount(), 0u);
}

// A peer that requests data but never drains its socket cannot grow
// the outbound buffer without bound: past the cap the connection is
// dropped (its decoder couldn't survive a truncated stream anyway).
TEST(TcpServer, OutboundBufferOverCapDropsTheConnection) {
  EventLoop loop;
  TcpServer server(loop, 0);
  server.setMaxOutboundBytes(128 * 1024);
  const std::string blob(64 * 1024, 'x');
  server.onFrame([&blob](TcpServer::Connection& conn, const Frame& frame) {
    rpc::Encoder out;
    out.putString(blob);
    conn.send(frame.type, out);
  });
  std::thread loopThread([&] { loop.run(); });

  {
    TestClient client(server.port());
    // 1024 requests x 64 KiB responses = 64 MiB the client never
    // reads: far beyond what the kernel's socket buffers absorb, so
    // the outbound queue hits the cap and the connection is dropped
    // mid-burst — the server's memory stays bounded either way.
    std::vector<std::uint8_t> requests;
    for (int i = 0; i < 1024; ++i) {
      const std::vector<std::uint8_t> one =
          encodeFrame(MsgType::kStats, nullptr, 0);
      requests.insert(requests.end(), one.begin(), one.end());
    }
    client.sendAll(requests);
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
  }

  loop.stop();
  loopThread.join();
  EXPECT_EQ(server.connectionsOverflowed(), 1);
  EXPECT_EQ(server.connectionCount(), 0u);
}

// Writing a response into a connection whose peer already vanished
// must surface as a send error on that connection — never as a
// process-killing SIGPIPE (the daemons additionally ignore SIGPIPE;
// the server must not rely on that).
TEST(TcpServer, WriteToClosedPeerDoesNotKillTheProcess) {
  EventLoop loop;
  TcpServer server(loop, 0);
  server.onFrame([](TcpServer::Connection& conn, const Frame& frame) {
    // Give the peer's FIN (and the RST its closed socket answers our
    // data with) time to arrive before the 1 MiB response goes out.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    rpc::Encoder out;
    out.putString(std::string(1 << 20, 'x'));
    conn.send(frame.type, out);
  });
  std::thread loopThread([&] { loop.run(); });

  {
    TestClient client(server.port());
    client.sendAll(encodeFrame(MsgType::kStats, nullptr, 0));
  }  // gone before the handler replies

  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  {
    TestClient survivor(server.port());  // the server is still serving
    survivor.sendAll(encodeFrame(MsgType::kStats, nullptr, 0));
    Frame reply;
    EXPECT_TRUE(survivor.readFrame(reply));
  }

  loop.stop();
  loopThread.join();
  EXPECT_EQ(server.connectionCount(), 0u);
}

// --- RealTimeDriver ------------------------------------------------

// The no-spin contract: every loop iteration that doesn't finish the
// run takes a wait of at least the minimum nap. With an event due
// immediately (the pathological spin case), the driver must wait, not
// poll the steady clock in a tight loop.
TEST(RealTimeDriver, NeverSpinsEvenWithImmediatelyDueEvents) {
  sim::SimEngine engine;
  long fired = 0;
  engine.addPeriodic(0.001, [&] { ++fired; });  // always an event "due now"
  core::RealTimeDriver driver(engine, 1.0);
  std::vector<double> naps;
  driver.setWaiter([&](double seconds) {
    naps.push_back(seconds);
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  });
  driver.run(0.05);
  EXPECT_GT(fired, 0);
  ASSERT_FALSE(naps.empty());
  for (double nap : naps) {
    EXPECT_GE(nap, 0.001);  // minNap floor: wall time advances every pass
    EXPECT_LE(nap, 0.1);    // maxNap cap: stop() stays responsive
  }
  // Bounded iteration count is the point: a spinning driver would take
  // thousands of passes through a 50 ms run.
  EXPECT_LE(driver.waits(), 60);
  EXPECT_EQ(driver.waits(), static_cast<long>(naps.size()));
}

// An idle engine (empty ready set) must still tick forward to the end
// of the run — waiting in maxNap slices, not returning early and not
// spinning.
TEST(RealTimeDriver, IdleEngineAdvancesToEndWithoutSpinning) {
  sim::SimEngine engine;
  core::RealTimeDriver driver(engine, 10.0);
  driver.run(0.03);
  EXPECT_GE(driver.waits(), 1);
  EXPECT_LE(driver.waits(), 40);
  EXPECT_NEAR(engine.now(), 0.3, 1e-6);  // 0.03 s wall at 10x
  EXPECT_TRUE(engine.idle());
}

TEST(RealTimeDriver, StopInterruptsRun) {
  sim::SimEngine engine;
  core::RealTimeDriver driver(engine, 1.0);
  driver.setWaiter([&](double) { driver.stop(); });  // stop at first wait
  driver.run(60.0);  // must return promptly, not after a minute
  EXPECT_EQ(driver.waits(), 1);
}

TEST(RealTimeDriver, ScalesVirtualTime) {
  sim::SimEngine engine;
  std::vector<double> at;
  engine.addPeriodic(1.0, [&] { at.push_back(engine.now()); });
  core::RealTimeDriver driver(engine, 100.0);  // 100 virtual s per wall s
  driver.run(0.05);                            // => 5 virtual seconds
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
  ASSERT_GE(at.size(), 4u);
  EXPECT_DOUBLE_EQ(at.front(), 1.0);
}

}  // namespace
}  // namespace asdf::net
