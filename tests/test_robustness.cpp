// End-to-end robustness of the monitoring plane: collector outages on
// healthy nodes must not stop the analyses from localizing a real
// Table 2 fault, an unmonitorable-but-healthy node must raise a
// monitoring-degraded event rather than a fault alarm, losing quorum
// must suppress alarms entirely, and all of it must stay
// bit-reproducible across executors.
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "modules/modules.h"

namespace asdf::harness {
namespace {

ExperimentSpec smallSpec() {
  modules::registerBuiltinModules();
  ExperimentSpec spec;
  spec.slaves = 4;
  spec.duration = 150.0;
  spec.trainDuration = 80.0;
  spec.trainWarmup = 20.0;
  spec.seed = 1234;
  spec.fault.type = faults::FaultType::kCpuHog;
  spec.fault.node = 2;
  spec.fault.startTime = 60.0;
  return spec;
}

faults::MonitoringFaultSpec crashCollectors(NodeId node, double start,
                                            double end = kNoTime) {
  faults::MonitoringFaultSpec mf;
  mf.kind = faults::MonitoringFaultKind::kCrash;
  mf.node = node;
  mf.startTime = start;
  mf.endTime = end;
  return mf;
}

void expectIdenticalSeries(const analysis::AlarmSeries& a,
                           const analysis::AlarmSeries& b,
                           const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time) << label << " alarm " << i;
    EXPECT_EQ(a[i].flags, b[i].flags) << label << " alarm " << i;
    EXPECT_EQ(a[i].scores, b[i].scores) << label << " alarm " << i;
    EXPECT_EQ(a[i].health, b[i].health) << label << " alarm " << i;
  }
}

// A collector outage on a *healthy* node (slave4's daemons crash at
// t=70) must neither hide the real CPU hog on slave2 nor smear a fault
// alarm onto the unmonitorable node.
TEST(Robustness, LocalizesFaultDespiteCollectorOutage) {
  ExperimentSpec spec = smallSpec();
  // At 4 slaves the white-box deviations are smaller than at the
  // paper's 16; lower k so detection has margin with 3 survivors.
  spec.pipeline.wbK = 1.5;
  spec.monitoringFaults.push_back(crashCollectors(4, 70.0));
  const analysis::BlackBoxModel model = trainModel(spec);
  const ExperimentResult result = runExperiment(spec, model);

  ASSERT_FALSE(result.blackBox.empty());
  ASSERT_FALSE(result.whiteBox.empty());

  // The analyses still fingerpoint slave2 (index 1) even with only 3
  // of 4 collectors answering (quorum holds: 3 >= 3).
  bool flaggedFaulty = false;
  for (const auto* series : {&result.blackBox, &result.whiteBox}) {
    for (const auto& rec : *series) {
      ASSERT_EQ(rec.flags.size(), 4u);
      if (rec.time >= spec.fault.startTime && rec.flags[1] != 0.0) {
        flaggedFaulty = true;
      }
    }
  }
  EXPECT_TRUE(flaggedFaulty);

  // The white-box analysis stays clean on the healthy survivors
  // (black-box is allowed its usual transient false positives).
  for (const auto& rec : result.whiteBox) {
    EXPECT_EQ(rec.flags[0], 0.0) << "at " << rec.time;
    EXPECT_EQ(rec.flags[2], 0.0) << "at " << rec.time;
  }

  // After the outage settles, slave4 (index 3) is reported as
  // unmonitorable (health code 2) and is never fault-flagged — "we
  // can't see it" is not "it is faulty".
  int unmonitorableWindows = 0;
  for (const auto* series : {&result.blackBox, &result.whiteBox}) {
    for (const auto& rec : *series) {
      if (rec.time < 80.0) continue;
      ASSERT_EQ(rec.health.size(), 4u);
      EXPECT_EQ(rec.flags[3], 0.0) << "at " << rec.time;
      EXPECT_EQ(rec.health[3], 2.0) << "at " << rec.time;
      ++unmonitorableWindows;
    }
  }
  EXPECT_GT(unmonitorableWindows, 0);

  // Both analyses announced the degradation, naming the node.
  bool sawEvent = false;
  for (const auto& event : result.monitoringEvents) {
    if (event.unmonitorable == std::vector<std::string>{"slave4"}) {
      sawEvent = true;
      EXPECT_FALSE(event.belowQuorum);
      EXPECT_EQ(event.survivors, 3);
      EXPECT_GE(event.time, 70.0);
    }
  }
  EXPECT_TRUE(sawEvent);

  // The retry/breaker machinery actually engaged.
  EXPECT_GT(result.rpcRounds, 0);
  EXPECT_GT(result.rpcFailedRounds, 0);
  EXPECT_GT(result.rpcBreakerOpens, 0);
  EXPECT_GT(result.rpcFastFails, 0);
}

// Crashing the collectors of 2 of 4 nodes drops the survivor count
// below the quorum of 3: alarms are suppressed (a median over 2 peers
// is guesswork) and a below-quorum event is raised.
TEST(Robustness, BelowQuorumSuppressesAlarms) {
  ExperimentSpec spec = smallSpec();
  // Same detection margin as above: without suppression the CPU hog
  // *would* keep flagging slave2, so the all-zero check is meaningful.
  spec.pipeline.wbK = 1.5;
  spec.monitoringFaults.push_back(crashCollectors(3, 70.0));
  spec.monitoringFaults.push_back(crashCollectors(4, 70.0));
  const analysis::BlackBoxModel model = trainModel(spec);
  const ExperimentResult result = runExperiment(spec, model);

  // Once both outages are visible to the analysis windows, every flag
  // is zero — including the genuinely faulty slave2.
  int suppressedWindows = 0;
  for (const auto* series : {&result.blackBox, &result.whiteBox}) {
    for (const auto& rec : *series) {
      if (rec.time < 85.0) continue;
      for (std::size_t i = 0; i < rec.flags.size(); ++i) {
        EXPECT_EQ(rec.flags[i], 0.0)
            << "node " << i << " at " << rec.time;
      }
      ++suppressedWindows;
    }
  }
  EXPECT_GT(suppressedWindows, 0);

  bool sawBelowQuorum = false;
  for (const auto& event : result.monitoringEvents) {
    if (event.belowQuorum) {
      sawBelowQuorum = true;
      EXPECT_LT(event.survivors, event.quorum);
    }
  }
  EXPECT_TRUE(sawBelowQuorum);
}

// The robustness machinery must not perturb determinism: with a
// monitoring fault injected (including a recovery, so breaker probes
// and re-closure are exercised) the alarm series, health codes,
// monitoring events, and per-node RPC attempt schedules are
// bit-identical across repeated serial runs and a 4-thread pool run.
TEST(Robustness, DeterministicAcrossExecutorsUnderMonitoringFaults) {
  ExperimentSpec spec = smallSpec();
  // PacketLoss doubles as a monitoring-plane stressor (loss-coupled
  // retries draw from the per-node RNG streams).
  spec.fault.type = faults::FaultType::kPacketLoss;
  spec.monitoringFaults.push_back(crashCollectors(4, 70.0, 100.0));
  const analysis::BlackBoxModel model = trainModel(spec);

  spec.threads = 1;
  const ExperimentResult serial1 = runExperiment(spec, model);
  const ExperimentResult serial2 = runExperiment(spec, model);
  spec.threads = 4;
  const ExperimentResult pooled = runExperiment(spec, model);

  EXPECT_FALSE(serial1.blackBox.empty());
  EXPECT_GT(serial1.rpcRetries + serial1.rpcFailedRounds, 0);

  for (const ExperimentResult* other : {&serial2, &pooled}) {
    expectIdenticalSeries(serial1.blackBox, other->blackBox, "black-box");
    expectIdenticalSeries(serial1.whiteBox, other->whiteBox, "white-box");

    EXPECT_EQ(serial1.rpcRounds, other->rpcRounds);
    EXPECT_EQ(serial1.rpcRetries, other->rpcRetries);
    EXPECT_EQ(serial1.rpcFailedRounds, other->rpcFailedRounds);
    EXPECT_EQ(serial1.rpcFastFails, other->rpcFastFails);
    EXPECT_EQ(serial1.rpcBreakerOpens, other->rpcBreakerOpens);

    ASSERT_EQ(serial1.monitoringEvents.size(),
              other->monitoringEvents.size());
    for (std::size_t i = 0; i < serial1.monitoringEvents.size(); ++i) {
      const auto& a = serial1.monitoringEvents[i];
      const auto& b = other->monitoringEvents[i];
      EXPECT_EQ(a.time, b.time) << i;
      EXPECT_EQ(a.channel, b.channel) << i;
      EXPECT_EQ(a.survivors, b.survivors) << i;
      EXPECT_EQ(a.quorum, b.quorum) << i;
      EXPECT_EQ(a.belowQuorum, b.belowQuorum) << i;
      EXPECT_EQ(a.unmonitorable, b.unmonitorable) << i;
    }

    // The full virtual retry timetable matches, node by node.
    ASSERT_EQ(serial1.rpcAttemptTimes.size(),
              other->rpcAttemptTimes.size());
    for (const auto& [node, times] : serial1.rpcAttemptTimes) {
      const auto it = other->rpcAttemptTimes.find(node);
      ASSERT_NE(it, other->rpcAttemptTimes.end()) << node;
      EXPECT_EQ(times, it->second) << "node " << node;
    }
  }
}

// Opting into the fault-tolerant layer on a healthy cluster is free:
// with no monitoring faults and no packet loss the alarms are
// byte-identical to the legacy infallible collection path.
TEST(Robustness, FaultTolerantPathMatchesLegacyWhenHealthy) {
  ExperimentSpec spec = smallSpec();
  const analysis::BlackBoxModel model = trainModel(spec);

  spec.faultTolerantRpc = false;
  const ExperimentResult legacy = runExperiment(spec, model);
  spec.faultTolerantRpc = true;
  const ExperimentResult ft = runExperiment(spec, model);

  EXPECT_FALSE(legacy.blackBox.empty());
  expectIdenticalSeries(legacy.blackBox, ft.blackBox, "black-box");
  expectIdenticalSeries(legacy.whiteBox, ft.whiteBox, "white-box");
  EXPECT_EQ(ft.rpcRetries, 0);
  EXPECT_EQ(ft.rpcFailedRounds, 0);
  EXPECT_TRUE(ft.monitoringEvents.empty());
}

// The node_health module publishes the per-node health timeline, and
// the generated pipeline can record it through a csv_sink.
TEST(Robustness, NodeHealthTimelineRecordedToCsv) {
  ExperimentSpec spec = smallSpec();
  spec.duration = 60.0;
  spec.fault.type = faults::FaultType::kNone;
  spec.monitoringFaults.push_back(crashCollectors(3, 30.0));
  spec.pipeline.nodeHealth = true;
  spec.pipeline.nodeHealthCsv =
      ::testing::TempDir() + "asdf_node_health.csv";
  std::remove(spec.pipeline.nodeHealthCsv.c_str());

  const analysis::BlackBoxModel model = trainModel(spec);
  const ExperimentResult result = runExperiment(spec, model);
  EXPECT_GT(result.rpcFailedRounds, 0);

  std::FILE* f = std::fopen(spec.pipeline.nodeHealthCsv.c_str(), "r");
  ASSERT_NE(f, nullptr) << spec.pipeline.nodeHealthCsv;
  int lines = 0;
  bool sawUnmonitorable = false;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    ++lines;
    // Row format: time,origin,port,code0..codeN — look for an
    // unmonitorable code (2) among the values.
    const std::string line(buf);
    std::size_t pos = 0;
    for (int commas = 0; pos < line.size() && commas < 3; ++pos) {
      if (line[pos] == ',') ++commas;
    }
    if (pos < line.size() && line.find('2', pos) != std::string::npos) {
      sawUnmonitorable = true;
    }
  }
  std::fclose(f);
  EXPECT_GT(lines, 30);           // roughly one row per second
  EXPECT_TRUE(sawUnmonitorable);  // the outage shows up in the timeline
  std::remove(spec.pipeline.nodeHealthCsv.c_str());
}

}  // namespace
}  // namespace asdf::harness
