// Flight-recorder archive: format round-trips, writer/reader segment
// round-trips with rotation, crash recovery (a truncation sweep across
// every byte of the torn final record), single-bit-flip corruption
// detection on sealed segments, trimming, and restart numbering.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "archive/reader.h"
#include "archive/writer.h"

namespace asdf::archive {
namespace {

namespace fs = std::filesystem;

// Fresh scratch directory per test, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

ArchiveMeta testMeta() {
  ArchiveMeta meta;
  meta.seed = 99;
  meta.slaves = 3;
  meta.source = "sim";
  meta.duration = 120.0;
  meta.trainDuration = 60.0;
  meta.trainWarmup = 15.0;
  meta.centroids = 8;
  meta.faultType = 2;
  meta.faultNode = 2;
  meta.faultStart = 40.0;
  meta.faultEnd = 90.0;
  meta.mixChangeTime = -1.0;
  return meta;
}

rpc::CollectSample testSample(rpc::CollectKind kind, NodeId node, double now,
                              const std::vector<std::uint8_t>& payload) {
  rpc::CollectSample s;
  s.kind = kind;
  s.node = node;
  s.now = now;
  s.watermark = now;
  s.attempts = 1;
  s.ok = true;
  s.payload = payload.data();
  s.payloadSize = payload.size();
  return s;
}

std::vector<std::uint8_t> readFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void writeFileBytes(const std::string& path,
                    const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(ArchiveFormat, MetaSampleTruthFooterRoundTrip) {
  const ArchiveMeta meta = testMeta();
  rpc::Encoder enc;
  encodeMeta(enc, meta);
  rpc::Decoder dec(enc.bytes());
  const ArchiveMeta back = decodeMeta(dec);
  EXPECT_EQ(back.seed, meta.seed);
  EXPECT_EQ(back.slaves, meta.slaves);
  EXPECT_EQ(back.source, meta.source);
  EXPECT_EQ(back.duration, meta.duration);
  EXPECT_EQ(back.trainDuration, meta.trainDuration);
  EXPECT_EQ(back.trainWarmup, meta.trainWarmup);
  EXPECT_EQ(back.centroids, meta.centroids);
  EXPECT_EQ(back.faultType, meta.faultType);
  EXPECT_EQ(back.faultNode, meta.faultNode);
  EXPECT_EQ(back.faultStart, meta.faultStart);
  EXPECT_EQ(back.faultEnd, meta.faultEnd);
  EXPECT_EQ(back.mixChangeTime, meta.mixChangeTime);

  SampleRecord rec;
  rec.kind = rpc::CollectKind::kDn;
  rec.node = 7;
  rec.seq = 41;
  rec.now = 12.25;
  rec.watermark = 11.0;
  rec.attempts = 3;
  rec.ok = false;
  rec.payload = {1, 2, 3, 254, 255};
  rpc::Encoder senc;
  encodeSample(senc, rec);
  rpc::Decoder sdec(senc.bytes());
  const SampleRecord srt = decodeSample(sdec);
  EXPECT_EQ(srt.kind, rec.kind);
  EXPECT_EQ(srt.node, rec.node);
  EXPECT_EQ(srt.seq, rec.seq);
  EXPECT_EQ(srt.now, rec.now);
  EXPECT_EQ(srt.watermark, rec.watermark);
  EXPECT_EQ(srt.attempts, rec.attempts);
  EXPECT_EQ(srt.ok, rec.ok);
  EXPECT_EQ(srt.payload, rec.payload);

  TruthRecord truth;
  truth.slaveIndex = 1;
  truth.faultStart = 40.0;
  truth.faultEnd = 90.0;
  truth.simulatedSeconds = 120.0;
  truth.jobsSubmitted = 11;
  truth.jobsCompleted = 9;
  truth.tasksCompleted = 321;
  truth.tasksFailed = 4;
  truth.speculativeLaunches = 2;
  truth.syncDroppedSeconds = 1;
  rpc::Encoder tenc;
  encodeTruth(tenc, truth);
  rpc::Decoder tdec(tenc.bytes());
  const TruthRecord trt = decodeTruth(tdec);
  EXPECT_EQ(trt.slaveIndex, truth.slaveIndex);
  EXPECT_EQ(trt.jobsSubmitted, truth.jobsSubmitted);
  EXPECT_EQ(trt.syncDroppedSeconds, truth.syncDroppedSeconds);

  SegmentFooter footer;
  footer.recordCount = 5;
  footer.firstNow = 1.0;
  footer.lastNow = 5.0;
  footer.kindCounts = {2, 1, 1, 1};
  footer.payloadBytes = 123;
  footer.checkpoints.push_back({3.0, 4242});
  rpc::Encoder fenc;
  encodeFooter(fenc, footer);
  rpc::Decoder fdec(fenc.bytes());
  const SegmentFooter frt = decodeFooter(fdec, kFormatVersion);
  EXPECT_EQ(frt.recordCount, footer.recordCount);
  EXPECT_EQ(frt.kindCounts, footer.kindCounts);
  EXPECT_EQ(frt.payloadBytes, footer.payloadBytes);
  ASSERT_EQ(frt.checkpoints.size(), 1u);
  EXPECT_EQ(frt.checkpoints[0].now, 3.0);
  EXPECT_EQ(frt.checkpoints[0].offset, 4242u);
}

TEST(ArchiveFormat, TrailerRoundTripAndRejection) {
  const std::vector<std::uint8_t> trailer = encodeTrailer(0x123456789AULL);
  ASSERT_EQ(trailer.size(), kTrailerBytes);
  std::uint64_t offset = 0;
  EXPECT_TRUE(decodeTrailer(trailer.data(), trailer.size(), offset));
  EXPECT_EQ(offset, 0x123456789AULL);

  std::vector<std::uint8_t> bad = trailer;
  bad[0] ^= 0x01;  // magic
  EXPECT_FALSE(decodeTrailer(bad.data(), bad.size(), offset));
  EXPECT_FALSE(decodeTrailer(trailer.data(), kTrailerBytes - 1, offset));
}

TEST(ArchiveDurability, WriterReaderRoundTripWithRotation) {
  TempDir dir("asdf-archive-roundtrip");
  ArchiveWriterOptions opts;
  opts.dir = dir.path;
  opts.maxSegmentBytes = 2048;  // force several rotations

  const std::vector<std::uint8_t> payload(100, 0xAB);
  long written = 0;
  {
    ArchiveWriter writer(opts, testMeta());
    for (int t = 0; t < 40; ++t) {
      for (NodeId node = 1; node <= 3; ++node) {
        writer.onSample(testSample(rpc::CollectKind::kSadc, node,
                                   static_cast<double>(t), payload));
        ++written;
      }
    }
    TruthRecord truth;
    truth.slaveIndex = 1;
    truth.simulatedSeconds = 40.0;
    writer.writeTruth(truth);
    writer.close();
    EXPECT_EQ(writer.recordsWritten(), written);
    EXPECT_GE(writer.segmentsSealed(), 3);
  }

  ArchiveReader reader(dir.path);
  EXPECT_EQ(reader.meta().seed, testMeta().seed);
  EXPECT_EQ(reader.meta().source, "sim");
  ASSERT_TRUE(reader.truth().has_value());
  EXPECT_EQ(reader.truth()->slaveIndex, 1);
  ASSERT_EQ(reader.records().size(), static_cast<std::size_t>(written));
  EXPECT_EQ(reader.tornTailBytes(), 0u);
  EXPECT_EQ(reader.firstNow(), 0.0);
  EXPECT_EQ(reader.lastNow(), 39.0);
  for (const SegmentInfo& seg : reader.segments()) {
    EXPECT_TRUE(seg.sealed) << seg.path;
  }
  // Per-stream sequence numbers are dense and ascending.
  std::map<NodeId, std::int64_t> nextSeq;
  for (const SampleRecord& rec : reader.records()) {
    EXPECT_EQ(rec.seq, nextSeq[rec.node]++);
    EXPECT_EQ(rec.payload.size(), payload.size());
  }
}

TEST(ArchiveDurability, WriterContinuesNumberingAcrossRestart) {
  TempDir dir("asdf-archive-restart");
  ArchiveWriterOptions opts;
  opts.dir = dir.path;
  const std::vector<std::uint8_t> payload(16, 0x42);
  {
    ArchiveWriter writer(opts, testMeta());
    writer.onSample(testSample(rpc::CollectKind::kSadc, 1, 0.0, payload));
    writer.close();
  }
  {
    ArchiveWriter writer(opts, testMeta());
    writer.onSample(testSample(rpc::CollectKind::kSadc, 1, 1.0, payload));
    writer.close();
  }
  ArchiveReader reader(dir.path);
  ASSERT_EQ(reader.segments().size(), 2u);
  EXPECT_EQ(reader.segments()[0].index, 1u);
  EXPECT_EQ(reader.segments()[1].index, 2u);
  ASSERT_EQ(reader.records().size(), 2u);
  // A restarted writer starts a fresh seq space; records stay ordered
  // by segment.
  EXPECT_EQ(reader.records()[0].now, 0.0);
  EXPECT_EQ(reader.records()[1].now, 1.0);
}

TEST(ArchiveDurability, CrashRecoveryTruncationSweep) {
  TempDir dir("asdf-archive-crash");
  ArchiveWriterOptions opts;
  opts.dir = dir.path;

  const std::vector<std::uint8_t> payload(48, 0x5A);
  std::int64_t offsetAfter4 = 0;
  std::int64_t offsetAfter5 = 0;
  {
    ArchiveWriter writer(opts, testMeta());
    for (int i = 0; i < 5; ++i) {
      writer.onSample(testSample(rpc::CollectKind::kTt, 1,
                                 static_cast<double>(i), payload));
      if (i == 3) offsetAfter4 = writer.activeSegmentBytes();
    }
    offsetAfter5 = writer.activeSegmentBytes();
    writer.abandonForTest();  // SIGKILL: no footer, no seal
  }
  ASSERT_GT(offsetAfter4, 0);
  ASSERT_GT(offsetAfter5, offsetAfter4);

  const std::string openPath =
      dir.path + "/" + segmentFileName(1) + kOpenSuffix;
  const std::vector<std::uint8_t> full = readFileBytes(openPath);
  ASSERT_EQ(full.size(), static_cast<std::size_t>(offsetAfter5));

  // Crash at every byte offset inside the final record: the committed
  // prefix (4 records) must load, with the torn tail reported.
  for (std::int64_t cut = offsetAfter4; cut <= offsetAfter5; ++cut) {
    writeFileBytes(openPath, std::vector<std::uint8_t>(
                                 full.begin(), full.begin() + cut));
    ArchiveReader reader(dir.path);
    const bool tornComplete = cut == offsetAfter5;
    ASSERT_EQ(reader.records().size(), tornComplete ? 5u : 4u)
        << "cut at byte " << cut;
    EXPECT_EQ(reader.tornTailBytes(),
              tornComplete ? 0u : static_cast<std::size_t>(cut - offsetAfter4))
        << "cut at byte " << cut;
    ASSERT_FALSE(reader.segments().empty());
    EXPECT_FALSE(reader.segments().back().sealed);
  }
}

TEST(ArchiveDurability, VerifyDetectsEveryBitFlip) {
  TempDir dir("asdf-archive-bitflip");
  ArchiveWriterOptions opts;
  opts.dir = dir.path;
  {
    ArchiveWriter writer(opts, testMeta());
    const std::vector<std::uint8_t> payload = {9, 8, 7, 6, 5, 4};
    writer.onSample(testSample(rpc::CollectKind::kSadc, 1, 0.0, payload));
    writer.onSample(testSample(rpc::CollectKind::kStrace, 2, 1.0, payload));
    TruthRecord truth;
    writer.writeTruth(truth);
    writer.close();
  }
  ASSERT_TRUE(ArchiveReader::verify(dir.path).ok);

  const std::string sealedPath = dir.path + "/" + segmentFileName(1);
  const std::vector<std::uint8_t> clean = readFileBytes(sealedPath);
  ASSERT_FALSE(clean.empty());

  for (std::size_t i = 0; i < clean.size(); ++i) {
    std::vector<std::uint8_t> corrupt = clean;
    corrupt[i] ^= static_cast<std::uint8_t>(1u << (i % 8));
    writeFileBytes(sealedPath, corrupt);
    EXPECT_FALSE(ArchiveReader::verify(dir.path).ok)
        << "bit flip at byte " << i << " went undetected";
  }
  writeFileBytes(sealedPath, clean);
  EXPECT_TRUE(ArchiveReader::verify(dir.path).ok);
}

TEST(ArchiveDurability, TrimByTimeRange) {
  TempDir src("asdf-archive-trim-src");
  TempDir dst("asdf-archive-trim-dst");
  ArchiveWriterOptions opts;
  opts.dir = src.path;
  const std::vector<std::uint8_t> payload(24, 0x11);
  {
    ArchiveWriter writer(opts, testMeta());
    for (int t = 0; t < 10; ++t) {
      writer.onSample(testSample(rpc::CollectKind::kSadc, 1,
                                 static_cast<double>(t), payload));
    }
    TruthRecord truth;
    truth.slaveIndex = 1;
    writer.writeTruth(truth);
    writer.close();
  }

  EXPECT_EQ(trimArchive(src.path, dst.path, 3.0, 6.0), 4);

  ArchiveReader reader(dst.path);
  EXPECT_EQ(reader.meta().seed, testMeta().seed);
  ASSERT_TRUE(reader.truth().has_value());
  ASSERT_EQ(reader.records().size(), 4u);
  for (const SampleRecord& rec : reader.records()) {
    EXPECT_GE(rec.now, 3.0);
    EXPECT_LE(rec.now, 6.0);
  }
  // Trim preserves the original per-stream seq numbers (gap diagnosis
  // still works on the trimmed copy).
  EXPECT_EQ(reader.records().front().seq, 3);
}

TEST(ArchiveDurability, MissingDirectoryThrows) {
  EXPECT_THROW(ArchiveReader("/nonexistent/asdf-archive-missing"),
               ArchiveError);
  const ArchiveReader::VerifyResult result =
      ArchiveReader::verify("/nonexistent/asdf-archive-missing");
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.errors.empty());
}

}  // namespace
}  // namespace asdf::archive
