// The sharded network plane (net::ShardGroup, DESIGN.md §15): per-core
// event loops each owning their own listener and connections.
// Contracts under test —
//
//   * SO_REUSEPORT mode: every shard serves frames on the shared port;
//   * the acceptor-handoff fallback round-robins accepted fds to the
//     other shards' loops, which adopt them on their own threads;
//   * a sharded asdf_rpcd returns byte-identical payloads to the
//     classic single-loop daemon for the same (channel, node, now); and
//   * a full live harness run against an N-shard daemon produces the
//     same alarm series as against a 1-shard daemon (the §9 contract
//     survives sharding).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "harness/experiment.h"
#include "modules/modules.h"
#include "net/frame.h"
#include "net/rpcd_server.h"
#include "net/shard_group.h"
#include "rpc/wire.h"

namespace asdf::net {
namespace {

/// Minimal blocking client (same shape as test_net_loop's).
class ShardTestClient {
 public:
  explicit ShardTestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  }
  ~ShardTestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  ShardTestClient(const ShardTestClient&) = delete;
  ShardTestClient& operator=(const ShardTestClient&) = delete;

  void sendAll(const std::vector<std::uint8_t>& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  bool readFrame(Frame& out) {
    std::uint8_t chunk[4096];
    while (!decoder_.next(out)) {
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return false;
      if (!decoder_.feed(chunk, static_cast<std::size_t>(n))) return false;
    }
    return true;
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

/// Runs a ShardGroup on background threads for a test's lifetime.
struct GroupFixture {
  explicit GroupFixture(ShardGroupOptions opts) : group(opts) {
    for (int i = 0; i < group.shardCount(); ++i) {
      group.server(i).onFrame([](TcpServer::Connection& conn,
                                 const Frame& frame) {
        rpc::Encoder out;
        out.putU32(42);
        conn.send(frame.type, out);
      });
    }
    thread = std::thread([this] { group.runOnCaller(); });
  }
  ~GroupFixture() {
    group.stop();
    if (thread.joinable()) thread.join();
  }

  ShardGroup group;
  std::thread thread;
};

TEST(ShardGroup, ReusePortModeServesEveryConnection) {
  GroupFixture fx(ShardGroupOptions{0, 3, /*preferReusePort=*/true});
  ASSERT_GT(fx.group.port(), 0);
  EXPECT_EQ(fx.group.shardCount(), 3);
  // Linux always has SO_REUSEPORT; if a platform doesn't, the fallback
  // must have engaged instead of failing.
  if (!fx.group.usingReusePort()) {
    GTEST_LOG_(INFO) << "SO_REUSEPORT unavailable; fallback engaged";
  }

  constexpr int kClients = 9;
  std::vector<std::unique_ptr<ShardTestClient>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<ShardTestClient>(fx.group.port()));
    clients.back()->sendAll(encodeFrame(MsgType::kStats, nullptr, 0));
    Frame reply;
    ASSERT_TRUE(clients.back()->readFrame(reply)) << "client " << i;
    EXPECT_EQ(reply.type, MsgType::kStats);
  }
  EXPECT_EQ(fx.group.framesServed(), kClients);
  EXPECT_EQ(fx.group.connectionsRejected(), 0);
}

TEST(ShardGroup, SingleShardIsTheClassicLoop) {
  GroupFixture fx(ShardGroupOptions{0, 1, /*preferReusePort=*/true});
  EXPECT_EQ(fx.group.shardCount(), 1);
  EXPECT_FALSE(fx.group.usingReusePort());  // no point: one listener
  ShardTestClient client(fx.group.port());
  client.sendAll(encodeFrame(MsgType::kStats, nullptr, 0));
  Frame reply;
  ASSERT_TRUE(client.readFrame(reply));
  EXPECT_EQ(fx.group.framesServed(), 1);
}

TEST(ShardGroup, AcceptorHandoffRoundRobinsAcrossShards) {
  GroupFixture fx(ShardGroupOptions{0, 3, /*preferReusePort=*/false});
  EXPECT_FALSE(fx.group.usingReusePort());

  // Sequential connects accept in order on shard 0's listener, so the
  // round-robin interceptor deals them 0,1,2,0,1,2: every shard ends
  // up serving exactly two of the six connections.
  constexpr int kClients = 6;
  std::vector<std::unique_ptr<ShardTestClient>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<ShardTestClient>(fx.group.port()));
    clients.back()->sendAll(encodeFrame(MsgType::kStats, nullptr, 0));
    Frame reply;
    ASSERT_TRUE(clients.back()->readFrame(reply)) << "client " << i;
  }
  EXPECT_EQ(fx.group.framesServed(), kClients);
  for (int i = 0; i < fx.group.shardCount(); ++i) {
    EXPECT_EQ(fx.group.server(i).framesServed(), 2) << "shard " << i;
  }
  EXPECT_EQ(fx.group.connectionCount(), static_cast<std::size_t>(kClients));
  clients.clear();
}

// --- sharded asdf_rpcd ----------------------------------------------

struct RpcdFixture {
  explicit RpcdFixture(RpcdOptions opts) : server(opts) {
    thread = std::thread([this] { server.run(); });
  }
  ~RpcdFixture() {
    server.stop();
    if (thread.joinable()) thread.join();
  }
  RpcdServer server;
  std::thread thread;
};

std::vector<std::uint8_t> fetchSadcPayload(std::uint16_t port, NodeId node,
                                           double now) {
  ShardTestClient client(port);
  rpc::Encoder enc;
  enc.putU32(static_cast<std::uint32_t>(node));
  enc.putDouble(now);
  client.sendAll(encodeFrame(MsgType::kFetchSadc, enc));
  Frame reply;
  EXPECT_TRUE(client.readFrame(reply));
  EXPECT_EQ(reply.type, MsgType::kSadcData);
  return reply.payload;
}

TEST(RpcdSharded, ResponsesMatchTheSingleLoopDaemonByteForByte) {
  RpcdOptions base;
  base.slaves = 4;
  base.seed = 77;
  RpcdOptions sharded = base;
  sharded.shards = 3;

  RpcdFixture classic(base);
  RpcdFixture wide(sharded);
  EXPECT_EQ(wide.server.shardCount(), 3);

  // Fetch the same (node, now) schedule from both daemons; payloads
  // must be byte-identical — each request carries its own virtual now
  // and the response depends only on (channel, node, now).
  for (NodeId node = 1; node <= 4; ++node) {
    for (double now : {5.0, 10.0, 15.0}) {
      EXPECT_EQ(fetchSadcPayload(classic.server.port(), node, now),
                fetchSadcPayload(wide.server.port(), node, now))
          << "node " << node << " now " << now;
    }
  }
}

TEST(RpcdSharded, HandoffFallbackServesTheSameBytesToo) {
  RpcdOptions base;
  base.slaves = 2;
  base.seed = 31;
  RpcdOptions fallback = base;
  fallback.shards = 2;
  fallback.preferReusePort = false;

  RpcdFixture classic(base);
  RpcdFixture wide(fallback);
  EXPECT_FALSE(wide.server.usingReusePort());
  for (NodeId node = 1; node <= 2; ++node) {
    EXPECT_EQ(fetchSadcPayload(classic.server.port(), node, 8.0),
              fetchSadcPayload(wide.server.port(), node, 8.0))
        << "node " << node;
  }
}

// The §9 equivalence contract survives sharding: a live harness run
// against an N-shard daemon produces the same alarm series as against
// the classic single-loop daemon (and therefore, transitively, the
// same series as a sim-transport run — test_live_e2e pins that leg).
TEST(RpcdSharded, LiveAlarmsAreIdenticalBetweenOneAndNShards) {
  modules::registerBuiltinModules();

  harness::ExperimentSpec spec;
  spec.slaves = 4;
  spec.duration = 240.0;
  spec.trainDuration = 150.0;
  spec.seed = 5151;
  spec.fault.type = faults::FaultType::kCpuHog;
  spec.fault.node = 3;
  spec.fault.startTime = 100.0;
  spec.pipeline.quietPrint = true;
  spec.faultTolerantRpc = true;
  spec.rpcPolicy.timeoutSeconds = 5.0;
  spec.transport = harness::TransportMode::kLive;
  spec.realtimeScale = 150.0;

  const analysis::BlackBoxModel model = harness::trainModel(spec);

  auto runAgainst = [&](int shards) {
    RpcdOptions opts;
    opts.slaves = spec.slaves;
    opts.seed = spec.seed;
    opts.fault = spec.fault;
    opts.shards = shards;
    RpcdFixture fx(opts);
    harness::ExperimentSpec liveSpec = spec;
    liveSpec.livePort = fx.server.port();
    return harness::runExperiment(liveSpec, model);
  };

  const harness::ExperimentResult one = runAgainst(1);
  const harness::ExperimentResult four = runAgainst(4);

  auto expectSeriesEqual = [](const analysis::AlarmSeries& a,
                              const analysis::AlarmSeries& b,
                              const char* which) {
    ASSERT_EQ(a.size(), b.size()) << which;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[i].time, b[i].time) << which << " record " << i;
      EXPECT_EQ(a[i].flags, b[i].flags) << which << " record " << i;
      EXPECT_EQ(a[i].scores, b[i].scores) << which << " record " << i;
      EXPECT_EQ(a[i].health, b[i].health) << which << " record " << i;
    }
  };
  expectSeriesEqual(one.blackBox, four.blackBox, "black-box");
  expectSeriesEqual(one.whiteBox, four.whiteBox, "white-box");
  EXPECT_EQ(one.jobsCompleted, four.jobsCompleted);
  EXPECT_EQ(one.tasksCompleted, four.tasksCompleted);
  EXPECT_EQ(one.rpcRounds, four.rpcRounds);
}

}  // namespace
}  // namespace asdf::net
