#include <cmath>

#include "syscalls/markov.h"
#include "syscalls/trace_model.h"

#include <gtest/gtest.h>

namespace asdf::syscalls {
namespace {

metrics::NodeActivity ioActivity() {
  metrics::NodeActivity a;
  a.diskReadBytes = 2.0e7;
  a.diskWriteBytes = 1.0e7;
  a.netRxBytes = 5.0e6;
  a.netTxBytes = 5.0e6;
  a.cpuUserCores = 1.0;
  return a;
}

double categoryFraction(const TraceSecond& trace, Syscall kind) {
  if (trace.empty()) return 0.0;
  long hits = 0;
  for (auto c : trace) {
    if (c == static_cast<std::uint8_t>(kind)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(trace.size());
}

TEST(SyscallNames, AllKindsNamed) {
  for (std::size_t i = 0; i < kSyscallKinds; ++i) {
    EXPECT_NE(syscallName(static_cast<Syscall>(i)), nullptr);
    EXPECT_GT(std::string(syscallName(static_cast<Syscall>(i))).size(), 1u);
  }
}

TEST(TraceModel, BusyNodeEmitsBoundedTrace) {
  SyscallTraceModel model({256}, Rng(1));
  const TraceSecond trace = model.tick(ioActivity());
  EXPECT_GT(trace.size(), 50u);
  EXPECT_LE(trace.size(), 256u);
  for (auto c : trace) EXPECT_LT(c, kSyscallKinds);
}

TEST(TraceModel, IdleNodeIsQuietButNotSilent) {
  SyscallTraceModel model({256}, Rng(2));
  metrics::NodeActivity idle;
  const TraceSecond trace = model.tick(idle);
  // Daemons still futex/epoll a little.
  EXPECT_GT(trace.size(), 5u);
  EXPECT_LT(trace.size(), 64u);
}

TEST(TraceModel, DiskTrafficShowsAsReads) {
  SyscallTraceModel model({256}, Rng(3));
  metrics::NodeActivity diskHeavy;
  diskHeavy.diskReadBytes = 6.0e7;
  const TraceSecond trace = model.tick(diskHeavy);
  EXPECT_GT(categoryFraction(trace, Syscall::kRead), 0.5);
}

TEST(TraceModel, HungTaskFloodsFutexAndSleep) {
  SyscallTraceModel model({256}, Rng(4));
  const TraceSecond normal = model.tick(ioActivity(), 0, 0);
  const TraceSecond hung = model.tick(ioActivity(), 2, 0);
  const double normalFutex = categoryFraction(normal, Syscall::kFutex) +
                             categoryFraction(normal, Syscall::kNanosleep);
  const double hungFutex = categoryFraction(hung, Syscall::kFutex) +
                           categoryFraction(hung, Syscall::kNanosleep);
  EXPECT_GT(hungFutex, normalFutex + 0.2);
}

TEST(TraceModel, DeterministicForSeed) {
  SyscallTraceModel a({256}, Rng(5));
  SyscallTraceModel b({256}, Rng(5));
  EXPECT_EQ(a.tick(ioActivity()), b.tick(ioActivity()));
}

TEST(Markov, UntrainedModelHasUniformBaseline) {
  MarkovModel model;
  EXPECT_NEAR(model.entropyBaseline(),
              std::log(static_cast<double>(kSyscallKinds)), 1e-9);
  EXPECT_NEAR(model.transitionProbability(0, 1), 1.0 / kSyscallKinds, 1e-9);
}

TEST(Markov, LearnsTransitions) {
  MarkovModel model;
  // Alternating read/write stream.
  TraceSecond seq;
  for (int i = 0; i < 200; ++i) {
    seq.push_back(static_cast<std::uint8_t>(i % 2 == 0 ? Syscall::kRead
                                                       : Syscall::kWrite));
  }
  model.train(seq);
  EXPECT_EQ(model.trainedTransitions(), 199);
  EXPECT_GT(model.transitionProbability(
                static_cast<std::uint8_t>(Syscall::kRead),
                static_cast<std::uint8_t>(Syscall::kWrite)),
            0.9);
  EXPECT_LT(model.transitionProbability(
                static_cast<std::uint8_t>(Syscall::kRead),
                static_cast<std::uint8_t>(Syscall::kRead)),
            0.1);
}

TEST(Markov, OffModelSequenceScoresHigherNll) {
  MarkovModel model;
  SyscallTraceModel gen({256}, Rng(6));
  for (int i = 0; i < 120; ++i) model.train(gen.tick(ioActivity()));

  SyscallTraceModel probe({256}, Rng(7));
  const double baseline = model.entropyBaseline();
  // A hung-task trace (futex storm) departs from the model — in either
  // direction (it can be *more* predictable than normal traffic), so
  // the detector scores |NLL - baseline|. Single seconds are noisy;
  // compare windowed means, as the online pipeline (mavgvec) does.
  double normalScore = 0.0;
  double hungScore = 0.0;
  for (int i = 0; i < 60; ++i) {
    normalScore += std::abs(
        model.negLogLikelihood(probe.tick(ioActivity())) - baseline);
    hungScore += std::abs(
        model.negLogLikelihood(probe.tick(metrics::NodeActivity{}, 3, 0)) -
        baseline);
  }
  EXPECT_GT(hungScore, normalScore * 1.5);
}

TEST(Markov, EmptyTraceScoresBaseline) {
  MarkovModel model;
  SyscallTraceModel gen({256}, Rng(8));
  for (int i = 0; i < 50; ++i) model.train(gen.tick(ioActivity()));
  EXPECT_DOUBLE_EQ(model.negLogLikelihood({}),
                   model.entropyBaseline());
  EXPECT_DOUBLE_EQ(model.negLogLikelihood({1}), model.entropyBaseline());
}

TEST(Markov, NllIsFiniteAndPositive) {
  MarkovModel model;
  SyscallTraceModel gen({256}, Rng(9));
  for (int i = 0; i < 30; ++i) model.train(gen.tick(ioActivity()));
  const double nll = model.negLogLikelihood(gen.tick(ioActivity()));
  EXPECT_GT(nll, 0.0);
  EXPECT_LT(nll, 10.0);
}

}  // namespace
}  // namespace asdf::syscalls
