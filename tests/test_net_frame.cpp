// Adversarial coverage for the live-wire frame codec (DESIGN.md §9):
// truncation, arbitrary read-boundary splits, corrupted CRCs, hostile
// length prefixes and version skew must all be survivable without
// unbounded allocation — the decoder poisons the stream instead of
// throwing, and the connection owner drops it.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "net/crc32.h"
#include "net/frame.h"
#include "rpc/wire.h"

namespace asdf::net {
namespace {

std::vector<std::uint8_t> helloFrame(const std::string& greeting) {
  rpc::Encoder enc;
  enc.putU32(kProtocolVersion);
  enc.putString(greeting);
  return encodeFrame(MsgType::kHello, enc);
}

TEST(NetFrame, RoundTripSingleFrame) {
  const std::vector<std::uint8_t> wire = helloFrame("asdf-fpt-core");
  ASSERT_GE(wire.size(), kFrameHeaderBytes);

  FrameDecoder dec;
  ASSERT_TRUE(dec.feed(wire.data(), wire.size()));
  Frame f;
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.type, MsgType::kHello);

  rpc::Decoder payload(f.payload);
  EXPECT_EQ(payload.getU32(), kProtocolVersion);
  EXPECT_EQ(payload.getString(), "asdf-fpt-core");
  EXPECT_TRUE(payload.exhausted());

  EXPECT_FALSE(dec.next(f));
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kNone);
  EXPECT_EQ(dec.framesDecoded(), 1);
  EXPECT_EQ(dec.pendingBytes(), 0u);
}

TEST(NetFrame, EmptyPayloadFrame) {
  const std::vector<std::uint8_t> wire =
      encodeFrame(MsgType::kShutdown, nullptr, 0);
  EXPECT_EQ(wire.size(), kFrameHeaderBytes);

  FrameDecoder dec;
  ASSERT_TRUE(dec.feed(wire.data(), wire.size()));
  Frame f;
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.type, MsgType::kShutdown);
  EXPECT_TRUE(f.payload.empty());
}

TEST(NetFrame, BackToBackFramesInOneFeed) {
  std::vector<std::uint8_t> wire = helloFrame("a");
  const std::vector<std::uint8_t> second = helloFrame("bb");
  const std::vector<std::uint8_t> third =
      encodeFrame(MsgType::kShutdown, nullptr, 0);
  wire.insert(wire.end(), second.begin(), second.end());
  wire.insert(wire.end(), third.begin(), third.end());

  FrameDecoder dec;
  ASSERT_TRUE(dec.feed(wire.data(), wire.size()));
  Frame f;
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.type, MsgType::kHello);
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.type, MsgType::kHello);
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.type, MsgType::kShutdown);
  EXPECT_FALSE(dec.next(f));
  EXPECT_EQ(dec.framesDecoded(), 3);
}

// read() can hand the decoder any prefix of the stream: every split
// point of a two-frame stream must produce the same two frames.
TEST(NetFrame, EverySplitPointDecodes) {
  std::vector<std::uint8_t> wire = helloFrame("split-me");
  const std::vector<std::uint8_t> second = helloFrame("tail");
  wire.insert(wire.end(), second.begin(), second.end());

  for (std::size_t split = 0; split <= wire.size(); ++split) {
    FrameDecoder dec;
    ASSERT_TRUE(dec.feed(wire.data(), split));
    ASSERT_TRUE(dec.feed(wire.data() + split, wire.size() - split));
    Frame f;
    ASSERT_TRUE(dec.next(f)) << "split at " << split;
    EXPECT_EQ(f.type, MsgType::kHello);
    ASSERT_TRUE(dec.next(f)) << "split at " << split;
    rpc::Decoder payload(f.payload);
    payload.getU32();
    EXPECT_EQ(payload.getString(), "tail") << "split at " << split;
    EXPECT_EQ(dec.error(), FrameDecoder::Error::kNone);
  }
}

TEST(NetFrame, ByteAtATimeFeed) {
  const std::vector<std::uint8_t> wire = helloFrame("drip");
  FrameDecoder dec;
  Frame f;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    ASSERT_TRUE(dec.feed(&wire[i], 1));
    EXPECT_FALSE(dec.next(f)) << "frame surfaced early at byte " << i;
  }
  ASSERT_TRUE(dec.feed(&wire[wire.size() - 1], 1));
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.type, MsgType::kHello);
}

TEST(NetFrame, TruncatedFrameNeverSurfaces) {
  const std::vector<std::uint8_t> wire = helloFrame("cut short");
  FrameDecoder dec;
  ASSERT_TRUE(dec.feed(wire.data(), wire.size() - 1));
  Frame f;
  EXPECT_FALSE(dec.next(f));
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kNone);  // waiting, not broken
  EXPECT_EQ(dec.pendingBytes(), wire.size() - 1);
}

TEST(NetFrame, BadMagicPoisonsStream) {
  std::vector<std::uint8_t> wire = helloFrame("x");
  wire[0] ^= 0xFF;
  FrameDecoder dec;
  EXPECT_FALSE(dec.feed(wire.data(), wire.size()));
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kBadMagic);
  Frame f;
  EXPECT_FALSE(dec.next(f));
  // Poisoned streams ignore further input rather than "recovering".
  const std::vector<std::uint8_t> good = helloFrame("y");
  EXPECT_FALSE(dec.feed(good.data(), good.size()));
  EXPECT_FALSE(dec.next(f));
}

TEST(NetFrame, VersionSkewPoisonsStream) {
  std::vector<std::uint8_t> wire = helloFrame("x");
  wire[4] = 0x7F;  // version hi byte: claims version 0x7F01
  FrameDecoder dec;
  EXPECT_FALSE(dec.feed(wire.data(), wire.size()));
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kBadVersion);
}

// A hostile 4 GiB length prefix must be rejected from the header alone
// — before any payload-sized allocation happens.
TEST(NetFrame, OversizedLengthRejectedWithoutBuffering) {
  std::vector<std::uint8_t> wire = helloFrame("x");
  wire[8] = 0xFF;  // length: 0xFFxxxxxx >> kMaxFramePayloadBytes
  FrameDecoder dec;
  EXPECT_FALSE(dec.feed(wire.data(), wire.size()));
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kOversized);
  // The decoder buffered at most what we fed it, not the declared length.
  EXPECT_LE(dec.pendingBytes(), wire.size());
}

TEST(NetFrame, CrcBitFlipDetected) {
  const std::vector<std::uint8_t> clean = helloFrame("checksummed");
  // Flip one bit in every payload position in turn; each must be caught.
  for (std::size_t i = kFrameHeaderBytes; i < clean.size(); ++i) {
    std::vector<std::uint8_t> wire = clean;
    wire[i] ^= 0x01;
    FrameDecoder dec;
    EXPECT_FALSE(dec.feed(wire.data(), wire.size())) << "byte " << i;
    EXPECT_EQ(dec.error(), FrameDecoder::Error::kBadCrc) << "byte " << i;
    Frame f;
    EXPECT_FALSE(dec.next(f));
  }
}

TEST(NetFrame, CrcFieldCorruptionDetected) {
  std::vector<std::uint8_t> wire = helloFrame("x");
  wire[12] ^= 0x80;  // stored CRC itself
  FrameDecoder dec;
  EXPECT_FALSE(dec.feed(wire.data(), wire.size()));
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kBadCrc);
}

TEST(NetFrame, ErrorFrameRoundTrip) {
  const std::vector<std::uint8_t> wire =
      encodeErrorFrame(ErrorCode::kUnknownNode, "node 99 not served");
  FrameDecoder dec;
  ASSERT_TRUE(dec.feed(wire.data(), wire.size()));
  Frame f;
  ASSERT_TRUE(dec.next(f));
  EXPECT_EQ(f.type, MsgType::kError);
  rpc::Decoder payload(f.payload);
  EXPECT_EQ(payload.getU32(),
            static_cast<std::uint32_t>(ErrorCode::kUnknownNode));
  EXPECT_EQ(payload.getString(), "node 99 not served");
}

TEST(NetFrame, Crc32KnownVectors) {
  // IEEE CRC-32 check value for "123456789".
  const char* digits = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(digits), 9),
            0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(NetFrame, FrameErrorNames) {
  EXPECT_STREQ(frameErrorName(FrameDecoder::Error::kNone), "none");
  EXPECT_NE(std::string(frameErrorName(FrameDecoder::Error::kBadCrc)),
            std::string(frameErrorName(FrameDecoder::Error::kOversized)));
}

}  // namespace
}  // namespace asdf::net
