// Correlated-fault scenarios on rack topologies (DESIGN.md §16):
// seed-determinism of the event logs and alarms, flat byte-identity,
// per-class ground truth, spec validation, and the rows-sum-to-
// aggregate property of the scenario matrix.
#include "faults/scenarios.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "harness/scenario_matrix.h"
#include "modules/modules.h"
#include "sim/engine.h"

namespace asdf::harness {
namespace {

class ScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    modules::registerBuiltinModules();
    model_ = new analysis::BlackBoxModel(trainModel(baseSpec()));
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
  }

  /// Scaled-down 3-rack cluster; the training run is topology-blind
  /// (fault-free, and flat runs are byte-identical anyway).
  static ExperimentSpec baseSpec() {
    ExperimentSpec spec;
    spec.slaves = 9;
    spec.duration = 600.0;
    spec.trainDuration = 300.0;
    spec.trainWarmup = 90.0;
    spec.seed = 4242;
    spec.topology.racks = 3;
    return spec;
  }

  static analysis::BlackBoxModel* model_;
};

analysis::BlackBoxModel* ScenarioTest::model_ = nullptr;

TEST_F(ScenarioTest, ScenarioNamesRoundTripAndShortFormsParse) {
  for (faults::ScenarioClass cls : faults::allScenarios()) {
    EXPECT_EQ(faults::scenarioFromName(faults::scenarioName(cls)), cls);
  }
  EXPECT_EQ(faults::scenarioFromName("partition"),
            faults::ScenarioClass::kRackPartition);
  EXPECT_EQ(faults::scenarioFromName("cascade"),
            faults::ScenarioClass::kCascadeHotspot);
  EXPECT_EQ(faults::scenarioFromName("noisy-neighbor"),
            faults::ScenarioClass::kNoisyNeighbor);
  EXPECT_EQ(faults::scenarioFromName("gray"),
            faults::ScenarioClass::kGrayFailure);
  EXPECT_EQ(faults::scenarioFromName(""), faults::ScenarioClass::kNone);
  EXPECT_THROW(faults::scenarioFromName("meteor"), ConfigError);
}

TEST_F(ScenarioTest, ValidateSpecRejectsBadCombinations) {
  // Scenario on a live transport.
  ExperimentSpec spec = baseSpec();
  spec.scenario.cls = faults::ScenarioClass::kGrayFailure;
  spec.transport = TransportMode::kLive;
  EXPECT_THROW(validateSpec(spec), ConfigError);

  // Scenario plus single-node fault.
  spec = baseSpec();
  spec.scenario.cls = faults::ScenarioClass::kGrayFailure;
  spec.fault.type = faults::FaultType::kCpuHog;
  spec.fault.node = 2;
  EXPECT_THROW(validateSpec(spec), ConfigError);

  // Uplink-contending scenarios need a multi-rack layout.
  spec = baseSpec();
  spec.topology.racks = 1;
  spec.scenario.cls = faults::ScenarioClass::kRackPartition;
  EXPECT_THROW(validateSpec(spec), ConfigError);
  spec.scenario.cls = faults::ScenarioClass::kGrayFailure;
  EXPECT_NO_THROW(validateSpec(spec));  // gray runs anywhere

  // A node outside the target rack.
  spec = baseSpec();
  spec.scenario.cls = faults::ScenarioClass::kCascadeHotspot;
  spec.scenario.rack = 0;
  spec.scenario.node = 9;  // rack 2
  EXPECT_THROW(validateSpec(spec), ConfigError);

  // The rack-shape invariants surface through validateSpec too.
  spec = baseSpec();
  spec.topology.racks = 12;  // > 9 slaves
  EXPECT_THROW(validateSpec(spec), ConfigError);
}

TEST_F(ScenarioTest, ValidateSpecChecksTierGroupCoverage) {
  ExperimentSpec spec = baseSpec();
  spec.tiered = true;
  spec.tierGroups = {4, 5};
  EXPECT_NO_THROW(validateSpec(spec));
  spec.tierGroups = {4, 4};  // covers 8 of 9
  EXPECT_THROW(validateSpec(spec), ConfigError);
  spec.tierGroups = {10, 2};  // overshoots
  EXPECT_THROW(validateSpec(spec), ConfigError);
  spec.tierGroups = {9, 0};  // empty group
  EXPECT_THROW(validateSpec(spec), ConfigError);
}

TEST_F(ScenarioTest, TierGroupsFollowRacksUnlessOverridden) {
  // Multi-rack, no explicit groups, no aggregator count: one group
  // per rack, ragged last rack included (8 slaves over 3 racks).
  ExperimentSpec spec = baseSpec();
  spec.slaves = 8;
  spec.tiered = true;
  EXPECT_EQ(tierGroupsFor(spec), (std::vector<int>{3, 3, 2}));
  // An explicit aggregator count overrides the rack mapping.
  spec.aggregators = 2;
  EXPECT_EQ(tierGroupsFor(spec), (std::vector<int>{4, 4}));
  // Explicit groups win over everything.
  spec.tierGroups = {6, 2};
  EXPECT_EQ(tierGroupsFor(spec), (std::vector<int>{6, 2}));
  // Flat topology keeps the ~sqrt(n) split.
  spec = baseSpec();
  spec.slaves = 9;
  spec.topology.racks = 1;
  EXPECT_EQ(tierGroupsFor(spec), (std::vector<int>{3, 3, 3}));
}

TEST_F(ScenarioTest, CulpritsMatchScenarioSemantics) {
  sim::SimEngine engine;
  hadoop::HadoopParams params;
  params.slaveCount = 8;
  params.topology.racks = 3;  // racks {1,2,3} {4,5,6} {7,8}
  hadoop::Cluster cluster(params, 7, engine);

  faults::ScenarioSpec spec;
  spec.cls = faults::ScenarioClass::kRackPartition;
  faults::ScenarioInjector partition(cluster, spec);
  // Default rack: the last (ragged) one.
  EXPECT_EQ(partition.spec().rack, 2);
  EXPECT_EQ(partition.culpritIndices(), (std::vector<int>{6, 7}));

  spec.cls = faults::ScenarioClass::kCascadeHotspot;
  spec.rack = 1;
  faults::ScenarioInjector cascade(cluster, spec);
  EXPECT_EQ(cascade.spec().node, 4);  // rack 1's first node
  EXPECT_EQ(cascade.culpritIndices(), (std::vector<int>{3}));

  spec = faults::ScenarioSpec{};
  spec.cls = faults::ScenarioClass::kNoisyNeighbor;
  spec.rack = 0;
  spec.node = 2;
  spec.noisyTenants = 2;
  faults::ScenarioInjector noisy(cluster, spec);
  // Tenants rotate through the rack starting at the named node.
  EXPECT_EQ(noisy.culpritIndices(), (std::vector<int>{1, 2}));

  spec = faults::ScenarioSpec{};
  spec.cls = faults::ScenarioClass::kGrayFailure;
  spec.node = 5;
  faults::ScenarioInjector gray(cluster, spec);
  EXPECT_EQ(gray.spec().rack, 1);  // inferred from the node
  EXPECT_EQ(gray.culpritIndices(), (std::vector<int>{4}));
}

TEST_F(ScenarioTest, PartitionScalesAndHealsTheUplinkExactly) {
  sim::SimEngine engine;
  hadoop::HadoopParams params;
  params.slaveCount = 6;
  params.topology.racks = 2;
  hadoop::Cluster cluster(params, 7, engine);
  ASSERT_NE(cluster.uplinks(), nullptr);
  const double base = cluster.uplinks()->capacity(1);

  faults::ScenarioSpec spec;
  spec.cls = faults::ScenarioClass::kRackPartition;
  spec.startTime = 10.0;
  spec.endTime = 20.0;
  spec.partitionResidualFactor = 0.02;
  faults::ScenarioInjector injector(cluster, spec);
  injector.arm();

  engine.runUntil(15.0);
  EXPECT_TRUE(injector.active());
  EXPECT_DOUBLE_EQ(cluster.uplinks()->capacity(1), 0.02 * base);
  engine.runUntil(25.0);
  EXPECT_FALSE(injector.active());
  EXPECT_DOUBLE_EQ(cluster.uplinks()->capacity(1), base);
  EXPECT_DOUBLE_EQ(injector.endedAt(), 20.0);
  ASSERT_EQ(injector.events().size(), 2u);
  EXPECT_EQ(injector.events()[0].time, 10.0);
  EXPECT_EQ(injector.events()[1].time, 20.0);
}

TEST_F(ScenarioTest, GrayFailureRestoresDiskCapacityExactly) {
  sim::SimEngine engine;
  hadoop::HadoopParams params;
  params.slaveCount = 4;
  params.topology.racks = 2;
  hadoop::Cluster cluster(params, 7, engine);
  const double base = cluster.node(3).disk().capacity();

  faults::ScenarioSpec spec;
  spec.cls = faults::ScenarioClass::kGrayFailure;
  spec.node = 3;
  spec.startTime = 5.0;
  spec.endTime = 15.0;
  faults::ScenarioInjector injector(cluster, spec);
  injector.arm();

  engine.runUntil(10.0);
  EXPECT_DOUBLE_EQ(cluster.node(3).disk().capacity(),
                   base * spec.grayDiskFactor);
  engine.runUntil(20.0);
  EXPECT_DOUBLE_EQ(cluster.node(3).disk().capacity(), base);
}

TEST_F(ScenarioTest, ScenarioRunsAreSeedDeterministic) {
  // The determinism contract: one spec, two full runs, byte-identical
  // event logs and alarms. Noisy-neighbor consumes the scenario rng
  // hardest (one draw per tenant per tick), so it is the sharpest
  // probe.
  const ExperimentSpec spec =
      specForScenario(baseSpec(), faults::ScenarioClass::kNoisyNeighbor);
  const ExperimentResult a = runExperiment(spec, *model_);
  const ExperimentResult b = runExperiment(spec, *model_);
  ASSERT_EQ(a.scenarioEvents.size(), b.scenarioEvents.size());
  for (std::size_t i = 0; i < a.scenarioEvents.size(); ++i) {
    EXPECT_EQ(a.scenarioEvents[i].time, b.scenarioEvents[i].time);
    EXPECT_EQ(a.scenarioEvents[i].what, b.scenarioEvents[i].what);
  }
  EXPECT_EQ(fingerprintAlarms(a.blackBox), fingerprintAlarms(b.blackBox));
  EXPECT_EQ(fingerprintAlarms(a.whiteBox), fingerprintAlarms(b.whiteBox));
  EXPECT_EQ(a.truth.culprits, b.truth.culprits);
}

TEST_F(ScenarioTest, FlatRunIsByteIdenticalRegardlessOfUplinkSpec) {
  // racks == 1 constructs no uplink plane at all, so the uplink
  // bandwidth value must be inert: two flat runs with wildly different
  // uplink specs produce byte-identical alarms.
  ExperimentSpec flat = baseSpec();
  flat.topology.racks = 1;
  ExperimentSpec tiny = flat;
  tiny.topology.uplinkBytesPerSec = 1.0;
  const ExperimentResult a = runExperiment(flat, *model_);
  const ExperimentResult b = runExperiment(tiny, *model_);
  ASSERT_GT(a.blackBox.size(), 0u);
  EXPECT_EQ(fingerprintAlarms(a.blackBox), fingerprintAlarms(b.blackBox));
  EXPECT_EQ(fingerprintAlarms(a.whiteBox), fingerprintAlarms(b.whiteBox));
}

TEST_F(ScenarioTest, MatrixRowsSumToAggregate) {
  const ScenarioMatrix matrix = runScenarioMatrix(baseSpec(), *model_);
  ASSERT_EQ(matrix.rows.size(), faults::allScenarios().size());
  auto check = [&](ApproachSummary ScenarioOutcome::* member,
                   const ApproachSummary& agg) {
    long tp = 0, fp = 0, tn = 0, fn = 0;
    double latencySum = 0.0;
    int localized = 0;
    for (const ScenarioOutcome& row : matrix.rows) {
      const ApproachSummary& s = row.*member;
      tp += s.eval.tp;
      fp += s.eval.fp;
      tn += s.eval.tn;
      fn += s.eval.fn;
      if (s.latencySeconds >= 0.0) {
        latencySum += s.latencySeconds;
        ++localized;
      }
    }
    EXPECT_EQ(agg.eval.tp, tp);
    EXPECT_EQ(agg.eval.fp, fp);
    EXPECT_EQ(agg.eval.tn, tn);
    EXPECT_EQ(agg.eval.fn, fn);
    if (localized > 0) {
      EXPECT_DOUBLE_EQ(agg.latencySeconds, latencySum / localized);
    } else {
      EXPECT_LT(agg.latencySeconds, 0.0);
    }
    // Every (window, node) decision lands in exactly one confusion
    // cell, so the counts partition the decision space.
    EXPECT_GT(tp + fp + tn + fn, 0);
  };
  check(&ScenarioOutcome::blackBox, matrix.blackBox);
  check(&ScenarioOutcome::whiteBox, matrix.whiteBox);
  check(&ScenarioOutcome::combined, matrix.combined);

  for (const ScenarioOutcome& row : matrix.rows) {
    EXPECT_FALSE(row.culprits.empty()) << row.name;
    EXPECT_GT(row.eventCount, 0u) << row.name;
    // Each class must be localized by at least one approach.
    EXPECT_TRUE(row.blackBox.latencySeconds >= 0.0 ||
                row.whiteBox.latencySeconds >= 0.0 ||
                row.combined.latencySeconds >= 0.0)
        << row.name;
  }
}

TEST_F(ScenarioTest, MultiCulpritGroundTruthFlowsThroughTheHarness) {
  const ExperimentSpec spec =
      specForScenario(baseSpec(), faults::ScenarioClass::kRackPartition);
  const ExperimentResult result = runExperiment(spec, *model_);
  // Rack 2 of a 9-slave 3-rack cluster: slaves 7..9 -> indices 6..8.
  EXPECT_EQ(result.truth.culprits, (std::vector<int>{6, 7, 8}));
  EXPECT_EQ(result.truth.slaveIndex, 6);
  EXPECT_TRUE(result.truth.isCulprit(7));
  EXPECT_FALSE(result.truth.isCulprit(5));
  EXPECT_DOUBLE_EQ(result.truth.faultStart, 0.3 * spec.duration);
  EXPECT_DOUBLE_EQ(result.truth.faultEnd, 0.75 * spec.duration);
}

}  // namespace
}  // namespace asdf::harness
