#include "faults/faults.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "metrics/catalog.h"
#include "sim/engine.h"

namespace asdf::faults {
namespace {

hadoop::HadoopParams smallParams() {
  hadoop::HadoopParams p;
  p.slaveCount = 4;
  return p;
}

TEST(FaultNames, RoundTrip) {
  for (FaultType t : allFaults()) {
    EXPECT_EQ(faultFromName(faultName(t)), t);
  }
  EXPECT_EQ(faultFromName("none"), FaultType::kNone);
  EXPECT_EQ(faultFromName(""), FaultType::kNone);
  EXPECT_THROW(faultFromName("bogus"), ConfigError);
  EXPECT_EQ(allFaults().size(), 6u);  // Table 2
}

TEST(FaultInjector, ActivatesAtScheduledTime) {
  sim::SimEngine engine;
  hadoop::Cluster cluster(smallParams(), 1, engine);
  cluster.start();
  FaultSpec spec;
  spec.type = FaultType::kPacketLoss;
  spec.node = 2;
  spec.startTime = 50.0;
  FaultInjector injector(cluster, spec);
  injector.arm();
  engine.runUntil(49.0);
  EXPECT_FALSE(injector.active());
  EXPECT_DOUBLE_EQ(cluster.node(2).nic().lossRate(), 0.0);
  engine.runUntil(51.0);
  EXPECT_TRUE(injector.active());
  EXPECT_DOUBLE_EQ(cluster.node(2).nic().lossRate(), 0.5);
}

TEST(FaultInjector, DeactivatesAtEndTime) {
  sim::SimEngine engine;
  hadoop::Cluster cluster(smallParams(), 2, engine);
  cluster.start();
  FaultSpec spec;
  spec.type = FaultType::kPacketLoss;
  spec.node = 1;
  spec.startTime = 10.0;
  spec.endTime = 20.0;
  FaultInjector injector(cluster, spec);
  injector.arm();
  engine.runUntil(30.0);
  EXPECT_FALSE(injector.active());
  EXPECT_DOUBLE_EQ(cluster.node(1).nic().lossRate(), 0.0);
  EXPECT_DOUBLE_EQ(injector.endedAt(), 20.0);
}

TEST(FaultInjector, ApplicationFaultsFlipNodeFlags) {
  sim::SimEngine engine;
  hadoop::Cluster cluster(smallParams(), 3, engine);
  cluster.start();
  for (auto [type, flag] :
       std::vector<std::pair<FaultType, bool hadoop::NodeFaults::*>>{
           {FaultType::kHadoop1036, &hadoop::NodeFaults::mapHang},
           {FaultType::kHadoop1152, &hadoop::NodeFaults::reduceCopyFail},
           {FaultType::kHadoop2080, &hadoop::NodeFaults::reduceSortHang}}) {
    FaultSpec spec;
    spec.type = type;
    spec.node = 3;
    spec.startTime = 0.0;
    FaultInjector injector(cluster, spec);
    injector.arm();
    engine.runUntil(engine.now() + 1.0);
    EXPECT_TRUE(cluster.node(3).faults().*flag) << faultName(type);
  }
}

TEST(FaultInjector, CpuHogAchievesTargetUtilization) {
  sim::SimEngine engine;
  hadoop::Cluster cluster(smallParams(), 4, engine);
  cluster.start();
  FaultSpec spec;
  spec.type = FaultType::kCpuHog;
  spec.node = 1;
  spec.startTime = 5.0;
  FaultInjector injector(cluster, spec);
  injector.arm();
  engine.runUntil(60.0);
  // With an idle node the hog should sit right at 70% of 4 cores.
  const auto snap = cluster.node(1).sadcCollect();
  EXPECT_GT(snap.node[metrics::kCpuUserPct], 55.0);
  // The hog process appears in the tracked-process metrics.
  bool sawHog = false;
  for (const auto& [name, v] : snap.processes) {
    if (name == "cpuhog") {
      sawHog = true;
      EXPECT_GT(v[metrics::kProcCpuUserPct], 100.0);  // >1 core
    }
  }
  EXPECT_TRUE(sawHog);
}

TEST(FaultInjector, DiskHogWritesAndFinishes) {
  sim::SimEngine engine;
  hadoop::Cluster cluster(smallParams(), 5, engine);
  cluster.start();
  FaultSpec spec;
  spec.type = FaultType::kDiskHog;
  spec.node = 2;
  spec.startTime = 0.0;
  spec.diskHogBytes = 1.0e9;  // scaled down for the test
  FaultInjector injector(cluster, spec);
  injector.arm();
  engine.runUntil(10.0);
  EXPECT_GT(injector.diskHogWritten(), 5.0e8);
  EXPECT_TRUE(injector.active());
  engine.runUntil(60.0);
  // The 1 GB write finished; the hog exits and records when.
  EXPECT_FALSE(injector.active());
  EXPECT_NEAR(injector.diskHogWritten(), 1.0e9, 1.0e6);
  EXPECT_GT(injector.endedAt(), 0.0);
}

TEST(FaultInjector, DiskHogSaturatesDiskCounters) {
  sim::SimEngine engine;
  hadoop::Cluster cluster(smallParams(), 6, engine);
  cluster.start();
  FaultSpec spec;
  spec.type = FaultType::kDiskHog;
  spec.node = 2;
  spec.startTime = 0.0;
  FaultInjector injector(cluster, spec);
  injector.arm();
  engine.runUntil(20.0);
  const auto snap = cluster.node(2).sadcCollect();
  // Writing flat out: ~80 MB/s -> bwrtn ~ 156k sectors/s.
  EXPECT_GT(snap.node[metrics::kIoWriteBlocksPerSec], 1.0e5);
}

TEST(FaultInjector, NoneFaultIsInert) {
  sim::SimEngine engine;
  hadoop::Cluster cluster(smallParams(), 7, engine);
  cluster.start();
  FaultSpec spec;  // kNone
  FaultInjector injector(cluster, spec);
  injector.arm();
  engine.runUntil(20.0);
  EXPECT_FALSE(injector.active());
}

}  // namespace
}  // namespace asdf::faults
