#include "metrics/os_model.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "metrics/catalog.h"
#include "metrics/sadc.h"

namespace asdf::metrics {
namespace {

NodeOsModel makeModel(double noise = 0.02) {
  NodeOsModel::Params params;
  params.noiseFraction = noise;
  return NodeOsModel(params, Rng(42));
}

TEST(Catalog, PaperMetricCounts) {
  // Section 3.5: "64 node-level metrics, 18 network-interface-specific
  // metrics and 19 process-level metrics".
  EXPECT_EQ(nodeMetricNames().size(), 64u);
  EXPECT_EQ(nicMetricNames().size(), 18u);
  EXPECT_EQ(processMetricNames().size(), 19u);
}

TEST(Catalog, NamesAreUniqueAndIndexable) {
  for (std::size_t i = 0; i < kNodeMetricCount; ++i) {
    EXPECT_EQ(nodeMetricIndex(nodeMetricNames()[i]), static_cast<int>(i));
  }
  for (std::size_t i = 0; i < kNicMetricCount; ++i) {
    EXPECT_EQ(nicMetricIndex(nicMetricNames()[i]), static_cast<int>(i));
  }
  for (std::size_t i = 0; i < kProcessMetricCount; ++i) {
    EXPECT_EQ(processMetricIndex(processMetricNames()[i]),
              static_cast<int>(i));
  }
  EXPECT_EQ(nodeMetricIndex("no_such_metric"), -1);
}

TEST(OsModel, SnapshotHasFullDimensions) {
  NodeOsModel model = makeModel();
  NodeActivity idle;
  idle.memUsedBytes = 1.0e9;
  const SadcSnapshot snap = model.tick(1.0, idle);
  EXPECT_EQ(snap.node.size(), kNodeMetricCount);
  EXPECT_EQ(snap.nic.size(), kNicMetricCount);
  EXPECT_DOUBLE_EQ(snap.time, 1.0);
}

TEST(OsModel, CpuPercentagesSumToHundred) {
  NodeOsModel model = makeModel(0.0);
  NodeActivity busy;
  busy.cpuUserCores = 2.0;
  busy.cpuSystemCores = 0.5;
  busy.memUsedBytes = 2.0e9;
  const SadcSnapshot snap = model.tick(1.0, busy);
  const auto& m = snap.node;
  const double total = m[kCpuUserPct] + m[kCpuNicePct] + m[kCpuSystemPct] +
                       m[kCpuIowaitPct] + m[kCpuStealPct] + m[kCpuIdlePct];
  EXPECT_NEAR(total, 100.0, 1.0);
}

TEST(OsModel, CpuLoadRaisesUserPct) {
  NodeOsModel model = makeModel(0.0);
  NodeActivity idle;
  idle.memUsedBytes = 1.0e9;
  const double idleUser = model.tick(1.0, idle).node[kCpuUserPct];
  NodeActivity busy = idle;
  busy.cpuUserCores = 3.0;
  const double busyUser = model.tick(2.0, busy).node[kCpuUserPct];
  EXPECT_GT(busyUser, idleUser + 50.0);
}

TEST(OsModel, CpuSaturatesAtCapacity) {
  NodeOsModel model = makeModel(0.0);
  NodeActivity over;
  over.cpuUserCores = 100.0;  // way past 4 cores
  over.memUsedBytes = 1.0e9;
  const auto& m = model.tick(1.0, over).node;
  EXPECT_LE(m[kCpuUserPct], 100.0 + 1e-9);
  EXPECT_GE(m[kCpuIdlePct], 0.0);
}

TEST(OsModel, DiskTrafficDrivesIoCounters) {
  NodeOsModel model = makeModel(0.0);
  NodeActivity io;
  io.diskReadBytes = 10.0e6;
  io.diskWriteBytes = 20.0e6;
  io.memUsedBytes = 1.0e9;
  const auto& m = model.tick(1.0, io).node;
  EXPECT_NEAR(m[kIoReadBlocksPerSec], 10.0e6 / 512.0, 1.0);
  EXPECT_NEAR(m[kIoWriteBlocksPerSec], 20.0e6 / 512.0, 1.0);
  EXPECT_GT(m[kIoTps], 50.0);
  EXPECT_NEAR(m[kPgPgInPerSec], 10.0e6 / 1024.0, 1.0);
}

TEST(OsModel, NetworkTrafficDrivesNicCounters) {
  NodeOsModel model = makeModel(0.0);
  NodeActivity net;
  net.netRxBytes = 3.0e6;
  net.netTxBytes = 1.5e6;
  net.memUsedBytes = 1.0e9;
  const SadcSnapshot snap = model.tick(1.0, net);
  EXPECT_NEAR(snap.nic[kNicRxKbPerSec], 3.0e6 / 1024.0, 30.0);
  EXPECT_NEAR(snap.nic[kNicTxKbPerSec], 1.5e6 / 1024.0, 15.0);
  EXPECT_GT(snap.node[kNetRxPktTotalPerSec], 1000.0);
}

TEST(OsModel, DropsShowOnNic) {
  NodeOsModel model = makeModel(0.0);
  NodeActivity lossy;
  lossy.netRxDropPkts = 500.0;
  lossy.memUsedBytes = 1.0e9;
  const SadcSnapshot snap = model.tick(1.0, lossy);
  EXPECT_GT(snap.nic[kNicRxDropPerSec], 400.0);
}

TEST(OsModel, MemoryAccounting) {
  NodeOsModel model = makeModel(0.0);
  NodeActivity a;
  a.memUsedBytes = 4.0e9;
  const auto& m = model.tick(1.0, a).node;
  EXPECT_GT(m[kMemUsedKb], 4.0e9 / 1024.0 * 0.95);
  EXPECT_GT(m[kMemUsedPct], 50.0);
  EXPECT_LT(m[kMemUsedPct], 100.0);
}

TEST(OsModel, LoadAverageIsEwma) {
  NodeOsModel model = makeModel(0.0);
  NodeActivity busy;
  busy.runnableTasks = 8;
  busy.memUsedBytes = 1.0e9;
  double prev = 0.0;
  for (int t = 1; t <= 120; ++t) {
    const auto& m = model.tick(t, busy).node;
    EXPECT_GE(m[kLoadAvg1] + 1e-6, prev * 0.9);  // rising, roughly
    prev = m[kLoadAvg1];
  }
  // After 2 minutes of 8 runnable tasks, ldavg-1 should be well on its
  // way towards 8 and ldavg-15 should lag it.
  NodeActivity snapA = busy;
  const auto& m = model.tick(121, snapA).node;
  EXPECT_GT(m[kLoadAvg1], 4.0);
  EXPECT_LT(m[kLoadAvg15], m[kLoadAvg1]);
}

TEST(OsModel, NoiseGivesNonzeroVarianceOnQuietMetrics) {
  NodeOsModel model = makeModel();
  NodeActivity idle;
  idle.memUsedBytes = 1.0e9;
  RunningStats iowait;
  RunningStats tps;
  for (int t = 1; t <= 200; ++t) {
    const auto& m = model.tick(t, idle).node;
    iowait.add(m[kCpuIowaitPct]);
    tps.add(m[kIoTps]);
  }
  // The analyses' log/sigma scaling needs nonzero fault-free sigmas.
  EXPECT_GT(iowait.stddev(), 0.0);
  EXPECT_GT(tps.stddev(), 0.0);
}

TEST(OsModel, TracksProcessMetrics) {
  NodeOsModel model = makeModel(0.0);
  NodeActivity a;
  a.memUsedBytes = 1.0e9;
  ProcessActivity p;
  p.name = "TaskTracker";
  p.cpuUserCores = 0.5;
  p.rssBytes = 2.0e8;
  p.threads = 30;
  p.fds = 100;
  a.processes.push_back(p);
  const SadcSnapshot snap = model.tick(1.0, a);
  ASSERT_EQ(snap.processes.size(), 1u);
  EXPECT_EQ(snap.processes[0].first, "TaskTracker");
  const auto& v = snap.processes[0].second;
  ASSERT_EQ(v.size(), kProcessMetricCount);
  EXPECT_NEAR(v[kProcCpuUserPct], 50.0, 1.0);
  EXPECT_NEAR(v[kProcRssKb], 2.0e8 / 1024.0, 1.0);
  EXPECT_EQ(v[kProcThreads], 30.0);
}

TEST(OsModel, ProcessCpuTicksAccumulate) {
  NodeOsModel model = makeModel(0.0);
  NodeActivity a;
  a.memUsedBytes = 1.0e9;
  ProcessActivity p;
  p.name = "DataNode";
  p.cpuUserCores = 0.1;
  a.processes.push_back(p);
  double prev = -1.0;
  for (int t = 1; t <= 10; ++t) {
    const SadcSnapshot snap = model.tick(t, a);
    const double ticks = snap.processes[0].second[kProcUserTimeTicks];
    EXPECT_GT(ticks, prev);
    prev = ticks;
  }
  EXPECT_NEAR(prev, 10 * 0.1 * 100.0, 1.0);
}

TEST(Sadc, FlattenConcatenatesNodeAndNic) {
  NodeOsModel model = makeModel();
  NodeActivity a;
  a.memUsedBytes = 1.0e9;
  const SadcSnapshot snap = model.tick(1.0, a);
  const auto flat = flattenNodeVector(snap);
  ASSERT_EQ(flat.size(), kFlatNodeVectorSize);
  EXPECT_DOUBLE_EQ(flat[0], snap.node[0]);
  EXPECT_DOUBLE_EQ(flat[kNodeMetricCount], snap.nic[0]);
}

TEST(Sadc, FlattenedNamesAlign) {
  const auto names = flattenedNodeVectorNames();
  ASSERT_EQ(names.size(), kFlatNodeVectorSize);
  EXPECT_EQ(names[0], "cpu_user_pct");
  EXPECT_EQ(names[kNodeMetricCount], "eth0.rxpck_per_s");
}

}  // namespace
}  // namespace asdf::metrics
