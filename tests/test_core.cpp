// fpt-core tests: DAG construction per Section 3.3, scheduling
// semantics, wiring errors. Uses small purpose-built test modules
// registered in a private registry.
#include "core/fpt_core.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/module.h"
#include "core/registry.h"

namespace asdf::core {
namespace {

// Emits its instance id's configured "value" every "interval" seconds.
class TestSource final : public Module {
 public:
  void init(ModuleContext& ctx) override {
    value_ = ctx.numParam("value", 1.0);
    out_ = ctx.addOutput("output0", ctx.param("origin", ""));
    ctx.requestPeriodic(ctx.numParam("interval", 1.0));
  }
  void run(ModuleContext& ctx, RunReason reason) override {
    EXPECT_EQ(reason, RunReason::kPeriodic);
    ctx.write(out_, value_);
  }

 private:
  double value_ = 0.0;
  int out_ = -1;
};

// Multiplies its scalar input by "factor".
class TestScale final : public Module {
 public:
  void init(ModuleContext& ctx) override {
    factor_ = ctx.numParam("factor", 2.0);
    if (ctx.inputWidth("input") != 1) {
      throw ConfigError("scale needs exactly one input");
    }
    out_ = ctx.addOutput("output0");
  }
  void run(ModuleContext& ctx, RunReason) override {
    if (!ctx.inputFresh("input", 0)) return;
    ctx.write(out_, asScalar(ctx.input("input", 0).value) * factor_);
  }

 private:
  double factor_ = 2.0;
  int out_ = -1;
};

// Records every scalar it sees, plus run bookkeeping.
class TestSink final : public Module {
 public:
  static std::vector<double>* collected;
  static int runs;
  void init(ModuleContext& ctx) override {
    trigger_ = static_cast<int>(ctx.intParam("trigger", 1));
    ctx.setInputTrigger(trigger_);
  }
  void run(ModuleContext& ctx, RunReason) override {
    ++runs;
    for (const auto& name : ctx.inputNames()) {
      for (std::size_t i = 0; i < ctx.inputWidth(name); ++i) {
        if (ctx.inputHasData(name, i) && ctx.inputFresh(name, i)) {
          collected->push_back(asScalar(ctx.input(name, i).value));
        }
      }
    }
  }

 private:
  int trigger_ = 1;
};

std::vector<double>* TestSink::collected = nullptr;
int TestSink::runs = 0;

class FptCoreTest : public ::testing::Test {
 protected:
  FptCoreTest() {
    registry_.registerType("source",
                           [] { return std::make_unique<TestSource>(); });
    registry_.registerType("scale",
                           [] { return std::make_unique<TestScale>(); });
    registry_.registerType("sink",
                           [] { return std::make_unique<TestSink>(); });
    TestSink::collected = &collected_;
    TestSink::runs = 0;
  }

  sim::SimEngine engine_;
  ModuleRegistry registry_;
  std::vector<double> collected_;
};

TEST_F(FptCoreTest, BuildsAndRunsLinearPipeline) {
  FptCore core(engine_, Environment{}, &registry_);
  core.configureFromText(R"(
[source]
id = src
value = 5
interval = 1

[scale]
id = x2
factor = 2
input[input] = src.output0

[sink]
id = out
input[a] = x2.output0
)");
  engine_.runUntil(3.0);
  ASSERT_EQ(collected_.size(), 3u);
  EXPECT_DOUBLE_EQ(collected_[0], 10.0);
  EXPECT_EQ(core.instances().size(), 3u);
  EXPECT_GE(core.totalRuns(), 9u);
}

TEST_F(FptCoreTest, AtSyntaxBindsAllOutputs) {
  FptCore core(engine_, Environment{}, &registry_);
  core.configureFromText(R"(
[source]
id = src
value = 7

[sink]
id = out
input[a] = @src
)");
  engine_.runUntil(2.0);
  ASSERT_EQ(collected_.size(), 2u);
  EXPECT_DOUBLE_EQ(collected_[1], 7.0);
}

TEST_F(FptCoreTest, InitializationOrderFollowsDependencies) {
  // Downstream instances listed before their producers still
  // initialize — the init queue resolves ordering (Section 3.3).
  FptCore core(engine_, Environment{}, &registry_);
  core.configureFromText(R"(
[sink]
id = out
input[a] = mid.output0

[scale]
id = mid
input[input] = src.output0

[source]
id = src
value = 3
)");
  engine_.runUntil(1.0);
  ASSERT_EQ(collected_.size(), 1u);
  EXPECT_DOUBLE_EQ(collected_[0], 6.0);
}

TEST_F(FptCoreTest, InputTriggerBatchesUpdates) {
  FptCore core(engine_, Environment{}, &registry_);
  core.configureFromText(R"(
[source]
id = a
value = 1

[source]
id = b
value = 2

[sink]
id = out
trigger = 2
input[x] = a.output0
input[y] = b.output0
)");
  engine_.runUntil(4.0);
  // Both sources fire at each tick; the sink runs once per tick (not
  // twice) because it waits for 2 updates.
  EXPECT_EQ(TestSink::runs, 4);
  EXPECT_EQ(collected_.size(), 8u);
}

TEST_F(FptCoreTest, UnknownModuleTypeFails) {
  FptCore core(engine_, Environment{}, &registry_);
  EXPECT_THROW(core.configureFromText("[nosuch]\nid = x\n"), ConfigError);
}

TEST_F(FptCoreTest, UnknownInputInstanceFails) {
  FptCore core(engine_, Environment{}, &registry_);
  EXPECT_THROW(core.configureFromText(R"(
[sink]
id = out
input[a] = ghost.output0
)"),
               ConfigError);
}

TEST_F(FptCoreTest, UnknownOutputNameFails) {
  FptCore core(engine_, Environment{}, &registry_);
  EXPECT_THROW(core.configureFromText(R"(
[source]
id = src

[sink]
id = out
input[a] = src.nonexistent
)"),
               ConfigError);
}

TEST_F(FptCoreTest, DuplicateIdFails) {
  FptCore core(engine_, Environment{}, &registry_);
  EXPECT_THROW(core.configureFromText("[source]\nid = x\n[source]\nid = x\n"),
               ConfigError);
}

TEST_F(FptCoreTest, CycleFailsDagConstruction) {
  FptCore core(engine_, Environment{}, &registry_);
  EXPECT_THROW(core.configureFromText(R"(
[scale]
id = a
input[input] = b.output0

[scale]
id = b
input[input] = a.output0
)"),
               ConfigError);
}

TEST_F(FptCoreTest, CycleErrorNamesStuckInstances) {
  FptCore core(engine_, Environment{}, &registry_);
  try {
    core.configureFromText(R"(
[scale]
id = looper
input[input] = looper.output0
)");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("looper"), std::string::npos);
  }
}

TEST_F(FptCoreTest, AnonymousInstancesGetGeneratedIds) {
  FptCore core(engine_, Environment{}, &registry_);
  core.configureFromText("[source]\nvalue = 1\n[source]\nvalue = 2\n");
  EXPECT_EQ(core.instances().size(), 2u);
  EXPECT_NE(core.instances()[0]->id(), core.instances()[1]->id());
  EXPECT_NE(core.findInstance(core.instances()[0]->id()), nullptr);
}

TEST_F(FptCoreTest, ReconfigureIsRejected) {
  FptCore core(engine_, Environment{}, &registry_);
  core.configureFromText("[source]\nid = s\n");
  EXPECT_THROW(core.configureFromText("[source]\nid = t\n"), ConfigError);
}

TEST_F(FptCoreTest, OriginsPropagateToConsumers) {
  FptCore core(engine_, Environment{}, &registry_);
  core.configureFromText(R"(
[source]
id = src
origin = slave7

[sink]
id = out
input[a] = src.output0
)");
  engine_.runUntil(1.0);
  const ModuleInstance* src = core.findInstance("src");
  ASSERT_NE(src, nullptr);
  EXPECT_EQ(src->outputs().front()->origin, "slave7");
}

TEST_F(FptCoreTest, MalformedNumericParamFailsAtInit) {
  FptCore core(engine_, Environment{}, &registry_);
  EXPECT_THROW(core.configureFromText("[source]\nid = s\nvalue = abc\n"),
               ConfigError);
}

TEST_F(FptCoreTest, CpuAndMemoryAccounting) {
  FptCore core(engine_, Environment{}, &registry_);
  core.configureFromText(R"(
[source]
id = src

[sink]
id = out
input[a] = @src
)");
  engine_.runUntil(50.0);
  EXPECT_GT(core.cpuSeconds(), 0.0);
  EXPECT_GT(core.memoryFootprintBytes(), 0u);
}

TEST(Environment, TypedServiceLookup) {
  Environment env;
  int value = 42;
  env.provide("answer", &value);
  EXPECT_EQ(env.get<int>("answer"), &value);
  EXPECT_EQ(env.get<int>("missing"), nullptr);
  EXPECT_THROW(env.get<double>("answer"), std::logic_error);
  EXPECT_THROW(env.require<int>("missing"), std::logic_error);
  EXPECT_EQ(&env.require<int>("answer"), &value);
}

}  // namespace
}  // namespace asdf::core
