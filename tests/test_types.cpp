#include "common/types.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace asdf {
namespace {

TEST(LogTimestamp, EpochFormatsLikeFigure5) {
  // The epoch matches the date in the paper's Figure 5 log snippet.
  EXPECT_EQ(formatLogTimestamp(0.0), "2008-04-15 14:00:00,000");
}

TEST(LogTimestamp, MillisecondsAndCarry) {
  EXPECT_EQ(formatLogTimestamp(1.324), "2008-04-15 14:00:01,324");
  EXPECT_EQ(formatLogTimestamp(59.9995), "2008-04-15 14:01:00,000");
}

TEST(LogTimestamp, HourAndDayRollover) {
  EXPECT_EQ(formatLogTimestamp(3600.0), "2008-04-15 15:00:00,000");
  EXPECT_EQ(formatLogTimestamp(10.0 * 3600.0), "2008-04-16 00:00:00,000");
  EXPECT_EQ(formatLogTimestamp(34.0 * 3600.0), "2008-04-17 00:00:00,000");
}

TEST(LogTimestamp, ParseInverseOfFormat) {
  for (double t : {0.0, 1.5, 59.999, 3599.0, 86400.0, 123456.789}) {
    const SimTime parsed = parseLogTimestamp(formatLogTimestamp(t));
    EXPECT_NEAR(parsed, t, 0.002) << "t=" << t;
  }
}

TEST(LogTimestamp, ParseRejectsMalformed) {
  EXPECT_EQ(parseLogTimestamp(""), kNoTime);
  EXPECT_EQ(parseLogTimestamp("not a timestamp"), kNoTime);
  EXPECT_EQ(parseLogTimestamp("2008-04-15"), kNoTime);
  EXPECT_EQ(parseLogTimestamp("2008-13-15 14:00:00,000"), kNoTime);
}

TEST(LogTimestamp, ParseRejectsBeforeEpoch) {
  EXPECT_EQ(parseLogTimestamp("2007-04-15 14:00:00,000"), kNoTime);
}

class TimestampRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(TimestampRoundTrip, RandomTimesSurvive) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 99);
  for (int i = 0; i < 200; ++i) {
    const double t = rng.uniform(0.0, 30.0 * 86400.0);
    EXPECT_NEAR(parseLogTimestamp(formatLogTimestamp(t)), t, 0.002);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomRuns, TimestampRoundTrip,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace asdf
