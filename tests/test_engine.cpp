#include "sim/engine.h"

#include <vector>

#include <gtest/gtest.h>

namespace asdf::sim {
namespace {

TEST(SimEngine, StartsAtZeroAndIdle) {
  SimEngine engine;
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  EXPECT_TRUE(engine.idle());
  EXPECT_FALSE(engine.step());
}

TEST(SimEngine, RunsEventsInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.scheduleAt(3.0, [&] { order.push_back(3); });
  engine.scheduleAt(1.0, [&] { order.push_back(1); });
  engine.scheduleAt(2.0, [&] { order.push_back(2); });
  engine.runUntil(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(SimEngine, TiesBreakByScheduleOrder) {
  SimEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.scheduleAt(5.0, [&order, i] { order.push_back(i); });
  }
  engine.runUntil(5.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimEngine, PastEventsClampToNow) {
  SimEngine engine;
  engine.runUntil(10.0);
  bool ran = false;
  engine.scheduleAt(2.0, [&] {
    ran = true;
    EXPECT_DOUBLE_EQ(engine.now(), 10.0);
  });
  engine.runUntil(10.0);
  EXPECT_TRUE(ran);
}

TEST(SimEngine, ScheduleAfterUsesRelativeDelay) {
  SimEngine engine;
  double firedAt = -1.0;
  engine.scheduleAt(4.0, [&] {
    engine.scheduleAfter(2.5, [&] { firedAt = engine.now(); });
  });
  engine.runUntil(10.0);
  EXPECT_DOUBLE_EQ(firedAt, 6.5);
}

TEST(SimEngine, RunUntilInclusiveOfBoundary) {
  SimEngine engine;
  bool ran = false;
  engine.scheduleAt(5.0, [&] { ran = true; });
  engine.runUntil(5.0);
  EXPECT_TRUE(ran);
}

TEST(SimEngine, RunUntilStopsBeforeLaterEvents) {
  SimEngine engine;
  bool ran = false;
  engine.scheduleAt(5.1, [&] { ran = true; });
  engine.runUntil(5.0);
  EXPECT_FALSE(ran);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
  engine.runUntil(6.0);
  EXPECT_TRUE(ran);
}

TEST(SimEngine, PeriodicFiresAtInterval) {
  SimEngine engine;
  std::vector<double> times;
  engine.addPeriodic(2.0, [&] { times.push_back(engine.now()); });
  engine.runUntil(7.0);
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 2.0);
  EXPECT_DOUBLE_EQ(times[1], 4.0);
  EXPECT_DOUBLE_EQ(times[2], 6.0);
}

TEST(SimEngine, PeriodicCustomPhase) {
  SimEngine engine;
  std::vector<double> times;
  engine.addPeriodic(2.0, [&] { times.push_back(engine.now()); }, 0.5);
  engine.runUntil(5.0);
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 0.5);
  EXPECT_DOUBLE_EQ(times[1], 2.5);
}

TEST(SimEngine, CancelPeriodicStopsFirings) {
  SimEngine engine;
  int count = 0;
  const int id = engine.addPeriodic(1.0, [&] { ++count; });
  engine.runUntil(3.0);
  EXPECT_EQ(count, 3);
  engine.cancelPeriodic(id);
  engine.runUntil(10.0);
  EXPECT_EQ(count, 3);
}

TEST(SimEngine, PeriodicCanCancelItself) {
  SimEngine engine;
  int count = 0;
  int id = -1;
  id = engine.addPeriodic(1.0, [&] {
    ++count;
    if (count == 2) engine.cancelPeriodic(id);
  });
  engine.runUntil(10.0);
  EXPECT_EQ(count, 2);
}

TEST(SimEngine, TwoPeriodicsKeepRegistrationOrderOnTies) {
  SimEngine engine;
  std::vector<char> order;
  engine.addPeriodic(1.0, [&] { order.push_back('a'); });
  engine.addPeriodic(1.0, [&] { order.push_back('b'); });
  engine.runUntil(3.0);
  ASSERT_EQ(order.size(), 6u);
  for (std::size_t i = 0; i < order.size(); i += 2) {
    EXPECT_EQ(order[i], 'a');
    EXPECT_EQ(order[i + 1], 'b');
  }
}

TEST(SimEngine, CancelDropsAlreadyQueuedFiring) {
  // The firing event for t=1.0 is pushed at registration time; a
  // cancel that lands before it must swallow it, not just stop
  // re-arming after one more callback.
  SimEngine engine;
  int count = 0;
  const int id = engine.addPeriodic(1.0, [&] { ++count; });
  engine.scheduleAt(0.5, [&] { engine.cancelPeriodic(id); });
  engine.runUntil(10.0);
  EXPECT_EQ(count, 0);
  EXPECT_TRUE(engine.idle());
}

TEST(SimEngine, EqualTimestampsOrderBySequenceAcrossApis) {
  // One-shots and periodic firings landing on the same timestamp run
  // in the order their events were created, regardless of which API
  // queued them.
  SimEngine engine;
  std::vector<char> order;
  engine.scheduleAt(2.0, [&] { order.push_back('a'); });
  engine.addPeriodic(5.0, [&] { order.push_back('b'); }, 2.0);
  engine.scheduleAt(1.0, [&] {
    engine.scheduleAfter(1.0, [&] { order.push_back('c'); });
  });
  engine.runUntil(2.0);
  EXPECT_EQ(order, (std::vector<char>{'a', 'b', 'c'}));
}

TEST(SimEngine, PastSchedulesClampAndKeepOrder) {
  // After the clock has advanced, both scheduleAt with a stale
  // timestamp and scheduleAfter with a negative delay clamp to "run
  // immediately at now()" and still dispatch in scheduling order.
  SimEngine engine;
  engine.runUntil(10.0);
  std::vector<int> order;
  double firstAt = -1.0;
  engine.scheduleAt(3.0, [&] {
    order.push_back(1);
    firstAt = engine.now();
  });
  engine.scheduleAfter(-5.0, [&] { order.push_back(2); });
  engine.scheduleAt(7.0, [&] { order.push_back(3); });
  engine.runUntil(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(firstAt, 10.0);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(SimEngine, NextEventTimeTracksQueueHead) {
  SimEngine engine;
  engine.scheduleAt(4.0, [] {});
  engine.scheduleAt(2.0, [] {});
  EXPECT_DOUBLE_EQ(engine.nextEventTime(), 2.0);
  engine.runUntil(2.0);
  EXPECT_DOUBLE_EQ(engine.nextEventTime(), 4.0);
  engine.runUntil(4.0);
  EXPECT_TRUE(engine.idle());
}

TEST(SimEngine, EventCountReported) {
  SimEngine engine;
  for (int i = 0; i < 5; ++i) engine.scheduleAt(i, [] {});
  EXPECT_EQ(engine.runUntil(10.0), 5u);
}

TEST(SimEngine, NestedSchedulingWithinEvent) {
  SimEngine engine;
  std::vector<int> order;
  engine.scheduleAt(1.0, [&] {
    order.push_back(1);
    engine.scheduleAfter(0.0, [&] { order.push_back(2); });
    engine.scheduleAfter(1.0, [&] { order.push_back(3); });
  });
  engine.runUntil(5.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace asdf::sim
