// Property tests for the aggregation-tier kernel split (DESIGN.md
// §12): merging per-group median partials must reproduce the flat
// cross-node median — and the full merge kernels the flat
// fingerpointing decisions — bit-exactly, for odd and even peer
// counts, skewed group sizes, and with unmonitorable members excluded
// (the PR-2 quorum semantics must survive the tier split).
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/partials.h"
#include "analysis/peercompare.h"
#include "common/rng.h"
#include "common/stats.h"

namespace asdf::analysis {
namespace {

std::vector<std::vector<double>> randomRows(Rng& rng, std::size_t n,
                                            std::size_t dims) {
  std::vector<std::vector<double>> rows(n, std::vector<double>(dims));
  for (auto& row : rows) {
    for (double& v : row) v = rng.gaussian(10.0, 4.0);
  }
  // Duplicated values exercise tie-breaking in the rank walk.
  if (n >= 2) rows[n - 1] = rows[0];
  return rows;
}

std::vector<const double*> rowPtrs(const std::vector<std::vector<double>>& rows) {
  std::vector<const double*> ptrs;
  ptrs.reserve(rows.size());
  for (const auto& row : rows) ptrs.push_back(row.data());
  return ptrs;
}

/// Builds one group's summary from per-member rows and health codes
/// (only survivors' rows enter the summary, like the agg modules do).
GroupSummary makeSummary(const std::vector<std::vector<double>>& memberRows,
                         const std::vector<int>& health,
                         const std::vector<std::vector<double>>* devRows) {
  GroupSummary s;
  s.time = 123.0;
  s.members = memberRows.size();
  s.dims = memberRows.empty() ? 0 : memberRows[0].size();
  s.hasDev = devRows != nullptr;
  for (int h : health) s.health.push_back(static_cast<double>(h));
  std::vector<const double*> survivors;
  std::vector<const double*> survivorDevs;
  for (std::size_t m = 0; m < memberRows.size(); ++m) {
    if (health[m] == 2) continue;
    s.rows.push_back(memberRows[m].data(), s.dims);
    if (devRows != nullptr) survivorDevs.push_back((*devRows)[m].data());
  }
  for (std::size_t j = 0; j < s.rows.rows(); ++j) {
    survivors.push_back(s.rows.row(j));
  }
  reduceMedianPartial(survivors.data(), survivors.size(), s.dims, s.median);
  if (devRows != nullptr) {
    reduceMedianPartial(survivorDevs.data(), survivorDevs.size(), s.dims,
                        s.devMedian);
  }
  return s;
}

/// Splits `rows` into groups of the given sizes and reduces each.
std::vector<GroupSummary> splitIntoGroups(
    const std::vector<std::vector<double>>& rows,
    const std::vector<int>& health, const std::vector<int>& sizes,
    const std::vector<std::vector<double>>* devRows) {
  std::vector<GroupSummary> groups;
  std::size_t first = 0;
  for (int size : sizes) {
    const std::size_t n = static_cast<std::size_t>(size);
    std::vector<std::vector<double>> part(rows.begin() + first,
                                          rows.begin() + first + n);
    std::vector<int> partHealth(health.begin() + first,
                                health.begin() + first + n);
    if (devRows != nullptr) {
      std::vector<std::vector<double>> devPart(devRows->begin() + first,
                                               devRows->begin() + first + n);
      groups.push_back(makeSummary(part, partHealth, &devPart));
    } else {
      groups.push_back(makeSummary(part, partHealth, nullptr));
    }
    first += n;
  }
  return groups;
}

std::vector<const GroupSummary*> groupPtrs(
    const std::vector<GroupSummary>& groups) {
  std::vector<const GroupSummary*> ptrs;
  for (const GroupSummary& g : groups) ptrs.push_back(&g);
  return ptrs;
}

// ---------------------------------------------------------------------------
// Median partial merge vs flat component-wise median.

void expectMergedMedianMatchesFlat(std::size_t total,
                                   const std::vector<int>& sizes,
                                   std::uint64_t seed) {
  constexpr std::size_t kDims = 7;
  Rng rng(seed);
  const std::vector<std::vector<double>> rows = randomRows(rng, total, kDims);
  const std::vector<const double*> ptrs = rowPtrs(rows);

  std::vector<double> flat(kDims), column;
  componentwiseMedianInto(ptrs.data(), ptrs.size(), kDims, flat.data(),
                          column);

  std::vector<MedianPartial> partials(sizes.size());
  std::vector<const MedianPartial*> parts;
  std::size_t first = 0;
  for (std::size_t g = 0; g < sizes.size(); ++g) {
    reduceMedianPartial(ptrs.data() + first,
                        static_cast<std::size_t>(sizes[g]), kDims,
                        partials[g]);
    parts.push_back(&partials[g]);
    first += static_cast<std::size_t>(sizes[g]);
  }
  ASSERT_EQ(first, total);

  MergeScratch scratch;
  std::vector<double> merged(kDims);
  mergeMedianPartials(parts.data(), parts.size(), kDims, scratch,
                      merged.data());
  for (std::size_t d = 0; d < kDims; ++d) {
    // Bit-exact, not approximate: the tiered topology must reproduce
    // the flat alarms byte-for-byte.
    EXPECT_EQ(flat[d], merged[d]) << "dim " << d << " total " << total;
  }
}

TEST(Partials, MergedMedianMatchesFlatOddCount) {
  expectMergedMedianMatchesFlat(9, {3, 3, 3}, 101);
  expectMergedMedianMatchesFlat(7, {2, 3, 2}, 102);
}

TEST(Partials, MergedMedianMatchesFlatEvenCount) {
  expectMergedMedianMatchesFlat(8, {4, 4}, 201);
  expectMergedMedianMatchesFlat(10, {5, 5}, 202);
}

TEST(Partials, MergedMedianMatchesFlatSkewedGroups) {
  expectMergedMedianMatchesFlat(10, {1, 7, 2}, 301);
  expectMergedMedianMatchesFlat(11, {1, 1, 9}, 302);
  expectMergedMedianMatchesFlat(5, {4, 1}, 303);
}

TEST(Partials, MergedMedianMatchesFlatSingleGroup) {
  expectMergedMedianMatchesFlat(6, {6}, 401);
}

TEST(Partials, MergedMedianManyRandomTopologies) {
  Rng topo(999);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t total =
        static_cast<std::size_t>(topo.uniformInt(3, 24));
    std::vector<int> sizes;
    std::size_t left = total;
    while (left > 0) {
      const int g = static_cast<int>(
          topo.uniformInt(1, static_cast<std::int64_t>(left)));
      sizes.push_back(g);
      left -= static_cast<std::size_t>(g);
    }
    expectMergedMedianMatchesFlat(total, sizes, 5000 + trial);
  }
}

TEST(Partials, MergeToleratesEmptyGroups) {
  constexpr std::size_t kDims = 3;
  Rng rng(77);
  const std::vector<std::vector<double>> rows = randomRows(rng, 5, kDims);
  const std::vector<const double*> ptrs = rowPtrs(rows);

  std::vector<double> flat(kDims), column;
  componentwiseMedianInto(ptrs.data(), ptrs.size(), kDims, flat.data(),
                          column);

  MedianPartial a, empty, b;
  reduceMedianPartial(ptrs.data(), 2, kDims, a);
  reduceMedianPartial(ptrs.data(), 0, kDims, empty);
  reduceMedianPartial(ptrs.data() + 2, 3, kDims, b);
  const MedianPartial* parts[] = {&a, &empty, &b};

  MergeScratch scratch;
  std::vector<double> merged(kDims);
  mergeMedianPartials(parts, 3, kDims, scratch, merged.data());
  for (std::size_t d = 0; d < kDims; ++d) EXPECT_EQ(flat[d], merged[d]);

  // An all-empty union yields zeros, matching medianInPlace() on an
  // empty buffer.
  const MedianPartial* nothing[] = {&empty};
  std::vector<double> zero(kDims, -1.0);
  mergeMedianPartials(nothing, 1, kDims, scratch, zero.data());
  for (double v : zero) EXPECT_EQ(0.0, v);
}

// ---------------------------------------------------------------------------
// Full merge kernels vs the flat compare kernels, with exclusions.

void expectBlackBoxMergeMatchesFlat(const std::vector<int>& sizes,
                                    const std::vector<int>& health,
                                    std::uint64_t seed) {
  constexpr std::size_t kDims = 8;
  constexpr double kThreshold = 6.0;
  std::size_t total = 0;
  for (int s : sizes) total += static_cast<std::size_t>(s);
  ASSERT_EQ(total, health.size());

  Rng rng(seed);
  const std::vector<std::vector<double>> rows = randomRows(rng, total, kDims);

  // Flat reference: the kernel over the concatenated survivor rows.
  std::vector<const double*> survivorPtrs;
  std::vector<std::size_t> survivorIndex;  // survivor j -> member index
  for (std::size_t m = 0; m < total; ++m) {
    if (health[m] == 2) continue;
    survivorPtrs.push_back(rows[m].data());
    survivorIndex.push_back(m);
  }
  PeerScratch flatScratch;
  std::vector<double> flatFlags(survivorPtrs.size());
  std::vector<double> flatScores(survivorPtrs.size());
  blackBoxCompareInto(survivorPtrs.data(), survivorPtrs.size(), kDims,
                      kThreshold, flatScratch, flatFlags.data(),
                      flatScores.data());

  // Tiered: reduce per group, merge at the root.
  const std::vector<GroupSummary> groups =
      splitIntoGroups(rows, health, sizes, nullptr);
  const std::vector<const GroupSummary*> ptrs = groupPtrs(groups);
  EXPECT_EQ(survivorPtrs.size(), totalSurvivors(ptrs.data(), ptrs.size()));

  TieredScratch scratch;
  std::vector<double> flags(total, 0.0);
  std::vector<double> scores(total, 0.0);
  const std::size_t survivors =
      mergeBlackBoxSummaries(ptrs.data(), ptrs.size(), kThreshold, scratch,
                             flags.data(), scores.data());
  ASSERT_EQ(survivorPtrs.size(), survivors);

  for (std::size_t j = 0; j < survivorIndex.size(); ++j) {
    EXPECT_EQ(flatFlags[j], flags[survivorIndex[j]]) << "member "
                                                     << survivorIndex[j];
    EXPECT_EQ(flatScores[j], scores[survivorIndex[j]]) << "member "
                                                       << survivorIndex[j];
  }
  for (std::size_t m = 0; m < total; ++m) {
    if (health[m] != 2) continue;
    EXPECT_EQ(0.0, flags[m]);
    EXPECT_EQ(0.0, scores[m]);
  }
}

TEST(Partials, BlackBoxMergeMatchesFlatAllHealthy) {
  expectBlackBoxMergeMatchesFlat({3, 3, 3}, std::vector<int>(9, 0), 11);
  expectBlackBoxMergeMatchesFlat({4, 4}, std::vector<int>(8, 0), 12);
}

TEST(Partials, BlackBoxMergeMatchesFlatWithExclusions) {
  // Unmonitorable members scattered across groups, including one group
  // losing all members (dead aggregator / dead region).
  expectBlackBoxMergeMatchesFlat({3, 3, 3}, {0, 2, 0, 1, 0, 2, 0, 0, 2}, 21);
  expectBlackBoxMergeMatchesFlat({2, 4, 3}, {2, 2, 0, 0, 1, 0, 0, 0, 0}, 22);
  expectBlackBoxMergeMatchesFlat({1, 5, 4},
                                 {2, 0, 0, 0, 0, 0, 0, 2, 0, 1}, 23);
}

void expectWhiteBoxMergeMatchesFlat(const std::vector<int>& sizes,
                                    const std::vector<int>& health,
                                    std::uint64_t seed) {
  constexpr std::size_t kDims = 6;
  constexpr double kK = 2.0;
  std::size_t total = 0;
  for (int s : sizes) total += static_cast<std::size_t>(s);
  ASSERT_EQ(total, health.size());

  Rng rng(seed);
  const std::vector<std::vector<double>> means = randomRows(rng, total, kDims);
  std::vector<std::vector<double>> stddevs(total, std::vector<double>(kDims));
  for (std::size_t m = 0; m < total; ++m) {
    for (std::size_t d = 0; d < kDims; ++d) {
      // Mix in exact zeros to exercise the sigma==0 sentinel path.
      stddevs[m][d] = rng.bernoulli(0.2) ? 0.0 : rng.uniform(0.05, 3.0);
    }
  }

  std::vector<const double*> meanPtrs, devPtrs;
  std::vector<std::size_t> survivorIndex;
  for (std::size_t m = 0; m < total; ++m) {
    if (health[m] == 2) continue;
    meanPtrs.push_back(means[m].data());
    devPtrs.push_back(stddevs[m].data());
    survivorIndex.push_back(m);
  }
  PeerScratch flatScratch;
  std::vector<double> flatFlags(meanPtrs.size());
  std::vector<double> flatScores(meanPtrs.size());
  whiteBoxCompareInto(meanPtrs.data(), devPtrs.data(), meanPtrs.size(),
                      kDims, kK, flatScratch, flatFlags.data(),
                      flatScores.data());

  const std::vector<GroupSummary> groups =
      splitIntoGroups(means, health, sizes, &stddevs);
  const std::vector<const GroupSummary*> ptrs = groupPtrs(groups);

  TieredScratch scratch;
  std::vector<double> flags(total, 0.0);
  std::vector<double> scores(total, 0.0);
  const std::size_t survivors = mergeWhiteBoxSummaries(
      ptrs.data(), ptrs.size(), kK, scratch, flags.data(), scores.data());
  ASSERT_EQ(meanPtrs.size(), survivors);

  for (std::size_t j = 0; j < survivorIndex.size(); ++j) {
    EXPECT_EQ(flatFlags[j], flags[survivorIndex[j]]);
    EXPECT_EQ(flatScores[j], scores[survivorIndex[j]]);
  }
}

TEST(Partials, WhiteBoxMergeMatchesFlat) {
  expectWhiteBoxMergeMatchesFlat({3, 3, 3}, std::vector<int>(9, 0), 31);
  expectWhiteBoxMergeMatchesFlat({4, 4}, std::vector<int>(8, 0), 32);
  expectWhiteBoxMergeMatchesFlat({1, 7, 2}, {0, 0, 2, 0, 1, 0, 2, 0, 0, 0},
                                 33);
}

// ---------------------------------------------------------------------------
// GroupSummary canonical representation.

TEST(Partials, SummaryPackUnpackRoundTrip) {
  Rng rng(404);
  const std::vector<std::vector<double>> means = randomRows(rng, 5, 4);
  std::vector<std::vector<double>> devs(5, std::vector<double>(4, 0.5));
  const std::vector<int> health = {0, 2, 0, 1, 0};
  const GroupSummary original = makeSummary(means, health, &devs);

  std::vector<double> packed;
  original.pack(packed);

  GroupSummary decoded;
  ASSERT_TRUE(decoded.unpack(packed.data(), packed.size()));
  EXPECT_EQ(original.time, decoded.time);
  EXPECT_EQ(original.members, decoded.members);
  EXPECT_EQ(original.dims, decoded.dims);
  EXPECT_EQ(original.hasDev, decoded.hasDev);
  EXPECT_EQ(original.health, decoded.health);
  EXPECT_EQ(original.survivors(), decoded.survivors());
  ASSERT_EQ(original.rows.rows(), decoded.rows.rows());
  for (std::size_t j = 0; j < original.rows.rows(); ++j) {
    for (std::size_t d = 0; d < original.dims; ++d) {
      EXPECT_EQ(original.rows.row(j)[d], decoded.rows.row(j)[d]);
    }
  }
  EXPECT_EQ(original.median.sorted, decoded.median.sorted);
  EXPECT_EQ(original.devMedian.sorted, decoded.devMedian.sorted);

  // Re-packing the decoded summary reproduces the exact buffer: the
  // representation is canonical.
  std::vector<double> repacked;
  decoded.pack(repacked);
  EXPECT_EQ(packed, repacked);
}

TEST(Partials, SummaryUnpackRejectsMalformed) {
  Rng rng(405);
  const std::vector<std::vector<double>> rows = randomRows(rng, 3, 2);
  const GroupSummary original =
      makeSummary(rows, std::vector<int>(3, 0), nullptr);
  std::vector<double> packed;
  original.pack(packed);

  GroupSummary decoded;
  EXPECT_TRUE(decoded.unpack(packed.data(), packed.size()));
  // Truncated.
  EXPECT_FALSE(decoded.unpack(packed.data(), packed.size() - 1));
  EXPECT_FALSE(decoded.unpack(packed.data(), 2));
  // Bad health code.
  std::vector<double> bad = packed;
  bad[4] = 7.0;
  EXPECT_FALSE(decoded.unpack(bad.data(), bad.size()));
  // Non-integral member count.
  bad = packed;
  bad[1] = 2.5;
  EXPECT_FALSE(decoded.unpack(bad.data(), bad.size()));
  // Trailing garbage.
  bad = packed;
  bad.push_back(1.0);
  EXPECT_FALSE(decoded.unpack(bad.data(), bad.size()));
}

}  // namespace
}  // namespace asdf::analysis
