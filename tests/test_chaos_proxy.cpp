// The deterministic chaos proxy (DESIGN.md §13): every toxic does what
// it says on the byte stream, failures it injects never crash the
// framed protocol machinery, and — the load-bearing contract — every
// chaos *decision* is a pure function of (seed, connection ordinal,
// direction, byte offset), so the same seed against the same traffic
// realizes the same event log.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "net/chaos_proxy.h"
#include "net/framed_client.h"
#include "net/frame.h"
#include "net/tcp_server.h"
#include "rpc/wire.h"

namespace asdf::net {
namespace {

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Raw byte server behind the proxy: records everything it receives
/// and (optionally) echoes it back. One worker thread per connection.
class ByteUpstream {
 public:
  explicit ByteUpstream(bool echo) : echo_(echo) {
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listenFd_, 0);
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listenFd_, 16), 0);
    socklen_t len = sizeof(addr);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    acceptThread_ = std::thread([this] { acceptLoop(); });
  }
  ~ByteUpstream() {
    ::shutdown(listenFd_, SHUT_RDWR);
    ::close(listenFd_);
    acceptThread_.join();
    for (std::thread& t : workers_) t.join();
  }

  std::uint16_t port() const { return port_; }

  std::vector<std::uint8_t> received() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return received_;
  }

 private:
  void acceptLoop() {
    for (;;) {
      const int fd = ::accept(listenFd_, nullptr, nullptr);
      if (fd < 0) return;
      workers_.emplace_back([this, fd] { serve(fd); });
    }
  }

  void serve(int fd) {
    std::uint8_t buf[4096];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n <= 0) break;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        received_.insert(received_.end(), buf, buf + n);
      }
      if (echo_) {
        ssize_t off = 0;
        while (off < n) {
          const ssize_t w = ::send(fd, buf + off,
                                   static_cast<std::size_t>(n - off),
                                   MSG_NOSIGNAL);
          if (w <= 0) break;
          off += w;
        }
      }
    }
    ::close(fd);
  }

  bool echo_;
  int listenFd_ = -1;
  std::uint16_t port_ = 0;
  std::thread acceptThread_;
  std::vector<std::thread> workers_;  // only accepts mutate; joined after
  mutable std::mutex mutex_;
  std::vector<std::uint8_t> received_;
};

/// Proxy + its EventLoop on a background thread. The proxy is built
/// before the loop starts and torn down after it stops, per the
/// ChaosProxy threading contract.
class ChaosHarness {
 public:
  explicit ChaosHarness(ChaosOptions opts) : proxy_(loop_, std::move(opts)) {
    thread_ = std::thread([this] { loop_.run(); });
  }
  ~ChaosHarness() {
    loop_.stop();
    thread_.join();
  }
  ChaosProxy& proxy() { return proxy_; }

 private:
  EventLoop loop_;
  ChaosProxy proxy_;
  std::thread thread_;
};

/// Blocking raw-socket client poking the proxy from the test thread.
class RawClient {
 public:
  explicit RawClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// True when every byte went out (the peer may reset mid-send).
  bool sendAll(const std::vector<std::uint8_t>& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads until `n` bytes arrived or `timeoutSeconds` passed.
  std::vector<std::uint8_t> readN(std::size_t n, double timeoutSeconds) {
    std::vector<std::uint8_t> out;
    const double deadline = nowSeconds() + timeoutSeconds;
    std::uint8_t buf[4096];
    while (out.size() < n) {
      const double remaining = deadline - nowSeconds();
      if (remaining <= 0.0) break;
      pollfd p{fd_, POLLIN, 0};
      const int rc = ::poll(&p, 1, static_cast<int>(remaining * 1000) + 1);
      if (rc <= 0) continue;
      const ssize_t r =
          ::read(fd_, buf, std::min(sizeof(buf), n - out.size()));
      if (r <= 0) break;
      out.insert(out.end(), buf, buf + r);
    }
    return out;
  }

  /// True once the peer closed or reset the connection.
  bool waitForClose(double timeoutSeconds) {
    const double deadline = nowSeconds() + timeoutSeconds;
    std::uint8_t buf[256];
    for (;;) {
      const double remaining = deadline - nowSeconds();
      if (remaining <= 0.0) return false;
      pollfd p{fd_, POLLIN, 0};
      if (::poll(&p, 1, static_cast<int>(remaining * 1000) + 1) <= 0) {
        continue;
      }
      const ssize_t r = ::read(fd_, buf, sizeof(buf));
      if (r == 0) return true;                   // orderly close
      if (r < 0) return errno == ECONNRESET;     // RST
    }
  }

 private:
  int fd_ = -1;
};

std::vector<std::uint8_t> patternBytes(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>((i * 131 + 7) % 251);
  }
  return out;
}

/// The realized interleaving of up- and down-direction events depends
/// on socket scheduling; the *decisions* don't. Canonical order —
/// (conn, dir, offset, kind) — is what the determinism contract
/// promises to reproduce.
std::vector<ChaosEvent> canonical(std::vector<ChaosEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return std::make_tuple(a.conn, a.dir, a.offset,
                                            static_cast<int>(a.kind)) <
                            std::make_tuple(b.conn, b.dir, b.offset,
                                            static_cast<int>(b.kind));
                   });
  return events;
}

TEST(ChaosProxy, IdentityPhaseForwardsBytesUntouched) {
  ByteUpstream upstream(/*echo=*/true);
  ChaosOptions opts;
  opts.upstreamPort = upstream.port();
  ChaosHarness chaos(opts);

  RawClient client(chaos.proxy().port());
  const std::vector<std::uint8_t> data = patternBytes(4096);
  ASSERT_TRUE(client.sendAll(data));
  EXPECT_EQ(client.readN(4096, 5.0), data);

  EXPECT_EQ(chaos.proxy().corruptedBytes(), 0);
  EXPECT_EQ(chaos.proxy().resets(), 0);
  EXPECT_EQ(chaos.proxy().accepted(), 1);
  // The client can see the echoed bytes before the loop thread bumps
  // the relayed counters; poll instead of asserting instantly.
  const double deadline = nowSeconds() + 5.0;
  while ((chaos.proxy().relayedBytes(0) < 4096u ||
          chaos.proxy().relayedBytes(1) < 4096u) &&
         nowSeconds() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(chaos.proxy().relayedBytes(0), 4096u);
  EXPECT_GE(chaos.proxy().relayedBytes(1), 4096u);

  const std::vector<ChaosEvent> events = chaos.proxy().events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].kind, ChaosEvent::Kind::kPhaseEnter);
  const bool sawAccept =
      std::any_of(events.begin(), events.end(), [](const ChaosEvent& ev) {
        return ev.kind == ChaosEvent::Kind::kAccept && ev.conn == 1;
      });
  EXPECT_TRUE(sawAccept);
}

// The tentpole determinism contract: same seed + same per-connection
// byte streams -> same realized event log (canonicalized across the
// up/down scheduling race). A different seed realizes a different log.
TEST(ChaosProxy, SameSeedSameTrafficReproducesTheEventLog) {
  auto runOnce = [](std::uint64_t seed) {
    ByteUpstream upstream(/*echo=*/true);
    ChaosToxics toxics;
    toxics.corruptPerKb = 8.0;
    ChaosPhase phase;
    phase.up = toxics;
    phase.down = toxics;
    ChaosOptions opts;
    opts.upstreamPort = upstream.port();
    opts.seed = seed;
    opts.phases = {phase};

    ChaosHarness chaos(opts);
    RawClient client(chaos.proxy().port());
    const std::vector<std::uint8_t> data = patternBytes(2048);
    EXPECT_TRUE(client.sendAll(data));
    EXPECT_EQ(client.readN(2048, 5.0).size(), 2048u);
    return canonical(chaos.proxy().events());
  };

  const std::vector<ChaosEvent> first = runOnce(99);
  const std::vector<ChaosEvent> second = runOnce(99);
  EXPECT_EQ(first, second);

  long corrupts = 0;
  for (const ChaosEvent& ev : first) {
    if (ev.kind == ChaosEvent::Kind::kCorrupt) ++corrupts;
  }
  EXPECT_GT(corrupts, 0);  // ~32 expected at 8/KiB over 2 x 2 KiB

  EXPECT_NE(runOnce(100), first);
}

TEST(ChaosProxy, DescribeScheduleIsAPureFunctionOfOptions) {
  ChaosToxics toxics;
  toxics.corruptPerKb = 4.0;
  toxics.resetAfterBytes = 9000;
  ChaosPhase phase;
  phase.up = toxics;
  ChaosPhase dark = phase;
  dark.startSeconds = 2.0;
  dark.blackhole = true;
  ChaosOptions opts;
  opts.upstreamPort = 1;  // never dialed: schedule needs no traffic
  opts.seed = 1234;
  opts.phases = {phase, dark};

  EventLoop loopA, loopB;
  ChaosProxy a(loopA, opts);
  ChaosProxy b(loopB, opts);
  const std::string schedule = a.describeSchedule(3, 4096);
  EXPECT_EQ(schedule, b.describeSchedule(3, 4096));
  EXPECT_NE(schedule.find("blackhole"), std::string::npos);

  opts.seed = 1235;
  EventLoop loopC;
  ChaosProxy c(loopC, opts);
  EXPECT_NE(schedule, c.describeSchedule(3, 4096));
}

// The corruption toxic flips exactly the scheduled bytes — one bit
// each, at the offsets the event log claims, nothing else.
TEST(ChaosProxy, CorruptionFlipsExactlyTheScheduledBytes) {
  ByteUpstream sink(/*echo=*/false);
  ChaosPhase phase;
  phase.up.corruptPerKb = 8.0;
  ChaosOptions opts;
  opts.upstreamPort = sink.port();
  opts.seed = 7;
  opts.phases = {phase};
  ChaosHarness chaos(opts);

  RawClient client(chaos.proxy().port());
  const std::vector<std::uint8_t> data = patternBytes(4096);
  ASSERT_TRUE(client.sendAll(data));

  const double deadline = nowSeconds() + 5.0;
  while (sink.received().size() < data.size() && nowSeconds() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::vector<std::uint8_t> got = sink.received();
  ASSERT_EQ(got.size(), data.size());

  std::set<std::uint64_t> corruptOffsets;
  for (const ChaosEvent& ev : chaos.proxy().events()) {
    if (ev.kind == ChaosEvent::Kind::kCorrupt) {
      EXPECT_EQ(ev.dir, 0);  // only the up direction corrupts here
      corruptOffsets.insert(ev.offset);
    }
  }
  ASSERT_FALSE(corruptOffsets.empty());
  EXPECT_EQ(chaos.proxy().corruptedBytes(),
            static_cast<long>(corruptOffsets.size()));

  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint8_t diff = got[i] ^ data[i];
    if (corruptOffsets.count(i) != 0) {
      EXPECT_EQ(__builtin_popcount(diff), 1) << "offset " << i;
    } else {
      EXPECT_EQ(diff, 0) << "offset " << i;
    }
  }
}

TEST(ChaosProxy, ResetFiresAtTheConfiguredOffset) {
  ByteUpstream sink(/*echo=*/false);
  ChaosPhase phase;
  phase.up.resetAfterBytes = 1000;
  ChaosOptions opts;
  opts.upstreamPort = sink.port();
  opts.phases = {phase};
  ChaosHarness chaos(opts);

  RawClient client(chaos.proxy().port());
  client.sendAll(patternBytes(4096));  // may fail mid-send: RST incoming
  EXPECT_TRUE(client.waitForClose(5.0));

  const double deadline = nowSeconds() + 5.0;
  while (chaos.proxy().resets() < 1 && nowSeconds() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(chaos.proxy().resets(), 1);

  bool sawReset = false;
  for (const ChaosEvent& ev : chaos.proxy().events()) {
    if (ev.kind == ChaosEvent::Kind::kReset) {
      EXPECT_EQ(ev.conn, 1u);
      EXPECT_EQ(ev.dir, 0);
      EXPECT_EQ(ev.offset, 1000u);
      sawReset = true;
    }
  }
  EXPECT_TRUE(sawReset);
  // The client-side RST and the sink-side delivery ride different
  // sockets: wait for the sink's reader to drain its FIN'd bytes.
  const double sinkDeadline = nowSeconds() + 5.0;
  while (sink.received().size() < 1000u && nowSeconds() < sinkDeadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(sink.received().size(), 1000u);  // truncated at the boundary
}

TEST(ChaosProxy, LatencyToxicDelaysDelivery) {
  ByteUpstream upstream(/*echo=*/true);
  ChaosPhase phase;
  phase.up.latencySeconds = 0.12;
  phase.down.latencySeconds = 0.12;
  ChaosOptions opts;
  opts.upstreamPort = upstream.port();
  opts.phases = {phase};
  ChaosHarness chaos(opts);

  RawClient client(chaos.proxy().port());
  const std::vector<std::uint8_t> data = patternBytes(16);
  const double start = nowSeconds();
  ASSERT_TRUE(client.sendAll(data));
  EXPECT_EQ(client.readN(16, 5.0), data);
  EXPECT_GE(nowSeconds() - start, 0.2);  // ~0.24 s of injected latency
}

TEST(ChaosProxy, RateThrottlePacesDelivery) {
  ByteUpstream upstream(/*echo=*/true);
  ChaosPhase phase;
  phase.up.rateBytesPerSec = 2000.0;
  phase.down.rateBytesPerSec = 2000.0;
  ChaosOptions opts;
  opts.upstreamPort = upstream.port();
  opts.phases = {phase};
  ChaosHarness chaos(opts);

  RawClient client(chaos.proxy().port());
  const std::vector<std::uint8_t> data = patternBytes(2000);
  const double start = nowSeconds();
  ASSERT_TRUE(client.sendAll(data));
  // 2000 bytes at 2000 B/s with a 1500-byte burst allowance: the tail
  // 500 bytes wait ~0.25 s in each direction.
  EXPECT_EQ(client.readN(2000, 10.0), data);
  EXPECT_GE(nowSeconds() - start, 0.2);
}

TEST(ChaosProxy, PartitionWindowStallsBytesThenDeliversThem) {
  ByteUpstream upstream(/*echo=*/true);
  ChaosPhase clear;
  ChaosPhase dark;
  dark.startSeconds = 0.3;
  dark.blackhole = true;
  ChaosPhase healed;
  healed.startSeconds = 0.9;
  ChaosOptions opts;
  opts.upstreamPort = upstream.port();
  opts.phases = {clear, dark, healed};

  const double start = nowSeconds();
  ChaosHarness chaos(opts);
  RawClient client(chaos.proxy().port());

  // Phase 0: traffic flows.
  const std::vector<std::uint8_t> hello = patternBytes(8);
  ASSERT_TRUE(client.sendAll(hello));
  ASSERT_EQ(client.readN(8, 5.0), hello);

  // Deep inside the partition window nothing moves...
  std::this_thread::sleep_for(
      std::chrono::duration<double>(start + 0.45 - nowSeconds()));
  const std::vector<std::uint8_t> ping = patternBytes(4);
  ASSERT_TRUE(client.sendAll(ping));
  EXPECT_TRUE(client.readN(4, 0.2).empty());

  // ...and the stalled bytes arrive once the window ends.
  EXPECT_EQ(client.readN(4, 5.0), ping);
  EXPECT_GE(nowSeconds() - start, 0.85);

  bool sawStart = false, sawEnd = false;
  for (const ChaosEvent& ev : chaos.proxy().events()) {
    if (ev.kind == ChaosEvent::Kind::kPartitionStart) sawStart = true;
    if (ev.kind == ChaosEvent::Kind::kPartitionEnd) sawEnd = true;
  }
  EXPECT_TRUE(sawStart);
  EXPECT_TRUE(sawEnd);
}

// Corruption and slicing against the real framed protocol: corrupted
// frames fail CRC and drop connections, sliced responses exercise the
// decoder's reassembly — and nothing ever crashes; enough clean calls
// still get through.
TEST(ChaosProxy, FramedProtocolSurvivesCorruptionAndSlicing) {
  EventLoop serverLoop;
  TcpServer server(serverLoop, 0);
  server.onFrame([](TcpServer::Connection& conn, const Frame& frame) {
    rpc::Encoder out;
    out.putU32(0);
    conn.send(frame.type, out);
  });
  std::thread serverThread([&] { serverLoop.run(); });

  {
    ChaosPhase phase;
    phase.up.corruptPerKb = 4.0;
    phase.down.corruptPerKb = 4.0;
    phase.down.sliceBytes = 7;
    ChaosOptions opts;
    opts.upstreamPort = server.port();
    opts.seed = 2026;
    opts.phases = {phase};
    ChaosHarness chaos(opts);

    FramedClient::Options copts;
    copts.port = chaos.proxy().port();
    copts.timeoutSeconds = 1.0;
    copts.backoffBaseSeconds = 0.005;
    copts.backoffMaxSeconds = 0.05;
    FramedClient client(copts);

    int ok = 0;
    const rpc::Encoder empty;
    for (int i = 0; i < 80; ++i) {
      if (!client.connected() && !client.connect()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }
      Frame reply;
      if (client.call(MsgType::kStats, empty, MsgType::kStats, reply)) ++ok;
    }
    EXPECT_GT(ok, 0);
    EXPECT_GT(chaos.proxy().corruptedBytes(), 0);
  }

  serverLoop.stop();
  serverThread.join();
}

}  // namespace
}  // namespace asdf::net
