#include "hadooplog/parser.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "hadooplog/log_buffer.h"
#include "hadooplog/states.h"
#include "hadooplog/writer.h"

namespace asdf::hadooplog {
namespace {

// Finds the sample for a given second; fails the test when absent.
const StateSample& sampleAt(const std::vector<StateSample>& samples,
                            long second) {
  for (const auto& s : samples) {
    if (s.second == second) return s;
  }
  ADD_FAILURE() << "no sample for second " << second;
  static StateSample empty;
  return empty;
}

double tt(const StateSample& s, TtState state) {
  return s.counts[static_cast<std::size_t>(state)];
}

double dn(const StateSample& s, DnState state) {
  return s.counts[static_cast<std::size_t>(state)];
}

TEST(StateCounter, CountsOverlappingInstances) {
  StateCounter c(1);
  c.entrance(0, 0);
  c.entrance(1, 0);
  c.exit(3, 0);
  const auto samples = c.drain(5);
  ASSERT_EQ(samples.size(), 5u);
  EXPECT_DOUBLE_EQ(samples[0].counts[0], 1.0);  // one open
  EXPECT_DOUBLE_EQ(samples[1].counts[0], 2.0);  // both open
  EXPECT_DOUBLE_EQ(samples[2].counts[0], 2.0);
  // The instance exiting at second 3 was still executing during it.
  EXPECT_DOUBLE_EQ(samples[3].counts[0], 2.0);
  EXPECT_DOUBLE_EQ(samples[4].counts[0], 1.0);
}

TEST(StateCounter, ShortLivedStateStillCounted) {
  // Entrance and exit within the same second must count (the paper's
  // "taking care to include counts of short-lived states").
  StateCounter c(1);
  c.entrance(5, 0);
  c.exit(5, 0);
  const auto samples = c.drain(6);
  EXPECT_DOUBLE_EQ(sampleAt(samples, 5).counts[0], 1.0);
}

TEST(StateCounter, InstantEventsCount) {
  StateCounter c(1);
  c.instant(2, 0);
  c.instant(2, 0);
  c.instant(2, 0);
  const auto samples = c.drain(3);
  EXPECT_DOUBLE_EQ(sampleAt(samples, 2).counts[0], 3.0);
}

TEST(StateCounter, ExitWithoutEntranceIsTolerated) {
  StateCounter c(1);
  c.exit(1, 0);
  c.entrance(2, 0);
  const auto samples = c.drain(3);
  EXPECT_DOUBLE_EQ(sampleAt(samples, 1).counts[0], 0.0);
  EXPECT_DOUBLE_EQ(sampleAt(samples, 2).counts[0], 1.0);
  EXPECT_GE(c.openCount(0), 0.0);
}

TEST(StateCounter, StartAtYieldsZeroRowsForQuietStream) {
  StateCounter c(2);
  c.startAt(10);
  const auto samples = c.drain(13);
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].second, 10);
  EXPECT_DOUBLE_EQ(samples[0].counts[0], 0.0);
  EXPECT_DOUBLE_EQ(samples[2].counts[1], 0.0);
}

TEST(StateCounter, LateLinesFoldIntoCurrentBucket) {
  StateCounter c(1);
  c.entrance(5, 0);
  c.entrance(3, 0);  // out of order: folded into second >= 5
  const auto samples = c.drain(6);
  EXPECT_DOUBLE_EQ(sampleAt(samples, 5).counts[0], 2.0);
}

TEST(TtParser, Figure5Scenario) {
  // The exact log lines from the paper's Figure 5: a map launch at
  // 14:23:15 and a reduce launch at 14:23:16 produce state vectors
  // (MapTask=1, ReduceTask=0) then (MapTask=1, ReduceTask=1).
  TtLogParser parser;
  parser.consume({
      "2008-04-15 14:23:15,324 INFO org.apache.hadoop.mapred.TaskTracker: "
      "LaunchTaskAction: task_0001_m_000096_0",
      "2008-04-15 14:23:16,375 INFO org.apache.hadoop.mapred.TaskTracker: "
      "LaunchTaskAction: task_0001_r_000003_0",
  });
  const long base = 23 * 60 + 15;  // seconds after the 14:00 epoch
  const auto samples = parser.poll(base + 10);
  const auto& first = sampleAt(samples, base);
  EXPECT_DOUBLE_EQ(tt(first, TtState::kMapTask), 1.0);
  EXPECT_DOUBLE_EQ(tt(first, TtState::kReduceTask), 0.0);
  const auto& second = sampleAt(samples, base + 1);
  EXPECT_DOUBLE_EQ(tt(second, TtState::kMapTask), 1.0);
  EXPECT_DOUBLE_EQ(tt(second, TtState::kReduceTask), 1.0);
}

class TtParserFixture : public ::testing::Test {
 protected:
  TtParserFixture() : writer_(&buf_) { parser_.startAt(0); }

  void feedAndPoll(SimTime watermark) {
    parser_.consume(buf_.linesFrom(cursor_));
    cursor_ = buf_.lineCount();
    auto fresh = parser_.poll(watermark);
    samples_.insert(samples_.end(), fresh.begin(), fresh.end());
  }

  LogBuffer buf_;
  TtLogWriter writer_;
  TtLogParser parser_;
  std::vector<StateSample> samples_;
  std::size_t cursor_ = 0;
};

TEST_F(TtParserFixture, MapLifecycle) {
  writer_.launchTask(10.0, "task_0001_m_000001_0");
  writer_.taskDone(25.0, "task_0001_m_000001_0");
  feedAndPoll(30.0);
  EXPECT_DOUBLE_EQ(tt(sampleAt(samples_, 9), TtState::kMapTask), 0.0);
  EXPECT_DOUBLE_EQ(tt(sampleAt(samples_, 10), TtState::kMapTask), 1.0);
  EXPECT_DOUBLE_EQ(tt(sampleAt(samples_, 24), TtState::kMapTask), 1.0);
  // The exit second itself still counts the task as active-at-start.
  EXPECT_DOUBLE_EQ(tt(sampleAt(samples_, 25), TtState::kMapTask), 1.0);
  EXPECT_DOUBLE_EQ(tt(sampleAt(samples_, 26), TtState::kMapTask), 0.0);
  EXPECT_EQ(parser_.openTaskCount(), 0u);
}

TEST_F(TtParserFixture, ReducePhaseTransitions) {
  writer_.launchTask(5.0, "task_0001_r_000001_0");
  writer_.reduceProgress(5.0, "task_0001_r_000001_0", 0.0, "copy", 0, 4);
  writer_.reduceProgress(60.0, "task_0001_r_000001_0", 0.4, "sort", 4, 4);
  writer_.reduceProgress(80.0, "task_0001_r_000001_0", 0.7, "reduce", 4, 4);
  writer_.taskDone(100.0, "task_0001_r_000001_0");
  feedAndPoll(110.0);

  const auto& copying = sampleAt(samples_, 30);
  EXPECT_DOUBLE_EQ(tt(copying, TtState::kReduceTask), 1.0);
  EXPECT_DOUBLE_EQ(tt(copying, TtState::kReduceCopy), 1.0);
  EXPECT_DOUBLE_EQ(tt(copying, TtState::kReduceSort), 0.0);

  const auto& sorting = sampleAt(samples_, 70);
  EXPECT_DOUBLE_EQ(tt(sorting, TtState::kReduceCopy), 0.0);
  EXPECT_DOUBLE_EQ(tt(sorting, TtState::kReduceSort), 1.0);

  const auto& reducing = sampleAt(samples_, 90);
  EXPECT_DOUBLE_EQ(tt(reducing, TtState::kReduceSort), 0.0);
  EXPECT_DOUBLE_EQ(tt(reducing, TtState::kReduceReduce), 1.0);

  const auto& after = sampleAt(samples_, 105);
  EXPECT_DOUBLE_EQ(tt(after, TtState::kReduceTask), 0.0);
  EXPECT_DOUBLE_EQ(tt(after, TtState::kReduceReduce), 0.0);
}

TEST_F(TtParserFixture, RepeatedProgressLinesDoNotDoubleCount) {
  writer_.launchTask(5.0, "task_0001_r_000001_0");
  for (int t = 5; t < 50; t += 5) {
    writer_.reduceProgress(t, "task_0001_r_000001_0", 0.1, "copy", 1, 4);
  }
  feedAndPoll(60.0);
  EXPECT_DOUBLE_EQ(tt(sampleAt(samples_, 30), TtState::kReduceCopy), 1.0);
}

TEST_F(TtParserFixture, KillClosesTaskAndPhase) {
  writer_.launchTask(5.0, "task_0001_r_000001_0");
  writer_.reduceProgress(5.0, "task_0001_r_000001_0", 0.0, "copy", 0, 4);
  writer_.killTask(20.0, "task_0001_r_000001_0");
  feedAndPoll(30.0);
  EXPECT_DOUBLE_EQ(tt(sampleAt(samples_, 25), TtState::kReduceTask), 0.0);
  EXPECT_DOUBLE_EQ(tt(sampleAt(samples_, 25), TtState::kReduceCopy), 0.0);
  EXPECT_EQ(parser_.openTaskCount(), 0u);
}

TEST_F(TtParserFixture, FailClosesTask) {
  writer_.launchTask(5.0, "task_0001_m_000001_0");
  writer_.taskFailed(15.0, "task_0001_m_000001_0", "exception");
  feedAndPoll(20.0);
  EXPECT_DOUBLE_EQ(tt(sampleAt(samples_, 17), TtState::kMapTask), 0.0);
}

TEST_F(TtParserFixture, ProgressForUnknownTaskSynthesizesEntrance) {
  // A monitor attached mid-run sees progress lines for tasks whose
  // launch it missed.
  writer_.reduceProgress(8.0, "task_0002_r_000001_0", 0.5, "copy", 2, 4);
  feedAndPoll(15.0);
  EXPECT_DOUBLE_EQ(tt(sampleAt(samples_, 8), TtState::kReduceTask), 1.0);
  EXPECT_DOUBLE_EQ(tt(sampleAt(samples_, 8), TtState::kReduceCopy), 1.0);
}

TEST_F(TtParserFixture, ConcurrentTasksStack) {
  writer_.launchTask(5.0, "task_0001_m_000001_0");
  writer_.launchTask(6.0, "task_0001_m_000002_0");
  writer_.launchTask(7.0, "task_0001_m_000003_0");
  writer_.taskDone(12.0, "task_0001_m_000002_0");
  feedAndPoll(20.0);
  EXPECT_DOUBLE_EQ(tt(sampleAt(samples_, 8), TtState::kMapTask), 3.0);
  EXPECT_DOUBLE_EQ(tt(sampleAt(samples_, 15), TtState::kMapTask), 2.0);
}

TEST_F(TtParserFixture, GarbageLinesIgnoredNotFatal) {
  writer_.launchTask(5.0, "task_0001_m_000001_0");
  buf_.append("complete garbage");
  buf_.append("2008-04-15 14:00:06,000 INFO something.Else: irrelevant");
  feedAndPoll(10.0);
  EXPECT_GE(parser_.ignoredLineCount(), 1u);
  EXPECT_DOUBLE_EQ(tt(sampleAt(samples_, 6), TtState::kMapTask), 1.0);
}

TEST_F(TtParserFixture, LazyPollingDelaysUnfinalizedSeconds) {
  writer_.launchTask(5.0, "task_0001_m_000001_0");
  feedAndPoll(5.5);  // watermark barely past the event
  // Second 5 cannot be final yet (no later line, grace not elapsed).
  for (const auto& s : samples_) EXPECT_LT(s.second, 5);
  feedAndPoll(8.0);  // grace elapsed -> released
  EXPECT_DOUBLE_EQ(tt(sampleAt(samples_, 5), TtState::kMapTask), 1.0);
}

TEST(DnParser, BlockReadLifecycle) {
  LogBuffer buf;
  DnLogWriter writer(&buf);
  DnLogParser parser;
  writer.servingBlock(3.0, 77, "10.250.0.4");
  writer.servedBlock(8.0, 77, "10.250.0.4");
  parser.consume(buf.linesFrom(0));
  const auto samples = parser.poll(12.0);
  EXPECT_DOUBLE_EQ(dn(sampleAt(samples, 5), DnState::kReadBlock), 1.0);
  EXPECT_DOUBLE_EQ(dn(sampleAt(samples, 9), DnState::kReadBlock), 0.0);
  EXPECT_EQ(parser.openTransferCount(), 0u);
}

TEST(DnParser, ConcurrentReadsOfSameBlockToDifferentClients) {
  LogBuffer buf;
  DnLogWriter writer(&buf);
  DnLogParser parser;
  writer.servingBlock(1.0, 5, "10.250.0.2");
  writer.servingBlock(1.0, 5, "10.250.0.3");
  writer.servedBlock(4.0, 5, "10.250.0.2");
  parser.consume(buf.linesFrom(0));
  const auto samples = parser.poll(8.0);
  EXPECT_DOUBLE_EQ(dn(sampleAt(samples, 2), DnState::kReadBlock), 2.0);
  EXPECT_DOUBLE_EQ(dn(sampleAt(samples, 5), DnState::kReadBlock), 1.0);
}

TEST(DnParser, WriteLifecycleAndDeleteInstant) {
  LogBuffer buf;
  DnLogWriter writer(&buf);
  DnLogParser parser;
  writer.receivingBlock(2.0, 9, "10.250.0.2", "10.250.0.3");
  writer.receivedBlock(6.0, 9, 1.0e7, "10.250.0.2");
  writer.deletingBlock(7.0, 9);
  parser.consume(buf.linesFrom(0));
  const auto samples = parser.poll(10.0);
  EXPECT_DOUBLE_EQ(dn(sampleAt(samples, 4), DnState::kWriteBlock), 1.0);
  EXPECT_DOUBLE_EQ(dn(sampleAt(samples, 7), DnState::kWriteBlock), 0.0);
  EXPECT_DOUBLE_EQ(dn(sampleAt(samples, 7), DnState::kDeleteBlock), 1.0);
  EXPECT_DOUBLE_EQ(dn(sampleAt(samples, 8), DnState::kDeleteBlock), 0.0);
}

// Property: for random event sequences, per-second counts are never
// negative and never exceed the number of open + entered instances.
class ParserProperty : public ::testing::TestWithParam<int> {};

TEST_P(ParserProperty, CountsStayWithinBounds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  LogBuffer buf;
  TtLogWriter writer(&buf);
  TtLogParser parser;
  parser.startAt(0);

  std::vector<std::string> open;
  int launched = 0;
  double t = 1.0;
  for (int i = 0; i < 300; ++i) {
    t += rng.uniform(0.0, 2.0);
    if (open.empty() || rng.bernoulli(0.55)) {
      const std::string id =
          makeTaskAttemptId(1, rng.bernoulli(0.5), launched++, 0);
      writer.launchTask(t, id);
      open.push_back(id);
    } else {
      const auto idx = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<long>(open.size()) - 1));
      writer.taskDone(t, open[idx]);
      open.erase(open.begin() + static_cast<long>(idx));
    }
  }
  parser.consume(buf.linesFrom(0));
  const auto samples = parser.poll(t + 10.0);
  ASSERT_FALSE(samples.empty());
  for (const auto& s : samples) {
    for (double c : s.counts) {
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, static_cast<double>(launched));
    }
  }
  EXPECT_EQ(parser.openTaskCount(), open.size());
}

INSTANTIATE_TEST_SUITE_P(RandomRuns, ParserProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace asdf::hadooplog
