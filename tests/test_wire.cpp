#include "rpc/wire.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "rpc/transport.h"

namespace asdf::rpc {
namespace {

TEST(Wire, U32RoundTrip) {
  Encoder enc;
  enc.putU32(0);
  enc.putU32(1);
  enc.putU32(0xFFFFFFFFu);
  enc.putU32(0xDEADBEEFu);
  EXPECT_EQ(enc.size(), 16u);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.getU32(), 0u);
  EXPECT_EQ(dec.getU32(), 1u);
  EXPECT_EQ(dec.getU32(), 0xFFFFFFFFu);
  EXPECT_EQ(dec.getU32(), 0xDEADBEEFu);
  EXPECT_TRUE(dec.exhausted());
}

TEST(Wire, I64RoundTrip) {
  Encoder enc;
  enc.putI64(0);
  enc.putI64(-1);
  enc.putI64(1234567890123LL);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.getI64(), 0);
  EXPECT_EQ(dec.getI64(), -1);
  EXPECT_EQ(dec.getI64(), 1234567890123LL);
}

TEST(Wire, DoubleRoundTripExact) {
  Encoder enc;
  for (double v : {0.0, -0.0, 1.5, -3.14159, 1e300, 1e-300}) {
    enc.putDouble(v);
  }
  Decoder dec(enc.bytes());
  for (double v : {0.0, -0.0, 1.5, -3.14159, 1e300, 1e-300}) {
    EXPECT_EQ(dec.getDouble(), v);
  }
}

TEST(Wire, StringRoundTripWithPadding) {
  Encoder enc;
  enc.putString("");
  enc.putString("a");
  enc.putString("abcd");
  enc.putString("hello world");
  EXPECT_EQ(enc.size() % 4, 0u);  // XDR alignment
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.getString(), "");
  EXPECT_EQ(dec.getString(), "a");
  EXPECT_EQ(dec.getString(), "abcd");
  EXPECT_EQ(dec.getString(), "hello world");
  EXPECT_TRUE(dec.exhausted());
}

TEST(Wire, VectorRoundTrip) {
  Encoder enc;
  enc.putDoubleVector({});
  enc.putDoubleVector({1.0, 2.5, -3.0});
  Decoder dec(enc.bytes());
  EXPECT_TRUE(dec.getDoubleVector().empty());
  const auto v = dec.getDoubleVector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[1], 2.5);
}

TEST(Wire, TruncatedMessageThrows) {
  Encoder enc;
  enc.putDouble(42.0);
  std::vector<std::uint8_t> cut(enc.bytes().begin(), enc.bytes().end() - 1);
  Decoder dec(cut);
  EXPECT_THROW(dec.getDouble(), RpcError);
}

TEST(Wire, MixedSequenceRoundTrip) {
  Encoder enc;
  enc.putString("sadc");
  enc.putU32(3);
  enc.putDoubleVector({9.0, 8.0});
  enc.putI64(-77);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.getString(), "sadc");
  EXPECT_EQ(dec.getU32(), 3u);
  EXPECT_EQ(dec.getDoubleVector().size(), 2u);
  EXPECT_EQ(dec.getI64(), -77);
  EXPECT_TRUE(dec.exhausted());
}

class WireProperty : public ::testing::TestWithParam<int> {};

TEST_P(WireProperty, RandomRoundTrips) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 19 + 5);
  for (int iter = 0; iter < 50; ++iter) {
    Encoder enc;
    std::vector<double> doubles;
    std::vector<std::string> strings;
    const long n = rng.uniformInt(0, 20);
    for (long i = 0; i < n; ++i) {
      doubles.push_back(rng.gaussian(0.0, 1e6));
      std::string s;
      const long len = rng.uniformInt(0, 30);
      for (long j = 0; j < len; ++j) {
        s += static_cast<char>(rng.uniformInt(32, 126));
      }
      strings.push_back(s);
      enc.putDouble(doubles.back());
      enc.putString(strings.back());
    }
    Decoder dec(enc.bytes());
    for (long i = 0; i < n; ++i) {
      EXPECT_EQ(dec.getDouble(), doubles[static_cast<std::size_t>(i)]);
      EXPECT_EQ(dec.getString(), strings[static_cast<std::size_t>(i)]);
    }
    EXPECT_TRUE(dec.exhausted());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomRuns, WireProperty, ::testing::Range(0, 6));

TEST(Transport, ChannelAccounting) {
  TransportRegistry registry;
  RpcChannelStats& ch = registry.channel("sadc-tcp");
  ch.recordConnect();
  ch.recordConnect();
  ch.recordCall(48, 1000);
  ch.recordCall(48, 1200);
  EXPECT_EQ(ch.connects(), 2);
  EXPECT_EQ(ch.calls(), 2);
  EXPECT_DOUBLE_EQ(ch.staticOverheadBytes(), 2 * 2028.0);
  EXPECT_DOUBLE_EQ(ch.totalCallBytes(), 48 + 1000 + 48 + 1200 + 4 * 78.0);
  EXPECT_DOUBLE_EQ(ch.bytesPerCall(), ch.totalCallBytes() / 2.0);
}

TEST(Transport, RegistryKeysChannelsByName) {
  TransportRegistry registry;
  registry.channel("a").recordConnect();
  registry.channel("b").recordConnect();
  registry.channel("a").recordConnect();
  EXPECT_EQ(registry.channel("a").connects(), 2);
  EXPECT_EQ(registry.channel("b").connects(), 1);
  EXPECT_EQ(registry.channels().size(), 2u);
}

TEST(Transport, EmptyChannelSafeStats) {
  TransportRegistry registry;
  const RpcChannelStats& ch = registry.channel("idle");
  EXPECT_DOUBLE_EQ(ch.bytesPerCall(), 0.0);
  EXPECT_DOUBLE_EQ(ch.totalCallBytes(), 0.0);
}

}  // namespace
}  // namespace asdf::rpc
