// Coverage for the remaining common utilities: CSV writer, framework
// logging, module registry, and the real-time driver.
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/cputime.h"
#include "common/error.h"
#include "common/logging.h"
#include "core/realtime.h"
#include "core/registry.h"
#include "sim/engine.h"

namespace asdf {
namespace {

std::vector<std::string> readLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = "/tmp/asdf_csv_test.csv";
  std::remove(path.c_str());
  {
    CsvWriter csv(path);
    csv.header({"a", "b"});
    csv.row({"1", "x"});
    csv.rowNumeric({2.5, 3.0});
    csv.flush();
  }
  const auto lines = readLines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a,b");
  EXPECT_EQ(lines[1], "1,x");
  EXPECT_EQ(lines[2], "2.5,3");
}

TEST(CsvWriter, EscapesCommasAndQuotes) {
  const std::string path = "/tmp/asdf_csv_escape.csv";
  std::remove(path.c_str());
  {
    CsvWriter csv(path);
    csv.row({"plain", "with,comma", "with\"quote"});
    csv.flush();
  }
  const auto lines = readLines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "plain,\"with,comma\",\"with\"\"quote\"");
}

TEST(CsvWriter, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent/dir/file.csv"), std::runtime_error);
}

TEST(Logging, LevelGatekeeping) {
  const LogLevel original = logLevel();
  setLogLevel(LogLevel::kError);
  EXPECT_EQ(logLevel(), LogLevel::kError);
  // These must not crash and must be suppressed (visually verified by
  // quiet test output).
  logDebug("suppressed");
  logInfo("suppressed");
  logWarn("suppressed");
  setLogLevel(original);
}

TEST(CpuMeter, AccumulatesAcrossScopes) {
  CpuMeter meter;
  for (int i = 0; i < 3; ++i) {
    CpuMeter::Scope scope(meter);
    volatile double sink = 0.0;
    for (int j = 0; j < 100000; ++j) sink = sink + j;
  }
  EXPECT_GT(meter.seconds(), 0.0);
  const double before = meter.seconds();
  meter.reset();
  EXPECT_DOUBLE_EQ(meter.seconds(), 0.0);
  EXPECT_GT(before, 0.0);
}

TEST(ModuleRegistry, CreateUnknownThrows) {
  core::ModuleRegistry registry;
  EXPECT_FALSE(registry.has("ghost"));
  EXPECT_THROW(registry.create("ghost"), ConfigError);
}

TEST(ModuleRegistry, TypeNamesListed) {
  core::ModuleRegistry registry;
  registry.registerType("alpha", [] {
    return std::unique_ptr<core::Module>{};
  });
  registry.registerType("beta", [] {
    return std::unique_ptr<core::Module>{};
  });
  const auto names = registry.typeNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "beta");
}

TEST(RealTimeDriver, AdvancesVirtualTimeWithWallClock) {
  sim::SimEngine engine;
  int fired = 0;
  engine.addPeriodic(0.05, [&] { ++fired; });
  core::RealTimeDriver driver(engine);
  driver.run(0.3);  // 0.3 wall seconds
  EXPECT_NEAR(engine.now(), 0.3, 0.01);
  EXPECT_GE(fired, 4);
  EXPECT_LE(fired, 7);
}

TEST(RealTimeDriver, StopEndsRunEarly) {
  sim::SimEngine engine;
  core::RealTimeDriver driver(engine);
  driver.stop();
  driver.run(5.0);  // returns immediately instead of sleeping 5 s
  EXPECT_LT(engine.now(), 0.5);
}

}  // namespace
}  // namespace asdf
