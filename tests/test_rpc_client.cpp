// Unit tests for the fault-tolerant collection layer: circuit-breaker
// state machine, retry/backoff schedules, monitoring-fault semantics
// (crash / hang / slow / partition), packet-loss coupling, and the
// seeded determinism of all of it.
#include "rpc/rpc_client.h"

#include <gtest/gtest.h>

#include "hadoop/cluster.h"
#include "sim/engine.h"

namespace asdf::rpc {
namespace {

class RpcClientTest : public ::testing::Test {
 protected:
  RpcClientTest() : cluster_(makeParams(), 21, engine_), hub_(cluster_, 0.0) {
    cluster_.start();
  }

  static hadoop::HadoopParams makeParams() {
    hadoop::HadoopParams p;
    p.slaveCount = 3;
    return p;
  }

  static RpcPolicy makePolicy() {
    RpcPolicy p;  // library defaults: timeout .25s, 3 retries, threshold 3
    return p;
  }

  RpcClient makeClient(std::uint64_t seed = 7) {
    return RpcClient(cluster_, hub_, makePolicy(), seed);
  }

  sim::SimEngine engine_;
  hadoop::Cluster cluster_;
  RpcHub hub_;
};

TEST(CircuitBreakerTest, StateMachineTransitions) {
  CircuitBreaker breaker(/*threshold=*/3, /*recoverySeconds=*/10.0);
  EXPECT_EQ(breaker.state(0.0), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allowRound(0.0));

  breaker.onRoundFailure(0.0);
  breaker.onRoundFailure(1.0);
  EXPECT_EQ(breaker.state(1.0), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutiveFailures(), 2);

  // Third consecutive failure trips the breaker.
  breaker.onRoundFailure(2.0);
  EXPECT_EQ(breaker.state(2.0), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allowRound(2.0));
  EXPECT_EQ(breaker.opens(), 1);

  // OPEN until the recovery interval elapses, then HALF_OPEN.
  EXPECT_EQ(breaker.state(11.9), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.state(12.0), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.allowRound(12.0));

  // A failed probe goes back to OPEN for a fresh interval (not a new
  // "open" event: the breaker never closed).
  breaker.onRoundFailure(12.0);
  EXPECT_EQ(breaker.state(12.0), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.state(21.9), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.state(22.0), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(breaker.opens(), 1);

  // A successful probe closes it and clears the failure streak.
  breaker.onRoundSuccess(22.0);
  EXPECT_EQ(breaker.state(22.0), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutiveFailures(), 0);

  // Re-opening after a recovery needs a full fresh streak.
  breaker.onRoundFailure(23.0);
  breaker.onRoundFailure(24.0);
  EXPECT_EQ(breaker.state(24.0), CircuitBreaker::State::kClosed);
  breaker.onRoundFailure(25.0);
  EXPECT_EQ(breaker.state(25.0), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 2);
}

TEST_F(RpcClientTest, HealthyFetchSucceedsFirstAttempt) {
  RpcClient client = makeClient();
  engine_.runUntil(5.0);
  const auto got = client.fetchSadc(1, 5.0);
  EXPECT_TRUE(got.ok);
  EXPECT_FALSE(got.retried);
  EXPECT_EQ(got.attempts, 1);
  EXPECT_EQ(got.value.node.size(), cluster_.node(1).sadcCollect().node.size());
  EXPECT_EQ(client.health().channelHealth(1, Daemon::kSadc),
            NodeHealth::kHealthy);
  EXPECT_EQ(client.totalRounds(), 1);
  EXPECT_EQ(client.totalRetries(), 0);
}

TEST_F(RpcClientTest, CrashedDaemonExhaustsRetries) {
  RpcClient client = makeClient();
  engine_.runUntil(5.0);
  client.faults().setCrashed(1, Daemon::kSadc, true);

  const auto got = client.fetchSadc(1, 5.0);
  EXPECT_FALSE(got.ok);
  EXPECT_EQ(got.attempts, 1 + makePolicy().maxRetries);
  EXPECT_EQ(client.health().channelHealth(1, Daemon::kSadc),
            NodeHealth::kUnmonitorable);
  // Every failed attempt still cost request + framing bytes on the wire.
  EXPECT_EQ(hub_.transports().channel("sadc-tcp").failedCalls(),
            1 + makePolicy().maxRetries);
  EXPECT_EQ(hub_.transports().channel("sadc-tcp").calls(), 0);
  // Other nodes and channels are unaffected.
  EXPECT_TRUE(client.fetchSadc(2, 5.0).ok);
  EXPECT_TRUE(client.fetchStrace(1, 5.0).ok);
}

TEST_F(RpcClientTest, BreakerOpensThenFastFailsWithoutTouchingWire) {
  RpcClient client = makeClient();
  engine_.runUntil(5.0);
  client.faults().setCrashed(1, Daemon::kSadc, true);

  for (int t = 1; t <= 3; ++t) {
    EXPECT_FALSE(client.fetchSadc(1, 5.0 + t).ok);
  }
  EXPECT_EQ(client.breakerState(1, 8.0), CircuitBreaker::State::kOpen);
  EXPECT_EQ(client.totalBreakerOpens(), 1);

  const long wireFailures =
      hub_.transports().channel("sadc-tcp").failedCalls();
  const auto got = client.fetchSadc(1, 9.0);
  EXPECT_FALSE(got.ok);
  EXPECT_EQ(got.attempts, 0);  // fast-failed
  EXPECT_EQ(client.totalFastFails(), 1);
  EXPECT_EQ(hub_.transports().channel("sadc-tcp").failedCalls(),
            wireFailures);  // the wire was not touched
}

TEST_F(RpcClientTest, HalfOpenProbeRecoversAfterDaemonRestart) {
  RpcClient client = makeClient();
  engine_.runUntil(5.0);
  client.faults().setCrashed(1, Daemon::kSadc, true);
  for (int t = 1; t <= 3; ++t) client.fetchSadc(1, 5.0 + t);
  ASSERT_EQ(client.breakerState(1, 8.0), CircuitBreaker::State::kOpen);

  // Daemon still down at probe time: the single probe fails and the
  // breaker re-opens for a fresh recovery interval.
  const SimTime probeTime = 8.0 + makePolicy().breakerRecoverySeconds;
  ASSERT_EQ(client.breakerState(1, probeTime),
            CircuitBreaker::State::kHalfOpen);
  auto probe = client.fetchSadc(1, probeTime);
  EXPECT_FALSE(probe.ok);
  EXPECT_EQ(probe.attempts, 1);  // HALF_OPEN sends exactly one probe
  EXPECT_EQ(client.breakerState(1, probeTime), CircuitBreaker::State::kOpen);

  // Daemon restarts; the next probe succeeds and closes the breaker.
  client.faults().setCrashed(1, Daemon::kSadc, false);
  const SimTime retryTime = probeTime + makePolicy().breakerRecoverySeconds;
  ASSERT_EQ(client.breakerState(1, retryTime),
            CircuitBreaker::State::kHalfOpen);
  engine_.runUntil(retryTime);
  probe = client.fetchSadc(1, retryTime);
  EXPECT_TRUE(probe.ok);
  EXPECT_EQ(probe.attempts, 1);
  EXPECT_EQ(client.breakerState(1, retryTime),
            CircuitBreaker::State::kClosed);
  EXPECT_EQ(client.health().channelHealth(1, Daemon::kSadc),
            NodeHealth::kHealthy);
}

TEST_F(RpcClientTest, HungDaemonCostsTimeoutPerAttempt) {
  RpcClient client = makeClient();
  engine_.runUntil(5.0);
  client.faults().setHung(2, Daemon::kSadc, true);

  const auto got = client.fetchSadc(2, 5.0);
  EXPECT_FALSE(got.ok);
  const auto& log = client.attemptLog(2);
  ASSERT_EQ(log.size(), static_cast<std::size_t>(got.attempts));
  EXPECT_EQ(log.front().at, 5.0);
  for (std::size_t i = 1; i < log.size(); ++i) {
    // Each retry waits out the full timeout plus a (jittered) backoff.
    EXPECT_GE(log[i].at - log[i - 1].at, makePolicy().timeoutSeconds);
    EXPECT_FALSE(log[i].success);
  }
}

TEST_F(RpcClientTest, SlowDaemonWithinTimeoutStillSucceeds) {
  RpcClient client = makeClient();
  engine_.runUntil(5.0);
  const RpcPolicy policy = makePolicy();

  // 50x slowdown: 0.1 s round trip, still inside the 0.25 s timeout.
  client.faults().setSlowFactor(2, Daemon::kSadc, 50.0);
  auto got = client.fetchSadc(2, 5.0);
  EXPECT_TRUE(got.ok);
  EXPECT_EQ(got.attempts, 1);

  // 250x: 0.5 s round trip blows the timeout on every attempt.
  client.faults().setSlowFactor(2, Daemon::kSadc, 250.0);
  got = client.fetchSadc(2, 6.0);
  EXPECT_FALSE(got.ok);
  EXPECT_EQ(got.attempts, 1 + policy.maxRetries);

  // Back to normal speed: recovers immediately (breaker never tripped).
  client.faults().setSlowFactor(2, Daemon::kSadc, 1.0);
  got = client.fetchSadc(2, 7.0);
  EXPECT_TRUE(got.ok);
}

TEST_F(RpcClientTest, PartitionBlocksEveryChannel) {
  RpcClient client = makeClient();
  cluster_.jobTracker().submit([] {
    hadoop::JobSpec spec;
    spec.inputBytes = 48.0e6;
    spec.numReduces = 2;
    return spec;
  }(), 0.0);
  engine_.runUntil(20.0);
  client.faults().setPartitioned(3, true);

  EXPECT_FALSE(client.fetchSadc(3, 20.0).ok);
  EXPECT_FALSE(client.fetchTt(3, 20.0, 20.0).ok);
  EXPECT_FALSE(client.fetchDn(3, 20.0, 20.0).ok);
  for (const char* name : {"sadc-tcp", "hl-tt-tcp", "hl-dn-tcp"}) {
    EXPECT_GT(hub_.transports().channel(name).failedCalls(), 0) << name;
  }
  // The breaker is per *node*: three failed rounds (one per channel)
  // trip it, so the fourth channel fast-fails without wire traffic.
  const auto strace = client.fetchStrace(3, 20.0);
  EXPECT_FALSE(strace.ok);
  EXPECT_EQ(strace.attempts, 0);
  EXPECT_EQ(hub_.transports().channel("strace-tcp").failedCalls(), 0);
  EXPECT_EQ(client.health().aggregate(3), NodeHealth::kUnmonitorable);

  // Healing the partition heals the node once the breaker's recovery
  // interval elapses and a probe gets through.
  client.faults().setPartitioned(3, false);
  const SimTime probeTime = 20.0 + makePolicy().breakerRecoverySeconds + 1.0;
  engine_.runUntil(probeTime);
  EXPECT_TRUE(client.fetchSadc(3, probeTime).ok);
  EXPECT_TRUE(client.fetchTt(3, probeTime, probeTime).ok);
  EXPECT_EQ(client.health().channelHealth(3, Daemon::kSadc),
            NodeHealth::kHealthy);
}

TEST_F(RpcClientTest, PacketLossCouplesIntoMonitoringPlane) {
  RpcClient client = makeClient();
  engine_.runUntil(5.0);
  cluster_.node(1).nic().setLossRate(0.5);

  // P(attempt fails) = 0.5^2 = 0.25, so over a few hundred rounds we
  // must see retries; a whole round failing (4 straight losses) is rare
  // enough that the node stays effectively monitorable.
  long retried = 0;
  long failed = 0;
  for (int t = 0; t < 300; ++t) {
    const auto got = client.fetchSadc(1, 5.0 + t);
    if (got.ok && got.retried) ++retried;
    if (!got.ok) ++failed;
  }
  EXPECT_GT(retried, 20);
  EXPECT_LT(failed, 30);
  EXPECT_GT(client.totalRetries(), 0);

  // Lossless nodes never draw from the RNG and never retry.
  for (int t = 0; t < 50; ++t) {
    EXPECT_TRUE(client.fetchSadc(2, 5.0 + t).ok);
  }
  const auto& cleanLog = client.attemptLog(2);
  for (const AttemptRecord& rec : cleanLog) {
    EXPECT_TRUE(rec.success);
    EXPECT_EQ(rec.attempt, 0);
  }
}

TEST_F(RpcClientTest, BackoffScheduleIsSeedDeterministic) {
  cluster_.node(1).nic().setLossRate(0.5);
  engine_.runUntil(5.0);

  auto runSchedule = [&](std::uint64_t seed) {
    RpcClient client = makeClient(seed);
    for (int t = 0; t < 200; ++t) client.fetchSadc(1, 5.0 + t);
    return client.attemptLog(1);
  };
  const auto a = runSchedule(7);
  const auto b = runSchedule(7);
  const auto c = runSchedule(8);

  // Same seed: byte-identical attempt schedule, timestamps included.
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at) << i;
    EXPECT_EQ(a[i].attempt, b[i].attempt) << i;
    EXPECT_EQ(a[i].success, b[i].success) << i;
  }
  // The schedule actually exercised the retry path.
  bool sawRetry = false;
  for (const AttemptRecord& rec : a) sawRetry |= rec.attempt > 0;
  EXPECT_TRUE(sawRetry);

  // Different seed: the loss draws (and hence the schedule) diverge.
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].at != c[i].at || a[i].success != c[i].success;
  }
  EXPECT_TRUE(differs);
}

TEST_F(RpcClientTest, RegistryTracksStaleness) {
  RpcClient client = makeClient();
  engine_.runUntil(5.0);
  ASSERT_TRUE(client.fetchSadc(1, 5.0).ok);
  EXPECT_DOUBLE_EQ(client.health().staleness(1, Daemon::kSadc, 5.0), 0.0);

  client.faults().setCrashed(1, Daemon::kSadc, true);
  client.fetchSadc(1, 6.0);
  client.fetchSadc(1, 7.0);
  EXPECT_DOUBLE_EQ(client.health().staleness(1, Daemon::kSadc, 7.0), 2.0);
  // A channel that has never been polled carries no staleness signal.
  EXPECT_DOUBLE_EQ(client.health().staleness(2, Daemon::kStrace, 7.0), 0.0);
}

TEST(NodeIdFromOriginTest, ParsesSlaveLabels) {
  EXPECT_EQ(nodeIdFromOrigin("slave1"), 1);
  EXPECT_EQ(nodeIdFromOrigin("slave12"), 12);
  EXPECT_EQ(nodeIdFromOrigin("slave0"), kInvalidNode);
  EXPECT_EQ(nodeIdFromOrigin("slave"), kInvalidNode);
  EXPECT_EQ(nodeIdFromOrigin("slave2x"), kInvalidNode);
  EXPECT_EQ(nodeIdFromOrigin("master"), kInvalidNode);
  EXPECT_EQ(nodeIdFromOrigin(""), kInvalidNode);
}

}  // namespace
}  // namespace asdf::rpc
