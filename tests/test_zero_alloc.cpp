// Asserts the ISSUE's core data-plane claim with the counting
// allocator: once scratch buffers and builder pools are warm, the
// analysis loop — flat kernels plus pooled emission and handle
// retention — performs zero heap allocations per iteration.
//
// This lives in its own test binary (asdf_zero_alloc_test) because it
// links the global operator new/delete replacements from
// bench/alloc_hook.cpp, which must not leak into the main suite.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <thread>
#include <vector>

#include "alloc_hook.h"
#include "analysis/kmeans.h"
#include "analysis/peercompare.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "core/value.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/tcp_server.h"
#include "rpc/wire.h"

namespace asdf {
namespace {

constexpr std::size_t kNodes = 50;
constexpr std::size_t kDims = 16;

Matrix makePoints(std::size_t rows, std::size_t cols) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.row(r)[c] = static_cast<double>((r * 31 + c * 7) % 23);
    }
  }
  return m;
}

TEST(ZeroAlloc, KMeansSteadyStateAllocatesNothing) {
  const Matrix points = makePoints(64, 8);
  analysis::KMeansOptions options;
  options.k = 4;
  analysis::KMeansScratch scratch;
  analysis::KMeansResult result;

  // Warm: scratch, result, and centroid storage reach capacity.
  for (int i = 0; i < 3; ++i) {
    Rng rng(42);
    analysis::kmeans(points, options, rng, scratch, result);
  }

  allochook::reset();
  Rng rng(42);
  analysis::kmeans(points, options, rng, scratch, result);
  const allochook::Totals t = allochook::totals();
  EXPECT_EQ(t.allocs, 0u) << "kmeans allocated in steady state";
}

TEST(ZeroAlloc, NearestCentroidsSteadyStateAllocatesNothing) {
  const Matrix centroids = makePoints(8, kDims);
  std::vector<double> x(kDims, 3.0);
  analysis::NearestScratch scratch;
  (void)analysis::nearestCentroids(centroids, x.data(), 3, scratch);  // warm

  allochook::reset();
  for (int i = 0; i < 100; ++i) {
    x[0] = static_cast<double>(i);
    const auto& order = analysis::nearestCentroids(centroids, x.data(), 3,
                                                   scratch);
    ASSERT_EQ(order.size(), 3u);
  }
  EXPECT_EQ(allochook::totals().allocs, 0u);
}

TEST(ZeroAlloc, PeerComparisonSteadyStateAllocatesNothing) {
  // One histogram/mean/stddev row per node, flat storage.
  Matrix hists = makePoints(kNodes, kDims);
  Matrix means = makePoints(kNodes, kDims);
  Matrix stddevs(kNodes, kDims);
  for (std::size_t r = 0; r < kNodes; ++r) {
    for (std::size_t c = 0; c < kDims; ++c) stddevs.row(r)[c] = 1.0;
  }
  std::vector<const double*> histRows(kNodes);
  std::vector<const double*> meanRows(kNodes);
  std::vector<const double*> sdRows(kNodes);
  for (std::size_t r = 0; r < kNodes; ++r) {
    histRows[r] = hists.row(r);
    meanRows[r] = means.row(r);
    sdRows[r] = stddevs.row(r);
  }
  std::vector<double> flags(kNodes);
  std::vector<double> scores(kNodes);
  std::vector<double> stateSeq(60);
  for (std::size_t i = 0; i < stateSeq.size(); ++i) {
    stateSeq[i] = static_cast<double>(i % kDims);
  }
  std::vector<double> hist(kDims);
  analysis::PeerScratch scratch;

  // Warm both comparisons once.
  analysis::blackBoxCompareInto(histRows.data(), kNodes, kDims, 40.0, scratch,
                                flags.data(), scores.data());
  analysis::whiteBoxCompareInto(meanRows.data(), sdRows.data(), kNodes, kDims,
                                2.0, scratch, flags.data(), scores.data());

  allochook::reset();
  for (int i = 0; i < 100; ++i) {
    analysis::stateHistogramInto(stateSeq.data(), stateSeq.size(),
                                 hist.data(), kDims);
    analysis::blackBoxCompareInto(histRows.data(), kNodes, kDims, 40.0,
                                  scratch, flags.data(), scores.data());
    analysis::whiteBoxCompareInto(meanRows.data(), sdRows.data(), kNodes,
                                  kDims, 2.0, scratch, flags.data(),
                                  scores.data());
  }
  EXPECT_EQ(allochook::totals().allocs, 0u);
}

TEST(ZeroAlloc, BuilderEmissionAndRetentionAllocateNothing) {
  core::VecBuilder builder;
  core::VecBuf portSlot;                  // the port's latest sample
  std::vector<core::VecBuf> window(10);   // a consumer's history ring

  // Warm: pool grows to retention depth + 1, vectors reach capacity.
  for (int i = 0; i < 30; ++i) {
    std::vector<double>& v = builder.acquire();
    v.assign(82, static_cast<double>(i));
    portSlot = builder.share();
    window[static_cast<std::size_t>(i) % 10] = portSlot;
  }

  allochook::reset();
  for (int i = 30; i < 130; ++i) {
    std::vector<double>& v = builder.acquire();
    v.assign(82, static_cast<double>(i));
    portSlot = builder.share();
    window[static_cast<std::size_t>(i) % 10] = portSlot;
  }
  EXPECT_EQ(allochook::totals().allocs, 0u);
  EXPECT_LE(builder.poolSize(), 12u);
}

// The net-plane claim (DESIGN.md §15): once a connection's decode
// buffer, scratch frame and outbound queue are warm, a full
// request -> decode -> dispatch -> respond exchange performs zero heap
// allocations on the server — the hot path reuses the per-connection
// scratch Frame, appends responses into the retained outbound buffer,
// and the uncorked single-frame path writes straight from a stack
// header + payload iovec pair.
TEST(ZeroAlloc, TcpServerSteadyStateExchangeAllocatesNothing) {
  net::EventLoop loop;
  net::TcpServer server(loop, 0);
  // Pre-built response so the handler itself is allocation-free; real
  // daemons reuse encoders the same way.
  rpc::Encoder response;
  response.putDouble(1234.5);
  response.putString("steady-state");
  server.onFrame([&response](net::TcpServer::Connection& conn,
                             const net::Frame&) {
    conn.send(net::MsgType::kSadcData, response);
  });
  std::thread loopThread([&loop] { loop.run(); });

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  const std::vector<std::uint8_t> request =
      net::encodeFrame(net::MsgType::kStats, nullptr, 0);
  net::FrameDecoder decoder;
  net::Frame reply;
  std::uint8_t chunk[4096];
  // The client side of the exchange loop is allocation-free too once
  // the decoder buffer and reply payload are at capacity, so the
  // global counter isolates the server path.
  const auto exchange = [&]() -> bool {
    std::size_t off = 0;
    while (off < request.size()) {
      const ssize_t n = ::write(fd, request.data() + off,
                                request.size() - off);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    while (!decoder.next(reply)) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0 || !decoder.feed(chunk, static_cast<std::size_t>(n))) {
        return false;
      }
    }
    return reply.type == net::MsgType::kSadcData;
  };

  // Warm: connection buffers, scratch frame, decoder, reply payload.
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(exchange());

  allochook::reset();
  int ok = 0;
  for (int i = 0; i < 200; ++i) ok += exchange() ? 1 : 0;
  const allochook::Totals t = allochook::totals();
  EXPECT_EQ(ok, 200);
  EXPECT_EQ(t.allocs, 0u)
      << "accept->dispatch->respond allocated in steady state";

  ::close(fd);
  loop.stop();
  loopThread.join();
  EXPECT_EQ(server.framesServed(), 250);
}

}  // namespace
}  // namespace asdf
