// Asserts the ISSUE's core data-plane claim with the counting
// allocator: once scratch buffers and builder pools are warm, the
// analysis loop — flat kernels plus pooled emission and handle
// retention — performs zero heap allocations per iteration.
//
// This lives in its own test binary (asdf_zero_alloc_test) because it
// links the global operator new/delete replacements from
// bench/alloc_hook.cpp, which must not leak into the main suite.
#include <gtest/gtest.h>

#include <vector>

#include "alloc_hook.h"
#include "analysis/kmeans.h"
#include "analysis/peercompare.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "core/value.h"

namespace asdf {
namespace {

constexpr std::size_t kNodes = 50;
constexpr std::size_t kDims = 16;

Matrix makePoints(std::size_t rows, std::size_t cols) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.row(r)[c] = static_cast<double>((r * 31 + c * 7) % 23);
    }
  }
  return m;
}

TEST(ZeroAlloc, KMeansSteadyStateAllocatesNothing) {
  const Matrix points = makePoints(64, 8);
  analysis::KMeansOptions options;
  options.k = 4;
  analysis::KMeansScratch scratch;
  analysis::KMeansResult result;

  // Warm: scratch, result, and centroid storage reach capacity.
  for (int i = 0; i < 3; ++i) {
    Rng rng(42);
    analysis::kmeans(points, options, rng, scratch, result);
  }

  allochook::reset();
  Rng rng(42);
  analysis::kmeans(points, options, rng, scratch, result);
  const allochook::Totals t = allochook::totals();
  EXPECT_EQ(t.allocs, 0u) << "kmeans allocated in steady state";
}

TEST(ZeroAlloc, NearestCentroidsSteadyStateAllocatesNothing) {
  const Matrix centroids = makePoints(8, kDims);
  std::vector<double> x(kDims, 3.0);
  analysis::NearestScratch scratch;
  (void)analysis::nearestCentroids(centroids, x.data(), 3, scratch);  // warm

  allochook::reset();
  for (int i = 0; i < 100; ++i) {
    x[0] = static_cast<double>(i);
    const auto& order = analysis::nearestCentroids(centroids, x.data(), 3,
                                                   scratch);
    ASSERT_EQ(order.size(), 3u);
  }
  EXPECT_EQ(allochook::totals().allocs, 0u);
}

TEST(ZeroAlloc, PeerComparisonSteadyStateAllocatesNothing) {
  // One histogram/mean/stddev row per node, flat storage.
  Matrix hists = makePoints(kNodes, kDims);
  Matrix means = makePoints(kNodes, kDims);
  Matrix stddevs(kNodes, kDims);
  for (std::size_t r = 0; r < kNodes; ++r) {
    for (std::size_t c = 0; c < kDims; ++c) stddevs.row(r)[c] = 1.0;
  }
  std::vector<const double*> histRows(kNodes);
  std::vector<const double*> meanRows(kNodes);
  std::vector<const double*> sdRows(kNodes);
  for (std::size_t r = 0; r < kNodes; ++r) {
    histRows[r] = hists.row(r);
    meanRows[r] = means.row(r);
    sdRows[r] = stddevs.row(r);
  }
  std::vector<double> flags(kNodes);
  std::vector<double> scores(kNodes);
  std::vector<double> stateSeq(60);
  for (std::size_t i = 0; i < stateSeq.size(); ++i) {
    stateSeq[i] = static_cast<double>(i % kDims);
  }
  std::vector<double> hist(kDims);
  analysis::PeerScratch scratch;

  // Warm both comparisons once.
  analysis::blackBoxCompareInto(histRows.data(), kNodes, kDims, 40.0, scratch,
                                flags.data(), scores.data());
  analysis::whiteBoxCompareInto(meanRows.data(), sdRows.data(), kNodes, kDims,
                                2.0, scratch, flags.data(), scores.data());

  allochook::reset();
  for (int i = 0; i < 100; ++i) {
    analysis::stateHistogramInto(stateSeq.data(), stateSeq.size(),
                                 hist.data(), kDims);
    analysis::blackBoxCompareInto(histRows.data(), kNodes, kDims, 40.0,
                                  scratch, flags.data(), scores.data());
    analysis::whiteBoxCompareInto(meanRows.data(), sdRows.data(), kNodes,
                                  kDims, 2.0, scratch, flags.data(),
                                  scores.data());
  }
  EXPECT_EQ(allochook::totals().allocs, 0u);
}

TEST(ZeroAlloc, BuilderEmissionAndRetentionAllocateNothing) {
  core::VecBuilder builder;
  core::VecBuf portSlot;                  // the port's latest sample
  std::vector<core::VecBuf> window(10);   // a consumer's history ring

  // Warm: pool grows to retention depth + 1, vectors reach capacity.
  for (int i = 0; i < 30; ++i) {
    std::vector<double>& v = builder.acquire();
    v.assign(82, static_cast<double>(i));
    portSlot = builder.share();
    window[static_cast<std::size_t>(i) % 10] = portSlot;
  }

  allochook::reset();
  for (int i = 30; i < 130; ++i) {
    std::vector<double>& v = builder.acquire();
    v.assign(82, static_cast<double>(i));
    portSlot = builder.share();
    window[static_cast<std::size_t>(i) % 10] = portSlot;
  }
  EXPECT_EQ(allochook::totals().allocs, 0u);
  EXPECT_LE(builder.poolSize(), 12u);
}

}  // namespace
}  // namespace asdf
