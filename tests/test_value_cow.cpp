// Copy-on-write payload semantics: VecBuf sharing and cloning rules,
// VecBuilder pooling, and aliasing safety when fpt-core fans one
// buffer out to mutating, reading, and history-retaining consumers.
#include "core/value.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/fpt_core.h"
#include "core/module.h"
#include "core/registry.h"
#include "sim/engine.h"

namespace asdf::core {
namespace {

std::vector<double> iota(std::size_t n, double start) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = start + static_cast<double>(i);
  return v;
}

TEST(VecBuf, SmallPayloadsStayInline) {
  const VecBuf a{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(a.payloadBytes(), 0u);  // no heap buffer behind it
  EXPECT_FALSE(a.aliased());

  VecBuf b = a;  // value copy, not a shared handle
  EXPECT_FALSE(a.aliased());
  EXPECT_FALSE(b.aliased());

  dataPlaneCounters().reset();
  b.makeMutable()[0] = 99.0;
  EXPECT_EQ(dataPlaneCounters().cowClones.load(), 0u);  // never clones
  EXPECT_DOUBLE_EQ(a[0], 1.0);
  EXPECT_DOUBLE_EQ(b[0], 99.0);
}

TEST(VecBuf, AliasedTracksLiveHandles) {
  VecBuf a(iota(8, 0.0));
  EXPECT_FALSE(a.aliased());
  {
    VecBuf b = a;
    EXPECT_TRUE(a.aliased());
    EXPECT_TRUE(b.aliased());
    EXPECT_EQ(a.data(), b.data());  // one buffer, two handles
  }
  EXPECT_FALSE(a.aliased());  // sibling released
}

TEST(VecBuf, MakeMutableClonesOnlyWhenAliased) {
  VecBuf a(iota(8, 0.0));
  VecBuf b = a;
  dataPlaneCounters().reset();

  b.makeMutable()[0] = -1.0;
  EXPECT_EQ(dataPlaneCounters().cowClones.load(), 1u);
  EXPECT_EQ(dataPlaneCounters().cowCloneBytes.load(), 8 * sizeof(double));
  EXPECT_DOUBLE_EQ(a[0], 0.0);  // sibling sees the original bytes
  EXPECT_DOUBLE_EQ(b[0], -1.0);
  EXPECT_NE(a.data(), b.data());

  // b is now unique: further mutation reuses its buffer in place.
  const double* before = b.data();
  b.makeMutable()[1] = -2.0;
  EXPECT_EQ(dataPlaneCounters().cowClones.load(), 1u);
  EXPECT_EQ(b.data(), before);
}

TEST(VecBuf, ToVectorIsCountedMaterialization) {
  const VecBuf a(iota(6, 1.0));
  dataPlaneCounters().reset();
  const std::vector<double> copy = a.toVector();
  EXPECT_EQ(copy, iota(6, 1.0));
  EXPECT_EQ(dataPlaneCounters().materializations.load(), 1u);
  EXPECT_EQ(dataPlaneCounters().materializedBytes.load(), 6 * sizeof(double));
}

TEST(VecBuf, EqualityComparesBytesAcrossStorage) {
  const VecBuf inlineBuf{1.0, 2.0, 3.0};
  const VecBuf heapA(iota(8, 0.0));
  const VecBuf heapB(iota(8, 0.0));
  EXPECT_EQ(heapA, heapB);  // distinct buffers, same bytes
  EXPECT_NE(heapA, inlineBuf);
  EXPECT_EQ(inlineBuf, (VecBuf{1.0, 2.0, 3.0}));
  EXPECT_NE(inlineBuf, (VecBuf{1.0, 2.0, 4.0}));
}

TEST(VecBuilder, PingPongsBetweenTwoBuffersWhenOneConsumerHolds) {
  VecBuilder builder;
  VecBuf slot;  // models the port's latest-sample slot
  for (int i = 0; i < 100; ++i) {
    std::vector<double>& v = builder.acquire();
    v.assign(8, static_cast<double>(i));
    slot = builder.share();
    EXPECT_DOUBLE_EQ(slot[0], static_cast<double>(i));
  }
  EXPECT_LE(builder.poolSize(), 2u);
}

TEST(VecBuilder, SmallPayloadsFreeTheSlotImmediately) {
  VecBuilder builder;
  VecBuf slot;
  for (int i = 0; i < 50; ++i) {
    std::vector<double>& v = builder.acquire();
    v.assign(2, static_cast<double>(i));  // <= inline capacity
    slot = builder.share();               // copied inline, slot released
  }
  EXPECT_EQ(builder.poolSize(), 1u);
}

TEST(VecBuilder, PoolGrowsToRetentionDepthAndReusesWithoutScribbling) {
  VecBuilder builder;
  std::vector<VecBuf> window(10);  // consumer retains the last 10
  for (int i = 0; i < 100; ++i) {
    std::vector<double>& v = builder.acquire();
    v.assign(8, static_cast<double>(i));
    window[static_cast<std::size_t>(i) % 10] = builder.share();
    // Every retained handle must still hold the bytes it was given.
    for (int back = 0; back <= std::min(i, 9); ++back) {
      const VecBuf& held = window[static_cast<std::size_t>(i - back) % 10];
      ASSERT_DOUBLE_EQ(held[0], static_cast<double>(i - back));
    }
  }
  // One buffer per retained slot plus the one in flight.
  EXPECT_LE(builder.poolSize(), 11u);
}

// ---------------------------------------------------------------------------
// Aliasing safety through fpt-core: one producer buffer fans out to a
// mutating consumer, a plain reader, and a history retainer. The
// mutator must never corrupt what its siblings (or retained history)
// observe, under both executors.

constexpr std::size_t kDims = 8;

class VecSource final : public Module {
 public:
  void init(ModuleContext& ctx) override {
    out_ = ctx.addOutput("output0");
    ctx.requestPeriodic(1.0);
  }
  void run(ModuleContext& ctx, RunReason) override {
    ++tick_;
    std::vector<double>& v = builder_.acquire();
    v.resize(kDims);
    for (std::size_t d = 0; d < kDims; ++d) {
      v[d] = static_cast<double>(tick_) * 10.0 + static_cast<double>(d);
    }
    ctx.write(out_, builder_.share());
  }

 private:
  long tick_ = 0;
  VecBuilder builder_;
  int out_ = -1;
};

/// Copies the input handle, mutates its view, and republishes it.
class VecMutator final : public Module {
 public:
  void init(ModuleContext& ctx) override {
    out_ = ctx.addOutput("output0");
    ctx.setInputTrigger(1);
  }
  void run(ModuleContext& ctx, RunReason) override {
    if (!ctx.inputFresh("input", 0)) return;
    VecBuf mine = asVector(ctx.input("input", 0).value);
    double* w = mine.makeMutable();
    for (std::size_t d = 0; d < kDims; ++d) w[d] = -w[d];
    ctx.write(out_, std::move(mine));
  }

 private:
  int out_ = -1;
};

/// Records a private copy of every fresh payload it observes, into
/// the channel selected by its config (so two instances can record
/// different streams through one static).
class VecRecorder final : public Module {
 public:
  static std::vector<std::vector<double>>* channels[2];
  void init(ModuleContext& ctx) override {
    channel_ = static_cast<int>(ctx.intParam("channel", 0));
    ctx.setInputTrigger(1);
  }
  void run(ModuleContext& ctx, RunReason) override {
    if (!ctx.inputFresh("input", 0)) return;
    const VecBuf& v = asVector(ctx.input("input", 0).value);
    channels[channel_]->emplace_back(v.begin(), v.end());
  }

 private:
  int channel_ = 0;
};
std::vector<std::vector<double>>* VecRecorder::channels[2] = {nullptr,
                                                              nullptr};

/// Retains the raw handles (ibuffer-style history) without copying.
class VecHistory final : public Module {
 public:
  static std::vector<VecBuf>* held;
  void init(ModuleContext& ctx) override { ctx.setInputTrigger(1); }
  void run(ModuleContext& ctx, RunReason) override {
    if (!ctx.inputFresh("input", 0)) return;
    held->push_back(asVector(ctx.input("input", 0).value));
  }
};
std::vector<VecBuf>* VecHistory::held = nullptr;

struct AliasingRun {
  std::vector<std::vector<double>> reader;   // sibling consumer's view
  std::vector<std::vector<double>> mutated;  // mutator's output
  std::vector<VecBuf> history;               // retained source handles
};

AliasingRun runAliasingPipeline(std::unique_ptr<Executor> executor,
                                double until) {
  ModuleRegistry registry;
  registry.registerType("vsrc", [] { return std::make_unique<VecSource>(); });
  registry.registerType("vmut", [] { return std::make_unique<VecMutator>(); });
  registry.registerType("vrec",
                        [] { return std::make_unique<VecRecorder>(); });
  registry.registerType("vhist",
                        [] { return std::make_unique<VecHistory>(); });

  AliasingRun out;
  VecRecorder::channels[0] = &out.reader;
  VecRecorder::channels[1] = &out.mutated;
  VecHistory::held = &out.history;

  sim::SimEngine engine;
  FptCore core(engine, Environment{}, &registry);
  core.setExecutor(std::move(executor));
  core.configureFromText(R"(
[vsrc]
id = src

[vmut]
id = mut
input[input] = src.output0

[vrec]
id = reader
channel = 0
input[input] = src.output0

[vhist]
id = hist
input[input] = src.output0

[vrec]
id = mutwatch
channel = 1
input[input] = mut.output0
)");
  engine.runUntil(until);
  return out;
}

void expectAliasingInvariants(const AliasingRun& run, long ticks) {
  ASSERT_EQ(run.reader.size(), static_cast<std::size_t>(ticks));
  ASSERT_EQ(run.mutated.size(), static_cast<std::size_t>(ticks));
  ASSERT_EQ(run.history.size(), static_cast<std::size_t>(ticks));
  for (long t = 1; t <= ticks; ++t) {
    const auto i = static_cast<std::size_t>(t - 1);
    for (std::size_t d = 0; d < kDims; ++d) {
      const double expected =
          static_cast<double>(t) * 10.0 + static_cast<double>(d);
      // The sibling reader saw the original bytes...
      ASSERT_DOUBLE_EQ(run.reader[i][d], expected);
      // ...the retained history handle still holds them...
      ASSERT_DOUBLE_EQ(run.history[i][d], expected);
      // ...and the mutator's private clone diverged.
      ASSERT_DOUBLE_EQ(run.mutated[i][d], -expected);
    }
  }
}

TEST(VecBufAliasing, MutatingConsumerNeverCorruptsSiblings_Serial) {
  const AliasingRun run =
      runAliasingPipeline(std::make_unique<SerialExecutor>(), 12.0);
  expectAliasingInvariants(run, 12);
}

TEST(VecBufAliasing, MutatingConsumerNeverCorruptsSiblings_ThreadPool) {
  const AliasingRun run =
      runAliasingPipeline(std::make_unique<ThreadPoolExecutor>(4), 12.0);
  expectAliasingInvariants(run, 12);
}

TEST(VecBufAliasing, ExecutorsSeeByteIdenticalSequences) {
  const AliasingRun serial =
      runAliasingPipeline(std::make_unique<SerialExecutor>(), 12.0);
  const AliasingRun pooled =
      runAliasingPipeline(std::make_unique<ThreadPoolExecutor>(4), 12.0);
  EXPECT_EQ(serial.reader, pooled.reader);
  EXPECT_EQ(serial.mutated, pooled.mutated);
  ASSERT_EQ(serial.history.size(), pooled.history.size());
  for (std::size_t i = 0; i < serial.history.size(); ++i) {
    EXPECT_EQ(serial.history[i], pooled.history[i]);
  }
}

}  // namespace
}  // namespace asdf::core
