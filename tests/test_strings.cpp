#include "common/strings.h"

#include <gtest/gtest.h>

namespace asdf {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\thello\n"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
}

TEST(Trim, EmptyAndAllWhitespace) {
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   \t\n "), "");
}

TEST(Trim, PreservesInnerWhitespace) {
  EXPECT_EQ(trim("  a b  c "), "a b  c");
}

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, SingleFieldWithoutDelimiter) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, EmptyInputGivesOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitWhitespace, CollapsesRuns) {
  const auto parts = splitWhitespace("  a \t b\n\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitWhitespace, EmptyInput) {
  EXPECT_TRUE(splitWhitespace("   ").empty());
  EXPECT_TRUE(splitWhitespace("").empty());
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(startsWith("hello world", "hello"));
  EXPECT_FALSE(startsWith("hello", "hello world"));
  EXPECT_TRUE(endsWith("hello world", "world"));
  EXPECT_FALSE(endsWith("world", "hello world"));
  EXPECT_TRUE(startsWith("x", ""));
  EXPECT_TRUE(endsWith("x", ""));
}

TEST(Contains, Basics) {
  EXPECT_TRUE(contains("LaunchTaskAction: task_0001", "task_"));
  EXPECT_FALSE(contains("abc", "abd"));
  EXPECT_TRUE(contains("abc", ""));
}

TEST(Join, Basics) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strformat, FormatsLikePrintf) {
  EXPECT_EQ(strformat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strformat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strformat("%s", ""), "");
}

TEST(Strformat, LongOutput) {
  const std::string s = strformat("%0512d", 7);
  EXPECT_EQ(s.size(), 512u);
  EXPECT_EQ(s.back(), '7');
}

TEST(ParseDouble, Valid) {
  double v = 0.0;
  EXPECT_TRUE(parseDouble("3.5", v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(parseDouble(" -2e3 ", v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
}

TEST(ParseDouble, RejectsJunk) {
  double v = 0.0;
  EXPECT_FALSE(parseDouble("", v));
  EXPECT_FALSE(parseDouble("abc", v));
  EXPECT_FALSE(parseDouble("1.5x", v));
}

TEST(ParseInt, Valid) {
  long v = 0;
  EXPECT_TRUE(parseInt("42", v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parseInt(" -7 ", v));
  EXPECT_EQ(v, -7);
}

TEST(ParseInt, RejectsJunkAndFloats) {
  long v = 0;
  EXPECT_FALSE(parseInt("", v));
  EXPECT_FALSE(parseInt("3.5", v));
  EXPECT_FALSE(parseInt("12a", v));
}

}  // namespace
}  // namespace asdf
