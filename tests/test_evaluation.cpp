#include "analysis/evaluation.h"

#include <gtest/gtest.h>

namespace asdf::analysis {
namespace {

AlarmRecord record(SimTime t, std::vector<double> flags,
                   std::vector<double> scores = {}) {
  AlarmRecord r;
  r.time = t;
  r.flags = std::move(flags);
  r.scores = std::move(scores);
  return r;
}

TEST(GroundTruth, ActiveWindow) {
  GroundTruth truth;
  truth.slaveIndex = 2;
  truth.faultStart = 100.0;
  truth.faultEnd = 200.0;
  EXPECT_FALSE(truth.activeAt(99.0));
  EXPECT_TRUE(truth.activeAt(100.0));
  EXPECT_TRUE(truth.activeAt(200.0));
  EXPECT_FALSE(truth.activeAt(201.0));
}

TEST(GroundTruth, OpenEndedFault) {
  GroundTruth truth;
  truth.slaveIndex = 0;
  truth.faultStart = 50.0;
  EXPECT_TRUE(truth.activeAt(1.0e9));
}

TEST(GroundTruth, FaultFreeNeverActive) {
  GroundTruth truth;  // slaveIndex -1
  EXPECT_FALSE(truth.activeAt(100.0));
}

TEST(Evaluate, PerfectDetector) {
  GroundTruth truth;
  truth.slaveIndex = 1;
  truth.faultStart = 10.0;
  AlarmSeries series = {
      record(5.0, {0, 0, 0}),
      record(15.0, {0, 1, 0}),
      record(25.0, {0, 1, 0}),
  };
  const EvalResult r = evaluate(series, truth);
  EXPECT_EQ(r.tp, 2);
  EXPECT_EQ(r.fn, 0);
  EXPECT_EQ(r.fp, 0);
  EXPECT_EQ(r.tn, 7);
  EXPECT_DOUBLE_EQ(r.balancedAccuracyPct(), 100.0);
  EXPECT_DOUBLE_EQ(r.falsePositiveRatePct(), 0.0);
}

TEST(Evaluate, BlindDetectorScoresFiftyPercent) {
  GroundTruth truth;
  truth.slaveIndex = 0;
  truth.faultStart = 0.0;
  AlarmSeries series = {record(1.0, {0, 0}), record(2.0, {0, 0})};
  const EvalResult r = evaluate(series, truth);
  EXPECT_DOUBLE_EQ(r.balancedAccuracyPct(), 50.0);
}

TEST(Evaluate, WrongNodeIsBothFnAndFp) {
  GroundTruth truth;
  truth.slaveIndex = 0;
  truth.faultStart = 0.0;
  AlarmSeries series = {record(1.0, {0, 1})};
  const EvalResult r = evaluate(series, truth);
  EXPECT_EQ(r.fn, 1);
  EXPECT_EQ(r.fp, 1);
  EXPECT_EQ(r.tp, 0);
  EXPECT_EQ(r.tn, 0);
}

TEST(Evaluate, FaultFreeFalsePositiveRate) {
  GroundTruth truth;  // no fault
  AlarmSeries series = {
      record(1.0, {0, 0, 0, 1}),
      record(2.0, {0, 0, 0, 0}),
  };
  const EvalResult r = evaluate(series, truth);
  EXPECT_EQ(r.fp, 1);
  EXPECT_EQ(r.tn, 7);
  EXPECT_DOUBLE_EQ(r.falsePositiveRatePct(), 12.5);
  EXPECT_DOUBLE_EQ(flaggedFractionPct(series), 12.5);
}

TEST(Latency, FirstCorrectAlarmAfterInjection) {
  GroundTruth truth;
  truth.slaveIndex = 1;
  truth.faultStart = 100.0;
  AlarmSeries series = {
      record(50.0, {0, 1}),   // pre-fault alarms don't count
      record(110.0, {0, 0}),
      record(160.0, {0, 1}),
  };
  EXPECT_DOUBLE_EQ(fingerpointingLatency(series, truth), 60.0);
}

TEST(Latency, NeverDetectedIsNegative) {
  GroundTruth truth;
  truth.slaveIndex = 0;
  truth.faultStart = 10.0;
  AlarmSeries series = {record(20.0, {0, 1})};
  EXPECT_LT(fingerpointingLatency(series, truth), 0.0);
}

TEST(Latency, FaultFreeIsNegative) {
  GroundTruth truth;
  EXPECT_LT(fingerpointingLatency({record(1.0, {1})}, truth), 0.0);
}

TEST(ApplyThreshold, RethresholdsFromScores) {
  AlarmSeries series = {record(1.0, {0, 0}, {10.0, 70.0})};
  const AlarmSeries at60 = applyThreshold(series, 60.0);
  EXPECT_DOUBLE_EQ(at60[0].flags[0], 0.0);
  EXPECT_DOUBLE_EQ(at60[0].flags[1], 1.0);
  const AlarmSeries at5 = applyThreshold(series, 5.0);
  EXPECT_DOUBLE_EQ(at5[0].flags[0], 1.0);
}

TEST(ApplyThreshold, MonotoneInThreshold) {
  AlarmSeries series = {record(1.0, {}, {10.0, 35.0, 70.0, 95.0})};
  long prev = 100;
  for (double threshold : {0.0, 20.0, 50.0, 80.0, 120.0}) {
    const auto out = applyThreshold(series, threshold);
    long flagged = 0;
    for (double f : out[0].flags) flagged += f > 0.5 ? 1 : 0;
    EXPECT_LE(flagged, prev);
    prev = flagged;
  }
}

TEST(RequireConsecutive, SuppressesShortStreaks) {
  AlarmSeries series = {
      record(1.0, {1}), record(2.0, {0}), record(3.0, {1}),
      record(4.0, {1}), record(5.0, {1}), record(6.0, {0}),
  };
  const AlarmSeries filtered = requireConsecutive(series, 3);
  EXPECT_DOUBLE_EQ(filtered[0].flags[0], 0.0);
  EXPECT_DOUBLE_EQ(filtered[2].flags[0], 0.0);
  EXPECT_DOUBLE_EQ(filtered[3].flags[0], 0.0);
  EXPECT_DOUBLE_EQ(filtered[4].flags[0], 1.0);  // 3rd consecutive
  EXPECT_DOUBLE_EQ(filtered[5].flags[0], 0.0);
}

TEST(RequireConsecutive, OneIsIdentity) {
  AlarmSeries series = {record(1.0, {1, 0}), record(2.0, {0, 1})};
  const AlarmSeries filtered = requireConsecutive(series, 1);
  EXPECT_DOUBLE_EQ(filtered[0].flags[0], 1.0);
  EXPECT_DOUBLE_EQ(filtered[1].flags[1], 1.0);
}

TEST(RequireConsecutive, PerNodeStreaks) {
  AlarmSeries series = {
      record(1.0, {1, 1}), record(2.0, {1, 0}), record(3.0, {1, 1})};
  const AlarmSeries filtered = requireConsecutive(series, 2);
  EXPECT_DOUBLE_EQ(filtered[1].flags[0], 1.0);  // node 0: 2 in a row
  EXPECT_DOUBLE_EQ(filtered[2].flags[1], 0.0);  // node 1's streak broke
}

TEST(CombineUnion, MatchesWindowsWithinSlack) {
  AlarmSeries a = {record(10.0, {1, 0}), record(20.0, {0, 0})};
  AlarmSeries b = {record(11.0, {0, 1}), record(21.0, {0, 1})};
  const AlarmSeries combined = combineUnion(a, b, 5.0);
  ASSERT_EQ(combined.size(), 2u);
  EXPECT_DOUBLE_EQ(combined[0].flags[0], 1.0);
  EXPECT_DOUBLE_EQ(combined[0].flags[1], 1.0);
  EXPECT_DOUBLE_EQ(combined[1].flags[1], 1.0);
}

TEST(CombineUnion, UnmatchedWindowsSurvive) {
  AlarmSeries a = {record(10.0, {1})};
  AlarmSeries b = {record(100.0, {1})};
  const AlarmSeries combined = combineUnion(a, b, 5.0);
  ASSERT_EQ(combined.size(), 2u);
  EXPECT_DOUBLE_EQ(combined[0].time, 10.0);
  EXPECT_DOUBLE_EQ(combined[1].time, 100.0);
}

TEST(CombineUnion, EmptySeries) {
  AlarmSeries a = {record(10.0, {1})};
  EXPECT_EQ(combineUnion(a, {}).size(), 1u);
  EXPECT_EQ(combineUnion({}, a).size(), 1u);
  EXPECT_TRUE(combineUnion({}, {}).empty());
}

TEST(EvalResult, DegenerateCountsAreSafe) {
  EvalResult r;  // all zero
  EXPECT_DOUBLE_EQ(r.truePositiveRate(), 1.0);
  EXPECT_DOUBLE_EQ(r.trueNegativeRate(), 1.0);
  EXPECT_DOUBLE_EQ(r.falsePositiveRatePct(), 0.0);
}

// Correlated scenarios name several culprits at once; an empty
// `culprits` vector keeps the legacy single-culprit semantics exactly.
TEST(GroundTruth, MultiCulpritMembershipAndActivation) {
  GroundTruth truth;
  truth.culprits = {1, 3};
  truth.faultStart = 100.0;
  EXPECT_TRUE(truth.anyCulprit());
  EXPECT_TRUE(truth.isCulprit(1));
  EXPECT_TRUE(truth.isCulprit(3));
  EXPECT_FALSE(truth.isCulprit(2));
  EXPECT_FALSE(truth.isCulprit(-1));
  // activeAt works without a slaveIndex when culprits are named.
  EXPECT_EQ(truth.slaveIndex, -1);
  EXPECT_TRUE(truth.activeAt(150.0));
  EXPECT_FALSE(truth.activeAt(50.0));
}

TEST(GroundTruth, EmptyCulpritsFallBackToSlaveIndex) {
  GroundTruth truth;
  truth.slaveIndex = 2;
  EXPECT_TRUE(truth.isCulprit(2));
  EXPECT_FALSE(truth.isCulprit(0));
  truth.slaveIndex = -1;
  EXPECT_FALSE(truth.isCulprit(-1));  // fault-free: nobody is a culprit
}

TEST(Evaluate, MultiCulpritCountsEachCulpritNode) {
  // Two culprits {0, 2} of three nodes, one active window: flagging
  // exactly the culprits is 2 TP + 1 TN.
  GroundTruth truth;
  truth.culprits = {0, 2};
  truth.faultStart = 0.0;
  const AlarmSeries series = {record(10.0, {1, 0, 1})};
  const EvalResult r = evaluate(series, truth);
  EXPECT_EQ(r.tp, 2);
  EXPECT_EQ(r.tn, 1);
  EXPECT_EQ(r.fp, 0);
  EXPECT_EQ(r.fn, 0);
  // Flagging only an innocent node is 2 FN + 1 FP.
  const EvalResult miss = evaluate({record(10.0, {0, 1, 0})}, truth);
  EXPECT_EQ(miss.fn, 2);
  EXPECT_EQ(miss.fp, 1);
  EXPECT_EQ(miss.tp, 0);
  EXPECT_EQ(miss.tn, 0);
}

TEST(Latency, AnyCulpritFlagCountsForMultiCulpritTruth) {
  GroundTruth truth;
  truth.culprits = {1, 2};
  truth.faultStart = 100.0;
  // Window at 130 flags only culprit 2 — that is a localization.
  const AlarmSeries series = {record(90.0, {0, 1, 0}),
                              record(130.0, {0, 0, 1}),
                              record(160.0, {0, 1, 0})};
  EXPECT_DOUBLE_EQ(fingerpointingLatency(series, truth), 30.0);
}

}  // namespace
}  // namespace asdf::analysis
