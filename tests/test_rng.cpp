#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace asdf {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(10);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniformInt(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniformInt(42, 42), 42);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(12);
  const int n = 200000;
  double sum = 0.0;
  double sumSq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sumSq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumSq / n, 1.0, 0.03);
}

TEST(Rng, GaussianShiftScale) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(14);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double e = rng.exponential(0.5);
    EXPECT_GE(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(15);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ParetoAboveScale) {
  Rng rng(16);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(17);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(18);
  Rng child = parent.split();
  // The child stream should not be a shifted copy of the parent's.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformStatisticsHoldAcrossSeeds) {
  Rng rng(GetParam());
  const int n = 20000;
  double sum = 0.0;
  double mn = 1.0;
  double mx = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    mn = std::min(mn, u);
    mx = std::max(mx, u);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_LT(mn, 0.01);
  EXPECT_GT(mx, 0.99);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 1234567ULL,
                                           0xDEADBEEFULL,
                                           0xFFFFFFFFFFFFFFFFULL));

}  // namespace
}  // namespace asdf
