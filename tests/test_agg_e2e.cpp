// The aggregation tier over real sockets, end to end: leaf asdf_rpcd
// daemons -> AggregatorNode regions -> the tiered root merge
// (DESIGN.md §12). Two contracts:
//
//   * a healthy tiered live deployment produces byte-for-byte the
//     black-box alarms a sim-transport run of the same seeded workload
//     produces (the tier extends the §9 sim/live equivalence
//     contract), and an equivalent white-box verdict — same
//     localization, no spurious degradation events. White-box rows
//     pass through the log-sync barrier, whose drop set depends on
//     which nodes it spans, so a region barrier legitimately releases
//     seconds the flat global barrier drops; byte-identity is only
//     promised where both topologies see the same barrier (the sim
//     tiered path, test_tiered.cpp).
//
//   * killing an aggregator mid-run degrades — its whole region merges
//     as unmonitorable, quorum gating keeps the analysis valid, and a
//     fault in a surviving region is still localized.
//
// Each aggregator gets its own leaf daemon hosting the full-cluster
// simulation (same seed): daemons advance their sim lazily to each
// request's virtual time, so regions with independent wall-clock skew
// must not share one daemon's clock.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "harness/aggregator.h"
#include "harness/experiment.h"
#include "modules/modules.h"
#include "net/rpcd_server.h"

namespace asdf::harness {
namespace {

struct LeafFixture {
  explicit LeafFixture(net::RpcdOptions opts) : server(opts) {
    thread = std::thread([this] { server.run(); });
  }
  ~LeafFixture() {
    server.stop();
    if (thread.joinable()) thread.join();
  }
  net::RpcdServer server;
  std::thread thread;
};

struct AggFixture {
  AggFixture(const AggregatorOptions& opts,
             const analysis::BlackBoxModel& model)
      : node(opts, model) {
    thread = std::thread([this] { node.run(); });
  }
  ~AggFixture() {
    node.stop();
    if (thread.joinable()) thread.join();
  }
  AggregatorNode node;
  std::thread thread;
};

ExperimentSpec baseSpec(int slaves) {
  ExperimentSpec spec;
  spec.slaves = slaves;
  spec.duration = 300.0;
  spec.trainDuration = 180.0;
  spec.seed = 4242;
  spec.fault.type = faults::FaultType::kCpuHog;
  spec.fault.node = 2;
  spec.fault.startTime = 120.0;
  spec.pipeline.quietPrint = true;
  spec.realtimeScale = 150.0;  // 300 virtual seconds in ~2 s wall
  // Generous per-attempt timeout: a loaded CI machine must not turn a
  // healthy localhost fetch into a divergence.
  spec.rpcPolicy.timeoutSeconds = 5.0;
  return spec;
}

std::string endpointOf(const LeafFixture& leaf) {
  return "127.0.0.1:" + std::to_string(leaf.server.port());
}

void expectSeriesEqual(const analysis::AlarmSeries& a,
                       const analysis::AlarmSeries& b, const char* which) {
  ASSERT_EQ(a.size(), b.size()) << which;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time, b[i].time) << which << " record " << i;
    EXPECT_EQ(a[i].flags, b[i].flags) << which << " record " << i;
    EXPECT_EQ(a[i].scores, b[i].scores) << which << " record " << i;
    EXPECT_EQ(a[i].health, b[i].health) << which << " record " << i;
  }
}

// The tentpole contract at the tier level: same seed, same fault, same
// alarms — whether the windows traveled through in-process DAG edges
// or through two real aggregator daemons on loopback sockets.
TEST(AggE2E, TieredLiveMatchesSimByteForByte) {
  modules::registerBuiltinModules();

  ExperimentSpec spec = baseSpec(/*slaves=*/4);
  // The sim reference uses the fault-tolerant client like the
  // aggregators do, so per-alarm health vectors are present in both.
  ExperimentSpec simSpec = spec;
  simSpec.faultTolerantRpc = true;
  const analysis::BlackBoxModel model = trainModel(spec);
  const ExperimentResult sim = runExperiment(simSpec, model);

  net::RpcdOptions leafOpts;
  leafOpts.port = 0;
  leafOpts.slaves = spec.slaves;
  leafOpts.seed = spec.seed;
  leafOpts.fault = spec.fault;
  LeafFixture leaf1(leafOpts);
  LeafFixture leaf2(leafOpts);

  AggregatorOptions a1;
  a1.base = spec;
  a1.firstNode = 1;
  a1.groupSize = 2;
  a1.leafEndpoints = {endpointOf(leaf1)};
  AggregatorOptions a2 = a1;
  a2.firstNode = 3;
  a2.leafEndpoints = {endpointOf(leaf2)};
  AggFixture agg1(a1, model);
  AggFixture agg2(a2, model);

  ExperimentSpec rootSpec = spec;
  rootSpec.transport = TransportMode::kLive;
  rootSpec.tiered = true;
  rootSpec.tierGroups = {2, 2};
  rootSpec.aggEndpoints = {"127.0.0.1:" + std::to_string(agg1.node.port()),
                           "127.0.0.1:" + std::to_string(agg2.node.port())};
  const ExperimentResult live = runExperiment(rootSpec, model);

  expectSeriesEqual(sim.blackBox, live.blackBox, "black-box");

  // White-box: ordinal pairing at the root means the series length is
  // the shortest region's window count and each window's time is the
  // slowest region's. Regional barriers may drop one or two fewer
  // seconds than the global one, so allow a short tail, and require
  // the same healthy shape: every node monitored in every window, no
  // degradation events.
  ASSERT_FALSE(live.whiteBox.empty());
  EXPECT_LE(live.whiteBox.size(), sim.whiteBox.size());
  EXPECT_GE(live.whiteBox.size() + 2, sim.whiteBox.size());
  for (std::size_t i = 1; i < live.whiteBox.size(); ++i) {
    EXPECT_LT(live.whiteBox[i - 1].time, live.whiteBox[i].time);
  }
  for (const analysis::AlarmRecord& r : live.whiteBox) {
    ASSERT_EQ(r.health.size(), 4u);
    for (double h : r.health) EXPECT_EQ(h, 0.0);
  }
  EXPECT_TRUE(live.monitoringEvents.empty());

  // And the white-box verdict is the sim's: the fault is localized
  // with the same order of latency.
  const ExperimentSummary simSummary = summarize(sim);
  const ExperimentSummary liveSummary = summarize(live);
  ASSERT_GE(simSummary.whiteBox.latencySeconds, 0.0);
  ASSERT_GE(liveSummary.whiteBox.latencySeconds, 0.0);
  EXPECT_NEAR(liveSummary.whiteBox.latencySeconds,
              simSummary.whiteBox.latencySeconds,
              2.0 * spec.pipeline.windowSlide);

  // Tier-2 accounting: one summary channel per analysis, one connect
  // per aggregator, tagged tier 2.
  int tier2 = 0;
  for (const RpcChannelReport& ch : live.rpcChannels) {
    EXPECT_EQ(ch.tier, 2) << ch.name;
    EXPECT_EQ(ch.connects, 2) << ch.name;
    EXPECT_GT(ch.calls, 0) << ch.name;
    ++tier2;
  }
  EXPECT_EQ(tier2, 2);

  EXPECT_GE(liveSummary.combined.latencySeconds, 0.0);
}

// Kill one aggregator mid-run: its region merges as all-unmonitorable,
// the explicit quorum keeps the surviving region's analysis valid, and
// the fault (in the surviving region) is still localized.
TEST(AggE2E, DegradedAnalysisSurvivesAggregatorDeath) {
  modules::registerBuiltinModules();

  ExperimentSpec spec = baseSpec(/*slaves=*/6);
  spec.fault.node = 2;  // group 1: survives

  const analysis::BlackBoxModel model = trainModel(spec);

  net::RpcdOptions leafOpts;
  leafOpts.port = 0;
  leafOpts.slaves = spec.slaves;
  leafOpts.seed = spec.seed;
  leafOpts.fault = spec.fault;
  LeafFixture leaf1(leafOpts);
  LeafFixture leaf2(leafOpts);

  AggregatorOptions a1;
  a1.base = spec;
  a1.firstNode = 1;
  a1.groupSize = 3;
  a1.leafEndpoints = {endpointOf(leaf1)};
  AggregatorOptions a2 = a1;
  a2.firstNode = 4;
  a2.leafEndpoints = {endpointOf(leaf2)};
  AggFixture agg1(a1, model);
  auto agg2 = std::make_unique<AggFixture>(a2, model);

  ExperimentSpec rootSpec = spec;
  rootSpec.transport = TransportMode::kLive;
  rootSpec.tiered = true;
  rootSpec.tierGroups = {3, 3};
  rootSpec.pipeline.quorum = 3;  // sub-majority: 3 of 6 survivors suffice
  // Short per-fetch timeout so the dead region is detected quickly.
  rootSpec.rpcPolicy.timeoutSeconds = 1.0;
  rootSpec.aggEndpoints = {
      "127.0.0.1:" + std::to_string(agg1.node.port()),
      "127.0.0.1:" + std::to_string(agg2->node.port())};

  // Kill region 2 at ~60% of the run; destruction closes its sockets,
  // so the root sees refused connections, not timeouts.
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1200));
    agg2.reset();
  });
  const ExperimentResult live = runExperiment(rootSpec, model);
  killer.join();

  // The root kept producing windows for the whole run, and flagged the
  // region's death as a degradation transition, not below-quorum.
  ASSERT_FALSE(live.blackBox.empty());
  bool sawRegionDown = false;
  for (const core::MonitoringEvent& ev : live.monitoringEvents) {
    if (ev.unmonitorable.size() == 3 && !ev.belowQuorum) {
      EXPECT_EQ(ev.unmonitorable[0], "slave4");
      EXPECT_EQ(ev.unmonitorable[2], "slave6");
      EXPECT_EQ(ev.survivors, 3);
      sawRegionDown = true;
    }
  }
  EXPECT_TRUE(sawRegionDown);

  // Late windows carry the dead region as health-2 and still score the
  // survivors.
  const analysis::AlarmRecord& last = live.blackBox.back();
  ASSERT_EQ(last.health.size(), 6u);
  EXPECT_EQ(last.health[3], 2.0);
  EXPECT_EQ(last.health[5], 2.0);

  // And the fault in the surviving region is localized.
  const ExperimentSummary summary = summarize(live);
  EXPECT_GE(summary.combined.latencySeconds, 0.0);
}

}  // namespace
}  // namespace asdf::harness
