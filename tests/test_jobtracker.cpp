// Scheduler-level unit tests: heartbeat-driven assignment, data
// locality, slowstart, retries, give-up, and the mitigation blacklist.
#include "hadoop/jobtracker.h"

#include <gtest/gtest.h>

#include "hadoop/cluster.h"
#include "sim/engine.h"

namespace asdf::hadoop {
namespace {

class JobTrackerTest : public ::testing::Test {
 protected:
  JobTrackerTest() : cluster_(makeParams(), 77, engine_) {
    // No cluster_.start(): we drive heartbeats by hand for precise
    // scheduling assertions.
  }

  static HadoopParams makeParams() {
    HadoopParams p;
    p.slaveCount = 4;
    return p;
  }

  JobSpec spec(double inputBytes = 128.0e6, int reduces = 2) {
    JobSpec s;
    s.inputBytes = inputBytes;  // 8 blocks at 16 MB
    s.numReduces = reduces;
    s.mapOutputRatio = 0.5;
    return s;
  }

  sim::SimEngine engine_;
  Cluster cluster_;
};

TEST_F(JobTrackerTest, HeartbeatFillsFreeSlots) {
  JobTracker& jt = cluster_.jobTracker();
  jt.submit(spec(256.0e6), 0.0);  // 16 maps
  const int assigned = jt.processHeartbeat(cluster_.taskTracker(1), 1.0);
  EXPECT_EQ(assigned, cluster_.params().mapSlots);  // map slots filled
  EXPECT_EQ(cluster_.taskTracker(1).runningMapCount(),
            cluster_.params().mapSlots);
  EXPECT_EQ(cluster_.taskTracker(1).freeMapSlots(), 0);
}

TEST_F(JobTrackerTest, PrefersDataLocalMaps) {
  JobTracker& jt = cluster_.jobTracker();
  Job& job = jt.submit(spec(256.0e6), 0.0);
  jt.processHeartbeat(cluster_.taskTracker(2), 1.0);
  // Every map assigned to TT2 whose input block has a replica there
  // must indeed be local if any local candidate existed in the scan
  // window; verify assignments are local when possible.
  int local = 0;
  int total = 0;
  for (const auto& attempt : cluster_.taskTracker(2).running()) {
    if (!attempt->isMap()) continue;
    ++total;
    const auto& replicas =
        cluster_.nameNode().replicas(job.inputBlock(attempt->taskIndex()));
    if (std::find(replicas.begin(), replicas.end(), NodeId{2}) !=
        replicas.end()) {
      ++local;
    }
  }
  ASSERT_GT(total, 0);
  // With 16 blocks and 3 replicas over 4 slaves, local work exists
  // with overwhelming probability; all assignments should be local.
  EXPECT_EQ(local, total);
}

TEST_F(JobTrackerTest, ReduceSlowstartHoldsReducesBack) {
  JobTracker& jt = cluster_.jobTracker();
  Job& job = jt.submit(spec(256.0e6, 4), 0.0);
  jt.processHeartbeat(cluster_.taskTracker(1), 1.0);
  EXPECT_EQ(cluster_.taskTracker(1).runningReduceCount(), 0);
  // After a completed map, reduces flow.
  job.completeMap(0, 1, 10.0);
  jt.processHeartbeat(cluster_.taskTracker(2), 2.0);
  EXPECT_GT(cluster_.taskTracker(2).runningReduceCount(), 0);
}

TEST_F(JobTrackerTest, NoWorkMeansNoAssignment) {
  JobTracker& jt = cluster_.jobTracker();
  EXPECT_EQ(jt.processHeartbeat(cluster_.taskTracker(1), 1.0), 0);
}

TEST_F(JobTrackerTest, BlacklistedTrackerGetsNothing) {
  JobTracker& jt = cluster_.jobTracker();
  jt.submit(spec(256.0e6), 0.0);
  jt.blacklistNode(1);
  EXPECT_TRUE(jt.isBlacklisted(1));
  EXPECT_FALSE(jt.isBlacklisted(2));
  EXPECT_EQ(jt.processHeartbeat(cluster_.taskTracker(1), 1.0), 0);
  EXPECT_GT(jt.processHeartbeat(cluster_.taskTracker(2), 1.0), 0);
  EXPECT_EQ(jt.blacklistedCount(), 1u);
}

TEST_F(JobTrackerTest, BlacklistedTrackerStillReports) {
  JobTracker& jt = cluster_.jobTracker();
  Job& job = jt.submit(spec(256.0e6), 0.0);
  jt.processHeartbeat(cluster_.taskTracker(1), 1.0);
  ASSERT_GT(cluster_.taskTracker(1).runningMapCount(), 0);
  jt.blacklistNode(1);
  // Let the running attempts finish; their completions must still be
  // absorbed through the blacklisted tracker's heartbeat.
  for (int t = 1; t <= 120 && job.completedMaps() == 0; ++t) {
    engine_.runUntil(t);
    cluster_.node(1).beginTick();
    cluster_.taskTracker(1).requestResources(t);
    cluster_.node(1).finalizeResources();
    cluster_.taskTracker(1).advance(t, 1.0);
    cluster_.node(1).endTick(t);
    jt.processHeartbeat(cluster_.taskTracker(1), t);
  }
  EXPECT_GT(job.completedMaps(), 0);
  EXPECT_EQ(cluster_.taskTracker(1).runningMapCount(), 0)
      << "no new work may flow to a blacklisted node";
}

TEST_F(JobTrackerTest, FailedTaskIsRetried) {
  JobTracker& jt = cluster_.jobTracker();
  Job& job = jt.submit(spec(), 0.0);
  // Simulate a failure report for map 0 from node 3.
  job.pendingMaps().erase(job.pendingMaps().begin());  // 0 was assigned
  job.noteAttemptStarted(true, 0);
  job.noteAttemptEnded(true, 0);
  TaskTracker::Report::Entry entry{job.id(), true, 0, /*failed=*/true,
                                   12.0, 3};
  // applyReport is private; drive it through a crafted tracker report.
  // Simplest public path: re-queue via the same rules the JT applies.
  job.noteFailure(true, 0);
  job.pendingMaps().push_front(0);
  EXPECT_EQ(job.failureCount(true, 0), 1);
  EXPECT_EQ(job.pendingMaps().front(), 0);
  (void)entry;
}

TEST_F(JobTrackerTest, MapsSpreadAcrossTrackers) {
  JobTracker& jt = cluster_.jobTracker();
  jt.submit(spec(512.0e6), 0.0);  // 32 maps
  for (NodeId n = 1; n <= 4; ++n) {
    jt.processHeartbeat(cluster_.taskTracker(n), 1.0);
  }
  for (NodeId n = 1; n <= 4; ++n) {
    EXPECT_EQ(cluster_.taskTracker(n).runningMapCount(),
              cluster_.params().mapSlots)
        << "tracker " << n;
  }
}

TEST_F(JobTrackerTest, FifoAcrossJobs) {
  JobTracker& jt = cluster_.jobTracker();
  Job& first = jt.submit(spec(64.0e6), 0.0);  // 4 maps
  jt.submit(spec(64.0e6), 0.0);
  // First heartbeat drains job 1's maps before touching job 2.
  jt.processHeartbeat(cluster_.taskTracker(1), 1.0);
  int fromFirst = 0;
  for (const auto& attempt : cluster_.taskTracker(1).running()) {
    if (attempt->job().id() == first.id()) ++fromFirst;
  }
  EXPECT_EQ(fromFirst, cluster_.params().mapSlots);
}

}  // namespace
}  // namespace asdf::hadoop
