// TaskAttempt phase-machine unit tests: driven tick by tick against a
// hand-operated cluster (no scheduler), asserting phase progression,
// resource consumption, log emission, and fault latching.
#include "hadoop/task.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "hadoop/cluster.h"
#include "sim/engine.h"

namespace asdf::hadoop {
namespace {

class TaskTest : public ::testing::Test {
 protected:
  TaskTest() : cluster_(makeParams(), 31, engine_) {}

  static HadoopParams makeParams() {
    HadoopParams p;
    p.slaveCount = 4;
    return p;
  }

  Job& submitJob(double inputBytes = 32.0e6, int reduces = 2,
                 double mapOutputRatio = 0.5) {
    JobSpec spec;
    spec.inputBytes = inputBytes;
    spec.numReduces = reduces;
    spec.mapCpuPerByte = 5.0e-7;  // 8 s of compute per 16 MB block
    spec.mapOutputRatio = mapOutputRatio;
    spec.reduceCpuPerByte = 1.0e-7;
    spec.outputRatio = 0.25;
    return cluster_.jobTracker().submit(spec, 0.0);
  }

  /// One manual tick of the whole cluster with a single live attempt.
  TaskOutcome tick(TaskAttempt& attempt) {
    const SimTime now = engine_.now() + 1.0;
    engine_.runUntil(now);
    for (NodeId n = 0; n <= 4; ++n) cluster_.node(n).beginTick();
    attempt.requestResources(now);
    for (NodeId n = 0; n <= 4; ++n) cluster_.node(n).finalizeResources();
    const TaskOutcome outcome = attempt.advance(now, 1.0);
    for (NodeId n = 0; n <= 4; ++n) cluster_.node(n).endTick(now);
    return outcome;
  }

  /// Ticks until completion/failure or the limit.
  TaskOutcome runToCompletion(TaskAttempt& attempt, int maxTicks) {
    for (int i = 0; i < maxTicks; ++i) {
      const TaskOutcome outcome = tick(attempt);
      if (outcome != TaskOutcome::kRunning) return outcome;
    }
    return TaskOutcome::kRunning;
  }

  static bool logContains(Node& node, const std::string& needle) {
    for (std::size_t i = 0; i < node.ttLog().lineCount(); ++i) {
      if (contains(node.ttLog().line(i), needle)) return true;
    }
    for (std::size_t i = 0; i < node.dnLog().lineCount(); ++i) {
      if (contains(node.dnLog().line(i), needle)) return true;
    }
    return false;
  }

  sim::SimEngine engine_;
  Cluster cluster_;
};

TEST_F(TaskTest, MapRunsThroughAllPhasesAndCompletes) {
  Job& job = submitJob();
  TaskAttempt attempt(cluster_, job, /*isMap=*/true, 0, 0,
                      cluster_.node(1));
  attempt.start(0.0);
  EXPECT_TRUE(logContains(cluster_.node(1), "LaunchTaskAction"));
  EXPECT_DOUBLE_EQ(attempt.progressFraction(), 0.0);

  const TaskOutcome outcome = runToCompletion(attempt, 60);
  EXPECT_EQ(outcome, TaskOutcome::kCompleted);
  EXPECT_NEAR(attempt.progressFraction(), 1.0, 1e-6);
  EXPECT_TRUE(logContains(cluster_.node(1),
                          attempt.attemptId() + " is done."));
  // Compute dominates: a 16 MB block at 5e-7 cpu-s/B is ~8 s.
  EXPECT_GE(attempt.runtime(engine_.now()), 8.0);
}

TEST_F(TaskTest, MapReadEmitsBlockServeLogs) {
  Job& job = submitJob();
  TaskAttempt attempt(cluster_, job, true, 0, 0, cluster_.node(1));
  attempt.start(0.0);
  runToCompletion(attempt, 60);
  const long block = job.inputBlock(0);
  bool served = false;
  for (NodeId n = 1; n <= 4; ++n) {
    if (logContains(cluster_.node(n),
                    strformat("Served block blk_%ld", block))) {
      served = true;
    }
  }
  EXPECT_TRUE(served);
}

TEST_F(TaskTest, MapProgressIsMonotone) {
  Job& job = submitJob();
  TaskAttempt attempt(cluster_, job, true, 0, 0, cluster_.node(2));
  attempt.start(0.0);
  double prev = 0.0;
  for (int i = 0; i < 40; ++i) {
    if (tick(attempt) != TaskOutcome::kRunning) break;
    const double p = attempt.progressFraction();
    EXPECT_GE(p, prev - 1e-9);
    EXPECT_LE(p, 1.0 + 1e-9);
    prev = p;
  }
}

TEST_F(TaskTest, HungMapNeverCompletesButBurnsCpu) {
  Job& job = submitJob();
  cluster_.node(1).faults().mapHang = true;
  TaskAttempt attempt(cluster_, job, true, 0, 0, cluster_.node(1));
  attempt.start(0.0);
  EXPECT_EQ(runToCompletion(attempt, 120), TaskOutcome::kRunning);
  EXPECT_TRUE(attempt.hung());
  // The infinite loop shows in the node's CPU counters.
  EXPECT_GT(cluster_.node(1).sadcCollect().node[metrics::kCpuUserPct],
            15.0);
}

TEST_F(TaskTest, ReduceWalksCopySortWrite) {
  Job& job = submitJob(32.0e6, 2, 0.5);
  // Publish all map output so the copy phase can finish.
  job.completeMap(0, 2, 10.0);
  job.completeMap(1, 3, 10.0);
  ASSERT_TRUE(job.mapsComplete());

  TaskAttempt attempt(cluster_, job, /*isMap=*/false, 0, 0,
                      cluster_.node(1));
  attempt.start(0.0);
  const TaskOutcome outcome = runToCompletion(attempt, 200);
  EXPECT_EQ(outcome, TaskOutcome::kCompleted);
  EXPECT_TRUE(logContains(cluster_.node(1), "reduce > copy"));
  EXPECT_TRUE(logContains(cluster_.node(1), "reduce > sort"));
  EXPECT_TRUE(logContains(cluster_.node(1), "reduce > reduce"));
  // The output write ran the HDFS pipeline: Receiving/Received blocks.
  bool wrote = false;
  for (NodeId n = 1; n <= 4; ++n) {
    if (logContains(cluster_.node(n), "Receiving block")) wrote = true;
  }
  EXPECT_TRUE(wrote);
  // Output blocks were registered for cleanup.
  EXPECT_FALSE(job.outputBlocks().empty());
}

TEST_F(TaskTest, ReduceCopyFailureFaultKillsAttempt) {
  Job& job = submitJob(64.0e6, 2, 1.0);
  for (int m = 0; m < job.numMaps(); ++m) job.completeMap(m, 2, 10.0);
  cluster_.node(1).faults().reduceCopyFail = true;
  TaskAttempt attempt(cluster_, job, false, 0, 0, cluster_.node(1));
  attempt.start(0.0);
  const TaskOutcome outcome = runToCompletion(attempt, 300);
  EXPECT_EQ(outcome, TaskOutcome::kFailed);
  // The doomed attempt lingered in the copy phase (HADOOP-1152's
  // manifestation window) before dying.
  EXPECT_GE(attempt.runtime(engine_.now()), 45.0);
  EXPECT_TRUE(logContains(cluster_.node(1), "copy failed"));
  EXPECT_TRUE(logContains(cluster_.node(1), "failed to rename map output"));
}

TEST_F(TaskTest, ReduceSortHangFaultFreezesAttempt) {
  Job& job = submitJob(32.0e6, 2, 0.5);
  for (int m = 0; m < job.numMaps(); ++m) job.completeMap(m, 2, 10.0);
  cluster_.node(1).faults().reduceSortHang = true;
  TaskAttempt attempt(cluster_, job, false, 0, 0, cluster_.node(1));
  attempt.start(0.0);
  EXPECT_EQ(runToCompletion(attempt, 300), TaskOutcome::kRunning);
  EXPECT_TRUE(attempt.hung());
  EXPECT_TRUE(logContains(cluster_.node(1), "reduce > sort"));
  EXPECT_FALSE(logContains(cluster_.node(1), "reduce > reduce"));
}

TEST_F(TaskTest, KillEmitsKillActionAndClosesLogs) {
  Job& job = submitJob();
  TaskAttempt attempt(cluster_, job, true, 0, 0, cluster_.node(1));
  attempt.start(0.0);
  tick(attempt);  // mid-read
  attempt.kill(engine_.now());
  EXPECT_TRUE(logContains(cluster_.node(1), "KillTaskAction"));
  // The source DataNode's read state was closed; re-parsing the log
  // should leave nothing open.
  const long block = job.inputBlock(0);
  (void)block;
}

TEST_F(TaskTest, PacketLossSlowsRemoteRead) {
  Job& job = submitJob();
  // Force a remote read: host a map on a node with no local replica.
  NodeId remoteHost = kInvalidNode;
  const auto& replicas = cluster_.nameNode().replicas(job.inputBlock(0));
  for (NodeId n = 1; n <= 4; ++n) {
    if (std::find(replicas.begin(), replicas.end(), n) == replicas.end()) {
      remoteHost = n;
      break;
    }
  }
  ASSERT_NE(remoteHost, kInvalidNode) << "3 replicas over 4 nodes";

  // Healthy remote read duration.
  TaskAttempt healthy(cluster_, job, true, 0, 0,
                      cluster_.node(remoteHost));
  healthy.start(0.0);
  int healthyTicks = 0;
  while (runToCompletion(healthy, 1) == TaskOutcome::kRunning &&
         healthyTicks < 100) {
    ++healthyTicks;
  }

  // Same read with 50% loss on the host NIC.
  cluster_.node(remoteHost).nic().setLossRate(0.5);
  TaskAttempt lossy(cluster_, job, true, 1, 0, cluster_.node(remoteHost));
  lossy.start(engine_.now());
  int lossyTicks = 0;
  while (runToCompletion(lossy, 1) == TaskOutcome::kRunning &&
         lossyTicks < 2000) {
    ++lossyTicks;
  }
  // Note: map 1's block may be host-local; only compare when it isn't.
  const auto& replicas1 =
      cluster_.nameNode().replicas(job.inputBlock(1));
  if (std::find(replicas1.begin(), replicas1.end(), remoteHost) ==
      replicas1.end()) {
    EXPECT_GT(lossyTicks, healthyTicks * 3);
  }
}

TEST_F(TaskTest, AttemptIdsFollowFigure5) {
  Job& job = submitJob();
  TaskAttempt map(cluster_, job, true, 7, 1, cluster_.node(1));
  EXPECT_EQ(map.attemptId(),
            strformat("task_%04d_m_000007_1", job.id()));
  TaskAttempt reduce(cluster_, job, false, 0, 2, cluster_.node(1));
  EXPECT_EQ(reduce.attemptId(),
            strformat("task_%04d_r_000000_2", job.id()));
}

}  // namespace
}  // namespace asdf::hadoop
