// Queryable time-series store (DESIGN.md §14): codec round trips,
// compaction against a live-written archive, and the central property:
// a Store::scan at raw resolution is bit-exact against extracting the
// same range from a full ArchiveReader replay, and rollup buckets
// equal recomputing min/max/mean/count from the raw points under the
// per-segment partial-sum merge the format defines — across random
// segment boundaries, interleaved checkpoints, a torn final segment,
// and every mix of compacted / uncompacted segments.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "archive/reader.h"
#include "archive/writer.h"
#include "common/rng.h"
#include "metrics/sadc.h"
#include "rpc/payloads.h"
#include "tsdb/compactor.h"
#include "tsdb/format.h"
#include "tsdb/store.h"

namespace asdf::tsdb {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

std::vector<std::uint8_t> readFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void writeFileBytes(const std::string& path,
                    const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Deterministic, tick-varying metric value for (node, metric, tick).
double metricValue(NodeId node, std::uint32_t metric, long tick) {
  return static_cast<double>(node) * 1000.0 +
         static_cast<double>(metric) * 1.5 +
         0.001 * static_cast<double>((tick * 7 + metric) % 113);
}

/// A decodable sadc snapshot payload whose flattened vector is
/// metricValue(node, m, tick) at every index m.
std::vector<std::uint8_t> snapshotPayload(NodeId node, double now,
                                          long tick) {
  std::vector<double> nodeVec(metrics::kNodeMetricCount);
  std::vector<double> nicVec(metrics::kNicMetricCount);
  for (std::uint32_t m = 0; m < metrics::kNodeMetricCount; ++m) {
    nodeVec[m] = metricValue(node, m, tick);
  }
  for (std::uint32_t m = 0; m < metrics::kNicMetricCount; ++m) {
    nicVec[m] = metricValue(
        node, static_cast<std::uint32_t>(metrics::kNodeMetricCount) + m,
        tick);
  }
  rpc::Encoder enc;
  enc.putDouble(now);
  enc.putDoubleVector(nodeVec);
  enc.putDoubleVector(nicVec);
  enc.putU32(0);  // no per-process vectors
  return std::vector<std::uint8_t>(enc.bytes().begin(), enc.bytes().end());
}

archive::ArchiveMeta testMeta(int slaves) {
  archive::ArchiveMeta meta;
  meta.seed = 7;
  meta.slaves = slaves;
  meta.source = "sim";
  meta.duration = 200.0;
  return meta;
}

/// Writes `ticks` collection rounds (1 s apart, `nodes` sadc samples
/// each) through the ArchiveWriter. Small segments force rotation at
/// irregular record boundaries; checkpointSeconds interleaves
/// checkpoint frames. When `tear`, the final segment is abandoned
/// .open with a torn trailing record appended.
void writeArchive(const std::string& dir, int nodes, long ticks,
                  std::size_t segmentBytes, double checkpointSeconds,
                  bool tear) {
  archive::ArchiveWriterOptions opts;
  opts.dir = dir;
  opts.maxSegmentBytes = segmentBytes;
  opts.maxSegmentSeconds = 1.0e18;
  opts.checkpointSeconds = checkpointSeconds;
  archive::ArchiveWriter writer(opts, testMeta(nodes));
  for (long t = 0; t < ticks; ++t) {
    for (NodeId n = 1; n <= nodes; ++n) {
      const std::vector<std::uint8_t> payload =
          snapshotPayload(n, static_cast<double>(t), t);
      rpc::CollectSample s;
      s.kind = rpc::CollectKind::kSadc;
      s.node = n;
      s.now = static_cast<double>(t);
      s.watermark = s.now;
      s.attempts = 1;
      s.ok = true;
      s.payload = payload.data();
      s.payloadSize = payload.size();
      writer.onSample(s);
    }
  }
  if (tear) {
    writer.abandonForTest();
    // A torn tail: half a frame header dangling off the .open segment.
    for (const auto& entry : fs::directory_iterator(dir)) {
      const std::string p = entry.path().string();
      if (p.size() > 5 && p.substr(p.size() - 5) == ".open") {
        std::ofstream out(p, std::ios::binary | std::ios::app);
        const char junk[7] = {0x41, 0x53, 0x44, 0x46, 0x00, 0x01, 0x00};
        out.write(junk, sizeof(junk));
      }
    }
  } else {
    writer.close();
  }
}

/// Reference raw extraction: full ArchiveReader load, every sadc
/// payload decoded, filtered to (node, metric index, [from, to]).
std::vector<RawPoint> refRawPoints(const archive::ArchiveReader& reader,
                                   NodeId node, std::uint32_t metric,
                                   double from, double to) {
  std::vector<RawPoint> out;
  for (const archive::SampleRecord& rec : reader.records()) {
    if (rec.kind != rpc::CollectKind::kSadc || !rec.ok ||
        rec.node != node || rec.now < from || rec.now > to) {
      continue;
    }
    rpc::Decoder dec(rec.payload);
    const metrics::SadcSnapshot snap = rpc::decodeSnapshot(dec);
    const std::vector<double> values = metrics::flattenNodeVector(snap);
    out.push_back({rec.now, values[metric]});
  }
  return out;
}

/// Reference rollup: per-segment accumulation merged in segment order
/// — the format's definition, mirrored independently of the store.
std::vector<Bucket> refBuckets(const archive::ArchiveReader& reader,
                               NodeId node, std::uint32_t metric,
                               std::uint32_t level, double from, double to) {
  std::vector<Bucket> merged;
  std::size_t cursor = 0;
  for (const archive::SegmentInfo& seg : reader.segments()) {
    std::vector<Bucket> segBuckets;
    for (std::size_t i = 0; i < static_cast<std::size_t>(seg.records);
         ++i) {
      const archive::SampleRecord& rec = reader.records()[cursor + i];
      if (rec.kind != rpc::CollectKind::kSadc || !rec.ok ||
          rec.node != node) {
        continue;
      }
      rpc::Decoder dec(rec.payload);
      const metrics::SadcSnapshot snap = rpc::decodeSnapshot(dec);
      const std::vector<double> values = metrics::flattenNodeVector(snap);
      accumulateBucket(segBuckets, level, rec.now, values[metric]);
    }
    cursor += static_cast<std::size_t>(seg.records);
    std::vector<Bucket> inRange;
    for (const Bucket& b : segBuckets) {
      const double start = b.startTime(level);
      if (start <= to && start + static_cast<double>(level) > from) {
        inRange.push_back(b);
      }
    }
    mergeBuckets(merged, inRange);
  }
  return merged;
}

void expectPointsBitExact(const std::vector<RawPoint>& got,
                          const std::vector<RawPoint>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    std::uint64_t gb, wb;
    std::memcpy(&gb, &got[i].v, 8);
    std::memcpy(&wb, &want[i].v, 8);
    EXPECT_EQ(got[i].t, want[i].t) << "point " << i;
    EXPECT_EQ(gb, wb) << "point " << i << " value bits";
  }
}

void expectBucketsBitExact(const std::vector<Bucket>& got,
                           const std::vector<Bucket>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].index, want[i].index) << "bucket " << i;
    EXPECT_EQ(got[i].min, want[i].min) << "bucket " << i;
    EXPECT_EQ(got[i].max, want[i].max) << "bucket " << i;
    EXPECT_EQ(got[i].count, want[i].count) << "bucket " << i;
    std::uint64_t gb, wb;
    std::memcpy(&gb, &got[i].sum, 8);
    std::memcpy(&wb, &want[i].sum, 8);
    EXPECT_EQ(gb, wb) << "bucket " << i << " sum bits";
  }
}

TEST(TsdbFormat, VarintRoundTrip) {
  std::vector<std::uint8_t> buf;
  const std::vector<std::uint64_t> values = {
      0, 1, 127, 128, 300, (1ULL << 32) - 1, 1ULL << 32,
      std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t v : values) putVarU64(buf, v);
  std::size_t pos = 0;
  for (std::uint64_t v : values) {
    EXPECT_EQ(getVarU64(buf.data(), buf.size(), pos), v);
  }
  EXPECT_EQ(pos, buf.size());
  // Truncated varint throws instead of reading past the blob.
  std::vector<std::uint8_t> torn = {0x80, 0x80};
  std::size_t tpos = 0;
  EXPECT_THROW(getVarU64(torn.data(), torn.size(), tpos), TsdbError);
}

TEST(TsdbFormat, ZigzagRoundTrip) {
  for (std::int64_t v : {std::int64_t(0), std::int64_t(1), std::int64_t(-1),
                         std::int64_t(123456), std::int64_t(-123456),
                         std::numeric_limits<std::int64_t>::min(),
                         std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(unzigzag(zigzag(v)), v);
  }
}

TEST(TsdbFormat, DoubleColumnBitExact) {
  std::vector<double> values = {0.0,
                                -0.0,
                                1.0,
                                1.0000000001,
                                -3.25e9,
                                5e-324,  // min denormal
                                std::numeric_limits<double>::infinity(),
                                -std::numeric_limits<double>::infinity(),
                                std::numeric_limits<double>::quiet_NaN(),
                                3.141592653589793};
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    values.push_back(rng.uniform(-1e6, 1e6));
  }
  std::vector<std::uint8_t> buf;
  encodeDoubleColumn(buf, values);
  std::size_t pos = 0;
  const std::vector<double> back =
      decodeDoubleColumn(buf.data(), buf.size(), pos, values.size());
  ASSERT_EQ(pos, buf.size());
  ASSERT_EQ(back.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::uint64_t a, b;
    std::memcpy(&a, &values[i], 8);
    std::memcpy(&b, &back[i], 8);
    EXPECT_EQ(a, b) << "index " << i;
  }
}

TEST(TsdbFormat, ChunkAndFooterRoundTrip) {
  std::vector<RawPoint> points;
  for (int i = 0; i < 40; ++i) {
    points.push_back({static_cast<double>(i), 100.0 + 0.25 * i});
  }
  rpc::Encoder enc;
  encodeColumnChunk(enc, 3, 17, points);
  rpc::Decoder dec(enc.bytes());
  NodeId node = 0;
  std::uint32_t metric = 0;
  std::vector<RawPoint> back;
  decodeColumnChunk(dec, node, metric, back);
  EXPECT_TRUE(dec.exhausted());
  EXPECT_EQ(node, 3);
  EXPECT_EQ(metric, 17u);
  expectPointsBitExact(back, points);

  std::vector<Bucket> buckets;
  for (const RawPoint& p : points) accumulateBucket(buckets, 10, p.t, p.v);
  rpc::Encoder renc;
  encodeRollupChunk(renc, 3, 17, 10, buckets);
  rpc::Decoder rdec(renc.bytes());
  std::uint32_t level = 0;
  std::vector<Bucket> bback;
  decodeRollupChunk(rdec, node, metric, level, bback);
  EXPECT_TRUE(rdec.exhausted());
  EXPECT_EQ(level, 10u);
  expectBucketsBitExact(bback, buckets);

  TsdbFooter footer;
  footer.firstNow = 0.0;
  footer.lastNow = 39.0;
  footer.samplePoints = 40;
  footer.chunks.push_back({3, 17, 0, 16, 40, 0.0, 39.0});
  footer.chunks.push_back({3, 17, 10, 480, 4, 0.0, 39.0});
  rpc::Encoder fenc;
  encodeTsdbFooter(fenc, footer);
  rpc::Decoder fdec(fenc.bytes());
  const TsdbFooter fback = decodeTsdbFooter(fdec);
  ASSERT_EQ(fback.chunks.size(), 2u);
  EXPECT_EQ(fback.chunks[1].level, 10u);
  EXPECT_EQ(fback.chunks[1].offset, 480u);

  const std::vector<std::uint8_t> trailer = encodeTsdbTrailer(4242);
  std::uint64_t off = 0;
  ASSERT_TRUE(decodeTsdbTrailer(trailer.data(), trailer.size(), off));
  EXPECT_EQ(off, 4242u);
  std::vector<std::uint8_t> flipped = trailer;
  flipped[0] ^= 0x01;
  EXPECT_FALSE(decodeTsdbTrailer(flipped.data(), flipped.size(), off));
}

TEST(TsdbFormat, BucketMergeSemantics) {
  // Two segment-partial series sharing boundary bucket 2: min/max/count
  // combine, sums add left to right.
  std::vector<Bucket> a, b;
  accumulateBucket(a, 10, 21.0, 5.0);
  accumulateBucket(a, 10, 25.0, 1.0);
  accumulateBucket(b, 10, 27.0, 9.0);
  accumulateBucket(b, 10, 31.0, 2.0);
  std::vector<Bucket> merged;
  mergeBuckets(merged, a);
  mergeBuckets(merged, b);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].index, 2);
  EXPECT_EQ(merged[0].min, 1.0);
  EXPECT_EQ(merged[0].max, 9.0);
  EXPECT_EQ(merged[0].count, 3);
  EXPECT_EQ(merged[0].sum, (5.0 + 1.0) + 9.0);
  EXPECT_EQ(merged[0].mean(), ((5.0 + 1.0) + 9.0) / 3.0);
  EXPECT_EQ(merged[1].index, 3);
  // Out-of-order accumulation is a format violation, not a silent
  // mis-bucketing.
  std::vector<Bucket> c;
  accumulateBucket(c, 10, 50.0, 1.0);
  EXPECT_THROW(accumulateBucket(c, 10, 9.0, 1.0), TsdbError);
}

TEST(TsdbCheckpoint, WriterEmitsReaderValidates) {
  TempDir dir("asdf-tsdb-checkpoint");
  writeArchive(dir.path, 2, 30, 1 << 20, 5.0, /*tear=*/false);
  archive::ArchiveReader reader(dir.path);
  std::int64_t checkpoints = 0;
  for (const archive::SegmentInfo& seg : reader.segments()) {
    checkpoints += seg.checkpoints;
    EXPECT_EQ(seg.version, archive::kFormatVersion);
  }
  // 30 ticks at a 5 s cadence (first tick starts the clock): >= 4.
  EXPECT_GE(checkpoints, 4);
  const archive::ArchiveReader::VerifyResult vr =
      archive::ArchiveReader::verify(dir.path);
  EXPECT_TRUE(vr.ok);
  ASSERT_FALSE(vr.segments.empty());
  EXPECT_EQ(vr.segments.front().records, reader.segments().front().records);
}

TEST(TsdbCheckpoint, RecordRoundTrip) {
  archive::CheckpointRecord cp;
  cp.now = 42.0;
  cp.streams.push_back({rpc::CollectKind::kSadc, 3, 17, 41.5});
  archive::NodeState ns;
  ns.node = 3;
  ns.sampleNow = 41.5;
  ns.values = {1.0, 2.5, -3.0};
  cp.nodes.push_back(ns);
  rpc::Encoder enc;
  archive::encodeCheckpoint(enc, cp);
  rpc::Decoder dec(enc.bytes());
  const archive::CheckpointRecord back = archive::decodeCheckpoint(dec);
  EXPECT_TRUE(dec.exhausted());
  EXPECT_EQ(back.now, 42.0);
  ASSERT_EQ(back.streams.size(), 1u);
  EXPECT_EQ(back.streams[0].kind, rpc::CollectKind::kSadc);
  EXPECT_EQ(back.streams[0].nextSeq, 17);
  ASSERT_EQ(back.nodes.size(), 1u);
  EXPECT_EQ(back.nodes[0].values, ns.values);
}

// The central property test. One archive, written live with rotation
// mid-stream, checkpoints every 5 ticks, and a torn .open tail; then
// compared in three states: uncompacted, fully compacted, and
// compacted with the raw bytes proven untouched.
TEST(TsdbProperty, ScanMatchesReplayExtraction) {
  TempDir dir("asdf-tsdb-property");
  const int nodes = 3;
  const long ticks = 120;
  writeArchive(dir.path, nodes, ticks, 6000, 5.0, /*tear=*/true);

  archive::ArchiveReader reader(dir.path);
  ASSERT_GT(reader.segments().size(), 3u);  // rotation really happened
  ASSERT_FALSE(reader.segments().back().sealed);  // torn tail present

  // Raw segment bytes before compaction.
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> before;
  for (const archive::SegmentInfo& seg : reader.segments()) {
    before.emplace_back(seg.path, readFileBytes(seg.path));
  }

  Rng rng(12345);
  const auto checkAll = [&](const Store& store) {
    for (int trial = 0; trial < 25; ++trial) {
      const NodeId node = static_cast<NodeId>(rng.uniformInt(1, nodes));
      const std::uint32_t metric = static_cast<std::uint32_t>(rng.uniformInt(
          0, static_cast<std::int64_t>(metrics::kFlatNodeVectorSize) - 1));
      double from = rng.uniform(-5.0, static_cast<double>(ticks));
      double to = from + rng.uniform(0.0, 60.0);
      const std::string name = metricNames()[metric];

      ScanOptions opts;
      opts.node = node;
      opts.metric = name;
      opts.from = from;
      opts.to = to;
      opts.resolution = Resolution::kRaw;
      const ScanResult raw = store.scan(opts);
      expectPointsBitExact(raw.points,
                           refRawPoints(reader, node, metric, from, to));

      for (const Resolution res :
           {Resolution::k10s, Resolution::k1m, Resolution::k10m}) {
        opts.resolution = res;
        const ScanResult rolled = store.scan(opts);
        expectBucketsBitExact(
            rolled.buckets,
            refBuckets(reader, node, metric,
                       static_cast<std::uint32_t>(res), from, to));
      }
    }
  };

  {
    SCOPED_TRACE("uncompacted (raw fallback on every segment)");
    const Store store(dir.path);
    checkAll(store);
    const ScanResult r = store.scan(
        {1, "cpu_user_pct", 0.0, static_cast<double>(ticks), Resolution::kRaw});
    EXPECT_EQ(r.compactedScans, 0);
    EXPECT_GT(r.rawScans, 0);
  }

  const std::vector<CompactResult> results = compactArchive(dir.path);
  ASSERT_EQ(results.size(), reader.segments().size() - 1);  // .open skipped
  for (const CompactResult& r : results) EXPECT_FALSE(r.skipped);

  {
    SCOPED_TRACE("fully compacted (torn .open still raw)");
    const Store store(dir.path);
    checkAll(store);
    const ScanResult r = store.scan(
        {1, "cpu_user_pct", 0.0, static_cast<double>(ticks), Resolution::kRaw});
    EXPECT_GT(r.compactedScans, 0);
    EXPECT_EQ(r.rawScans, 1);  // exactly the torn .open segment
  }

  // Compaction never rewrote a raw byte: replay stays byte-identical.
  for (const auto& [path, bytes] : before) {
    EXPECT_EQ(readFileBytes(path), bytes) << path;
  }

  // A second pass skips everything (already up to date).
  for (const CompactResult& r : compactArchive(dir.path)) {
    EXPECT_TRUE(r.skipped);
  }

  const TsdbVerifyResult tv = verifyTsdb(dir.path);
  EXPECT_TRUE(tv.ok);
  EXPECT_EQ(tv.files, static_cast<std::int64_t>(results.size()));
}

TEST(TsdbStore, CheckpointSeekSkipsNothing) {
  TempDir dir("asdf-tsdb-seek");
  // One big sealed segment with checkpoints every 5 ticks: a late
  // narrow window must seek (not walk from record zero) and still
  // return exactly the replay extraction.
  writeArchive(dir.path, 2, 200, 64 << 20, 5.0, /*tear=*/false);
  archive::ArchiveReader reader(dir.path);
  ASSERT_EQ(reader.segments().size(), 1u);
  ASSERT_GT(reader.segments()[0].checkpoints, 10);

  const Store store(dir.path);
  ScanOptions opts;
  opts.node = 2;
  opts.metric = "cpu_user_pct";
  opts.from = 150.0;
  opts.to = 160.0;
  opts.resolution = Resolution::kRaw;
  const ScanResult r = store.scan(opts);
  EXPECT_EQ(r.checkpointSeeks, 1);
  expectPointsBitExact(r.points,
                       refRawPoints(reader, 2, 0, opts.from, opts.to));
}

TEST(TsdbStore, BackgroundCompactorKeepsUpWithSealing) {
  TempDir dir("asdf-tsdb-background");
  {
    BackgroundCompactor compactor(dir.path);
    archive::ArchiveWriterOptions opts;
    opts.dir = dir.path;
    opts.maxSegmentBytes = 6000;
    opts.maxSegmentSeconds = 1.0e18;
    opts.onSeal = [&compactor](const std::string& path,
                               std::uint64_t index) {
      compactor.enqueue(path, index);
    };
    archive::ArchiveWriter writer(opts, testMeta(2));
    for (long t = 0; t < 60; ++t) {
      for (NodeId n = 1; n <= 2; ++n) {
        const std::vector<std::uint8_t> payload =
            snapshotPayload(n, static_cast<double>(t), t);
        rpc::CollectSample s;
        s.kind = rpc::CollectKind::kSadc;
        s.node = n;
        s.now = static_cast<double>(t);
        s.watermark = s.now;
        s.ok = true;
        s.payload = payload.data();
        s.payloadSize = payload.size();
        writer.onSample(s);
      }
    }
    writer.close();
    compactor.drain();
    EXPECT_EQ(compactor.compacted(), writer.segmentsSealed());
    EXPECT_EQ(compactor.failed(), 0);
  }
  // Every sealed segment is now served from its compacted chunk.
  archive::ArchiveReader reader(dir.path);
  const Store store(dir.path);
  const ScanResult r =
      store.scan({1, "cpu_user_pct", 0.0, 60.0, Resolution::kRaw});
  EXPECT_EQ(r.rawScans, 0);
  EXPECT_GT(r.compactedScans, 0);
  expectPointsBitExact(r.points, refRawPoints(reader, 1, 0, 0.0, 60.0));
}

TEST(TsdbStore, PartialCompactionFallsBackToRaw) {
  TempDir dir("asdf-tsdb-partial");
  writeArchive(dir.path, 2, 40, 6000, 0.0, /*tear=*/false);
  compactArchive(dir.path);
  archive::ArchiveReader reader(dir.path);
  // Drop one segment's .astd: the store must serve that segment from
  // the raw walk and the rest from chunks, with identical results.
  const std::string astd = dir.path + "/" + std::string(kTsdbSubdir) + "/" +
                           tsdbFileName(reader.segments().front().index);
  ASSERT_TRUE(fs::remove(astd));
  const Store store(dir.path);
  const ScanResult r =
      store.scan({1, "cpu_user_pct", 0.0, 40.0, Resolution::kRaw});
  EXPECT_EQ(r.rawScans, 1);
  EXPECT_GT(r.compactedScans, 0);
  expectPointsBitExact(r.points, refRawPoints(reader, 1, 0, 0.0, 40.0));
}

TEST(TsdbVerify, FlippedBitsFailVerify) {
  TempDir dir("asdf-tsdb-bitflip");
  writeArchive(dir.path, 1, 30, 1 << 20, 0.0, /*tear=*/false);
  compactArchive(dir.path);
  archive::ArchiveReader reader(dir.path);
  const std::string astd = dir.path + "/" + std::string(kTsdbSubdir) + "/" +
                           tsdbFileName(reader.segments().front().index);
  const std::vector<std::uint8_t> clean = readFileBytes(astd);
  ASSERT_FALSE(clean.empty());
  ASSERT_TRUE(verifyTsdb(dir.path).ok);
  // Single-bit flips across the file (every 97th byte keeps the sweep
  // fast while covering meta, chunks, footer, and trailer regions).
  for (std::size_t i = 0; i < clean.size();
       i += (i + 97 < clean.size() ? 97 : 1)) {
    std::vector<std::uint8_t> mutated = clean;
    mutated[i] ^= 0x10;
    writeFileBytes(astd, mutated);
    EXPECT_FALSE(verifyTsdb(dir.path).ok) << "flip at byte " << i;
  }
  writeFileBytes(astd, clean);
  EXPECT_TRUE(verifyTsdb(dir.path).ok);
}

TEST(TsdbStore, UnknownMetricAndResolutionAreErrors) {
  TempDir dir("asdf-tsdb-errors");
  writeArchive(dir.path, 1, 5, 1 << 20, 0.0, /*tear=*/false);
  const Store store(dir.path);
  EXPECT_THROW(store.scan({1, "not_a_metric", 0.0, 5.0, Resolution::kRaw}),
               TsdbError);
  EXPECT_THROW(store.scan({1, "cpu_user_pct", 5.0, 0.0, Resolution::kRaw}),
               TsdbError);
  EXPECT_THROW(resolutionFromName("2h"), TsdbError);
  EXPECT_EQ(resolutionFromName("10s"), Resolution::k10s);
  EXPECT_STREQ(resolutionName(Resolution::k1m), "1m");
}

}  // namespace
}  // namespace asdf::tsdb
