// Strict CLI validation shared by the daemons and examples: unknown
// flags must be rejected (usage + nonzero exit), not silently ignored
// — a mistyped --fault-strat=300 must not run a fault-free experiment.
#include <gtest/gtest.h>

#include <initializer_list>
#include <string>
#include <vector>

#include "../examples/example_util.h"

namespace asdf::examples {
namespace {

int argcOf(std::initializer_list<const char*> args) {
  return static_cast<int>(args.size());
}

char** argvOf(std::vector<std::string>& storage,
              std::vector<char*>& ptrs,
              std::initializer_list<const char*> args) {
  storage.assign(args.begin(), args.end());
  ptrs.clear();
  for (std::string& s : storage) ptrs.push_back(s.data());
  return ptrs.data();
}

TEST(CheckFlags, AcceptsKnownFlagsInBothForms) {
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  char** argv = argvOf(storage, ptrs,
                       {"prog", "--port=4588", "--verbose", "--seed=7"});
  EXPECT_TRUE(checkFlags(argcOf({"prog", "--port=4588", "--verbose",
                                 "--seed=7"}),
                         argv, {"port", "verbose", "seed"}, "usage\n"));
}

TEST(CheckFlags, RejectsUnknownFlag) {
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  char** argv =
      argvOf(storage, ptrs, {"prog", "--port=1", "--fault-strat=300"});
  EXPECT_FALSE(checkFlags(3, argv, {"port", "fault-start"}, "usage\n"));
}

TEST(CheckFlags, RejectsPrefixOfKnownFlag) {
  // Value lookups match by prefix, so validation must be exact: --sla
  // is not --slaves.
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  char** argv = argvOf(storage, ptrs, {"prog", "--sla=4"});
  EXPECT_FALSE(checkFlags(2, argv, {"slaves"}, "usage\n"));
}

TEST(CheckFlags, RejectsPositionalAndSingleDashArguments) {
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  char** argv = argvOf(storage, ptrs, {"prog", "serve"});
  EXPECT_FALSE(checkFlags(2, argv, {"port"}, "usage\n"));
  argv = argvOf(storage, ptrs, {"prog", "-port=1"});
  EXPECT_FALSE(checkFlags(2, argv, {"port"}, "usage\n"));
}

TEST(CheckFlags, ValidatesSubcommandFlagsPastPositionals) {
  // asdf_archive-style dispatch: "prog <command> <dir> [flags]" calls
  // checkFlags(argc - 2, argv + 2) so the dir positional sits in the
  // skipped element 0 and only real flags are validated.
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  char** argv = argvOf(storage, ptrs,
                       {"asdf_archive", "query", "/tmp/a", "--node=3",
                        "--metric=cpu_user_pct", "--from=100", "--to=200"});
  EXPECT_TRUE(checkFlags(7 - 2, argv + 2,
                         {"node", "metric", "from", "to", "resolution",
                          "csv"},
                         "usage\n"));
  argv = argvOf(storage, ptrs,
                {"asdf_archive", "query", "/tmp/a", "--node=3",
                 "--metrc=cpu_user_pct"});
  EXPECT_FALSE(checkFlags(5 - 2, argv + 2,
                          {"node", "metric", "from", "to", "resolution",
                           "csv"},
                          "usage\n"));
  // A stray second positional after the dir is rejected too.
  argv = argvOf(storage, ptrs, {"asdf_archive", "verify", "/tmp/a", "extra"});
  EXPECT_FALSE(checkFlags(4 - 2, argv + 2, {}, "usage\n"));
}

// --shards is parsed strictly (asdf_rpcd / asdf_aggd): a daemon
// silently running single-shard when the operator asked for 8 would be
// a perf bug nobody notices, so anything but a positive integer in
// range is a hard startup error.
TEST(ParseShards, DefaultsToOneWhenAbsent) {
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  char** argv = argvOf(storage, ptrs, {"prog", "--port=1"});
  int shards = -1;
  EXPECT_TRUE(parseShards(2, argv, shards));
  EXPECT_EQ(shards, 1);
}

TEST(ParseShards, AcceptsPositiveIntegersUpToTheCap) {
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  int shards = 0;
  char** argv = argvOf(storage, ptrs, {"prog", "--shards=4"});
  EXPECT_TRUE(parseShards(2, argv, shards));
  EXPECT_EQ(shards, 4);
  argv = argvOf(storage, ptrs, {"prog", "--shards=1"});
  EXPECT_TRUE(parseShards(2, argv, shards));
  EXPECT_EQ(shards, 1);
  argv = argvOf(storage, ptrs, {"prog", "--shards=64"});
  EXPECT_TRUE(parseShards(2, argv, shards));
  EXPECT_EQ(shards, 64);
}

TEST(ParseShards, RejectsZeroNegativeNonNumericAndOverCap) {
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  for (const char* bad :
       {"--shards=0", "--shards=-2", "--shards=two", "--shards=4x",
        "--shards=", "--shards=65", "--shards=1e3"}) {
    int shards = 0;
    char** argv = argvOf(storage, ptrs, {"prog", bad});
    EXPECT_FALSE(parseShards(2, argv, shards)) << bad;
  }
}

// parseBoundedInt is the generic strict parser parseShards is built on
// and the topology flags (--racks / --nodes-per-rack / --uplink-gbps)
// use directly: absent falls back, present must be a clean in-range
// integer.
TEST(ParseBoundedInt, AbsentFlagFallsBack) {
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  char** argv = argvOf(storage, ptrs, {"prog", "--other=9"});
  long out = -1;
  EXPECT_TRUE(parseBoundedInt(2, argv, "racks", 1, 1024, 3, out));
  EXPECT_EQ(out, 3);
}

TEST(ParseBoundedInt, AcceptsBoundaryValues) {
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  long out = 0;
  char** argv = argvOf(storage, ptrs, {"prog", "--racks=1"});
  EXPECT_TRUE(parseBoundedInt(2, argv, "racks", 1, 1024, 3, out));
  EXPECT_EQ(out, 1);
  argv = argvOf(storage, ptrs, {"prog", "--racks=1024"});
  EXPECT_TRUE(parseBoundedInt(2, argv, "racks", 1, 1024, 3, out));
  EXPECT_EQ(out, 1024);
  // Zero is fine when the range admits it (--nodes-per-rack=0 derives).
  argv = argvOf(storage, ptrs, {"prog", "--nodes-per-rack=0"});
  EXPECT_TRUE(parseBoundedInt(2, argv, "nodes-per-rack", 0, 1024, 0, out));
  EXPECT_EQ(out, 0);
}

TEST(ParseBoundedInt, RejectsMalformedAndOutOfRangeValues) {
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  for (const char* bad :
       {"--racks", "--racks=", "--racks=0", "--racks=-3", "--racks=two",
        "--racks=4x", "--racks=1025", "--racks=1e2"}) {
    long out = -1;
    char** argv = argvOf(storage, ptrs, {"prog", bad});
    EXPECT_FALSE(parseBoundedInt(2, argv, "racks", 1, 1024, 3, out)) << bad;
  }
}

TEST(ParseBoundedInt, LastOccurrenceWins) {
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  char** argv =
      argvOf(storage, ptrs, {"prog", "--racks=2", "--racks=5"});
  long out = 0;
  EXPECT_TRUE(parseBoundedInt(3, argv, "racks", 1, 1024, 3, out));
  EXPECT_EQ(out, 5);
}

TEST(CheckFlags, AcceptsEmptyCommandLine) {
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  char** argv = argvOf(storage, ptrs, {"prog"});
  EXPECT_TRUE(checkFlags(1, argv, {"port"}, "usage\n"));
}

}  // namespace
}  // namespace asdf::examples
