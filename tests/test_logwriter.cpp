#include "hadooplog/writer.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "hadooplog/log_buffer.h"

namespace asdf::hadooplog {
namespace {

TEST(TaskAttemptId, MatchesFigure5Format) {
  EXPECT_EQ(makeTaskAttemptId(1, true, 96, 0), "task_0001_m_000096_0");
  EXPECT_EQ(makeTaskAttemptId(1, false, 3, 0), "task_0001_r_000003_0");
  EXPECT_EQ(makeTaskAttemptId(123, true, 7, 2), "task_0123_m_000007_2");
}

TEST(LogBuffer, AppendsAndCounts) {
  LogBuffer buf;
  EXPECT_EQ(buf.lineCount(), 0u);
  buf.append("line one");
  buf.append("line two");
  EXPECT_EQ(buf.lineCount(), 2u);
  EXPECT_EQ(buf.line(0), "line one");
  EXPECT_EQ(buf.line(1), "line two");
}

TEST(LogBuffer, LinesFromCursor) {
  LogBuffer buf;
  buf.append("a");
  buf.append("b");
  buf.append("c");
  const auto tail = buf.linesFrom(1);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0], "b");
  EXPECT_EQ(tail[1], "c");
  EXPECT_TRUE(buf.linesFrom(3).empty());
  EXPECT_TRUE(buf.linesFrom(999).empty());
}

TEST(LogBuffer, ByteAccountingWithDrain) {
  LogBuffer buf;
  buf.append("12345");  // +1 for newline
  EXPECT_DOUBLE_EQ(buf.totalBytes(), 6.0);
  EXPECT_DOUBLE_EQ(buf.drainNewBytes(), 6.0);
  EXPECT_DOUBLE_EQ(buf.drainNewBytes(), 0.0);
  buf.append("xy");
  EXPECT_DOUBLE_EQ(buf.drainNewBytes(), 3.0);
}

TEST(TtLogWriter, LaunchLineMatchesFigure5) {
  LogBuffer buf;
  TtLogWriter writer(&buf);
  writer.launchTask(75.324, "task_0001_m_000096_0");
  ASSERT_EQ(buf.lineCount(), 1u);
  EXPECT_EQ(buf.line(0),
            "2008-04-15 14:01:15,324 INFO "
            "org.apache.hadoop.mapred.TaskTracker: "
            "LaunchTaskAction: task_0001_m_000096_0");
}

TEST(TtLogWriter, LifecycleLines) {
  LogBuffer buf;
  TtLogWriter writer(&buf);
  writer.taskDone(10.0, "task_0001_m_000001_0");
  writer.taskFailed(11.0, "task_0001_r_000001_0", "boom");
  writer.killTask(12.0, "task_0001_r_000002_0");
  EXPECT_TRUE(contains(buf.line(0), "Task task_0001_m_000001_0 is done."));
  EXPECT_TRUE(contains(buf.line(1), "WARN"));
  EXPECT_TRUE(contains(buf.line(1), "failed: boom"));
  EXPECT_TRUE(contains(buf.line(2), "KillTaskAction: task_0001_r_000002_0"));
}

TEST(TtLogWriter, ReduceProgressNamesPhase) {
  LogBuffer buf;
  TtLogWriter writer(&buf);
  writer.reduceProgress(20.0, "task_0001_r_000003_0", 0.33, "copy", 3, 9);
  EXPECT_TRUE(contains(buf.line(0), "reduce > copy (3 of 9)"));
  EXPECT_TRUE(contains(buf.line(0), "33.00%"));
  writer.reduceProgress(21.0, "task_0001_r_000003_0", 0.5, "sort", 9, 9);
  EXPECT_TRUE(contains(buf.line(1), "reduce > sort"));
}

TEST(TtLogWriter, CopyFailedIsWarn) {
  LogBuffer buf;
  TtLogWriter writer(&buf);
  writer.copyFailed(30.0, "task_0001_r_000001_1", "task_0001_m_000004_0");
  EXPECT_TRUE(contains(buf.line(0), "WARN"));
  EXPECT_TRUE(contains(buf.line(0), "copy failed"));
}

TEST(DnLogWriter, BlockLifecycleLines) {
  LogBuffer buf;
  DnLogWriter writer(&buf);
  writer.servingBlock(1.0, 4523, "10.250.0.7");
  writer.servedBlock(3.0, 4523, "10.250.0.7");
  writer.receivingBlock(4.0, 4524, "10.250.0.2", "10.250.0.3");
  writer.receivedBlock(9.0, 4524, 8388608, "10.250.0.2");
  writer.deletingBlock(10.0, 4524);
  EXPECT_TRUE(contains(buf.line(0), "Serving block blk_4523 to /10.250.0.7"));
  EXPECT_TRUE(contains(buf.line(1), "Served block blk_4523"));
  EXPECT_TRUE(contains(buf.line(2),
                       "Receiving block blk_4524 src: /10.250.0.2:50010 "
                       "dest: /10.250.0.3:50010"));
  EXPECT_TRUE(
      contains(buf.line(3), "Received block blk_4524 of size 8388608"));
  EXPECT_TRUE(contains(buf.line(4), "Deleting block blk_4524"));
  EXPECT_TRUE(
      contains(buf.line(4), "org.apache.hadoop.dfs.DataNode"));
}

TEST(Writers, EveryLineCarriesParseableTimestamp) {
  LogBuffer buf;
  TtLogWriter tt(&buf);
  DnLogWriter dn(&buf);
  tt.launchTask(100.5, "task_0001_m_000001_0");
  tt.mapProgress(101.0, "task_0001_m_000001_0", 0.5);
  dn.servingBlock(102.25, 1, "10.250.0.2");
  for (std::size_t i = 0; i < buf.lineCount(); ++i) {
    const SimTime t = parseLogTimestamp(buf.line(i).substr(0, 23));
    EXPECT_NE(t, kNoTime) << buf.line(i);
  }
}

}  // namespace
}  // namespace asdf::hadooplog
