// Live collection plane, end to end: an in-process asdf_rpcd served
// from a background thread, real framed-TCP sockets on loopback, and
// the contracts the live wire must honor —
//
//   * the transport handshakes, fetches typed data and survives
//     application errors without dropping the connection;
//   * a live harness run produces byte-for-byte the same alarms as a
//     sim-transport run of the same seeded workload (the §9 sim/live
//     equivalence contract); and
//   * failed live attempts charge request/framing bytes through
//     RpcChannelStats exactly like simulated failures do.
#include <gtest/gtest.h>

#include <thread>

#include "harness/experiment.h"
#include "metrics/catalog.h"
#include "modules/modules.h"
#include "net/live_transport.h"
#include "net/rpcd_server.h"
#include "rpc/payloads.h"
#include "rpc/rpc_client.h"
#include "rpc/transport.h"

namespace asdf::net {
namespace {

struct ServerFixture {
  explicit ServerFixture(RpcdOptions opts) : server(opts) {
    thread = std::thread([this] { server.run(); });
  }
  ~ServerFixture() {
    server.stop();
    if (thread.joinable()) thread.join();
  }
  void stopAndJoin() {
    server.stop();
    thread.join();
  }

  RpcdServer server;
  std::thread thread;
};

LiveTransport::Options clientOptions(const ServerFixture& fx) {
  LiveTransport::Options topts;
  topts.port = fx.server.port();
  topts.timeoutSeconds = 5.0;
  return topts;
}

TEST(LiveTransport, HandshakeFetchAndApplicationErrors) {
  RpcdOptions opts;
  opts.slaves = 4;
  opts.seed = 7;
  ServerFixture fx(opts);

  LiveTransport transport(clientOptions(fx));
  EXPECT_EQ(transport.slaves(), 4);
  EXPECT_EQ(transport.serverSeed(), 7u);
  EXPECT_EQ(transport.serverSource(), "sim");

  metrics::SadcSnapshot snap;
  std::size_t bytes = 0;
  ASSERT_TRUE(transport.fetchSadc(1, 5.0, snap, bytes));
  EXPECT_EQ(snap.node.size(), static_cast<std::size_t>(metrics::kNodeMetricCount));
  EXPECT_EQ(snap.nic.size(), static_cast<std::size_t>(metrics::kNicMetricCount));
  EXPECT_GT(bytes, 0u);

  // Unknown node -> kError response: the attempt fails but the
  // connection stays usable (no reconnect needed).
  EXPECT_FALSE(transport.fetchSadc(99, 5.0, snap, bytes));
  EXPECT_EQ(transport.reconnects(), 0);
  EXPECT_TRUE(transport.fetchSadc(2, 5.0, snap, bytes));

  std::vector<hadooplog::StateSample> rows;
  EXPECT_TRUE(transport.fetchTt(1, 10.0, 10.0, rows, bytes));
  EXPECT_TRUE(transport.fetchDn(1, 10.0, 10.0, rows, bytes));

  syscalls::TraceSecond trace;
  EXPECT_TRUE(transport.fetchStrace(1, 10.0, trace, bytes));

  ClusterStatsWire stats;
  ASSERT_TRUE(transport.fetchStats(20.0, stats));
  EXPECT_GE(stats.simNow, 20.0);

  // kShutdown makes the daemon's run() return; the fixture join then
  // completes without stop().
  transport.shutdownServer();
  fx.thread.join();
  fx.thread = std::thread([] {});  // keep the dtor's join happy
}

TEST(LiveTransport, ProcSourceServesCountersButNotStrace) {
  RpcdOptions opts;
  opts.slaves = 3;
  opts.source = "proc";
  ServerFixture fx(opts);

  LiveTransport transport(clientOptions(fx));
  EXPECT_EQ(transport.serverSource(), "proc");

  metrics::SadcSnapshot snap;
  std::size_t bytes = 0;
  ASSERT_TRUE(transport.fetchSadc(2, 1.0, snap, bytes));
  EXPECT_EQ(snap.node.size(), static_cast<std::size_t>(metrics::kNodeMetricCount));

  std::vector<hadooplog::StateSample> rows;
  EXPECT_TRUE(transport.fetchTt(1, 30.0, 30.0, rows, bytes));

  // The proc source has no syscall tracer: kUnsupported, not a hang.
  syscalls::TraceSecond trace;
  EXPECT_FALSE(transport.fetchStrace(1, 1.0, trace, bytes));
}

TEST(LiveTransport, ConnectToDeadPortThrows) {
  LiveTransport::Options topts;
  topts.port = 1;  // privileged and unused: connection refused
  topts.timeoutSeconds = 0.5;
  EXPECT_THROW(LiveTransport transport(topts), NetError);
}

// Satellite: failed live attempts must charge request + framing bytes
// through RpcChannelStats exactly like simulated failed attempts.
TEST(LiveRpcClient, FailedAttemptsChargeBytesLikeSim) {
  RpcdOptions opts;
  opts.slaves = 2;
  ServerFixture fx(opts);

  // Short per-attempt deadline: once the daemon is stopped its listen
  // socket still queues connects, so each failed attempt runs to the
  // full timeout — keep the test fast.
  LiveTransport::Options topts = clientOptions(fx);
  topts.timeoutSeconds = 0.3;
  LiveTransport transport(topts);
  rpc::RpcPolicy policy;
  policy.timeoutSeconds = 2.0;
  policy.maxRetries = 2;
  policy.backoffBase = 0.001;  // real sleeps in live mode: keep them tiny
  policy.backoffMax = 0.002;
  rpc::RpcClient client(transport, policy, /*seed=*/99);
  ASSERT_TRUE(client.liveMode());

  auto fetched = client.fetchSadc(1, 1.0);
  ASSERT_TRUE(fetched.ok);
  EXPECT_EQ(fetched.attempts, 1);

  rpc::RpcChannelStats& live = client.transports().channel("sadc-tcp");
  const long callsBefore = live.calls();
  const double bytesBefore = live.totalCallBytes();

  // Kill the daemon; every subsequent attempt fails on the wire.
  fx.stopAndJoin();
  auto failed = client.fetchSadc(1, 2.0);
  EXPECT_FALSE(failed.ok);
  EXPECT_EQ(failed.attempts, policy.maxRetries + 1);

  EXPECT_EQ(live.calls(), callsBefore);  // no successful call recorded
  EXPECT_EQ(live.failedCalls(), policy.maxRetries + 1);

  // Reference: the simulated accounting for the same failure pattern.
  rpc::RpcChannelStats simStats("sadc-tcp", rpc::TransportCosts{});
  for (int i = 0; i <= policy.maxRetries; ++i) {
    simStats.recordFailedCall(rpc::kCollectRequestBytes);
  }
  EXPECT_DOUBLE_EQ(live.totalCallBytes() - bytesBefore,
                   simStats.totalCallBytes());

  // The failure also lands in the health registry, like sim failures.
  EXPECT_EQ(client.health().channelHealth(1, rpc::Daemon::kSadc),
            rpc::NodeHealth::kUnmonitorable);
}

// The tentpole contract (§9): for the same seeded workload and fault,
// a live-transport harness run must produce the same alarm series a
// sim-transport run produces — the daemon hosts the identical cluster
// simulation and the analysis pipeline cannot tell the difference.
TEST(LiveE2E, SimAndLiveTransportsProduceIdenticalAlarms) {
  modules::registerBuiltinModules();

  harness::ExperimentSpec spec;
  spec.slaves = 4;
  spec.duration = 300.0;
  spec.trainDuration = 180.0;
  spec.seed = 4242;
  spec.fault.type = faults::FaultType::kCpuHog;
  spec.fault.node = 2;
  spec.fault.startTime = 120.0;
  spec.pipeline.quietPrint = true;
  // Both runs use the fault-tolerant client so the pipelines (and the
  // per-alarm health vectors) are structurally identical; generous
  // per-attempt timeout so a loaded CI machine cannot make the live
  // run diverge by timing out a healthy localhost fetch.
  spec.faultTolerantRpc = true;
  spec.rpcPolicy.timeoutSeconds = 5.0;

  const analysis::BlackBoxModel model = harness::trainModel(spec);
  const harness::ExperimentResult sim = harness::runExperiment(spec, model);

  RpcdOptions opts;
  opts.slaves = spec.slaves;
  opts.seed = spec.seed;
  opts.fault = spec.fault;
  ServerFixture fx(opts);

  harness::ExperimentSpec liveSpec = spec;
  liveSpec.transport = harness::TransportMode::kLive;
  liveSpec.livePort = fx.server.port();
  liveSpec.realtimeScale = 150.0;  // 300 virtual seconds in ~2 s wall
  const harness::ExperimentResult live =
      harness::runExperiment(liveSpec, model);

  auto expectSeriesEqual = [](const analysis::AlarmSeries& a,
                              const analysis::AlarmSeries& b,
                              const char* which) {
    ASSERT_EQ(a.size(), b.size()) << which;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[i].time, b[i].time) << which << " record " << i;
      EXPECT_EQ(a[i].flags, b[i].flags) << which << " record " << i;
      EXPECT_EQ(a[i].scores, b[i].scores) << which << " record " << i;
      EXPECT_EQ(a[i].health, b[i].health) << which << " record " << i;
    }
  };
  expectSeriesEqual(sim.blackBox, live.blackBox, "black-box");
  expectSeriesEqual(sim.whiteBox, live.whiteBox, "white-box");

  // Ground truth travels over the wire (kStats) in live mode; it must
  // match what the local simulation recorded.
  EXPECT_EQ(sim.truth.slaveIndex, live.truth.slaveIndex);
  EXPECT_DOUBLE_EQ(sim.truth.faultStart, live.truth.faultStart);
  EXPECT_DOUBLE_EQ(sim.truth.faultEnd, live.truth.faultEnd);
  EXPECT_EQ(sim.jobsSubmitted, live.jobsSubmitted);
  EXPECT_EQ(sim.jobsCompleted, live.jobsCompleted);
  EXPECT_EQ(sim.tasksCompleted, live.tasksCompleted);

  // Satellite: identical workloads cost identical bytes — per channel,
  // connects, calls and both Table 4 numbers must agree exactly.
  ASSERT_EQ(sim.rpcChannels.size(), live.rpcChannels.size());
  for (std::size_t i = 0; i < sim.rpcChannels.size(); ++i) {
    const harness::RpcChannelReport& s = sim.rpcChannels[i];
    const harness::RpcChannelReport& l = live.rpcChannels[i];
    EXPECT_EQ(s.name, l.name);
    EXPECT_EQ(s.connects, l.connects) << s.name;
    EXPECT_EQ(s.calls, l.calls) << s.name;
    EXPECT_EQ(s.failedCalls, l.failedCalls) << s.name;
    EXPECT_DOUBLE_EQ(s.staticOverheadKb, l.staticOverheadKb) << s.name;
    EXPECT_DOUBLE_EQ(s.perIterationKbPerSec, l.perIterationKbPerSec)
        << s.name;
  }

  // Both runs saw the same rounds with zero wire failures.
  EXPECT_EQ(sim.rpcRounds, live.rpcRounds);
  EXPECT_EQ(live.rpcFailedRounds, 0);
  EXPECT_EQ(live.rpcRetries, 0);

  // And the live run actually localized the fault.
  const harness::ExperimentSummary summary = harness::summarize(live);
  EXPECT_GE(summary.combined.latencySeconds, 0.0);
}

}  // namespace
}  // namespace asdf::net
