#include "analysis/mad.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace asdf::analysis {
namespace {

TEST(MadCompare, FlagsObviousOutlier) {
  const std::vector<double> scores = {5.0, 6.0, 5.5, 40.0, 6.5};
  const auto result = madCompare(scores, 6.0);
  ASSERT_EQ(result.flags.size(), 5u);
  EXPECT_DOUBLE_EQ(result.flags[3], 1.0);
  for (std::size_t i : {0u, 1u, 2u, 4u}) {
    EXPECT_DOUBLE_EQ(result.flags[i], 0.0) << i;
  }
}

TEST(MadCompare, AllEqualScoresFlagNothing) {
  const std::vector<double> scores = {3.0, 3.0, 3.0, 3.0};
  const auto result = madCompare(scores, 1.0);
  for (double f : result.flags) EXPECT_DOUBLE_EQ(f, 0.0);
}

TEST(MadCompare, MinMadGuardsDegenerateSpread) {
  // All-but-one identical: MAD would be 0; minMad keeps the threshold
  // meaningful so a tiny wobble is not flagged.
  const std::vector<double> scores = {3.0, 3.0, 3.0, 3.4};
  const auto result = madCompare(scores, 2.0, /*minMad=*/1.0);
  EXPECT_DOUBLE_EQ(result.flags[3], 0.0);
  // A genuinely large deviation still is.
  const auto big = madCompare({3.0, 3.0, 3.0, 13.0}, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(big.flags[3], 1.0);
}

TEST(MadCompare, ScoresAreSweepable) {
  const std::vector<double> scores = {1.0, 2.0, 3.0, 20.0, 2.5};
  const auto reference = madCompare(scores, 0.0);
  for (double k : {0.5, 2.0, 6.0, 15.0}) {
    const auto direct = madCompare(scores, k);
    for (std::size_t i = 0; i < scores.size(); ++i) {
      EXPECT_EQ(direct.flags[i] > 0.5, reference.scores[i] > k);
    }
  }
}

TEST(MadCompare, OnlyUpperTailFlags) {
  // Peer comparison fingerpoints *anomalously distant* nodes; a node
  // whose distance is unusually LOW is not a culprit.
  const std::vector<double> scores = {10.0, 10.5, 9.5, 0.1, 10.2};
  const auto result = madCompare(scores, 3.0);
  EXPECT_DOUBLE_EQ(result.flags[3], 0.0);
}

TEST(BlackBoxMadCompare, MatchesFixedThresholdOnClearCases) {
  const std::vector<std::vector<double>> hists = {
      {50.0, 10.0}, {49.0, 11.0}, {10.0, 50.0}, {51.0, 9.0}, {50.0, 10.0}};
  const auto mad = blackBoxMadCompare(hists, 6.0);
  const auto fixed = blackBoxCompare(hists, 60.0);
  ASSERT_EQ(mad.flags.size(), fixed.flags.size());
  for (std::size_t i = 0; i < mad.flags.size(); ++i) {
    EXPECT_DOUBLE_EQ(mad.flags[i], fixed.flags[i]) << i;
  }
}

TEST(BlackBoxMadCompare, SelfCalibratesAcrossScales) {
  // The same relative outlier at 10x the magnitude: the fixed
  // threshold's verdict changes, the MAD rule's does not.
  const std::vector<std::vector<double>> small = {
      {5.0, 1.0}, {5.2, 0.8}, {1.0, 5.0}, {4.9, 1.1}};
  const std::vector<std::vector<double>> large = {
      {50.0, 10.0}, {52.0, 8.0}, {10.0, 50.0}, {49.0, 11.0}};
  const auto madSmall = blackBoxMadCompare(small, 4.0);
  const auto madLarge = blackBoxMadCompare(large, 4.0);
  EXPECT_DOUBLE_EQ(madSmall.flags[2], 1.0);
  EXPECT_DOUBLE_EQ(madLarge.flags[2], 1.0);
}

TEST(MadCompare, EmptyInputSafe) {
  const auto result = madCompare({}, 3.0);
  EXPECT_TRUE(result.flags.empty());
  EXPECT_TRUE(result.scores.empty());
}

class MadProperty : public ::testing::TestWithParam<int> {};

TEST_P(MadProperty, AtMostMinorityFlaggedOnRandomNoise) {
  // On i.i.d. noise with a sane k, the robust rule must not flag the
  // majority (that would invert the fault-minority assumption).
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 41 + 9);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<double> scores;
    const long n = rng.uniformInt(4, 30);
    for (long i = 0; i < n; ++i) scores.push_back(rng.uniform(0.0, 10.0));
    const auto result = madCompare(scores, 6.0);
    long flagged = 0;
    for (double f : result.flags) flagged += f > 0.5 ? 1 : 0;
    EXPECT_LE(flagged, n / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomRuns, MadProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace asdf::analysis
