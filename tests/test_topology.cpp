// Rack layout mapping and the shared-uplink bandwidth plane
// (DESIGN.md §16): rack-id/host-id edge cases (single rack, ragged
// last rack, impossible shapes), proportional uplink sharing, and the
// partition scale/restore contract.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"
#include "topology/topology.h"
#include "topology/uplink.h"

namespace asdf::topology {
namespace {

TopologySpec spec(int racks, int nodesPerRack = 0) {
  TopologySpec s;
  s.racks = racks;
  s.nodesPerRack = nodesPerRack;
  return s;
}

TEST(Topology, SingleRackIsFlatAndHoldsEveryNode) {
  const ClusterLayout layout(5, spec(1));
  EXPECT_TRUE(layout.flat());
  EXPECT_EQ(layout.racks(), 1);
  EXPECT_EQ(layout.nodesPerRack(), 5);
  EXPECT_EQ(layout.rackSize(0), 5);
  for (NodeId id = 1; id <= 5; ++id) EXPECT_EQ(layout.rackOf(id), 0);
  EXPECT_FALSE(layout.crossRack(1, 5));
}

TEST(Topology, MasterAndOutOfRangeIdsAreOffFabric) {
  const ClusterLayout layout(6, spec(2));
  EXPECT_EQ(layout.rackOf(0), -1);   // master
  EXPECT_EQ(layout.rackOf(-3), -1);
  EXPECT_EQ(layout.rackOf(7), -1);
  EXPECT_FALSE(layout.crossRack(0, 6));  // master never cross-rack
  EXPECT_FALSE(layout.crossRack(7, 1));
}

TEST(Topology, ContiguousBlocksAndHostIdRoundTrip) {
  const ClusterLayout layout(9, spec(3));
  EXPECT_EQ(layout.nodesPerRack(), 3);
  for (int rack = 0; rack < 3; ++rack) {
    for (int idx = 0; idx < layout.rackSize(rack); ++idx) {
      const NodeId id = layout.hostId(rack, idx);
      EXPECT_EQ(layout.rackOf(id), rack);
    }
  }
  EXPECT_EQ(layout.rackOf(1), 0);
  EXPECT_EQ(layout.rackOf(3), 0);
  EXPECT_EQ(layout.rackOf(4), 1);
  EXPECT_EQ(layout.rackOf(9), 2);
  EXPECT_TRUE(layout.crossRack(3, 4));
  EXPECT_FALSE(layout.crossRack(4, 6));
}

TEST(Topology, RaggedLastRackKeepsEveryNodeAndShrinks) {
  // 8 slaves over 3 racks -> ceil(8/3) = 3 per rack, last rack has 2.
  const ClusterLayout layout(8, spec(3));
  EXPECT_EQ(layout.nodesPerRack(), 3);
  EXPECT_EQ(layout.rackSize(0), 3);
  EXPECT_EQ(layout.rackSize(1), 3);
  EXPECT_EQ(layout.rackSize(2), 2);
  EXPECT_EQ(layout.rackNodes(2), (std::vector<NodeId>{7, 8}));
  EXPECT_EQ(layout.rackOf(8), 2);
  // tierGroups mirrors the ragged sizes and covers all slaves.
  int covered = 0;
  for (int g : layout.tierGroups()) covered += g;
  EXPECT_EQ(covered, 8);
}

TEST(Topology, RejectsImpossibleShapes) {
  EXPECT_THROW(ClusterLayout(0, spec(1)), ConfigError);     // no nodes
  EXPECT_THROW(ClusterLayout(4, spec(0)), ConfigError);     // racks < 1
  EXPECT_THROW(ClusterLayout(4, spec(-2)), ConfigError);
  EXPECT_THROW(ClusterLayout(3, spec(4)), ConfigError);     // empty rack
  EXPECT_THROW(ClusterLayout(9, spec(3, 2)), ConfigError);  // strands 3
  // Explicit nodesPerRack leaving the last rack empty: 4 slaves fit in
  // 2 racks of 4 with rack 1 empty.
  EXPECT_THROW(ClusterLayout(4, spec(2, 4)), ConfigError);
  TopologySpec bad = spec(2);
  bad.uplinkBytesPerSec = 0.0;
  EXPECT_THROW(ClusterLayout(4, bad), ConfigError);
}

TEST(UplinkPlane, InertFlowsGrantInfinity) {
  const ClusterLayout layout(6, spec(2));
  UplinkPlane plane(layout, 1.0e9);
  plane.beginTick();
  const UplinkFlow sameRack = plane.request(0, 0, 5.0e8);
  const UplinkFlow offFabric = plane.request(-1, 1, 5.0e8);
  const UplinkFlow defaulted;
  plane.finalize();
  EXPECT_TRUE(sameRack.inert());
  EXPECT_TRUE(offFabric.inert());
  EXPECT_TRUE(defaulted.inert());
  EXPECT_TRUE(std::isinf(plane.granted(sameRack)));
  EXPECT_TRUE(std::isinf(plane.granted(defaulted)));
}

TEST(UplinkPlane, UncontendedFlowGetsItsDemand) {
  const ClusterLayout layout(6, spec(2));
  UplinkPlane plane(layout, 1.0e9);
  plane.beginTick();
  const UplinkFlow flow = plane.request(0, 1, 4.0e8);
  plane.finalize();
  EXPECT_DOUBLE_EQ(plane.granted(flow), 4.0e8);
}

TEST(UplinkPlane, OversubscribedUplinkSharesProportionally) {
  const ClusterLayout layout(6, spec(2));
  UplinkPlane plane(layout, 1.0e9);
  plane.beginTick();
  // Two equal flows demand 2 GB/s total through rack 0's 1 GB/s tx.
  const UplinkFlow a = plane.request(0, 1, 1.0e9);
  const UplinkFlow b = plane.request(0, 1, 1.0e9);
  plane.finalize();
  EXPECT_DOUBLE_EQ(plane.granted(a), 5.0e8);
  EXPECT_DOUBLE_EQ(plane.granted(b), 5.0e8);
  EXPECT_DOUBLE_EQ(plane.txGranted(0), 1.0e9);
}

TEST(UplinkPlane, FlowIsCappedByBothEnds) {
  const ClusterLayout layout(9, spec(3));
  UplinkPlane plane(layout, 1.0e9);
  plane.beginTick();
  // Saturate rack 1's rx with a competing flow; the 0 -> 1 flow is
  // then rx-limited even though rack 0's tx is idle.
  const UplinkFlow competitor = plane.request(2, 1, 3.0e9);
  const UplinkFlow flow = plane.request(0, 1, 1.0e9);
  plane.finalize();
  EXPECT_NEAR(plane.granted(competitor), 0.75e9, 1.0);
  EXPECT_NEAR(plane.granted(flow), 0.25e9, 1.0);
}

TEST(UplinkPlane, ScaleRackThrottlesAndRestoresExactly) {
  const ClusterLayout layout(6, spec(2));
  UplinkPlane plane(layout, 1.0e9);
  plane.scaleRack(0, 0.02);
  EXPECT_DOUBLE_EQ(plane.capacity(0), 2.0e7);
  EXPECT_DOUBLE_EQ(plane.capacity(1), 1.0e9);
  plane.beginTick();
  const UplinkFlow flow = plane.request(0, 1, 1.0e9);
  plane.finalize();
  EXPECT_DOUBLE_EQ(plane.granted(flow), 2.0e7);
  // Scaling is against base capacity: repeated calls do not compound,
  // and restore heals to bit-identical bandwidth.
  plane.scaleRack(0, 0.02);
  EXPECT_DOUBLE_EQ(plane.capacity(0), 2.0e7);
  plane.restoreRack(0);
  EXPECT_DOUBLE_EQ(plane.capacity(0), 1.0e9);
}

TEST(UplinkPlane, ScaleClampsToPositiveCapacity) {
  // ShareResource requires positive capacity; a total partition leaves
  // the 1 B/s keepalive trickle.
  const ClusterLayout layout(6, spec(2));
  UplinkPlane plane(layout, 1.0e9);
  plane.scaleRack(1, 0.0);
  EXPECT_DOUBLE_EQ(plane.capacity(1), 1.0);
  plane.restoreRack(1);
  EXPECT_DOUBLE_EQ(plane.capacity(1), 1.0e9);
}

}  // namespace
}  // namespace asdf::topology
