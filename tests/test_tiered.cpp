// Tiered-topology regression: interposing the aggregation tier
// (agg_bb/agg_wb reduce stages plus the root merge modules) must leave
// the experiment's alarms and monitoring events byte-identical to the
// flat topology on the same seed — across group shapes, executors, the
// fault-tolerant collection path, monitoring faults (unmonitorable
// exclusion + quorum), and the replay transport. See DESIGN.md §12.
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "harness/experiment.h"
#include "harness/pipelines.h"
#include "modules/modules.h"

namespace asdf::harness {
namespace {

ExperimentSpec baseSpec() {
  modules::registerBuiltinModules();
  ExperimentSpec spec;
  spec.slaves = 9;
  spec.duration = 150.0;
  spec.trainDuration = 80.0;
  spec.trainWarmup = 20.0;
  spec.seed = 2026;
  spec.fault.type = faults::FaultType::kCpuHog;
  spec.fault.node = 5;
  spec.fault.startTime = 60.0;
  return spec;
}

void expectIdenticalSeries(const analysis::AlarmSeries& a,
                           const analysis::AlarmSeries& b,
                           const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time) << label << " alarm " << i;
    EXPECT_EQ(a[i].flags, b[i].flags) << label << " alarm " << i;
    EXPECT_EQ(a[i].scores, b[i].scores) << label << " alarm " << i;
    EXPECT_EQ(a[i].health, b[i].health) << label << " alarm " << i;
  }
}

void expectIdenticalResults(const ExperimentResult& flat,
                            const ExperimentResult& tiered,
                            const std::string& label) {
  EXPECT_FALSE(flat.blackBox.empty()) << label;
  EXPECT_FALSE(flat.whiteBox.empty()) << label;
  expectIdenticalSeries(flat.blackBox, tiered.blackBox,
                        label + " black-box");
  expectIdenticalSeries(flat.whiteBox, tiered.whiteBox,
                        label + " white-box");
  ASSERT_EQ(flat.monitoringEvents.size(), tiered.monitoringEvents.size())
      << label;
  for (std::size_t i = 0; i < flat.monitoringEvents.size(); ++i) {
    const core::MonitoringEvent& a = flat.monitoringEvents[i];
    const core::MonitoringEvent& b = tiered.monitoringEvents[i];
    EXPECT_EQ(a.time, b.time) << label << " event " << i;
    EXPECT_EQ(a.channel, b.channel) << label << " event " << i;
    EXPECT_EQ(a.survivors, b.survivors) << label << " event " << i;
    EXPECT_EQ(a.quorum, b.quorum) << label << " event " << i;
    EXPECT_EQ(a.belowQuorum, b.belowQuorum) << label << " event " << i;
    EXPECT_EQ(a.unmonitorable, b.unmonitorable) << label << " event " << i;
  }
}

TEST(Tiered, AlarmsByteIdenticalToFlat) {
  ExperimentSpec spec = baseSpec();
  const analysis::BlackBoxModel model = trainModel(spec);
  const ExperimentResult flat = runExperiment(spec, model);

  spec.tiered = true;
  spec.tierGroups = {3, 3, 3};
  const ExperimentResult even = runExperiment(spec, model);
  expectIdenticalResults(flat, even, "even groups");

  spec.tierGroups = {4, 3, 2};
  const ExperimentResult skewed = runExperiment(spec, model);
  expectIdenticalResults(flat, skewed, "skewed groups");

  // Auto topology (~sqrt(n) groups).
  spec.tierGroups.clear();
  spec.aggregators = 0;
  const ExperimentResult autoTopo = runExperiment(spec, model);
  expectIdenticalResults(flat, autoTopo, "auto groups");
}

TEST(Tiered, AlarmsByteIdenticalUnderPoolExecutor) {
  ExperimentSpec spec = baseSpec();
  const analysis::BlackBoxModel model = trainModel(spec);
  const ExperimentResult flat = runExperiment(spec, model);

  spec.tiered = true;
  spec.tierGroups = {4, 3, 2};
  spec.threads = 4;
  const ExperimentResult pooled = runExperiment(spec, model);
  expectIdenticalResults(flat, pooled, "pool executor");
}

TEST(Tiered, AlarmsByteIdenticalWithFaultTolerantRpc) {
  ExperimentSpec spec = baseSpec();
  spec.faultTolerantRpc = true;
  const analysis::BlackBoxModel model = trainModel(spec);
  const ExperimentResult flat = runExperiment(spec, model);

  spec.tiered = true;
  spec.tierGroups = {3, 3, 3};
  const ExperimentResult tiered = runExperiment(spec, model);
  expectIdenticalResults(flat, tiered, "ft-rpc");
}

TEST(Tiered, QuorumSemanticsSurviveTierSplit) {
  // Crash node 2's daemons mid-run: it must appear in the same
  // unmonitorable transitions, with the same survivor counts and
  // quorum gating, whether the analysis is flat or tiered — and the
  // alarms must still be byte-identical.
  ExperimentSpec spec = baseSpec();
  faults::MonitoringFaultSpec mf;
  mf.kind = faults::MonitoringFaultKind::kCrash;
  mf.node = 2;
  mf.startTime = 70.0;
  spec.monitoringFaults.push_back(mf);

  const analysis::BlackBoxModel model = trainModel(spec);
  const ExperimentResult flat = runExperiment(spec, model);
  EXPECT_FALSE(flat.monitoringEvents.empty());

  spec.tiered = true;
  spec.tierGroups = {2, 4, 3};  // the crashed node sits inside group 0
  const ExperimentResult tiered = runExperiment(spec, model);
  expectIdenticalResults(flat, tiered, "monitoring fault");
}

TEST(Tiered, ReplayReproducesTieredRun) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "asdf_tiered_replay").string();
  std::filesystem::remove_all(dir);

  ExperimentSpec spec = baseSpec();
  spec.faultTolerantRpc = true;
  spec.tiered = true;
  spec.tierGroups = {3, 3, 3};
  const analysis::BlackBoxModel model = trainModel(spec);

  spec.archiveDir = dir;
  const ExperimentResult recorded = runExperiment(spec, model);

  spec.transport = TransportMode::kReplay;
  const ExperimentResult replayed = runExperiment(spec, model);
  expectIdenticalResults(recorded, replayed, "replay");

  std::filesystem::remove_all(dir);
}

TEST(Tiered, SummaryChannelsReportedAsTierTwo) {
  ExperimentSpec spec = baseSpec();
  spec.tiered = true;
  spec.tierGroups = {3, 3, 3};
  const analysis::BlackBoxModel model = trainModel(spec);
  const ExperimentResult result = runExperiment(spec, model);

  bool sawBb = false, sawWb = false, sawTier1 = false;
  for (const RpcChannelReport& ch : result.rpcChannels) {
    if (ch.name == "bb-summary-tcp") {
      sawBb = true;
      EXPECT_EQ(2, ch.tier);
      EXPECT_GT(ch.calls, 0);
      EXPECT_GT(ch.perIterationKbPerSec, 0.0);
    } else if (ch.name == "wb-summary-tcp") {
      sawWb = true;
      EXPECT_EQ(2, ch.tier);
      EXPECT_GT(ch.calls, 0);
    } else {
      sawTier1 = true;
      EXPECT_EQ(1, ch.tier);
    }
  }
  EXPECT_TRUE(sawBb);
  EXPECT_TRUE(sawWb);
  EXPECT_TRUE(sawTier1);
}

TEST(Tiered, TopologyResolution) {
  ExperimentSpec spec;
  spec.slaves = 10;
  spec.tierGroups = {1, 7, 2};
  EXPECT_EQ(spec.tierGroups, tierGroupsFor(spec));

  spec.tierGroups.clear();
  spec.aggregators = 3;
  EXPECT_EQ((std::vector<int>{4, 3, 3}), tierGroupsFor(spec));

  spec.aggregators = 0;  // auto: ceil(sqrt(10)) = 4 groups
  EXPECT_EQ((std::vector<int>{3, 3, 2, 2}), tierGroupsFor(spec));

  spec.slaves = 5000;
  std::vector<int> groups = tierGroupsFor(spec);
  EXPECT_EQ(71u, groups.size());
  int total = 0;
  for (int g : groups) total += g;
  EXPECT_EQ(5000, total);
}

TEST(Tiered, ConfigRejectsBadTopology) {
  PipelineParams p;
  p.slaves = 9;
  p.tierGroups = {3, 3};  // covers 6, not 9
  EXPECT_THROW(buildCombinedConfig(p), ConfigError);
  p.tierGroups = {3, 3, 0};
  EXPECT_THROW(buildCombinedConfig(p), ConfigError);
  p.tierGroups = {9};
  EXPECT_NO_THROW(buildCombinedConfig(p));
  EXPECT_THROW(buildAggregatorConfig(p, 0, 3), ConfigError);
  EXPECT_THROW(buildAggregatorConfig(p, 1, 0), ConfigError);
}

}  // namespace
}  // namespace asdf::harness
