#include "common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace asdf {
namespace {

TEST(Mean, Basics) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({-5.0}), -5.0);
}

TEST(Variance, Basics) {
  EXPECT_DOUBLE_EQ(variance({2.0, 2.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(variance({1.0, 3.0}), 1.0);  // population variance
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({7.0}), 0.0);
}

TEST(Stddev, MatchesSqrtVariance) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0};
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(variance(xs)));
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Median, RobustToOutlier) {
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0, 1.0e9}), 3.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
}

TEST(Percentile, ClampsOutOfRangeP) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -10.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 200.0), 2.0);
}

TEST(Distances, L1AndL2) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {2.0, 0.0, 3.0};
  EXPECT_DOUBLE_EQ(l1Distance(a, b), 3.0);
  EXPECT_DOUBLE_EQ(l2Distance(a, b), std::sqrt(5.0));
  EXPECT_DOUBLE_EQ(l1Distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(l2Distance(a, a), 0.0);
}

TEST(ComponentwiseMedian, PerDimension) {
  const std::vector<std::vector<double>> rows = {
      {1.0, 10.0}, {2.0, 20.0}, {3.0, 0.0}};
  const auto med = componentwiseMedian(rows);
  ASSERT_EQ(med.size(), 2u);
  EXPECT_DOUBLE_EQ(med[0], 2.0);
  EXPECT_DOUBLE_EQ(med[1], 10.0);
}

TEST(ComponentwiseMedian, Empty) {
  EXPECT_TRUE(componentwiseMedian({}).empty());
}

TEST(RunningStats, MatchesBatch) {
  Rng rng(3);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(5.0, 2.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-6);
  EXPECT_EQ(rs.count(), 1000u);
}

TEST(RunningStats, ClearResets) {
  RunningStats rs;
  rs.add(5.0);
  rs.clear();
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(SlidingWindow, FillsThenSlides) {
  SlidingWindow w(3);
  w.push(1.0);
  EXPECT_FALSE(w.full());
  w.push(2.0);
  w.push(3.0);
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.push(10.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_EQ(w.size(), 3u);
}

TEST(SlidingWindow, ValuesInInsertionOrder) {
  SlidingWindow w(3);
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) w.push(x);
  const auto vals = w.values();
  ASSERT_EQ(vals.size(), 3u);
  EXPECT_DOUBLE_EQ(vals[0], 3.0);
  EXPECT_DOUBLE_EQ(vals[1], 4.0);
  EXPECT_DOUBLE_EQ(vals[2], 5.0);
}

TEST(SlidingWindow, ClearEmpties) {
  SlidingWindow w(2);
  w.push(1.0);
  w.push(2.0);
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_FALSE(w.full());
  w.push(9.0);
  EXPECT_DOUBLE_EQ(w.mean(), 9.0);
}

// Property: the sliding window's statistics always equal batch
// statistics over its current contents, for random push sequences.
class SlidingWindowProperty : public ::testing::TestWithParam<int> {};

TEST_P(SlidingWindowProperty, MatchesBatchStatistics) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto capacity =
      static_cast<std::size_t>(rng.uniformInt(1, 20));
  SlidingWindow w(capacity);
  for (int i = 0; i < 200; ++i) {
    w.push(rng.uniform(-100.0, 100.0));
    const auto vals = w.values();
    EXPECT_NEAR(w.mean(), mean(vals), 1e-9);
    EXPECT_NEAR(w.variance(), variance(vals), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomRuns, SlidingWindowProperty,
                         ::testing::Range(0, 8));

// Property: median is invariant under permutation and bounded by
// min/max.
class MedianProperty : public ::testing::TestWithParam<int> {};

TEST_P(MedianProperty, BoundedAndStable) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 1);
  std::vector<double> xs;
  const long n = rng.uniformInt(1, 50);
  for (long i = 0; i < n; ++i) xs.push_back(rng.uniform(-1e6, 1e6));
  const double m = median(xs);
  double lo = xs[0];
  double hi = xs[0];
  for (double x : xs) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  EXPECT_GE(m, lo);
  EXPECT_LE(m, hi);
  std::vector<double> reversed(xs.rbegin(), xs.rend());
  EXPECT_DOUBLE_EQ(median(reversed), m);
}

INSTANTIATE_TEST_SUITE_P(RandomRuns, MedianProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace asdf
