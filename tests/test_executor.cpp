// Executor back-ends (executor.h) and the scheduler behavior that
// depends on them: batch completion, exception propagation, genuine
// concurrency in the pool, and exclusivity domains serializing module
// instances that share state.
#include "core/executor.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/fpt_core.h"
#include "core/module.h"
#include "core/registry.h"

namespace asdf::core {
namespace {

TEST(SerialExecutor, RunsTasksInSubmissionOrder) {
  SerialExecutor exec;
  EXPECT_EQ(exec.name(), "serial");
  EXPECT_EQ(exec.concurrency(), 1);
  std::vector<int> order;
  std::vector<Executor::Task> batch;
  for (int i = 0; i < 5; ++i) {
    batch.push_back([&order, i] { order.push_back(i); });
  }
  exec.runBatch(batch);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SerialExecutor, PropagatesTaskException) {
  SerialExecutor exec;
  std::vector<Executor::Task> batch;
  batch.push_back([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(exec.runBatch(batch), std::runtime_error);
}

TEST(ThreadPoolExecutor, RunsEveryTaskAcrossBatches) {
  ThreadPoolExecutor exec(4);
  EXPECT_EQ(exec.concurrency(), 4);
  EXPECT_EQ(exec.name(), "pool(4)");
  std::atomic<int> count{0};
  for (int round = 0; round < 20; ++round) {
    std::vector<Executor::Task> batch;
    for (int i = 0; i < 7; ++i) {
      batch.push_back([&count] { count.fetch_add(1); });
    }
    exec.runBatch(batch);
  }
  EXPECT_EQ(count.load(), 140);
}

TEST(ThreadPoolExecutor, TasksOfOneBatchOverlap) {
  // Two tasks that each wait until the other has started can only
  // complete if the pool really runs them concurrently.
  ThreadPoolExecutor exec(2);
  std::mutex m;
  std::condition_variable cv;
  int arrived = 0;
  auto rendezvous = [&] {
    std::unique_lock<std::mutex> lock(m);
    ++arrived;
    cv.notify_all();
    cv.wait(lock, [&] { return arrived == 2; });
  };
  std::vector<Executor::Task> batch{rendezvous, rendezvous};
  exec.runBatch(batch);
  EXPECT_EQ(arrived, 2);
}

TEST(ThreadPoolExecutor, RethrowsLowestIndexedException) {
  ThreadPoolExecutor exec(4);
  std::vector<Executor::Task> batch;
  batch.push_back([] {});
  batch.push_back([] { throw std::runtime_error("first"); });
  batch.push_back([] { throw std::logic_error("second"); });
  try {
    exec.runBatch(batch);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  // The pool must survive a throwing batch.
  std::atomic<int> ran{0};
  std::vector<Executor::Task> next{[&ran] { ran.fetch_add(1); }};
  exec.runBatch(next);
  EXPECT_EQ(ran.load(), 1);
}

TEST(MakeExecutor, SelectsBackEndByThreadCount) {
  EXPECT_EQ(makeExecutor(0)->name(), "serial");
  EXPECT_EQ(makeExecutor(1)->name(), "serial");
  EXPECT_EQ(makeExecutor(3)->name(), "pool(3)");
}

// --- exclusivity domains through the scheduler -------------------------

/// Periodic module that tracks how many instances of its exclusivity
/// domain execute concurrently and in which order they start.
class ExclusiveProbe final : public Module {
 public:
  static std::atomic<int> inside;
  static std::atomic<int> maxInside;
  static std::mutex orderMutex;
  static std::vector<std::string> startOrder;

  void init(ModuleContext& ctx) override {
    ctx.requestPeriodic(1.0);
    const std::string domain = ctx.param("domain", "");
    if (!domain.empty()) ctx.requestExclusive(domain);
  }
  void run(ModuleContext& ctx, RunReason) override {
    {
      std::lock_guard<std::mutex> lock(orderMutex);
      startOrder.push_back(ctx.instanceId());
    }
    const int now = inside.fetch_add(1) + 1;
    int seen = maxInside.load();
    while (now > seen && !maxInside.compare_exchange_weak(seen, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    inside.fetch_sub(1);
  }
};

std::atomic<int> ExclusiveProbe::inside{0};
std::atomic<int> ExclusiveProbe::maxInside{0};
std::mutex ExclusiveProbe::orderMutex;
std::vector<std::string> ExclusiveProbe::startOrder;

class ExclusivityTest : public ::testing::Test {
 protected:
  ExclusivityTest() {
    registry_.registerType(
        "probe", [] { return std::make_unique<ExclusiveProbe>(); });
    ExclusiveProbe::inside = 0;
    ExclusiveProbe::maxInside = 0;
    ExclusiveProbe::startOrder.clear();
  }

  sim::SimEngine engine_;
  ModuleRegistry registry_;
};

TEST_F(ExclusivityTest, SharedDomainNeverRunsConcurrently) {
  FptCore core(engine_, Environment{}, &registry_);
  core.setExecutor(std::make_unique<ThreadPoolExecutor>(4));
  core.configureFromText(R"(
[probe]
id = a
domain = shared

[probe]
id = b
domain = shared

[probe]
id = c
domain = shared

[probe]
id = d
domain = shared
)");
  engine_.runUntil(5.0);
  EXPECT_EQ(ExclusiveProbe::maxInside.load(), 1);
  // Within every tick the domain members start in configuration order.
  ASSERT_EQ(ExclusiveProbe::startOrder.size(), 20u);
  for (std::size_t tick = 0; tick < 5; ++tick) {
    EXPECT_EQ(ExclusiveProbe::startOrder[tick * 4 + 0], "a");
    EXPECT_EQ(ExclusiveProbe::startOrder[tick * 4 + 1], "b");
    EXPECT_EQ(ExclusiveProbe::startOrder[tick * 4 + 2], "c");
    EXPECT_EQ(ExclusiveProbe::startOrder[tick * 4 + 3], "d");
  }
}

TEST_F(ExclusivityTest, IndependentInstancesDoOverlap) {
  FptCore core(engine_, Environment{}, &registry_);
  core.setExecutor(std::make_unique<ThreadPoolExecutor>(4));
  // No domain: all four may run concurrently.
  core.configureFromText(R"(
[probe]
id = a

[probe]
id = b

[probe]
id = c

[probe]
id = d
)");
  engine_.runUntil(10.0);
  EXPECT_GT(ExclusiveProbe::maxInside.load(), 1);
}

}  // namespace
}  // namespace asdf::core
