#include <cmath>

#include <gtest/gtest.h>

#include "analysis/bbmodel.h"
#include "analysis/kmeans.h"
#include "analysis/peercompare.h"
#include "common/error.h"
#include "common/rng.h"

namespace asdf::analysis {
namespace {

std::vector<std::vector<double>> twoBlobs(Rng& rng, int perBlob) {
  std::vector<std::vector<double>> points;
  for (int i = 0; i < perBlob; ++i) {
    points.push_back({rng.gaussian(0.0, 0.5), rng.gaussian(0.0, 0.5)});
    points.push_back({rng.gaussian(10.0, 0.5), rng.gaussian(10.0, 0.5)});
  }
  return points;
}

TEST(KMeans, SeparatesTwoBlobs) {
  Rng rng(5);
  const auto points = twoBlobs(rng, 100);
  KMeansOptions options;
  options.k = 2;
  const KMeansResult result = kmeans(points, options, rng);
  ASSERT_EQ(result.centroids.size(), 2u);
  // One centroid near (0,0), the other near (10,10).
  const double a = result.centroids[0][0] + result.centroids[0][1];
  const double b = result.centroids[1][0] + result.centroids[1][1];
  EXPECT_NEAR(std::min(a, b), 0.0, 1.0);
  EXPECT_NEAR(std::max(a, b), 20.0, 1.0);
  // Points alternate blobs, so assignments must alternate too.
  EXPECT_NE(result.assignment[0], result.assignment[1]);
  EXPECT_EQ(result.assignment[0], result.assignment[2]);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  Rng rng(6);
  const auto points = twoBlobs(rng, 50);
  KMeansOptions k1;
  k1.k = 1;
  KMeansOptions k4;
  k4.k = 4;
  Rng r1(1);
  Rng r2(1);
  EXPECT_LT(kmeans(points, k4, r2).inertia, kmeans(points, k1, r1).inertia);
}

TEST(KMeans, SinglePointSingleCluster) {
  Rng rng(7);
  const KMeansResult result =
      kmeans({{3.0, 4.0}}, KMeansOptions{1, 10, 1e-6}, rng);
  ASSERT_EQ(result.centroids.size(), 1u);
  EXPECT_DOUBLE_EQ(result.centroids[0][0], 3.0);
  EXPECT_DOUBLE_EQ(result.inertia, 0.0);
}

TEST(KMeans, KLargerThanDistinctPointsIsSafe) {
  Rng rng(8);
  const KMeansResult result = kmeans(
      {{1.0}, {1.0}, {2.0}}, KMeansOptions{5, 10, 1e-6}, rng);
  EXPECT_EQ(result.centroids.size(), 5u);
  // All assignments valid.
  for (int a : result.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 5);
  }
}

TEST(KMeans, NearestCentroidPicksClosest) {
  const std::vector<std::vector<double>> centroids = {{0.0}, {10.0}, {20.0}};
  EXPECT_EQ(nearestCentroid(centroids, {1.0}), 0u);
  EXPECT_EQ(nearestCentroid(centroids, {14.0}), 1u);
  EXPECT_EQ(nearestCentroid(centroids, {100.0}), 2u);
}

TEST(KMeans, NearestCentroidsOrdered) {
  const std::vector<std::vector<double>> centroids = {{0.0}, {10.0}, {20.0}};
  const auto order = nearestCentroids(centroids, {12.0}, 3);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
}

class KMeansProperty : public ::testing::TestWithParam<int> {};

TEST_P(KMeansProperty, AssignmentsAreNearestAfterConvergence) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 3 + 11);
  std::vector<std::vector<double>> points;
  const long n = rng.uniformInt(10, 80);
  for (long i = 0; i < n; ++i) {
    points.push_back({rng.uniform(-5, 5), rng.uniform(-5, 5),
                      rng.uniform(-5, 5)});
  }
  KMeansOptions options;
  options.k = static_cast<int>(rng.uniformInt(1, 6));
  const KMeansResult result = kmeans(points, options, rng);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(result.assignment[i]),
              nearestCentroid(result.centroids, points[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomRuns, KMeansProperty, ::testing::Range(0, 8));

TEST(BlackBoxModel, TransformAppliesLogAndSigma) {
  BlackBoxModel model;
  model.sigmas = {2.0, 1.0};
  model.centroids = {{0.0, 0.0}};
  const auto t = model.transform({std::exp(2.0) - 1.0, 0.0});
  EXPECT_NEAR(t[0], 1.0, 1e-9);  // log1p(e^2-1)/2 = 1
  EXPECT_NEAR(t[1], 0.0, 1e-9);
}

TEST(BlackBoxModel, NegativeRawValuesClampToZero) {
  BlackBoxModel model;
  model.sigmas = {1.0};
  model.centroids = {{0.0}};
  EXPECT_DOUBLE_EQ(model.transform({-5.0})[0], 0.0);
}

TEST(BlackBoxModel, TrainingLearnsSigmasAndStates) {
  Rng rng(9);
  std::vector<std::vector<double>> training;
  for (int i = 0; i < 400; ++i) {
    // Two workload regimes: idle (low) and busy (high); second metric
    // constant (sigma 0 -> replaced by 1).
    const bool busy = i % 2 == 0;
    training.push_back({busy ? rng.uniform(900, 1100) : rng.uniform(0, 5),
                        7.0});
  }
  const BlackBoxModel model = trainBlackBoxModel(training, 2, rng);
  EXPECT_EQ(model.states(), 2u);
  EXPECT_DOUBLE_EQ(model.sigmas[1], 1.0);  // constant metric guarded
  EXPECT_GT(model.sigmas[0], 0.5);
  // Classification separates the regimes.
  EXPECT_NE(model.classify({1000.0, 7.0}), model.classify({1.0, 7.0}));
}

TEST(BlackBoxModel, SerializeDeserializeRoundTrip) {
  BlackBoxModel model;
  model.sigmas = {1.5, 2.5};
  model.centroids = {{0.25, -1.75}, {3.5, 4.5}};
  const BlackBoxModel back = deserializeModel(serializeModel(model));
  ASSERT_EQ(back.sigmas.size(), 2u);
  EXPECT_DOUBLE_EQ(back.sigmas[1], 2.5);
  ASSERT_EQ(back.centroids.size(), 2u);
  EXPECT_DOUBLE_EQ(back.centroids[1][0], 3.5);
}

TEST(BlackBoxModel, DeserializeRejectsGarbage) {
  EXPECT_THROW(deserializeModel(""), ConfigError);
  EXPECT_THROW(deserializeModel("sigmas,1.0\ncentroid,1.0,2.0\n"),
               ConfigError);  // dimension mismatch
  EXPECT_THROW(deserializeModel("bogus,1.0\n"), ConfigError);
  EXPECT_THROW(deserializeModel("sigmas,abc\ncentroid,1\n"), ConfigError);
}

TEST(StateHistogram, CountsIndices) {
  const auto hist = stateHistogram({0.0, 1.0, 1.0, 2.0, 1.0}, 3);
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_DOUBLE_EQ(hist[0], 1.0);
  EXPECT_DOUBLE_EQ(hist[1], 3.0);
  EXPECT_DOUBLE_EQ(hist[2], 1.0);
}

TEST(StateHistogram, IgnoresOutOfRangeIndices) {
  const auto hist = stateHistogram({-1.0, 5.0, 1.0}, 2);
  EXPECT_DOUBLE_EQ(hist[0], 0.0);
  EXPECT_DOUBLE_EQ(hist[1], 1.0);
}

TEST(BlackBoxCompare, FlagsOutlierAgainstMedian) {
  const std::vector<std::vector<double>> hists = {
      {50.0, 10.0}, {48.0, 12.0}, {10.0, 50.0}, {52.0, 8.0}, {49.0, 11.0}};
  const auto result = blackBoxCompare(hists, 60.0);
  ASSERT_EQ(result.flags.size(), 5u);
  EXPECT_DOUBLE_EQ(result.flags[2], 1.0);
  for (std::size_t i : {0u, 1u, 3u, 4u}) {
    EXPECT_DOUBLE_EQ(result.flags[i], 0.0) << i;
  }
  EXPECT_GT(result.scores[2], result.scores[0]);
}

TEST(BlackBoxCompare, NoFlagsWhenAllSimilar) {
  const std::vector<std::vector<double>> hists = {
      {50.0, 10.0}, {49.0, 11.0}, {51.0, 9.0}};
  const auto result = blackBoxCompare(hists, 10.0);
  for (double f : result.flags) EXPECT_DOUBLE_EQ(f, 0.0);
}

TEST(BlackBoxCompare, ScoresEnableThresholdSweep) {
  // flags at threshold T must equal scores > T for every T.
  const std::vector<std::vector<double>> hists = {
      {50.0, 10.0}, {40.0, 20.0}, {10.0, 50.0}, {55.0, 5.0}};
  for (double threshold : {0.0, 10.0, 30.0, 60.0, 100.0}) {
    const auto result = blackBoxCompare(hists, threshold);
    for (std::size_t i = 0; i < hists.size(); ++i) {
      EXPECT_EQ(result.flags[i] > 0.5, result.scores[i] > threshold);
    }
  }
}

TEST(WhiteBoxCompare, FlagsDeviationAboveFloor) {
  const std::vector<std::vector<double>> means = {
      {2.0}, {0.5}, {0.4}, {0.6}};
  const std::vector<std::vector<double>> devs = {
      {0.1}, {0.1}, {0.1}, {0.1}};
  const auto result = whiteBoxCompare(means, devs, 3.0);
  EXPECT_DOUBLE_EQ(result.flags[0], 1.0);  // diff 1.45 > max(1, 0.3)
  EXPECT_DOUBLE_EQ(result.flags[1], 0.0);
}

TEST(WhiteBoxCompare, UnitFloorSuppressesSmallDeviations) {
  // Deviation below 1 never flags, even with zero sigma (the paper's
  // explicit design point).
  const std::vector<std::vector<double>> means = {
      {0.9}, {0.0}, {0.0}, {0.0}};
  const std::vector<std::vector<double>> devs = {
      {0.0}, {0.0}, {0.0}, {0.0}};
  const auto result = whiteBoxCompare(means, devs, 0.0);
  EXPECT_DOUBLE_EQ(result.flags[0], 0.0);
}

TEST(WhiteBoxCompare, SigmaMedianScalesThreshold) {
  // diff = 2; with sigma_median = 1 and k = 3 the threshold is 3, so
  // no flag; with k = 1 it is max(1,1) = 1, so flag.
  const std::vector<std::vector<double>> means = {
      {2.0}, {0.0}, {0.0}, {0.0}, {0.0}};
  const std::vector<std::vector<double>> devs = {
      {1.0}, {1.0}, {1.0}, {1.0}, {1.0}};
  EXPECT_DOUBLE_EQ(whiteBoxCompare(means, devs, 3.0).flags[0], 0.0);
  EXPECT_DOUBLE_EQ(whiteBoxCompare(means, devs, 1.0).flags[0], 1.0);
}

TEST(WhiteBoxCompare, ZeroSigmaWithLargeDiffAlwaysFlags) {
  const std::vector<std::vector<double>> means = {
      {5.0}, {0.0}, {0.0}};
  const std::vector<std::vector<double>> devs = {
      {0.0}, {0.0}, {0.0}};
  const auto result = whiteBoxCompare(means, devs, 1000.0);
  EXPECT_DOUBLE_EQ(result.flags[0], 1.0);
  EXPECT_DOUBLE_EQ(result.scores[0], kWhiteBoxAlwaysFlagged);
}

// Property: flags at parameter k exactly match scores > k, so offline
// k sweeps (Figure 6b) are faithful to online decisions.
class WhiteBoxSweepProperty : public ::testing::TestWithParam<int> {};

TEST_P(WhiteBoxSweepProperty, CriticalKMatchesDirectEvaluation) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 23 + 1);
  const std::size_t nodes = 5;
  const std::size_t dims = 4;
  for (int iter = 0; iter < 40; ++iter) {
    std::vector<std::vector<double>> means(nodes);
    std::vector<std::vector<double>> devs(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
      for (std::size_t d = 0; d < dims; ++d) {
        means[i].push_back(rng.uniform(0.0, 4.0));
        devs[i].push_back(rng.uniform(0.0, 1.0));
      }
    }
    const auto reference = whiteBoxCompare(means, devs, 0.0);
    for (double k : {0.5, 1.0, 2.0, 3.0, 5.0}) {
      const auto direct = whiteBoxCompare(means, devs, k);
      for (std::size_t i = 0; i < nodes; ++i) {
        EXPECT_EQ(direct.flags[i] > 0.5, reference.scores[i] > k)
            << "node " << i << " k " << k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomRuns, WhiteBoxSweepProperty,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace asdf::analysis
