// Tests of the built-in module library, run inside a real FptCore with
// scripted feeder modules.
#include "modules/modules.h"

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/bbmodel.h"
#include "common/error.h"
#include "common/strings.h"
#include "common/stats.h"
#include "core/fpt_core.h"

namespace asdf::modules {
namespace {

// Feeds a scripted sequence of scalars, one per second.
class ScalarFeeder final : public core::Module {
 public:
  static std::vector<double>* script;
  void init(core::ModuleContext& ctx) override {
    out_ = ctx.addOutput("output0", ctx.param("origin", ""));
    ctx.requestPeriodic(1.0);
  }
  void run(core::ModuleContext& ctx, core::RunReason) override {
    if (index_ < script->size()) {
      ctx.write(out_, (*script)[index_++]);
    }
  }

 private:
  std::size_t index_ = 0;
  int out_ = -1;
};
std::vector<double>* ScalarFeeder::script = nullptr;

// Feeds a scripted sequence where NaN entries mean "no sample this
// second" (an upstream outage: the producer simply does not write).
class GapFeeder final : public core::Module {
 public:
  static std::vector<double>* script;
  void init(core::ModuleContext& ctx) override {
    out_ = ctx.addOutput("output0", ctx.param("origin", ""));
    ctx.requestPeriodic(1.0);
  }
  void run(core::ModuleContext& ctx, core::RunReason) override {
    if (index_ >= script->size()) return;
    const double v = (*script)[index_++];
    if (!std::isnan(v)) ctx.write(out_, v);
  }

 private:
  std::size_t index_ = 0;
  int out_ = -1;
};
std::vector<double>* GapFeeder::script = nullptr;

// Feeds vectors constructed as base + t * slope per dimension.
class VectorFeeder final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    base_ = ctx.numParam("base", 0.0);
    slope_ = ctx.numParam("slope", 0.0);
    dims_ = static_cast<std::size_t>(ctx.intParam("dims", 3));
    out_ = ctx.addOutput("output0", ctx.param("origin", ""));
    ctx.requestPeriodic(1.0);
  }
  void run(core::ModuleContext& ctx, core::RunReason) override {
    ++t_;
    std::vector<double> v(dims_);
    for (std::size_t d = 0; d < dims_; ++d) {
      v[d] = base_ + slope_ * t_ + static_cast<double>(d);
    }
    ctx.write(out_, std::move(v));
  }

 private:
  double base_ = 0.0;
  double slope_ = 0.0;
  std::size_t dims_ = 3;
  int t_ = 0;
  int out_ = -1;
};

// Captures every sample written to its single bound input connection.
class Capture final : public core::Module {
 public:
  static std::vector<core::Sample>* sink;
  void init(core::ModuleContext& ctx) override { ctx.setInputTrigger(1); }
  void run(core::ModuleContext& ctx, core::RunReason) override {
    const auto names = ctx.inputNames();
    for (const auto& name : names) {
      for (std::size_t i = 0; i < ctx.inputWidth(name); ++i) {
        if (ctx.inputFresh(name, i)) sink->push_back(ctx.input(name, i));
      }
    }
  }
};
std::vector<core::Sample>* Capture::sink = nullptr;

class ModulesTest : public ::testing::Test {
 protected:
  ModulesTest() {
    registerBuiltinModules(&registry_);
    registry_.registerType("feeder",
                           [] { return std::make_unique<ScalarFeeder>(); });
    registry_.registerType("vecfeeder",
                           [] { return std::make_unique<VectorFeeder>(); });
    registry_.registerType("gapfeeder",
                           [] { return std::make_unique<GapFeeder>(); });
    registry_.registerType("capture",
                           [] { return std::make_unique<Capture>(); });
    ScalarFeeder::script = &script_;
    GapFeeder::script = &gapScript_;
    Capture::sink = &captured_;
  }

  sim::SimEngine engine_;
  core::ModuleRegistry registry_;
  std::vector<double> script_;
  std::vector<double> gapScript_;
  std::vector<core::Sample> captured_;
};

TEST_F(ModulesTest, RegisterBuiltinsCoversPaperModules) {
  for (const char* name :
       {"sadc", "hadoop_log", "ibuffer", "mavgvec", "knn", "analysis_bb",
        "analysis_wb", "print"}) {
    EXPECT_TRUE(registry_.has(name)) << name;
  }
}

TEST_F(ModulesTest, IBufferEmitsFullWindowsAtSlide) {
  for (int i = 1; i <= 12; ++i) script_.push_back(i);
  core::FptCore core(engine_, core::Environment{}, &registry_);
  core.configureFromText(R"(
[feeder]
id = f

[ibuffer]
id = buf
size = 4
slide = 2
input[input] = f.output0

[capture]
id = cap
input[a] = buf.output0
)");
  engine_.runUntil(12.0);
  // Buffer fills at sample 4, then emits every 2 samples: 4, 6, 8, ...
  ASSERT_GE(captured_.size(), 4u);
  const auto& first = core::asVector(captured_[0].value);
  ASSERT_EQ(first.size(), 4u);
  EXPECT_DOUBLE_EQ(first[0], 1.0);
  EXPECT_DOUBLE_EQ(first[3], 4.0);
  const auto& second = core::asVector(captured_[1].value);
  EXPECT_DOUBLE_EQ(second[0], 3.0);
  EXPECT_DOUBLE_EQ(second[3], 6.0);
}

TEST_F(ModulesTest, IBufferDefaultSilentlySpansGaps) {
  const double gap = std::nan("");
  gapScript_ = {1, 2, 3, 4, gap, gap, 5, 6, 7, 8};
  core::FptCore core(engine_, core::Environment{}, &registry_);
  core.configureFromText(R"(
[gapfeeder]
id = f

[ibuffer]
id = buf
size = 4
slide = 2
input[input] = f.output0

[capture]
id = cap
input[a] = buf.output0
)");
  engine_.runUntil(12.0);
  // ibuffer counts samples, not seconds: with gap detection disabled
  // the second window mixes pre- and post-outage samples.
  ASSERT_GE(captured_.size(), 3u);
  const auto& straddling = core::asVector(captured_[1].value);
  ASSERT_EQ(straddling.size(), 4u);
  EXPECT_DOUBLE_EQ(straddling[0], 3.0);
  EXPECT_DOUBLE_EQ(straddling[1], 4.0);
  EXPECT_DOUBLE_EQ(straddling[2], 5.0);
  EXPECT_DOUBLE_EQ(straddling[3], 6.0);
}

TEST_F(ModulesTest, IBufferResetOnGapDiscardsStaleWindow) {
  const double gap = std::nan("");
  gapScript_ = {1, 2, 3, 4, gap, gap, 5, 6, 7, 8};
  core::FptCore core(engine_, core::Environment{}, &registry_);
  core.configureFromText(R"(
[gapfeeder]
id = f

[ibuffer]
id = buf
size = 4
slide = 2
gap = 1.5
input[input] = f.output0
reset_on_gap = 1

[capture]
id = cap
input[a] = buf.output0
)");
  engine_.runUntil(12.0);
  // The 2-second hole exceeds the 1.5 s gap threshold: the stale
  // window is discarded and only full post-gap windows are emitted —
  // no window straddles the outage.
  ASSERT_EQ(captured_.size(), 2u);
  const auto& before = core::asVector(captured_[0].value);
  EXPECT_DOUBLE_EQ(before[0], 1.0);
  EXPECT_DOUBLE_EQ(before[3], 4.0);
  const auto& after = core::asVector(captured_[1].value);
  EXPECT_DOUBLE_EQ(after[0], 5.0);
  EXPECT_DOUBLE_EQ(after[3], 8.0);
}

TEST_F(ModulesTest, IBufferConsecutiveSamplesNeverTripGapReset) {
  for (int i = 1; i <= 12; ++i) script_.push_back(i);
  core::FptCore core(engine_, core::Environment{}, &registry_);
  core.configureFromText(R"(
[feeder]
id = f

[ibuffer]
id = buf
size = 4
slide = 2
gap = 1.5
reset_on_gap = 1
input[input] = f.output0

[capture]
id = cap
input[a] = buf.output0
)");
  engine_.runUntil(12.0);
  // Contiguous once-per-second samples are exactly 1 s apart, below
  // the threshold: behavior matches the gap-disabled default.
  ASSERT_GE(captured_.size(), 4u);
  const auto& first = core::asVector(captured_[0].value);
  EXPECT_DOUBLE_EQ(first[0], 1.0);
  EXPECT_DOUBLE_EQ(first[3], 4.0);
  const auto& second = core::asVector(captured_[1].value);
  EXPECT_DOUBLE_EQ(second[0], 3.0);
  EXPECT_DOUBLE_EQ(second[3], 6.0);
}

TEST_F(ModulesTest, IBufferResetOnGapRequiresThreshold) {
  script_ = {1, 2, 3};
  core::FptCore core(engine_, core::Environment{}, &registry_);
  EXPECT_THROW(
      {
        core.configureFromText(R"(
[feeder]
id = f

[ibuffer]
id = buf
reset_on_gap = 1
input[input] = f.output0
)");
        engine_.runUntil(2.0);
      },
      ConfigError);
}

TEST_F(ModulesTest, IBufferRejectsVectorInput) {
  core::FptCore core(engine_, core::Environment{}, &registry_);
  core.configureFromText(R"(
[vecfeeder]
id = f

[ibuffer]
id = buf
input[input] = f.output0
)");
  EXPECT_THROW(engine_.runUntil(2.0), ConfigError);
}

TEST_F(ModulesTest, MavgvecComputesWindowStatistics) {
  core::FptCore core(engine_, core::Environment{}, &registry_);
  core.configureFromText(R"(
[vecfeeder]
id = f
base = 10
slope = 1
dims = 2

[mavgvec]
id = m
window = 4
slide = 4
input[input] = f.output0

[capture]
id = cap
input[a] = m.mean
input[b] = m.stddev
)");
  engine_.runUntil(4.0);
  // After 4 samples: dim0 values are 11,12,13,14.
  ASSERT_GE(captured_.size(), 2u);
  const auto& mean = core::asVector(captured_[0].value);
  EXPECT_DOUBLE_EQ(mean[0], 12.5);
  EXPECT_DOUBLE_EQ(mean[1], 13.5);  // +1 per dimension
  const auto& sd = core::asVector(captured_[1].value);
  EXPECT_NEAR(sd[0], stddev({11, 12, 13, 14}), 1e-9);
}

TEST_F(ModulesTest, KnnClassifiesAgainstModel) {
  // Model with two well-separated centroids in transformed space.
  analysis::BlackBoxModel model;
  model.sigmas = {1.0, 1.0};
  model.centroids = {{std::log1p(0.0), std::log1p(0.0)},
                     {std::log1p(100.0), std::log1p(100.0)}};
  core::Environment env;
  env.provide("bb_model", &model);

  script_ = {0.0, 100.0, 0.0, 100.0};
  core::FptCore core(engine_, env, &registry_);
  // The knn input must be a vector; use vecfeeder with dims=2 and
  // alternate via base: simpler to feed two constant streams through
  // separate cores, so here test the low/high split with vecfeeder.
  core.configureFromText(R"(
[vecfeeder]
id = f
base = 100
slope = 0
dims = 2

[knn]
id = nn
k = 1
input[input] = f.output0

[capture]
id = cap
input[a] = nn.output0
)");
  engine_.runUntil(3.0);
  ASSERT_GE(captured_.size(), 3u);
  for (const auto& s : captured_) {
    EXPECT_DOUBLE_EQ(core::asScalar(s.value), 1.0);  // the "busy" state
  }
}

TEST_F(ModulesTest, KnnChecksDimensions) {
  analysis::BlackBoxModel model;
  model.sigmas = {1.0, 1.0, 1.0};  // 3 dims
  model.centroids = {{0.0, 0.0, 0.0}};
  core::Environment env;
  env.provide("bb_model", &model);
  core::FptCore core(engine_, env, &registry_);
  core.configureFromText(R"(
[vecfeeder]
id = f
dims = 2

[knn]
id = nn
input[input] = f.output0
)");
  EXPECT_THROW(engine_.runUntil(2.0), ConfigError);
}

TEST_F(ModulesTest, AnalysisBbFlagsPlantedOutlier) {
  analysis::BlackBoxModel model;
  model.sigmas = {1.0};
  model.centroids = {{0.0}, {5.0}};  // two workload states
  core::Environment env;
  env.provide("bb_model", &model);
  std::vector<core::Alarm> alarms;
  env.alarmSink = [&](const core::Alarm& a) { alarms.push_back(a); };

  // Four nodes: three always in state 0, one always in state 1.
  std::string config;
  for (int i = 0; i < 4; ++i) {
    config += strformat(
        "[vecfeeder]\nid = f%d\nbase = %d\ndims = 1\norigin = slave%d\n\n",
        i, i == 2 ? 200 : 0, i + 1);
    config += strformat(
        "[knn]\nid = nn%d\ninput[input] = f%d.output0\n\n", i, i);
    config += strformat(
        "[ibuffer]\nid = buf%d\nsize = 10\nslide = 5\ninput[input] = "
        "nn%d.output0\n\n",
        i, i);
  }
  config += "[analysis_bb]\nid = bb\nthreshold = 5\n";
  for (int i = 0; i < 4; ++i) {
    config += strformat("input[l%d] = buf%d.output0\n", i, i);
  }
  config += "\n[print]\nid = Alarm\nquiet = 1\ninput[a] = @bb\n";

  core::FptCore core(engine_, env, &registry_);
  core.configureFromText(config);
  engine_.runUntil(30.0);

  ASSERT_FALSE(alarms.empty());
  const core::Alarm& a = alarms.back();
  ASSERT_EQ(a.flags.size(), 4u);
  EXPECT_DOUBLE_EQ(a.flags[0], 0.0);
  EXPECT_DOUBLE_EQ(a.flags[1], 0.0);
  EXPECT_DOUBLE_EQ(a.flags[2], 1.0);  // the planted outlier
  EXPECT_DOUBLE_EQ(a.flags[3], 0.0);
  ASSERT_EQ(a.scores.size(), 4u);
  EXPECT_GT(a.scores[2], a.scores[0]);
  ASSERT_EQ(a.origins.size(), 4u);
  EXPECT_EQ(a.origins[2], "slave3");
}

TEST_F(ModulesTest, AnalysisBbRequiresThreeNodes) {
  analysis::BlackBoxModel model;
  model.sigmas = {1.0};
  model.centroids = {{0.0}};
  core::Environment env;
  env.provide("bb_model", &model);
  core::FptCore core(engine_, env, &registry_);
  EXPECT_THROW(core.configureFromText(R"(
[vecfeeder]
id = f0
dims = 1

[ibuffer]
id = b0
input[input] = f0.output0

[analysis_bb]
id = bb
input[l0] = b0.output0
)"),
               ConfigError);
}

TEST_F(ModulesTest, AnalysisWbFlagsDeviatingMean) {
  core::Environment env;
  std::vector<core::Alarm> alarms;
  env.alarmSink = [&](const core::Alarm& a) { alarms.push_back(a); };

  // Node 1 reports a mean 3 higher than the others; stddevs are tiny,
  // so the threshold floor max(1, 3*sigma) = 1 is exceeded.
  std::string config;
  for (int i = 0; i < 4; ++i) {
    config += strformat(
        "[vecfeeder]\nid = f%d\nbase = %d\ndims = 2\norigin = slave%d\n\n",
        i, i == 1 ? 3 : 0, i + 1);
    config += strformat(
        "[mavgvec]\nid = m%d\nwindow = 6\nslide = 3\ninput[input] = "
        "f%d.output0\n\n",
        i, i);
  }
  config += "[analysis_wb]\nid = wb\nk = 3\n";
  for (int i = 0; i < 4; ++i) {
    config += strformat("input[a%d] = m%d.mean\n", i, i);
    config += strformat("input[d%d] = m%d.stddev\n", i, i);
  }
  config += "\n[print]\nid = Alarm\nquiet = 1\ninput[a] = @wb\n";

  core::FptCore core(engine_, env, &registry_);
  core.configureFromText(config);
  engine_.runUntil(20.0);

  ASSERT_FALSE(alarms.empty());
  const core::Alarm& a = alarms.back();
  ASSERT_EQ(a.flags.size(), 4u);
  EXPECT_DOUBLE_EQ(a.flags[0], 0.0);
  EXPECT_DOUBLE_EQ(a.flags[1], 1.0);
  EXPECT_DOUBLE_EQ(a.flags[2], 0.0);
}

TEST_F(ModulesTest, AnalysisWbRespectsUnitFloor) {
  // A deviation of exactly 1 must NOT be flagged: the paper's
  // max(1, k*sigma) floor exists precisely because "several white-box
  // metrics ... vary by a small amount (typically 1)".
  core::Environment env;
  std::vector<core::Alarm> alarms;
  env.alarmSink = [&](const core::Alarm& a) { alarms.push_back(a); };
  std::string config;
  for (int i = 0; i < 3; ++i) {
    config += strformat(
        "[vecfeeder]\nid = f%d\nbase = %s\ndims = 1\n\n", i,
        i == 0 ? "1.0" : "0.0");
    config += strformat(
        "[mavgvec]\nid = m%d\nwindow = 4\nslide = 2\ninput[input] = "
        "f%d.output0\n\n",
        i, i);
  }
  config += "[analysis_wb]\nid = wb\nk = 3\n";
  for (int i = 0; i < 3; ++i) {
    config += strformat("input[a%d] = m%d.mean\n", i, i);
    config += strformat("input[d%d] = m%d.stddev\n", i, i);
  }
  config += "\n[print]\nid = Alarm\nquiet = 1\ninput[a] = @wb\n";
  core::FptCore core(engine_, env, &registry_);
  core.configureFromText(config);
  engine_.runUntil(20.0);
  ASSERT_FALSE(alarms.empty());
  for (const auto& a : alarms) {
    EXPECT_DOUBLE_EQ(a.flags[0], 0.0);
  }
}

TEST_F(ModulesTest, HadoopLogSyncReleasesOnlyCompleteRows) {
  HadoopLogSync sync;
  sync.registerNode(1);
  sync.registerNode(2);
  sync.push(1, 0, {1.0});
  EXPECT_TRUE(sync.drain(1).empty());  // node 2 hasn't reported second 0
  sync.push(2, 0, {2.0});
  const auto rows1 = sync.drain(1);
  ASSERT_EQ(rows1.size(), 1u);
  EXPECT_EQ(rows1[0].first, 0);
  EXPECT_DOUBLE_EQ(rows1[0].second[0], 1.0);
  const auto rows2 = sync.drain(2);
  ASSERT_EQ(rows2.size(), 1u);
  EXPECT_DOUBLE_EQ(rows2[0].second[0], 2.0);
  EXPECT_TRUE(sync.drain(1).empty());  // cursor advanced
}

TEST_F(ModulesTest, HadoopLogSyncDropsStaleIncompleteSeconds) {
  HadoopLogSync sync;
  sync.registerNode(1);
  sync.registerNode(2);
  sync.push(1, 0, {1.0});  // node 2 never reports second 0
  sync.push(1, 1, {1.1});
  sync.push(2, 1, {2.1});  // completes second 1 -> second 0 dropped
  EXPECT_EQ(sync.droppedSeconds(), 1);
  const auto rows = sync.drain(1);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].first, 1);
}

TEST_F(ModulesTest, SadcModuleRequiresNodeParam) {
  core::Environment env;
  core::FptCore core(engine_, env, &registry_);
  EXPECT_THROW(core.configureFromText("[sadc]\nid = s\n"), ConfigError);
}

}  // namespace
}  // namespace asdf::modules
