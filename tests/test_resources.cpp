#include "sim/resources.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace asdf::sim {
namespace {

TEST(ShareResource, FullGrantUnderCapacity) {
  ShareResource r("r", 10.0);
  r.beginTick();
  const int h1 = r.request(3.0);
  const int h2 = r.request(4.0);
  r.finalize();
  EXPECT_DOUBLE_EQ(r.granted(h1), 3.0);
  EXPECT_DOUBLE_EQ(r.granted(h2), 4.0);
  EXPECT_DOUBLE_EQ(r.grantRatio(), 1.0);
  EXPECT_DOUBLE_EQ(r.totalGranted(), 7.0);
  EXPECT_DOUBLE_EQ(r.utilization(), 0.7);
}

TEST(ShareResource, ProportionalUnderOversubscription) {
  ShareResource r("r", 10.0);
  r.beginTick();
  const int h1 = r.request(10.0);
  const int h2 = r.request(30.0);
  r.finalize();
  EXPECT_DOUBLE_EQ(r.grantRatio(), 0.25);
  EXPECT_DOUBLE_EQ(r.granted(h1), 2.5);
  EXPECT_DOUBLE_EQ(r.granted(h2), 7.5);
  EXPECT_DOUBLE_EQ(r.totalGranted(), 10.0);
  EXPECT_DOUBLE_EQ(r.utilization(), 1.0);
}

TEST(ShareResource, ZeroDemandIsFine) {
  ShareResource r("r", 10.0);
  r.beginTick();
  const int h = r.request(0.0);
  r.finalize();
  EXPECT_DOUBLE_EQ(r.granted(h), 0.0);
  EXPECT_DOUBLE_EQ(r.demand(), 0.0);
  EXPECT_DOUBLE_EQ(r.utilization(), 0.0);
}

TEST(ShareResource, ResetsBetweenTicks) {
  ShareResource r("r", 10.0);
  r.beginTick();
  r.request(40.0);
  r.finalize();
  EXPECT_DOUBLE_EQ(r.grantRatio(), 0.25);
  r.beginTick();
  const int h = r.request(5.0);
  r.finalize();
  EXPECT_DOUBLE_EQ(r.granted(h), 5.0);
}

TEST(ShareResource, SetCapacity) {
  ShareResource r("r", 10.0);
  r.setCapacity(20.0);
  EXPECT_DOUBLE_EQ(r.capacity(), 20.0);
  r.beginTick();
  const int h = r.request(15.0);
  r.finalize();
  EXPECT_DOUBLE_EQ(r.granted(h), 15.0);
}

// Property: grants sum to min(demand, capacity) and each grant never
// exceeds its request, for random demand patterns.
class ShareResourceProperty : public ::testing::TestWithParam<int> {};

TEST_P(ShareResourceProperty, ConservationAndBounds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 3);
  ShareResource r("r", rng.uniform(1.0, 100.0));
  for (int tick = 0; tick < 50; ++tick) {
    r.beginTick();
    const long n = rng.uniformInt(0, 12);
    std::vector<std::pair<int, double>> reqs;
    for (long i = 0; i < n; ++i) {
      const double amount = rng.uniform(0.0, 40.0);
      reqs.emplace_back(r.request(amount), amount);
    }
    r.finalize();
    double sum = 0.0;
    for (const auto& [h, amount] : reqs) {
      const double g = r.granted(h);
      EXPECT_GE(g, 0.0);
      EXPECT_LE(g, amount + 1e-9);
      sum += g;
    }
    EXPECT_NEAR(sum, std::min(r.demand(), r.capacity()), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomRuns, ShareResourceProperty,
                         ::testing::Range(0, 10));

TEST(NicResource, NoLossPassesThrough) {
  NicResource nic(100.0);
  nic.beginTick();
  const int h = nic.request(40.0);
  nic.finalize();
  EXPECT_DOUBLE_EQ(nic.granted(h), 40.0);
  EXPECT_DOUBLE_EQ(nic.goodputFactor(), 1.0);
}

TEST(NicResource, FiftyPercentLossCollapsesGoodput) {
  NicResource nic(100.0);
  nic.setLossRate(0.5);
  // TCP collapse: goodput a few percent of line rate at 50% loss
  // (HADOOP-2956's "long block transfer times").
  EXPECT_LT(nic.goodputFactor(), 0.06);
  EXPECT_GT(nic.goodputFactor(), 0.01);
  nic.beginTick();
  const int h = nic.request(100.0);
  nic.finalize();
  EXPECT_LT(nic.granted(h), 6.0);
}

TEST(NicResource, LossMonotonicallyDegradesGoodput) {
  NicResource nic(100.0);
  double prev = 1.1;
  for (double loss : {0.0, 0.1, 0.2, 0.3, 0.5, 0.8}) {
    nic.setLossRate(loss);
    EXPECT_LT(nic.goodputFactor(), prev);
    prev = nic.goodputFactor();
  }
}

TEST(NicResource, ClearingLossRestoresFullRate) {
  NicResource nic(100.0);
  nic.setLossRate(0.5);
  nic.setLossRate(0.0);
  EXPECT_DOUBLE_EQ(nic.goodputFactor(), 1.0);
}

TEST(NicResource, SharesLineRateProportionally) {
  NicResource nic(100.0);
  nic.beginTick();
  const int h1 = nic.request(100.0);
  const int h2 = nic.request(100.0);
  nic.finalize();
  EXPECT_DOUBLE_EQ(nic.granted(h1), 50.0);
  EXPECT_DOUBLE_EQ(nic.granted(h2), 50.0);
}

}  // namespace
}  // namespace asdf::sim
