// Replay determinism: a recorded run played back through
// transport=replay must reproduce the recording run byte-for-byte —
// alarms, ground truth, cluster counters, Table-4 channel accounting —
// on both the serial and the thread-pool executor, for plain-sim and
// fault-tolerant recordings alike. Plus a transport-parity unit test
// pinning RpcClient's byte accounting over a hand-written archive.
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "archive/collector.h"
#include "archive/writer.h"
#include "harness/experiment.h"
#include "modules/modules.h"
#include "rpc/payloads.h"
#include "rpc/rpc_client.h"
#include "rpc/transport.h"
#include "rpc/wire.h"

namespace asdf::harness {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

ExperimentSpec baseSpec(int slaves, std::uint64_t seed) {
  modules::registerBuiltinModules();
  ExperimentSpec spec;
  spec.slaves = slaves;
  spec.duration = 200.0;
  spec.trainDuration = 80.0;
  spec.trainWarmup = 20.0;
  spec.seed = seed;
  spec.fault.type = faults::FaultType::kCpuHog;
  spec.fault.node = 2;
  spec.fault.startTime = 60.0;
  return spec;
}

ExperimentSpec replaySpec(const ExperimentSpec& recorded,
                          const std::string& dir, int threads) {
  ExperimentSpec spec = recorded;
  spec.transport = TransportMode::kReplay;
  spec.archiveDir = dir;
  spec.threads = threads;
  return spec;
}

void expectIdenticalSeries(const analysis::AlarmSeries& a,
                           const analysis::AlarmSeries& b,
                           const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time) << label << " alarm " << i;
    EXPECT_EQ(a[i].flags, b[i].flags) << label << " alarm " << i;
    EXPECT_EQ(a[i].scores, b[i].scores) << label << " alarm " << i;
  }
}

// Everything the recording run reported that a faithful replay must
// reproduce bit-for-bit: alarms, truth, cluster counters, and the
// Table-4 channel accounting. Robustness counters are compared
// separately (plain-sim recordings report zeros there, replay always
// routes through RpcClient).
void expectReplayMatches(const ExperimentResult& rec,
                         const ExperimentResult& rep,
                         const std::string& label) {
  expectIdenticalSeries(rec.blackBox, rep.blackBox, label + " black-box");
  expectIdenticalSeries(rec.whiteBox, rep.whiteBox, label + " white-box");

  EXPECT_EQ(rec.truth.slaveIndex, rep.truth.slaveIndex) << label;
  EXPECT_EQ(rec.truth.faultStart, rep.truth.faultStart) << label;
  EXPECT_EQ(rec.truth.faultEnd, rep.truth.faultEnd) << label;
  EXPECT_EQ(rec.simulatedSeconds, rep.simulatedSeconds) << label;

  EXPECT_EQ(rec.jobsSubmitted, rep.jobsSubmitted) << label;
  EXPECT_EQ(rec.jobsCompleted, rep.jobsCompleted) << label;
  EXPECT_EQ(rec.tasksCompleted, rep.tasksCompleted) << label;
  EXPECT_EQ(rec.tasksFailed, rep.tasksFailed) << label;
  EXPECT_EQ(rec.speculativeLaunches, rep.speculativeLaunches) << label;
  EXPECT_EQ(rec.syncDroppedSeconds, rep.syncDroppedSeconds) << label;

  ASSERT_EQ(rec.rpcChannels.size(), rep.rpcChannels.size()) << label;
  for (std::size_t i = 0; i < rec.rpcChannels.size(); ++i) {
    const RpcChannelReport& a = rec.rpcChannels[i];
    const RpcChannelReport& b = rep.rpcChannels[i];
    EXPECT_EQ(a.name, b.name) << label;
    EXPECT_EQ(a.connects, b.connects) << label << " " << a.name;
    EXPECT_EQ(a.calls, b.calls) << label << " " << a.name;
    EXPECT_EQ(a.failedCalls, b.failedCalls) << label << " " << a.name;
    EXPECT_EQ(a.staticOverheadKb, b.staticOverheadKb)
        << label << " " << a.name;
    EXPECT_EQ(a.perIterationKbPerSec, b.perIterationKbPerSec)
        << label << " " << a.name;
  }
}

TEST(ArchiveReplay, SimRecordThenReplayByteIdentical) {
  TempDir dir("asdf-replay-sim");
  ExperimentSpec spec = baseSpec(8, 4242);
  spec.archiveDir = dir.path;
  spec.archiveSegmentBytes = 256 * 1024;  // exercise rotation en route

  const analysis::BlackBoxModel model = trainModel(spec);
  const ExperimentResult recorded = runExperiment(spec, model);
  ASSERT_FALSE(recorded.blackBox.empty());
  ASSERT_FALSE(recorded.whiteBox.empty());

  const ExperimentResult serial =
      runExperiment(replaySpec(spec, dir.path, 1), model);
  const ExperimentResult pooled =
      runExperiment(replaySpec(spec, dir.path, 4), model);

  expectReplayMatches(recorded, serial, "replay-serial");
  expectReplayMatches(recorded, pooled, "replay-pool");

  // A plain-sim recording has no collection failures, so its replay
  // must not invent any: every round served from the archive on the
  // first attempt.
  EXPECT_EQ(serial.rpcRetries, 0);
  EXPECT_EQ(serial.rpcFailedRounds, 0);
  EXPECT_EQ(serial.rpcFastFails, 0);
  EXPECT_GT(serial.rpcRounds, 0);
}

TEST(ArchiveReplay, FtSimRecordThenReplayReproducesFailures) {
  TempDir dir("asdf-replay-ftsim");
  ExperimentSpec spec = baseSpec(6, 777);
  spec.archiveDir = dir.path;
  spec.faultTolerantRpc = true;
  faults::MonitoringFaultSpec crash;
  crash.kind = faults::MonitoringFaultKind::kCrash;
  crash.node = 3;
  crash.startTime = 80.0;
  crash.endTime = 120.0;
  spec.monitoringFaults.push_back(crash);

  const analysis::BlackBoxModel model = trainModel(spec);
  const ExperimentResult recorded = runExperiment(spec, model);
  ASSERT_FALSE(recorded.blackBox.empty());
  // The crash actually bit: failed rounds, retries, breaker opens.
  ASSERT_GT(recorded.rpcFailedRounds, 0);
  ASSERT_GT(recorded.rpcBreakerOpens, 0);

  const ExperimentResult replayed =
      runExperiment(replaySpec(spec, dir.path, 1), model);
  expectReplayMatches(recorded, replayed, "replay-ft");

  // The failure history reproduces exactly from the archived attempt
  // counts: same rounds, same retries, same failed rounds, same
  // breaker behaviour (fast-fail rounds never hit the archive but
  // re-emerge from the identical outcome sequence). Attempt *times*
  // differ by construction — replay resolves attempts instantly — so
  // rpcAttemptTimes is deliberately not compared.
  EXPECT_EQ(recorded.rpcRounds, replayed.rpcRounds);
  EXPECT_EQ(recorded.rpcRetries, replayed.rpcRetries);
  EXPECT_EQ(recorded.rpcFailedRounds, replayed.rpcFailedRounds);
  EXPECT_EQ(recorded.rpcFastFails, replayed.rpcFastFails);
  EXPECT_EQ(recorded.rpcBreakerOpens, replayed.rpcBreakerOpens);

  ASSERT_EQ(recorded.monitoringEvents.size(), replayed.monitoringEvents.size());
  for (std::size_t i = 0; i < recorded.monitoringEvents.size(); ++i) {
    const core::MonitoringEvent& a = recorded.monitoringEvents[i];
    const core::MonitoringEvent& b = replayed.monitoringEvents[i];
    EXPECT_EQ(a.time, b.time) << "event " << i;
    EXPECT_EQ(a.channel, b.channel) << "event " << i;
    EXPECT_EQ(a.survivors, b.survivors) << "event " << i;
    EXPECT_EQ(a.quorum, b.quorum) << "event " << i;
    EXPECT_EQ(a.belowQuorum, b.belowQuorum) << "event " << i;
    EXPECT_EQ(a.unmonitorable, b.unmonitorable) << "event " << i;
  }
}

// Byte-accounting parity across transports, pinned at the unit level:
// replayed rounds must charge the channel exactly what the equivalent
// live/sim rounds charge — connect overhead once per node, 48-byte
// requests per attempt, response payload bytes on success only.
TEST(ArchiveReplay, AccountingParityAcrossTransports) {
  TempDir dir("asdf-replay-accounting");

  rpc::Encoder payloadEnc;
  rpc::encodeSnapshot(payloadEnc, metrics::SadcSnapshot{});
  const std::vector<std::uint8_t> payload(payloadEnc.bytes().begin(),
                                          payloadEnc.bytes().end());
  {
    archive::ArchiveMeta meta;
    meta.seed = 7;
    meta.slaves = 1;
    meta.source = "sim";
    meta.duration = 3.0;
    archive::ArchiveWriterOptions opts;
    opts.dir = dir.path;
    archive::ArchiveWriter writer(opts, meta);
    archive::SampleRecord rec;
    rec.kind = rpc::CollectKind::kSadc;
    rec.node = 1;
    // Round at t=0: clean first-attempt success.
    rec.now = 0.0;
    rec.attempts = 1;
    rec.ok = true;
    rec.payload = payload;
    writer.append(rec);
    // Round at t=1: success on the third attempt (two recorded retries).
    rec.now = 1.0;
    rec.seq = 1;
    rec.attempts = 3;
    writer.append(rec);
    // Round at t=2: full failure after all four attempts.
    rec.now = 2.0;
    rec.seq = 2;
    rec.attempts = 4;
    rec.ok = false;
    rec.payload.clear();
    writer.append(rec);
    writer.close();
  }

  archive::ArchiveCollector collector(dir.path);
  rpc::RpcClient client(collector, rpc::RpcPolicy{}, 7,
                        /*realBackoff=*/false);

  const rpc::Fetched<metrics::SadcSnapshot> clean = client.fetchSadc(1, 0.0);
  EXPECT_TRUE(clean.ok);
  EXPECT_FALSE(clean.retried);
  EXPECT_EQ(clean.attempts, 1);

  const rpc::Fetched<metrics::SadcSnapshot> retried = client.fetchSadc(1, 1.0);
  EXPECT_TRUE(retried.ok);
  EXPECT_TRUE(retried.retried);
  EXPECT_EQ(retried.attempts, 3);

  const rpc::Fetched<metrics::SadcSnapshot> failed = client.fetchSadc(1, 2.0);
  EXPECT_FALSE(failed.ok);
  EXPECT_EQ(failed.attempts, 1 + rpc::RpcPolicy{}.maxRetries);
  EXPECT_EQ(client.health().channelHealth(1, rpc::Daemon::kSadc),
            rpc::NodeHealth::kUnmonitorable);

  EXPECT_EQ(collector.hits(), 2);
  EXPECT_EQ(collector.misses(), 0);
  EXPECT_EQ(collector.replayedFailures(), 2 + 4);

  // Reference channel fed the exact call sequence the live/sim paths
  // would record for those three rounds.
  rpc::RpcChannelStats reference("sadc-tcp", rpc::TransportCosts{});
  reference.recordConnect();                             // node 1 connect
  reference.recordCall(rpc::kCollectRequestBytes, payload.size());
  reference.recordFailedCall(rpc::kCollectRequestBytes);  // round 2 ...
  reference.recordFailedCall(rpc::kCollectRequestBytes);
  reference.recordCall(rpc::kCollectRequestBytes, payload.size());
  for (int i = 0; i < 4; ++i) {                           // round 3
    reference.recordFailedCall(rpc::kCollectRequestBytes);
  }

  const rpc::RpcChannelStats& channel = client.transports().channel("sadc-tcp");
  EXPECT_EQ(channel.connects(), reference.connects());
  EXPECT_EQ(channel.calls(), reference.calls());
  EXPECT_EQ(channel.failedCalls(), reference.failedCalls());
  EXPECT_EQ(channel.staticOverheadBytes(), reference.staticOverheadBytes());
  EXPECT_EQ(channel.totalCallBytes(), reference.totalCallBytes());
}

// The ISSUE's headline acceptance at cluster scale. Kept out of the
// sanitizer regexes (ArchiveScale, not ArchiveReplay) — it runs in the
// default CI build only.
TEST(ArchiveScale, FiftyNodeReplayByteIdentical) {
  TempDir dir("asdf-replay-scale");
  ExperimentSpec spec = baseSpec(50, 2026);
  spec.duration = 180.0;
  spec.trainDuration = 90.0;
  spec.trainWarmup = 30.0;
  spec.fault.node = 7;
  spec.archiveDir = dir.path;
  spec.threads = 4;

  const analysis::BlackBoxModel model = trainModel(spec);
  const ExperimentResult recorded = runExperiment(spec, model);
  ASSERT_FALSE(recorded.blackBox.empty());

  const ExperimentResult replayed =
      runExperiment(replaySpec(spec, dir.path, 4), model);
  expectReplayMatches(recorded, replayed, "replay-scale");

  const ExperimentSummary recSummary = summarize(recorded);
  const ExperimentSummary repSummary = summarize(replayed);
  EXPECT_EQ(recSummary.combined.eval.tp, repSummary.combined.eval.tp);
  EXPECT_EQ(recSummary.combined.eval.fp, repSummary.combined.eval.fp);
  EXPECT_EQ(recSummary.combined.latencySeconds,
            repSummary.combined.latencySeconds);
}

}  // namespace
}  // namespace asdf::harness
