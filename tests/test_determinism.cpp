// Cross-executor determinism regression: the same fingerpointing
// experiment must produce bit-identical alarm series when run twice on
// the SerialExecutor (reproducibility) and once on a 4-thread
// ThreadPoolExecutor (executor independence). Level barriers plus
// exclusivity domains are what make this hold; see DESIGN.md.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "modules/modules.h"

namespace asdf::harness {
namespace {

ExperimentSpec smallSpec() {
  modules::registerBuiltinModules();
  ExperimentSpec spec;
  spec.slaves = 4;
  spec.duration = 150.0;
  spec.trainDuration = 80.0;
  spec.trainWarmup = 20.0;
  spec.seed = 1234;
  spec.fault.type = faults::FaultType::kCpuHog;
  spec.fault.node = 2;
  spec.fault.startTime = 60.0;
  return spec;
}

void expectIdenticalSeries(const analysis::AlarmSeries& a,
                           const analysis::AlarmSeries& b,
                           const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time) << label << " alarm " << i;
    EXPECT_EQ(a[i].flags, b[i].flags) << label << " alarm " << i;
    EXPECT_EQ(a[i].scores, b[i].scores) << label << " alarm " << i;
  }
}

TEST(Determinism, AlarmsIdenticalAcrossRunsAndExecutors) {
  ExperimentSpec spec = smallSpec();
  const analysis::BlackBoxModel model = trainModel(spec);

  spec.threads = 1;
  const ExperimentResult serial1 = runExperiment(spec, model);
  const ExperimentResult serial2 = runExperiment(spec, model);
  spec.threads = 4;
  const ExperimentResult pooled = runExperiment(spec, model);

  // The run produced signal at all — a trivially empty series would
  // make the comparisons below vacuous.
  EXPECT_FALSE(serial1.blackBox.empty());
  EXPECT_FALSE(serial1.whiteBox.empty());

  expectIdenticalSeries(serial1.blackBox, serial2.blackBox,
                        "serial/serial black-box");
  expectIdenticalSeries(serial1.whiteBox, serial2.whiteBox,
                        "serial/serial white-box");
  expectIdenticalSeries(serial1.blackBox, pooled.blackBox,
                        "serial/pool black-box");
  expectIdenticalSeries(serial1.whiteBox, pooled.whiteBox,
                        "serial/pool white-box");

  // Sanity on the shared-service accounting under the pool: every
  // channel carried exactly as much traffic as under the serial run.
  ASSERT_EQ(serial1.rpcChannels.size(), pooled.rpcChannels.size());
  for (std::size_t i = 0; i < serial1.rpcChannels.size(); ++i) {
    EXPECT_EQ(serial1.rpcChannels[i].name, pooled.rpcChannels[i].name);
    EXPECT_EQ(serial1.rpcChannels[i].calls, pooled.rpcChannels[i].calls);
  }
  EXPECT_EQ(serial1.syncDroppedSeconds, pooled.syncDroppedSeconds);
}

}  // namespace
}  // namespace asdf::harness
