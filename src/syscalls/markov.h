// First-order Markov model over syscall categories.
//
// The strace analysis trains on fault-free traffic, then scores fresh
// trace seconds by their average negative log-likelihood under the
// learned transition matrix. A hung task (futex/nanosleep loop) or a
// spinning task (near-empty trace) drags the per-second score away
// from what the model expects, and peer comparison localizes the node.
#pragma once

#include <cstddef>
#include <vector>

#include "syscalls/trace_model.h"

namespace asdf::syscalls {

class MarkovModel {
 public:
  MarkovModel();

  /// Accumulates transition counts from a trace second.
  void train(const TraceSecond& trace);

  /// Total transitions observed during training.
  long trainedTransitions() const { return trained_; }

  /// Average negative log-likelihood per transition of a trace under
  /// the model (Laplace-smoothed). Empty/one-event traces score the
  /// model's entropy baseline (no evidence either way).
  double negLogLikelihood(const TraceSecond& trace) const;

  /// The model's own average NLL over its training distribution — a
  /// baseline to compare scores against.
  double entropyBaseline() const;

  /// Transition probability (for tests / introspection).
  double transitionProbability(std::uint8_t from, std::uint8_t to) const;

 private:
  double rowTotal(std::size_t from) const;

  std::vector<long> counts_;  // kSyscallKinds x kSyscallKinds
  long trained_ = 0;
};

}  // namespace asdf::syscalls
