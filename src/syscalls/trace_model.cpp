#include "syscalls/trace_model.h"

#include <algorithm>
#include <cmath>

namespace asdf::syscalls {
namespace {

const char* kNames[kSyscallKinds] = {
    "read",       "write", "fsync", "sendto", "recvfrom",
    "epoll_wait", "futex", "nanosleep", "mmap", "clone",
};

}  // namespace

const char* syscallName(Syscall s) {
  return kNames[static_cast<std::size_t>(s)];
}

SyscallTraceModel::SyscallTraceModel(Params params, Rng rng)
    : params_(params), rng_(rng) {}

TraceSecond SyscallTraceModel::tick(const metrics::NodeActivity& a,
                                    int hungTasks, int spinningTasks) {
  // Expected call counts per category for this second, derived from
  // what the node actually did. 64 KiB per read/write call; one
  // socket call per ~8 KiB (Hadoop's io.file.buffer.size era).
  double rates[kSyscallKinds] = {};
  rates[static_cast<std::size_t>(Syscall::kRead)] =
      a.diskReadBytes / 65536.0;
  rates[static_cast<std::size_t>(Syscall::kWrite)] =
      a.diskWriteBytes / 65536.0;
  rates[static_cast<std::size_t>(Syscall::kFsync)] =
      a.diskWriteBytes > 0 ? 2.0 : 0.0;
  rates[static_cast<std::size_t>(Syscall::kSocketSend)] =
      a.netTxBytes / 8192.0;
  rates[static_cast<std::size_t>(Syscall::kSocketRecv)] =
      a.netRxBytes / 8192.0;
  rates[static_cast<std::size_t>(Syscall::kEpollWait)] =
      4.0 + (a.netRxBytes + a.netTxBytes) / 16384.0;
  // A wedged task spins through pthread_cond_timedwait: a storm of
  // futex + nanosleep that dwarfs the node's normal call mix.
  rates[static_cast<std::size_t>(Syscall::kFutex)] =
      8.0 + 10.0 * a.cpuUserCores + 1600.0 * hungTasks;
  rates[static_cast<std::size_t>(Syscall::kNanosleep)] =
      2.0 + 400.0 * hungTasks;
  rates[static_cast<std::size_t>(Syscall::kMmap)] =
      0.5 + 2.0 * a.forks;
  rates[static_cast<std::size_t>(Syscall::kClone)] = a.forks;
  // A spinning task makes almost no calls: it *suppresses* the node's
  // expected baseline share.
  if (spinningTasks > 0) {
    rates[static_cast<std::size_t>(Syscall::kFutex)] *= 0.3;
    rates[static_cast<std::size_t>(Syscall::kEpollWait)] *= 0.3;
  }

  double total = 0.0;
  for (double r : rates) total += r;
  TraceSecond trace;
  if (total <= 0.0) return trace;

  const std::size_t events = static_cast<std::size_t>(std::min(
      static_cast<double>(params_.maxEventsPerSecond), total));
  trace.reserve(events);
  // Emit with short runs per category (real traces show bursts:
  // sequential reads, futex storms), not i.i.d. draws — the Markov
  // analysis keys on exactly this structure.
  std::vector<double> weights(rates, rates + kSyscallKinds);
  while (trace.size() < events) {
    const auto kind = static_cast<std::uint8_t>(rng_.weightedIndex(weights));
    const long run = rng_.uniformInt(1, 4);
    for (long i = 0; i < run && trace.size() < events; ++i) {
      trace.push_back(kind);
    }
  }
  return trace;
}

}  // namespace asdf::syscalls
