// System-call trace substrate — the paper's Section 5 extension:
// "We are currently developing new ASDF modules, including a strace
// module that tracks all of the system calls made by a given process.
// We envision using this module to detect and diagnose anomalies by
// building a probabilistic model of the order and timing of system
// calls and checking for patterns that correspond to problems."
//
// Since no live processes exist here, the substrate synthesizes the
// per-second syscall stream a TaskTracker's task JVMs would emit,
// driven by the same node activity that drives the OS counters: CPU
// work produces long stretches of userland (few syscalls), disk work
// produces read/write/fsync bursts, network work produces
// socket/epoll chatter, idle and hung processes sit in futex/nanosleep
// loops. Faults therefore reshape the *sequence statistics* in
// characteristic ways — exactly the signal the strace analysis models.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "metrics/os_model.h"

namespace asdf::syscalls {

/// Coarse syscall categories (what an strace-based monitor would
/// bucket the raw calls into).
enum class Syscall : std::uint8_t {
  kRead = 0,
  kWrite,
  kFsync,
  kSocketSend,
  kSocketRecv,
  kEpollWait,
  kFutex,
  kNanosleep,
  kMmap,
  kClone,
};
inline constexpr std::size_t kSyscallKinds = 10;

const char* syscallName(Syscall s);

/// One second of traced syscalls (category ids, in emission order).
using TraceSecond = std::vector<std::uint8_t>;

/// Generates per-second syscall traces from node activity.
class SyscallTraceModel {
 public:
  struct Params {
    /// Upper bound on events recorded per second (strace buffers are
    /// sampled in production to bound overhead).
    std::size_t maxEventsPerSecond = 256;
  };

  SyscallTraceModel(Params params, Rng rng);

  /// Produces the trace for one second of the given activity.
  /// `hungTasks` injects the futex/nanosleep signature of a wedged
  /// process; `spinningTasks` the no-syscall signature of a CPU spin.
  TraceSecond tick(const metrics::NodeActivity& activity, int hungTasks = 0,
                   int spinningTasks = 0);

 private:
  Params params_;
  Rng rng_;
};

}  // namespace asdf::syscalls
