#include "syscalls/markov.h"

#include <cassert>
#include <cmath>

namespace asdf::syscalls {
namespace {

constexpr double kLaplace = 0.5;  // add-half smoothing

}  // namespace

MarkovModel::MarkovModel()
    : counts_(kSyscallKinds * kSyscallKinds, 0) {}

void MarkovModel::train(const TraceSecond& trace) {
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const std::size_t from = trace[i - 1];
    const std::size_t to = trace[i];
    assert(from < kSyscallKinds && to < kSyscallKinds);
    ++counts_[from * kSyscallKinds + to];
    ++trained_;
  }
}

double MarkovModel::rowTotal(std::size_t from) const {
  long total = 0;
  for (std::size_t to = 0; to < kSyscallKinds; ++to) {
    total += counts_[from * kSyscallKinds + to];
  }
  return static_cast<double>(total);
}

double MarkovModel::transitionProbability(std::uint8_t from,
                                          std::uint8_t to) const {
  const double row = rowTotal(from);
  const double count =
      static_cast<double>(counts_[static_cast<std::size_t>(from) *
                                      kSyscallKinds +
                                  to]);
  return (count + kLaplace) / (row + kLaplace * kSyscallKinds);
}

double MarkovModel::negLogLikelihood(const TraceSecond& trace) const {
  if (trace.size() < 2) return entropyBaseline();
  double nll = 0.0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    nll -= std::log(transitionProbability(trace[i - 1], trace[i]));
  }
  return nll / static_cast<double>(trace.size() - 1);
}

double MarkovModel::entropyBaseline() const {
  // Expected NLL under the model itself: sum over rows of the row's
  // stationary weight times its entropy. Approximated with empirical
  // row weights.
  double total = 0.0;
  for (std::size_t from = 0; from < kSyscallKinds; ++from) {
    total += rowTotal(from);
  }
  if (total <= 0.0) return std::log(static_cast<double>(kSyscallKinds));
  double h = 0.0;
  for (std::size_t from = 0; from < kSyscallKinds; ++from) {
    const double weight = rowTotal(from) / total;
    if (weight <= 0.0) continue;
    double rowH = 0.0;
    for (std::size_t to = 0; to < kSyscallKinds; ++to) {
      const double p = transitionProbability(static_cast<std::uint8_t>(from),
                                             static_cast<std::uint8_t>(to));
      rowH -= p * std::log(p);
    }
    h += weight * rowH;
  }
  return h;
}

}  // namespace asdf::syscalls
