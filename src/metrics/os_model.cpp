#include "metrics/os_model.h"

#include <algorithm>
#include <cmath>

namespace asdf::metrics {
namespace {

// EWMA decay factors for 1-second samples, exp(-1/60), exp(-1/300),
// exp(-1/900) — the kernel's loadavg constants.
constexpr double kDecay1 = 0.98347;
constexpr double kDecay5 = 0.99667;
constexpr double kDecay15 = 0.99889;

constexpr double kIoBytesPerOp = 256.0 * 1024.0;  // request size
constexpr double kSectorBytes = 512.0;
constexpr double kPageBytes = 4096.0;

}  // namespace

NodeOsModel::NodeOsModel(Params params, Rng rng)
    : params_(params), rng_(rng) {}

double NodeOsModel::noisy(double value) {
  if (value == 0.0) return 0.0;
  return std::max(0.0, value * (1.0 + params_.noiseFraction * rng_.gaussian()));
}

double NodeOsModel::noisyFloor(double value, double floorSigma) {
  // For metrics that are often exactly zero we add a small absolute
  // noise floor so fault-free standard deviations are nonzero
  // (important for the analyses' scaling, Section 4.5).
  return std::max(0.0, noisy(value) + std::abs(rng_.gaussian(0.0, floorSigma)));
}

SadcSnapshot NodeOsModel::tick(SimTime now, const NodeActivity& a) {
  SadcSnapshot snap;
  snap.time = now;
  snap.node.assign(kNodeMetricCount, 0.0);
  snap.nic.assign(kNicMetricCount, 0.0);
  auto& m = snap.node;

  const double cores = params_.cores;

  // ---- CPU ----------------------------------------------------------
  // Baseline OS housekeeping burns a sliver of CPU even when idle.
  const double baseUser = 0.01 * cores;
  const double baseSys = 0.008 * cores;
  double user = std::min(cores, a.cpuUserCores + baseUser);
  double nice = std::min(cores, a.cpuNiceCores);
  double sys = std::min(cores, a.cpuSystemCores + baseSys);
  double iowait = std::min(cores, a.cpuIowaitCores);
  double busy = user + nice + sys + iowait;
  if (busy > cores) {
    const double scale = cores / busy;
    user *= scale;
    nice *= scale;
    sys *= scale;
    iowait *= scale;
    busy = cores;
  }
  m[kCpuUserPct] = noisy(100.0 * user / cores);
  m[kCpuNicePct] = noisyFloor(100.0 * nice / cores, 0.02);
  m[kCpuSystemPct] = noisy(100.0 * sys / cores);
  m[kCpuIowaitPct] = noisyFloor(100.0 * iowait / cores, 0.05);
  m[kCpuStealPct] = noisyFloor(0.05, 0.02);  // EC2 neighbors
  m[kCpuIdlePct] = std::max(
      0.0, 100.0 - m[kCpuUserPct] - m[kCpuNicePct] - m[kCpuSystemPct] -
               m[kCpuIowaitPct] - m[kCpuStealPct]);

  // ---- Process creation / context switches / interrupts -------------
  const double rxPkts = a.netRxBytes / params_.avgPacketBytes;
  const double txPkts = a.netTxBytes / params_.avgPacketBytes;
  const double diskOps = (a.diskReadBytes + a.diskWriteBytes) / kIoBytesPerOp;
  m[kForksPerSec] = noisyFloor(a.forks + 1.5, 0.3);
  m[kCtxSwitchPerSec] =
      noisy(450.0 + 1800.0 * (busy / cores) + 0.6 * (rxPkts + txPkts) +
            3.0 * diskOps);
  m[kIntrPerSec] = noisy(250.0 + rxPkts + txPkts + 2.0 * diskOps);

  // ---- Swap / paging -------------------------------------------------
  const double memPressure =
      std::max(0.0, a.memUsedBytes / params_.memTotalBytes - 0.92);
  m[kSwapInPerSec] = noisyFloor(memPressure * 4000.0, 0.05);
  m[kSwapOutPerSec] = noisyFloor(memPressure * 6000.0, 0.05);
  m[kPgPgInPerSec] = noisy(a.diskReadBytes / 1024.0);
  m[kPgPgOutPerSec] = noisy(a.diskWriteBytes / 1024.0);
  m[kPgFaultPerSec] =
      noisy(120.0 + 900.0 * (user / cores) + 300.0 * a.forks);
  m[kPgMajFaultPerSec] = noisyFloor(memPressure * 50.0, 0.05);
  m[kPgFreePerSec] =
      noisy(200.0 + (a.diskReadBytes + a.diskWriteBytes) / kPageBytes * 0.5);
  m[kPgScanKPerSec] = noisyFloor(memPressure * 20000.0, 0.1);
  m[kPgScanDPerSec] = noisyFloor(memPressure * 8000.0, 0.05);
  m[kPgStealPerSec] = noisyFloor(memPressure * 15000.0, 0.05);

  // ---- Disk I/O ------------------------------------------------------
  const double rtps = a.diskReadBytes / kIoBytesPerOp;
  const double wtps = a.diskWriteBytes / kIoBytesPerOp;
  m[kIoTps] = noisyFloor(rtps + wtps, 0.2);
  m[kIoReadTps] = noisyFloor(rtps, 0.1);
  m[kIoWriteTps] = noisyFloor(wtps, 0.1);
  m[kIoReadBlocksPerSec] = noisy(a.diskReadBytes / kSectorBytes);
  m[kIoWriteBlocksPerSec] = noisy(a.diskWriteBytes / kSectorBytes);

  // ---- Memory --------------------------------------------------------
  const double memTotalKb = params_.memTotalBytes / 1024.0;
  const double usedKb =
      std::min(memTotalKb * 0.99, a.memUsedBytes / 1024.0);
  // The page cache absorbs recent disk traffic and decays slowly.
  cachedKb_ = std::min(memTotalKb * 0.5,
                       cachedKb_ * 0.995 +
                           (a.diskReadBytes + a.diskWriteBytes) / 1024.0 * 0.3);
  const double buffersKb = memTotalKb * 0.015;
  const double freeKb =
      std::max(0.0, memTotalKb - usedKb - cachedKb_ - buffersKb);
  m[kMemFreeKb] = noisy(freeKb);
  m[kMemUsedKb] = noisy(usedKb + cachedKb_ + buffersKb);
  m[kMemUsedPct] = 100.0 * m[kMemUsedKb] / memTotalKb;
  m[kMemBuffersKb] = noisy(buffersKb);
  m[kMemCachedKb] = noisy(cachedKb_);
  m[kMemCommitKb] = noisy(usedKb * 1.35);
  m[kMemCommitPct] = 100.0 * m[kMemCommitKb] / memTotalKb;

  if (prevFreeKb_ < 0) prevFreeKb_ = freeKb;
  if (prevBufKb_ < 0) prevBufKb_ = buffersKb;
  if (prevCacheKb_ < 0) prevCacheKb_ = cachedKb_;
  m[kMemFreePagesPerSec] = (freeKb - prevFreeKb_) / (kPageBytes / 1024.0);
  m[kMemBufPagesPerSec] = (buffersKb - prevBufKb_) / (kPageBytes / 1024.0);
  m[kMemCachePagesPerSec] = (cachedKb_ - prevCacheKb_) / (kPageBytes / 1024.0);
  prevFreeKb_ = freeKb;
  prevBufKb_ = buffersKb;
  prevCacheKb_ = cachedKb_;

  // ---- Swap space / hugepages ---------------------------------------
  const double swapTotalKb = 2.0e6;
  const double swapUsedKb = memPressure * swapTotalKb * 2.0;
  m[kSwapFreeKb] = noisy(std::max(0.0, swapTotalKb - swapUsedKb));
  m[kSwapUsedKb] = noisyFloor(swapUsedKb, 1.0);
  m[kSwapUsedPct] = 100.0 * m[kSwapUsedKb] / swapTotalKb;
  m[kSwapCadKb] = noisyFloor(swapUsedKb * 0.1, 0.5);
  m[kHugeFreeKb] = 0.0;
  m[kHugeUsedKb] = 0.0;

  // ---- Kernel tables -------------------------------------------------
  m[kDentUnused] = noisy(42000.0 + 40.0 * diskOps);
  m[kFileNr] = noisy(1400.0 + 64.0 * a.runnableTasks + 8.0 * a.processCount);
  m[kInodeNr] = noisy(31000.0 + 10.0 * diskOps);
  m[kPtyNr] = 2.0;

  // ---- Run queue / load ----------------------------------------------
  const double runnable = a.runnableTasks + busy / cores;
  load1_ = kDecay1 * load1_ + (1.0 - kDecay1) * runnable;
  load5_ = kDecay5 * load5_ + (1.0 - kDecay5) * runnable;
  load15_ = kDecay15 * load15_ + (1.0 - kDecay15) * runnable;
  m[kRunQueueSize] = noisyFloor(a.runnableTasks, 0.2);
  m[kProcListSize] = noisy(95.0 + a.processCount);
  m[kLoadAvg1] = noisy(load1_);
  m[kLoadAvg5] = noisy(load5_);
  m[kLoadAvg15] = noisy(load15_);

  // ---- TTY ------------------------------------------------------------
  m[kTtyRcvPerSec] = 0.0;
  m[kTtyXmtPerSec] = 0.0;

  // ---- Sockets ---------------------------------------------------------
  m[kSockTotal] = noisy(140.0 + a.tcpConnections + 2.0 * a.runnableTasks);
  m[kSockTcp] = noisy(24.0 + a.tcpConnections);
  m[kSockUdp] = noisy(6.0);
  m[kSockRaw] = 0.0;
  m[kIpFrag] = 0.0;

  // ---- Network totals --------------------------------------------------
  m[kNetRxPktTotalPerSec] = noisyFloor(rxPkts, 0.5);
  m[kNetTxPktTotalPerSec] = noisyFloor(txPkts, 0.5);
  m[kNetRxKbTotalPerSec] = noisyFloor(a.netRxBytes / 1024.0, 0.2);
  m[kNetTxKbTotalPerSec] = noisyFloor(a.netTxBytes / 1024.0, 0.2);

  // ---- NFS (unused in a Hadoop cluster: HDFS handles storage) ---------
  m[kNfsCallPerSec] = 0.0;
  m[kNfsRetransPerSec] = 0.0;
  m[kNfsSrvCallPerSec] = 0.0;
  m[kNfsSrvBadCallPerSec] = 0.0;

  // ---- Per-NIC (single eth0) -------------------------------------------
  auto& n = snap.nic;
  n[kNicRxPktPerSec] = m[kNetRxPktTotalPerSec];
  n[kNicTxPktPerSec] = m[kNetTxPktTotalPerSec];
  n[kNicRxKbPerSec] = m[kNetRxKbTotalPerSec];
  n[kNicTxKbPerSec] = m[kNetTxKbTotalPerSec];
  n[kNicRxCmpPerSec] = 0.0;
  n[kNicTxCmpPerSec] = 0.0;
  n[kNicRxMcastPerSec] = noisyFloor(0.2, 0.05);
  n[kNicRxErrPerSec] = noisyFloor(a.netRxDropPkts * 0.02, 0.01);
  n[kNicTxErrPerSec] = noisyFloor(a.netTxDropPkts * 0.02, 0.01);
  n[kNicCollPerSec] = 0.0;
  n[kNicRxDropPerSec] = noisyFloor(a.netRxDropPkts, 0.01);
  n[kNicTxDropPerSec] = noisyFloor(a.netTxDropPkts, 0.01);
  n[kNicTxCarrPerSec] = 0.0;
  n[kNicRxFramPerSec] = 0.0;
  n[kNicRxFifoPerSec] = 0.0;
  n[kNicTxFifoPerSec] = 0.0;
  const double nicBytesPerSec = params_.nicSpeedMbps * 1.0e6 / 8.0;
  n[kNicUtilPct] =
      100.0 * (a.netRxBytes + a.netTxBytes) / (2.0 * nicBytesPerSec);
  n[kNicSpeedMbps] = params_.nicSpeedMbps;

  // ---- Tracked processes -------------------------------------------------
  for (const auto& p : a.processes) {
    std::vector<double> v(kProcessMetricCount, 0.0);
    v[kProcCpuUserPct] = noisy(100.0 * p.cpuUserCores);
    v[kProcCpuSystemPct] = noisy(100.0 * p.cpuSystemCores);
    v[kProcCpuTotalPct] = v[kProcCpuUserPct] + v[kProcCpuSystemPct];
    v[kProcMinFltPerSec] =
        noisyFloor(20.0 + 500.0 * (p.cpuUserCores + p.cpuSystemCores), 1.0);
    v[kProcMajFltPerSec] = noisyFloor(memPressure * 10.0, 0.02);
    v[kProcVszKb] = noisy(p.rssBytes * 2.2 / 1024.0);
    v[kProcRssKb] = noisy(p.rssBytes / 1024.0);
    v[kProcMemPct] = 100.0 * p.rssBytes / params_.memTotalBytes;
    v[kProcReadKbPerSec] = noisyFloor(p.readBytes / 1024.0, 0.1);
    v[kProcWriteKbPerSec] = noisyFloor(p.writeBytes / 1024.0, 0.1);
    v[kProcCancelledWriteKbPerSec] = 0.0;
    v[kProcIoDelayTicks] =
        noisyFloor((p.readBytes + p.writeBytes) / kIoBytesPerOp * 0.5, 0.05);
    v[kProcCtxSwitchPerSec] =
        noisy(15.0 + 400.0 * (p.cpuUserCores + p.cpuSystemCores));
    v[kProcNvCtxSwitchPerSec] =
        noisyFloor(100.0 * (p.cpuUserCores + p.cpuSystemCores), 0.5);
    v[kProcThreads] = p.threads;
    v[kProcFds] = p.fds;
    v[kProcPriority] = 20.0;

    // Cumulative jiffies (100 Hz) per process, persisted across ticks.
    auto it = std::find_if(procCpuTicks_.begin(), procCpuTicks_.end(),
                           [&](const auto& e) { return e.first == p.name; });
    if (it == procCpuTicks_.end()) {
      procCpuTicks_.push_back({p.name, {0.0, 0.0}});
      it = procCpuTicks_.end() - 1;
    }
    it->second.first += p.cpuSystemCores * 100.0;
    it->second.second += p.cpuUserCores * 100.0;
    v[kProcSysTimeTicks] = it->second.first;
    v[kProcUserTimeTicks] = it->second.second;

    snap.processes.emplace_back(p.name, std::move(v));
  }

  return snap;
}

}  // namespace asdf::metrics
