#include "metrics/catalog.h"

namespace asdf::metrics {
namespace {

const std::array<const char*, kNodeMetricCount> kNodeNames = {
    "cpu_user_pct",      "cpu_nice_pct",      "cpu_system_pct",
    "cpu_iowait_pct",    "cpu_steal_pct",     "cpu_idle_pct",
    "proc_per_s",        "cswch_per_s",       "intr_per_s",
    "pswpin_per_s",      "pswpout_per_s",     "pgpgin_per_s",
    "pgpgout_per_s",     "fault_per_s",       "majflt_per_s",
    "pgfree_per_s",      "pgscank_per_s",     "pgscand_per_s",
    "pgsteal_per_s",     "tps",               "rtps",
    "wtps",              "bread_per_s",       "bwrtn_per_s",
    "frmpg_per_s",       "bufpg_per_s",       "campg_per_s",
    "kbmemfree",         "kbmemused",         "memused_pct",
    "kbbuffers",         "kbcached",          "kbcommit",
    "commit_pct",        "kbswpfree",         "kbswpused",
    "swpused_pct",       "kbswpcad",          "kbhugfree",
    "kbhugused",         "dentunusd",         "file_nr",
    "inode_nr",          "pty_nr",            "runq_sz",
    "plist_sz",          "ldavg_1",           "ldavg_5",
    "ldavg_15",          "rcvin_per_s",       "xmtin_per_s",
    "totsck",            "tcpsck",            "udpsck",
    "rawsck",            "ip_frag",           "rxpck_total_per_s",
    "txpck_total_per_s", "rxkb_total_per_s",  "txkb_total_per_s",
    "nfs_call_per_s",    "nfs_retrans_per_s", "nfs_scall_per_s",
    "nfs_badcall_per_s",
};

const std::array<const char*, kNicMetricCount> kNicNames = {
    "rxpck_per_s", "txpck_per_s", "rxkb_per_s",  "txkb_per_s",
    "rxcmp_per_s", "txcmp_per_s", "rxmcst_per_s", "rxerr_per_s",
    "txerr_per_s", "coll_per_s",  "rxdrop_per_s", "txdrop_per_s",
    "txcarr_per_s", "rxfram_per_s", "rxfifo_per_s", "txfifo_per_s",
    "ifutil_pct",  "speed_mbps",
};

const std::array<const char*, kProcessMetricCount> kProcessNames = {
    "pcpu_user",   "pcpu_system",  "pcpu_total",  "minflt_per_s",
    "majflt_per_s", "vsz_kb",      "rss_kb",      "mem_pct",
    "kb_rd_per_s", "kb_wr_per_s",  "kb_ccwr_per_s", "iodelay",
    "cswch_per_s", "nvcswch_per_s", "threads",    "fds",
    "prio",        "stime_ticks",  "utime_ticks",
};

template <std::size_t N>
int indexOf(const std::array<const char*, N>& names,
            const std::string& name) {
  for (std::size_t i = 0; i < N; ++i) {
    if (name == names[i]) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

const std::array<const char*, kNodeMetricCount>& nodeMetricNames() {
  return kNodeNames;
}

const std::array<const char*, kNicMetricCount>& nicMetricNames() {
  return kNicNames;
}

const std::array<const char*, kProcessMetricCount>& processMetricNames() {
  return kProcessNames;
}

int nodeMetricIndex(const std::string& name) {
  return indexOf(kNodeNames, name);
}

int nicMetricIndex(const std::string& name) {
  return indexOf(kNicNames, name);
}

int processMetricIndex(const std::string& name) {
  return indexOf(kProcessNames, name);
}

}  // namespace asdf::metrics
