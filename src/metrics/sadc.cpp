#include "metrics/sadc.h"

#include <cassert>

namespace asdf::metrics {

std::vector<double> flattenNodeVector(const SadcSnapshot& snap) {
  assert(snap.node.size() == kNodeMetricCount);
  assert(snap.nic.size() == kNicMetricCount);
  std::vector<double> out;
  out.reserve(kFlatNodeVectorSize);
  out.insert(out.end(), snap.node.begin(), snap.node.end());
  out.insert(out.end(), snap.nic.begin(), snap.nic.end());
  return out;
}

std::vector<std::string> flattenedNodeVectorNames() {
  std::vector<std::string> names;
  names.reserve(kFlatNodeVectorSize);
  for (const char* n : nodeMetricNames()) names.emplace_back(n);
  for (const char* n : nicMetricNames()) {
    names.emplace_back(std::string("eth0.") + n);
  }
  return names;
}

}  // namespace asdf::metrics
