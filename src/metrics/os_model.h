// Per-node OS performance-counter model — the substitute for Linux
// /proc + sysstat on the paper's EC2 nodes.
//
// Every simulated second the node substrate reports what actually
// happened on the node (core-seconds of CPU burned per category, disk
// and NIC bytes moved, memory in use, process activity) and the model
// turns that into the full sadc metric vector: 64 node-level, 18
// per-NIC, and 19 per-process metrics with realistic couplings
// (context switches track CPU + network, paging tracks disk, load
// averages are EWMAs of the run queue) plus small multiplicative
// noise. Counters therefore respond to injected faults exactly the
// way the paper's black-box analysis expects: a CPUHog inflates
// cpu_user and load, a DiskHog inflates tps/bwrtn/iowait, packet loss
// shows up as rxdrop/txdrop and depressed throughput.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "metrics/catalog.h"

namespace asdf::metrics {

/// One tracked process's activity during a tick (daemons + hog
/// processes; short-lived tasks are aggregated into node totals).
struct ProcessActivity {
  std::string name;            // e.g. "TaskTracker", "DataNode"
  double cpuUserCores = 0.0;   // core-seconds this tick
  double cpuSystemCores = 0.0;
  double readBytes = 0.0;
  double writeBytes = 0.0;
  double rssBytes = 0.0;
  int threads = 1;
  int fds = 8;
};

/// Everything the node did during one 1-second tick.
struct NodeActivity {
  double cpuUserCores = 0.0;
  double cpuNiceCores = 0.0;
  double cpuSystemCores = 0.0;
  double cpuIowaitCores = 0.0;  // cores blocked on disk
  double diskReadBytes = 0.0;
  double diskWriteBytes = 0.0;
  double netRxBytes = 0.0;
  double netTxBytes = 0.0;
  double netRxDropPkts = 0.0;  // packets dropped by loss fault
  double netTxDropPkts = 0.0;
  double memUsedBytes = 0.0;   // total, including OS baseline
  int runnableTasks = 0;       // feeds runq/load averages
  int processCount = 0;        // extra processes beyond the baseline
  double forks = 0.0;          // processes created this tick
  int tcpConnections = 0;      // open sockets beyond the baseline
  std::vector<ProcessActivity> processes;
};

/// A full sadc sample for one node at one instant.
struct SadcSnapshot {
  SimTime time = 0.0;
  std::vector<double> node;  // kNodeMetricCount entries
  std::vector<double> nic;   // kNicMetricCount entries (single eth0)
  std::vector<std::pair<std::string, std::vector<double>>> processes;
};

/// Persistent counter state for one node.
class NodeOsModel {
 public:
  struct Params {
    double cores = 4.0;               // two dual-core CPUs (EC2 Large)
    double memTotalBytes = 7.5e9;     // 7.5 GB (EC2 Large)
    double nicSpeedMbps = 1000.0;
    double avgPacketBytes = 1500.0;   // MTU-sized bulk transfers
    double noiseFraction = 0.02;      // multiplicative jitter
  };

  NodeOsModel(Params params, Rng rng);

  /// Consumes one tick of activity and produces the metric snapshot
  /// at time `now`. Must be called once per simulated second.
  SadcSnapshot tick(SimTime now, const NodeActivity& activity);

  const Params& params() const { return params_; }

 private:
  double noisy(double value);
  double noisyFloor(double value, double floorSigma);

  Params params_;
  Rng rng_;
  // EWMA load averages with the standard 1/5/15-minute time constants.
  double load1_ = 0.0;
  double load5_ = 0.0;
  double load15_ = 0.0;
  double cachedKb_ = 3.0e5;    // page cache grows with disk traffic
  double prevFreeKb_ = -1.0;   // for frmpg_per_s deltas
  double prevBufKb_ = -1.0;
  double prevCacheKb_ = -1.0;
  // Cumulative per-process CPU tick counters keyed by process name.
  std::vector<std::pair<std::string, std::pair<double, double>>> procCpuTicks_;
};

}  // namespace asdf::metrics
