// libsadc — the collection-side API over the OS metric model.
//
// The paper modified sysstat into a library ("libsadc") that returns
// system-wide and per-process statistics as C structures; a per-node
// sadc_rpcd daemon wraps it. Here, SadcProvider is the interface that
// a monitored node implements (the simulated node keeps the latest
// NodeOsModel snapshot), and the helpers below flatten snapshots into
// the metric vectors the analysis modules consume.
#pragma once

#include <string>
#include <vector>

#include "metrics/os_model.h"

namespace asdf::metrics {

/// The interface a monitored node exposes to the sadc collection
/// machinery: "give me the latest 1-second sample".
class SadcProvider {
 public:
  virtual ~SadcProvider() = default;
  virtual SadcSnapshot sadcCollect() const = 0;
};

/// Flattens a snapshot into a single vector: the 64 node-level metrics
/// followed by the 18 NIC metrics. (Process metrics are reported
/// separately per process and are not part of the black-box node
/// vector, matching the paper's per-node analysis.)
std::vector<double> flattenNodeVector(const SadcSnapshot& snap);

/// Names matching flattenNodeVector() order.
std::vector<std::string> flattenedNodeVectorNames();

/// Dimension of the flattened node vector (64 + 18).
inline constexpr std::size_t kFlatNodeVectorSize =
    kNodeMetricCount + kNicMetricCount;

}  // namespace asdf::metrics
