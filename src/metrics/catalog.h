// The metric catalog: names and layout of everything the sadc
// data-collection path exposes.
//
// The paper (Section 3.5) reports "64 node-level metrics, 18
// network-interface-specific metrics and 19 process-level metrics"
// gathered via the sadc module. We reproduce exactly those counts with
// sysstat-style names so the black-box vectors have the same
// dimensionality and flavor as the original.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace asdf::metrics {

inline constexpr std::size_t kNodeMetricCount = 64;
inline constexpr std::size_t kNicMetricCount = 18;
inline constexpr std::size_t kProcessMetricCount = 19;

/// Names of the 64 node-level metrics, in vector order.
const std::array<const char*, kNodeMetricCount>& nodeMetricNames();

/// Names of the 18 per-NIC metrics, in vector order.
const std::array<const char*, kNicMetricCount>& nicMetricNames();

/// Names of the 19 per-process metrics, in vector order.
const std::array<const char*, kProcessMetricCount>& processMetricNames();

/// Index of a node-level metric by name; -1 when unknown.
int nodeMetricIndex(const std::string& name);

/// Index of a NIC metric by name; -1 when unknown.
int nicMetricIndex(const std::string& name);

/// Index of a process metric by name; -1 when unknown.
int processMetricIndex(const std::string& name);

// Node-level metric indices used by the OS model and by tests. Keeping
// the hot ones as named constants avoids string lookups in inner loops.
enum NodeMetric : int {
  kCpuUserPct = 0,
  kCpuNicePct,
  kCpuSystemPct,
  kCpuIowaitPct,
  kCpuStealPct,
  kCpuIdlePct,
  kForksPerSec,
  kCtxSwitchPerSec,
  kIntrPerSec,
  kSwapInPerSec,
  kSwapOutPerSec,
  kPgPgInPerSec,
  kPgPgOutPerSec,
  kPgFaultPerSec,
  kPgMajFaultPerSec,
  kPgFreePerSec,
  kPgScanKPerSec,
  kPgScanDPerSec,
  kPgStealPerSec,
  kIoTps,
  kIoReadTps,
  kIoWriteTps,
  kIoReadBlocksPerSec,
  kIoWriteBlocksPerSec,
  kMemFreePagesPerSec,
  kMemBufPagesPerSec,
  kMemCachePagesPerSec,
  kMemFreeKb,
  kMemUsedKb,
  kMemUsedPct,
  kMemBuffersKb,
  kMemCachedKb,
  kMemCommitKb,
  kMemCommitPct,
  kSwapFreeKb,
  kSwapUsedKb,
  kSwapUsedPct,
  kSwapCadKb,
  kHugeFreeKb,
  kHugeUsedKb,
  kDentUnused,
  kFileNr,
  kInodeNr,
  kPtyNr,
  kRunQueueSize,
  kProcListSize,
  kLoadAvg1,
  kLoadAvg5,
  kLoadAvg15,
  kTtyRcvPerSec,
  kTtyXmtPerSec,
  kSockTotal,
  kSockTcp,
  kSockUdp,
  kSockRaw,
  kIpFrag,
  kNetRxPktTotalPerSec,
  kNetTxPktTotalPerSec,
  kNetRxKbTotalPerSec,
  kNetTxKbTotalPerSec,
  kNfsCallPerSec,
  kNfsRetransPerSec,
  kNfsSrvCallPerSec,
  kNfsSrvBadCallPerSec,
};

// Per-NIC metric indices.
enum NicMetric : int {
  kNicRxPktPerSec = 0,
  kNicTxPktPerSec,
  kNicRxKbPerSec,
  kNicTxKbPerSec,
  kNicRxCmpPerSec,
  kNicTxCmpPerSec,
  kNicRxMcastPerSec,
  kNicRxErrPerSec,
  kNicTxErrPerSec,
  kNicCollPerSec,
  kNicRxDropPerSec,
  kNicTxDropPerSec,
  kNicTxCarrPerSec,
  kNicRxFramPerSec,
  kNicRxFifoPerSec,
  kNicTxFifoPerSec,
  kNicUtilPct,
  kNicSpeedMbps,
};

// Per-process metric indices.
enum ProcessMetric : int {
  kProcCpuUserPct = 0,
  kProcCpuSystemPct,
  kProcCpuTotalPct,
  kProcMinFltPerSec,
  kProcMajFltPerSec,
  kProcVszKb,
  kProcRssKb,
  kProcMemPct,
  kProcReadKbPerSec,
  kProcWriteKbPerSec,
  kProcCancelledWriteKbPerSec,
  kProcIoDelayTicks,
  kProcCtxSwitchPerSec,
  kProcNvCtxSwitchPerSec,
  kProcThreads,
  kProcFds,
  kProcPriority,
  kProcSysTimeTicks,
  kProcUserTimeTicks,
};

}  // namespace asdf::metrics
