// The service environment fpt-core hands to its modules.
//
// fpt-core itself is domain-agnostic: it knows nothing about Hadoop,
// sadc, or RPC daemons. Data-collection modules find their backends
// (the RpcHub, the trained black-box model, the alarm sink) through
// this typed service locator, which the embedding application
// populates before configuring the core. This is what makes the
// framework pluggable in the paper's sense: a new data source ships a
// module plus whatever service it needs, without touching the core.
#pragma once

#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <typeindex>
#include <vector>

#include "common/types.h"

namespace asdf::core {

/// An alarm record emitted by sink modules (e.g. `print`): one flag —
/// and optionally one raw anomaly score — per monitored stream, plus
/// the origin labels of those streams.
struct Alarm {
  SimTime time = kNoTime;
  std::string channel;               // emitting sink instance id
  std::vector<double> flags;         // 1.0 = fingerpointed
  std::vector<double> scores;        // raw distances (may be empty)
  std::vector<std::string> origins;  // per-stream origin labels
  /// Per-stream monitoring health (rpc::NodeHealth codes: 0 healthy,
  /// 1 degraded, 2 unmonitorable). Empty when the pipeline has no
  /// fault-tolerant collection layer. A flag of 0 with health 2 means
  /// "don't know", not "not faulty".
  std::vector<double> health;
};

/// Emitted by analysis modules when the monitoring plane itself
/// degrades: the set of unmonitorable peers changed, or the number of
/// surviving (monitorable) peers crossed the quorum threshold.
struct MonitoringEvent {
  SimTime time = kNoTime;
  std::string channel;  // emitting analysis instance id
  int survivors = 0;    // peers still monitorable this window
  int quorum = 0;       // minimum survivors for alarms to be valid
  bool belowQuorum = false;  // alarms are being suppressed
  std::vector<std::string> unmonitorable;  // origin labels, config order
};

class Environment {
 public:
  /// Registers a service pointer under a name. The environment does
  /// not own services; the embedder keeps them alive.
  template <typename T>
  void provide(const std::string& name, T* service) {
    services_.insert_or_assign(
        name, Entry{std::type_index(typeid(T)),
                    const_cast<void*>(static_cast<const void*>(service))});
  }

  /// Looks a service up; returns nullptr when absent, throws
  /// std::logic_error when present under a different type.
  template <typename T>
  T* get(const std::string& name) const {
    const auto it = services_.find(name);
    if (it == services_.end()) return nullptr;
    if (it->second.type != std::type_index(typeid(T))) {
      throw std::logic_error("Environment service '" + name +
                             "' requested with wrong type");
    }
    return static_cast<T*>(it->second.ptr);
  }

  /// Like get(), but missing services are a configuration error.
  template <typename T>
  T& require(const std::string& name) const {
    T* p = get<T>(name);
    if (p == nullptr) {
      throw std::logic_error("Environment service '" + name +
                             "' is not provided");
    }
    return *p;
  }

  /// Sink invoked by alarm-emitting modules; optional.
  std::function<void(const Alarm&)> alarmSink;

  /// Sink invoked by analysis modules on monitoring-plane degradation
  /// transitions; optional. May be called from pool threads — the
  /// embedder's sink must be thread-safe.
  std::function<void(const MonitoringEvent&)> monitoringSink;

 private:
  struct Entry {
    std::type_index type;
    void* ptr;
  };
  std::map<std::string, Entry> services_;
};

}  // namespace asdf::core
