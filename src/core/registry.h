// Module type registry: maps the section names appearing in fpt-core
// configuration files ("[sadc]", "[knn]", "[analysis_bb]", ...) to
// factories. Users plug in custom modules by registering a factory
// before configuring the core — no core changes required.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/module.h"

namespace asdf::core {

using ModuleFactory = std::function<std::unique_ptr<Module>()>;

class ModuleRegistry {
 public:
  /// The process-wide registry used by FptCore by default.
  static ModuleRegistry& global();

  /// Registers a factory; re-registering a name replaces the factory
  /// (tests rely on this to stub modules).
  void registerType(const std::string& name, ModuleFactory factory);

  bool has(const std::string& name) const;

  /// Instantiates a module; throws ConfigError for unknown types.
  std::unique_ptr<Module> create(const std::string& name) const;

  std::vector<std::string> typeNames() const;

 private:
  std::map<std::string, ModuleFactory> factories_;
};

/// Helper for static registration:
///   ASDF_REGISTER_MODULE("mavgvec", MavgvecModule);
#define ASDF_REGISTER_MODULE(name, Type)                              \
  namespace {                                                         \
  const bool asdf_registered_##Type = [] {                            \
    ::asdf::core::ModuleRegistry::global().registerType(              \
        name, [] { return std::make_unique<Type>(); });               \
    return true;                                                      \
  }();                                                                \
  }

}  // namespace asdf::core
