#include "core/graph.h"

#include <algorithm>
#include <cassert>

#include "common/error.h"
#include "common/strings.h"
#include "core/fpt_core.h"

namespace asdf::core {

// ---------------------------------------------------------------------------
// ModuleContext parameter helpers (shared by all implementations)

std::string ModuleContext::param(const std::string& key,
                                 const std::string& fallback) const {
  return section().get(key, fallback);
}

double ModuleContext::numParam(const std::string& key,
                               double fallback) const {
  if (!section().has(key)) return fallback;
  double v = 0.0;
  if (!parseDouble(section().get(key), v)) {
    throw ConfigError("[" + instanceId() + "] parameter '" + key +
                      "' is not a number: '" + section().get(key) + "'");
  }
  return v;
}

long ModuleContext::intParam(const std::string& key, long fallback) const {
  if (!section().has(key)) return fallback;
  long v = 0;
  if (!parseInt(section().get(key), v)) {
    throw ConfigError("[" + instanceId() + "] parameter '" + key +
                      "' is not an integer: '" + section().get(key) + "'");
  }
  return v;
}

// ---------------------------------------------------------------------------
// ModuleInstance

ModuleInstance::ModuleInstance(FptCore& core, std::string id,
                               std::string type, IniSection section,
                               std::unique_ptr<Module> module)
    : core_(core),
      id_(std::move(id)),
      type_(std::move(type)),
      section_(std::move(section)),
      module_(std::move(module)) {
  for (const auto& a : section_.assignments) {
    if (startsWith(a.key, "input[") && endsWith(a.key, "]")) {
      InputSpec spec;
      spec.inputName = a.key.substr(6, a.key.size() - 7);
      spec.ref = a.value;
      spec.line = a.line;
      if (spec.inputName.empty() || spec.ref.empty()) {
        throw ConfigError(strformat(
            "config line %d: malformed input assignment '%s'", a.line,
            a.key.c_str()));
      }
      inputSpecs_.push_back(std::move(spec));
    }
  }
}

OutputPort* ModuleInstance::findOutput(const std::string& name) {
  for (auto& port : outputs_) {
    if (port->name == name) return port.get();
  }
  return nullptr;
}

std::vector<std::string> ModuleInstance::dependencyIds() const {
  std::vector<std::string> deps;
  for (const auto& spec : inputSpecs_) {
    std::string id;
    if (!spec.ref.empty() && spec.ref[0] == '@') {
      id = spec.ref.substr(1);
    } else {
      const std::size_t dot = spec.ref.find('.');
      id = dot == std::string::npos ? spec.ref : spec.ref.substr(0, dot);
    }
    if (!id.empty()) deps.push_back(id);
  }
  return deps;
}

// ---------------------------------------------------------------------------
// InstanceContext

const InputConnection& InstanceContext::connection(const std::string& name,
                                                   std::size_t index) const {
  const auto it = instance_.inputs_.find(name);
  if (it == instance_.inputs_.end() || index >= it->second.size()) {
    throw ConfigError("[" + instance_.id_ + "] no input '" + name +
                      "' connection #" + std::to_string(index));
  }
  return it->second[index];
}

std::size_t InstanceContext::inputWidth(const std::string& name) const {
  const auto it = instance_.inputs_.find(name);
  return it == instance_.inputs_.end() ? 0 : it->second.size();
}

const Sample& InstanceContext::input(const std::string& name,
                                     std::size_t index) const {
  return connection(name, index).port->latest;
}

bool InstanceContext::inputHasData(const std::string& name,
                                   std::size_t index) const {
  return connection(name, index).port->version > 0;
}

bool InstanceContext::inputFresh(const std::string& name,
                                 std::size_t index) const {
  const InputConnection& conn = connection(name, index);
  return conn.port->version > conn.lastSeenVersion;
}

const std::string& InstanceContext::inputOrigin(const std::string& name,
                                                std::size_t index) const {
  return connection(name, index).port->origin;
}

const std::string& InstanceContext::inputPortName(const std::string& name,
                                                  std::size_t index) const {
  return connection(name, index).port->name;
}

int InstanceContext::addOutput(const std::string& name,
                               const std::string& origin) {
  if (instance_.initialized_) {
    throw ConfigError("[" + instance_.id_ +
                      "] outputs must be created during init()");
  }
  if (instance_.findOutput(name) != nullptr) {
    throw ConfigError("[" + instance_.id_ + "] duplicate output '" + name +
                      "'");
  }
  auto port = std::make_unique<OutputPort>();
  port->owner = &instance_;
  port->name = name;
  port->origin = origin;
  instance_.outputs_.push_back(std::move(port));
  return static_cast<int>(instance_.outputs_.size()) - 1;
}

void InstanceContext::write(int outputIndex, Value value) {
  assert(outputIndex >= 0 &&
         static_cast<std::size_t>(outputIndex) < instance_.outputs_.size());
  OutputPort& port = *instance_.outputs_[static_cast<std::size_t>(outputIndex)];
  {
    std::lock_guard<std::mutex> lock(port.slotMutex);
    port.latest.time = now();
    port.latest.value = std::move(value);
    ++port.version;
  }
  // Subscriber notification is routed through the scheduler: during a
  // wavefront it is deferred to the level barrier (so concurrent
  // producers never race the dispatch bookkeeping and notifications
  // merge in deterministic order); outside one it fires immediately.
  core_.noteOutputWritten(instance_, port);
}

void InstanceContext::requestPeriodic(double interval) {
  if (interval <= 0.0) {
    throw ConfigError("[" + instance_.id_ + "] periodic interval must be > 0");
  }
  instance_.periodicInterval_ = interval;
}

void InstanceContext::setInputTrigger(int updates) {
  if (updates < 1) {
    throw ConfigError("[" + instance_.id_ + "] input trigger must be >= 1");
  }
  instance_.inputTrigger_ = updates;
}

void InstanceContext::requestExclusive(const std::string& domain) {
  if (domain.empty()) {
    throw ConfigError("[" + instance_.id_ +
                      "] exclusivity domain may not be empty");
  }
  auto& domains = instance_.exclusiveDomains_;
  if (std::find(domains.begin(), domains.end(), domain) == domains.end()) {
    domains.push_back(domain);
  }
}

SimTime InstanceContext::now() const { return core_.engine().now(); }

Environment& InstanceContext::env() { return core_.env(); }

}  // namespace asdf::core
