// DAG vertices and edges: module instances, output ports, input
// connections. FptCore (fpt_core.h) builds and schedules the graph;
// this header holds the data structures plus the ModuleContext
// implementation modules interact with.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/ini.h"
#include "core/module.h"

namespace asdf::core {

class FptCore;
class ModuleInstance;

/// A named output connection of a module instance. Holds the latest
/// sample; subscribers poll it when notified.
///
/// Thread-safety contract (parallel executors): a port has exactly one
/// producer, and the wavefront scheduler only runs a subscriber after
/// the level barrier that follows the producer's run, so readers never
/// overlap the producing write. The mutex guards the value slot itself
/// against executors that interleave a producer's re-run with a stale
/// reader (defensive; the level barrier already orders stock modules),
/// and `writeSeq` stamps each write with the scheduler's deterministic
/// global sequence when its notification is merged at the barrier.
struct OutputPort {
  ModuleInstance* owner = nullptr;
  std::string name;
  std::string origin;  // e.g. "slave3"; set by the producing module
  Sample latest;
  std::uint64_t version = 0;   // bumped on every write (per-port)
  std::uint64_t writeSeq = 0;  // global stamp, assigned at merge time
  std::mutex slotMutex;        // guards latest/version during writes
  /// Instances with a connection bound to *this specific port*,
  /// deduplicated. Precomputed at wiring time so publishing a write is
  /// one indexed walk instead of rescanning every subscriber's input
  /// map per write.
  std::vector<ModuleInstance*> listeners;
};

/// An edge: one bound output, as seen from the consuming instance.
struct InputConnection {
  OutputPort* port = nullptr;
  std::uint64_t lastSeenVersion = 0;  // for freshness accounting
};

/// One vertex of the DAG.
class ModuleInstance {
 public:
  ModuleInstance(FptCore& core, std::string id, std::string type,
                 IniSection section, std::unique_ptr<Module> module);

  const std::string& id() const { return id_; }
  const std::string& type() const { return type_; }
  bool initialized() const { return initialized_; }
  std::uint64_t runCount() const { return runs_; }

  /// Output port by name; nullptr when absent.
  OutputPort* findOutput(const std::string& name);
  const std::vector<std::unique_ptr<OutputPort>>& outputs() const {
    return outputs_;
  }

  /// The raw "input[name] = ref" assignments from the configuration.
  struct InputSpec {
    std::string inputName;
    std::string ref;  // "@instance" or "instance.output"
    int line = 0;
  };
  const std::vector<InputSpec>& inputSpecs() const { return inputSpecs_; }

  /// Instance ids this instance consumes from (DAG dependencies).
  std::vector<std::string> dependencyIds() const;

  /// Topological depth in the DAG (0 = no inputs). Valid after
  /// configure().
  int level() const { return level_; }

 private:
  friend class FptCore;
  friend class InstanceContext;

  FptCore& core_;
  std::string id_;
  std::string type_;
  IniSection section_;
  std::unique_ptr<Module> module_;
  std::vector<InputSpec> inputSpecs_;

  std::vector<std::string> inputOrder_;
  std::map<std::string, std::vector<InputConnection>> inputs_;
  std::vector<std::unique_ptr<OutputPort>> outputs_;
  std::vector<ModuleInstance*> subscribers_;  // who consumes my outputs

  bool initialized_ = false;
  double periodicInterval_ = 0.0;  // 0 = no periodic schedule
  int inputTrigger_ = 1;
  int pendingUpdates_ = 0;
  std::uint64_t runs_ = 0;

  // --- scheduler state (owned by FptCore's wavefront dispatcher) -------
  int order_ = 0;      // configuration-file position; determinism key
  int level_ = 0;      // topological depth; wavefront grouping key
  std::vector<std::string> exclusiveDomains_;  // requestExclusive()
  bool queuedPeriodic_ = false;  // a periodic firing awaits dispatch
  bool runQueued_ = false;       // an input-trigger check awaits dispatch
  bool inReadySet_ = false;      // already in the dispatcher's ready set
  bool inPublishBatch_ = false;  // dedup mark while a batch publishes
  // Ports this instance wrote during its current run; drained by the
  // scheduler at the level barrier, where notifications are merged in
  // deterministic order. Only the running instance's thread appends,
  // only the dispatcher (after the barrier) drains.
  std::vector<OutputPort*> deferredWrites_;
};

/// The ModuleContext implementation handed to Module::init/run.
class InstanceContext final : public ModuleContext {
 public:
  InstanceContext(FptCore& core, ModuleInstance& instance)
      : core_(core), instance_(instance) {}

  const std::string& instanceId() const override { return instance_.id_; }
  const IniSection& section() const override { return instance_.section_; }

  std::vector<std::string> inputNames() const override {
    return instance_.inputOrder_;
  }
  std::size_t inputWidth(const std::string& name) const override;
  const Sample& input(const std::string& name,
                      std::size_t index) const override;
  bool inputHasData(const std::string& name,
                    std::size_t index) const override;
  bool inputFresh(const std::string& name, std::size_t index) const override;
  const std::string& inputOrigin(const std::string& name,
                                 std::size_t index) const override;
  const std::string& inputPortName(const std::string& name,
                                   std::size_t index) const override;

  int addOutput(const std::string& name, const std::string& origin) override;
  void write(int outputIndex, Value value) override;

  void requestPeriodic(double interval) override;
  void setInputTrigger(int updates) override;
  void requestExclusive(const std::string& domain) override;

  SimTime now() const override;
  Environment& env() override;

 private:
  const InputConnection& connection(const std::string& name,
                                    std::size_t index) const;
  FptCore& core_;
  ModuleInstance& instance_;
};

}  // namespace asdf::core
