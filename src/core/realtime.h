// Wall-clock pump for live deployments: advances a SimEngine's virtual
// clock in step with real time, so the same fpt-core configuration
// that runs against the simulator can run "online" — module periodic
// hooks fire at true wall-clock frequency. Used by live-transport
// harness runs and the quickstart example's --realtime flag;
// experiments use pure virtual time.
//
// The driver never spins: every loop iteration either advances the
// engine or waits — until the next pending event is due (scaled to
// wall time), capped so stop() stays responsive. The wait primitive is
// replaceable (setWaiter) so tests can count waits and prove the
// no-busy-wait contract without real sleeping.
#pragma once

#include <atomic>
#include <functional>

#include "sim/engine.h"

namespace asdf::core {

class RealTimeDriver {
 public:
  /// `timeScale` is virtual seconds advanced per wall-clock second:
  /// 1.0 runs in real time, 10.0 compresses a 300 s experiment into
  /// 30 s of wall time (useful for live end-to-end tests).
  explicit RealTimeDriver(sim::SimEngine& engine, double timeScale = 1.0)
      : engine_(engine), timeScale_(timeScale) {}

  /// Runs for `durationSeconds` of wall-clock time (waiting between
  /// event batches), or until stop() is called from a signal handler
  /// or another thread.
  void run(double durationSeconds);

  void stop() { stopped_.store(true); }

  double timeScale() const { return timeScale_; }

  /// Replaces the between-batch wait (default: sleep_for). The waiter
  /// receives the wall seconds to wait; it may return early (e.g. on
  /// fd readiness) — the driver re-checks the clock every iteration.
  void setWaiter(std::function<void(double)> waiter) {
    waiter_ = std::move(waiter);
  }

  /// Number of waits taken so far (test visibility: a driver that
  /// never spins performs at most a bounded number of waits per
  /// pending event, and at least one when the engine is idle).
  long waits() const { return waits_.load(); }

 private:
  sim::SimEngine& engine_;
  double timeScale_;
  std::atomic<bool> stopped_{false};
  std::atomic<long> waits_{0};
  std::function<void(double)> waiter_;
};

}  // namespace asdf::core
