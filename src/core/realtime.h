// Wall-clock pump for live deployments: advances a SimEngine's virtual
// clock in step with real time, so the same fpt-core configuration
// that runs against the simulator can run "online" — module periodic
// hooks fire at true wall-clock frequency. Used by the quickstart
// example's --realtime flag; experiments use pure virtual time.
#pragma once

#include <atomic>

#include "sim/engine.h"

namespace asdf::core {

class RealTimeDriver {
 public:
  explicit RealTimeDriver(sim::SimEngine& engine) : engine_(engine) {}

  /// Runs for `durationSeconds` of wall-clock time (sleeping between
  /// event batches), or until stop() is called from a signal handler
  /// or another thread.
  void run(double durationSeconds);

  void stop() { stopped_.store(true); }

 private:
  sim::SimEngine& engine_;
  std::atomic<bool> stopped_{false};
};

}  // namespace asdf::core
