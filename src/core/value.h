// Data values flowing along fpt-core DAG edges.
//
// A module output carries a time-stamped Sample whose payload is a
// scalar, a numeric vector (metric vectors, state vectors, alarm
// flags), or a string (diagnostics). Data-collection modules produce
// them; analysis modules consume and transform them.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "common/types.h"

namespace asdf::core {

using Value = std::variant<double, std::vector<double>, std::string>;

struct Sample {
  SimTime time = kNoTime;
  Value value;
};

/// Convenience accessors with clear failure semantics.
inline bool isScalar(const Value& v) {
  return std::holds_alternative<double>(v);
}
inline bool isVector(const Value& v) {
  return std::holds_alternative<std::vector<double>>(v);
}

/// Returns the scalar payload; throws std::bad_variant_access when the
/// value is not a scalar (a module wiring bug worth failing loudly on).
inline double asScalar(const Value& v) { return std::get<double>(v); }

inline const std::vector<double>& asVector(const Value& v) {
  return std::get<std::vector<double>>(v);
}

}  // namespace asdf::core
