// Data values flowing along fpt-core DAG edges.
//
// A module output carries a time-stamped Sample whose payload is a
// scalar, a numeric vector (metric vectors, state vectors, alarm
// flags), or a string (diagnostics). Data-collection modules produce
// them; analysis modules consume and transform them.
//
// Vector payloads are copy-on-write (VecBuf): the bytes live in one
// shared immutable buffer, so fan-out to N consumers, the port's
// latest-sample slot, and ibuffer history all alias the same storage
// instead of deep-copying per edge. Small vectors (<= 4 elements,
// e.g. alarm/health flags for a handful of streams) are stored inline
// with no heap buffer at all. Mutation goes through an explicit
// makeMutable(), which clones only when the buffer is aliased — the
// immutability rule and its consequences are documented in
// DESIGN.md §10.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/types.h"

namespace asdf::core {

/// Cheap global instrumentation of the data plane: how often a COW
/// buffer actually had to clone, and how many bytes consumers
/// materialized into private vectors. The counters are relaxed
/// atomics — monitoring only, never control flow. bench_data_plane
/// and the data-plane tests read and reset them.
struct DataPlaneCounters {
  std::atomic<std::uint64_t> cowClones{0};
  std::atomic<std::uint64_t> cowCloneBytes{0};
  std::atomic<std::uint64_t> materializations{0};
  std::atomic<std::uint64_t> materializedBytes{0};

  void reset() {
    cowClones.store(0, std::memory_order_relaxed);
    cowCloneBytes.store(0, std::memory_order_relaxed);
    materializations.store(0, std::memory_order_relaxed);
    materializedBytes.store(0, std::memory_order_relaxed);
  }
};

inline DataPlaneCounters& dataPlaneCounters() {
  static DataPlaneCounters counters;
  return counters;
}

/// Immutable, shareable vector-of-double payload with small-buffer
/// inline storage. Copying a VecBuf copies a handle (or <= 4 inline
/// doubles), never the heap buffer. The contract:
///
///   - Readers treat the contents as immutable; every consumer of a
///     port sees the same bytes.
///   - Writers call makeMutable(), which returns a mutable view and
///     clones the buffer first iff it is aliased (use_count > 1).
///     Inline payloads are value-copied per handle, so they are never
///     aliased and never clone.
///   - A single VecBuf instance is confined to one thread at a time;
///     *distinct* handles to the same buffer may be read concurrently
///     (the refcount is atomic, the bytes never change in place).
class VecBuf {
 public:
  static constexpr std::size_t kInlineCapacity = 4;

  VecBuf() = default;

  VecBuf(std::vector<double>&& v) {  // NOLINT(google-explicit-constructor)
    if (v.size() <= kInlineCapacity) {
      adoptInline(v.data(), v.size());
    } else {
      heap_ = std::make_shared<std::vector<double>>(std::move(v));
      size_ = heap_->size();
    }
  }

  VecBuf(const std::vector<double>& v)  // NOLINT(google-explicit-constructor)
      : VecBuf(v.data(), v.size()) {}

  VecBuf(std::initializer_list<double> init)
      : VecBuf(init.begin(), init.size()) {}

  VecBuf(const double* data, std::size_t n) {
    if (n <= kInlineCapacity) {
      adoptInline(data, n);
    } else {
      heap_ = std::make_shared<std::vector<double>>(data, data + n);
      size_ = n;
    }
  }

  /// Wraps an externally pooled buffer (VecBuilder). Small payloads
  /// are copied inline so the pool slot frees up immediately.
  explicit VecBuf(const std::shared_ptr<std::vector<double>>& shared) {
    assert(shared != nullptr);
    if (shared->size() <= kInlineCapacity) {
      adoptInline(shared->data(), shared->size());
    } else {
      heap_ = shared;
      size_ = shared->size();
    }
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const double* data() const {
    return heap_ != nullptr ? heap_->data() : inline_;
  }
  const double* begin() const { return data(); }
  const double* end() const { return data() + size_; }
  double operator[](std::size_t i) const {
    assert(i < size_);
    return data()[i];
  }
  double front() const { return (*this)[0]; }
  double back() const { return (*this)[size_ - 1]; }

  /// True when this handle shares its heap buffer with other handles.
  bool aliased() const { return heap_ != nullptr && heap_.use_count() > 1; }

  /// Explicit mutation point: returns a writable view of the
  /// payload, cloning the buffer first iff it is aliased so sibling
  /// consumers (and buffered history) keep seeing the original bytes.
  double* makeMutable() {
    if (heap_ == nullptr) return inline_;
    if (heap_.use_count() > 1) {
      auto& c = dataPlaneCounters();
      c.cowClones.fetch_add(1, std::memory_order_relaxed);
      c.cowCloneBytes.fetch_add(size_ * sizeof(double),
                                std::memory_order_relaxed);
      heap_ = std::make_shared<std::vector<double>>(*heap_);
    }
    return heap_->data();
  }

  /// Materializes a private std::vector copy (counted; prefer views).
  std::vector<double> toVector() const {
    auto& c = dataPlaneCounters();
    c.materializations.fetch_add(1, std::memory_order_relaxed);
    c.materializedBytes.fetch_add(size_ * sizeof(double),
                                  std::memory_order_relaxed);
    return std::vector<double>(begin(), end());
  }

  /// Bytes of payload storage behind this handle (footprint metrics).
  std::size_t payloadBytes() const {
    return heap_ != nullptr ? heap_->capacity() * sizeof(double) : 0;
  }

  friend bool operator==(const VecBuf& a, const VecBuf& b) {
    if (a.size_ != b.size_) return false;
    const double* pa = a.data();
    const double* pb = b.data();
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (pa[i] != pb[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const VecBuf& a, const VecBuf& b) {
    return !(a == b);
  }

 private:
  void adoptInline(const double* data, std::size_t n) {
    assert(n <= kInlineCapacity);
    for (std::size_t i = 0; i < n; ++i) inline_[i] = data[i];
    size_ = n;
  }

  std::shared_ptr<std::vector<double>> heap_;  // null => inline payload
  std::size_t size_ = 0;
  double inline_[kInlineCapacity] = {0, 0, 0, 0};
};

/// Reusable output-buffer pool for producing modules. acquire() hands
/// back a cleared std::vector whose storage is recycled from earlier
/// emissions once all consumers released their handles (the port slot
/// typically holds the only durable reference, so a producer ping-
/// pongs between two pooled buffers and reaches zero steady-state
/// allocations). share() snapshots the staged buffer into a VecBuf
/// without copying (small payloads go inline, freeing the slot at
/// once).
class VecBuilder {
 public:
  std::vector<double>& acquire() {
    current_.reset();
    // Rotating scan: consumers release buffers roughly in acquisition
    // order (window eviction), so the slot right after the last one we
    // took is almost always free — O(1) steady state instead of
    // walking every still-retained slot from the front.
    const std::size_t n = pool_.size();
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t idx = cursor_ + i;
      if (idx >= n) idx -= n;
      if (pool_[idx].use_count() == 1) {
        current_ = pool_[idx];
        cursor_ = idx + 1 == n ? 0 : idx + 1;
        break;
      }
    }
    if (current_ == nullptr) {
      pool_.push_back(std::make_shared<std::vector<double>>());
      current_ = pool_.back();
      cursor_ = 0;
    }
    current_->clear();
    return *current_;
  }

  /// Publishes the buffer staged by the last acquire().
  VecBuf share() {
    assert(current_ != nullptr && "share() without acquire()");
    VecBuf out(current_);
    current_.reset();
    return out;
  }

  std::size_t poolSize() const { return pool_.size(); }

 private:
  std::vector<std::shared_ptr<std::vector<double>>> pool_;
  std::shared_ptr<std::vector<double>> current_;
  std::size_t cursor_ = 0;
};

using Value = std::variant<double, VecBuf, std::string>;

struct Sample {
  SimTime time = kNoTime;
  Value value;
};

/// Convenience accessors with clear failure semantics.
inline bool isScalar(const Value& v) {
  return std::holds_alternative<double>(v);
}
inline bool isVector(const Value& v) {
  return std::holds_alternative<VecBuf>(v);
}

/// Returns the scalar payload; throws std::bad_variant_access when the
/// value is not a scalar (a module wiring bug worth failing loudly on).
inline double asScalar(const Value& v) { return std::get<double>(v); }

/// Returns a view of the shared vector payload; throws
/// std::bad_variant_access on non-vector values. The view is valid
/// while the Value (or any other handle to the buffer) is alive;
/// copy the VecBuf handle — not the bytes — to retain it.
inline const VecBuf& asVector(const Value& v) { return std::get<VecBuf>(v); }

}  // namespace asdf::core
