// The fpt-core plug-in API (Section 3.2 of the paper).
//
// All module types — data-collection and analysis alike — implement
// the same two entry points:
//
//   init(ctx)  — called once per instance: read configuration values,
//                verify input connections, create output connections,
//                set origin information, add scheduling hooks.
//   run(ctx, reason) — called by the scheduler, either periodically
//                (data-collection modules poll their sources) or when
//                a configurable number of inputs received new data
//                (analysis modules).
//
// Modules never see each other directly; they communicate only
// through their ports, which is what lets a configuration file rewire
// collection into analysis arbitrarily.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/ini.h"
#include "core/environment.h"
#include "core/value.h"

namespace asdf::core {

enum class RunReason {
  kPeriodic,       // scheduled at the instance's requested frequency
  kInputsUpdated,  // the configured number of input updates arrived
};

/// The facade through which a module instance touches the core. The
/// concrete implementation lives in graph.cpp; modules only see this
/// interface, which keeps them decoupled from scheduler internals.
class ModuleContext {
 public:
  virtual ~ModuleContext() = default;

  // --- identity & configuration --------------------------------------
  virtual const std::string& instanceId() const = 0;
  virtual const IniSection& section() const = 0;
  /// Convenience parameter readers; numeric variants throw ConfigError
  /// on malformed values (fail at init, not mid-run).
  std::string param(const std::string& key,
                    const std::string& fallback = "") const;
  double numParam(const std::string& key, double fallback) const;
  long intParam(const std::string& key, long fallback) const;

  // --- inputs ----------------------------------------------------------
  /// Names of configured inputs, in configuration order.
  virtual std::vector<std::string> inputNames() const = 0;
  /// Number of output connections bound to the named input.
  virtual std::size_t inputWidth(const std::string& name) const = 0;
  /// Latest sample on connection `index` of the named input.
  virtual const Sample& input(const std::string& name,
                              std::size_t index) const = 0;
  /// True once the connection has ever produced data.
  virtual bool inputHasData(const std::string& name,
                            std::size_t index) const = 0;
  /// True when the connection produced data since this instance last
  /// finished a run.
  virtual bool inputFresh(const std::string& name,
                          std::size_t index) const = 0;
  /// Origin label of the producing output (e.g. "slave3").
  virtual const std::string& inputOrigin(const std::string& name,
                                         std::size_t index) const = 0;
  /// Name of the producing output port (e.g. "alarms").
  virtual const std::string& inputPortName(const std::string& name,
                                           std::size_t index) const = 0;

  // --- outputs (create during init, write during run) -------------------
  virtual int addOutput(const std::string& name,
                        const std::string& origin = "") = 0;
  virtual void write(int outputIndex, Value value) = 0;

  // --- scheduling hooks (init only) --------------------------------------
  /// Requests periodic run() calls every `interval` seconds.
  virtual void requestPeriodic(double interval) = 0;
  /// Requests input-triggered run() calls after `updates` input writes
  /// (default 1 — run whenever anything new arrives).
  virtual void setInputTrigger(int updates) = 0;
  /// Declares membership in a mutual-exclusion domain: two instances
  /// sharing any domain never run concurrently, and their relative
  /// order within a wavefront level is their configuration order.
  /// Modules that mutate a shared environment service (a per-node
  /// daemon, a cross-instance synchronizer) declare the service's
  /// domain here so parallel executors stay correct and deterministic.
  /// May be called multiple times with different domains. No-op under
  /// the serial executor.
  virtual void requestExclusive(const std::string& domain) = 0;

  // --- services ----------------------------------------------------------
  virtual SimTime now() const = 0;
  virtual Environment& env() = 0;
};

class Module {
 public:
  virtual ~Module() = default;
  /// Throws ConfigError on bad configuration or wiring.
  virtual void init(ModuleContext& ctx) = 0;
  virtual void run(ModuleContext& ctx, RunReason reason) = 0;
};

}  // namespace asdf::core
