// Pluggable execution back-ends for the fpt-core wavefront scheduler.
//
// The scheduler (fpt_core.cpp) decides *what* is ready to run — the
// topological wavefront of module instances at the current virtual
// tick — and an Executor decides *how* those runs are carried out:
//
//   SerialExecutor      runs every task inline, in submission order.
//                       Bit-reproducible: same configuration + seed
//                       produce the same alarms in the same order.
//   ThreadPoolExecutor  runs the tasks of one batch concurrently on a
//                       persistent worker pool, restoring the paper's
//                       thread-per-module concurrency (Section 3.1
//                       spawns one thread per module instance). Output
//                       visibility is still barriered per wavefront
//                       level, so alarm *content* matches the serial
//                       executor; only intra-level wall-clock
//                       interleaving differs.
//
// Executors are deliberately dumb: a batch of opaque closures, run to
// completion, first exception rethrown after the barrier. All DAG
// knowledge (levels, exclusivity domains, deterministic notification
// merging) stays in the scheduler, which is what makes the back-end
// swappable from the command line (`asdfd --threads N`) without any
// semantic change.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace asdf::core {

class Executor {
 public:
  using Task = std::function<void()>;

  virtual ~Executor() = default;

  /// Human-readable back-end name ("serial", "pool(4)").
  virtual const std::string& name() const = 0;

  /// Upper bound on tasks the executor may run concurrently.
  virtual int concurrency() const = 0;

  /// Runs every task in `batch` to completion (the level barrier).
  /// Tasks within one batch must be independent; the executor may run
  /// them in any order. If tasks throw, the exception of the
  /// lowest-indexed throwing task is rethrown after all tasks ended.
  virtual void runBatch(std::vector<Task>& batch) = 0;
};

/// Inline, in-order execution — the deterministic default.
class SerialExecutor final : public Executor {
 public:
  const std::string& name() const override { return name_; }
  int concurrency() const override { return 1; }
  void runBatch(std::vector<Task>& batch) override;

 private:
  std::string name_ = "serial";
};

/// Persistent worker pool. Workers sit on a condition variable between
/// batches; runBatch publishes the batch, wakes them, and blocks until
/// the last task finished (the barrier the scheduler relies on).
class ThreadPoolExecutor final : public Executor {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPoolExecutor(int threads);
  ~ThreadPoolExecutor() override;

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  const std::string& name() const override { return name_; }
  int concurrency() const override { return static_cast<int>(workers_.size()); }
  void runBatch(std::vector<Task>& batch) override;

 private:
  void workerLoop();

  std::string name_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;   // workers wait for a new batch
  std::condition_variable done_;   // runBatch waits for completion
  std::vector<Task>* batch_ = nullptr;
  std::vector<std::exception_ptr> errors_;
  std::size_t nextIndex_ = 0;
  std::size_t remaining_ = 0;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

/// `threads <= 1` → SerialExecutor, otherwise ThreadPoolExecutor.
std::unique_ptr<Executor> makeExecutor(int threads);

}  // namespace asdf::core
