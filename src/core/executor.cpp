#include "core/executor.h"

#include <utility>

#include "common/strings.h"

namespace asdf::core {

// ---------------------------------------------------------------------------
// SerialExecutor

void SerialExecutor::runBatch(std::vector<Task>& batch) {
  for (Task& task : batch) task();
}

// ---------------------------------------------------------------------------
// ThreadPoolExecutor

ThreadPoolExecutor::ThreadPoolExecutor(int threads) {
  if (threads < 1) threads = 1;
  name_ = strformat("pool(%d)", threads);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPoolExecutor::~ThreadPoolExecutor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPoolExecutor::workerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mutex_);
    wake_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    while (batch_ != nullptr && nextIndex_ < batch_->size()) {
      const std::size_t index = nextIndex_++;
      lock.unlock();
      std::exception_ptr error;
      try {
        (*batch_)[index]();
      } catch (...) {
        error = std::current_exception();
      }
      lock.lock();
      if (error) errors_[index] = error;
      if (--remaining_ == 0) done_.notify_all();
    }
  }
}

void ThreadPoolExecutor::runBatch(std::vector<Task>& batch) {
  if (batch.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  batch_ = &batch;
  errors_.assign(batch.size(), nullptr);
  nextIndex_ = 0;
  remaining_ = batch.size();
  ++generation_;
  wake_.notify_all();
  done_.wait(lock, [&] { return remaining_ == 0; });
  batch_ = nullptr;
  for (std::exception_ptr& error : errors_) {
    if (error) std::rethrow_exception(error);
  }
}

// ---------------------------------------------------------------------------

std::unique_ptr<Executor> makeExecutor(int threads) {
  if (threads <= 1) return std::make_unique<SerialExecutor>();
  return std::make_unique<ThreadPoolExecutor>(threads);
}

}  // namespace asdf::core
