// Environment is header-only; this translation unit anchors the
// library target.
#include "core/environment.h"
