// fpt-core: the fingerpointing core (Section 3 of the paper).
//
// A configuration file instantiates modules and wires outputs to
// inputs; fpt-core builds the resulting DAG with the paper's
// initialization-queue algorithm (Section 3.3):
//
//   1. a vertex per module instance in the configuration;
//   2. annotate each instance with its unsatisfied inputs;
//      output-only instances join the initialization queue;
//   3. initialize queued instances — init() verifies inputs, reads
//      parameters, creates outputs; new outputs satisfy other
//      instances' inputs, queueing them in turn;
//   4. repeat until all instances are initialized; anything left is a
//      configuration error and fpt-core terminates (ConfigError).
//
// At runtime the scheduler calls run() on instances either at their
// requested frequency (data-collection modules poll external sources)
// or when the configured number of their inputs were updated
// (analysis modules fire as soon as the data they need is available).
//
// Deviation from the paper, documented in DESIGN.md: the original
// spawns one thread per instance; we dispatch runs deterministically
// on the simulation engine's virtual clock so experiments are exactly
// reproducible. DAG semantics (what runs, on which data, in what
// causal order) are identical. A wall-clock driver for live use is
// provided by RealTimeDriver (realtime.h).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/cputime.h"
#include "common/ini.h"
#include "core/environment.h"
#include "core/graph.h"
#include "core/registry.h"
#include "sim/engine.h"

namespace asdf::core {

class FptCore {
 public:
  /// The environment is copied in; provide services first. Modules
  /// are created through `registry` (defaults to the global one).
  FptCore(sim::SimEngine& engine, Environment env,
          ModuleRegistry* registry = nullptr);
  ~FptCore();

  FptCore(const FptCore&) = delete;
  FptCore& operator=(const FptCore&) = delete;

  /// Parses + builds + initializes the DAG. Throws ConfigError on
  /// malformed configuration, unknown module types, unsatisfiable
  /// inputs, duplicate ids, or dependency cycles.
  void configure(const IniFile& config);
  void configureFromText(const std::string& configText);
  void configureFromFile(const std::string& path);

  ModuleInstance* findInstance(const std::string& id);
  const std::vector<std::unique_ptr<ModuleInstance>>& instances() const {
    return instances_;
  }

  Environment& env() { return env_; }
  sim::SimEngine& engine() { return engine_; }

  /// Real CPU seconds spent executing module code (Table 3).
  double cpuSeconds() const { return cpu_.seconds(); }
  /// Approximate resident footprint of the graph (Table 3).
  std::size_t memoryFootprintBytes() const;
  /// Total module run() invocations (sanity/throughput metrics).
  std::uint64_t totalRuns() const { return totalRuns_; }

 private:
  friend class InstanceContext;

  void initializeGraph();
  void wireInputs(ModuleInstance& instance);
  void runInstance(ModuleInstance& instance, RunReason reason);
  void onOutputWritten(OutputPort& port);
  void scheduleDispatch(ModuleInstance& instance);

  sim::SimEngine& engine_;
  Environment env_;
  ModuleRegistry* registry_;
  std::vector<std::unique_ptr<ModuleInstance>> instances_;
  CpuMeter cpu_;
  std::uint64_t totalRuns_ = 0;
  bool configured_ = false;
};

}  // namespace asdf::core
