// fpt-core: the fingerpointing core (Section 3 of the paper).
//
// A configuration file instantiates modules and wires outputs to
// inputs; fpt-core builds the resulting DAG with the paper's
// initialization-queue algorithm (Section 3.3):
//
//   1. a vertex per module instance in the configuration;
//   2. annotate each instance with its unsatisfied inputs;
//      output-only instances join the initialization queue;
//   3. initialize queued instances — init() verifies inputs, reads
//      parameters, creates outputs; new outputs satisfy other
//      instances' inputs, queueing them in turn;
//   4. repeat until all instances are initialized; anything left is a
//      configuration error and fpt-core terminates (ConfigError).
//
// At runtime the scheduler calls run() on instances either at their
// requested frequency (data-collection modules poll external sources)
// or when the configured number of their inputs were updated
// (analysis modules fire as soon as the data they need is available).
//
// Execution is split into two layers (documented in DESIGN.md):
//
//   Scheduler (this class) — per virtual tick, collects every ready
//   instance and dispatches it as part of a *wavefront*: the ready set
//   grouped by topological DAG level. Levels run lowest-first with a
//   barrier between them; output notifications produced inside a level
//   are merged in deterministic (configuration) order at the barrier,
//   which is what keeps results independent of the executor.
//
//   Executor (executor.h) — carries out the runs of one level. The
//   default SerialExecutor is bit-reproducible (same seed → same
//   alarms, byte for byte); ThreadPoolExecutor runs independent
//   instances of a level concurrently, restoring the paper's
//   thread-per-module concurrency, with identical alarm content.
//
// A wall-clock driver for live use is provided by RealTimeDriver
// (realtime.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/cputime.h"
#include "common/ini.h"
#include "common/strings.h"
#include "core/environment.h"
#include "core/executor.h"
#include "core/graph.h"
#include "core/registry.h"
#include "sim/engine.h"

namespace asdf::core {

class FptCore {
 public:
  /// The environment is copied in; provide services first. Modules
  /// are created through `registry` (defaults to the global one).
  FptCore(sim::SimEngine& engine, Environment env,
          ModuleRegistry* registry = nullptr);
  ~FptCore();

  FptCore(const FptCore&) = delete;
  FptCore& operator=(const FptCore&) = delete;

  /// Parses + builds + initializes the DAG. Throws ConfigError on
  /// malformed configuration, unknown module types, unsatisfiable
  /// inputs, duplicate ids, or dependency cycles.
  void configure(const IniFile& config);
  void configureFromText(const std::string& configText);
  void configureFromFile(const std::string& path);

  /// Instance lookup by id (hash index; O(1), heterogeneous — a
  /// string_view slice of a config ref needs no temporary string).
  /// nullptr when absent.
  ModuleInstance* findInstance(std::string_view id);
  const std::vector<std::unique_ptr<ModuleInstance>>& instances() const {
    return instances_;
  }

  /// Swaps the execution back-end. Defaults to SerialExecutor. May be
  /// called before or after configure(), but not from module code
  /// while a wavefront is being dispatched.
  void setExecutor(std::unique_ptr<Executor> executor);
  Executor& executor() { return *executor_; }

  Environment& env() { return env_; }
  sim::SimEngine& engine() { return engine_; }

  /// Real CPU seconds spent executing module code (Table 3). Under a
  /// parallel executor this sums CPU time across worker threads.
  double cpuSeconds() const { return cpu_.seconds(); }
  /// Approximate resident footprint of the graph (Table 3).
  std::size_t memoryFootprintBytes() const;
  /// Total module run() invocations (sanity/throughput metrics).
  std::uint64_t totalRuns() const {
    return totalRuns_.load(std::memory_order_relaxed);
  }
  /// Wavefront dispatches performed (each covers >= 1 level).
  std::uint64_t wavefronts() const { return wavefronts_; }

 private:
  friend class InstanceContext;

  // One dispatchable unit: an instance plus why it runs. An instance
  // can appear twice in a level (periodic firing and a satisfied input
  // trigger at the same timestamp) — both runs happen back to back on
  // the same executor task, periodic first, matching the engine-order
  // semantics of the previous inline dispatcher.
  struct ReadyRun {
    ModuleInstance* instance;
    RunReason reason;
  };

  void initializeGraph();
  void wireInputs(ModuleInstance& instance);
  void runInstance(ModuleInstance& instance, RunReason reason);

  // --- wavefront scheduling ---------------------------------------------
  /// Called by InstanceContext::write. During a dispatch the
  /// notification is deferred to the current level's barrier;
  /// otherwise (init-time writes) it fires immediately.
  void noteOutputWritten(ModuleInstance& writer, OutputPort& port);
  /// Counts the update for every listener of `port` and enqueues them
  /// for dispatch.
  void onOutputWritten(OutputPort& port);
  /// Batch form used at the level barrier: stamps and publishes a
  /// producer's whole deferred write set in one pass, counting every
  /// port update per listener but enqueueing each consumer once.
  void publishWrites(const std::vector<OutputPort*>& writes);
  /// Adds an instance to the ready set and arms the dispatch event.
  void enqueueReady(ModuleInstance& instance);
  void scheduleWavefront();
  /// Drains the ready set: groups it by topological level, runs each
  /// level through the executor, merges deferred notifications at the
  /// level barrier, and repeats for newly readied (deeper) levels.
  void dispatchWavefront();
  /// Splits one level's runs into executor tasks: instances sharing an
  /// exclusivity domain form one serial task (configuration order);
  /// all other instances get a task each. Fills groups_/groupCount_
  /// from reused buffers; levels without exclusivity domains take an
  /// allocation-free linear path.
  void buildExclusiveGroups(const std::vector<ReadyRun>& runs);

  sim::SimEngine& engine_;
  Environment env_;
  ModuleRegistry* registry_;
  std::vector<std::unique_ptr<ModuleInstance>> instances_;
  std::unordered_map<std::string, ModuleInstance*, TransparentStringHash,
                     std::equal_to<>>
      instanceIndex_;
  std::unique_ptr<Executor> executor_;

  std::vector<ModuleInstance*> readySet_;
  // Reused dispatch buffers (wavefront hot path; capacity persists so
  // the steady state allocates nothing). frontier_ is indexed by
  // topological level, sized once the DAG is built.
  std::vector<std::vector<ModuleInstance*>> frontier_;
  std::vector<ReadyRun> levelRuns_;
  std::vector<ModuleInstance*> batchTargets_;
  std::vector<std::vector<ReadyRun>> groups_;  // first groupCount_ valid
  std::size_t groupCount_ = 0;
  std::vector<Executor::Task> tasks_;
  bool wavefrontScheduled_ = false;  // dispatch event already queued
  bool dispatching_ = false;         // inside dispatchWavefront
  std::uint64_t writeSeq_ = 0;       // deterministic global write stamp
  std::uint64_t wavefronts_ = 0;
  std::mutex alarmMutex_;  // serializes the wrapped env alarm sink

  CpuMeter cpu_;
  std::atomic<std::uint64_t> totalRuns_{0};
  bool configured_ = false;
};

}  // namespace asdf::core
