#include "core/registry.h"

#include "common/error.h"

namespace asdf::core {

ModuleRegistry& ModuleRegistry::global() {
  static ModuleRegistry registry;
  return registry;
}

void ModuleRegistry::registerType(const std::string& name,
                                  ModuleFactory factory) {
  factories_[name] = std::move(factory);
}

bool ModuleRegistry::has(const std::string& name) const {
  return factories_.count(name) != 0;
}

std::unique_ptr<Module> ModuleRegistry::create(const std::string& name) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw ConfigError("unknown module type '" + name + "'");
  }
  return it->second();
}

std::vector<std::string> ModuleRegistry::typeNames() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, f] : factories_) out.push_back(name);
  return out;
}

}  // namespace asdf::core
