#include "core/realtime.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace asdf::core {

void RealTimeDriver::run(double durationSeconds) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const double virtualStart = engine_.now();
  // Wait until the next pending event is due instead of polling at a
  // fixed rate; stop() is still honored within `maxNap` so a signal
  // handler can interrupt a long idle stretch. `minNap` guarantees
  // forward progress in wall time on every iteration — without it, an
  // event due "now" (or the final fraction of the run) degenerates
  // into a spin on the steady clock.
  constexpr double maxNap = 0.1;
  constexpr double minNap = 0.001;
  while (!stopped_.load()) {
    const double wallElapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (wallElapsed >= durationSeconds) break;
    engine_.runUntil(virtualStart + timeScale_ * wallElapsed);
    double nap = maxNap;
    if (!engine_.idle()) {
      const double untilNextWall =
          (engine_.nextEventTime() - virtualStart) / timeScale_ - wallElapsed;
      nap = std::min(maxNap, untilNextWall);
    }
    nap = std::min(nap, durationSeconds - wallElapsed);
    nap = std::max(nap, minNap);
    waits_.fetch_add(1);
    if (waiter_) {
      waiter_(nap);
    } else {
      std::this_thread::sleep_for(std::chrono::duration<double>(nap));
    }
  }
  if (!stopped_.load()) {
    engine_.runUntil(virtualStart + timeScale_ * durationSeconds);
  }
}

}  // namespace asdf::core
