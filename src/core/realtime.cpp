#include "core/realtime.h"

#include <chrono>
#include <thread>

namespace asdf::core {

void RealTimeDriver::run(double durationSeconds) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const double virtualStart = engine_.now();
  while (!stopped_.load()) {
    const double wallElapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (wallElapsed >= durationSeconds) break;
    engine_.runUntil(virtualStart + wallElapsed);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (!stopped_.load()) {
    engine_.runUntil(virtualStart + durationSeconds);
  }
}

}  // namespace asdf::core
