#include "core/realtime.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace asdf::core {

void RealTimeDriver::run(double durationSeconds) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const double virtualStart = engine_.now();
  // Sleep until the next pending event is due instead of polling at a
  // fixed rate; stop() is still honored within `maxNap` so a signal
  // handler can interrupt a long idle stretch.
  constexpr double maxNap = 0.1;
  while (!stopped_.load()) {
    const double wallElapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (wallElapsed >= durationSeconds) break;
    engine_.runUntil(virtualStart + wallElapsed);
    double nap = maxNap;
    if (!engine_.idle()) {
      const double untilNext = engine_.nextEventTime() - virtualStart;
      nap = std::min(maxNap, std::max(0.001, untilNext - wallElapsed));
    }
    nap = std::min(nap, durationSeconds - wallElapsed);
    if (nap > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(nap));
    }
  }
  if (!stopped_.load()) {
    engine_.runUntil(virtualStart + durationSeconds);
  }
}

}  // namespace asdf::core
