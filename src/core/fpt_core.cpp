#include "core/fpt_core.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <set>

#include "common/error.h"
#include "common/logging.h"
#include "common/strings.h"

namespace asdf::core {

FptCore::FptCore(sim::SimEngine& engine, Environment env,
                 ModuleRegistry* registry)
    : engine_(engine),
      env_(std::move(env)),
      registry_(registry != nullptr ? registry : &ModuleRegistry::global()) {}

FptCore::~FptCore() = default;

void FptCore::configureFromText(const std::string& configText) {
  configure(parseIni(configText));
}

void FptCore::configureFromFile(const std::string& path) {
  configure(parseIniFile(path));
}

ModuleInstance* FptCore::findInstance(const std::string& id) {
  for (auto& inst : instances_) {
    if (inst->id() == id) return inst.get();
  }
  return nullptr;
}

void FptCore::configure(const IniFile& config) {
  if (configured_) {
    throw ConfigError("fpt-core is already configured");
  }
  configured_ = true;

  // Step 1: a vertex per module instance in the configuration file.
  std::set<std::string> ids;
  int anonymous = 0;
  for (const auto& section : config.sections) {
    if (!registry_->has(section.name)) {
      throw ConfigError(strformat(
          "config line %d: unknown module type '%s'", section.line,
          section.name.c_str()));
    }
    std::string id = section.get("id");
    if (id.empty()) {
      id = strformat("%s%d", section.name.c_str(), anonymous++);
    }
    if (!ids.insert(id).second) {
      throw ConfigError(strformat("config line %d: duplicate instance id '%s'",
                                  section.line, id.c_str()));
    }
    if (id.find('.') != std::string::npos || id.find('@') != std::string::npos) {
      throw ConfigError(strformat(
          "config line %d: instance id '%s' may not contain '.' or '@'",
          section.line, id.c_str()));
    }
    instances_.push_back(std::make_unique<ModuleInstance>(
        *this, id, section.name, section, registry_->create(section.name)));
  }

  initializeGraph();
}

void FptCore::initializeGraph() {
  // Steps 2-4 of Section 3.3: seed the initialization queue with
  // output-only instances, then initialize instances as their inputs
  // become satisfiable (all producers initialized, so their outputs
  // exist and can be bound).
  std::deque<ModuleInstance*> queue;
  for (auto& inst : instances_) {
    if (inst->dependencyIds().empty()) queue.push_back(inst.get());
  }

  std::size_t initialized = 0;
  while (!queue.empty()) {
    ModuleInstance* inst = queue.front();
    queue.pop_front();
    if (inst->initialized_) continue;

    wireInputs(*inst);
    InstanceContext ctx(*this, *inst);
    inst->module_->init(ctx);
    inst->initialized_ = true;
    ++initialized;

    if (inst->outputs_.empty() && inst->inputSpecs_.empty()) {
      logWarn("fpt-core: instance '" + inst->id() +
              "' has neither inputs nor outputs");
    }
    if (inst->periodicInterval_ > 0.0) {
      ModuleInstance* target = inst;
      engine_.addPeriodic(
          inst->periodicInterval_,
          [this, target] { runInstance(*target, RunReason::kPeriodic); },
          inst->periodicInterval_);
    }

    // Newly created outputs may satisfy other instances.
    for (auto& candidate : instances_) {
      if (candidate->initialized_) continue;
      const auto deps = candidate->dependencyIds();
      const bool ready = std::all_of(
          deps.begin(), deps.end(), [this](const std::string& dep) {
            ModuleInstance* producer = findInstance(dep);
            return producer != nullptr && producer->initialized_;
          });
      if (ready &&
          std::find(queue.begin(), queue.end(), candidate.get()) ==
              queue.end()) {
        queue.push_back(candidate.get());
      }
    }
  }

  if (initialized != instances_.size()) {
    // Diagnose: name the stuck instances and the missing dependencies
    // (unknown producer ids or cycles).
    std::string detail;
    for (auto& inst : instances_) {
      if (inst->initialized_) continue;
      detail += " '" + inst->id() + "' waits on {";
      for (const auto& dep : inst->dependencyIds()) {
        ModuleInstance* producer = findInstance(dep);
        if (producer == nullptr) {
          detail += dep + "(unknown) ";
        } else if (!producer->initialized_) {
          detail += dep + " ";
        }
      }
      detail += "}";
    }
    throw ConfigError(
        "fpt-core: DAG construction failed; uninitializable instances:" +
        detail);
  }
}

void FptCore::wireInputs(ModuleInstance& instance) {
  for (const auto& spec : instance.inputSpecs_) {
    std::vector<OutputPort*> ports;
    if (spec.ref[0] == '@') {
      const std::string id = spec.ref.substr(1);
      ModuleInstance* producer = findInstance(id);
      if (producer == nullptr) {
        throw ConfigError(strformat(
            "config line %d: input references unknown instance '%s'",
            spec.line, id.c_str()));
      }
      if (producer->outputs_.empty()) {
        throw ConfigError(strformat(
            "config line %d: instance '%s' has no outputs to bind",
            spec.line, id.c_str()));
      }
      for (auto& port : producer->outputs_) ports.push_back(port.get());
    } else {
      const std::size_t dot = spec.ref.find('.');
      if (dot == std::string::npos) {
        throw ConfigError(strformat(
            "config line %d: input ref '%s' must be '@instance' or "
            "'instance.output'",
            spec.line, spec.ref.c_str()));
      }
      const std::string id = spec.ref.substr(0, dot);
      const std::string outputName = spec.ref.substr(dot + 1);
      ModuleInstance* producer = findInstance(id);
      if (producer == nullptr) {
        throw ConfigError(strformat(
            "config line %d: input references unknown instance '%s'",
            spec.line, id.c_str()));
      }
      OutputPort* port = producer->findOutput(outputName);
      if (port == nullptr) {
        throw ConfigError(strformat(
            "config line %d: instance '%s' has no output '%s'", spec.line,
            id.c_str(), outputName.c_str()));
      }
      ports.push_back(port);
    }

    if (instance.inputs_.find(spec.inputName) == instance.inputs_.end()) {
      instance.inputOrder_.push_back(spec.inputName);
    }
    auto& conns = instance.inputs_[spec.inputName];
    for (OutputPort* port : ports) {
      conns.push_back(InputConnection{port, 0});
      auto& subs = port->owner->subscribers_;
      if (std::find(subs.begin(), subs.end(), &instance) == subs.end()) {
        subs.push_back(&instance);
      }
    }
  }
}

void FptCore::onOutputWritten(OutputPort& port) {
  for (ModuleInstance* sub : port.owner->subscribers_) {
    // Count the update only if the subscriber actually listens to this
    // specific port (it may subscribe to a sibling output only).
    bool listens = false;
    for (const auto& [name, conns] : sub->inputs_) {
      for (const auto& conn : conns) {
        if (conn.port == &port) {
          listens = true;
          break;
        }
      }
      if (listens) break;
    }
    if (!listens) continue;
    ++sub->pendingUpdates_;
    scheduleDispatch(*sub);
  }
}

void FptCore::scheduleDispatch(ModuleInstance& instance) {
  if (instance.runQueued_) return;
  instance.runQueued_ = true;
  ModuleInstance* target = &instance;
  engine_.scheduleAfter(0.0, [this, target] {
    target->runQueued_ = false;
    if (target->pendingUpdates_ >= target->inputTrigger_) {
      target->pendingUpdates_ = 0;
      runInstance(*target, RunReason::kInputsUpdated);
    }
  });
}

void FptCore::runInstance(ModuleInstance& instance, RunReason reason) {
  CpuMeter::Scope scope(cpu_);
  ++totalRuns_;
  ++instance.runs_;
  InstanceContext ctx(*this, instance);
  instance.module_->run(ctx, reason);
  // Mark everything read: freshness is relative to the end of the run.
  for (auto& [name, conns] : instance.inputs_) {
    for (auto& conn : conns) conn.lastSeenVersion = conn.port->version;
  }
}

std::size_t FptCore::memoryFootprintBytes() const {
  std::size_t total = sizeof(FptCore);
  for (const auto& inst : instances_) {
    total += sizeof(ModuleInstance) + 256 /* module object estimate */;
    for (const auto& port : inst->outputs_) {
      total += sizeof(OutputPort);
      if (const auto* vec = std::get_if<std::vector<double>>(
              &port->latest.value)) {
        total += vec->capacity() * sizeof(double);
      } else if (const auto* str =
                     std::get_if<std::string>(&port->latest.value)) {
        total += str->capacity();
      }
    }
    for (const auto& [name, conns] : inst->inputs_) {
      total += name.capacity() + conns.size() * sizeof(InputConnection);
    }
  }
  return total;
}

}  // namespace asdf::core
