#include "core/fpt_core.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <numeric>
#include <set>

#include "common/error.h"
#include "common/logging.h"
#include "common/strings.h"

namespace asdf::core {

FptCore::FptCore(sim::SimEngine& engine, Environment env,
                 ModuleRegistry* registry)
    : engine_(engine),
      env_(std::move(env)),
      registry_(registry != nullptr ? registry : &ModuleRegistry::global()),
      executor_(std::make_unique<SerialExecutor>()) {
  // Parallel executors may deliver alarms from several print sinks of
  // one wavefront level concurrently; serialize the embedder's sink so
  // it never needs its own locking. (Alarm *sets* stay deterministic;
  // only intra-level delivery order may vary across executors.)
  if (env_.alarmSink) {
    auto inner = std::move(env_.alarmSink);
    env_.alarmSink = [this, inner](const Alarm& alarm) {
      std::lock_guard<std::mutex> lock(alarmMutex_);
      inner(alarm);
    };
  }
}

FptCore::~FptCore() = default;

void FptCore::configureFromText(const std::string& configText) {
  configure(parseIni(configText));
}

void FptCore::configureFromFile(const std::string& path) {
  configure(parseIniFile(path));
}

ModuleInstance* FptCore::findInstance(std::string_view id) {
  const auto it = instanceIndex_.find(id);
  return it == instanceIndex_.end() ? nullptr : it->second;
}

void FptCore::setExecutor(std::unique_ptr<Executor> executor) {
  assert(executor != nullptr);
  assert(!dispatching_);
  executor_ = std::move(executor);
}

void FptCore::configure(const IniFile& config) {
  if (configured_) {
    throw ConfigError("fpt-core is already configured");
  }
  configured_ = true;

  // Step 1: a vertex per module instance in the configuration file,
  // indexed by id for O(1) lookups everywhere downstream.
  int anonymous = 0;
  for (const auto& section : config.sections) {
    if (!registry_->has(section.name)) {
      throw ConfigError(strformat(
          "config line %d: unknown module type '%s'", section.line,
          section.name.c_str()));
    }
    std::string id = section.get("id");
    if (id.empty()) {
      id = strformat("%s%d", section.name.c_str(), anonymous++);
    }
    if (id.find('.') != std::string::npos || id.find('@') != std::string::npos) {
      throw ConfigError(strformat(
          "config line %d: instance id '%s' may not contain '.' or '@'",
          section.line, id.c_str()));
    }
    auto instance = std::make_unique<ModuleInstance>(
        *this, id, section.name, section, registry_->create(section.name));
    instance->order_ = static_cast<int>(instances_.size());
    if (!instanceIndex_.emplace(id, instance.get()).second) {
      throw ConfigError(strformat("config line %d: duplicate instance id '%s'",
                                  section.line, id.c_str()));
    }
    instances_.push_back(std::move(instance));
  }

  initializeGraph();
}

void FptCore::initializeGraph() {
  // Steps 2-4 of Section 3.3, in O(V + E): annotate each instance with
  // its count of unsatisfied (unique) dependencies and a reverse
  // adjacency list producer -> dependents. Initializing an instance
  // decrements its dependents' counts; only instances whose count just
  // reached zero join the queue — no rescan of the whole instance set
  // per initialization.
  std::unordered_map<ModuleInstance*, std::size_t> unsatisfied;
  std::unordered_map<ModuleInstance*, std::vector<ModuleInstance*>>
      producersOf;
  std::unordered_map<ModuleInstance*, std::vector<ModuleInstance*>>
      dependentsOf;
  std::deque<ModuleInstance*> queue;
  for (auto& inst : instances_) {
    std::set<std::string> deps;
    for (auto& dep : inst->dependencyIds()) deps.insert(std::move(dep));
    std::size_t pending = 0;
    for (const std::string& dep : deps) {
      ++pending;
      // Unknown producers keep the count above zero forever; the
      // diagnostic pass below names them.
      if (ModuleInstance* producer = findInstance(dep)) {
        producersOf[inst.get()].push_back(producer);
        dependentsOf[producer].push_back(inst.get());
      }
    }
    unsatisfied[inst.get()] = pending;
    if (pending == 0) queue.push_back(inst.get());
  }

  std::size_t initialized = 0;
  while (!queue.empty()) {
    ModuleInstance* inst = queue.front();
    queue.pop_front();
    if (inst->initialized_) continue;

    wireInputs(*inst);
    InstanceContext ctx(*this, *inst);
    inst->module_->init(ctx);
    inst->initialized_ = true;
    ++initialized;

    // Topological level: producers are guaranteed initialized first.
    int level = 0;
    for (ModuleInstance* producer : producersOf[inst]) {
      level = std::max(level, producer->level_ + 1);
    }
    inst->level_ = level;

    if (inst->outputs_.empty() && inst->inputSpecs_.empty()) {
      logWarn("fpt-core: instance '" + inst->id() +
              "' has neither inputs nor outputs");
    }
    if (inst->periodicInterval_ > 0.0) {
      ModuleInstance* target = inst;
      engine_.addPeriodic(
          inst->periodicInterval_,
          [this, target] {
            target->queuedPeriodic_ = true;
            enqueueReady(*target);
          },
          inst->periodicInterval_);
    }

    // This instance's outputs now exist; dependents with no other
    // missing producers become initializable.
    for (ModuleInstance* dependent : dependentsOf[inst]) {
      if (dependent->initialized_) continue;
      if (--unsatisfied[dependent] == 0) queue.push_back(dependent);
    }
  }

  if (initialized != instances_.size()) {
    // Diagnose: name the stuck instances and the missing dependencies
    // (unknown producer ids or cycles).
    std::string detail;
    for (auto& inst : instances_) {
      if (inst->initialized_) continue;
      detail += " '" + inst->id() + "' waits on {";
      for (const auto& dep : inst->dependencyIds()) {
        ModuleInstance* producer = findInstance(dep);
        if (producer == nullptr) {
          detail += dep + "(unknown) ";
        } else if (!producer->initialized_) {
          detail += dep + " ";
        }
      }
      detail += "}";
    }
    throw ConfigError(
        "fpt-core: DAG construction failed; uninitializable instances:" +
        detail);
  }

  // Size the dispatcher's level-indexed frontier buckets once; the
  // wavefront loop then reuses them without rehashing or tree churn.
  int maxLevel = 0;
  for (const auto& inst : instances_) {
    maxLevel = std::max(maxLevel, inst->level_);
  }
  frontier_.resize(static_cast<std::size_t>(maxLevel) + 1);
}

void FptCore::wireInputs(ModuleInstance& instance) {
  for (const auto& spec : instance.inputSpecs_) {
    std::vector<OutputPort*> ports;
    if (spec.ref[0] == '@') {
      const std::string id = spec.ref.substr(1);
      ModuleInstance* producer = findInstance(id);
      if (producer == nullptr) {
        throw ConfigError(strformat(
            "config line %d: input references unknown instance '%s'",
            spec.line, id.c_str()));
      }
      if (producer->outputs_.empty()) {
        throw ConfigError(strformat(
            "config line %d: instance '%s' has no outputs to bind",
            spec.line, id.c_str()));
      }
      for (auto& port : producer->outputs_) ports.push_back(port.get());
    } else {
      const std::size_t dot = spec.ref.find('.');
      if (dot == std::string::npos) {
        throw ConfigError(strformat(
            "config line %d: input ref '%s' must be '@instance' or "
            "'instance.output'",
            spec.line, spec.ref.c_str()));
      }
      const std::string id = spec.ref.substr(0, dot);
      const std::string outputName = spec.ref.substr(dot + 1);
      ModuleInstance* producer = findInstance(id);
      if (producer == nullptr) {
        throw ConfigError(strformat(
            "config line %d: input references unknown instance '%s'",
            spec.line, id.c_str()));
      }
      OutputPort* port = producer->findOutput(outputName);
      if (port == nullptr) {
        throw ConfigError(strformat(
            "config line %d: instance '%s' has no output '%s'", spec.line,
            id.c_str(), outputName.c_str()));
      }
      ports.push_back(port);
    }

    if (instance.inputs_.find(spec.inputName) == instance.inputs_.end()) {
      instance.inputOrder_.push_back(spec.inputName);
    }
    auto& conns = instance.inputs_[spec.inputName];
    for (OutputPort* port : ports) {
      conns.push_back(InputConnection{port, 0});
      auto& subs = port->owner->subscribers_;
      if (std::find(subs.begin(), subs.end(), &instance) == subs.end()) {
        subs.push_back(&instance);
      }
      // Per-port listener list: lets a write publish by walking exactly
      // the consumers of that port (deduplicated so one consumer with
      // several connections to the port still counts one update per
      // write, matching the historical notification semantics).
      auto& listeners = port->listeners;
      if (std::find(listeners.begin(), listeners.end(), &instance) ==
          listeners.end()) {
        listeners.push_back(&instance);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Wavefront scheduling

void FptCore::noteOutputWritten(ModuleInstance& writer, OutputPort& port) {
  if (dispatching_) {
    // Deferred: the dispatcher drains this at the level barrier and
    // merges notifications in deterministic order. Only the writer's
    // own executor thread appends here.
    writer.deferredWrites_.push_back(&port);
    return;
  }
  // Init-time (or out-of-band) write: notify immediately.
  port.writeSeq = ++writeSeq_;
  onOutputWritten(port);
}

void FptCore::onOutputWritten(OutputPort& port) {
  for (ModuleInstance* sub : port.listeners) {
    ++sub->pendingUpdates_;
    sub->runQueued_ = true;
    enqueueReady(*sub);
  }
}

void FptCore::publishWrites(const std::vector<OutputPort*>& writes) {
  // Stamp every port first (write order = deterministic stamp order),
  // then deliver the whole batch: pendingUpdates_ counts one update
  // per port-write per listener exactly as the per-port path would,
  // but each distinct consumer is enqueued once.
  batchTargets_.clear();
  for (OutputPort* port : writes) {
    port->writeSeq = ++writeSeq_;
    for (ModuleInstance* sub : port->listeners) {
      ++sub->pendingUpdates_;
      if (!sub->inPublishBatch_) {
        sub->inPublishBatch_ = true;
        batchTargets_.push_back(sub);
      }
    }
  }
  for (ModuleInstance* sub : batchTargets_) {
    sub->inPublishBatch_ = false;
    sub->runQueued_ = true;
    enqueueReady(*sub);
  }
}

void FptCore::enqueueReady(ModuleInstance& instance) {
  if (!instance.inReadySet_) {
    instance.inReadySet_ = true;
    readySet_.push_back(&instance);
  }
  if (!dispatching_) scheduleWavefront();
}

void FptCore::scheduleWavefront() {
  if (wavefrontScheduled_) return;
  wavefrontScheduled_ = true;
  engine_.scheduleAfter(0.0, [this] { dispatchWavefront(); });
}

void FptCore::buildExclusiveGroups(const std::vector<ReadyRun>& runs) {
  const auto appendToGroup = [this](std::size_t g, const ReadyRun& run) {
    if (g == groups_.size()) groups_.emplace_back();
    if (g >= groupCount_) {
      groups_[g].clear();
      groupCount_ = g + 1;
    }
    groups_[g].push_back(run);
  };
  groupCount_ = 0;

  // Fast path: no instance in this level declares an exclusivity
  // domain. Grouping then only merges the two entries of one instance
  // (periodic + triggered), which are always adjacent — a single
  // linear pass over reused buffers, no allocation in steady state.
  bool anyDomain = false;
  for (const ReadyRun& run : runs) {
    if (!run.instance->exclusiveDomains_.empty()) {
      anyDomain = true;
      break;
    }
  }
  if (!anyDomain) {
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (i > 0 && runs[i].instance == runs[i - 1].instance) {
        groups_[groupCount_ - 1].push_back(runs[i]);
      } else {
        appendToGroup(groupCount_, runs[i]);
      }
    }
    return;
  }

  // Union-find over the level's runs: both entries of one instance and
  // all instances sharing an exclusivity domain collapse into one
  // group, which the executor runs as a single serial task.
  std::vector<std::size_t> parent(runs.size());
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  const auto find = [&parent](std::size_t i) {
    while (parent[i] != i) {
      parent[i] = parent[parent[i]];
      i = parent[i];
    }
    return i;
  };
  const auto unite = [&](std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  };

  std::unordered_map<const ModuleInstance*, std::size_t> firstOfInstance;
  std::unordered_map<std::string, std::size_t> firstOfDomain;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto [instIt, instNew] =
        firstOfInstance.try_emplace(runs[i].instance, i);
    if (!instNew) unite(i, instIt->second);
    for (const std::string& domain : runs[i].instance->exclusiveDomains_) {
      const auto [domIt, domNew] = firstOfDomain.try_emplace(domain, i);
      if (!domNew) unite(i, domIt->second);
    }
  }

  std::unordered_map<std::size_t, std::size_t> groupOfRoot;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const std::size_t root = find(i);
    const auto [it, isNew] = groupOfRoot.try_emplace(root, groupCount_);
    appendToGroup(it->second, runs[i]);
  }
}

void FptCore::dispatchWavefront() {
  wavefrontScheduled_ = false;
  if (readySet_.empty()) return;
  dispatching_ = true;
  ++wavefronts_;

  // The working frontier, bucketed by topological level in reused
  // member buffers (their capacity persists across wavefronts, so the
  // steady state allocates nothing here). Notifications merged at a
  // level barrier can only ready *deeper* instances (a subscriber's
  // level strictly exceeds its producer's), so one ascending sweep
  // covers everything this wavefront can reach.
  const auto absorbReadySet = [&] {
    for (ModuleInstance* inst : readySet_) {
      inst->inReadySet_ = false;
      frontier_[static_cast<std::size_t>(inst->level_)].push_back(inst);
    }
    readySet_.clear();
  };
  absorbReadySet();

  for (std::size_t lvl = 0; lvl < frontier_.size(); ++lvl) {
    std::vector<ModuleInstance*>& levelInstances = frontier_[lvl];
    if (levelInstances.empty()) continue;
    std::sort(levelInstances.begin(), levelInstances.end(),
              [](const ModuleInstance* a, const ModuleInstance* b) {
                return a->order_ < b->order_;
              });

    levelRuns_.clear();
    for (ModuleInstance* inst : levelInstances) {
      const bool periodic = inst->queuedPeriodic_;
      inst->queuedPeriodic_ = false;
      const bool triggered = inst->runQueued_;
      inst->runQueued_ = false;
      if (periodic) levelRuns_.push_back(ReadyRun{inst, RunReason::kPeriodic});
      if (triggered && inst->pendingUpdates_ >= inst->inputTrigger_) {
        inst->pendingUpdates_ = 0;
        levelRuns_.push_back(ReadyRun{inst, RunReason::kInputsUpdated});
      }
    }
    levelInstances.clear();
    if (levelRuns_.empty()) continue;

    buildExclusiveGroups(levelRuns_);
    tasks_.clear();
    for (std::size_t g = 0; g < groupCount_; ++g) {
      const std::vector<ReadyRun>* group = &groups_[g];
      tasks_.push_back([this, group] {
        for (const ReadyRun& run : *group) {
          runInstance(*run.instance, run.reason);
        }
      });
    }
    try {
      executor_->runBatch(tasks_);
    } catch (...) {
      for (const ReadyRun& run : levelRuns_) {
        run.instance->deferredWrites_.clear();
      }
      for (auto& bucket : frontier_) bucket.clear();
      dispatching_ = false;
      throw;
    }

    // Level barrier: every run of this level has completed. Publish
    // each producer's whole deferred write set in deterministic order
    // — instances in configuration order, each instance's writes in
    // its own write order — regardless of how the executor interleaved
    // the runs. (No module code runs during publishing, so draining in
    // place is safe; clear() keeps the buffer's capacity.)
    for (const ReadyRun& run : levelRuns_) {
      ModuleInstance* inst = run.instance;
      if (inst->deferredWrites_.empty()) continue;
      publishWrites(inst->deferredWrites_);
      inst->deferredWrites_.clear();
    }
    absorbReadySet();
  }

  dispatching_ = false;
  if (!readySet_.empty()) scheduleWavefront();
}

void FptCore::runInstance(ModuleInstance& instance, RunReason reason) {
  CpuMeter::Scope scope(cpu_);
  totalRuns_.fetch_add(1, std::memory_order_relaxed);
  ++instance.runs_;
  InstanceContext ctx(*this, instance);
  instance.module_->run(ctx, reason);
  // Mark everything read: freshness is relative to the end of the run.
  for (auto& [name, conns] : instance.inputs_) {
    for (auto& conn : conns) conn.lastSeenVersion = conn.port->version;
  }
}

std::size_t FptCore::memoryFootprintBytes() const {
  std::size_t total = sizeof(FptCore);
  for (const auto& inst : instances_) {
    total += sizeof(ModuleInstance) + 256 /* module object estimate */;
    for (const auto& port : inst->outputs_) {
      total += sizeof(OutputPort);
      if (const auto* vec = std::get_if<VecBuf>(&port->latest.value)) {
        total += vec->payloadBytes();
      } else if (const auto* str =
                     std::get_if<std::string>(&port->latest.value)) {
        total += str->capacity();
      }
    }
    for (const auto& [name, conns] : inst->inputs_) {
      total += name.capacity() + conns.size() * sizeof(InputConnection);
    }
  }
  return total;
}

}  // namespace asdf::core
