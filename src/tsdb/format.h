// On-disk format of the queryable time-series store (DESIGN.md §14).
//
// The tsdb store lives in a `tsdb/` subdirectory of a flight-recorder
// archive. Each sealed raw segment `seg-N.asar` compacts into one
// column-oriented file `seg-N.astd`: a stream of frames in the same
// CRC-framed wire codec the archive uses (src/net/frame.h), with
// record types from the 0x50 range so a tsdb file fed to the archive
// reader (or the live decoder) is unmistakable:
//
//   kTsdbMetaRecord    (0x50)  first frame: tsdb version, source
//                              segment identity, time range, counts
//   kColumnChunkRecord (0x51)  one (node, metric) raw series: times
//                              and values, snapshot + XOR-varint
//                              deltas (bit-exact round trip)
//   kRollupChunkRecord (0x52)  one (node, metric, level) downsampled
//                              series: per-bucket min/max/sum/count
//   kTsdbFooterRecord  (0x53)  chunk index: (node, metric, level) ->
//                              file offset + time range + count
//
// and a fixed 16-byte trailer (magic "ASTS", version, footer offset)
// mirroring the archive trailer, so a reader locates the index with
// two reads and never scans the body. Files are written to a ".tmp"
// name, fsynced, renamed into place, and the directory fsynced — the
// same durability receipt as segment sealing; any flipped bit fails
// verify via the per-frame CRC-32 plus the index cross-checks.
//
// Delta encoding: a column of doubles stores the first value's raw
// bit pattern (8 bytes, big-endian) and every subsequent value as
// LEB128-varint(bits XOR previous bits). Identical consecutive values
// cost one byte; similar values share sign/exponent/high-mantissa
// bits, so the XOR has leading zeros and the varint stays short. The
// round trip is bit-exact, which the raw-vs-replay property tests
// demand. Bucket indices use zigzag-varint delta encoding (mostly +1).
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/frame.h"
#include "rpc/wire.h"

namespace asdf::tsdb {

/// Raised on unreadable, corrupt, or version-skewed tsdb files, and
/// on malformed queries (unknown metric, bad resolution).
class TsdbError : public std::runtime_error {
 public:
  explicit TsdbError(const std::string& what) : std::runtime_error(what) {}
};

inline constexpr std::uint32_t kTsdbFormatVersion = 1;
inline constexpr std::uint32_t kTsdbTrailerMagic = 0x41535453u;  // "ASTS"
inline constexpr std::size_t kTsdbTrailerBytes = 16;

inline constexpr net::MsgType kTsdbMetaRecord =
    static_cast<net::MsgType>(0x50);
inline constexpr net::MsgType kColumnChunkRecord =
    static_cast<net::MsgType>(0x51);
inline constexpr net::MsgType kRollupChunkRecord =
    static_cast<net::MsgType>(0x52);
inline constexpr net::MsgType kTsdbFooterRecord =
    static_cast<net::MsgType>(0x53);

/// Query resolutions. The numeric value of a rollup level is its
/// bucket width in archived (virtual) seconds; 0 means raw samples.
enum class Resolution : std::uint32_t {
  kRaw = 0,
  k10s = 10,
  k1m = 60,
  k10m = 600,
};

/// The downsampling levels every compacted segment carries.
inline constexpr std::array<std::uint32_t, 3> kRollupLevels = {10, 60, 600};

/// "raw" | "10s" | "1m" | "10m". Throws TsdbError on anything else.
Resolution resolutionFromName(const std::string& name);
const char* resolutionName(Resolution res);

/// One raw sample of a (node, metric) series.
struct RawPoint {
  double t = kNoTime;
  double v = 0.0;
};

/// One downsampled bucket: bucket `index` covers archived time
/// [index*level, (index+1)*level). `sum` is the left-to-right sum of
/// the bucket's raw values within one segment; when a bucket spans a
/// segment boundary the store merges partial sums in segment order
/// (min/max/count merge exactly; the merged sum is order-defined, see
/// DESIGN.md §14).
struct Bucket {
  std::int64_t index = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::int64_t count = 0;

  double startTime(std::uint32_t level) const {
    return static_cast<double>(index) * static_cast<double>(level);
  }
  double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

/// First frame of a compacted file: identity of the raw segment it
/// was built from plus whole-file totals.
struct TsdbMeta {
  std::uint32_t version = kTsdbFormatVersion;
  std::uint64_t sourceIndex = 0;      // archive segment index
  std::int64_t sourceFileBytes = 0;   // sealed .asar size when compacted
  double firstNow = kNoTime;
  double lastNow = kNoTime;
  std::int64_t samplePoints = 0;      // raw points across all chunks
  std::uint32_t metricCount = 0;      // flattened sadc vector width
};

/// Footer index entry locating one chunk frame. level 0 = raw column
/// chunk, otherwise a rollup chunk of that bucket width.
struct ChunkIndexEntry {
  NodeId node = 0;
  std::uint32_t metric = 0;
  std::uint32_t level = 0;
  std::uint64_t offset = 0;  // file offset of the chunk's frame header
  std::int64_t count = 0;    // points (raw) or buckets (rollup)
  double firstNow = kNoTime;
  double lastNow = kNoTime;
};

struct TsdbFooter {
  double firstNow = kNoTime;
  double lastNow = kNoTime;
  std::int64_t samplePoints = 0;
  std::vector<ChunkIndexEntry> chunks;
};

// -- varint / delta primitives (exposed for tests) -------------------

void putVarU64(std::vector<std::uint8_t>& buf, std::uint64_t v);
/// Throws TsdbError when the varint runs past `size` or overflows.
std::uint64_t getVarU64(const std::uint8_t* data, std::size_t size,
                        std::size_t& pos);

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Snapshot + XOR-varint delta encoding of a double column. The round
/// trip is bit-exact for every double, NaNs and signed zeros included.
void encodeDoubleColumn(std::vector<std::uint8_t>& buf,
                        const std::vector<double>& values);
std::vector<double> decodeDoubleColumn(const std::uint8_t* data,
                                       std::size_t size, std::size_t& pos,
                                       std::size_t count);

// -- record codecs ---------------------------------------------------

void encodeTsdbMeta(rpc::Encoder& enc, const TsdbMeta& meta);
TsdbMeta decodeTsdbMeta(rpc::Decoder& dec);

/// Column chunk: raw (time, value) series of one (node, metric).
void encodeColumnChunk(rpc::Encoder& enc, NodeId node, std::uint32_t metric,
                       const std::vector<RawPoint>& points);
void decodeColumnChunk(rpc::Decoder& dec, NodeId& node,
                       std::uint32_t& metric, std::vector<RawPoint>& points);

/// Rollup chunk: bucket series of one (node, metric, level).
void encodeRollupChunk(rpc::Encoder& enc, NodeId node, std::uint32_t metric,
                       std::uint32_t level,
                       const std::vector<Bucket>& buckets);
void decodeRollupChunk(rpc::Decoder& dec, NodeId& node,
                       std::uint32_t& metric, std::uint32_t& level,
                       std::vector<Bucket>& buckets);

void encodeTsdbFooter(rpc::Encoder& enc, const TsdbFooter& footer);
TsdbFooter decodeTsdbFooter(rpc::Decoder& dec);

std::vector<std::uint8_t> encodeTsdbTrailer(std::uint64_t footerOffset);
bool decodeTsdbTrailer(const std::uint8_t* data, std::size_t size,
                       std::uint64_t& footerOffset);

// -- rollup aggregation (the one definition both the compactor and
//    the store's raw-segment fallback use) --------------------------

/// Folds one raw point into a bucket series built in time order:
/// extends the last bucket or appends a new one. `t` must be
/// nondecreasing across calls for the sum order to be well defined.
void accumulateBucket(std::vector<Bucket>& buckets, std::uint32_t level,
                      double t, double v);

/// Appends `src` (time-ordered, disjoint or boundary-overlapping) to
/// `dst`, merging a shared boundary bucket: min/max/count combine
/// exactly, partial sums add in piece order.
void mergeBuckets(std::vector<Bucket>& dst, const std::vector<Bucket>& src);

/// Bucket index containing archived time t at the given level.
std::int64_t bucketIndexOf(double t, std::uint32_t level);

/// "seg-%08llu.astd" — compacted counterpart of an archive segment.
std::string tsdbFileName(std::uint64_t index);
/// Subdirectory of the archive that holds compacted segments.
inline constexpr const char* kTsdbSubdir = "tsdb";

}  // namespace asdf::tsdb
