// Delta compaction: sealed raw segments -> queryable column files.
//
// A compaction pass reads one sealed archive segment (`seg-N.asar`),
// decodes every ok sadc sample into per-(node, metric) series, and
// writes the column-oriented counterpart `tsdb/seg-N.astd` next to it
// (format in tsdb/format.h): raw column chunks, the three rollup
// levels, a chunk index footer, and the ASTS trailer. The raw segment
// is NEVER modified — replay stays byte-identical — and the compacted
// file is published with the same fsync-then-rename receipt as
// segment sealing, so a crash mid-compaction leaves at most a *.tmp
// file the next pass overwrites.
//
// Two drivers share the pass:
//   * compactArchive() — the offline `asdf_archive compact` command:
//     compacts every sealed segment that has no up-to-date .astd.
//   * BackgroundCompactor — a single worker thread fed by the
//     ArchiveWriter's onSeal hook inside asdf_rpcd, so a recording
//     archive becomes queryable segment by segment while the daemon
//     is still appending to the next one.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "tsdb/format.h"

namespace asdf::tsdb {

/// The decoded time-series content of one sealed raw segment.
struct SegmentSeries {
  double firstNow = kNoTime;  // over the points below, not all records
  double lastNow = kNoTime;
  std::int64_t samplePoints = 0;  // total raw points across all series
  std::uint32_t metricCount = 0;
  /// (node, metric index) -> time-ordered raw points. Only ok sadc
  /// records with a decodable snapshot payload contribute.
  std::map<std::pair<NodeId, std::uint32_t>, std::vector<RawPoint>> series;
};

/// Decodes one sealed segment file (trailer verified, every frame CRC
/// checked). Throws TsdbError on corruption or an unsealed file.
SegmentSeries readSealedSegment(const std::string& segPath);

struct CompactResult {
  std::uint64_t index = 0;
  std::string path;  // the .astd written (or found up to date)
  bool skipped = false;  // an up-to-date .astd already existed
  std::int64_t rawPoints = 0;
  std::int64_t chunks = 0;
  std::int64_t fileBytes = 0;
};

/// Compacts one sealed segment into `<archiveDir>/tsdb/seg-N.astd`.
/// Skips (without reading the segment) when an .astd built from a
/// source file of the same byte size already exists, unless `force`.
CompactResult compactSegment(const std::string& archiveDir,
                             const std::string& segPath, std::uint64_t index,
                             bool force = false);

/// Compacts every sealed segment of the archive, oldest first.
std::vector<CompactResult> compactArchive(const std::string& archiveDir,
                                          bool force = false);

/// Single worker thread draining a queue of freshly sealed segments.
/// enqueue() is cheap and never blocks on IO — safe to call from the
/// ArchiveWriter's onSeal hook (which runs under the writer lock).
class BackgroundCompactor {
 public:
  explicit BackgroundCompactor(std::string archiveDir);
  ~BackgroundCompactor();

  void enqueue(const std::string& sealedPath, std::uint64_t index);
  /// Blocks until every enqueued segment has been processed.
  void drain();

  long compacted() const;
  long failed() const;
  std::string lastError() const;

 private:
  void run();

  std::string archiveDir_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idleCv_;
  std::deque<std::pair<std::string, std::uint64_t>> queue_;
  bool stopping_ = false;
  bool busy_ = false;
  long compacted_ = 0;
  long failed_ = 0;
  std::string lastError_;
  std::thread worker_;
};

}  // namespace asdf::tsdb
