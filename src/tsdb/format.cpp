#include "tsdb/format.h"

#include <cmath>
#include <cstring>

#include "common/bytes.h"
#include "common/strings.h"

namespace asdf::tsdb {
namespace {

inline std::uint64_t doubleBits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

inline double bitsDouble(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Column blobs ride inside the codec's string type (length prefix +
// padding), same as archive sample payloads.
std::string blobToString(const std::vector<std::uint8_t>& blob) {
  return std::string(blob.begin(), blob.end());
}

}  // namespace

Resolution resolutionFromName(const std::string& name) {
  if (name == "raw") return Resolution::kRaw;
  if (name == "10s") return Resolution::k10s;
  if (name == "1m") return Resolution::k1m;
  if (name == "10m") return Resolution::k10m;
  throw TsdbError("tsdb: unknown resolution '" + name +
                  "' (raw|10s|1m|10m)");
}

const char* resolutionName(Resolution res) {
  switch (res) {
    case Resolution::kRaw:
      return "raw";
    case Resolution::k10s:
      return "10s";
    case Resolution::k1m:
      return "1m";
    case Resolution::k10m:
      return "10m";
  }
  return "unknown";
}

void putVarU64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  while (v >= 0x80) {
    buf.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t getVarU64(const std::uint8_t* data, std::size_t size,
                        std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos >= size) throw TsdbError("tsdb: varint runs past the blob");
    if (shift >= 64) throw TsdbError("tsdb: varint overflows 64 bits");
    const std::uint8_t byte = data[pos++];
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

void encodeDoubleColumn(std::vector<std::uint8_t>& buf,
                        const std::vector<double>& values) {
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::uint64_t bits = doubleBits(values[i]);
    if (i == 0) {
      bytes::putU64(buf, bits);
    } else {
      putVarU64(buf, bits ^ prev);
    }
    prev = bits;
  }
}

std::vector<double> decodeDoubleColumn(const std::uint8_t* data,
                                       std::size_t size, std::size_t& pos,
                                       std::size_t count) {
  std::vector<double> out;
  out.reserve(count);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t bits;
    if (i == 0) {
      if (pos + 8 > size) {
        throw TsdbError("tsdb: double column snapshot runs past the blob");
      }
      bits = bytes::readU64(data + pos);
      pos += 8;
    } else {
      bits = prev ^ getVarU64(data, size, pos);
    }
    out.push_back(bitsDouble(bits));
    prev = bits;
  }
  return out;
}

void encodeTsdbMeta(rpc::Encoder& enc, const TsdbMeta& meta) {
  enc.putU32(kTsdbFormatVersion);
  enc.putI64(static_cast<std::int64_t>(meta.sourceIndex));
  enc.putI64(meta.sourceFileBytes);
  enc.putDouble(meta.firstNow);
  enc.putDouble(meta.lastNow);
  enc.putI64(meta.samplePoints);
  enc.putU32(meta.metricCount);
}

TsdbMeta decodeTsdbMeta(rpc::Decoder& dec) {
  TsdbMeta meta;
  meta.version = dec.getU32();
  if (meta.version != kTsdbFormatVersion) {
    throw TsdbError("tsdb: format version " + std::to_string(meta.version) +
                    " (this build reads version " +
                    std::to_string(kTsdbFormatVersion) + ")");
  }
  meta.sourceIndex = static_cast<std::uint64_t>(dec.getI64());
  meta.sourceFileBytes = dec.getI64();
  meta.firstNow = dec.getDouble();
  meta.lastNow = dec.getDouble();
  meta.samplePoints = dec.getI64();
  meta.metricCount = dec.getU32();
  return meta;
}

void encodeColumnChunk(rpc::Encoder& enc, NodeId node, std::uint32_t metric,
                       const std::vector<RawPoint>& points) {
  enc.putU32(static_cast<std::uint32_t>(node));
  enc.putU32(metric);
  enc.putU32(static_cast<std::uint32_t>(points.size()));
  std::vector<double> times, values;
  times.reserve(points.size());
  values.reserve(points.size());
  for (const RawPoint& p : points) {
    times.push_back(p.t);
    values.push_back(p.v);
  }
  std::vector<std::uint8_t> blob;
  encodeDoubleColumn(blob, times);
  encodeDoubleColumn(blob, values);
  enc.putString(blobToString(blob));
}

void decodeColumnChunk(rpc::Decoder& dec, NodeId& node,
                       std::uint32_t& metric, std::vector<RawPoint>& points) {
  node = static_cast<NodeId>(dec.getU32());
  metric = dec.getU32();
  const std::uint32_t count = dec.getU32();
  const std::string blob = dec.getString();
  const std::uint8_t* data =
      reinterpret_cast<const std::uint8_t*>(blob.data());
  std::size_t pos = 0;
  const std::vector<double> times =
      decodeDoubleColumn(data, blob.size(), pos, count);
  const std::vector<double> values =
      decodeDoubleColumn(data, blob.size(), pos, count);
  if (pos != blob.size()) {
    throw TsdbError("tsdb: column chunk blob has trailing bytes");
  }
  points.clear();
  points.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    points.push_back({times[i], values[i]});
  }
}

void encodeRollupChunk(rpc::Encoder& enc, NodeId node, std::uint32_t metric,
                       std::uint32_t level,
                       const std::vector<Bucket>& buckets) {
  enc.putU32(static_cast<std::uint32_t>(node));
  enc.putU32(metric);
  enc.putU32(level);
  enc.putU32(static_cast<std::uint32_t>(buckets.size()));
  std::vector<std::uint8_t> blob;
  std::int64_t prevIndex = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    // First index raw (zigzag), then deltas — consecutive buckets are
    // mostly +1, one byte each.
    putVarU64(blob, zigzag(i == 0 ? buckets[i].index
                                  : buckets[i].index - prevIndex));
    prevIndex = buckets[i].index;
  }
  std::vector<double> mins, maxes, sums;
  mins.reserve(buckets.size());
  maxes.reserve(buckets.size());
  sums.reserve(buckets.size());
  for (const Bucket& b : buckets) {
    mins.push_back(b.min);
    maxes.push_back(b.max);
    sums.push_back(b.sum);
  }
  encodeDoubleColumn(blob, mins);
  encodeDoubleColumn(blob, maxes);
  encodeDoubleColumn(blob, sums);
  for (const Bucket& b : buckets) {
    putVarU64(blob, static_cast<std::uint64_t>(b.count));
  }
  enc.putString(blobToString(blob));
}

void decodeRollupChunk(rpc::Decoder& dec, NodeId& node,
                       std::uint32_t& metric, std::uint32_t& level,
                       std::vector<Bucket>& buckets) {
  node = static_cast<NodeId>(dec.getU32());
  metric = dec.getU32();
  level = dec.getU32();
  const std::uint32_t count = dec.getU32();
  const std::string blob = dec.getString();
  const std::uint8_t* data =
      reinterpret_cast<const std::uint8_t*>(blob.data());
  std::size_t pos = 0;
  buckets.assign(count, Bucket{});
  std::int64_t prevIndex = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::int64_t delta = unzigzag(getVarU64(data, blob.size(), pos));
    buckets[i].index = i == 0 ? delta : prevIndex + delta;
    prevIndex = buckets[i].index;
  }
  const std::vector<double> mins =
      decodeDoubleColumn(data, blob.size(), pos, count);
  const std::vector<double> maxes =
      decodeDoubleColumn(data, blob.size(), pos, count);
  const std::vector<double> sums =
      decodeDoubleColumn(data, blob.size(), pos, count);
  for (std::uint32_t i = 0; i < count; ++i) {
    buckets[i].min = mins[i];
    buckets[i].max = maxes[i];
    buckets[i].sum = sums[i];
    buckets[i].count =
        static_cast<std::int64_t>(getVarU64(data, blob.size(), pos));
  }
  if (pos != blob.size()) {
    throw TsdbError("tsdb: rollup chunk blob has trailing bytes");
  }
}

void encodeTsdbFooter(rpc::Encoder& enc, const TsdbFooter& footer) {
  enc.putDouble(footer.firstNow);
  enc.putDouble(footer.lastNow);
  enc.putI64(footer.samplePoints);
  enc.putU32(static_cast<std::uint32_t>(footer.chunks.size()));
  for (const ChunkIndexEntry& c : footer.chunks) {
    enc.putU32(static_cast<std::uint32_t>(c.node));
    enc.putU32(c.metric);
    enc.putU32(c.level);
    enc.putI64(static_cast<std::int64_t>(c.offset));
    enc.putI64(c.count);
    enc.putDouble(c.firstNow);
    enc.putDouble(c.lastNow);
  }
}

TsdbFooter decodeTsdbFooter(rpc::Decoder& dec) {
  TsdbFooter footer;
  footer.firstNow = dec.getDouble();
  footer.lastNow = dec.getDouble();
  footer.samplePoints = dec.getI64();
  const std::uint32_t n = dec.getU32();
  footer.chunks.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ChunkIndexEntry c;
    c.node = static_cast<NodeId>(dec.getU32());
    c.metric = dec.getU32();
    c.level = dec.getU32();
    c.offset = static_cast<std::uint64_t>(dec.getI64());
    c.count = dec.getI64();
    c.firstNow = dec.getDouble();
    c.lastNow = dec.getDouble();
    footer.chunks.push_back(c);
  }
  return footer;
}

std::vector<std::uint8_t> encodeTsdbTrailer(std::uint64_t footerOffset) {
  std::vector<std::uint8_t> out;
  out.reserve(kTsdbTrailerBytes);
  bytes::putU32(out, kTsdbTrailerMagic);
  bytes::putU32(out, kTsdbFormatVersion);
  bytes::putU64(out, footerOffset);
  return out;
}

bool decodeTsdbTrailer(const std::uint8_t* data, std::size_t size,
                       std::uint64_t& footerOffset) {
  if (size != kTsdbTrailerBytes) return false;
  if (bytes::readU32(data) != kTsdbTrailerMagic) return false;
  if (bytes::readU32(data + 4) != kTsdbFormatVersion) return false;
  footerOffset = bytes::readU64(data + 8);
  return true;
}

std::int64_t bucketIndexOf(double t, std::uint32_t level) {
  return static_cast<std::int64_t>(
      std::floor(t / static_cast<double>(level)));
}

void accumulateBucket(std::vector<Bucket>& buckets, std::uint32_t level,
                      double t, double v) {
  const std::int64_t index = bucketIndexOf(t, level);
  if (!buckets.empty() && index < buckets.back().index) {
    throw TsdbError("tsdb: out-of-order point at t=" + std::to_string(t));
  }
  if (buckets.empty() || buckets.back().index != index) {
    Bucket b;
    b.index = index;
    b.min = v;
    b.max = v;
    b.sum = v;
    b.count = 1;
    buckets.push_back(b);
    return;
  }
  Bucket& b = buckets.back();
  if (v < b.min) b.min = v;
  if (v > b.max) b.max = v;
  b.sum += v;
  ++b.count;
}

void mergeBuckets(std::vector<Bucket>& dst, const std::vector<Bucket>& src) {
  for (const Bucket& b : src) {
    if (!dst.empty() && b.index < dst.back().index) {
      throw TsdbError("tsdb: bucket merge out of order");
    }
    if (!dst.empty() && dst.back().index == b.index) {
      Bucket& d = dst.back();
      if (b.min < d.min) d.min = b.min;
      if (b.max > d.max) d.max = b.max;
      d.sum += b.sum;  // partial sums add in piece order
      d.count += b.count;
    } else {
      dst.push_back(b);
    }
  }
}

std::string tsdbFileName(std::uint64_t index) {
  return strformat("seg-%08llu.astd",
                   static_cast<unsigned long long>(index));
}

}  // namespace asdf::tsdb
