#include "tsdb/store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>

#include "archive/format.h"
#include "common/bytes.h"
#include "metrics/sadc.h"
#include "net/frame.h"
#include "rpc/payloads.h"

namespace asdf::tsdb {
namespace {

std::string errnoString() { return std::strerror(errno); }

std::vector<std::uint8_t> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TsdbError("tsdb: cannot read " + path);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

class Fd {
 public:
  explicit Fd(const std::string& path)
      : fd_(::open(path.c_str(), O_RDONLY | O_CLOEXEC)), path_(path) {
    if (fd_ < 0) throw TsdbError("tsdb: open " + path + ": " + errnoString());
    struct stat st{};
    if (::fstat(fd_, &st) != 0) {
      ::close(fd_);
      throw TsdbError("tsdb: stat " + path + ": " + errnoString());
    }
    size_ = static_cast<std::uint64_t>(st.st_size);
  }
  ~Fd() { ::close(fd_); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  std::uint64_t size() const { return size_; }

  void preadAll(std::uint8_t* buf, std::size_t n, std::uint64_t off) const {
    std::size_t done = 0;
    while (done < n) {
      const ssize_t got = ::pread(fd_, buf + done, n - done,
                                  static_cast<off_t>(off + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        throw TsdbError("tsdb: pread " + path_ + ": " + errnoString());
      }
      if (got == 0) {
        throw TsdbError("tsdb: " + path_ + ": short read at offset " +
                        std::to_string(off + done));
      }
      done += static_cast<std::size_t>(got);
    }
  }

 private:
  int fd_;
  std::string path_;
  std::uint64_t size_ = 0;
};

/// Reads and CRC-verifies exactly one frame at `offset`, without
/// touching any other byte of the file past the 16-byte header.
net::Frame readFrameAt(const Fd& fd, const std::string& path,
                       std::uint64_t offset, std::uint64_t limit) {
  if (offset + net::kFrameHeaderBytes > limit) {
    throw TsdbError("tsdb: " + path + ": chunk offset past the index "
                    "region");
  }
  std::uint8_t header[net::kFrameHeaderBytes];
  fd.preadAll(header, sizeof(header), offset);
  const std::uint32_t payloadLen = bytes::readU32(header + 8);
  if (payloadLen > net::kMaxFramePayloadBytes ||
      offset + net::kFrameHeaderBytes + payloadLen > limit) {
    throw TsdbError("tsdb: " + path + ": chunk frame overruns the file");
  }
  std::vector<std::uint8_t> whole(net::kFrameHeaderBytes + payloadLen);
  std::memcpy(whole.data(), header, sizeof(header));
  fd.preadAll(whole.data() + net::kFrameHeaderBytes, payloadLen,
              offset + net::kFrameHeaderBytes);
  net::FrameDecoder decoder;
  decoder.feed(whole.data(), whole.size());
  net::Frame frame;
  if (decoder.error() != net::FrameDecoder::Error::kNone ||
      !decoder.next(frame)) {
    throw TsdbError("tsdb: " + path + ": chunk frame decode failed (" +
                    net::frameErrorName(decoder.error()) + ")");
  }
  return frame;
}

/// Loads the meta frame of one compacted file with two small preads
/// (trailer, meta head) and returns the footer offset the trailer
/// names. The footer index itself — ~nodes x metrics x 4 entries — is
/// decoded lazily by loadTsdbFooter() only for segments a scan cannot
/// prune off the meta's time range; eagerly decoding every footer is
/// what would make Store construction scale with archive size.
std::uint64_t loadTsdbMeta(const std::string& path, TsdbMeta& meta) {
  const Fd fd(path);
  if (fd.size() < kTsdbTrailerBytes + net::kFrameHeaderBytes) {
    throw TsdbError("tsdb: " + path + ": shorter than trailer + header");
  }
  std::uint8_t trailer[kTsdbTrailerBytes];
  fd.preadAll(trailer, sizeof(trailer), fd.size() - kTsdbTrailerBytes);
  std::uint64_t footerOffset = 0;
  if (!decodeTsdbTrailer(trailer, sizeof(trailer), footerOffset)) {
    throw TsdbError("tsdb: " + path + ": invalid trailer");
  }
  const std::uint64_t framedEnd = fd.size() - kTsdbTrailerBytes;
  if (footerOffset >= framedEnd) {
    throw TsdbError("tsdb: " + path + ": trailer points past the footer "
                    "region");
  }
  const net::Frame metaFrame = readFrameAt(fd, path, 0, framedEnd);
  if (metaFrame.type != kTsdbMetaRecord) {
    throw TsdbError("tsdb: " + path + ": first frame is not a tsdb meta "
                    "record");
  }
  rpc::Decoder metaDec(metaFrame.payload);
  meta = decodeTsdbMeta(metaDec);
  if (!metaDec.exhausted()) {
    throw TsdbError("tsdb: " + path + ": meta record has trailing bytes");
  }
  return footerOffset;
}

void loadTsdbFooter(const std::string& path, std::uint64_t footerOffset,
                    TsdbFooter& footer) {
  const Fd fd(path);
  if (fd.size() < kTsdbTrailerBytes) {
    throw TsdbError("tsdb: " + path + ": shorter than its trailer");
  }
  const std::uint64_t framedEnd = fd.size() - kTsdbTrailerBytes;
  const net::Frame footerFrame = readFrameAt(fd, path, footerOffset,
                                             framedEnd);
  if (footerFrame.type != kTsdbFooterRecord) {
    throw TsdbError("tsdb: " + path + ": trailer does not point at a "
                    "footer record");
  }
  rpc::Decoder footerDec(footerFrame.payload);
  footer = decodeTsdbFooter(footerDec);
  if (!footerDec.exhausted()) {
    throw TsdbError("tsdb: " + path + ": footer record has trailing bytes");
  }
}

std::int64_t fileBytesOf(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<std::int64_t>(st.st_size);
}

bool bucketIntersects(const Bucket& b, std::uint32_t level, double from,
                      double to) {
  const double start = b.startTime(level);
  return start <= to && start + static_cast<double>(level) > from;
}

/// True when a chunk/segment whose raw points span [firstNow, lastNow]
/// can contribute nothing to the scan. Raw scans prune on the point
/// times themselves; rollup scans must prune in bucket space — a
/// bucket's window extends past the raw extremes, so a chunk whose
/// last point is just before `from` can still own the bucket that
/// straddles it.
bool rangeMisses(double firstNow, double lastNow, std::uint32_t level,
                 double from, double to) {
  if (level == 0) return firstNow > to || lastNow < from;
  return bucketIndexOf(firstNow, level) > bucketIndexOf(to, level) ||
         bucketIndexOf(lastNow, level) < bucketIndexOf(from, level);
}

/// Decodes one sadc sample payload into the flattened vector, or
/// returns false for non-sadc / failed / undecodable records (the
/// same rule compaction applies).
bool flattenSample(const archive::SampleRecord& rec,
                   std::vector<double>& values) {
  if (rec.kind != rpc::CollectKind::kSadc || !rec.ok ||
      rec.payload.empty() || rec.now == kNoTime) {
    return false;
  }
  metrics::SadcSnapshot snap;
  try {
    rpc::Decoder payload(rec.payload);
    snap = rpc::decodeSnapshot(payload);
  } catch (const std::exception&) {
    return false;
  }
  if (snap.node.size() != metrics::kNodeMetricCount ||
      snap.nic.size() != metrics::kNicMetricCount) {
    return false;
  }
  values = metrics::flattenNodeVector(snap);
  return true;
}

}  // namespace

std::uint32_t metricIndexOf(const std::string& name) {
  const std::vector<std::string>& names = metricNames();
  for (std::uint32_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  throw TsdbError("tsdb: unknown metric '" + name + "' (" +
                  std::to_string(names.size()) + " metrics; e.g. \"" +
                  names.front() + "\", \"" + names.back() + "\")");
}

const std::vector<std::string>& metricNames() {
  static const std::vector<std::string> names =
      metrics::flattenedNodeVectorNames();
  return names;
}

Store::Store(const std::string& archiveDir) : dir_(archiveDir) {
  DIR* d = ::opendir(archiveDir.c_str());
  if (d == nullptr) {
    throw TsdbError("tsdb: cannot open directory " + archiveDir);
  }
  while (dirent* entry = ::readdir(d)) {
    unsigned long long index = 0;
    char suffix[16] = {0};
    if (std::sscanf(entry->d_name, "seg-%8llu%15s", &index, suffix) != 2) {
      continue;
    }
    Segment seg;
    if (std::strcmp(suffix, ".asar") == 0) {
      seg.sealed = true;
    } else if (std::strcmp(suffix, ".asar.open") == 0) {
      seg.sealed = false;
    } else {
      continue;
    }
    seg.index = index;
    seg.rawPath = archiveDir + "/" + entry->d_name;
    segments_.push_back(std::move(seg));
  }
  ::closedir(d);
  if (segments_.empty()) {
    throw TsdbError("tsdb: no segments in " + archiveDir);
  }
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) {
              return a.index < b.index;
            });

  for (Segment& seg : segments_) {
    if (!seg.sealed) continue;
    const std::string tsdbPath =
        archiveDir + "/" + kTsdbSubdir + "/" + tsdbFileName(seg.index);
    if (fileBytesOf(tsdbPath) < 0) continue;  // not compacted yet
    seg.footerOffset = loadTsdbMeta(tsdbPath, seg.tsdbMeta);
    if (seg.tsdbMeta.sourceIndex != seg.index) {
      throw TsdbError("tsdb: " + tsdbPath + ": names segment " +
                      std::to_string(seg.index) + " but was built from "
                      "segment " +
                      std::to_string(seg.tsdbMeta.sourceIndex));
    }
    // Built from different raw bytes (e.g. the segment was replaced by
    // a trim into the same directory): fall back to the raw walk.
    if (seg.tsdbMeta.sourceFileBytes != fileBytesOf(seg.rawPath)) {
      seg.stale = true;
      continue;
    }
    seg.tsdbPath = tsdbPath;
    seg.compacted = true;
  }
}

ScanResult Store::scan(const ScanOptions& opts) const {
  if (opts.from > opts.to) {
    throw TsdbError("tsdb: empty scan range (from " +
                    std::to_string(opts.from) + " > to " +
                    std::to_string(opts.to) + ")");
  }
  const std::uint32_t metric = metricIndexOf(opts.metric);
  const std::uint32_t level = static_cast<std::uint32_t>(opts.resolution);
  ScanResult out;
  out.resolution = opts.resolution;
  for (const Segment& seg : segments_) {
    ++out.segmentsVisited;
    if (seg.compacted) {
      scanCompacted(seg, opts, metric, level, out);
    } else {
      scanRaw(seg, opts, metric, level, out);
    }
  }
  return out;
}

void Store::scanCompacted(const Segment& seg, const ScanOptions& opts,
                          std::uint32_t metric, std::uint32_t level,
                          ScanResult& out) const {
  // Whole-file pruning off the meta loaded at construction: no read
  // at all when the segment's time range misses the scan window —
  // this is also what keeps the footer index unloaded for most
  // segments of a narrow-window query.
  if (seg.tsdbMeta.samplePoints == 0 ||
      rangeMisses(seg.tsdbMeta.firstNow, seg.tsdbMeta.lastNow, level,
                  opts.from, opts.to)) {
    ++out.segmentsSkipped;
    return;
  }
  if (!seg.footerLoaded) {
    loadTsdbFooter(seg.tsdbPath, seg.footerOffset, seg.tsdbFooter);
    seg.footerLoaded = true;
  }
  const ChunkIndexEntry* entry = nullptr;
  for (const ChunkIndexEntry& c : seg.tsdbFooter.chunks) {
    if (c.node == opts.node && c.metric == metric && c.level == level) {
      entry = &c;
      break;
    }
  }
  if (entry == nullptr) {
    ++out.segmentsSkipped;  // node never reported in this segment
    return;
  }
  if (rangeMisses(entry->firstNow, entry->lastNow, level, opts.from,
                  opts.to)) {
    ++out.segmentsSkipped;
    return;
  }
  ++out.compactedScans;
  const Fd fd(seg.tsdbPath);
  const std::uint64_t framedEnd = fd.size() - kTsdbTrailerBytes;
  const net::Frame frame =
      readFrameAt(fd, seg.tsdbPath, entry->offset, framedEnd);
  rpc::Decoder dec(frame.payload);
  NodeId node = 0;
  std::uint32_t chunkMetric = 0;
  if (level == 0) {
    if (frame.type != kColumnChunkRecord) {
      throw TsdbError("tsdb: " + seg.tsdbPath + ": index points a raw "
                      "scan at a non-column frame");
    }
    std::vector<RawPoint> points;
    decodeColumnChunk(dec, node, chunkMetric, points);
    if (node != opts.node || chunkMetric != metric) {
      throw TsdbError("tsdb: " + seg.tsdbPath + ": chunk identity "
                      "disagrees with the footer index");
    }
    for (const RawPoint& p : points) {
      if (p.t >= opts.from && p.t <= opts.to) out.points.push_back(p);
    }
  } else {
    if (frame.type != kRollupChunkRecord) {
      throw TsdbError("tsdb: " + seg.tsdbPath + ": index points a rollup "
                      "scan at a non-rollup frame");
    }
    std::uint32_t chunkLevel = 0;
    std::vector<Bucket> buckets;
    decodeRollupChunk(dec, node, chunkMetric, chunkLevel, buckets);
    if (node != opts.node || chunkMetric != metric || chunkLevel != level) {
      throw TsdbError("tsdb: " + seg.tsdbPath + ": chunk identity "
                      "disagrees with the footer index");
    }
    std::vector<Bucket> inRange;
    for (const Bucket& b : buckets) {
      if (bucketIntersects(b, level, opts.from, opts.to)) {
        inRange.push_back(b);
      }
    }
    mergeBuckets(out.buckets, inRange);
  }
}

void Store::scanRaw(const Segment& seg, const ScanOptions& opts,
                    std::uint32_t metric, std::uint32_t level,
                    ScanResult& out) const {
  const std::vector<std::uint8_t> bytes = readFile(seg.rawPath);
  std::size_t framedBytes = bytes.size();
  std::size_t startOffset = 0;
  bool seeked = false;

  if (seg.sealed) {
    if (bytes.size() < archive::kTrailerBytes) {
      throw TsdbError("tsdb: " + seg.rawPath + ": sealed segment shorter "
                      "than its trailer");
    }
    framedBytes = bytes.size() - archive::kTrailerBytes;
    std::uint64_t footerOffset = 0;
    if (!archive::decodeTrailer(bytes.data() + framedBytes,
                                archive::kTrailerBytes, footerOffset) ||
        footerOffset >= framedBytes) {
      throw TsdbError("tsdb: " + seg.rawPath + ": invalid segment trailer");
    }
    // Meta frame (version) and footer frame (time range + checkpoint
    // index) are enough to prune and to seek; the body is only decoded
    // from the chosen start offset.
    const net::Frame metaFrame = [&] {
      net::FrameDecoder dec;
      dec.feed(bytes.data(), std::min<std::size_t>(framedBytes, 512));
      net::Frame f;
      if (!dec.next(f) || f.type != archive::kMetaRecord) {
        throw TsdbError("tsdb: " + seg.rawPath + ": first frame is not a "
                        "meta record");
      }
      return f;
    }();
    rpc::Decoder metaDec(metaFrame.payload);
    const archive::ArchiveMeta meta = archive::decodeMeta(metaDec);

    net::FrameDecoder footerDecoder;
    footerDecoder.feed(bytes.data() + footerOffset,
                       framedBytes - footerOffset);
    net::Frame footerFrame;
    if (footerDecoder.error() != net::FrameDecoder::Error::kNone ||
        !footerDecoder.next(footerFrame) ||
        footerFrame.type != archive::kFooterRecord) {
      throw TsdbError("tsdb: " + seg.rawPath + ": trailer does not point "
                      "at a footer record");
    }
    rpc::Decoder footerDec(footerFrame.payload);
    const archive::SegmentFooter footer =
        archive::decodeFooter(footerDec, meta.version);
    if (footer.recordCount == 0 ||
        rangeMisses(footer.firstNow, footer.lastNow, level, opts.from,
                    opts.to)) {
      ++out.segmentsSkipped;
      return;
    }
    // Raw resolution seeks to the last checkpoint written strictly
    // before `from`: every record ahead of that checkpoint has
    // now <= checkpoint.now < from, so nothing in range is skipped.
    // Rollups walk the whole segment — a bucket straddling `from`
    // must aggregate the records before it too.
    if (level == 0) {
      for (const archive::CheckpointIndexEntry& cp : footer.checkpoints) {
        if (cp.now < opts.from) {
          startOffset = static_cast<std::size_t>(cp.offset);
          seeked = true;
        }
      }
    }
    framedBytes = static_cast<std::size_t>(footerOffset);
    if (startOffset >= framedBytes) startOffset = 0;
  }

  ++out.rawScans;
  if (seeked && startOffset > 0) ++out.checkpointSeeks;

  net::FrameDecoder decoder;
  decoder.feed(bytes.data() + startOffset, framedBytes - startOffset);
  if (decoder.error() != net::FrameDecoder::Error::kNone) {
    throw TsdbError("tsdb: " + seg.rawPath + ": frame decode failed (" +
                    net::frameErrorName(decoder.error()) + ")");
  }
  std::vector<Bucket> segBuckets;
  std::vector<double> values;
  net::Frame frame;
  while (decoder.next(frame)) {
    if (frame.type != archive::kSampleRecord) continue;
    rpc::Decoder dec(frame.payload);
    const archive::SampleRecord rec = archive::decodeSample(dec);
    if (level == 0 && rec.now > opts.to) break;  // time is nondecreasing
    if (!flattenSample(rec, values)) continue;
    if (rec.node != opts.node || metric >= values.size()) continue;
    if (level == 0) {
      if (rec.now >= opts.from && rec.now <= opts.to) {
        out.points.push_back({rec.now, values[metric]});
      }
    } else {
      accumulateBucket(segBuckets, level, rec.now, values[metric]);
    }
  }
  // .open segments tolerate a torn tail (pendingBytes); decode errors
  // were already rejected above.
  if (level != 0) {
    std::vector<Bucket> inRange;
    for (const Bucket& b : segBuckets) {
      if (bucketIntersects(b, level, opts.from, opts.to)) {
        inRange.push_back(b);
      }
    }
    mergeBuckets(out.buckets, inRange);
  }
}

StoreStats Store::stats() const {
  StoreStats s;
  for (const Segment& seg : segments_) {
    ++s.segments;
    if (seg.sealed) ++s.sealedSegments;
    if (seg.stale) ++s.staleCompactions;
    if (!seg.compacted) continue;
    ++s.compactedSegments;
    s.tsdbBytes += fileBytesOf(seg.tsdbPath);
    s.compactedPoints += seg.tsdbMeta.samplePoints;
    if (seg.tsdbMeta.samplePoints == 0) continue;
    if (s.firstNow == kNoTime) s.firstNow = seg.tsdbMeta.firstNow;
    s.lastNow = seg.tsdbMeta.lastNow;
  }
  return s;
}

TsdbVerifyResult verifyTsdb(const std::string& archiveDir) {
  TsdbVerifyResult out;
  const std::string tsdbDir = archiveDir + "/" + kTsdbSubdir;
  DIR* d = ::opendir(tsdbDir.c_str());
  if (d == nullptr) return out;  // nothing compacted yet: vacuously ok
  std::vector<std::string> files;
  while (dirent* entry = ::readdir(d)) {
    unsigned long long index = 0;
    char suffix[16] = {0};
    if (std::sscanf(entry->d_name, "seg-%8llu%15s", &index, suffix) == 2 &&
        std::strcmp(suffix, ".astd") == 0) {
      files.push_back(tsdbDir + "/" + entry->d_name);
    }
  }
  ::closedir(d);
  std::sort(files.begin(), files.end());

  for (const std::string& path : files) {
    ++out.files;
    try {
      const std::vector<std::uint8_t> bytes = readFile(path);
      if (bytes.size() < kTsdbTrailerBytes) {
        throw TsdbError("tsdb: " + path + ": shorter than its trailer");
      }
      const std::size_t framedBytes = bytes.size() - kTsdbTrailerBytes;
      std::uint64_t footerOffset = 0;
      if (!decodeTsdbTrailer(bytes.data() + framedBytes, kTsdbTrailerBytes,
                             footerOffset) ||
          footerOffset >= framedBytes) {
        throw TsdbError("tsdb: " + path + ": invalid trailer");
      }
      net::FrameDecoder decoder;
      decoder.feed(bytes.data(), framedBytes);
      if (decoder.error() != net::FrameDecoder::Error::kNone) {
        throw TsdbError("tsdb: " + path + ": frame decode failed (" +
                        net::frameErrorName(decoder.error()) + ")");
      }
      bool sawMeta = false;
      bool sawFooter = false;
      TsdbMeta meta;
      TsdbFooter footer;
      std::vector<ChunkIndexEntry> seen;
      std::int64_t rawPoints = 0;
      std::size_t offset = 0;
      net::Frame frame;
      while (decoder.next(frame)) {
        const std::size_t frameStart = offset;
        offset += net::kFrameHeaderBytes + frame.payload.size();
        if (sawFooter) {
          throw TsdbError("tsdb: " + path + ": frames after the footer");
        }
        rpc::Decoder dec(frame.payload);
        if (!sawMeta) {
          if (frame.type != kTsdbMetaRecord) {
            throw TsdbError("tsdb: " + path + ": first frame is not a "
                            "tsdb meta record");
          }
          meta = decodeTsdbMeta(dec);
          sawMeta = true;
        } else if (frame.type == kColumnChunkRecord) {
          ChunkIndexEntry e;
          std::vector<RawPoint> points;
          decodeColumnChunk(dec, e.node, e.metric, points);
          e.level = 0;
          e.offset = frameStart;
          e.count = static_cast<std::int64_t>(points.size());
          if (!points.empty()) {
            e.firstNow = points.front().t;
            e.lastNow = points.back().t;
          }
          rawPoints += e.count;
          seen.push_back(e);
        } else if (frame.type == kRollupChunkRecord) {
          ChunkIndexEntry e;
          std::vector<Bucket> buckets;
          decodeRollupChunk(dec, e.node, e.metric, e.level, buckets);
          e.offset = frameStart;
          e.count = static_cast<std::int64_t>(buckets.size());
          seen.push_back(e);
        } else if (frame.type == kTsdbFooterRecord) {
          if (frameStart != footerOffset) {
            throw TsdbError("tsdb: " + path + ": footer frame not at the "
                            "trailer's offset");
          }
          footer = decodeTsdbFooter(dec);
          sawFooter = true;
        } else {
          throw TsdbError("tsdb: " + path + ": unexpected record type " +
                          std::to_string(static_cast<int>(frame.type)));
        }
        if (!dec.exhausted()) {
          throw TsdbError("tsdb: " + path + ": record payload has "
                          "trailing bytes");
        }
      }
      if (!sawMeta || !sawFooter) {
        throw TsdbError("tsdb: " + path + ": missing meta or footer");
      }
      if (decoder.pendingBytes() != 0) {
        throw TsdbError("tsdb: " + path + ": unframed bytes");
      }
      if (footer.chunks.size() != seen.size()) {
        throw TsdbError("tsdb: " + path + ": footer indexes " +
                        std::to_string(footer.chunks.size()) +
                        " chunks but " + std::to_string(seen.size()) +
                        " are present");
      }
      for (std::size_t i = 0; i < seen.size(); ++i) {
        const ChunkIndexEntry& a = footer.chunks[i];
        const ChunkIndexEntry& b = seen[i];
        if (a.node != b.node || a.metric != b.metric ||
            a.level != b.level || a.offset != b.offset ||
            a.count != b.count) {
          throw TsdbError("tsdb: " + path + ": footer chunk " +
                          std::to_string(i) + " disagrees with the frame "
                          "present");
        }
      }
      if (footer.samplePoints != rawPoints ||
          meta.samplePoints != rawPoints) {
        throw TsdbError("tsdb: " + path + ": indexed point counts "
                        "disagree with the chunks present");
      }
      out.chunks += static_cast<std::int64_t>(seen.size());
    } catch (const std::exception& e) {
      out.ok = false;
      out.errors.push_back(e.what());
    }
  }
  return out;
}

}  // namespace asdf::tsdb
