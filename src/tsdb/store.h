// tsdb::Store — the query engine over a recorded archive.
//
// A Store opens an archive directory and answers time-ranged scans of
// one (node, metric) series at raw or rollup resolution:
//
//   Store store(dir);
//   ScanResult r = store.scan({node, "cpu_user_pct", 100.0, 160.0,
//                              Resolution::k10s});
//
// Per segment, in index order, the scan takes the cheapest path that
// exists:
//   * compacted (`tsdb/seg-N.astd` present and built from the current
//     raw bytes): two pread()s locate the chunk via the footer index,
//     one more reads exactly the chunk frame — no other byte of the
//     file is touched, which is where the >=100x over full replay
//     comes from.
//   * sealed but uncompacted: the raw segment's footer checkpoint
//     index seeks past records older than `from` (raw resolution);
//     rollups walk the whole segment so bucket contents are identical
//     to what compaction would have produced.
//   * active (".asar.open"): walked from byte zero, torn tail
//     tolerated — the recording is queryable while the daemon runs.
//
// Rollup buckets spanning a segment boundary merge in segment order:
// min/max/count combine exactly, partial sums add left to right (the
// order-defined sum of format.h). Raw scans are bit-exact against a
// full ArchiveReader replay of the same range.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tsdb/format.h"

namespace asdf::tsdb {

/// Flattened-vector index of a metric name ("cpu_user_pct",
/// "eth0.rxkb_per_s", ...). Throws TsdbError on an unknown name.
std::uint32_t metricIndexOf(const std::string& name);
/// All queryable metric names, in flattened-vector order.
const std::vector<std::string>& metricNames();

struct ScanOptions {
  NodeId node = 0;
  std::string metric;          // flattened sadc vector name
  double from = 0.0;           // inclusive
  double to = 0.0;             // inclusive
  Resolution resolution = Resolution::kRaw;
};

struct ScanResult {
  Resolution resolution = Resolution::kRaw;
  std::vector<RawPoint> points;   // raw resolution
  std::vector<Bucket> buckets;    // rollup resolutions
  // Where the data came from — `asdf_archive query` prints these.
  std::int64_t segmentsVisited = 0;
  std::int64_t segmentsSkipped = 0;    // index said: nothing in range
  std::int64_t compactedScans = 0;     // chunk pread path
  std::int64_t rawScans = 0;           // uncompacted fallback walks
  std::int64_t checkpointSeeks = 0;    // raw fallbacks that seeked
};

struct StoreStats {
  std::int64_t segments = 0;
  std::int64_t sealedSegments = 0;
  std::int64_t compactedSegments = 0;
  std::int64_t staleCompactions = 0;  // .astd built from different bytes
  std::int64_t tsdbBytes = 0;
  std::int64_t compactedPoints = 0;   // raw points indexed in .astd files
  double firstNow = kNoTime;          // over compacted files
  double lastNow = kNoTime;
};

class Store {
 public:
  /// Scans the archive directory and loads every compacted file's
  /// meta frame (two small preads each); footer indexes and chunk
  /// payloads stay on disk until a scan needs them. Throws TsdbError
  /// when the directory has no segments at all, or when a compacted
  /// file is present but corrupt. Not thread-safe: scans memoize
  /// footer indexes into the Store.
  explicit Store(const std::string& archiveDir);

  ScanResult scan(const ScanOptions& opts) const;
  StoreStats stats() const;

 private:
  struct Segment {
    std::uint64_t index = 0;
    std::string rawPath;
    bool sealed = false;
    std::string tsdbPath;        // empty when not compacted
    TsdbMeta tsdbMeta;           // valid when compacted
    std::uint64_t footerOffset = 0;
    // The chunk index is decoded lazily, only when a scan cannot prune
    // the segment off the meta's time range (scans are logically
    // const; the footer cache is a memoization, hence mutable).
    mutable TsdbFooter tsdbFooter;
    mutable bool footerLoaded = false;
    bool compacted = false;
    bool stale = false;          // .astd exists but source bytes differ
  };

  void scanCompacted(const Segment& seg, const ScanOptions& opts,
                     std::uint32_t metric, std::uint32_t level,
                     ScanResult& out) const;
  void scanRaw(const Segment& seg, const ScanOptions& opts,
               std::uint32_t metric, std::uint32_t level,
               ScanResult& out) const;

  std::string dir_;
  std::vector<Segment> segments_;
};

/// Integrity check of every compacted file in the archive's tsdb/
/// subdirectory: every frame CRC, footer index offsets/counts against
/// the chunks actually present, trailer placement. Any flipped bit in
/// an .astd fails here.
struct TsdbVerifyResult {
  bool ok = true;
  std::int64_t files = 0;
  std::int64_t chunks = 0;
  std::vector<std::string> errors;
};
TsdbVerifyResult verifyTsdb(const std::string& archiveDir);

}  // namespace asdf::tsdb
