#include "tsdb/compactor.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "archive/format.h"
#include "metrics/sadc.h"
#include "net/frame.h"
#include "rpc/payloads.h"

namespace asdf::tsdb {
namespace {

std::string errnoString() { return std::strerror(errno); }

std::vector<std::uint8_t> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TsdbError("tsdb: cannot read " + path);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

std::int64_t fileBytesOf(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<std::int64_t>(st.st_size);
}

void fsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;  // best effort: some filesystems refuse dir fds
  ::fsync(fd);
  ::close(fd);
}

void ensureTsdbDir(const std::string& archiveDir) {
  const std::string dir = archiveDir + "/" + kTsdbSubdir;
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    throw TsdbError("tsdb: mkdir " + dir + ": " + errnoString());
  }
}

/// Source identity stamped in an existing .astd, or nullopt when the
/// file is absent/unreadable (either way: compact from scratch).
bool readExistingMeta(const std::string& path, TsdbMeta& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::vector<std::uint8_t> head(512);
  in.read(reinterpret_cast<char*>(head.data()),
          static_cast<std::streamsize>(head.size()));
  head.resize(static_cast<std::size_t>(in.gcount()));
  net::FrameDecoder decoder;
  decoder.feed(head.data(), head.size());
  net::Frame frame;
  if (decoder.error() != net::FrameDecoder::Error::kNone ||
      !decoder.next(frame) || frame.type != kTsdbMetaRecord) {
    return false;
  }
  try {
    rpc::Decoder dec(frame.payload);
    out = decodeTsdbMeta(dec);
    return dec.exhausted();
  } catch (const std::exception&) {
    return false;
  }
}

void writeAll(int fd, const std::string& path, const std::uint8_t* data,
              std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw TsdbError("tsdb: write " + path + ": " + errnoString());
    }
    done += static_cast<std::size_t>(n);
  }
}

void appendFrame(std::vector<std::uint8_t>& file, net::MsgType type,
                 const rpc::Encoder& enc) {
  const std::vector<std::uint8_t> frame = net::encodeFrame(type, enc);
  file.insert(file.end(), frame.begin(), frame.end());
}

struct SealedSegmentPath {
  std::string path;
  std::uint64_t index = 0;
};

std::vector<SealedSegmentPath> listSealedSegments(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    throw TsdbError("tsdb: cannot open directory " + dir);
  }
  std::vector<SealedSegmentPath> out;
  while (dirent* entry = ::readdir(d)) {
    unsigned long long index = 0;
    char suffix[16] = {0};
    if (std::sscanf(entry->d_name, "seg-%8llu%15s", &index, suffix) != 2 ||
        std::strcmp(suffix, ".asar") != 0) {
      continue;
    }
    out.push_back({dir + "/" + entry->d_name, index});
  }
  ::closedir(d);
  std::sort(out.begin(), out.end(),
            [](const SealedSegmentPath& a, const SealedSegmentPath& b) {
              return a.index < b.index;
            });
  return out;
}

}  // namespace

SegmentSeries readSealedSegment(const std::string& segPath) {
  const std::vector<std::uint8_t> bytes = readFile(segPath);
  if (bytes.size() < archive::kTrailerBytes) {
    throw TsdbError("tsdb: " + segPath + ": shorter than a sealed "
                    "segment's trailer");
  }
  const std::size_t framedBytes = bytes.size() - archive::kTrailerBytes;
  std::uint64_t footerOffset = 0;
  if (!archive::decodeTrailer(bytes.data() + framedBytes,
                              archive::kTrailerBytes, footerOffset)) {
    throw TsdbError("tsdb: " + segPath + ": invalid segment trailer "
                    "(compaction reads sealed segments only)");
  }

  net::FrameDecoder decoder;
  decoder.feed(bytes.data(), framedBytes);
  if (decoder.error() != net::FrameDecoder::Error::kNone) {
    throw TsdbError("tsdb: " + segPath + ": frame decode failed (" +
                    net::frameErrorName(decoder.error()) + ")");
  }

  SegmentSeries out;
  out.metricCount = static_cast<std::uint32_t>(metrics::kFlatNodeVectorSize);
  bool sawMeta = false;
  net::Frame frame;
  while (decoder.next(frame)) {
    rpc::Decoder dec(frame.payload);
    if (!sawMeta) {
      if (frame.type != archive::kMetaRecord) {
        throw TsdbError("tsdb: " + segPath + ": first frame is not an "
                        "archive meta record");
      }
      archive::decodeMeta(dec);
      sawMeta = true;
      continue;
    }
    if (frame.type != archive::kSampleRecord) continue;  // cp/truth/footer
    const archive::SampleRecord rec = archive::decodeSample(dec);
    if (rec.kind != rpc::CollectKind::kSadc || !rec.ok ||
        rec.payload.empty() || rec.now == kNoTime) {
      continue;
    }
    // Payloads are opaque at the archive layer; skip anything that is
    // not a sadc snapshot (synthetic test payloads) — the same rule
    // the writer's checkpoint builder applies.
    metrics::SadcSnapshot snap;
    try {
      rpc::Decoder payload(rec.payload);
      snap = rpc::decodeSnapshot(payload);
    } catch (const std::exception&) {
      continue;
    }
    if (snap.node.size() != metrics::kNodeMetricCount ||
        snap.nic.size() != metrics::kNicMetricCount) {
      continue;
    }
    const std::vector<double> values = metrics::flattenNodeVector(snap);
    if (out.samplePoints == 0) out.firstNow = rec.now;
    out.lastNow = rec.now;
    for (std::uint32_t m = 0; m < values.size(); ++m) {
      out.series[{rec.node, m}].push_back({rec.now, values[m]});
      ++out.samplePoints;
    }
  }
  if (decoder.pendingBytes() != 0) {
    throw TsdbError("tsdb: " + segPath + ": sealed segment has unframed "
                    "bytes");
  }
  return out;
}

CompactResult compactSegment(const std::string& archiveDir,
                             const std::string& segPath, std::uint64_t index,
                             bool force) {
  CompactResult result;
  result.index = index;
  const std::string tsdbDir = archiveDir + "/" + kTsdbSubdir;
  result.path = tsdbDir + "/" + tsdbFileName(index);

  const std::int64_t sourceBytes = fileBytesOf(segPath);
  if (sourceBytes < 0) {
    throw TsdbError("tsdb: stat " + segPath + ": " + errnoString());
  }
  if (!force) {
    TsdbMeta existing;
    if (readExistingMeta(result.path, existing) &&
        existing.sourceIndex == index &&
        existing.sourceFileBytes == sourceBytes) {
      result.skipped = true;
      result.fileBytes = fileBytesOf(result.path);
      return result;
    }
  }

  const SegmentSeries series = readSealedSegment(segPath);
  ensureTsdbDir(archiveDir);

  std::vector<std::uint8_t> file;
  TsdbMeta meta;
  meta.sourceIndex = index;
  meta.sourceFileBytes = sourceBytes;
  meta.firstNow = series.firstNow;
  meta.lastNow = series.lastNow;
  meta.samplePoints = series.samplePoints;
  meta.metricCount = series.metricCount;
  {
    rpc::Encoder enc;
    encodeTsdbMeta(enc, meta);
    appendFrame(file, kTsdbMetaRecord, enc);
  }

  TsdbFooter footer;
  footer.firstNow = series.firstNow;
  footer.lastNow = series.lastNow;
  footer.samplePoints = series.samplePoints;
  for (const auto& [key, points] : series.series) {
    const auto [node, metric] = key;
    {
      ChunkIndexEntry entry;
      entry.node = node;
      entry.metric = metric;
      entry.level = 0;
      entry.offset = file.size();
      entry.count = static_cast<std::int64_t>(points.size());
      entry.firstNow = points.front().t;
      entry.lastNow = points.back().t;
      rpc::Encoder enc;
      encodeColumnChunk(enc, node, metric, points);
      appendFrame(file, kColumnChunkRecord, enc);
      footer.chunks.push_back(entry);
      ++result.chunks;
    }
    for (const std::uint32_t level : kRollupLevels) {
      std::vector<Bucket> buckets;
      for (const RawPoint& p : points) {
        accumulateBucket(buckets, level, p.t, p.v);
      }
      ChunkIndexEntry entry;
      entry.node = node;
      entry.metric = metric;
      entry.level = level;
      entry.offset = file.size();
      entry.count = static_cast<std::int64_t>(buckets.size());
      entry.firstNow = points.front().t;
      entry.lastNow = points.back().t;
      rpc::Encoder enc;
      encodeRollupChunk(enc, node, metric, level, buckets);
      appendFrame(file, kRollupChunkRecord, enc);
      footer.chunks.push_back(entry);
      ++result.chunks;
    }
  }
  result.rawPoints = series.samplePoints;

  const std::uint64_t footerOffset = file.size();
  {
    rpc::Encoder enc;
    encodeTsdbFooter(enc, footer);
    appendFrame(file, kTsdbFooterRecord, enc);
  }
  const std::vector<std::uint8_t> trailer = encodeTsdbTrailer(footerOffset);
  file.insert(file.end(), trailer.begin(), trailer.end());

  // Same durability receipt as segment sealing: everything on disk
  // before the rename publishes the queryable name.
  const std::string tmpPath = result.path + ".tmp";
  const int fd = ::open(tmpPath.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw TsdbError("tsdb: open " + tmpPath + ": " + errnoString());
  }
  try {
    writeAll(fd, tmpPath, file.data(), file.size());
    if (::fsync(fd) != 0) {
      throw TsdbError("tsdb: fsync " + tmpPath + ": " + errnoString());
    }
  } catch (...) {
    ::close(fd);
    ::unlink(tmpPath.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmpPath.c_str(), result.path.c_str()) != 0) {
    const std::string err = errnoString();
    ::unlink(tmpPath.c_str());
    throw TsdbError("tsdb: rename " + tmpPath + ": " + err);
  }
  fsyncDir(tsdbDir);
  result.fileBytes = static_cast<std::int64_t>(file.size());
  return result;
}

std::vector<CompactResult> compactArchive(const std::string& archiveDir,
                                          bool force) {
  std::vector<CompactResult> out;
  for (const SealedSegmentPath& sp : listSealedSegments(archiveDir)) {
    out.push_back(compactSegment(archiveDir, sp.path, sp.index, force));
  }
  return out;
}

BackgroundCompactor::BackgroundCompactor(std::string archiveDir)
    : archiveDir_(std::move(archiveDir)),
      worker_([this] { run(); }) {}

BackgroundCompactor::~BackgroundCompactor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void BackgroundCompactor::enqueue(const std::string& sealedPath,
                                  std::uint64_t index) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    queue_.emplace_back(sealedPath, index);
  }
  cv_.notify_one();
}

void BackgroundCompactor::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idleCv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

long BackgroundCompactor::compacted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return compacted_;
}

long BackgroundCompactor::failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failed_;
}

std::string BackgroundCompactor::lastError() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lastError_;
}

void BackgroundCompactor::run() {
  while (true) {
    std::pair<std::string, std::uint64_t> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping: sealed segments already
      // handed over should become queryable before shutdown.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    try {
      compactSegment(archiveDir_, job.first, job.second);
      std::lock_guard<std::mutex> lock(mutex_);
      ++compacted_;
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++failed_;
      lastError_ = e.what();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      busy_ = false;
      if (queue_.empty()) idleCv_.notify_all();
    }
  }
}

}  // namespace asdf::tsdb
