// Ordered INI-style parser for fpt-core configuration files.
//
// The format follows Section 3.4 of the paper: a module is
// instantiated by naming its type in square brackets, followed by
// "key = value" assignments. Section headers repeat (one section per
// module instance) and key order matters, so this parser preserves
// both section order and per-section assignment order, and allows
// repeated keys (e.g. several "input[...]" lines).
//
//   [ibuffer]
//   id = buf1
//   input[input] = onenn0.output0
//   size = 10
//
// Comments start with '#' or ';' at the beginning of a (trimmed) line.
#pragma once

#include <string>
#include <vector>

namespace asdf {

struct IniAssignment {
  std::string key;
  std::string value;
  int line = 0;  // 1-based source line, for error messages
};

struct IniSection {
  std::string name;  // module type, e.g. "ibuffer"
  int line = 0;
  std::vector<IniAssignment> assignments;

  /// First value for the key, or the fallback when absent.
  std::string get(const std::string& key, const std::string& fallback = "") const;
  bool has(const std::string& key) const;
  /// All values for a (possibly repeated) key, in order.
  std::vector<std::string> getAll(const std::string& key) const;
};

struct IniFile {
  std::vector<IniSection> sections;
};

/// Parses configuration text. Throws ConfigError with line numbers on
/// malformed input (assignments before any section, lines that are
/// neither assignments, sections, comments, nor blank).
IniFile parseIni(const std::string& text);

/// Reads and parses a configuration file from disk. Throws
/// ConfigError when the file cannot be read.
IniFile parseIniFile(const std::string& path);

}  // namespace asdf
