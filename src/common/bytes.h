// Big-endian (network order) byte codec primitives.
//
// The one place the octet layout of the ASDF wire lives. The rpc
// Encoder/Decoder (XDR-style payload marshalling), the net frame
// header codec, and the archive trailer all build on these helpers —
// previously each layer hand-rolled its own shifts, and the
// aggregator tier would have added a fourth copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace asdf::bytes {

inline void putU16(std::vector<std::uint8_t>& buf, std::uint16_t v) {
  buf.push_back(static_cast<std::uint8_t>(v >> 8));
  buf.push_back(static_cast<std::uint8_t>(v));
}

inline void putU32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  buf.push_back(static_cast<std::uint8_t>(v >> 24));
  buf.push_back(static_cast<std::uint8_t>(v >> 16));
  buf.push_back(static_cast<std::uint8_t>(v >> 8));
  buf.push_back(static_cast<std::uint8_t>(v));
}

inline void putU64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  putU32(buf, static_cast<std::uint32_t>(v >> 32));
  putU32(buf, static_cast<std::uint32_t>(v & 0xFFFFFFFFULL));
}

inline void storeU16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

inline void storeU32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

inline std::uint16_t readU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

inline std::uint32_t readU32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

inline std::uint64_t readU64(const std::uint8_t* p) {
  return (static_cast<std::uint64_t>(readU32(p)) << 32) | readU32(p + 4);
}

}  // namespace asdf::bytes
