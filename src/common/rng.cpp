#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace asdf {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four xoshiro words from splitmix64 as its authors
  // recommend; avoids the all-zero state.
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(next() % span);
}

double Rng::gaussian() {
  if (haveCachedGaussian_) {
    haveCachedGaussian_ = false;
    return cachedGaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cachedGaussian_ = r * std::sin(theta);
  haveCachedGaussian_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) {
  return uniform() < p;
}

double Rng::pareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::weightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double x = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() {
  return Rng(next() ^ 0xD1B54A32D192ED03ULL);
}

}  // namespace asdf
