#include "common/csv.h"

#include <stdexcept>

#include "common/strings.h"

namespace asdf {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

std::string CsvWriter::escape(const std::string& v) {
  if (v.find_first_of(",\"\n") == std::string::npos) return v;
  std::string out = "\"";
  for (char c : v) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  row(columns);
}

void CsvWriter::row(const std::vector<std::string>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(values[i]);
  }
  out_ << '\n';
}

void CsvWriter::rowNumeric(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(strformat("%.6g", v));
  row(cells);
}

void CsvWriter::flush() { out_.flush(); }

}  // namespace asdf
