// Real (host) CPU-time metering.
//
// The paper's Table 3 reports the CPU cost of the collection daemons
// and of fpt-core. We meter the actual CPU time the host process
// spends inside those components while the simulation runs, and the
// Table 3 bench divides by the simulated duration to report "% CPU".
#pragma once

#include <atomic>
#include <ctime>

namespace asdf {

/// CPU seconds consumed by the calling thread so far.
inline double threadCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Accumulates CPU time across RAII scopes. Thread-safe: scopes may
/// close concurrently (fpt-core's parallel executors meter module runs
/// from several worker threads; per-thread CPU clocks sum to the total
/// process cost, which is what Table 3 reports).
class CpuMeter {
 public:
  class Scope {
   public:
    explicit Scope(CpuMeter& meter)
        : meter_(meter), start_(threadCpuSeconds()) {}
    ~Scope() { meter_.add(threadCpuSeconds() - start_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    CpuMeter& meter_;
    double start_;
  };

  double seconds() const { return seconds_.load(std::memory_order_relaxed); }
  void reset() { seconds_.store(0.0, std::memory_order_relaxed); }

 private:
  friend class Scope;
  void add(double delta) {
    double current = seconds_.load(std::memory_order_relaxed);
    while (!seconds_.compare_exchange_weak(current, current + delta,
                                           std::memory_order_relaxed)) {
    }
  }
  std::atomic<double> seconds_{0.0};
};

}  // namespace asdf
