// Runtime-dispatched SIMD kernels for the analysis hot loops.
//
// Every kernel here has one scalar reference implementation and
// (when the build enables them) SSE2/AVX2 variants that are
// **bit-exact** against it on every input — including NaNs, signed
// zeros and denormals. The trick is a fixed *blocked reduction
// contract*: reductions accumulate into four independent lanes
// (lane j owns elements i with i % 4 == j over the blocked prefix),
// the four lane totals combine in the fixed order
// (lane0 + lane1) + (lane2 + lane3), and the tail (n % 4 elements)
// folds in sequentially afterwards. The scalar path follows the same
// order, AVX2 maps the four lanes onto one ymm register, and SSE2
// onto two xmm registers — same additions, same order, identical
// IEEE-754 results on every ISA (simd.cpp is compiled with
// -ffp-contract=off so no path fuses a*b+c into an FMA). That is
// what keeps alarms byte-identical between ASDF_SIMD=ON and OFF
// builds and across machines (DESIGN.md §15).
//
// Dispatch: the widest ISA the CPU supports is chosen once at first
// use. The ASDF_SIMD environment variable overrides it
// ("off"/"scalar", "sse2", "avx2" — clamped to what the CPU has),
// and building with -DASDF_SIMD=OFF compiles the vector paths out
// entirely. forceIsa() narrows the choice at runtime for tests.
#pragma once

#include <cstddef>

namespace asdf::simd {

enum class Isa {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// The ISA the kernels below currently run on.
Isa activeIsa();

/// Widest ISA this build + CPU can run (kScalar when ASDF_SIMD=OFF).
Isa bestSupportedIsa();

/// Test hook: pins dispatch to `isa` (clamped to bestSupportedIsa()).
/// Returns the level actually selected.
Isa forceIsa(Isa isa);

const char* isaName(Isa isa);

/// Sum of squared differences over a[0..n) / b[0..n) in the blocked
/// reduction order (kmeans distance kernel).
double sqDistance(const double* a, const double* b, std::size_t n);

/// Sum of absolute differences in the blocked reduction order (the
/// black-box L1 window compare).
double l1Distance(const double* a, const double* b, std::size_t n);

/// White-box critical k: max over metrics m of
///   !(|mean[m] - median[m]| <= 1)
///       ? (sigma[m] > 1e-12 ? |mean[m]-median[m]| / sigma[m]
///                           : sentinel)
///       : 0
/// with std::max's NaN-dropping semantics (a NaN candidate never
/// replaces the accumulator). Max is order-independent under that
/// rule, so this needs no lane contract — but the SIMD paths still
/// mirror the scalar comparison-select exactly.
double whiteBoxCriticalK(const double* mean, const double* median,
                         const double* sigma, std::size_t n,
                         double sentinel);

/// out[i] = |x[i] - center| (the MAD deviation pass). Elementwise, so
/// trivially bit-exact; vectorized for throughput.
void absDeviations(const double* x, double center, double* out,
                   std::size_t n);

}  // namespace asdf::simd
