// Contiguous row-major matrix of doubles — the flat layout behind the
// analysis kernels (kmeans, peer comparison, the black-box model).
//
// The surface intentionally mimics the std::vector<std::vector<double>>
// idiom it replaces (size()/operator[]/push_back/assign return row
// views), so call sites read the same while the storage becomes one
// cache-friendly allocation whose inner loops auto-vectorize. Scratch
// reuse: resizeRows()/clearRows() change the logical shape without
// releasing capacity, which is what lets per-window analysis run with
// zero steady-state allocations.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <vector>

namespace asdf {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}
  Matrix(std::initializer_list<std::initializer_list<double>> rows) {
    for (const auto& row : rows) {
      push_back(row.begin(), row.size());
    }
  }
  /// Implicit by design: legacy call sites hand in vector-of-rows and
  /// the flat kernels take Matrix; the conversion is a one-time copy.
  Matrix(const std::vector<std::vector<double>>& rows) {  // NOLINT
    if (!rows.empty()) reserveRows(rows.size(), rows.front().size());
    for (const auto& row : rows) push_back(row);
  }

  // --- vector-of-rows compatibility surface ---------------------------
  /// Number of rows (matches the outer vector's size()).
  std::size_t size() const { return rows_; }
  bool empty() const { return rows_ == 0; }
  double* operator[](std::size_t r) { return row(r); }
  const double* operator[](std::size_t r) const { return row(r); }

  void push_back(const std::vector<double>& row) {
    push_back(row.data(), row.size());
  }
  void push_back(std::initializer_list<double> row) {
    push_back(row.begin(), row.size());
  }
  void push_back(const double* src, std::size_t n) {
    if (rows_ == 0 && cols_ == 0) {
      cols_ = n;
    } else if (n != cols_) {
      throw std::invalid_argument("Matrix::push_back: row width mismatch");
    }
    data_.insert(data_.end(), src, src + n);
    ++rows_;
  }
  /// n copies of `row` (mirrors vector::assign).
  void assign(std::size_t n, const std::vector<double>& row) {
    rows_ = 0;
    cols_ = 0;
    data_.clear();
    for (std::size_t i = 0; i < n; ++i) push_back(row);
  }
  void reserve(std::size_t rows) {
    if (cols_ > 0) data_.reserve(rows * cols_);
  }
  /// Reserve before the first push_back fixes the width.
  void reserveRows(std::size_t rows, std::size_t cols) {
    data_.reserve(rows * cols);
  }

  // --- flat surface ----------------------------------------------------
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }
  std::vector<double>& flat() { return data_; }
  const std::vector<double>& flat() const { return data_; }

  /// Reshapes to rows x cols without releasing capacity. Contents are
  /// unspecified (callers overwrite); use Matrix(r, c) for zeros.
  void resizeRows(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }
  /// Drops to zero rows, keeping the column width and capacity.
  void clearRows() {
    rows_ = 0;
    data_.clear();
  }

  static Matrix fromRows(const std::vector<std::vector<double>>& rows) {
    Matrix m;
    for (const auto& row : rows) m.push_back(row);
    return m;
  }
  std::vector<std::vector<double>> toRows() const {
    std::vector<std::vector<double>> out;
    out.reserve(rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      out.emplace_back(row(r), row(r) + cols_);
    }
    return out;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace asdf
