#include "common/ini.h"

#include <fstream>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace asdf {

std::string IniSection::get(const std::string& key,
                            const std::string& fallback) const {
  for (const auto& a : assignments) {
    if (a.key == key) return a.value;
  }
  return fallback;
}

bool IniSection::has(const std::string& key) const {
  for (const auto& a : assignments) {
    if (a.key == key) return true;
  }
  return false;
}

std::vector<std::string> IniSection::getAll(const std::string& key) const {
  std::vector<std::string> out;
  for (const auto& a : assignments) {
    if (a.key == key) out.push_back(a.value);
  }
  return out;
}

IniFile parseIni(const std::string& text) {
  IniFile file;
  std::istringstream in(text);
  std::string rawLine;
  int lineNo = 0;
  while (std::getline(in, rawLine)) {
    ++lineNo;
    const std::string line = trim(rawLine);
    if (line.empty() || line[0] == '#' || line[0] == ';') continue;

    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        throw ConfigError(strformat("config line %d: malformed section header '%s'",
                                    lineNo, line.c_str()));
      }
      IniSection section;
      section.name = trim(line.substr(1, line.size() - 2));
      section.line = lineNo;
      if (section.name.empty()) {
        throw ConfigError(strformat("config line %d: empty section name", lineNo));
      }
      file.sections.push_back(std::move(section));
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw ConfigError(strformat("config line %d: expected 'key = value', got '%s'",
                                  lineNo, line.c_str()));
    }
    if (file.sections.empty()) {
      throw ConfigError(strformat("config line %d: assignment before any [section]",
                                  lineNo));
    }
    IniAssignment a;
    a.key = trim(line.substr(0, eq));
    a.value = trim(line.substr(eq + 1));
    a.line = lineNo;
    if (a.key.empty()) {
      throw ConfigError(strformat("config line %d: empty key", lineNo));
    }
    file.sections.back().assignments.push_back(std::move(a));
  }
  return file;
}

IniFile parseIniFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ConfigError("cannot open config file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parseIni(buf.str());
}

}  // namespace asdf
