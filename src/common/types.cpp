#include "common/types.h"

#include <cmath>
#include <cstdio>

namespace asdf {
namespace {

// Fixed log epoch: 2008-04-15 14:00:00,000 — the date appearing in the
// paper's Figure 5 log snippet. Only time differences matter to the
// analyses; a fixed epoch keeps golden-file tests stable.
constexpr int kEpochYear = 2008;
constexpr int kEpochMonth = 4;
constexpr int kEpochDay = 15;
constexpr int kEpochHour = 14;

constexpr int kDaysPerMonth[12] = {31, 29, 31, 30, 31, 30,
                                   31, 31, 30, 31, 30, 31};

}  // namespace

std::string formatLogTimestamp(SimTime t) {
  if (t < 0) t = 0;
  const auto totalMillis = static_cast<long long>(std::llround(t * 1000.0));
  long long millis = totalMillis % 1000;
  long long totalSeconds = totalMillis / 1000;
  long long seconds = totalSeconds % 60;
  long long totalMinutes = totalSeconds / 60;
  long long minutes = totalMinutes % 60;
  long long totalHours = totalMinutes / 60 + kEpochHour;
  long long hours = totalHours % 24;
  long long days = totalHours / 24;

  int day = kEpochDay + static_cast<int>(days);
  int month = kEpochMonth;
  int year = kEpochYear;
  while (day > kDaysPerMonth[month - 1]) {
    day -= kDaysPerMonth[month - 1];
    ++month;
    if (month > 12) {
      month = 1;
      ++year;
    }
  }

  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02lld:%02lld:%02lld,%03lld",
                year, month, day, hours, minutes, seconds, millis);
  return buf;
}

SimTime parseLogTimestamp(const std::string& text) {
  int year = 0, month = 0, day = 0, hour = 0, minute = 0, second = 0,
      milli = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d %d:%d:%d,%d", &year, &month, &day,
                  &hour, &minute, &second, &milli) != 7) {
    return kNoTime;
  }
  if (year < kEpochYear || month < 1 || month > 12 || day < 1) return kNoTime;

  // Days elapsed since the epoch date (single-year spans are all the
  // simulator produces, but handle year wrap for robustness).
  long long days = 0;
  int y = kEpochYear, m = kEpochMonth, d = kEpochDay;
  while (y < year || m < month || d < day) {
    ++d;
    ++days;
    if (d > kDaysPerMonth[m - 1]) {
      d = 1;
      ++m;
      if (m > 12) {
        m = 1;
        ++y;
      }
    }
    if (days > 400000) return kNoTime;  // malformed / runaway
  }

  const long long totalSeconds = ((days * 24 + hour - kEpochHour) * 60 +
                                  minute) * 60 + second;
  if (totalSeconds < 0) return kNoTime;
  return static_cast<SimTime>(totalSeconds) + milli / 1000.0;
}

}  // namespace asdf
