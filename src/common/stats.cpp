#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/simd.h"

namespace asdf {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  return std::sqrt(variance(xs));
}

double median(std::vector<double> xs) { return medianInPlace(xs); }

double medianInPlace(std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + mid, xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  double lo = *std::max_element(xs.begin(), xs.begin() + mid);
  return 0.5 * (lo + hi);
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double l1Distance(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  return l1DistanceN(a.data(), b.data(), a.size());
}

double l1DistanceN(const double* a, const double* b, std::size_t n) {
  return simd::l1Distance(a, b, n);
}

double l2Distance(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

std::vector<double> componentwiseMedian(
    const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  const std::size_t dims = rows.front().size();
  std::vector<double> out(dims, 0.0);
  std::vector<double> column(rows.size());
  std::vector<const double*> ptrs(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == dims);
    ptrs[r] = rows[r].data();
  }
  componentwiseMedianInto(ptrs.data(), rows.size(), dims, out.data(), column);
  return out;
}

void componentwiseMedianInto(const double* const* rows, std::size_t n,
                             std::size_t dims, double* out,
                             std::vector<double>& column) {
  column.resize(n);
  for (std::size_t d = 0; d < dims; ++d) {
    for (std::size_t r = 0; r < n; ++r) column[r] = rows[r][d];
    out[d] = medianInPlace(column);
  }
}

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::clear() {
  n_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

double RunningStats::stddev() const {
  return std::sqrt(variance());
}

SlidingWindow::SlidingWindow(std::size_t capacity) : capacity_(capacity) {
  assert(capacity > 0);
  buf_.reserve(capacity);
}

void SlidingWindow::push(double x) {
  if (buf_.size() < capacity_) {
    buf_.push_back(x);
  } else {
    buf_[head_] = x;
    head_ = (head_ + 1) % capacity_;
  }
}

std::vector<double> SlidingWindow::values() const {
  std::vector<double> out;
  out.reserve(buf_.size());
  for (std::size_t i = 0; i < buf_.size(); ++i) {
    out.push_back(buf_[(head_ + i) % buf_.size()]);
  }
  return out;
}

double SlidingWindow::mean() const { return asdf::mean(buf_); }
double SlidingWindow::variance() const { return asdf::variance(buf_); }
double SlidingWindow::stddev() const { return asdf::stddev(buf_); }

}  // namespace asdf
