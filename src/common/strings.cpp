#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace asdf {

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> splitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t b = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > b) out.emplace_back(s.substr(b, i - b));
  }
  return out;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

bool parseDouble(std::string_view s, double& out) {
  const std::string str = trim(s);
  if (str.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(str.c_str(), &end);
  if (end != str.c_str() + str.size()) return false;
  out = v;
  return true;
}

bool parseInt(std::string_view s, long& out) {
  const std::string str = trim(s);
  if (str.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(str.c_str(), &end, 10);
  if (end != str.c_str() + str.size()) return false;
  out = v;
  return true;
}

}  // namespace asdf
