#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace asdf {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

void logMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[%s] %s\n", levelName(level), message.c_str());
}

}  // namespace asdf
