// Minimal CSV writer used by the experiment harness and bench binaries
// to dump per-window decisions, figure series, and table rows.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace asdf {

class CsvWriter {
 public:
  /// Opens the file for writing, truncating any previous content.
  /// Throws std::runtime_error when the file cannot be opened.
  explicit CsvWriter(const std::string& path);

  /// Writes a header row.
  void header(const std::vector<std::string>& columns);

  /// Writes one data row; values are quoted when they contain commas.
  void row(const std::vector<std::string>& values);

  /// Convenience for numeric rows.
  void rowNumeric(const std::vector<double>& values);

  void flush();

 private:
  std::ofstream out_;
  static std::string escape(const std::string& v);
};

}  // namespace asdf
