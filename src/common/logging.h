// Framework diagnostics for the ASDF tooling itself (not the simulated
// Hadoop application logs — those live in src/hadooplog). Verbosity is
// process-global and off by default so tests and benches stay quiet.
#pragma once

#include <string>

namespace asdf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the minimum level that is printed to stderr.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Writes "[LEVEL] message" to stderr when level >= the configured
/// minimum.
void logMessage(LogLevel level, const std::string& message);

inline void logDebug(const std::string& m) { logMessage(LogLevel::kDebug, m); }
inline void logInfo(const std::string& m) { logMessage(LogLevel::kInfo, m); }
inline void logWarn(const std::string& m) { logMessage(LogLevel::kWarn, m); }
inline void logError(const std::string& m) { logMessage(LogLevel::kError, m); }

}  // namespace asdf
