// Kernel implementations. This translation unit is compiled with
// -ffp-contract=off (see common/CMakeLists.txt): a fused multiply-add
// rounds once where mul+add rounds twice, and the bit-exactness
// contract between the scalar and vector paths forbids that.
#include "common/simd.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#if !defined(ASDF_SIMD_DISABLED) && defined(__x86_64__)
#define ASDF_SIMD_X86 1
#include <immintrin.h>
#endif

namespace asdf::simd {
namespace {

constexpr double kSigmaFloor = 1e-12;

// --- scalar reference (the blocked reduction contract) ---------------

double sqDistanceScalar(const double* a, const double* b, std::size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  double sum = (acc0 + acc1) + (acc2 + acc3);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double l1DistanceScalar(const double* a, const double* b, std::size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += std::fabs(a[i] - b[i]);
    acc1 += std::fabs(a[i + 1] - b[i + 1]);
    acc2 += std::fabs(a[i + 2] - b[i + 2]);
    acc3 += std::fabs(a[i + 3] - b[i + 3]);
  }
  double sum = (acc0 + acc1) + (acc2 + acc3);
  for (; i < n; ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

// One metric's candidate score. Mirrors analysis::whiteBoxCriticalK's
// original per-metric body exactly: NaN diffs fail the <= test and
// fall through to the sigma branch.
inline double criticalCandidate(double mean, double median, double sigma,
                                double sentinel) {
  const double diff = std::fabs(mean - median);
  if (diff <= 1.0) return 0.0;
  return sigma > kSigmaFloor ? diff / sigma : sentinel;
}

double whiteBoxCriticalKScalar(const double* mean, const double* median,
                               const double* sigma, std::size_t n,
                               double sentinel) {
  // Comparison-select max with NaN-dropping semantics (a NaN candidate
  // never beats the accumulator); order-independent, so no lane
  // structure is needed here.
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double cand = criticalCandidate(mean[i], median[i], sigma[i],
                                          sentinel);
    if (acc < cand) acc = cand;
  }
  return acc;
}

void absDeviationsScalar(const double* x, double center, double* out,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::fabs(x[i] - center);
}

#ifdef ASDF_SIMD_X86

// --- SSE2 (baseline on x86-64): four lanes across two xmm registers -

__m128d abs2(__m128d x) {
  return _mm_andnot_pd(_mm_set1_pd(-0.0), x);
}

double sqDistanceSse2(const double* a, const double* b, std::size_t n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d d01 = _mm_sub_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i));
    const __m128d d23 =
        _mm_sub_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2));
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
  }
  double lane[4];
  _mm_storeu_pd(lane, acc01);
  _mm_storeu_pd(lane + 2, acc23);
  double sum = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double l1DistanceSse2(const double* a, const double* b, std::size_t n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc01 = _mm_add_pd(
        acc01, abs2(_mm_sub_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i))));
    acc23 = _mm_add_pd(
        acc23,
        abs2(_mm_sub_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2))));
  }
  double lane[4];
  _mm_storeu_pd(lane, acc01);
  _mm_storeu_pd(lane + 2, acc23);
  double sum = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

// SSE2 has no blendv: select(mask, t, f) = (t & mask) | (f & ~mask).
__m128d select2(__m128d mask, __m128d t, __m128d f) {
  return _mm_or_pd(_mm_and_pd(mask, t), _mm_andnot_pd(mask, f));
}

double whiteBoxCriticalKSse2(const double* mean, const double* median,
                             const double* sigma, std::size_t n,
                             double sentinel) {
  const __m128d one = _mm_set1_pd(1.0);
  const __m128d eps = _mm_set1_pd(kSigmaFloor);
  const __m128d sent = _mm_set1_pd(sentinel);
  __m128d acc = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d diff =
        abs2(_mm_sub_pd(_mm_loadu_pd(mean + i), _mm_loadu_pd(median + i)));
    const __m128d sig = _mm_loadu_pd(sigma + i);
    // !(diff <= 1): true for diff > 1 and for NaN, like the scalar
    // fall-through.
    const __m128d qual = _mm_cmpnle_pd(diff, one);
    const __m128d sigOk = _mm_cmpgt_pd(sig, eps);
    __m128d cand = select2(sigOk, _mm_div_pd(diff, sig), sent);
    cand = _mm_and_pd(cand, qual);  // unqualified lanes contribute +0.0
    // acc = (cand > acc) ? cand : acc — ordered compare drops NaNs.
    acc = select2(_mm_cmpgt_pd(cand, acc), cand, acc);
  }
  double lane[2];
  _mm_storeu_pd(lane, acc);
  double best = lane[0] < lane[1] ? lane[1] : lane[0];
  if (best < 0.0) best = 0.0;  // lanes start at +0.0; keep the floor
  for (; i < n; ++i) {
    const double cand = criticalCandidate(mean[i], median[i], sigma[i],
                                          sentinel);
    if (best < cand) best = cand;
  }
  return best;
}

void absDeviationsSse2(const double* x, double center, double* out,
                       std::size_t n) {
  const __m128d c = _mm_set1_pd(center);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(out + i, abs2(_mm_sub_pd(_mm_loadu_pd(x + i), c)));
  }
  for (; i < n; ++i) out[i] = std::fabs(x[i] - center);
}

// --- AVX2: the four lanes live in one ymm register -------------------

__attribute__((target("avx2"))) __m256d abs4(__m256d x) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), x);
}

__attribute__((target("avx2"))) double sqDistanceAvx2(const double* a,
                                                      const double* b,
                                                      std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  double lane[4];
  _mm256_storeu_pd(lane, acc);
  double sum = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

__attribute__((target("avx2"))) double l1DistanceAvx2(const double* a,
                                                      const double* b,
                                                      std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, abs4(_mm256_sub_pd(_mm256_loadu_pd(a + i),
                                                _mm256_loadu_pd(b + i))));
  }
  double lane[4];
  _mm256_storeu_pd(lane, acc);
  double sum = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

__attribute__((target("avx2"))) double whiteBoxCriticalKAvx2(
    const double* mean, const double* median, const double* sigma,
    std::size_t n, double sentinel) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d eps = _mm256_set1_pd(kSigmaFloor);
  const __m256d sent = _mm256_set1_pd(sentinel);
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d diff = abs4(_mm256_sub_pd(_mm256_loadu_pd(mean + i),
                                            _mm256_loadu_pd(median + i)));
    const __m256d sig = _mm256_loadu_pd(sigma + i);
    const __m256d qual = _mm256_cmp_pd(diff, one, _CMP_NLE_UQ);
    const __m256d sigOk = _mm256_cmp_pd(sig, eps, _CMP_GT_OQ);
    __m256d cand = _mm256_blendv_pd(sent, _mm256_div_pd(diff, sig), sigOk);
    cand = _mm256_and_pd(cand, qual);
    acc = _mm256_blendv_pd(acc, cand, _mm256_cmp_pd(cand, acc, _CMP_GT_OQ));
  }
  double lane[4];
  _mm256_storeu_pd(lane, acc);
  double best = 0.0;
  for (int j = 0; j < 4; ++j) {
    if (best < lane[j]) best = lane[j];
  }
  for (; i < n; ++i) {
    const double cand = criticalCandidate(mean[i], median[i], sigma[i],
                                          sentinel);
    if (best < cand) best = cand;
  }
  return best;
}

__attribute__((target("avx2"))) void absDeviationsAvx2(const double* x,
                                                       double center,
                                                       double* out,
                                                       std::size_t n) {
  const __m256d c = _mm256_set1_pd(center);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, abs4(_mm256_sub_pd(_mm256_loadu_pd(x + i), c)));
  }
  for (; i < n; ++i) out[i] = std::fabs(x[i] - center);
}

#endif  // ASDF_SIMD_X86

Isa detectBest() {
#ifdef ASDF_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
  return Isa::kSse2;  // baseline on x86-64
#else
  return Isa::kScalar;
#endif
}

Isa clampToSupported(Isa isa) {
  const Isa best = detectBest();
  return static_cast<int>(isa) <= static_cast<int>(best) ? isa : best;
}

Isa initialIsa() {
  const char* env = std::getenv("ASDF_SIMD");
  if (env != nullptr) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0 ||
        std::strcmp(env, "0") == 0) {
      return Isa::kScalar;
    }
    if (std::strcmp(env, "sse2") == 0) return clampToSupported(Isa::kSse2);
    if (std::strcmp(env, "avx2") == 0) return clampToSupported(Isa::kAvx2);
  }
  return detectBest();
}

// Relaxed atomic: kernels run on pool threads; forceIsa() is a test
// hook called while they are quiescent.
std::atomic<Isa> g_isa{initialIsa()};

}  // namespace

Isa activeIsa() { return g_isa.load(std::memory_order_relaxed); }

Isa bestSupportedIsa() { return detectBest(); }

Isa forceIsa(Isa isa) {
  const Isa chosen = clampToSupported(isa);
  g_isa.store(chosen, std::memory_order_relaxed);
  return chosen;
}

const char* isaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

double sqDistance(const double* a, const double* b, std::size_t n) {
#ifdef ASDF_SIMD_X86
  switch (activeIsa()) {
    case Isa::kAvx2:
      return sqDistanceAvx2(a, b, n);
    case Isa::kSse2:
      return sqDistanceSse2(a, b, n);
    case Isa::kScalar:
      break;
  }
#endif
  return sqDistanceScalar(a, b, n);
}

double l1Distance(const double* a, const double* b, std::size_t n) {
#ifdef ASDF_SIMD_X86
  switch (activeIsa()) {
    case Isa::kAvx2:
      return l1DistanceAvx2(a, b, n);
    case Isa::kSse2:
      return l1DistanceSse2(a, b, n);
    case Isa::kScalar:
      break;
  }
#endif
  return l1DistanceScalar(a, b, n);
}

double whiteBoxCriticalK(const double* mean, const double* median,
                         const double* sigma, std::size_t n,
                         double sentinel) {
#ifdef ASDF_SIMD_X86
  switch (activeIsa()) {
    case Isa::kAvx2:
      return whiteBoxCriticalKAvx2(mean, median, sigma, n, sentinel);
    case Isa::kSse2:
      return whiteBoxCriticalKSse2(mean, median, sigma, n, sentinel);
    case Isa::kScalar:
      break;
  }
#endif
  return whiteBoxCriticalKScalar(mean, median, sigma, n, sentinel);
}

void absDeviations(const double* x, double center, double* out,
                   std::size_t n) {
#ifdef ASDF_SIMD_X86
  switch (activeIsa()) {
    case Isa::kAvx2:
      absDeviationsAvx2(x, center, out, n);
      return;
    case Isa::kSse2:
      absDeviationsSse2(x, center, out, n);
      return;
    case Isa::kScalar:
      break;
  }
#endif
  absDeviationsScalar(x, center, out, n);
}

}  // namespace asdf::simd
