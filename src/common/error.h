// Error types for the ASDF reproduction.
//
// Configuration and wiring errors (bad fpt-core config files,
// unsatisfiable DAGs, unknown module types) throw ConfigError: these
// are user mistakes detected at startup, and the paper's fpt-core
// likewise terminates when the DAG cannot be constructed (Section 3.3).
// Internal invariant violations use assertions.
#pragma once

#include <stdexcept>
#include <string>

namespace asdf {

/// Raised when an fpt-core configuration cannot be parsed or the
/// module DAG cannot be constructed from it.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Raised by RPC daemons and transports on call failures.
class RpcError : public std::runtime_error {
 public:
  explicit RpcError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace asdf
