// Small string utilities used by the config parser, the Hadoop log
// parser, and table formatting. Kept dependency-free.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace asdf {

/// Removes leading and trailing ASCII whitespace.
std::string trim(std::string_view s);

/// Splits on a single character delimiter; does not collapse empty
/// fields ("a,,b" -> {"a", "", "b"}).
std::vector<std::string> split(std::string_view s, char delim);

/// Splits on runs of whitespace; collapses empty fields.
std::vector<std::string> splitWhitespace(std::string_view s);

bool startsWith(std::string_view s, std::string_view prefix);
bool endsWith(std::string_view s, std::string_view suffix);

/// True if s contains the given substring.
bool contains(std::string_view s, std::string_view needle);

/// Joins the pieces with the given separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Heterogeneous hash for unordered containers keyed by std::string:
/// pair with std::equal_to<> to enable find(std::string_view) without
/// materializing a temporary key string.
struct TransparentStringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// Parses a double; returns false on malformed input (trailing junk
/// counts as malformed).
bool parseDouble(std::string_view s, double& out);

/// Parses a long integer; returns false on malformed input.
bool parseInt(std::string_view s, long& out);

}  // namespace asdf
