// Statistics primitives used throughout the analysis modules:
// batch summaries, Welford online accumulation, medians, and the
// vector distances the black-box analysis needs.
#pragma once

#include <cstddef>
#include <vector>

namespace asdf {

/// Arithmetic mean; 0 for an empty range.
double mean(const std::vector<double>& xs);

/// Population variance; 0 for fewer than 2 samples.
double variance(const std::vector<double>& xs);

/// Population standard deviation.
double stddev(const std::vector<double>& xs);

/// Median (average of middle two for even sizes); 0 for empty input.
/// Copies the input; the caller's vector is untouched.
double median(std::vector<double> xs);

/// Median that partitions the caller's buffer in place (no copy);
/// identical arithmetic to median(). For scratch-buffer hot paths.
double medianInPlace(std::vector<double>& xs);

/// p-th percentile with linear interpolation, p in [0, 100].
double percentile(std::vector<double> xs, double p);

/// Sum of absolute component differences. Vectors must be equal size.
double l1Distance(const std::vector<double>& a, const std::vector<double>& b);

/// l1Distance over raw strided rows (the flat-kernel form).
double l1DistanceN(const double* a, const double* b, std::size_t n);

/// Euclidean distance. Vectors must be equal size.
double l2Distance(const std::vector<double>& a, const std::vector<double>& b);

/// Component-wise median of a set of equally-sized vectors; used by
/// both fingerpointing algorithms for peer comparison.
std::vector<double> componentwiseMedian(
    const std::vector<std::vector<double>>& rows);

/// Flat-kernel form: rows[r] points at a row of `dims` doubles; the
/// per-component medians land in out[0..dims). `column` is caller
/// scratch (resized to n, capacity retained across calls) so the
/// steady state allocates nothing. Arithmetic is identical to
/// componentwiseMedian().
void componentwiseMedianInto(const double* const* rows, std::size_t n,
                             std::size_t dims, double* out,
                             std::vector<double>& column);

/// Online mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void clear();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance.
  double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Fixed-capacity sliding window over doubles, supporting the
/// window/slide semantics of mavgvec and the analysis modules.
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity);

  void push(double x);
  bool full() const { return buf_.size() == capacity_; }
  std::size_t size() const { return buf_.size(); }
  std::size_t capacity() const { return capacity_; }
  void clear() { buf_.clear(); head_ = 0; }

  /// Snapshot of current contents in insertion order.
  std::vector<double> values() const;

  double mean() const;
  double variance() const;
  double stddev() const;

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;      // next overwrite position once full
  std::vector<double> buf_;   // ring once size() == capacity_
};

}  // namespace asdf
