// Deterministic random number generation.
//
// Every stochastic component of the simulated cluster (workload
// arrivals, task durations, metric noise, packet loss) draws from an
// Rng seeded from the experiment spec, so a run is exactly
// reproducible given its seed. The generator is xoshiro256**, which is
// fast, has 256 bits of state, and passes BigCrush.
#pragma once

#include <cstdint>
#include <vector>

namespace asdf {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached pair).
  double gaussian();

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Pareto-distributed value with scale xm and shape alpha; used for
  /// heavy-tailed job sizes in the GridMix-like workload.
  double pareto(double xm, double alpha);

  /// Samples an index in [0, weights.size()) proportional to weights.
  std::size_t weightedIndex(const std::vector<double>& weights);

  /// Derives an independent child generator; useful for giving each
  /// node / component its own stream while staying reproducible.
  Rng split();

 private:
  std::uint64_t s_[4];
  bool haveCachedGaussian_ = false;
  double cachedGaussian_ = 0.0;
};

}  // namespace asdf
