// Basic identifier and time types shared across the ASDF reproduction.
//
// Simulation time is a double count of seconds since the start of the
// simulated run. All substrates (metrics, Hadoop, logs, RPC) and the
// fpt-core scheduler agree on this clock, mirroring the paper's
// requirement that "clocks on all nodes must be synchronized at all
// times" (Section 3.7).
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace asdf {

/// Simulated time in seconds since the beginning of the run.
using SimTime = double;

/// Sentinel for "no time" / "never".
inline constexpr SimTime kNoTime = -1.0;

/// Index of a node within the cluster. Node 0 is the master
/// (JobTracker + NameNode); nodes 1..N are slaves (TaskTracker +
/// DataNode), matching the paper's deployment.
using NodeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;

/// Monotonically increasing identifier for MapReduce jobs.
using JobId = std::int32_t;

/// Formats a SimTime as "YYYY-MM-DD HH:MM:SS,mmm" the way Hadoop 0.18
/// log4j timestamps look (Figure 5 of the paper). The epoch is an
/// arbitrary fixed date; only differences matter to the analyses.
std::string formatLogTimestamp(SimTime t);

/// Parses a "YYYY-MM-DD HH:MM:SS,mmm" timestamp back to SimTime.
/// Returns kNoTime on malformed input.
SimTime parseLogTimestamp(const std::string& text);

}  // namespace asdf
