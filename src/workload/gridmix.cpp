#include "workload/gridmix.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace asdf::workload {
namespace {

// Base weights of the five job types (jobs on a shared cluster skew
// towards small interactive work with occasional big sorts).
const std::vector<double> kBaseMix = {0.30, 0.15, 0.20, 0.15, 0.20};
// After the mix change: sampling/combiner heavy, sorts rare.
const std::vector<double> kChangedMix = {0.40, 0.10, 0.05, 0.10, 0.35};

}  // namespace

GridMixGenerator::GridMixGenerator(hadoop::Cluster& cluster,
                                   GridMixParams params, std::uint64_t seed)
    : cluster_(cluster), params_(params), rng_(seed) {}

const std::vector<double>& GridMixGenerator::currentMix() const {
  if (params_.mixChangeTime >= 0.0 &&
      cluster_.engine().now() >= params_.mixChangeTime) {
    return kChangedMix;
  }
  return kBaseMix;
}

hadoop::JobSpec GridMixGenerator::makeSpec(hadoop::JobType type) {
  using hadoop::JobType;
  const double slaves = cluster_.slaveCount();
  // Sizes scale with the cluster so per-node load is roughly constant
  // (the paper fixed per-cluster dataset size; we keep per-node work
  // comparable across --nodes settings).
  const double scale = params_.sizeScale * slaves / 16.0;

  // Durations are tuned so maps last tens of seconds and reduce copy
  // phases last minutes on the fault-free cluster — the time scales
  // of the real GridMix runs the paper monitored (and the reason its
  // reduce-side faults stay dormant for minutes after injection).
  hadoop::JobSpec spec;
  spec.type = type;
  switch (type) {
    case JobType::kWebdataSample:
      spec.inputBytes = rng_.uniform(96.0e6, 240.0e6) * scale;
      spec.numReduces = 1;
      spec.mapCpuPerByte = 1.0e-6;   // scanning + sampling
      spec.mapOutputRatio = 0.02;
      spec.reduceCpuPerByte = 2.0e-7;
      spec.outputRatio = 0.02;
      break;
    case JobType::kMonsterQuery:
      spec.inputBytes = rng_.uniform(192.0e6, 384.0e6) * scale;
      spec.numReduces = std::max(2, static_cast<int>(slaves / 2));
      spec.mapCpuPerByte = 2.5e-6;
      spec.mapOutputRatio = 0.40;
      spec.reduceCpuPerByte = 5.0e-7;
      spec.outputRatio = 0.25;
      break;
    case JobType::kWebdataSort:
      spec.inputBytes = rng_.uniform(256.0e6, 512.0e6) * scale;
      spec.numReduces = std::max(2, static_cast<int>(slaves));
      spec.mapCpuPerByte = 8.0e-7;   // IO-leaning
      spec.mapOutputRatio = 1.0;
      spec.reduceCpuPerByte = 2.0e-7;
      spec.outputRatio = 1.0;
      break;
    case JobType::kStreamingSort:
      spec.inputBytes = rng_.uniform(128.0e6, 256.0e6) * scale;
      spec.numReduces = std::max(2, static_cast<int>(slaves / 2));
      spec.mapCpuPerByte = 1.2e-6;   // streaming adds pipe overhead
      spec.mapOutputRatio = 1.0;
      spec.reduceCpuPerByte = 4.0e-7;
      spec.outputRatio = 1.0;
      break;
    case JobType::kCombiner:
      spec.inputBytes = rng_.uniform(128.0e6, 320.0e6) * scale;
      spec.numReduces = std::max(2, static_cast<int>(slaves / 4));
      spec.mapCpuPerByte = 3.0e-6;   // CPU-bound aggregation
      spec.mapOutputRatio = 0.05;
      spec.reduceCpuPerByte = 1.0e-6;
      spec.outputRatio = 0.03;
      break;
  }
  spec.name = strformat("%s-%ld", hadoop::jobTypeName(type), submitted_);
  return spec;
}

hadoop::JobSpec GridMixGenerator::randomSpec() {
  const auto type = static_cast<hadoop::JobType>(
      rng_.weightedIndex(currentMix()));
  return makeSpec(type);
}

void GridMixGenerator::maybeSubmit() {
  if (cluster_.jobTracker().activeJobCount() >= params_.maxActiveJobs) {
    return;
  }
  cluster_.jobTracker().submit(randomSpec(), cluster_.engine().now());
  ++submitted_;
}

void GridMixGenerator::wave() {
  const long burst = rng_.uniformInt(params_.burstMin, params_.burstMax);
  for (long j = 0; j < burst; ++j) {
    cluster_.engine().scheduleAfter(rng_.uniform(0.0, 15.0),
                                    [this] { maybeSubmit(); });
  }
}

void GridMixGenerator::scheduleNextWave() {
  // Uniform around the mean keeps troughs bounded: the cluster drains
  // but rarely sits idle for whole analysis windows.
  const double gap =
      rng_.uniform(0.6 * params_.waveGapMean, 1.4 * params_.waveGapMean);
  cluster_.engine().scheduleAfter(gap, [this] {
    wave();
    scheduleNextWave();
  });
}

void GridMixGenerator::start() {
  // First wave right away, then the recurring wave process.
  cluster_.engine().scheduleAfter(rng_.uniform(1.0, 5.0), [this] {
    wave();
    scheduleNextWave();
  });
}

}  // namespace asdf::workload
