// GridMix-like workload generator (Section 4.7).
//
// "GridMix models the mixture of jobs seen on a typical shared Hadoop
// cluster by generating random input data and submitting MapReduce
// jobs in a manner that mimics observed data-access patterns ...
// GridMix comprises 5 different job types, ranging from an
// interactive workload that samples a large dataset, to a large sort
// of uncompressed data that accesses an entire dataset."
//
// The generator keeps a target number of concurrent jobs in flight,
// drawing types from a weighted mix and sizes from per-type ranges
// scaled to the cluster size (the paper scaled its dataset down to
// 200 MB for 50 nodes "to ensure timely completion"). An optional
// mid-run mix change exercises the analyses' robustness to workload
// changes — the false-positive hazard the paper calls out.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "hadoop/cluster.h"
#include "hadoop/job.h"

namespace asdf::workload {

struct GridMixParams {
  /// Jobs arrive in waves (a burst of submissions, then a drain
  /// period), the way users hit a shared cluster. The troughs between
  /// waves matter for diagnosis realism: a healthy slave drains to
  /// idle while a hung task keeps its node's states pinned.
  double waveGapMean = 150.0;  // seconds between waves
  int burstMin = 2;            // jobs per wave
  int burstMax = 4;
  int maxActiveJobs = 6;       // admission cap
  double sizeScale = 1.0;      // multiplies per-type input sizes
  /// When >= 0, the type mix flips at this time (sort-heavy ->
  /// sample/combiner-heavy) to create a workload change.
  double mixChangeTime = -1.0;
};

class GridMixGenerator {
 public:
  GridMixGenerator(hadoop::Cluster& cluster, GridMixParams params,
                   std::uint64_t seed);

  /// Submits the initial jobs and registers the arrival process.
  void start();

  /// Random spec for the given type, scaled to the cluster.
  hadoop::JobSpec makeSpec(hadoop::JobType type);

  /// Draws a type from the current mix and builds its spec.
  hadoop::JobSpec randomSpec();

  long submitted() const { return submitted_; }

 private:
  void maybeSubmit();
  void wave();
  void scheduleNextWave();
  const std::vector<double>& currentMix() const;

  hadoop::Cluster& cluster_;
  GridMixParams params_;
  Rng rng_;
  long submitted_ = 0;
};

}  // namespace asdf::workload
