#include "hadooplog/states.h"

#include <cassert>

namespace asdf::hadooplog {
namespace {

const std::array<const char*, kTtStateCount> kTtNames = {
    "MapTask", "ReduceTask", "ReduceCopy", "ReduceSort", "ReduceReduce",
};

const std::array<const char*, kDnStateCount> kDnNames = {
    "ReadBlock", "WriteBlock", "DeleteBlock",
};

}  // namespace

const std::array<const char*, kTtStateCount>& ttStateNames() {
  return kTtNames;
}

const std::array<const char*, kDnStateCount>& dnStateNames() {
  return kDnNames;
}

std::string whiteBoxMetricName(std::size_t index) {
  assert(index < kWhiteBoxVectorSize);
  if (index < kTtStateCount) return kTtNames[index];
  return kDnNames[index - kTtStateCount];
}

}  // namespace asdf::hadooplog
