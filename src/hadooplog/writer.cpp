#include "hadooplog/writer.h"

#include "common/strings.h"

namespace asdf::hadooplog {
namespace {

constexpr const char* kTtClass = "org.apache.hadoop.mapred.TaskTracker";
constexpr const char* kDnClass = "org.apache.hadoop.dfs.DataNode";

}  // namespace

std::string makeTaskAttemptId(int jobId, bool isMap, int taskIndex,
                              int attempt) {
  return strformat("task_%04d_%c_%06d_%d", jobId, isMap ? 'm' : 'r',
                   taskIndex, attempt);
}

void TtLogWriter::emit(SimTime t, const std::string& level,
                       const std::string& message) {
  buffer_->append(formatLogTimestamp(t) + " " + level + " " + kTtClass +
                  ": " + message);
}

void TtLogWriter::launchTask(SimTime t, const std::string& taskId) {
  emit(t, "INFO", "LaunchTaskAction: " + taskId);
}

void TtLogWriter::taskDone(SimTime t, const std::string& taskId) {
  emit(t, "INFO", "Task " + taskId + " is done.");
}

void TtLogWriter::taskFailed(SimTime t, const std::string& taskId,
                             const std::string& reason) {
  emit(t, "WARN", "Task " + taskId + " failed: " + reason);
}

void TtLogWriter::killTask(SimTime t, const std::string& taskId) {
  emit(t, "INFO", "KillTaskAction: " + taskId);
}

void TtLogWriter::mapProgress(SimTime t, const std::string& taskId,
                              double fraction) {
  emit(t, "INFO",
       strformat("%s %.2f%% hdfs://input", taskId.c_str(), fraction * 100.0));
}

void TtLogWriter::reduceProgress(SimTime t, const std::string& taskId,
                                 double fraction, const std::string& phase,
                                 int copiedMaps, int totalMaps) {
  emit(t, "INFO",
       strformat("%s %.2f%% reduce > %s (%d of %d)", taskId.c_str(),
                 fraction * 100.0, phase.c_str(), copiedMaps, totalMaps));
}

void TtLogWriter::copyFailed(SimTime t, const std::string& taskId,
                             const std::string& mapTaskId) {
  emit(t, "WARN",
       taskId + " copy failed: " + mapTaskId +
           " java.io.IOException: failed to rename map output");
}

void DnLogWriter::emit(SimTime t, const std::string& level,
                       const std::string& message) {
  buffer_->append(formatLogTimestamp(t) + " " + level + " " + kDnClass +
                  ": " + message);
}

void DnLogWriter::servingBlock(SimTime t, long blockId,
                               const std::string& clientIp) {
  emit(t, "INFO", strformat("Serving block blk_%ld to /%s", blockId,
                            clientIp.c_str()));
}

void DnLogWriter::servedBlock(SimTime t, long blockId,
                              const std::string& clientIp) {
  emit(t, "INFO",
       strformat("Served block blk_%ld to /%s", blockId, clientIp.c_str()));
}

void DnLogWriter::receivingBlock(SimTime t, long blockId,
                                 const std::string& srcIp,
                                 const std::string& destIp) {
  emit(t, "INFO",
       strformat("Receiving block blk_%ld src: /%s:50010 dest: /%s:50010",
                 blockId, srcIp.c_str(), destIp.c_str()));
}

void DnLogWriter::receivedBlock(SimTime t, long blockId, double sizeBytes,
                                const std::string& srcIp) {
  emit(t, "INFO",
       strformat("Received block blk_%ld of size %.0f from /%s", blockId,
                 sizeBytes, srcIp.c_str()));
}

void DnLogWriter::deletingBlock(SimTime t, long blockId) {
  emit(t, "INFO",
       strformat("Deleting block blk_%ld file /hadoop/dfs/data/current/blk_%ld",
                 blockId, blockId));
}

}  // namespace asdf::hadooplog
