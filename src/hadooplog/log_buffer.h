// An append-only in-memory log file.
//
// Each simulated daemon (TaskTracker, DataNode) owns one LogBuffer:
// the substrate appends formatted text lines as the corresponding
// events happen, and the hadoop_log parser reads *text* back out —
// never simulator internals — so the white-box path exercises real
// parsing. Readers keep their own cursor, which reproduces the
// paper's "on-demand, lazy parsing" of logs (Section 4.3): each RPC
// poll consumes only the lines appended since the previous poll.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace asdf::hadooplog {

class LogBuffer {
 public:
  /// Appends one already-formatted line (without trailing newline).
  void append(std::string line);

  std::size_t lineCount() const { return lines_.size(); }

  /// Returns the line at the given index (0-based).
  const std::string& line(std::size_t index) const;

  /// Copies lines [from, lineCount()) — what a tail-reading daemon
  /// would see since its cursor.
  std::vector<std::string> linesFrom(std::size_t from) const;

  /// Total bytes appended (including implied newlines); used to model
  /// the disk traffic of log writing.
  double totalBytes() const { return totalBytes_; }

  /// Bytes appended since the last drainNewBytes() call.
  double drainNewBytes();

 private:
  std::vector<std::string> lines_;
  double totalBytes_ = 0.0;
  double drainedBytes_ = 0.0;
};

}  // namespace asdf::hadooplog
