// The hadoop-log parser library: text log lines -> events -> DFA
// states -> per-second state vectors (Section 4.4 of the paper).
//
// Each log entry is interpreted as a state-entrance event, a
// state-exit event, or an instant event (immediate entrance + exit,
// e.g. block deletion). The parser maintains a minimal amount of
// state across entries (open tasks and block transfers) and, per time
// instance (1-second bucket), reports how many instances of each state
// were simultaneously executing — counting short-lived states whose
// entrance and exit fall within the same instance.
//
// Parsing is lazy and on-demand: consume() takes raw lines (typically
// the tail of a LogBuffer since the previous poll) and drain() releases
// the per-second vectors that are *final*, i.e. those seconds the log
// has moved past (a later timestamp was seen) or that fell behind the
// caller-supplied watermark by the flush grace. This reproduces the
// real system's behaviour of "occasionally needing to delay one or two
// iterations to resolve values for recent log entries" (Section 3.7).
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "hadooplog/states.h"

namespace asdf::hadooplog {

/// One finalized per-second sample.
struct StateSample {
  long second = 0;              // simulated second this sample covers
  std::vector<double> counts;   // one entry per state
};

/// Shared per-second counting logic for both log types.
class StateCounter {
 public:
  explicit StateCounter(std::size_t stateCount);

  /// Anchors the clock: seconds from `second` on are reported even if
  /// no event ever arrives (a quiet node yields all-zero vectors).
  /// Without an anchor the first event starts the clock.
  void startAt(long second);

  void entrance(long second, int state);
  void exit(long second, int state);
  void instant(long second, int state);

  /// Finalizes and returns every second strictly before `beforeSecond`.
  std::vector<StateSample> drain(long beforeSecond);

  /// Count of instances currently open (for tests / invariants).
  double openCount(int state) const;

 private:
  void advanceTo(long second);
  void finalizeCurrent();

  std::size_t stateCount_;
  bool started_ = false;
  long currentSecond_ = 0;
  std::vector<double> counter_;        // open instances right now
  std::vector<double> activeAtStart_;  // open at start of currentSecond_
  std::vector<double> entrances_;      // entrances during currentSecond_
  std::vector<double> instants_;       // instant events during currentSecond_
  std::deque<StateSample> ready_;
};

/// Parser for TaskTracker logs.
class TtLogParser {
 public:
  TtLogParser();

  /// Anchors the per-second clock at the monitoring start time, so a
  /// quiet TaskTracker still yields zero-valued samples.
  void startAt(long second) { counter_.startAt(second); }

  /// Feeds raw log lines (in file order).
  void consume(const std::vector<std::string>& lines);

  /// Returns finalized per-second vectors (kTtStateCount wide).
  /// `watermark` is the caller's current time; seconds older than
  /// watermark - grace are flushed even without a newer log line.
  std::vector<StateSample> poll(SimTime watermark, double graceSeconds = 2.0);

  /// Number of tasks currently believed to be executing.
  std::size_t openTaskCount() const { return tasks_.size(); }

  /// Lines that could not be interpreted (diagnostics; unknown lines
  /// are skipped, not fatal — production logs contain noise).
  std::size_t ignoredLineCount() const { return ignored_; }

 private:
  struct OpenTask {
    bool isMap = false;
    int phase = -1;  // TtState of the active reduce phase, -1 if none
  };

  void handleLine(const std::string& line);
  void closeTask(long second, const std::string& taskId);

  StateCounter counter_;
  std::map<std::string, OpenTask> tasks_;
  long lastSeenSecond_ = -1;
  std::size_t ignored_ = 0;
};

/// Parser for DataNode logs.
class DnLogParser {
 public:
  DnLogParser();

  /// Anchors the per-second clock at the monitoring start time.
  void startAt(long second) { counter_.startAt(second); }

  void consume(const std::vector<std::string>& lines);
  std::vector<StateSample> poll(SimTime watermark, double graceSeconds = 2.0);

  std::size_t openTransferCount() const {
    return reads_.size() + writes_.size();
  }
  std::size_t ignoredLineCount() const { return ignored_; }

 private:
  void handleLine(const std::string& line);

  StateCounter counter_;
  std::map<std::string, char> reads_;   // "blk to client" -> open
  std::map<long, char> writes_;         // blockId -> open
  long lastSeenSecond_ = -1;
  std::size_t ignored_ = 0;
};

}  // namespace asdf::hadooplog
