#include "hadooplog/log_buffer.h"

#include <cassert>
#include <utility>

namespace asdf::hadooplog {

void LogBuffer::append(std::string line) {
  totalBytes_ += static_cast<double>(line.size()) + 1.0;
  lines_.push_back(std::move(line));
}

const std::string& LogBuffer::line(std::size_t index) const {
  assert(index < lines_.size());
  return lines_[index];
}

std::vector<std::string> LogBuffer::linesFrom(std::size_t from) const {
  if (from >= lines_.size()) return {};
  return std::vector<std::string>(lines_.begin() + static_cast<long>(from),
                                  lines_.end());
}

double LogBuffer::drainNewBytes() {
  const double fresh = totalBytes_ - drainedBytes_;
  drainedBytes_ = totalBytes_;
  return fresh;
}

}  // namespace asdf::hadooplog
