// The Hadoop state catalog for white-box analysis.
//
// Section 4.4 of the paper: each Hadoop thread of execution is
// approximated by a DFA whose states are high-level modes of
// execution; log entries are state-entrance, state-exit, or "instant"
// events; the aggregate per-second mode is a vector counting the
// simultaneously-executing instances of each state.
//
// Following SALSA (the paper's reference [15]), the TaskTracker's
// important states are Map and Reduce tasks (with the reduce's copy /
// sort / reduce phases), and the DataNode's are block reads and
// writes, with block deletion as an instant state.
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace asdf::hadooplog {

/// States inferred from a TaskTracker log.
enum class TtState : int {
  kMapTask = 0,
  kReduceTask,
  kReduceCopy,
  kReduceSort,
  kReduceReduce,
};
inline constexpr std::size_t kTtStateCount = 5;

/// States inferred from a DataNode log. kDeleteBlock is an instant
/// state (entrance and exit within the same instant).
enum class DnState : int {
  kReadBlock = 0,
  kWriteBlock,
  kDeleteBlock,
};
inline constexpr std::size_t kDnStateCount = 3;

const std::array<const char*, kTtStateCount>& ttStateNames();
const std::array<const char*, kDnStateCount>& dnStateNames();

/// Dimension of the combined per-node white-box vector
/// (TaskTracker states followed by DataNode states).
inline constexpr std::size_t kWhiteBoxVectorSize =
    kTtStateCount + kDnStateCount;

std::string whiteBoxMetricName(std::size_t index);

}  // namespace asdf::hadooplog
