// Formats Hadoop-0.18-style log lines into a LogBuffer.
//
// The substrate calls these writers as task/block events happen; the
// parser (parser.h) later recovers events from the *text*. Formats
// mirror the paper's Figure 5 snippet:
//
//   2008-04-15 14:23:15,324 INFO org.apache.hadoop.mapred.TaskTracker:
//   LaunchTaskAction: task_0001_m_000096_0
//
// plus the DataNode block-lifecycle lines SALSA-style state inference
// relies on.
#pragma once

#include <string>

#include "common/types.h"
#include "hadooplog/log_buffer.h"

namespace asdf::hadooplog {

/// Builds "task_%04d_%c_%06d_%d" attempt identifiers (Figure 5).
std::string makeTaskAttemptId(int jobId, bool isMap, int taskIndex,
                              int attempt);

/// Writer for a TaskTracker daemon's log.
class TtLogWriter {
 public:
  explicit TtLogWriter(LogBuffer* buffer) : buffer_(buffer) {}

  void launchTask(SimTime t, const std::string& taskId);
  void taskDone(SimTime t, const std::string& taskId);
  void taskFailed(SimTime t, const std::string& taskId,
                  const std::string& reason);
  void killTask(SimTime t, const std::string& taskId);

  /// Emits a map progress line ("0.50% hdfs://..."); informational.
  void mapProgress(SimTime t, const std::string& taskId, double fraction);

  /// Emits a reduce progress line; `phase` is "copy", "sort" or
  /// "reduce". The parser uses the first line mentioning a new phase
  /// as that phase's entrance event.
  void reduceProgress(SimTime t, const std::string& taskId, double fraction,
                      const std::string& phase, int copiedMaps, int totalMaps);

  /// WARN line for a failed shuffle fetch (HADOOP-1152 flavor).
  void copyFailed(SimTime t, const std::string& taskId,
                  const std::string& mapTaskId);

 private:
  void emit(SimTime t, const std::string& level, const std::string& message);
  LogBuffer* buffer_;
};

/// Writer for a DataNode daemon's log.
class DnLogWriter {
 public:
  explicit DnLogWriter(LogBuffer* buffer) : buffer_(buffer) {}

  void servingBlock(SimTime t, long blockId, const std::string& clientIp);
  void servedBlock(SimTime t, long blockId, const std::string& clientIp);
  void receivingBlock(SimTime t, long blockId, const std::string& srcIp,
                      const std::string& destIp);
  void receivedBlock(SimTime t, long blockId, double sizeBytes,
                     const std::string& srcIp);
  void deletingBlock(SimTime t, long blockId);

 private:
  void emit(SimTime t, const std::string& level, const std::string& message);
  LogBuffer* buffer_;
};

}  // namespace asdf::hadooplog
