#include "hadooplog/parser.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/strings.h"

namespace asdf::hadooplog {
namespace {

// A log line looks like:
//   2008-04-15 14:23:15,324 INFO org.apache.hadoop....: <message>
// The timestamp is the first 23 characters; the message follows the
// first ": " after the class name.
constexpr std::size_t kTimestampLen = 23;

bool splitLine(const std::string& line, SimTime& time, std::string& message) {
  if (line.size() < kTimestampLen + 4) return false;
  time = parseLogTimestamp(line.substr(0, kTimestampLen));
  if (time == kNoTime) return false;
  // Skip past "<class>: " — the first ": " after the level field.
  const std::size_t colon = line.find(": ", kTimestampLen);
  if (colon == std::string::npos) return false;
  message = line.substr(colon + 2);
  return true;
}

/// Extracts the task id following a prefix, e.g.
/// "LaunchTaskAction: task_0001_m_000096_0" -> "task_0001_m_000096_0".
std::string tokenAfter(const std::string& message, const std::string& prefix) {
  const std::size_t pos = message.find(prefix);
  if (pos == std::string::npos) return {};
  std::size_t b = pos + prefix.size();
  std::size_t e = b;
  while (e < message.size() && !std::isspace(static_cast<unsigned char>(message[e]))) {
    ++e;
  }
  return message.substr(b, e - b);
}

long toSecond(SimTime t) { return static_cast<long>(std::floor(t)); }

}  // namespace

// ---------------------------------------------------------------------------
// StateCounter

StateCounter::StateCounter(std::size_t stateCount)
    : stateCount_(stateCount),
      counter_(stateCount, 0.0),
      activeAtStart_(stateCount, 0.0),
      entrances_(stateCount, 0.0),
      instants_(stateCount, 0.0) {}

void StateCounter::startAt(long second) {
  if (!started_) {
    started_ = true;
    currentSecond_ = second;
  }
}

void StateCounter::advanceTo(long second) {
  if (!started_) {
    started_ = true;
    currentSecond_ = second;
    return;
  }
  // A line time-stamped before the current bucket (clock skew or a
  // buffered writer) is folded into the current bucket rather than
  // rewriting history: finalized samples are immutable.
  while (currentSecond_ < second) {
    finalizeCurrent();
  }
}

void StateCounter::finalizeCurrent() {
  StateSample sample;
  sample.second = currentSecond_;
  sample.counts.resize(stateCount_);
  for (std::size_t s = 0; s < stateCount_; ++s) {
    // Everything open at the start of the second, plus everything that
    // entered during it (covers short-lived states), plus instants.
    sample.counts[s] = activeAtStart_[s] + entrances_[s] + instants_[s];
  }
  ready_.push_back(std::move(sample));
  activeAtStart_ = counter_;
  std::fill(entrances_.begin(), entrances_.end(), 0.0);
  std::fill(instants_.begin(), instants_.end(), 0.0);
  ++currentSecond_;
}

void StateCounter::entrance(long second, int state) {
  assert(state >= 0 && static_cast<std::size_t>(state) < stateCount_);
  advanceTo(second);
  counter_[static_cast<std::size_t>(state)] += 1.0;
  entrances_[static_cast<std::size_t>(state)] += 1.0;
}

void StateCounter::exit(long second, int state) {
  assert(state >= 0 && static_cast<std::size_t>(state) < stateCount_);
  advanceTo(second);
  auto& c = counter_[static_cast<std::size_t>(state)];
  c = std::max(0.0, c - 1.0);  // tolerate exit-without-entrance
}

void StateCounter::instant(long second, int state) {
  assert(state >= 0 && static_cast<std::size_t>(state) < stateCount_);
  advanceTo(second);
  instants_[static_cast<std::size_t>(state)] += 1.0;
}

std::vector<StateSample> StateCounter::drain(long beforeSecond) {
  if (started_) {
    while (currentSecond_ < beforeSecond) finalizeCurrent();
  }
  std::vector<StateSample> out;
  while (!ready_.empty() && ready_.front().second < beforeSecond) {
    out.push_back(std::move(ready_.front()));
    ready_.pop_front();
  }
  return out;
}

double StateCounter::openCount(int state) const {
  assert(state >= 0 && static_cast<std::size_t>(state) < stateCount_);
  return counter_[static_cast<std::size_t>(state)];
}

// ---------------------------------------------------------------------------
// TtLogParser

TtLogParser::TtLogParser() : counter_(kTtStateCount) {}

void TtLogParser::consume(const std::vector<std::string>& lines) {
  for (const auto& line : lines) handleLine(line);
}

void TtLogParser::closeTask(long second, const std::string& taskId) {
  auto it = tasks_.find(taskId);
  if (it == tasks_.end()) return;
  if (it->second.phase >= 0) counter_.exit(second, it->second.phase);
  counter_.exit(second, static_cast<int>(it->second.isMap
                                             ? TtState::kMapTask
                                             : TtState::kReduceTask));
  tasks_.erase(it);
}

void TtLogParser::handleLine(const std::string& line) {
  SimTime t = 0.0;
  std::string msg;
  if (!splitLine(line, t, msg)) {
    ++ignored_;
    return;
  }
  const long second = toSecond(t);
  lastSeenSecond_ = std::max(lastSeenSecond_, second);

  if (startsWith(msg, "LaunchTaskAction: ")) {
    const std::string taskId = tokenAfter(msg, "LaunchTaskAction: ");
    if (taskId.empty()) {
      ++ignored_;
      return;
    }
    const bool isMap = contains(taskId, "_m_");
    tasks_[taskId] = OpenTask{isMap, -1};
    counter_.entrance(second, static_cast<int>(isMap ? TtState::kMapTask
                                                     : TtState::kReduceTask));
    return;
  }
  if (startsWith(msg, "Task ")) {
    // "Task <id> is done." or "Task <id> failed: ..."
    const std::string taskId = tokenAfter(msg, "Task ");
    if (!taskId.empty() &&
        (contains(msg, "is done") || contains(msg, "failed"))) {
      closeTask(second, taskId);
      return;
    }
    ++ignored_;
    return;
  }
  if (startsWith(msg, "KillTaskAction: ")) {
    const std::string taskId = tokenAfter(msg, "KillTaskAction: ");
    closeTask(second, taskId);
    return;
  }
  if (contains(msg, "copy failed: ")) {
    return;  // WARN diagnostics; no state change
  }
  if (startsWith(msg, "task_")) {
    // Progress line: "task_X 12.00% reduce > copy (3 of 24)" or a map
    // progress line "task_X 50.00% hdfs://input".
    const std::string taskId = tokenAfter(msg, "");
    auto it = tasks_.find(taskId);
    if (it == tasks_.end()) {
      // Progress for a task whose launch we never saw (e.g. the
      // monitor attached mid-run). Synthesize the entrance so the
      // state counting stays consistent.
      const bool isMap = contains(taskId, "_m_");
      it = tasks_.emplace(taskId, OpenTask{isMap, -1}).first;
      counter_.entrance(second, static_cast<int>(
                                    isMap ? TtState::kMapTask
                                          : TtState::kReduceTask));
    }
    if (!contains(msg, "reduce > ")) return;  // map progress: no phases
    int phase = -1;
    if (contains(msg, "reduce > copy")) {
      phase = static_cast<int>(TtState::kReduceCopy);
    } else if (contains(msg, "reduce > sort")) {
      phase = static_cast<int>(TtState::kReduceSort);
    } else if (contains(msg, "reduce > reduce")) {
      phase = static_cast<int>(TtState::kReduceReduce);
    } else {
      ++ignored_;
      return;
    }
    if (it->second.phase != phase) {
      if (it->second.phase >= 0) counter_.exit(second, it->second.phase);
      counter_.entrance(second, phase);
      it->second.phase = phase;
    }
    return;
  }
  ++ignored_;
}

std::vector<StateSample> TtLogParser::poll(SimTime watermark,
                                           double graceSeconds) {
  const long logFinal = lastSeenSecond_;  // seconds < this are final
  const long graceFinal = toSecond(watermark - graceSeconds) + 1;
  return counter_.drain(std::max(logFinal, graceFinal));
}

// ---------------------------------------------------------------------------
// DnLogParser

DnLogParser::DnLogParser() : counter_(kDnStateCount) {}

void DnLogParser::consume(const std::vector<std::string>& lines) {
  for (const auto& line : lines) handleLine(line);
}

void DnLogParser::handleLine(const std::string& line) {
  SimTime t = 0.0;
  std::string msg;
  if (!splitLine(line, t, msg)) {
    ++ignored_;
    return;
  }
  const long second = toSecond(t);
  lastSeenSecond_ = std::max(lastSeenSecond_, second);

  if (startsWith(msg, "Serving block ")) {
    const std::string block = tokenAfter(msg, "Serving block ");
    const std::string client = tokenAfter(msg, " to ");
    reads_[block + " " + client] = 1;
    counter_.entrance(second, static_cast<int>(DnState::kReadBlock));
    return;
  }
  if (startsWith(msg, "Served block ")) {
    const std::string block = tokenAfter(msg, "Served block ");
    const std::string client = tokenAfter(msg, " to ");
    const auto it = reads_.find(block + " " + client);
    if (it != reads_.end()) {
      reads_.erase(it);
      counter_.exit(second, static_cast<int>(DnState::kReadBlock));
    }
    return;
  }
  if (startsWith(msg, "Receiving block ")) {
    const std::string block = tokenAfter(msg, "Receiving block ");
    long id = 0;
    if (block.size() > 4 && parseInt(block.substr(4), id)) {
      writes_[id] = 1;
      counter_.entrance(second, static_cast<int>(DnState::kWriteBlock));
    } else {
      ++ignored_;
    }
    return;
  }
  if (startsWith(msg, "Received block ")) {
    const std::string block = tokenAfter(msg, "Received block ");
    long id = 0;
    if (block.size() > 4 && parseInt(block.substr(4), id)) {
      const auto it = writes_.find(id);
      if (it != writes_.end()) {
        writes_.erase(it);
        counter_.exit(second, static_cast<int>(DnState::kWriteBlock));
      }
    } else {
      ++ignored_;
    }
    return;
  }
  if (startsWith(msg, "Deleting block ")) {
    counter_.instant(second, static_cast<int>(DnState::kDeleteBlock));
    return;
  }
  ++ignored_;
}

std::vector<StateSample> DnLogParser::poll(SimTime watermark,
                                           double graceSeconds) {
  const long logFinal = lastSeenSecond_;
  const long graceFinal = toSecond(watermark - graceSeconds) + 1;
  return counter_.drain(std::max(logFinal, graceFinal));
}

}  // namespace asdf::hadooplog
