// The JobTracker: job admission, heartbeat-driven task scheduling with
// data-locality preference, failure retries, and speculative
// execution — the fault-tolerance machinery the paper's Section 4.1
// describes ("heartbeats, re-execution of failed tasks and data
// replication").
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "common/types.h"
#include "hadoop/job.h"
#include "hadoop/tasktracker.h"

namespace asdf::hadoop {

class JobTracker {
 public:
  JobTracker(ClusterView& cluster, NameNode& nameNode);

  /// Wires the slave set (done once by the Cluster after construction).
  void setTaskTrackers(std::vector<TaskTracker*> tts);

  /// Admits a job; input blocks are created and placed immediately.
  Job& submit(JobSpec spec, SimTime now);

  /// Processes one TaskTracker heartbeat: absorbs its report, then
  /// fills its free slots. Returns the number of tasks assigned.
  int processHeartbeat(TaskTracker& tt, SimTime now);

  /// Periodic speculative-execution scan: re-queues tasks whose sole
  /// running attempt is an outlier versus completed peers.
  void checkSpeculation(SimTime now);

  /// Mitigation hook (Section 5): a blacklisted TaskTracker keeps
  /// heartbeating and reporting, but receives no further tasks.
  void blacklistNode(NodeId node);
  bool isBlacklisted(NodeId node) const;
  std::size_t blacklistedCount() const { return blacklist_.size(); }

  const std::vector<std::unique_ptr<Job>>& activeJobs() const {
    return active_;
  }
  const std::vector<std::unique_ptr<Job>>& completedJobs() const {
    return completed_;
  }
  int activeJobCount() const { return static_cast<int>(active_.size()); }
  long jobsSubmitted() const { return jobsSubmitted_; }
  long jobsCompleted() const { return jobsCompleted_; }
  long tasksGivenUp() const { return tasksGivenUp_; }
  long speculativeLaunches() const { return speculativeLaunches_; }

  /// Invoked when a job finishes (workload generator, output cleanup).
  std::function<void(Job&, SimTime)> onJobComplete;

 private:
  void applyReport(const TaskTracker::Report& report, SimTime now);
  void finishJobIfComplete(Job& job, SimTime now);
  bool findMapWork(NodeId node, Job*& job, int& taskIndex);
  bool findReduceWork(Job*& job, int& taskIndex);
  void killOtherAttempts(Job& job, bool isMap, int taskIndex, SimTime now);
  Job* findActive(JobId id);

  ClusterView& cluster_;
  NameNode& nameNode_;
  std::vector<TaskTracker*> tts_;
  std::vector<std::unique_ptr<Job>> active_;
  std::vector<std::unique_ptr<Job>> completed_;
  std::set<NodeId> blacklist_;
  JobId nextJobId_ = 1;
  long jobsSubmitted_ = 0;
  long jobsCompleted_ = 0;
  long tasksGivenUp_ = 0;
  long speculativeLaunches_ = 0;
};

}  // namespace asdf::hadoop
