// A simulated cluster node: resources, OS counters, daemons' logs.
//
// Each node owns its CPU/disk/NIC share-resources, its OS-counter
// model, and the log buffers of the Hadoop daemons that run on it
// (TaskTracker + DataNode on slaves). During a tick, tasks and fault
// processes register demands against the resources, then record what
// they actually consumed via the add*() accumulators; endTick() rolls
// the accumulated activity into the OS model and keeps the latest
// sadc snapshot for collection (Node implements SadcProvider).
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "hadoop/config.h"
#include "hadooplog/log_buffer.h"
#include "hadooplog/writer.h"
#include "metrics/os_model.h"
#include "metrics/sadc.h"
#include "sim/resources.h"
#include "syscalls/trace_model.h"

namespace asdf::topology {
class UplinkPlane;
}

namespace asdf::hadoop {

/// Per-node fault switches, flipped by the fault injectors and
/// consulted by task attempts at phase boundaries (the application-bug
/// faults of Table 2 manifest inside tasks running on the sick node).
struct NodeFaults {
  bool mapHang = false;         // HADOOP-1036: maps spin forever
  bool reduceCopyFail = false;  // HADOOP-1152: shuffle copies fail
  bool reduceSortHang = false;  // HADOOP-2080: reduce hangs at sort
};

class Node : public metrics::SadcProvider {
 public:
  Node(NodeId id, const HadoopParams& params, Rng rng);

  NodeId id() const { return id_; }
  /// Cluster-internal address, e.g. "10.250.0.3".
  const std::string& ip() const { return ip_; }
  bool isMaster() const { return id_ == 0; }

  sim::CpuResource& cpu() { return cpu_; }
  sim::DiskResource& disk() { return disk_; }
  sim::NicResource& nic() { return nic_; }

  /// Rack placement, set by the Cluster from its layout. rack() is -1
  /// for the master; uplinks() is null on flat topologies, so flow
  /// helpers (hdfs.h) degenerate to no-ops and flat runs stay
  /// byte-identical to the pre-topology simulator.
  void setTopology(int rack, topology::UplinkPlane* uplinks) {
    rack_ = rack;
    uplinks_ = uplinks;
  }
  int rack() const { return rack_; }
  topology::UplinkPlane* uplinks() const { return uplinks_; }

  hadooplog::LogBuffer& ttLog() { return ttLog_; }
  hadooplog::LogBuffer& dnLog() { return dnLog_; }
  hadooplog::TtLogWriter& ttWriter() { return ttWriter_; }
  hadooplog::DnLogWriter& dnWriter() { return dnWriter_; }

  NodeFaults& faults() { return faults_; }
  const NodeFaults& faults() const { return faults_; }

  // --- tick protocol ----------------------------------------------------
  void beginTick();
  void finalizeResources();
  /// Rolls up this tick's activity into the OS model at time `now`.
  void endTick(SimTime now);

  // --- activity accounting (called after grants are known) --------------
  void addCpuUser(double coreSeconds) { activity_.cpuUserCores += coreSeconds; }
  void addCpuSystem(double coreSeconds) {
    activity_.cpuSystemCores += coreSeconds;
  }
  void addCpuIowait(double coreSeconds) {
    activity_.cpuIowaitCores += coreSeconds;
  }
  void addDiskRead(double bytes) { activity_.diskReadBytes += bytes; }
  void addDiskWrite(double bytes) { activity_.diskWriteBytes += bytes; }
  void addNetRx(double bytes) { activity_.netRxBytes += bytes; }
  void addNetTx(double bytes) { activity_.netTxBytes += bytes; }
  void addNetRxDrops(double pkts) { activity_.netRxDropPkts += pkts; }
  void addNetTxDrops(double pkts) { activity_.netTxDropPkts += pkts; }
  void addMemUsed(double bytes) { activity_.memUsedBytes += bytes; }
  void addRunnable(int n) { activity_.runnableTasks += n; }
  void addProcesses(int n) { activity_.processCount += n; }
  void addForks(double n) { activity_.forks += n; }
  void addTcpConnections(int n) { activity_.tcpConnections += n; }
  /// Disk bytes moved on behalf of the DataNode daemon (block serves /
  /// receives); feeds the DN process metrics.
  void addDnBytes(double readBytes, double writeBytes) {
    dnReadBytes_ += readBytes;
    dnWriteBytes_ += writeBytes;
  }
  /// Number of task attempts currently hosted (TT process metrics).
  void setRunningTasks(int n) { runningTasks_ = n; }
  /// A task wedged in a blocking loop this tick (futex/nanosleep
  /// syscall signature).
  void addHungTask() { ++hungTasks_; }
  /// A task spinning on the CPU this tick (near-silent trace).
  void addSpinningTask() { ++spinningTasks_; }
  /// Extra tracked process for this tick (e.g. a fault hog process).
  void addTrackedProcess(const metrics::ProcessActivity& p) {
    extraProcesses_.push_back(p);
  }

  // --- monitoring --------------------------------------------------------
  metrics::SadcSnapshot sadcCollect() const override { return lastSnapshot_; }
  SimTime lastSnapshotTime() const { return lastSnapshot_.time; }
  /// The syscall trace of the most recent tick (strace module).
  const syscalls::TraceSecond& lastSyscallTrace() const {
    return lastTrace_;
  }

 private:
  NodeId id_;
  std::string ip_;
  const HadoopParams& params_;
  int rack_ = -1;
  topology::UplinkPlane* uplinks_ = nullptr;
  sim::CpuResource cpu_;
  sim::DiskResource disk_;
  sim::NicResource nic_;
  metrics::NodeOsModel osModel_;
  metrics::NodeActivity activity_;
  metrics::SadcSnapshot lastSnapshot_;
  hadooplog::LogBuffer ttLog_;
  hadooplog::LogBuffer dnLog_;
  hadooplog::TtLogWriter ttWriter_;
  hadooplog::DnLogWriter dnWriter_;
  NodeFaults faults_;
  syscalls::SyscallTraceModel traceModel_;
  syscalls::TraceSecond lastTrace_;
  double dnReadBytes_ = 0.0;
  double dnWriteBytes_ = 0.0;
  int runningTasks_ = 0;
  int hungTasks_ = 0;
  int spinningTasks_ = 0;
  std::vector<metrics::ProcessActivity> extraProcesses_;
};

}  // namespace asdf::hadoop
