#include "hadoop/tasktracker.h"

#include <algorithm>
#include <cassert>

namespace asdf::hadoop {

TaskTracker::TaskTracker(ClusterView& cluster, Node& node)
    : cluster_(cluster), node_(node) {}

int TaskTracker::runningMapCount() const {
  int n = 0;
  for (const auto& a : running_) n += a->isMap() ? 1 : 0;
  return n;
}

int TaskTracker::runningReduceCount() const {
  return static_cast<int>(running_.size()) - runningMapCount();
}

int TaskTracker::freeMapSlots() const {
  return cluster_.params().mapSlots - runningMapCount();
}

int TaskTracker::freeReduceSlots() const {
  return cluster_.params().reduceSlots - runningReduceCount();
}

TaskAttempt& TaskTracker::launch(Job& job, bool isMap, int taskIndex,
                                 SimTime now) {
  assert((isMap ? freeMapSlots() : freeReduceSlots()) > 0);
  const int serial = job.nextAttemptSerial(isMap, taskIndex);
  auto attempt = std::make_unique<TaskAttempt>(cluster_, job, isMap,
                                               taskIndex, serial, node_);
  attempt->start(now);
  job.noteAttemptStarted(isMap, taskIndex);
  ++launchedTasks_;
  running_.push_back(std::move(attempt));
  return *running_.back();
}

void TaskTracker::requestResources(SimTime now) {
  for (auto& a : running_) a->requestResources(now);
  node_.setRunningTasks(static_cast<int>(running_.size()));
}

void TaskTracker::advance(SimTime now, double dt) {
  for (std::size_t i = 0; i < running_.size();) {
    TaskAttempt& a = *running_[i];
    const TaskOutcome outcome = a.advance(now, dt);
    if (outcome == TaskOutcome::kRunning) {
      ++i;
      continue;
    }
    Report::Entry e;
    e.jobId = a.job().id();
    e.isMap = a.isMap();
    e.taskIndex = a.taskIndex();
    e.failed = outcome == TaskOutcome::kFailed;
    e.duration = a.runtime(now);
    e.node = node_.id();
    pending_.finished.push_back(e);
    a.job().noteAttemptEnded(a.isMap(), a.taskIndex());
    if (e.failed) {
      ++failedTasks_;
    } else {
      ++completedTasks_;
    }
    running_.erase(running_.begin() + static_cast<long>(i));
  }
}

TaskTracker::Report TaskTracker::takeReport() {
  Report out = std::move(pending_);
  pending_ = Report{};
  return out;
}

bool TaskTracker::killAttempt(JobId jobId, bool isMap, int taskIndex,
                              SimTime now) {
  for (std::size_t i = 0; i < running_.size(); ++i) {
    TaskAttempt& a = *running_[i];
    if (a.job().id() == jobId && a.isMap() == isMap &&
        a.taskIndex() == taskIndex) {
      a.kill(now);
      a.job().noteAttemptEnded(isMap, taskIndex);
      running_.erase(running_.begin() + static_cast<long>(i));
      return true;
    }
  }
  return false;
}

}  // namespace asdf::hadoop
