#include "hadoop/node.h"

#include "common/strings.h"

namespace asdf::hadoop {

Node::Node(NodeId id, const HadoopParams& params, Rng rng)
    : id_(id),
      ip_(strformat("10.250.0.%d", id + 1)),
      params_(params),
      cpu_(params.cores),
      disk_(params.diskBytesPerSec),
      nic_(params.nicBytesPerSec),
      osModel_(
          metrics::NodeOsModel::Params{params.cores, params.memTotalBytes,
                                       params.nicBytesPerSec * 8.0 / 1.0e6,
                                       1500.0, 0.02},
          rng),
      ttWriter_(&ttLog_),
      dnWriter_(&dnLog_),
      traceModel_(syscalls::SyscallTraceModel::Params{}, rng.split()) {}

void Node::beginTick() {
  cpu_.beginTick();
  disk_.beginTick();
  nic_.beginTick();
  // Note: activity_ is NOT cleared here — it accumulates until
  // endTick() consumes it, so contributions from events that fire
  // between ticks (heartbeats, RPC daemons) are not lost.
}

void Node::finalizeResources() {
  cpu_.finalize();
  disk_.finalize();
  nic_.finalize();
}

void Node::endTick(SimTime now) {
  // Daemon baseline: the TaskTracker and DataNode JVMs idle at a tiny
  // CPU cost and grow modestly with hosted work. Log appends charge
  // the disk.
  const double logBytes = ttLog_.drainNewBytes() + dnLog_.drainNewBytes();
  activity_.diskWriteBytes += logBytes;

  metrics::ProcessActivity tt;
  tt.name = "TaskTracker";
  tt.cpuUserCores = 0.015 + 0.004 * runningTasks_;
  tt.cpuSystemCores = 0.005 + 0.002 * runningTasks_;
  tt.rssBytes = 1.8e8 + 1.0e7 * runningTasks_;
  tt.threads = 24 + 4 * runningTasks_;
  tt.fds = 90 + 12 * runningTasks_;
  tt.writeBytes = logBytes * 0.5;

  metrics::ProcessActivity dn;
  dn.name = "DataNode";
  dn.cpuUserCores = 0.008 + (dnReadBytes_ + dnWriteBytes_) / 4.0e9;
  dn.cpuSystemCores = 0.004 + (dnReadBytes_ + dnWriteBytes_) / 8.0e9;
  dn.rssBytes = 1.2e8;
  dn.threads = 18;
  dn.fds = 60;
  dn.readBytes = dnReadBytes_;
  dn.writeBytes = dnWriteBytes_;

  activity_.cpuUserCores += tt.cpuUserCores + dn.cpuUserCores;
  activity_.cpuSystemCores += tt.cpuSystemCores + dn.cpuSystemCores;
  activity_.memUsedBytes += params_.daemonMemBytes;
  activity_.processCount += 2;

  activity_.processes.push_back(tt);
  activity_.processes.push_back(dn);
  for (const auto& p : extraProcesses_) activity_.processes.push_back(p);

  lastSnapshot_ = osModel_.tick(now, activity_);
  lastTrace_ = traceModel_.tick(activity_, hungTasks_, spinningTasks_);

  activity_ = metrics::NodeActivity{};
  dnReadBytes_ = 0.0;
  dnWriteBytes_ = 0.0;
  hungTasks_ = 0;
  spinningTasks_ = 0;
  extraProcesses_.clear();
}

}  // namespace asdf::hadoop
