#include "hadoop/cluster.h"

#include <cassert>

namespace asdf::hadoop {
namespace {

// Heartbeat RPC payload, request + response (status report, task
// actions). Tiny relative to data traffic; recorded for realism.
constexpr double kHeartbeatBytes = 1200.0;

}  // namespace

Cluster::Cluster(HadoopParams params, std::uint64_t seed,
                 sim::SimEngine& engine)
    : params_(params),
      layout_(params.slaveCount, params.topology),
      rng_(seed),
      engine_(engine),
      nameNode_(params.slaveCount, params.replication),
      jobTracker_(*this, nameNode_) {
  assert(params_.slaveCount >= 1);
  if (!layout_.flat()) {
    uplinks_ = std::make_unique<topology::UplinkPlane>(
        layout_, layout_.uplinkBytesPerSec());
  }
  for (NodeId id = 0; id <= params_.slaveCount; ++id) {
    nodes_.push_back(std::make_unique<Node>(id, params_, rng_.split()));
    nodes_.back()->setTopology(layout_.rackOf(id), uplinks_.get());
  }
  std::vector<TaskTracker*> tts;
  for (NodeId id = 1; id <= params_.slaveCount; ++id) {
    tts_.push_back(std::make_unique<TaskTracker>(*this, *nodes_[id]));
    tts.push_back(tts_.back().get());
  }
  jobTracker_.setTaskTrackers(std::move(tts));
  jobTracker_.onJobComplete = [this](Job& job, SimTime now) {
    if (onJobComplete) onJobComplete(job, now);
    scheduleCleanup(job, now);
  };
}

Cluster::~Cluster() = default;

Node& Cluster::node(NodeId id) {
  assert(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return *nodes_[static_cast<std::size_t>(id)];
}

TaskTracker& Cluster::taskTracker(NodeId id) {
  assert(id >= 1 && id <= params_.slaveCount);
  return *tts_[static_cast<std::size_t>(id - 1)];
}

std::vector<Node*> Cluster::slaveNodes() {
  std::vector<Node*> out;
  out.reserve(static_cast<std::size_t>(params_.slaveCount));
  for (NodeId id = 1; id <= params_.slaveCount; ++id) {
    out.push_back(nodes_[static_cast<std::size_t>(id)].get());
  }
  return out;
}

void Cluster::start() {
  // The main tick, at every whole second (phase 1.0 so the first tick
  // covers [0, 1)).
  engine_.addPeriodic(1.0, [this] { tick(); }, 1.0);

  // Staggered TaskTracker heartbeats with per-beat jitter. The jitter
  // matters for scheduling fairness: with rigid phases the same node
  // would win every scheduling race each round and soak up all the
  // reduces.
  for (std::size_t i = 0; i < tts_.size(); ++i) {
    const double phase =
        params_.heartbeatInterval *
        (0.3 + 0.7 * static_cast<double>(i) /
                   static_cast<double>(tts_.size()));
    engine_.scheduleAfter(phase, [this, i] { heartbeatAndReschedule(i); });
  }

  // Speculative-execution scan.
  engine_.addPeriodic(10.0, [this] { jobTracker_.checkSpeculation(
                                engine_.now()); },
                      10.0);
}

int Cluster::addTickHook(TickHook hook) {
  const int id = nextHookId_++;
  hooks_.emplace(id, std::move(hook));
  return id;
}

void Cluster::removeTickHook(int id) { hooks_.erase(id); }

void Cluster::tick() {
  const SimTime now = engine_.now();
  ++tickCount_;

  for (auto& n : nodes_) n->beginTick();
  if (uplinks_ != nullptr) uplinks_->beginTick();

  // Snapshot hook ids: a hook's advance may remove the hook itself
  // (e.g. the DiskHog finishing its 20 GB write).
  std::vector<int> hookIds;
  hookIds.reserve(hooks_.size());
  for (const auto& [id, hook] : hooks_) hookIds.push_back(id);

  for (auto& tt : tts_) tt->requestResources(now);
  for (int id : hookIds) {
    const auto it = hooks_.find(id);
    if (it != hooks_.end() && it->second.request) it->second.request(now);
  }

  for (auto& n : nodes_) n->finalizeResources();
  if (uplinks_ != nullptr) uplinks_->finalize();

  for (auto& tt : tts_) tt->advance(now, 1.0);
  for (int id : hookIds) {
    const auto it = hooks_.find(id);
    if (it != hooks_.end() && it->second.advance) it->second.advance(now);
  }

  for (auto& n : nodes_) n->endTick(now);
}

void Cluster::heartbeatAndReschedule(std::size_t slaveIndex) {
  heartbeat(slaveIndex);
  const double jitter = rng_.uniform(-0.4, 0.4);
  engine_.scheduleAfter(params_.heartbeatInterval + jitter,
                        [this, slaveIndex] {
                          heartbeatAndReschedule(slaveIndex);
                        });
}

void Cluster::heartbeat(std::size_t slaveIndex) {
  const SimTime now = engine_.now();
  TaskTracker& tt = *tts_[slaveIndex];
  jobTracker_.processHeartbeat(tt, now);
  // RPC traffic: slave -> master report, master -> slave actions.
  tt.node().addNetTx(kHeartbeatBytes);
  tt.node().addNetRx(kHeartbeatBytes * 0.5);
  nodes_[0]->addNetRx(kHeartbeatBytes);
  nodes_[0]->addNetTx(kHeartbeatBytes * 0.5);
  nodes_[0]->addCpuSystem(0.001);
}

void Cluster::scheduleCleanup(Job& job, SimTime now) {
  (void)now;
  // GridMix deletes a finished job's data after a short delay; the
  // deletions surface as DeleteBlock instant events on the DataNodes.
  std::vector<long> blocks = job.inputBlocks();
  blocks.insert(blocks.end(), job.outputBlocks().begin(),
                job.outputBlocks().end());
  engine_.scheduleAfter(params_.outputDeleteDelay, [this, blocks] {
    const SimTime t = engine_.now();
    for (long blockId : blocks) {
      for (NodeId replica : nameNode_.deleteBlock(blockId)) {
        node(replica).dnWriter().deletingBlock(t, blockId);
      }
    }
  });
}

}  // namespace asdf::hadoop
