// The TaskTracker daemon: hosts task attempts in map/reduce slots,
// runs them each tick, and reports outcomes to the JobTracker on its
// heartbeat (Hadoop reports status piggybacked on heartbeats, so a
// completion becomes visible to the scheduler only at the next beat).
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "hadoop/config.h"
#include "hadoop/node.h"
#include "hadoop/task.h"

namespace asdf::hadoop {

class TaskTracker {
 public:
  TaskTracker(ClusterView& cluster, Node& node);

  Node& node() { return node_; }
  NodeId nodeId() const { return node_.id(); }

  int freeMapSlots() const;
  int freeReduceSlots() const;
  int runningMapCount() const;
  int runningReduceCount() const;

  /// Launches a new attempt in a free slot (the JobTracker calls this
  /// during heartbeat processing).
  TaskAttempt& launch(Job& job, bool isMap, int taskIndex, SimTime now);

  /// Tick protocol, driven by the Cluster.
  void requestResources(SimTime now);
  void advance(SimTime now, double dt);

  /// Outcomes accumulated since the last heartbeat.
  struct Report {
    struct Entry {
      JobId jobId;
      bool isMap;
      int taskIndex;
      bool failed;
      double duration;
      NodeId node;
    };
    std::vector<Entry> finished;
  };
  Report takeReport();

  /// Kills a running attempt of the given task (speculative loser or
  /// obsolete attempt); returns true when one was found.
  bool killAttempt(JobId jobId, bool isMap, int taskIndex, SimTime now);

  const std::vector<std::unique_ptr<TaskAttempt>>& running() const {
    return running_;
  }

  /// Cumulative counters (for tests and the harness).
  long launchedTasks() const { return launchedTasks_; }
  long completedTasks() const { return completedTasks_; }
  long failedTasks() const { return failedTasks_; }

 private:
  ClusterView& cluster_;
  Node& node_;
  std::vector<std::unique_ptr<TaskAttempt>> running_;
  Report pending_;
  long launchedTasks_ = 0;
  long completedTasks_ = 0;
  long failedTasks_ = 0;
};

}  // namespace asdf::hadoop
