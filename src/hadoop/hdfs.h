// HDFS substrate: the NameNode's block map plus block-transfer
// helpers. DataNodes have no separate class — a DataNode is the
// storage personality of a Node (its disk, NIC and dnLog) — so this
// file also provides BlockTransfer, the two-endpoint network transfer
// primitive used for remote reads, shuffle fetches and write-pipeline
// replication.
#pragma once

#include <limits>
#include <map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "hadoop/node.h"
#include "topology/uplink.h"

namespace asdf::hadoop {

/// Registers a cross-rack uplink demand for one src -> dst stream of
/// `bytes` this tick. Inert (and free) on flat topologies, same-rack
/// pairs, loopbacks, and off-fabric endpoints.
inline topology::UplinkFlow requestUplink(Node& src, Node& dst,
                                          double bytes) {
  topology::UplinkPlane* uplinks = src.uplinks();
  if (uplinks == nullptr || &src == &dst) return topology::UplinkFlow{};
  return uplinks->request(src.rack(), dst.rack(), bytes);
}

/// The flow's uplink grant: min of the two rack shares, +infinity for
/// an inert flow so callers can min() it unconditionally.
inline double uplinkGranted(Node& src, const topology::UplinkFlow& flow) {
  topology::UplinkPlane* uplinks = src.uplinks();
  if (uplinks == nullptr || flow.inert()) {
    return std::numeric_limits<double>::infinity();
  }
  return uplinks->granted(flow);
}

/// The NameNode: allocates block ids and tracks replica placement.
/// Runs on the master node; its CPU footprint is negligible and folded
/// into the master's daemon baseline.
class NameNode {
 public:
  explicit NameNode(int slaveCount, int replication)
      : slaveCount_(slaveCount), replication_(replication) {}

  /// Creates the blocks of a file of the given size, placing replicas
  /// uniformly at random across distinct slaves (HDFS default policy
  /// flattened: the simulated cluster is a single rack). Returns the
  /// new block ids.
  std::vector<long> createFile(double bytes, double blockBytes, Rng& rng);

  /// Creates one block with its first replica on `preferred` (HDFS
  /// writes place the first replica on the writer's node).
  long createBlock(NodeId preferred, Rng& rng);

  const std::vector<NodeId>& replicas(long blockId) const;

  /// Removes the block from the namespace, returning where its
  /// replicas lived (so DataNodes can log the deletions).
  std::vector<NodeId> deleteBlock(long blockId);

  std::size_t blockCount() const { return locations_.size(); }

 private:
  std::vector<NodeId> pickReplicas(NodeId preferred, Rng& rng);

  int slaveCount_;
  int replication_;
  long nextBlockId_ = 1000;
  std::map<long, std::vector<NodeId>> locations_;
};

/// A byte stream between two nodes' NICs (plus the source disk when
/// the payload is read from storage). Demands are re-issued each tick;
/// progress is the minimum of the granted amounts at both endpoints,
/// with packet loss already folded into NIC grants. Loss on *either*
/// end throttles the transfer — that is how the PacketLoss fault on
/// one node degrades its peers' shuffle fetches.
class BlockTransfer {
 public:
  /// src == dst models a loopback (local disk read only).
  BlockTransfer(Node* src, Node* dst, double bytes, bool readsSrcDisk);

  /// Registers this tick's demands. No-op when complete. Serving a
  /// block costs the source CPU (HDFS checksums every chunk), so a
  /// CPU-starved DataNode serves slowly — transfers pile up on it.
  void requestResources();

  /// Caps this tick's progress at `factor` (0..1) of the granted
  /// bytes; the consumer applies its own CPU squeeze (a task whose
  /// CPU share was cut cannot pump bytes at full rate). Reset to 1
  /// after each advance().
  void setConsumerThrottle(double factor);

  /// Consumes grants, records activity on both nodes, and returns the
  /// bytes moved this tick.
  double advance(double dt);

  bool complete() const { return remaining_ <= 0.0; }
  double remainingBytes() const { return remaining_; }
  double totalBytes() const { return total_; }
  Node* src() const { return src_; }
  Node* dst() const { return dst_; }

 private:
  Node* src_;
  Node* dst_;
  double total_;
  double remaining_;
  bool readsSrcDisk_;
  double consumerThrottle_ = 1.0;
  int hSrcNic_ = -1;
  int hDstNic_ = -1;
  int hSrcDisk_ = -1;
  int hSrcCpu_ = -1;
  topology::UplinkFlow flow_;
  bool requested_ = false;
};

/// CPU cores a DataNode burns to serve one remote block stream at
/// full rate (checksumming + copying).
inline constexpr double kServeCpuCores = 0.08;

}  // namespace asdf::hadoop
