#include "hadoop/hdfs.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace asdf::hadoop {

std::vector<NodeId> NameNode::pickReplicas(NodeId preferred, Rng& rng) {
  std::vector<NodeId> out;
  const int want = std::min(replication_, slaveCount_);
  if (preferred >= 1 && preferred <= slaveCount_) out.push_back(preferred);
  while (static_cast<int>(out.size()) < want) {
    const auto candidate =
        static_cast<NodeId>(rng.uniformInt(1, slaveCount_));
    if (std::find(out.begin(), out.end(), candidate) == out.end()) {
      out.push_back(candidate);
    }
  }
  return out;
}

std::vector<long> NameNode::createFile(double bytes, double blockBytes,
                                       Rng& rng) {
  assert(blockBytes > 0);
  const int blocks = std::max(1, static_cast<int>(std::ceil(bytes / blockBytes)));
  std::vector<long> ids;
  ids.reserve(static_cast<std::size_t>(blocks));
  for (int i = 0; i < blocks; ++i) {
    const long id = nextBlockId_++;
    locations_[id] = pickReplicas(kInvalidNode, rng);
    ids.push_back(id);
  }
  return ids;
}

long NameNode::createBlock(NodeId preferred, Rng& rng) {
  const long id = nextBlockId_++;
  locations_[id] = pickReplicas(preferred, rng);
  return id;
}

const std::vector<NodeId>& NameNode::replicas(long blockId) const {
  static const std::vector<NodeId> kEmpty;
  const auto it = locations_.find(blockId);
  return it == locations_.end() ? kEmpty : it->second;
}

std::vector<NodeId> NameNode::deleteBlock(long blockId) {
  const auto it = locations_.find(blockId);
  if (it == locations_.end()) return {};
  std::vector<NodeId> where = it->second;
  locations_.erase(it);
  return where;
}

BlockTransfer::BlockTransfer(Node* src, Node* dst, double bytes,
                             bool readsSrcDisk)
    : src_(src),
      dst_(dst),
      total_(bytes),
      remaining_(bytes),
      readsSrcDisk_(readsSrcDisk) {
  assert(src != nullptr && dst != nullptr && bytes >= 0.0);
}

void BlockTransfer::requestResources() {
  requested_ = false;
  if (complete()) return;
  requested_ = true;
  if (readsSrcDisk_) {
    hSrcDisk_ = src_->disk().request(remaining_);
  }
  if (src_ != dst_) {
    hSrcNic_ = src_->nic().request(remaining_);
    hDstNic_ = dst_->nic().request(remaining_);
    hSrcCpu_ = src_->cpu().request(kServeCpuCores);
    flow_ = requestUplink(*src_, *dst_, remaining_);
  }
}

void BlockTransfer::setConsumerThrottle(double factor) {
  consumerThrottle_ = std::clamp(factor, 0.0, 1.0);
}

double BlockTransfer::advance(double dt) {
  (void)dt;  // demands are already per-tick amounts
  if (!requested_ || complete()) return 0.0;
  double moved = remaining_;
  double diskGrant = remaining_;
  if (readsSrcDisk_) {
    diskGrant = src_->disk().granted(hSrcDisk_);
    moved = std::min(moved, diskGrant);
  }
  if (src_ != dst_) {
    moved = std::min(moved, src_->nic().granted(hSrcNic_));
    moved = std::min(moved, dst_->nic().granted(hDstNic_));
    moved = std::min(moved, uplinkGranted(*src_, flow_));
    // The server cannot checksum faster than its CPU share allows.
    const double serveCpu = src_->cpu().granted(hSrcCpu_);
    moved *= serveCpu / kServeCpuCores;
    src_->addCpuSystem(serveCpu);
  }
  moved *= consumerThrottle_;
  consumerThrottle_ = 1.0;
  moved = std::min(moved, remaining_);
  remaining_ -= moved;

  if (readsSrcDisk_) src_->addDiskRead(std::min(moved, diskGrant));
  if (src_ != dst_) {
    src_->addNetTx(moved);
    dst_->addNetRx(moved);
    // Packets the lossy ends attempted but dropped: loss p wastes
    // p/(1-p) extra packets per delivered packet.
    constexpr double kPkt = 1500.0;
    const double srcLoss = src_->nic().lossRate();
    const double dstLoss = dst_->nic().lossRate();
    if (srcLoss > 0.0) {
      src_->addNetTxDrops(moved / kPkt * srcLoss / (1.0 - srcLoss));
    }
    if (dstLoss > 0.0) {
      dst_->addNetRxDrops(moved / kPkt * dstLoss / (1.0 - dstLoss));
    }
  }
  return moved;
}

}  // namespace asdf::hadoop
