// MapReduce job specification and runtime state.
//
// A JobSpec describes the work (GridMix-style: input size, reduce
// count, CPU intensity, map-output and job-output ratios); a Job adds
// the bookkeeping the JobTracker needs — pending/running/done tasks,
// shuffle production per source node, completed-duration statistics
// for speculative execution.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "hadoop/hdfs.h"

namespace asdf::hadoop {

/// The five GridMix job classes (Section 4.7: "GridMix comprises 5
/// different job types, ranging from an interactive workload that
/// samples a large dataset, to a large sort of uncompressed data").
enum class JobType : int {
  kWebdataSample = 0,  // interactive sampling of a large dataset
  kMonsterQuery,       // multi-stage pipeline query
  kWebdataSort,        // large sort of uncompressed web data
  kStreamingSort,      // streaming-API sort
  kCombiner,           // word-count style aggregation with combiner
};
inline constexpr int kJobTypeCount = 5;

const char* jobTypeName(JobType type);

struct JobSpec {
  JobType type = JobType::kWebdataSort;
  std::string name = "job";
  double inputBytes = 128.0e6;
  int numReduces = 4;
  double mapCpuPerByte = 2.0e-8;     // cpu-seconds per input byte
  double mapOutputRatio = 1.0;       // map output bytes / input bytes
  double reduceCpuPerByte = 1.0e-8;  // cpu-seconds per shuffled byte
  double outputRatio = 1.0;          // job output bytes / input bytes
};

/// Runtime state of a submitted job.
class Job {
 public:
  Job(JobId id, JobSpec spec, double blockBytes, NameNode& nameNode,
      int slaveCount, Rng& rng);

  JobId id() const { return id_; }
  const JobSpec& spec() const { return spec_; }

  int numMaps() const { return numMaps_; }
  int numReduces() const { return spec_.numReduces; }
  int completedMaps() const { return completedMaps_; }
  int completedReduces() const { return completedReduces_; }
  bool mapsComplete() const { return completedMaps_ == numMaps_; }
  bool complete() const {
    return mapsComplete() && completedReduces_ == spec_.numReduces;
  }

  /// The input block a map task reads.
  long inputBlock(int mapIndex) const;

  /// Bytes each map contributes to each reduce's shuffle.
  double mapOutputPerReducePerMap() const;

  /// Bytes a reduce writes to HDFS.
  double outputBytesPerReduce() const;

  /// Total bytes one reduce must shuffle.
  double shuffleBytesPerReduce() const;

  // --- task scheduling state (driven by the JobTracker) ---------------
  std::deque<int>& pendingMaps() { return pendingMaps_; }
  std::deque<int>& pendingReduces() { return pendingReduces_; }
  bool mapDone(int index) const { return mapDone_[index] != 0; }
  bool reduceDone(int index) const { return reduceDone_[index] != 0; }
  int runningAttempts(bool isMap, int index) const;
  void noteAttemptStarted(bool isMap, int index);
  void noteAttemptEnded(bool isMap, int index);
  /// Next attempt serial for task ids (task_X_m_NNN_<serial>).
  int nextAttemptSerial(bool isMap, int index);
  /// Failed (re-queued) attempts so far for the task.
  int failureCount(bool isMap, int index) const;
  void noteFailure(bool isMap, int index);

  /// Marks a map finished on `node`; shuffle output becomes available
  /// there. Returns false when the task was already completed by
  /// another (speculative) attempt.
  bool completeMap(int index, NodeId node, double duration);
  bool completeReduce(int index, double duration);

  /// Map-output bytes available for *each* reduce on the given node.
  double shuffleAvailable(NodeId node) const;

  /// HDFS blocks written by this job's reduces (recorded for cleanup).
  void addOutputBlock(long blockId) { outputBlocks_.push_back(blockId); }
  const std::vector<long>& outputBlocks() const { return outputBlocks_; }
  const std::vector<long>& inputBlocks() const { return inputBlocks_; }

  const std::vector<double>& completedMapDurations() const {
    return mapDurations_;
  }
  const std::vector<double>& completedReduceDurations() const {
    return reduceDurations_;
  }

  SimTime submitTime = 0.0;
  SimTime finishTime = kNoTime;

 private:
  JobId id_;
  JobSpec spec_;
  int numMaps_;
  std::vector<long> inputBlocks_;  // one per map
  std::deque<int> pendingMaps_;
  std::deque<int> pendingReduces_;
  std::vector<char> mapDone_;
  std::vector<char> reduceDone_;
  std::vector<int> mapRunning_;
  std::vector<int> reduceRunning_;
  std::vector<int> mapAttemptSerial_;
  std::vector<int> reduceAttemptSerial_;
  std::vector<int> mapFailures_;
  std::vector<int> reduceFailures_;
  std::vector<double> shuffleAvailPerNode_;  // indexed by NodeId
  std::vector<long> outputBlocks_;
  int completedMaps_ = 0;
  int completedReduces_ = 0;
  std::vector<double> mapDurations_;
  std::vector<double> reduceDurations_;
};

}  // namespace asdf::hadoop
