// Map and reduce task attempts: per-tick resource consumption, phase
// state machines, log emission, and the fault hooks through which the
// Table 2 application bugs manifest.
//
// Map attempt:    READ input block -> COMPUTE -> SPILL map output
// Reduce attempt: COPY (shuffle)   -> SORT    -> REDUCE+write output
//
// Each phase registers demands on the relevant nodes' resources (two-
// phase: request, then advance on the grants), so contention — from
// peers, from fault hogs, from a lossy NIC — slows tasks exactly the
// way the paper's injected problems slow real Hadoop tasks.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "hadoop/config.h"
#include "hadoop/hdfs.h"
#include "hadoop/job.h"
#include "hadoop/node.h"

namespace asdf::hadoop {

/// Access a TaskAttempt needs to the rest of the cluster.
class ClusterView {
 public:
  virtual ~ClusterView() = default;
  virtual Node& node(NodeId id) = 0;
  virtual NameNode& nameNode() = 0;
  virtual const HadoopParams& params() const = 0;
  virtual Rng& rng() = 0;
  virtual int slaveCount() const = 0;
};

enum class TaskOutcome { kRunning, kCompleted, kFailed };

class TaskAttempt {
 public:
  TaskAttempt(ClusterView& cluster, Job& job, bool isMap, int taskIndex,
              int attemptSerial, Node& host);
  ~TaskAttempt();

  TaskAttempt(const TaskAttempt&) = delete;
  TaskAttempt& operator=(const TaskAttempt&) = delete;

  const std::string& attemptId() const { return id_; }
  bool isMap() const { return isMap_; }
  int taskIndex() const { return taskIndex_; }
  Job& job() { return job_; }
  Node& host() { return host_; }
  SimTime startTime() const { return startTime_; }
  double runtime(SimTime now) const { return now - startTime_; }

  /// Emits LaunchTaskAction and enters the first phase.
  void start(SimTime now);

  /// Phase 1 of a tick: register demands.
  void requestResources(SimTime now);

  /// Phase 2 of a tick: consume grants, advance, emit logs.
  /// Returns kCompleted / kFailed exactly once.
  TaskOutcome advance(SimTime now, double dt);

  /// Speculative-execution loser: logs KillTaskAction and closes any
  /// open block-transfer log states.
  void kill(SimTime now);

  /// Rough completion fraction, for progress lines and tests.
  double progressFraction() const;

  /// True once a fault hook froze this attempt (it will never finish).
  bool hung() const { return hung_; }

 private:
  enum class Phase {
    kMapRead,
    kMapCompute,
    kMapSpill,
    kReduceCopy,
    kReduceSort,
    kReduceWrite,
    kDone,
  };

  void enterPhase(Phase phase, SimTime now);
  const char* reducePhaseName() const;
  void maybeLogProgress(SimTime now);
  void closeOpenReadLog(SimTime now);

  // Per-phase helpers.
  void requestMapRead();
  void requestCpuWork(double maxCores);
  void requestDiskWrite(Node& node, double remaining, int& handle);

  ClusterView& cluster_;
  Job& job_;
  bool isMap_;
  int taskIndex_;
  std::string id_;
  Node& host_;
  Phase phase_ = Phase::kMapRead;
  SimTime startTime_ = 0.0;
  SimTime phaseStart_ = 0.0;
  SimTime lastProgressLog_ = -1.0e9;
  bool hung_ = false;

  // Map state.
  Node* readSource_ = nullptr;  // replica being read (may be host)
  bool readLogOpen_ = false;
  std::unique_ptr<BlockTransfer> readTransfer_;
  double cpuRemaining_ = 0.0;
  double cpuTotal_ = 0.0;
  double spillRemaining_ = 0.0;
  double spillTotal_ = 0.0;
  int hCpu_ = -1;
  int hSpillDisk_ = -1;

  // Reduce shuffle state.
  struct FetchStream {
    NodeId source = kInvalidNode;
    int hSrcDisk = -1;
    int hSrcNic = -1;
    int hDstNic = -1;
    int hSrcCpu = -1;  // the server's checksum CPU
    topology::UplinkFlow flow;  // cross-rack uplink share (inert if same rack)
    double requested = 0.0;
  };
  std::map<NodeId, double> fetched_;  // bytes fetched per source node
  double fetchedTotal_ = 0.0;
  std::vector<FetchStream> streams_;  // this tick's active fetches
  int nextSourceRotation_ = 0;
  SimTime lastCopyFailLog_ = -1.0e9;

  // Reduce sort/write state.
  double sortRemaining_ = 0.0;
  double sortTotal_ = 0.0;
  int hSortRead_ = -1;
  int hSortWrite_ = -1;
  double writeRemaining_ = 0.0;
  double writeTotal_ = 0.0;
  NodeId replica2_ = kInvalidNode;
  NodeId replica3_ = kInvalidNode;
  int hWriteDiskLocal_ = -1;
  int hWriteNicTx_ = -1;
  int hWriteR2Rx_ = -1;
  int hWriteR2Disk_ = -1;
  int hWriteR2Tx_ = -1;
  int hWriteR3Rx_ = -1;
  int hWriteR3Disk_ = -1;
  topology::UplinkFlow writeFlow2_;  // host -> r2 pipeline hop
  topology::UplinkFlow writeFlow3_;  // r2 -> r3 pipeline hop
  double writtenSinceBlockStart_ = 0.0;
  long currentOutBlock_ = -1;
  bool requestedThisTick_ = false;
};

}  // namespace asdf::hadoop
