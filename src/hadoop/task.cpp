#include "hadoop/task.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "hadooplog/writer.h"

namespace asdf::hadoop {
namespace {

// Caps on single-stream per-tick demand: one TCP stream / one
// sequential file writer cannot saturate more than this on its own,
// which keeps proportional sharing fair between concurrent tasks.
constexpr double kMaxNetStreamBytesPerTick = 48.0e6;
constexpr double kMaxDiskStreamBytesPerTick = 64.0e6;
constexpr double kShuffleParallelFetches = 8;
constexpr double kEps = 1.0;  // byte slop for completion checks

}  // namespace

TaskAttempt::TaskAttempt(ClusterView& cluster, Job& job, bool isMap,
                         int taskIndex, int attemptSerial, Node& host)
    : cluster_(cluster),
      job_(job),
      isMap_(isMap),
      taskIndex_(taskIndex),
      id_(hadooplog::makeTaskAttemptId(job.id(), isMap, taskIndex,
                                       attemptSerial)),
      host_(host) {}

TaskAttempt::~TaskAttempt() = default;

void TaskAttempt::start(SimTime now) {
  startTime_ = now;
  host_.ttWriter().launchTask(now, id_);
  host_.addForks(1.0);

  const auto& p = cluster_.params();
  if (isMap_) {
    // Choose the replica to read: data-local when possible.
    const long block = job_.inputBlock(taskIndex_);
    const auto& replicas = cluster_.nameNode().replicas(block);
    NodeId source = host_.id();
    if (std::find(replicas.begin(), replicas.end(), host_.id()) ==
        replicas.end()) {
      assert(!replicas.empty());
      source = replicas[static_cast<std::size_t>(cluster_.rng().uniformInt(
          0, static_cast<long>(replicas.size()) - 1))];
    }
    readSource_ = &cluster_.node(source);
    readTransfer_ = std::make_unique<BlockTransfer>(
        readSource_, &host_, p.blockBytes, /*readsSrcDisk=*/true);
    readSource_->dnWriter().servingBlock(now, block, host_.ip());
    readLogOpen_ = true;
    cpuTotal_ = cpuRemaining_ = p.blockBytes * job_.spec().mapCpuPerByte;
    spillTotal_ = spillRemaining_ =
        p.blockBytes * job_.spec().mapOutputRatio;
    enterPhase(Phase::kMapRead, now);
  } else {
    fetchedTotal_ = 0.0;
    sortTotal_ = sortRemaining_ = job_.shuffleBytesPerReduce();
    writeTotal_ = writeRemaining_ = job_.outputBytesPerReduce();
    cpuTotal_ = cpuRemaining_ =
        job_.shuffleBytesPerReduce() * job_.spec().reduceCpuPerByte;
    enterPhase(Phase::kReduceCopy, now);
    // Announce the copy phase so the log parser sees the entrance.
    host_.ttWriter().reduceProgress(now, id_, 0.0, "copy", 0,
                                    job_.numMaps());
    lastProgressLog_ = now;
  }
}

void TaskAttempt::enterPhase(Phase phase, SimTime now) {
  phase_ = phase;
  phaseStart_ = now;
}

const char* TaskAttempt::reducePhaseName() const {
  switch (phase_) {
    case Phase::kReduceCopy:
      return "copy";
    case Phase::kReduceSort:
      return "sort";
    case Phase::kReduceWrite:
      return "reduce";
    default:
      return "copy";
  }
}

double TaskAttempt::progressFraction() const {
  auto frac = [](double remaining, double total) {
    return total <= 0.0 ? 1.0 : 1.0 - remaining / total;
  };
  if (isMap_) {
    const double read =
        readTransfer_ ? frac(readTransfer_->remainingBytes(),
                             readTransfer_->totalBytes())
                      : 1.0;
    return 0.2 * read + 0.6 * frac(cpuRemaining_, cpuTotal_) +
           0.2 * frac(spillRemaining_, spillTotal_);
  }
  const double copy =
      sortTotal_ <= 0.0 ? 1.0 : fetchedTotal_ / std::max(1.0, sortTotal_);
  return 0.34 * std::min(1.0, copy) + 0.33 * frac(sortRemaining_, sortTotal_) +
         0.33 * frac(writeRemaining_, writeTotal_);
}

void TaskAttempt::maybeLogProgress(SimTime now) {
  if (now - lastProgressLog_ < cluster_.params().progressLogInterval) return;
  lastProgressLog_ = now;
  if (isMap_) {
    host_.ttWriter().mapProgress(now, id_, progressFraction());
  } else {
    const int copied = static_cast<int>(
        std::round(std::min(1.0, sortTotal_ <= 0 ? 1.0
                                                 : fetchedTotal_ / sortTotal_) *
                   job_.numMaps()));
    host_.ttWriter().reduceProgress(now, id_, progressFraction(),
                                    reducePhaseName(), copied,
                                    job_.numMaps());
  }
}

void TaskAttempt::closeOpenReadLog(SimTime now) {
  if (readLogOpen_ && readSource_ != nullptr) {
    readSource_->dnWriter().servedBlock(now, job_.inputBlock(taskIndex_),
                                        host_.ip());
    readLogOpen_ = false;
  }
}

void TaskAttempt::requestCpuWork(double maxCores) {
  const double want = std::min(maxCores, cpuRemaining_);
  hCpu_ = host_.cpu().request(std::max(0.0, want));
}

void TaskAttempt::requestDiskWrite(Node& node, double remaining,
                                   int& handle) {
  handle = node.disk().request(
      std::min(remaining, kMaxDiskStreamBytesPerTick));
}

void TaskAttempt::requestResources(SimTime now) {
  (void)now;
  requestedThisTick_ = true;
  const auto& p = cluster_.params();
  host_.addMemUsed(p.taskMemBytes);
  host_.addProcesses(1);
  hCpu_ = -1;

  switch (phase_) {
    case Phase::kMapRead: {
      readTransfer_->requestResources();
      hCpu_ = host_.cpu().request(p.mapReadCpuCores);
      break;
    }
    case Phase::kMapCompute: {
      host_.addRunnable(1);
      if (hung_ || host_.faults().mapHang) {
        // HADOOP-1036: the unhandled exception leaves the task in an
        // infinite loop — it burns a full core but makes no progress.
        hCpu_ = host_.cpu().request(1.0);
        host_.addSpinningTask();
      } else {
        requestCpuWork(1.0);
      }
      break;
    }
    case Phase::kMapSpill: {
      hCpu_ = host_.cpu().request(p.mapSpillCpuCores);
      requestDiskWrite(host_, spillRemaining_, hSpillDisk_);
      break;
    }
    case Phase::kReduceCopy: {
      hCpu_ = host_.cpu().request(p.reduceCopyCpuCores);
      streams_.clear();
      // Fetch map output from up to kShuffleParallelFetches source
      // nodes that still hold un-fetched output, round-robin for
      // fairness across sources.
      const int slaves = cluster_.slaveCount();
      int examined = 0;
      for (int k = 0; k < slaves &&
                      static_cast<double>(streams_.size()) <
                          kShuffleParallelFetches;
           ++k) {
        const NodeId s =
            static_cast<NodeId>(1 + (nextSourceRotation_ + k) % slaves);
        ++examined;
        const double avail = job_.shuffleAvailable(s) - fetched_[s];
        if (avail <= kEps) continue;
        FetchStream stream;
        stream.source = s;
        Node& src = cluster_.node(s);
        stream.requested = std::min(avail, p.shuffleStreamBytesPerSec);
        stream.hSrcDisk = src.disk().request(stream.requested);
        stream.hSrcNic = src.nic().request(stream.requested);
        stream.hDstNic = host_.nic().request(stream.requested);
        stream.hSrcCpu = src.cpu().request(kServeCpuCores);
        stream.flow = requestUplink(src, host_, stream.requested);
        streams_.push_back(stream);
      }
      nextSourceRotation_ = (nextSourceRotation_ + examined) % slaves;
      host_.addTcpConnections(static_cast<int>(streams_.size()));
      break;
    }
    case Phase::kReduceSort: {
      host_.addRunnable(1);
      if (hung_) {
        // HADOOP-2080: hung on a miscomputed checksum — near-idle,
        // spinning on a futex.
        hCpu_ = host_.cpu().request(0.02);
        host_.addHungTask();
      } else {
        hCpu_ = host_.cpu().request(p.reduceSortCpuCores);
        const double want =
            std::min(sortRemaining_, kMaxDiskStreamBytesPerTick);
        hSortRead_ = host_.disk().request(want);
        hSortWrite_ = host_.disk().request(want);
      }
      break;
    }
    case Phase::kReduceWrite: {
      host_.addRunnable(1);
      requestCpuWork(1.0);
      const double want =
          std::min(writeRemaining_, kMaxDiskStreamBytesPerTick);
      hWriteDiskLocal_ = host_.disk().request(want);
      Node& r2 = cluster_.node(replica2_);
      Node& r3 = cluster_.node(replica3_);
      hWriteNicTx_ = host_.nic().request(want);
      hWriteR2Rx_ = r2.nic().request(want);
      hWriteR2Disk_ = r2.disk().request(want);
      hWriteR2Tx_ = r2.nic().request(want);
      hWriteR3Rx_ = r3.nic().request(want);
      hWriteR3Disk_ = r3.disk().request(want);
      writeFlow2_ = requestUplink(host_, r2, want);
      writeFlow3_ = requestUplink(r2, r3, want);
      break;
    }
    case Phase::kDone:
      break;
  }
}

TaskOutcome TaskAttempt::advance(SimTime now, double dt) {
  if (!requestedThisTick_) return TaskOutcome::kRunning;
  requestedThisTick_ = false;
  const auto& p = cluster_.params();

  switch (phase_) {
    case Phase::kMapRead: {
      const double cpu = host_.cpu().granted(hCpu_);
      // A CPU-squeezed reader cannot deserialize at full rate.
      readTransfer_->setConsumerThrottle(cpu / p.mapReadCpuCores);
      const double moved = readTransfer_->advance(dt);
      readSource_->addDnBytes(moved, 0.0);
      host_.addCpuUser(cpu * 0.5);
      host_.addCpuIowait(cpu * 0.5);
      if (readTransfer_->complete()) {
        closeOpenReadLog(now);
        enterPhase(Phase::kMapCompute, now);
      }
      break;
    }
    case Phase::kMapCompute: {
      const double cpu = host_.cpu().granted(hCpu_);
      host_.addCpuUser(cpu);
      if (hung_ || host_.faults().mapHang) {
        hung_ = true;  // latched: the loop never exits
        break;
      }
      cpuRemaining_ -= cpu;
      if (cpuRemaining_ <= 1e-9) {
        cpuRemaining_ = 0.0;
        enterPhase(Phase::kMapSpill, now);
      }
      break;
    }
    case Phase::kMapSpill: {
      const double cpu = host_.cpu().granted(hCpu_);
      host_.addCpuUser(cpu);
      const double wrote = host_.disk().granted(hSpillDisk_) *
                           std::min(1.0, cpu / p.mapSpillCpuCores);
      host_.addDiskWrite(wrote);
      spillRemaining_ -= wrote;
      if (spillRemaining_ <= kEps) {
        spillRemaining_ = 0.0;
        host_.ttWriter().taskDone(now, id_);
        enterPhase(Phase::kDone, now);
        return TaskOutcome::kCompleted;
      }
      break;
    }
    case Phase::kReduceCopy: {
      const double cpu = host_.cpu().granted(hCpu_);
      host_.addCpuUser(cpu);
      // The fetcher's CPU share caps its aggregate copy rate.
      const double cpuFactor = std::min(1.0, cpu / p.reduceCopyCpuCores);
      const bool failing = host_.faults().reduceCopyFail;
      for (const auto& s : streams_) {
        Node& src = cluster_.node(s.source);
        double moved = std::min(src.disk().granted(s.hSrcDisk),
                                std::min(src.nic().granted(s.hSrcNic),
                                         host_.nic().granted(s.hDstNic)));
        // Cross-rack fetches also share the two racks' uplinks.
        moved = std::min(moved, uplinkGranted(src, s.flow));
        // The serving TaskTracker checksums what it ships.
        const double serveCpu = src.cpu().granted(s.hSrcCpu);
        moved *= serveCpu / kServeCpuCores;
        src.addCpuSystem(serveCpu);
        moved *= cpuFactor;
        moved = std::min(moved, s.requested);
        src.addDiskRead(moved);
        src.addDnBytes(moved, 0.0);
        src.addNetTx(moved);
        host_.addNetRx(moved);
        fetched_[s.source] += moved;
        fetchedTotal_ += moved;
      }
      streams_.clear();
      if (failing && fetchedTotal_ > 0.0) {
        // HADOOP-1152: the rename of a copied map output fails. The
        // attempt limps through part of its shuffle (logging fetch
        // failures) before dying with the IOException, so doomed
        // attempts linger in ReduceCopy and then get retried — the
        // churn signature the white-box analysis keys on.
        if (now - lastCopyFailLog_ > 20.0) {
          lastCopyFailLog_ = now;
          host_.ttWriter().copyFailed(
              now, id_,
              hadooplog::makeTaskAttemptId(job_.id(), true, 0, 0));
        }
        const bool enoughCopied = fetchedTotal_ >= 0.3 * sortTotal_ - kEps;
        const bool lingered = now - phaseStart_ >= 45.0;
        if (enoughCopied && lingered) {
          host_.ttWriter().taskFailed(now, id_,
                                      "failed to rename map output");
          enterPhase(Phase::kDone, now);
          return TaskOutcome::kFailed;
        }
      }
      if (!failing && job_.mapsComplete() &&
          fetchedTotal_ >= sortTotal_ - kEps) {
        enterPhase(Phase::kReduceSort, now);
        if (host_.faults().reduceSortHang) hung_ = true;
        host_.ttWriter().reduceProgress(now, id_, progressFraction(),
                                        "sort", job_.numMaps(),
                                        job_.numMaps());
        lastProgressLog_ = now;
      }
      break;
    }
    case Phase::kReduceSort: {
      const double cpu = host_.cpu().granted(hCpu_);
      host_.addCpuUser(cpu);
      if (hung_) break;  // HADOOP-2080
      const double read = host_.disk().granted(hSortRead_);
      const double wrote = host_.disk().granted(hSortWrite_);
      const double merged = std::min(read, wrote) *
                            std::min(1.0, cpu / p.reduceSortCpuCores);
      host_.addDiskRead(merged);
      host_.addDiskWrite(merged);
      sortRemaining_ -= merged;
      if (sortRemaining_ <= kEps) {
        sortRemaining_ = 0.0;
        // Pick the two off-node replica targets for the output write.
        Rng& rng = cluster_.rng();
        const int slaves = cluster_.slaveCount();
        do {
          replica2_ = static_cast<NodeId>(rng.uniformInt(1, slaves));
        } while (replica2_ == host_.id() && slaves > 1);
        do {
          replica3_ = static_cast<NodeId>(rng.uniformInt(1, slaves));
        } while ((replica3_ == host_.id() || replica3_ == replica2_) &&
                 slaves > 2);
        enterPhase(Phase::kReduceWrite, now);
        host_.ttWriter().reduceProgress(now, id_, progressFraction(),
                                        "reduce", job_.numMaps(),
                                        job_.numMaps());
        lastProgressLog_ = now;
      }
      break;
    }
    case Phase::kReduceWrite: {
      const double cpu = host_.cpu().granted(hCpu_);
      host_.addCpuUser(cpu);
      cpuRemaining_ = std::max(0.0, cpuRemaining_ - cpu);
      Node& r2 = cluster_.node(replica2_);
      Node& r3 = cluster_.node(replica3_);
      double wrote = host_.disk().granted(hWriteDiskLocal_);
      wrote = std::min(wrote, host_.nic().granted(hWriteNicTx_));
      wrote = std::min(wrote, r2.nic().granted(hWriteR2Rx_));
      wrote = std::min(wrote, r2.disk().granted(hWriteR2Disk_));
      wrote = std::min(wrote, r2.nic().granted(hWriteR2Tx_));
      wrote = std::min(wrote, r3.nic().granted(hWriteR3Rx_));
      wrote = std::min(wrote, r3.disk().granted(hWriteR3Disk_));
      // The replication pipeline's cross-rack hops share the uplinks.
      wrote = std::min(wrote, uplinkGranted(host_, writeFlow2_));
      wrote = std::min(wrote, uplinkGranted(r2, writeFlow3_));
      // The write cannot run ahead of the reduce function itself.
      if (cpuTotal_ > 0.0 && cpuRemaining_ > 0.0) {
        const double cpuFractionLeft = cpuRemaining_ / cpuTotal_;
        const double maxWritten = writeTotal_ * (1.0 - cpuFractionLeft);
        wrote = std::min(wrote, std::max(0.0, maxWritten -
                                                  (writeTotal_ -
                                                   writeRemaining_)));
      }
      host_.addDiskWrite(wrote);
      host_.addNetTx(wrote);
      r2.addNetRx(wrote);
      r2.addDiskWrite(wrote);
      r2.addNetTx(wrote);
      r2.addDnBytes(0.0, wrote);
      r3.addNetRx(wrote);
      r3.addDiskWrite(wrote);
      r3.addDnBytes(0.0, wrote);
      host_.addDnBytes(0.0, wrote);

      // Block-boundary log events on the replica pipeline.
      writtenSinceBlockStart_ += wrote;
      writeRemaining_ -= wrote;
      if (currentOutBlock_ < 0 && wrote > 0.0) {
        currentOutBlock_ = cluster_.nameNode().createBlock(host_.id(),
                                                           cluster_.rng());
        job_.addOutputBlock(currentOutBlock_);
        host_.dnWriter().receivingBlock(now, currentOutBlock_, host_.ip(),
                                        host_.ip());
        r2.dnWriter().receivingBlock(now, currentOutBlock_, host_.ip(),
                                     r2.ip());
        r3.dnWriter().receivingBlock(now, currentOutBlock_, r2.ip(),
                                     r3.ip());
      }
      const bool blockFull = writtenSinceBlockStart_ >= p.blockBytes - kEps;
      const bool allDone = writeRemaining_ <= kEps && cpuRemaining_ <= 1e-9;
      if (currentOutBlock_ >= 0 && (blockFull || allDone)) {
        const double sz = writtenSinceBlockStart_;
        host_.dnWriter().receivedBlock(now, currentOutBlock_, sz,
                                       host_.ip());
        r2.dnWriter().receivedBlock(now, currentOutBlock_, sz, host_.ip());
        r3.dnWriter().receivedBlock(now, currentOutBlock_, sz, r2.ip());
        writtenSinceBlockStart_ = 0.0;
        currentOutBlock_ = -1;
      }
      if (allDone) {
        writeRemaining_ = 0.0;
        host_.ttWriter().taskDone(now, id_);
        enterPhase(Phase::kDone, now);
        return TaskOutcome::kCompleted;
      }
      break;
    }
    case Phase::kDone:
      return TaskOutcome::kRunning;
  }

  maybeLogProgress(now);
  return TaskOutcome::kRunning;
}

void TaskAttempt::kill(SimTime now) {
  closeOpenReadLog(now);
  if (currentOutBlock_ >= 0) {
    // Abort the in-flight output block on all three pipeline nodes.
    Node& r2 = cluster_.node(replica2_);
    Node& r3 = cluster_.node(replica3_);
    host_.dnWriter().receivedBlock(now, currentOutBlock_,
                                   writtenSinceBlockStart_, host_.ip());
    r2.dnWriter().receivedBlock(now, currentOutBlock_,
                                writtenSinceBlockStart_, host_.ip());
    r3.dnWriter().receivedBlock(now, currentOutBlock_,
                                writtenSinceBlockStart_, r2.ip());
    currentOutBlock_ = -1;
  }
  host_.ttWriter().killTask(now, id_);
  enterPhase(Phase::kDone, now);
}

}  // namespace asdf::hadoop
