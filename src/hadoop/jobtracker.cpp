#include "hadoop/jobtracker.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/stats.h"

namespace asdf::hadoop {
namespace {

// How many pending maps the scheduler scans looking for a data-local
// assignment before settling for the queue head.
constexpr int kLocalityScanLimit = 64;

}  // namespace

JobTracker::JobTracker(ClusterView& cluster, NameNode& nameNode)
    : cluster_(cluster), nameNode_(nameNode) {}

void JobTracker::setTaskTrackers(std::vector<TaskTracker*> tts) {
  tts_ = std::move(tts);
}

Job& JobTracker::submit(JobSpec spec, SimTime now) {
  auto job = std::make_unique<Job>(nextJobId_++, std::move(spec),
                                   cluster_.params().blockBytes, nameNode_,
                                   cluster_.slaveCount(), cluster_.rng());
  job->submitTime = now;
  ++jobsSubmitted_;
  active_.push_back(std::move(job));
  return *active_.back();
}

Job* JobTracker::findActive(JobId id) {
  for (auto& j : active_) {
    if (j->id() == id) return j.get();
  }
  return nullptr;
}

void JobTracker::killOtherAttempts(Job& job, bool isMap, int taskIndex,
                                   SimTime now) {
  if (job.runningAttempts(isMap, taskIndex) == 0) return;
  for (TaskTracker* tt : tts_) {
    while (job.runningAttempts(isMap, taskIndex) > 0 &&
           tt->killAttempt(job.id(), isMap, taskIndex, now)) {
    }
  }
}

void JobTracker::applyReport(const TaskTracker::Report& report,
                             SimTime now) {
  for (const auto& e : report.finished) {
    Job* job = findActive(e.jobId);
    if (job == nullptr) continue;  // job already torn down
    if (e.failed) {
      job->noteFailure(e.isMap, e.taskIndex);
      if (job->failureCount(e.isMap, e.taskIndex) >=
          cluster_.params().maxTaskAttempts) {
        // Too many attempts: Hadoop would fail the job; we record the
        // surrender and mark the task done so the trace continues —
        // the experiment cares about per-node anomalies, not job
        // verdicts.
        ++tasksGivenUp_;
        if (e.isMap) {
          job->completeMap(e.taskIndex, e.node, e.duration);
        } else {
          job->completeReduce(e.taskIndex, e.duration);
        }
      } else {
        auto& queue =
            e.isMap ? job->pendingMaps() : job->pendingReduces();
        queue.push_front(e.taskIndex);
      }
    } else {
      const bool firstFinish =
          e.isMap ? job->completeMap(e.taskIndex, e.node, e.duration)
                  : job->completeReduce(e.taskIndex, e.duration);
      if (firstFinish) {
        // Kill any speculative duplicates still running elsewhere.
        killOtherAttempts(*job, e.isMap, e.taskIndex, now);
        // Drop a stale pending (speculative) entry if one exists.
        auto& queue =
            e.isMap ? job->pendingMaps() : job->pendingReduces();
        queue.erase(std::remove(queue.begin(), queue.end(), e.taskIndex),
                    queue.end());
      }
    }
    finishJobIfComplete(*job, now);
  }
}

void JobTracker::finishJobIfComplete(Job& job, SimTime now) {
  if (!job.complete()) return;
  job.finishTime = now;
  ++jobsCompleted_;
  auto it = std::find_if(active_.begin(), active_.end(),
                         [&](const auto& p) { return p.get() == &job; });
  assert(it != active_.end());
  std::unique_ptr<Job> owned = std::move(*it);
  active_.erase(it);
  completed_.push_back(std::move(owned));
  if (onJobComplete) onJobComplete(*completed_.back(), now);
}

bool JobTracker::findMapWork(NodeId node, Job*& jobOut, int& taskOut) {
  for (auto& job : active_) {
    auto& pending = job->pendingMaps();
    if (pending.empty()) continue;
    // Prefer a map whose input block has a replica on this node.
    const int scan =
        std::min<int>(kLocalityScanLimit, static_cast<int>(pending.size()));
    for (int i = 0; i < scan; ++i) {
      const int idx = pending[static_cast<std::size_t>(i)];
      if (job->mapDone(idx)) continue;
      const auto& replicas = nameNode_.replicas(job->inputBlock(idx));
      if (std::find(replicas.begin(), replicas.end(), node) !=
          replicas.end()) {
        pending.erase(pending.begin() + i);
        jobOut = job.get();
        taskOut = idx;
        return true;
      }
    }
    // No local work: take the queue head.
    while (!pending.empty()) {
      const int idx = pending.front();
      pending.pop_front();
      if (!job->mapDone(idx)) {
        jobOut = job.get();
        taskOut = idx;
        return true;
      }
    }
  }
  return false;
}

bool JobTracker::findReduceWork(Job*& jobOut, int& taskOut) {
  for (auto& job : active_) {
    auto& pending = job->pendingReduces();
    if (pending.empty()) continue;
    const int slowstartMaps = static_cast<int>(std::ceil(
        cluster_.params().reduceSlowstart * job->numMaps()));
    if (job->completedMaps() < std::max(1, slowstartMaps)) continue;
    while (!pending.empty()) {
      const int idx = pending.front();
      pending.pop_front();
      if (!job->reduceDone(idx)) {
        jobOut = job.get();
        taskOut = idx;
        return true;
      }
    }
  }
  return false;
}

void JobTracker::blacklistNode(NodeId node) { blacklist_.insert(node); }

bool JobTracker::isBlacklisted(NodeId node) const {
  return blacklist_.count(node) != 0;
}

int JobTracker::processHeartbeat(TaskTracker& tt, SimTime now) {
  applyReport(tt.takeReport(), now);
  if (isBlacklisted(tt.nodeId())) return 0;

  int assigned = 0;
  for (int slot = tt.freeMapSlots(); slot > 0; --slot) {
    Job* job = nullptr;
    int taskIndex = -1;
    if (!findMapWork(tt.nodeId(), job, taskIndex)) break;
    tt.launch(*job, /*isMap=*/true, taskIndex, now);
    ++assigned;
  }
  for (int slot = tt.freeReduceSlots(); slot > 0; --slot) {
    Job* job = nullptr;
    int taskIndex = -1;
    if (!findReduceWork(job, taskIndex)) break;
    tt.launch(*job, /*isMap=*/false, taskIndex, now);
    ++assigned;
  }
  return assigned;
}

void JobTracker::checkSpeculation(SimTime now) {
  if (!cluster_.params().speculativeExecution) return;
  for (TaskTracker* tt : tts_) {
    for (const auto& attempt : tt->running()) {
      Job& job = attempt->job();
      const bool isMap = attempt->isMap();
      const int index = attempt->taskIndex();
      if (job.runningAttempts(isMap, index) != 1) continue;
      const auto& durations = isMap ? job.completedMapDurations()
                                    : job.completedReduceDurations();
      // With too few completed peers to estimate a median, fall back
      // to a generous absolute timeout so hung tasks in small jobs
      // (e.g. a one-reduce job) still get a backup eventually.
      const double threshold =
          durations.size() < 3
              ? 4.0 * cluster_.params().speculativeMinRuntime
              : std::max(cluster_.params().speculativeMinRuntime,
                         cluster_.params().speculativeRuntimeFactor *
                             median(durations));
      if (attempt->runtime(now) < threshold) continue;
      auto& queue = isMap ? job.pendingMaps() : job.pendingReduces();
      if (std::find(queue.begin(), queue.end(), index) != queue.end()) {
        continue;  // a backup is already queued
      }
      queue.push_front(index);
      ++speculativeLaunches_;
    }
  }
}

}  // namespace asdf::hadoop
