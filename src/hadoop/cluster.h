// The simulated Hadoop cluster: one master (JobTracker + NameNode) and
// N slaves (TaskTracker + DataNode), advanced in 1-second ticks on a
// SimEngine.
//
// Tick protocol (the order is what makes contention physical):
//   1. every node beginTick()                   (clear demands)
//   2. task attempts + fault hooks request resources
//   3. every node finalizeResources()           (proportional shares)
//   4. attempts + fault hooks advance on their grants
//   5. every node endTick()                     (roll into OS counters)
//
// TaskTracker heartbeats are separate staggered periodic events, so
// completions become visible to the scheduler with realistic
// heartbeat latency, and heartbeat RPC traffic lands between ticks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "hadoop/config.h"
#include "hadoop/hdfs.h"
#include "hadoop/jobtracker.h"
#include "hadoop/node.h"
#include "hadoop/task.h"
#include "hadoop/tasktracker.h"
#include "sim/engine.h"
#include "topology/topology.h"
#include "topology/uplink.h"

namespace asdf::hadoop {

class Cluster : public ClusterView {
 public:
  Cluster(HadoopParams params, std::uint64_t seed, sim::SimEngine& engine);
  ~Cluster() override;

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Registers the tick / heartbeat / speculation events. Call once
  /// before running the engine.
  void start();

  // --- ClusterView -------------------------------------------------------
  Node& node(NodeId id) override;
  NameNode& nameNode() override { return nameNode_; }
  const HadoopParams& params() const override { return params_; }
  Rng& rng() override { return rng_; }
  int slaveCount() const override { return params_.slaveCount; }

  JobTracker& jobTracker() { return jobTracker_; }
  TaskTracker& taskTracker(NodeId id);
  sim::SimEngine& engine() { return engine_; }

  /// Rack fabric. uplinks() is null on flat (racks == 1) topologies.
  const topology::ClusterLayout& layout() const { return layout_; }
  topology::UplinkPlane* uplinks() { return uplinks_.get(); }

  /// Slave nodes 1..slaveCount, in id order.
  std::vector<Node*> slaveNodes();

  /// External per-tick resource consumers (the fault hogs). The
  /// request callback runs in the demand phase, advance in the grant
  /// phase. Returns a handle for removeTickHook.
  struct TickHook {
    std::function<void(SimTime)> request;
    std::function<void(SimTime)> advance;
  };
  int addTickHook(TickHook hook);
  void removeTickHook(int id);

  /// Invoked (if set) after a job completes, before cleanup is
  /// scheduled. The workload generator uses this to keep the mix full.
  std::function<void(Job&, SimTime)> onJobComplete;

  /// Number of ticks executed (tests / sanity checks).
  long tickCount() const { return tickCount_; }

 private:
  void tick();
  void heartbeat(std::size_t slaveIndex);
  void heartbeatAndReschedule(std::size_t slaveIndex);
  void scheduleCleanup(Job& job, SimTime now);

  HadoopParams params_;
  topology::ClusterLayout layout_;
  std::unique_ptr<topology::UplinkPlane> uplinks_;
  Rng rng_;
  sim::SimEngine& engine_;
  std::vector<std::unique_ptr<Node>> nodes_;  // [0] master, [1..N] slaves
  NameNode nameNode_;
  std::vector<std::unique_ptr<TaskTracker>> tts_;  // per slave
  JobTracker jobTracker_;
  std::map<int, TickHook> hooks_;
  int nextHookId_ = 0;
  long tickCount_ = 0;
};

}  // namespace asdf::hadoop
