// Tunables of the simulated Hadoop cluster. Defaults approximate the
// paper's testbed: Hadoop 0.18.x semantics on EC2 Large instances
// (4 cores, 7.5 GB), 2 map + 2 reduce slots per TaskTracker, 3-second
// heartbeats, HDFS replication 3, speculative execution on.
#pragma once

#include <cstddef>

#include "topology/topology.h"

namespace asdf::hadoop {

struct HadoopParams {
  // Cluster shape. Node 0 is the master (JobTracker + NameNode);
  // nodes 1..slaveCount are slaves (TaskTracker + DataNode).
  int slaveCount = 16;

  // Rack fabric (DESIGN.md §16). The default single rack reproduces
  // the flat pre-topology cluster byte-for-byte: no uplink resources
  // are created and no flow ever contends on them.
  topology::TopologySpec topology;

  // Node hardware (EC2 Large-ish).
  double cores = 4.0;
  double memTotalBytes = 7.5e9;
  double diskBytesPerSec = 80.0e6;
  double nicBytesPerSec = 125.0e6;  // 1 Gbps

  // MapReduce. Map slots sized to the cores (a common production
  // override of the 0.18 default of 2); reduce slots at the default.
  int mapSlots = 4;
  int reduceSlots = 2;
  double heartbeatInterval = 3.0;
  double reduceSlowstart = 0.05;    // fraction of maps done before
                                    // reduces are scheduled
  int maxTaskAttempts = 4;
  bool speculativeExecution = true;
  double speculativeRuntimeFactor = 2.5;  // attempt slower than
                                          // factor x median -> backup
  double speculativeMinRuntime = 120.0;

  // HDFS.
  double blockBytes = 16.0e6;  // scaled down like the paper's dataset
  int replication = 3;
  /// Per-stream shuffle fetch ceiling: map outputs are many small
  /// seek-bound segments, so a single fetch stream moves far below
  /// line rate. This is what makes real reduce copy phases last
  /// minutes — the dormancy window of HADOOP-1152/2080.
  double shuffleStreamBytesPerSec = 4.0e6;
  double outputDeleteDelay = 60.0;  // GridMix cleanup after job end

  // Task resource profile.
  double mapReadCpuCores = 0.15;     // while reading input
  double mapSpillCpuCores = 0.30;    // while writing map output
  double reduceCopyCpuCores = 0.20;  // while shuffling
  double reduceSortCpuCores = 0.40;  // while merging
  double taskMemBytes = 2.0e8;       // JVM heap per running task
  double daemonMemBytes = 1.3e9;     // OS + TT + DN baseline

  // Log chatter.
  double progressLogInterval = 5.0;  // seconds between progress lines
};

}  // namespace asdf::hadoop
