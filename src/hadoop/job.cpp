#include "hadoop/job.h"

#include <cassert>
#include <cmath>

namespace asdf::hadoop {

const char* jobTypeName(JobType type) {
  switch (type) {
    case JobType::kWebdataSample:
      return "webdataSample";
    case JobType::kMonsterQuery:
      return "monsterQuery";
    case JobType::kWebdataSort:
      return "webdataSort";
    case JobType::kStreamingSort:
      return "streamingSort";
    case JobType::kCombiner:
      return "combiner";
  }
  return "unknown";
}

Job::Job(JobId id, JobSpec spec, double blockBytes, NameNode& nameNode,
         int slaveCount, Rng& rng)
    : id_(id), spec_(std::move(spec)) {
  inputBlocks_ = nameNode.createFile(spec_.inputBytes, blockBytes, rng);
  numMaps_ = static_cast<int>(inputBlocks_.size());
  assert(spec_.numReduces >= 1);

  mapDone_.assign(static_cast<std::size_t>(numMaps_), 0);
  reduceDone_.assign(static_cast<std::size_t>(spec_.numReduces), 0);
  mapRunning_.assign(static_cast<std::size_t>(numMaps_), 0);
  reduceRunning_.assign(static_cast<std::size_t>(spec_.numReduces), 0);
  mapAttemptSerial_.assign(static_cast<std::size_t>(numMaps_), 0);
  reduceAttemptSerial_.assign(static_cast<std::size_t>(spec_.numReduces), 0);
  mapFailures_.assign(static_cast<std::size_t>(numMaps_), 0);
  reduceFailures_.assign(static_cast<std::size_t>(spec_.numReduces), 0);
  shuffleAvailPerNode_.assign(static_cast<std::size_t>(slaveCount) + 1, 0.0);

  for (int i = 0; i < numMaps_; ++i) pendingMaps_.push_back(i);
  for (int i = 0; i < spec_.numReduces; ++i) pendingReduces_.push_back(i);
}

long Job::inputBlock(int mapIndex) const {
  assert(mapIndex >= 0 && mapIndex < numMaps_);
  return inputBlocks_[static_cast<std::size_t>(mapIndex)];
}

double Job::mapOutputPerReducePerMap() const {
  const double perMap =
      spec_.inputBytes * spec_.mapOutputRatio / numMaps_;
  return perMap / spec_.numReduces;
}

double Job::outputBytesPerReduce() const {
  return spec_.inputBytes * spec_.outputRatio / spec_.numReduces;
}

double Job::shuffleBytesPerReduce() const {
  return mapOutputPerReducePerMap() * numMaps_;
}

int Job::runningAttempts(bool isMap, int index) const {
  return isMap ? mapRunning_[static_cast<std::size_t>(index)]
               : reduceRunning_[static_cast<std::size_t>(index)];
}

void Job::noteAttemptStarted(bool isMap, int index) {
  auto& v = isMap ? mapRunning_ : reduceRunning_;
  ++v[static_cast<std::size_t>(index)];
}

void Job::noteAttemptEnded(bool isMap, int index) {
  auto& v = isMap ? mapRunning_ : reduceRunning_;
  auto& n = v[static_cast<std::size_t>(index)];
  assert(n > 0);
  --n;
}

int Job::nextAttemptSerial(bool isMap, int index) {
  auto& v = isMap ? mapAttemptSerial_ : reduceAttemptSerial_;
  return v[static_cast<std::size_t>(index)]++;
}

int Job::failureCount(bool isMap, int index) const {
  return isMap ? mapFailures_[static_cast<std::size_t>(index)]
               : reduceFailures_[static_cast<std::size_t>(index)];
}

void Job::noteFailure(bool isMap, int index) {
  auto& v = isMap ? mapFailures_ : reduceFailures_;
  ++v[static_cast<std::size_t>(index)];
}

bool Job::completeMap(int index, NodeId node, double duration) {
  auto& done = mapDone_[static_cast<std::size_t>(index)];
  if (done) return false;
  done = 1;
  ++completedMaps_;
  mapDurations_.push_back(duration);
  assert(node >= 0 &&
         static_cast<std::size_t>(node) < shuffleAvailPerNode_.size());
  shuffleAvailPerNode_[static_cast<std::size_t>(node)] +=
      mapOutputPerReducePerMap();
  return true;
}

bool Job::completeReduce(int index, double duration) {
  auto& done = reduceDone_[static_cast<std::size_t>(index)];
  if (done) return false;
  done = 1;
  ++completedReduces_;
  reduceDurations_.push_back(duration);
  return true;
}

double Job::shuffleAvailable(NodeId node) const {
  assert(node >= 0 &&
         static_cast<std::size_t>(node) < shuffleAvailPerNode_.size());
  return shuffleAvailPerNode_[static_cast<std::size_t>(node)];
}

}  // namespace asdf::hadoop
