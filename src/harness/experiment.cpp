#include "harness/experiment.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <mutex>

#include "archive/collector.h"
#include "harness/aggregator.h"
#include "archive/writer.h"
#include "common/error.h"
#include "common/logging.h"
#include "core/fpt_core.h"
#include "core/realtime.h"
#include "hadoop/cluster.h"
#include "metrics/sadc.h"
#include "modules/modules.h"
#include "net/cluster_stats.h"
#include "net/live_transport.h"
#include "rpc/daemons.h"
#include "sim/engine.h"
#include "workload/gridmix.h"

namespace asdf::harness {
namespace {

hadoop::HadoopParams hadoopParamsFor(const ExperimentSpec& spec) {
  hadoop::HadoopParams p;
  p.slaveCount = spec.slaves;
  p.topology = spec.topology;
  return p;
}

workload::GridMixParams gridmixParamsFor(const ExperimentSpec& spec) {
  workload::GridMixParams g;
  g.mixChangeTime = spec.mixChangeTime;
  return g;
}

/// Routes alarms and monitoring events into `result` (shared between
/// the sim and live transports so both record identically).
void wireSinks(core::Environment& env, ExperimentResult& result,
               std::mutex& eventMutex) {
  env.alarmSink = [&result](const core::Alarm& alarm) {
    analysis::AlarmRecord record;
    record.time = alarm.time;
    record.flags = alarm.flags;
    record.scores = alarm.scores;
    record.health = alarm.health;
    if (alarm.channel == "BlackBoxAlarm") {
      result.blackBox.push_back(std::move(record));
    } else if (alarm.channel == "WhiteBoxAlarm") {
      result.whiteBox.push_back(std::move(record));
    }
  };
  // Both analysis instances may emit events concurrently under a pool
  // executor; serialize appends and order the series after the run.
  env.monitoringSink = [&result,
                        &eventMutex](const core::MonitoringEvent& event) {
    std::lock_guard<std::mutex> lock(eventMutex);
    result.monitoringEvents.push_back(event);
  };
}

void sortMonitoringEvents(ExperimentResult& result) {
  std::stable_sort(result.monitoringEvents.begin(),
                   result.monitoringEvents.end(),
                   [](const core::MonitoringEvent& a,
                      const core::MonitoringEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.channel < b.channel;
                   });
}

void recordClientCounters(ExperimentResult& result, rpc::RpcClient& client) {
  result.rpcRounds = client.totalRounds();
  result.rpcRetries = client.totalRetries();
  result.rpcFailedRounds = client.totalFailedRounds();
  result.rpcFastFails = client.totalFastFails();
  result.rpcBreakerOpens = client.totalBreakerOpens();
  for (NodeId node : client.health().nodes()) {
    std::vector<double>& times = result.rpcAttemptTimes[node];
    for (const rpc::AttemptRecord& rec : client.attemptLog(node)) {
      times.push_back(rec.at);
    }
  }
}

void recordChannelReports(ExperimentResult& result,
                          rpc::TransportRegistry& transports,
                          const ExperimentSpec& spec) {
  for (const rpc::RpcChannelStats* ch : transports.channels()) {
    if (ch->calls() == 0 && ch->failedCalls() == 0) continue;
    RpcChannelReport report;
    report.name = ch->name();
    report.tier = ch->tier();
    report.connects = ch->connects();
    report.calls = ch->calls();
    report.failedCalls = ch->failedCalls();
    report.staticOverheadKb =
        ch->connects() == 0
            ? 0.0
            : ch->staticOverheadBytes() / ch->connects() / 1024.0;
    report.perIterationKbPerSec =
        ch->totalCallBytes() / spec.slaves / spec.duration / 1024.0;
    result.rpcChannels.push_back(report);
  }
}

archive::ArchiveMeta metaFromSpec(const ExperimentSpec& spec,
                                  const std::string& source) {
  archive::ArchiveMeta meta;
  meta.seed = spec.seed;
  meta.slaves = spec.slaves;
  meta.source = source;
  meta.duration = spec.duration;
  meta.trainDuration = spec.trainDuration;
  meta.trainWarmup = spec.trainWarmup;
  meta.centroids = spec.centroids;
  meta.faultType = static_cast<std::uint32_t>(spec.fault.type);
  meta.faultNode = spec.fault.node;
  meta.faultStart = spec.fault.startTime;
  meta.faultEnd = spec.fault.endTime;
  meta.mixChangeTime = spec.mixChangeTime;
  return meta;
}

archive::TruthRecord truthFromResult(const ExperimentResult& result) {
  archive::TruthRecord truth;
  truth.slaveIndex = result.truth.slaveIndex;
  truth.faultStart = result.truth.faultStart;
  truth.faultEnd = result.truth.faultEnd;
  truth.simulatedSeconds = result.simulatedSeconds;
  truth.jobsSubmitted = result.jobsSubmitted;
  truth.jobsCompleted = result.jobsCompleted;
  truth.tasksCompleted = result.tasksCompleted;
  truth.tasksFailed = result.tasksFailed;
  truth.speculativeLaunches = result.speculativeLaunches;
  truth.syncDroppedSeconds = result.syncDroppedSeconds;
  return truth;
}

std::unique_ptr<archive::ArchiveWriter> makeRecorder(
    const ExperimentSpec& spec, const std::string& source) {
  if (spec.archiveDir.empty()) return nullptr;
  archive::ArchiveWriterOptions opts;
  opts.dir = spec.archiveDir;
  opts.maxSegmentBytes = spec.archiveSegmentBytes;
  return std::make_unique<archive::ArchiveWriter>(std::move(opts),
                                                  metaFromSpec(spec, source));
}

/// Live transport: the monitored cluster lives inside asdf_rpcd; the
/// control node here runs only fpt-core + the RpcClient over real
/// sockets, pumped by a RealTimeDriver. Monitoring-fault injectors are
/// a sim-transport concept (the board is not consulted on real
/// attempts) and are ignored in this mode — live failures are real
/// timeouts and refused connections.
ExperimentResult runLiveExperiment(const ExperimentSpec& spec,
                                   const analysis::BlackBoxModel& model) {
  net::LiveTransport::Options topts;
  topts.host = spec.liveHost;
  topts.port = spec.livePort;
  topts.timeoutSeconds = spec.rpcPolicy.timeoutSeconds;
  topts.backoffSeed = spec.seed * 2654435761ULL + 211;
  net::LiveTransport transport(topts);
  if (transport.slaves() != spec.slaves) {
    logWarn("live transport: daemon serves " +
            std::to_string(transport.slaves()) + " slaves but the spec says " +
            std::to_string(spec.slaves));
  }
  rpc::RpcClient client(transport, spec.rpcPolicy,
                        spec.seed * 2654435761ULL + 97);
  std::unique_ptr<archive::ArchiveWriter> recorder =
      makeRecorder(spec, "live");
  if (recorder != nullptr) client.setObserver(recorder.get());

  sim::SimEngine engine;
  modules::HadoopLogSync sync;
  ExperimentResult result;

  core::Environment env;
  env.provide("bb_model", const_cast<analysis::BlackBoxModel*>(&model));
  env.provide("hl_sync", &sync);
  env.provide("rpc_client", &client);
  env.provide("node_health", &client.health());
  std::mutex eventMutex;
  wireSinks(env, result, eventMutex);

  core::FptCore fpt(engine, env);
  fpt.setExecutor(core::makeExecutor(spec.threads));
  PipelineParams pipeline = spec.pipeline;
  pipeline.slaves = spec.slaves;
  fpt.configureFromText(buildCombinedConfig(pipeline));

  core::RealTimeDriver driver(engine, spec.realtimeScale);
  driver.run(spec.duration / spec.realtimeScale);

  sortMonitoringEvents(result);

  // Ground truth comes from the spec (the caller started asdf_rpcd
  // with the same fault); the daemon reports the observed end time.
  result.truth.slaveIndex =
      spec.fault.type == faults::FaultType::kNone ? -1 : spec.fault.node - 1;
  result.truth.faultStart = spec.fault.startTime;
  result.truth.faultEnd = spec.fault.endTime;
  result.simulatedSeconds = spec.duration;

  net::ClusterStatsWire stats;
  if (transport.fetchStats(spec.duration, stats)) {
    if (stats.faultEndedAt != kNoTime) {
      result.truth.faultEnd = stats.faultEndedAt;
    }
    const double nodeSeconds = spec.duration * spec.slaves;
    result.sadcRpcdCpuPct = 100.0 * stats.sadcCpuSeconds / nodeSeconds;
    result.hadoopLogRpcdCpuPct =
        100.0 * stats.hadoopLogCpuSeconds / nodeSeconds;
    result.straceRpcdCpuPct = 100.0 * stats.straceCpuSeconds / nodeSeconds;
    result.sadcRpcdMemMb =
        static_cast<double>(stats.sadcMemoryBytes) / spec.slaves / 1.0e6;
    result.hadoopLogRpcdMemMb =
        static_cast<double>(stats.hadoopLogMemoryBytes) / spec.slaves / 1.0e6;
    result.straceRpcdMemMb =
        static_cast<double>(stats.straceMemoryBytes) / spec.slaves / 1.0e6;
    result.jobsSubmitted = stats.jobsSubmitted;
    result.jobsCompleted = stats.jobsCompleted;
    result.tasksCompleted = stats.tasksCompleted;
    result.tasksFailed = stats.tasksFailed;
    result.speculativeLaunches = stats.speculativeLaunches;
  } else {
    logWarn("live transport: final kStats fetch failed; cluster-side "
            "accounting unavailable");
  }
  result.fptCoreCpuPct = 100.0 * fpt.cpuSeconds() / spec.duration;
  result.fptCoreMemMb =
      static_cast<double>(fpt.memoryFootprintBytes()) / 1.0e6;

  recordChannelReports(result, client.transports(), spec);
  result.syncDroppedSeconds = sync.droppedSeconds();
  recordClientCounters(result, client);
  if (recorder != nullptr) {
    recorder->writeTruth(truthFromResult(result));
    recorder->close();
  }
  return result;
}

/// Replay transport: no cluster, no daemons — an ArchiveCollector
/// serves the recorded rounds to the same RpcClient the live path
/// uses, and the pipeline runs on the sim clock. The module schedule
/// is deterministic, so every fetch finds its archived record and the
/// run reproduces the recording run's alarms byte-for-byte.
ExperimentResult runReplayExperiment(const ExperimentSpec& spec,
                                     const analysis::BlackBoxModel& model) {
  archive::ArchiveCollector collector(spec.archiveDir);
  if (collector.slaves() != spec.slaves) {
    logWarn("replay: archive holds " + std::to_string(collector.slaves()) +
            " slaves but the spec says " + std::to_string(spec.slaves));
  }
  rpc::RpcClient client(collector, spec.rpcPolicy,
                        spec.seed * 2654435761ULL + 97,
                        /*realBackoff=*/false);

  sim::SimEngine engine;
  modules::HadoopLogSync sync;
  ExperimentResult result;

  core::Environment env;
  env.provide("bb_model", const_cast<analysis::BlackBoxModel*>(&model));
  env.provide("hl_sync", &sync);
  env.provide("rpc_client", &client);
  env.provide("node_health", &client.health());
  if (spec.tiered) env.provide("transports", &client.transports());
  std::mutex eventMutex;
  wireSinks(env, result, eventMutex);

  core::FptCore fpt(engine, env);
  fpt.setExecutor(core::makeExecutor(spec.threads));
  PipelineParams pipeline = spec.pipeline;
  pipeline.slaves = spec.slaves;
  if (spec.tiered) pipeline.tierGroups = tierGroupsFor(spec);
  fpt.configureFromText(buildCombinedConfig(pipeline));

  engine.runUntil(spec.duration);

  sortMonitoringEvents(result);

  // Ground truth: the recorded run's truth record when the recorder
  // shut down cleanly, else the meta frame's fault parameters (a
  // killed recorder still leaves a localizable archive).
  if (collector.truth().has_value()) {
    const archive::TruthRecord& truth = *collector.truth();
    result.truth.slaveIndex = truth.slaveIndex;
    result.truth.faultStart = truth.faultStart;
    result.truth.faultEnd = truth.faultEnd;
    result.jobsSubmitted = truth.jobsSubmitted;
    result.jobsCompleted = truth.jobsCompleted;
    result.tasksCompleted = truth.tasksCompleted;
    result.tasksFailed = truth.tasksFailed;
    result.speculativeLaunches = truth.speculativeLaunches;
  } else {
    const archive::ArchiveMeta& meta = collector.meta();
    result.truth.slaveIndex =
        meta.faultType == 0 ? -1 : static_cast<int>(meta.faultNode) - 1;
    result.truth.faultStart = meta.faultStart;
    result.truth.faultEnd = meta.faultEnd;
  }
  result.simulatedSeconds = spec.duration;

  result.fptCoreCpuPct = 100.0 * fpt.cpuSeconds() / spec.duration;
  result.fptCoreMemMb =
      static_cast<double>(fpt.memoryFootprintBytes()) / 1.0e6;

  recordChannelReports(result, client.transports(), spec);
  result.syncDroppedSeconds = sync.droppedSeconds();
  recordClientCounters(result, client);
  return result;
}

}  // namespace

std::vector<int> tierGroupsFor(const ExperimentSpec& spec) {
  if (!spec.tierGroups.empty()) return spec.tierGroups;
  const int n = spec.slaves;
  // A multi-rack topology is the natural aggregation-tier shape: one
  // aggregator per rack keeps summary traffic off the rack uplinks.
  // An explicit aggregator count overrides the rack mapping.
  if (spec.topology.racks > 1 && spec.aggregators <= 0) {
    return topology::ClusterLayout(n, spec.topology).tierGroups();
  }
  int groups = spec.aggregators;
  if (groups <= 0) {
    // ~sqrt(n) regions keeps both the per-aggregator fan-in and the
    // root fan-in around sqrt(n) (5000 leaves -> ~71 aggregators).
    groups = static_cast<int>(
        std::lround(std::ceil(std::sqrt(static_cast<double>(n)))));
  }
  if (groups < 1) groups = 1;
  if (groups > n) groups = n;
  std::vector<int> sizes(static_cast<std::size_t>(groups), n / groups);
  for (int i = 0; i < n % groups; ++i) {
    sizes[static_cast<std::size_t>(i)] += 1;
  }
  return sizes;
}

void validateSpec(const ExperimentSpec& spec) {
  if (spec.slaves < 1) {
    throw ConfigError("spec: slaves must be >= 1, got " +
                      std::to_string(spec.slaves));
  }
  // The layout constructor enforces the rack-shape invariants
  // (racks >= 1, no empty rack, nodesPerRack covering every slave).
  const topology::ClusterLayout layout(spec.slaves, spec.topology);
  if (!spec.tierGroups.empty()) {
    int covered = 0;
    for (std::size_t i = 0; i < spec.tierGroups.size(); ++i) {
      if (spec.tierGroups[i] < 1) {
        throw ConfigError("spec: tierGroups[" + std::to_string(i) +
                          "] must be >= 1, got " +
                          std::to_string(spec.tierGroups[i]));
      }
      covered += spec.tierGroups[i];
    }
    if (covered != spec.slaves) {
      throw ConfigError("spec: tierGroups cover " + std::to_string(covered) +
                        " slaves but the cluster has " +
                        std::to_string(spec.slaves));
    }
  }
  if (spec.scenario.cls != faults::ScenarioClass::kNone) {
    if (spec.transport != TransportMode::kSim) {
      throw ConfigError(
          "spec: correlated scenarios require the sim transport");
    }
    if (spec.fault.type != faults::FaultType::kNone) {
      throw ConfigError(
          "spec: a correlated scenario and a single-node fault cannot "
          "be injected together");
    }
    // Resolve rack/node placement defaults the same way the injector
    // will, then check the class constraints.
    faults::ScenarioSpec resolved = spec.scenario;
    if (resolved.rack < 0) {
      resolved.rack = resolved.node != kInvalidNode
                          ? layout.rackOf(resolved.node)
                          : layout.racks() - 1;
    }
    if (resolved.node == kInvalidNode && resolved.rack >= 0 &&
        resolved.rack < layout.racks()) {
      resolved.node = layout.hostId(resolved.rack, 0);
    }
    faults::validateScenario(resolved, layout);
  }
}

analysis::BlackBoxModel trainModel(const ExperimentSpec& spec) {
  validateSpec(spec);
  sim::SimEngine engine;
  hadoop::Cluster cluster(hadoopParamsFor(spec), spec.seed * 7919 + 17,
                          engine);
  workload::GridMixGenerator gridmix(cluster, gridmixParamsFor(spec),
                                     spec.seed * 104729 + 5);
  cluster.start();
  gridmix.start();

  std::vector<std::vector<double>> training;
  training.reserve(static_cast<std::size_t>(spec.trainDuration) *
                   static_cast<std::size_t>(spec.slaves));
  // Collect one flattened sadc vector per slave per second, after the
  // tick (registered after cluster.start(), so it runs later at each
  // timestamp).
  engine.addPeriodic(1.0, [&] {
    if (engine.now() < spec.trainWarmup) return;
    for (hadoop::Node* node : cluster.slaveNodes()) {
      training.push_back(metrics::flattenNodeVector(node->sadcCollect()));
    }
  }, 1.0);

  engine.runUntil(spec.trainDuration);
  assert(!training.empty());

  Rng rng(spec.seed * 31337 + 271);
  return analysis::trainBlackBoxModel(training, spec.centroids, rng);
}

ExperimentResult runExperiment(const ExperimentSpec& spec,
                               const analysis::BlackBoxModel& model) {
  validateSpec(spec);
  if (spec.transport == TransportMode::kLive) {
    // Tiered live runs merge aggregator summaries instead of
    // collecting from leaves; the model lives in the aggregators.
    if (spec.tiered) return runTieredLiveExperiment(spec);
    return runLiveExperiment(spec, model);
  }
  if (spec.transport == TransportMode::kReplay) {
    return runReplayExperiment(spec, model);
  }
  sim::SimEngine engine;
  hadoop::Cluster cluster(hadoopParamsFor(spec), spec.seed * 6151 + 3,
                          engine);
  workload::GridMixGenerator gridmix(cluster, gridmixParamsFor(spec),
                                     spec.seed * 7411 + 1);
  cluster.start();
  gridmix.start();

  rpc::RpcHub hub(cluster, /*attachTime=*/0.0);
  modules::HadoopLogSync sync;

  ExperimentResult result;

  // The fault-tolerant collection layer is opt-in; injecting a
  // monitoring fault implies it.
  const bool ftRpc = spec.faultTolerantRpc || !spec.monitoringFaults.empty();
  std::unique_ptr<rpc::RpcClient> client;
  if (ftRpc) {
    client = std::make_unique<rpc::RpcClient>(
        cluster, hub, spec.rpcPolicy, spec.seed * 2654435761ULL + 97);
  }

  // Flight recorder: fault-tolerant runs tap the client (round
  // outcomes included); the plain path taps the hub's daemons.
  std::unique_ptr<archive::ArchiveWriter> recorder =
      makeRecorder(spec, "sim");
  if (recorder != nullptr) {
    if (client != nullptr) {
      client->setObserver(recorder.get());
    } else {
      hub.setObserver(recorder.get(), [&engine] { return engine.now(); });
    }
  }

  core::Environment env;
  env.provide("rpc", &hub);
  env.provide("bb_model", const_cast<analysis::BlackBoxModel*>(&model));
  env.provide("hl_sync", &sync);
  if (client != nullptr) {
    env.provide("rpc_client", client.get());
    env.provide("node_health", &client->health());
  }
  // Tiered analysis reduces per group before the root merge; the agg
  // modules charge the summary traffic to tier-2 channels in the
  // hub's registry so Table 4 reports bandwidth per tier. (FptCore
  // copies the environment, so this must precede its construction.)
  if (spec.tiered) env.provide("transports", &hub.transports());
  std::mutex eventMutex;
  wireSinks(env, result, eventMutex);

  core::FptCore fpt(engine, env);
  fpt.setExecutor(core::makeExecutor(spec.threads));
  PipelineParams pipeline = spec.pipeline;
  pipeline.slaves = spec.slaves;
  if (spec.tiered) pipeline.tierGroups = tierGroupsFor(spec);
  fpt.configureFromText(buildCombinedConfig(pipeline));

  faults::FaultInjector injector(cluster, spec.fault);
  injector.arm();

  std::unique_ptr<faults::ScenarioInjector> scenario;
  if (spec.scenario.cls != faults::ScenarioClass::kNone) {
    scenario =
        std::make_unique<faults::ScenarioInjector>(cluster, spec.scenario);
    scenario->arm();
  }

  std::vector<std::unique_ptr<faults::MonitoringFaultInjector>> monInjectors;
  for (const faults::MonitoringFaultSpec& mf : spec.monitoringFaults) {
    monInjectors.push_back(std::make_unique<faults::MonitoringFaultInjector>(
        engine, client->faults(), mf));
    monInjectors.back()->arm();
  }

  engine.runUntil(spec.duration);

  sortMonitoringEvents(result);

  // Ground truth.
  result.truth.slaveIndex =
      spec.fault.type == faults::FaultType::kNone ? -1 : spec.fault.node - 1;
  result.truth.faultStart = spec.fault.startTime;
  // A fault can end before the run does (a scheduled endTime, or the
  // DiskHog completing its 20 GB write); windows after that are
  // negatives.
  result.truth.faultEnd =
      injector.endedAt() != kNoTime ? injector.endedAt() : spec.fault.endTime;
  if (scenario != nullptr) {
    result.truth.culprits = scenario->culpritIndices();
    result.truth.slaveIndex =
        result.truth.culprits.empty() ? -1 : result.truth.culprits.front();
    result.truth.faultStart = scenario->spec().startTime;
    result.truth.faultEnd = scenario->endedAt() != kNoTime
                                ? scenario->endedAt()
                                : scenario->spec().endTime;
    result.scenarioEvents = scenario->events();
  }
  result.simulatedSeconds = spec.duration;

  // Table 3 accounting. CPU percentages are of one core, per node for
  // the daemons (divide by slave count) and for the single control
  // node for fpt-core, relative to the simulated wall-clock.
  const double nodeSeconds = spec.duration * spec.slaves;
  result.sadcRpcdCpuPct = 100.0 * hub.sadcCpuSeconds() / nodeSeconds;
  result.hadoopLogRpcdCpuPct =
      100.0 * hub.hadoopLogCpuSeconds() / nodeSeconds;
  result.straceRpcdCpuPct = 100.0 * hub.straceCpuSeconds() / nodeSeconds;
  result.fptCoreCpuPct = 100.0 * fpt.cpuSeconds() / spec.duration;
  result.sadcRpcdMemMb =
      static_cast<double>(hub.sadcMemoryBytes()) / spec.slaves / 1.0e6;
  result.hadoopLogRpcdMemMb =
      static_cast<double>(hub.hadoopLogMemoryBytes()) / spec.slaves / 1.0e6;
  result.straceRpcdMemMb =
      static_cast<double>(hub.straceMemoryBytes()) / spec.slaves / 1.0e6;
  result.fptCoreMemMb =
      static_cast<double>(fpt.memoryFootprintBytes()) / 1.0e6;

  // Table 4 accounting. Channels that never carried a call (e.g. the
  // strace extension when its module is not configured) are omitted.
  recordChannelReports(result, hub.transports(), spec);

  // Cluster health.
  result.jobsSubmitted = cluster.jobTracker().jobsSubmitted();
  result.jobsCompleted = cluster.jobTracker().jobsCompleted();
  for (int i = 1; i <= spec.slaves; ++i) {
    result.tasksCompleted += cluster.taskTracker(i).completedTasks();
    result.tasksFailed += cluster.taskTracker(i).failedTasks();
  }
  result.speculativeLaunches = cluster.jobTracker().speculativeLaunches();
  result.syncDroppedSeconds = sync.droppedSeconds();

  if (client != nullptr) {
    recordClientCounters(result, *client);
  }
  if (recorder != nullptr) {
    recorder->writeTruth(truthFromResult(result));
    recorder->close();
  }
  return result;
}

ExperimentSummary summarize(const ExperimentResult& result) {
  ExperimentSummary summary;
  summary.blackBox.eval = analysis::evaluate(result.blackBox, result.truth);
  summary.blackBox.latencySeconds =
      analysis::fingerpointingLatency(result.blackBox, result.truth);
  summary.whiteBox.eval = analysis::evaluate(result.whiteBox, result.truth);
  summary.whiteBox.latencySeconds =
      analysis::fingerpointingLatency(result.whiteBox, result.truth);
  const analysis::AlarmSeries combined =
      analysis::combineUnion(result.blackBox, result.whiteBox);
  summary.combined.eval = analysis::evaluate(combined, result.truth);
  summary.combined.latencySeconds =
      analysis::fingerpointingLatency(combined, result.truth);
  return summary;
}

ApproachSummary summarizeAtThreshold(const analysis::AlarmSeries& series,
                                     const analysis::GroundTruth& truth,
                                     double threshold) {
  const analysis::AlarmSeries rethresholded =
      analysis::applyThreshold(series, threshold);
  ApproachSummary out;
  out.eval = analysis::evaluate(rethresholded, truth);
  out.latencySeconds = analysis::fingerpointingLatency(rethresholded, truth);
  return out;
}

}  // namespace asdf::harness
