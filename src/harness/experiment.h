// End-to-end experiment runner.
//
// Reproduces the paper's experimental procedure (Section 4.7-4.9):
//
//   1. Train: run the GridMix workload fault-free and collect sadc
//      vectors from every slave; fit the black-box model (per-metric
//      log-sigmas + k-means centroids) offline.
//   2. Run: fresh cluster + GridMix + the full ASDF deployment
//      (fpt-core configured from generated text, sadc_rpcd and
//      hadoop_log_rpcd per slave), with one fault injected on one
//      slave mid-run. Alarms stream out of the print sinks.
//   3. Evaluate: balanced accuracy, false-positive rate, and
//      fingerpointing latency per approach (black-box, white-box,
//      combined), plus the monitoring-cost numbers for Tables 3/4.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/bbmodel.h"
#include "analysis/evaluation.h"
#include "core/environment.h"
#include "faults/faults.h"
#include "faults/monitoring_faults.h"
#include "faults/scenarios.h"
#include "harness/pipelines.h"
#include "rpc/rpc_client.h"
#include "topology/topology.h"

namespace asdf::harness {

/// How the collection plane reaches the monitored cluster.
///   kSim    — in-process RpcHub daemons on the simulated clock (the
///             default; byte-identical to the pre-live-transport runs).
///   kLive   — real framed-TCP sockets to an asdf_rpcd daemon; module
///             cadence is driven by a RealTimeDriver against wall time.
///   kReplay — an ArchiveCollector serving recorded rounds from
///             `archiveDir`; the pipeline runs on the sim clock and
///             reproduces the recording run's alarms byte-identically.
enum class TransportMode : int { kSim = 0, kLive = 1, kReplay = 2 };

struct ExperimentSpec {
  int slaves = 16;
  double duration = 1800.0;       // seconds of monitored run
  double trainDuration = 600.0;   // seconds of fault-free training run
  double trainWarmup = 90.0;      // discarded at the start of training
  std::uint64_t seed = 42;
  int centroids = 8;              // k for k-means
  int threads = 1;                // fpt-core executor width (1 = serial)

  faults::FaultSpec fault;        // type kNone = fault-free run
  PipelineParams pipeline;

  /// Rack fabric of the simulated cluster (DESIGN.md §16). The default
  /// single-rack spec reproduces the flat pre-topology cluster
  /// byte-for-byte on the same seed.
  topology::TopologySpec topology;
  /// Correlated-fault scenario (cls kNone = none). Sim transport only;
  /// mutually exclusive with `fault`.
  faults::ScenarioSpec scenario;

  /// When >= 0, the GridMix mix flips at this time (workload change).
  double mixChangeTime = -1.0;

  /// Routes all daemon fetches through the fault-tolerant RpcClient
  /// (timeout/retry/breaker, health registry, degraded analysis).
  /// Implied when monitoringFaults is non-empty. Off by default: the
  /// legacy infallible path matches the paper's assumptions.
  bool faultTolerantRpc = false;
  rpc::RpcPolicy rpcPolicy;
  std::vector<faults::MonitoringFaultSpec> monitoringFaults;

  /// Live transport (transport == kLive): connect to asdf_rpcd at
  /// liveHost:livePort and pump the pipeline with a RealTimeDriver
  /// advancing `realtimeScale` virtual seconds per wall second. The
  /// daemon must be serving the same slaves/seed/fault so the recorded
  /// ground truth applies. Sim-mode runs ignore these fields.
  TransportMode transport = TransportMode::kSim;
  std::string liveHost = "127.0.0.1";
  std::uint16_t livePort = 4588;
  double realtimeScale = 1.0;

  /// Flight recorder. In sim/live modes a non-empty directory records
  /// every collection round there (the --record flag); in replay mode
  /// it names the archive to play back. Empty disables recording.
  std::string archiveDir;
  std::size_t archiveSegmentBytes = 8u << 20;  // recorder rotation size

  /// Aggregation-tier topology (DESIGN.md §12), orthogonal to
  /// `transport`. When `tiered` is set the analysis pipeline splits
  /// into per-group reduce (agg_bb/agg_wb) and root merge stages;
  /// alarms stay byte-identical to the flat topology on the same
  /// seed. Groups cover the slaves in ascending contiguous ranges:
  /// `tierGroups` gives explicit sizes, otherwise the slaves split
  /// evenly across `aggregators` regions (0 = ~sqrt(slaves)).
  bool tiered = false;
  int aggregators = 0;
  std::vector<int> tierGroups;
  /// Live tiered runs (transport == kLive && tiered): the root fetches
  /// summaries from these aggregator endpoints ("host:port", one per
  /// group, same order as the topology) instead of contacting leaf
  /// daemons itself.
  std::vector<std::string> aggEndpoints;
};

/// The group sizes a spec's topology resolves to: explicit tierGroups
/// win; a tiered spec on a multi-rack topology with no explicit groups
/// and no aggregator count maps racks to aggregation groups; otherwise
/// the slaves split evenly across the aggregator count.
std::vector<int> tierGroupsFor(const ExperimentSpec& spec);

/// Validates a spec's cross-field invariants before a run: slave
/// count, rack layout (via ClusterLayout), explicit tier groups that
/// must cover every slave exactly, and scenario requirements (sim
/// transport, no simultaneous single-node fault, class constraints via
/// validateScenario). Throws ConfigError. trainModel/runExperiment
/// call this; examples may call it early for friendlier errors.
void validateSpec(const ExperimentSpec& spec);

struct RpcChannelReport {
  std::string name;
  /// 1 = leaf collection traffic, 2 = aggregator->root summary
  /// traffic. Tiered runs report Table 4 bandwidth per tier.
  int tier = 1;
  long connects = 0;
  long calls = 0;
  long failedCalls = 0;  // attempts that timed out / were refused
  double staticOverheadKb = 0.0;   // per node
  double perIterationKbPerSec = 0.0;  // per node
};

struct ExperimentResult {
  analysis::AlarmSeries blackBox;
  analysis::AlarmSeries whiteBox;
  analysis::GroundTruth truth;
  double simulatedSeconds = 0.0;

  /// Deterministic scenario event log (scenario runs only): two runs
  /// of one spec produce identical logs.
  std::vector<faults::ScenarioEvent> scenarioEvents;

  // Monitoring cost (Table 3).
  double sadcRpcdCpuPct = 0.0;      // per node, % of one core
  double hadoopLogRpcdCpuPct = 0.0; // per node
  double straceRpcdCpuPct = 0.0;    // per node
  double fptCoreCpuPct = 0.0;       // control node
  double sadcRpcdMemMb = 0.0;
  double hadoopLogRpcdMemMb = 0.0;
  double straceRpcdMemMb = 0.0;
  double fptCoreMemMb = 0.0;

  // Bandwidth (Table 4).
  std::vector<RpcChannelReport> rpcChannels;

  // Monitoring-plane robustness (faultTolerantRpc runs only).
  long rpcRounds = 0;
  long rpcRetries = 0;
  long rpcFailedRounds = 0;
  long rpcFastFails = 0;       // rounds rejected by an open breaker
  long rpcBreakerOpens = 0;
  /// Degradation transitions from the analysis modules, sorted by
  /// (time, channel) for deterministic cross-executor comparison.
  std::vector<core::MonitoringEvent> monitoringEvents;
  /// Per-node RPC attempt issue times (virtual seconds), for the
  /// deterministic backoff-schedule tests.
  std::map<NodeId, std::vector<double>> rpcAttemptTimes;

  // Cluster health (sanity).
  long jobsSubmitted = 0;
  long jobsCompleted = 0;
  long tasksCompleted = 0;
  long tasksFailed = 0;
  long speculativeLaunches = 0;
  long syncDroppedSeconds = 0;
};

/// Per-approach evaluation of one experiment.
struct ApproachSummary {
  analysis::EvalResult eval;
  double latencySeconds = -1.0;
};

struct ExperimentSummary {
  ApproachSummary blackBox;
  ApproachSummary whiteBox;
  ApproachSummary combined;
};

/// Step 1: trains the black-box model on a fault-free run.
analysis::BlackBoxModel trainModel(const ExperimentSpec& spec);

/// Steps 2: runs the monitored experiment with the given model.
ExperimentResult runExperiment(const ExperimentSpec& spec,
                               const analysis::BlackBoxModel& model);

/// Step 3: evaluates recorded alarms against the ground truth.
ExperimentSummary summarize(const ExperimentResult& result);

/// Re-evaluates at different thresholds using recorded scores
/// (offline sweeps for Figures 6a/6b).
ApproachSummary summarizeAtThreshold(const analysis::AlarmSeries& series,
                                     const analysis::GroundTruth& truth,
                                     double threshold);

}  // namespace asdf::harness
