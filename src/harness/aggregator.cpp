#include "harness/aggregator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>

#include "analysis/partials.h"
#include "archive/writer.h"
#include "common/error.h"
#include "common/logging.h"
#include "common/strings.h"
#include "core/fpt_core.h"
#include "core/realtime.h"
#include "modules/modules.h"
#include "net/agg_client.h"
#include "net/agg_server.h"
#include "net/fanout_collector.h"
#include "rpc/rpc_client.h"
#include "sim/engine.h"

namespace asdf::harness {
namespace {

std::unique_ptr<archive::ArchiveWriter> makeAggRecorder(
    const AggregatorOptions& opts) {
  if (opts.base.archiveDir.empty()) return nullptr;
  archive::ArchiveWriterOptions wopts;
  wopts.dir = opts.base.archiveDir;
  wopts.maxSegmentBytes = opts.base.archiveSegmentBytes;
  archive::ArchiveMeta meta;
  meta.seed = opts.base.seed;
  meta.slaves = opts.base.slaves;
  meta.source = "agg";
  meta.duration = opts.base.duration;
  meta.trainDuration = opts.base.trainDuration;
  meta.trainWarmup = opts.base.trainWarmup;
  meta.centroids = opts.base.centroids;
  meta.faultType = static_cast<std::uint32_t>(opts.base.fault.type);
  meta.faultNode = opts.base.fault.node;
  meta.faultStart = opts.base.fault.startTime;
  meta.faultEnd = opts.base.fault.endTime;
  meta.mixChangeTime = opts.base.mixChangeTime;
  return std::make_unique<archive::ArchiveWriter>(std::move(wopts),
                                                  std::move(meta));
}

net::AggServerOptions serverOptionsFor(const AggregatorOptions& opts,
                                       const rpc::SummaryBoard& board) {
  net::AggServerOptions sopts;
  sopts.port = opts.port;
  sopts.groupSize = opts.groupSize;
  sopts.seed = opts.base.seed;
  sopts.board = &board;
  sopts.idleTimeoutSeconds = opts.idleTimeoutSeconds;
  sopts.shards = opts.shards;
  return sopts;
}

}  // namespace

struct AggregatorNode::Impl {
  Impl(const AggregatorOptions& o, const analysis::BlackBoxModel& model,
       rpc::SummaryBoard& board)
      : opts(o),
        collector(o.leafEndpoints, o.firstNode,
                  o.base.rpcPolicy.timeoutSeconds,
                  o.base.seed * 2654435761ULL + 131),
        client(collector, o.base.rpcPolicy, o.base.seed * 2654435761ULL + 97),
        recorder(makeAggRecorder(o)),
        driver(engine, o.base.realtimeScale),
        server(serverOptionsFor(o, board)),
        fpt(engine, makeEnv(model, board)) {
    if (recorder != nullptr) client.setObserver(recorder.get());
    fpt.setExecutor(core::makeExecutor(o.base.threads));
    PipelineParams pipeline = o.base.pipeline;
    pipeline.slaves = o.base.slaves;
    fpt.configureFromText(
        buildAggregatorConfig(pipeline, o.firstNode, o.groupSize));
  }

  // The environment is copied into FptCore at construction, so every
  // service must be registered here, before the fpt member initializes.
  core::Environment makeEnv(const analysis::BlackBoxModel& model,
                            rpc::SummaryBoard& board) {
    core::Environment env;
    env.provide("bb_model", const_cast<analysis::BlackBoxModel*>(&model));
    env.provide("hl_sync", &sync);
    env.provide("rpc_client", &client);
    env.provide("node_health", &client.health());
    env.provide("summary_board", &board);
    env.provide("transports", &client.transports());
    return env;
  }

  AggregatorOptions opts;
  net::FanoutCollector collector;
  rpc::RpcClient client;
  std::unique_ptr<archive::ArchiveWriter> recorder;
  sim::SimEngine engine;
  modules::HadoopLogSync sync;
  core::RealTimeDriver driver;
  net::AggServer server;
  core::FptCore fpt;
  std::thread pumpThread;
};

AggregatorNode::AggregatorNode(const AggregatorOptions& opts,
                               const analysis::BlackBoxModel& model) {
  if (opts.groupSize < 1) {
    throw ConfigError("aggregator: group size must be >= 1");
  }
  if (opts.leafEndpoints.empty()) {
    throw ConfigError("aggregator: at least one leaf endpoint required");
  }
  impl_ = std::make_unique<Impl>(opts, model, board_);
}

AggregatorNode::~AggregatorNode() {
  if (impl_ == nullptr) return;
  impl_->driver.stop();
  if (impl_->pumpThread.joinable()) impl_->pumpThread.join();
}

std::uint16_t AggregatorNode::port() const { return impl_->server.port(); }

void AggregatorNode::run() {
  impl_->pumpThread = std::thread([this] {
    impl_->driver.run(impl_->opts.base.duration /
                      impl_->opts.base.realtimeScale);
  });
  impl_->server.run();
  impl_->driver.stop();
  if (impl_->pumpThread.joinable()) impl_->pumpThread.join();
  if (impl_->recorder != nullptr) impl_->recorder->close();
}

void AggregatorNode::stop() {
  impl_->driver.stop();
  impl_->server.stop();
}

namespace {

/// Root-side state for one aggregator region. Down is transient
/// (DESIGN.md §13): kUp --3 failed polls--> kDown --any successful
/// fetch--> kRejoining --fresh window on every channel--> kUp. Down
/// and rejoining regions merge as synthetic all-unmonitorable and
/// never gate the other regions' rounds; an up region with an empty
/// queue is merely awaited.
struct RootGroup {
  enum class State { kUp, kDown, kRejoining };

  std::unique_ptr<net::AggClient> client;
  int size = 0;
  /// Fetch watermark and undelivered windows, per summary channel.
  double since[rpc::kSummaryChannelCount] = {0.0, 0.0};
  std::deque<analysis::GroupSummary> queue[rpc::kSummaryChannelCount];
  bool connected[rpc::kSummaryChannelCount] = {false, false};
  int failStreak = 0;
  State state = State::kUp;
  /// Per-channel: a post-rejoin window has been queued (cursor moved).
  bool fresh[rpc::kSummaryChannelCount] = {false, false};
  long rejoins = 0;

  /// Whether this region's next window must exist before a round on
  /// channel `c` may merge.
  bool gates(int c) const {
    return state == State::kUp || (state == State::kRejoining && fresh[c]);
  }
};

/// Per-channel merge workspace mirroring the sim merge modules'
/// transition tracking (merge_bb_module.cpp).
struct ChannelMerge {
  analysis::TieredScratch scratch;
  std::vector<std::string> lastUnmonitorable;
  bool lastBelowQuorum = false;
};

void sortEvents(std::vector<core::MonitoringEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const core::MonitoringEvent& a,
                      const core::MonitoringEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.channel < b.channel;
                   });
}

}  // namespace

ExperimentResult runTieredLiveExperiment(const ExperimentSpec& spec) {
  const std::vector<int> groups = tierGroupsFor(spec);
  int totalNodes = 0;
  for (const int g : groups) totalNodes += g;
  if (totalNodes != spec.slaves) {
    throw ConfigError(
        strformat("tiered live: tier groups cover %d slaves, expected %d",
                  totalNodes, spec.slaves));
  }
  if (totalNodes < 3) {
    throw ConfigError("tiered live: need at least 3 nodes across groups");
  }
  if (spec.aggEndpoints.size() != groups.size()) {
    throw ConfigError(strformat(
        "tiered live: %zu aggregator endpoints for %zu groups "
        "(need exactly one per group, in topology order)",
        spec.aggEndpoints.size(), groups.size()));
  }
  const int quorum =
      spec.pipeline.quorum > 0 ? spec.pipeline.quorum
                               : std::max(3, totalNodes / 2 + 1);

  // Per-node labels matching the generated configuration's origins
  // (sadc/hadoop_log emit "slave<node>"), so MonitoringEvents name the
  // same nodes a sim tiered run would.
  std::vector<std::string> labels(static_cast<std::size_t>(totalNodes));
  for (int i = 0; i < totalNodes; ++i) {
    labels[static_cast<std::size_t>(i)] = strformat("slave%d", i + 1);
  }

  std::vector<RootGroup> regions(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    std::string host;
    std::uint16_t port = 0;
    net::parseEndpoint(spec.aggEndpoints[g], host, port);
    net::AggClient::Options copts;
    copts.host = host;
    copts.port = port;
    copts.timeoutSeconds = spec.rpcPolicy.timeoutSeconds;
    copts.backoffSeed = spec.seed * 2654435761ULL + 1000003ULL * (g + 1);
    regions[g].client = std::make_unique<net::AggClient>(copts);
    regions[g].size = groups[g];
  }

  // Tier-2 Table 4 accounting: same channel names and per-window byte
  // charges as the sim agg modules, so both topologies report the same
  // summary bandwidth.
  rpc::TransportRegistry transports;
  rpc::RpcChannelStats* chan[rpc::kSummaryChannelCount];
  chan[0] = &transports.channel("bb-summary-tcp");
  chan[1] = &transports.channel("wb-summary-tcp");
  chan[0]->setTier(2);
  chan[1]->setTier(2);

  ExperimentResult result;
  ChannelMerge merges[rpc::kSummaryChannelCount];
  std::vector<analysis::GroupSummary> synth(groups.size());
  std::vector<const analysis::GroupSummary*> ptrs(groups.size());
  std::vector<char> fromQueue(groups.size());

  // Merges every window that is ready on channel `c`. Windows pair by
  // ORDINAL across regions, not by timestamp: each region's log-sync
  // barrier drops the seconds its own group skipped, so regional
  // white-box grids drift a second or two around hiccups the flat
  // global barrier would have applied to everyone (DESIGN.md §12). The
  // k-th window from every region still covers the same slide of the
  // same workload; the global window time is the slowest region's —
  // when the flat barrier would have released it. A round is ready
  // when every gating region (see RootGroup::gates) has its next
  // window queued; a down or still-rejoining region with a drained
  // backlog joins as an all-unmonitorable synthetic summary — exactly
  // the shape a live aggregator publishes when all its leaves are
  // down — so quorum gating and degraded analysis follow the flat
  // semantics, and a down region never stalls the others' rounds.
  auto processChannel = [&](int c) {
    for (;;) {
      double t = 0.0;
      bool any = false;
      bool allLiveReady = true;
      for (const RootGroup& region : regions) {
        if (!region.queue[c].empty()) {
          any = true;
          t = std::max(t, region.queue[c].front().time);
        } else if (region.gates(c)) {
          allLiveReady = false;
        }
      }
      if (!any || !allLiveReady) return;

      std::size_t dims = 0;
      for (std::size_t g = 0; g < regions.size(); ++g) {
        RootGroup& region = regions[g];
        if (!region.queue[c].empty()) {
          ptrs[g] = &region.queue[c].front();
          fromQueue[g] = 1;
          dims = region.queue[c].front().dims;
        } else {
          fromQueue[g] = 0;
        }
      }
      for (std::size_t g = 0; g < regions.size(); ++g) {
        if (fromQueue[g]) continue;
        analysis::GroupSummary& s = synth[g];
        s.time = t;
        s.members = static_cast<std::size_t>(regions[g].size);
        s.dims = dims;
        s.hasDev = c == static_cast<int>(rpc::SummaryChannel::kWhiteBox);
        s.health.assign(s.members, 2.0);
        s.rows.clearRows();
        s.median.clear();
        s.median.dims = dims;
        s.devMedian.clear();
        s.devMedian.dims = dims;
        ptrs[g] = &s;
      }

      std::vector<double> health(static_cast<std::size_t>(totalNodes));
      std::vector<std::string> unmonitorable;
      std::size_t offset = 0;
      std::size_t survivors = 0;
      for (std::size_t g = 0; g < regions.size(); ++g) {
        const analysis::GroupSummary& s = *ptrs[g];
        for (std::size_t m = 0; m < s.members; ++m) {
          health[offset + m] = s.health[m];
          if (s.health[m] == 2.0) {
            unmonitorable.push_back(labels[offset + m]);
          } else {
            ++survivors;
          }
        }
        offset += s.members;
      }
      const bool belowQuorum =
          static_cast<int>(survivors) < std::max(quorum, 3);

      std::vector<double> flags(static_cast<std::size_t>(totalNodes), 0.0);
      std::vector<double> scores(static_cast<std::size_t>(totalNodes), 0.0);
      if (!belowQuorum) {
        if (c == static_cast<int>(rpc::SummaryChannel::kBlackBox)) {
          analysis::mergeBlackBoxSummaries(
              ptrs.data(), ptrs.size(), spec.pipeline.bbThreshold,
              merges[c].scratch, flags.data(), scores.data());
        } else {
          analysis::mergeWhiteBoxSummaries(ptrs.data(), ptrs.size(),
                                           spec.pipeline.wbK,
                                           merges[c].scratch, flags.data(),
                                           scores.data());
        }
      }

      ChannelMerge& ms = merges[c];
      if (unmonitorable != ms.lastUnmonitorable ||
          belowQuorum != ms.lastBelowQuorum) {
        ms.lastUnmonitorable = unmonitorable;
        ms.lastBelowQuorum = belowQuorum;
        core::MonitoringEvent event;
        event.time = t;
        event.channel =
            c == static_cast<int>(rpc::SummaryChannel::kBlackBox)
                ? "analysis_bb"
                : "analysis_wb";
        event.survivors = static_cast<int>(survivors);
        event.quorum = quorum;
        event.belowQuorum = belowQuorum;
        event.unmonitorable = std::move(unmonitorable);
        result.monitoringEvents.push_back(std::move(event));
      }

      analysis::AlarmRecord record;
      record.time = t;
      record.flags = std::move(flags);
      record.scores = std::move(scores);
      record.health = std::move(health);
      if (c == static_cast<int>(rpc::SummaryChannel::kBlackBox)) {
        result.blackBox.push_back(std::move(record));
      } else {
        result.whiteBox.push_back(std::move(record));
      }

      for (std::size_t g = 0; g < regions.size(); ++g) {
        if (fromQueue[g]) regions[g].queue[c].pop_front();
      }
    }
  };

  const double wallDuration = spec.duration / spec.realtimeScale;
  const double pollSeconds =
      std::max(0.05, spec.pipeline.windowSlide / spec.realtimeScale / 4.0);
  const double graceSeconds = std::max(2.0, 20.0 * pollSeconds);
  const auto start = std::chrono::steady_clock::now();
  int quietPolls = 0;
  std::vector<rpc::SummaryWindow> windows;
  for (;;) {
    bool anyNew = false;
    for (RootGroup& region : regions) {
      bool anySuccess = false;
      for (int c = 0; c < rpc::kSummaryChannelCount; ++c) {
        std::size_t responseBytes = 0;
        if (region.client->fetchSummary(static_cast<rpc::SummaryChannel>(c),
                                        region.since[c], windows,
                                        responseBytes)) {
          anySuccess = true;
          if (!region.connected[c]) {
            chan[c]->recordConnect();
            region.connected[c] = true;
          }
          chan[c]->recordCall(rpc::kSummaryRequestBytes, responseBytes);
          if (region.state == RootGroup::State::kDown) {
            // Liveness probe only — the cursor resets below; windows
            // fetched against the stale watermark are not queued.
            continue;
          }
          if (region.state == RootGroup::State::kRejoining &&
              !region.fresh[c] && !windows.empty()) {
            // Cursor catch-up: a restarted daemon's virtual clock (and
            // so its window grid) restarted from zero, so the backlog
            // it republished is stale history — resume from the
            // freshest window only and track its grid from there.
            analysis::GroupSummary summary;
            const rpc::SummaryWindow& w = windows.back();
            if (summary.unpack(w.packed.data(), w.packed.size()) &&
                summary.members == static_cast<std::size_t>(region.size)) {
              region.queue[c].push_back(std::move(summary));
              region.fresh[c] = true;
              anyNew = true;
            }
            region.since[c] = w.time;
            continue;
          }
          for (const rpc::SummaryWindow& w : windows) {
            analysis::GroupSummary summary;
            if (!summary.unpack(w.packed.data(), w.packed.size()) ||
                summary.members != static_cast<std::size_t>(region.size)) {
              logWarn("tiered live: dropping malformed summary window");
              continue;
            }
            region.queue[c].push_back(std::move(summary));
            anyNew = true;
          }
          if (!windows.empty()) region.since[c] = windows.back().time;
        } else {
          chan[c]->recordFailedCall(rpc::kSummaryRequestBytes);
        }
      }
      if (anySuccess) {
        region.failStreak = 0;
        if (region.state == RootGroup::State::kDown) {
          region.state = RootGroup::State::kRejoining;
          for (int c = 0; c < rpc::kSummaryChannelCount; ++c) {
            region.fresh[c] = false;
            region.queue[c].clear();
            region.since[c] = 0.0;
          }
          ++region.rejoins;
          logWarn("tiered live: aggregator answering again, region of " +
                  std::to_string(region.size) + " nodes rejoining");
        }
        if (region.state == RootGroup::State::kRejoining) {
          bool allFresh = true;
          for (int c = 0; c < rpc::kSummaryChannelCount; ++c) {
            if (!region.fresh[c]) allFresh = false;
          }
          if (allFresh) {
            region.state = RootGroup::State::kUp;
            logWarn("tiered live: region of " + std::to_string(region.size) +
                    " nodes re-admitted (fresh windows on every channel)");
          }
        }
      } else if (region.state != RootGroup::State::kDown &&
                 ++region.failStreak >= 3) {
        region.state = RootGroup::State::kDown;
        logWarn("tiered live: aggregator unresponsive, region of " +
                std::to_string(region.size) +
                " nodes merges as unmonitorable until it rejoins");
      }
    }

    for (int c = 0; c < rpc::kSummaryChannelCount; ++c) {
      processChannel(c);
    }

    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (elapsed >= wallDuration) {
      // Past the nominal end: drain until the aggregators go quiet (a
      // few empty polls) or the grace budget runs out.
      quietPolls = anyNew ? 0 : quietPolls + 1;
      if (quietPolls >= 3 || elapsed >= wallDuration + graceSeconds) break;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(pollSeconds));
  }
  // No separate flush: a window some live region never delivered is a
  // shutdown-timing artifact, not a monitorable signal, and stays
  // unmerged. (Down regions were synthesized round by round above.)

  sortEvents(result.monitoringEvents);

  // Ground truth comes from the spec, like the flat live path: the
  // caller started the leaf daemons with the same fault parameters.
  result.truth.slaveIndex =
      spec.fault.type == faults::FaultType::kNone ? -1 : spec.fault.node - 1;
  result.truth.faultStart = spec.fault.startTime;
  result.truth.faultEnd = spec.fault.endTime;
  result.simulatedSeconds = spec.duration;

  // Table 4, tier 2. (Tier-1 collection traffic and Table 3 daemon
  // costs accrue inside the aggregator processes, not here.)
  for (const rpc::RpcChannelStats* ch : transports.channels()) {
    if (ch->calls() == 0 && ch->failedCalls() == 0) continue;
    RpcChannelReport report;
    report.name = ch->name();
    report.tier = ch->tier();
    report.connects = ch->connects();
    report.calls = ch->calls();
    report.failedCalls = ch->failedCalls();
    report.staticOverheadKb =
        ch->connects() == 0
            ? 0.0
            : ch->staticOverheadBytes() / ch->connects() / 1024.0;
    report.perIterationKbPerSec =
        ch->totalCallBytes() / spec.slaves / spec.duration / 1024.0;
    result.rpcChannels.push_back(report);
  }
  return result;
}

}  // namespace asdf::harness
