// Per-scenario-class accuracy reporting (DESIGN.md §16).
//
// The paper's Fig 7 / Table 4 numbers aggregate over single-node
// faults. Correlated scenarios (faults/scenarios.h) break differently
// per class — a rack partition floods the flags, a cascade tempts the
// fingerpointer into blaming innocent rack peers — so this runner
// scores each class separately: balanced accuracy, FP rate, and
// localization latency per approach (black-box, white-box, combined),
// one row per scenario class, plus the confusion-count aggregate whose
// consistency with the rows is property-tested.
//
// Every row also carries two FNV-1a fingerprints — of the scenario's
// event log and of the alarm series — used by bench_scenarios to gate
// the determinism contract (two runs of one spec must agree on both)
// and by the flat-identity check (a racks == 1 run must fingerprint
// identically to the pre-topology simulator on the same seed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/bbmodel.h"
#include "harness/experiment.h"

namespace asdf::harness {

/// One scenario class's scored run.
struct ScenarioOutcome {
  faults::ScenarioClass cls = faults::ScenarioClass::kNone;
  std::string name;
  ApproachSummary blackBox;
  ApproachSummary whiteBox;
  ApproachSummary combined;
  /// Ground-truth culprit slave indices (0-based, ascending).
  std::vector<int> culprits;
  std::size_t eventCount = 0;
  std::uint64_t eventFingerprint = 0;
  std::uint64_t alarmFingerprint = 0;
};

struct ScenarioMatrix {
  std::vector<ScenarioOutcome> rows;
  /// Confusion counts summed across rows; latency averaged over rows
  /// that localized (negative when none did). rowsSumToAggregate()
  /// in the tests asserts rows vs. these.
  ApproachSummary blackBox;
  ApproachSummary whiteBox;
  ApproachSummary combined;
};

/// FNV-1a 64 over an alarm series' (time, flags, scores) doubles —
/// byte-exact, so equal fingerprints mean byte-identical alarms.
std::uint64_t fingerprintAlarms(const analysis::AlarmSeries& series);

/// FNV-1a 64 over an event log's (time, what) entries.
std::uint64_t fingerprintEvents(
    const std::vector<faults::ScenarioEvent>& events);

/// The matrix's canonical spec for one scenario class on a base spec:
/// scenario seed derived from (base seed, class), onset at 30% of the
/// run, a partition healing at 75% (exercising the restore path),
/// other classes active until the end. Clears any single-node fault.
ExperimentSpec specForScenario(const ExperimentSpec& base,
                               faults::ScenarioClass cls);

/// Runs and scores one scenario class with a pre-trained model.
ScenarioOutcome runScenarioClass(const ExperimentSpec& base,
                                 faults::ScenarioClass cls,
                                 const analysis::BlackBoxModel& model);

/// Fills a matrix's aggregate summaries from its rows (confusion
/// counts summed, latency averaged over localized rows).
void aggregateMatrix(ScenarioMatrix& matrix);

/// Runs all four classes (matrix order) and fills the aggregate.
ScenarioMatrix runScenarioMatrix(const ExperimentSpec& base,
                                 const analysis::BlackBoxModel& model);

/// Human-readable per-class table (examples / CLI).
std::string formatScenarioMatrix(const ScenarioMatrix& matrix);

}  // namespace asdf::harness
