#include "harness/pipelines.h"

#include <numeric>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace asdf::harness {
namespace {

void checkTierGroups(const PipelineParams& p) {
  if (p.tierGroups.empty()) return;
  int total = 0;
  for (const int g : p.tierGroups) {
    if (g < 1) throw ConfigError("pipelines: tier group sizes must be >= 1");
    total += g;
  }
  if (total != p.slaves) {
    throw ConfigError(
        strformat("pipelines: tier groups cover %d slaves, expected %d",
                  total, p.slaves));
  }
}

void appendBlackBoxCollection(std::ostringstream& out,
                              const PipelineParams& p, int firstNode,
                              int count) {
  for (int i = firstNode; i < firstNode + count; ++i) {
    out << strformat(
        "[sadc]\n"
        "id = sadc%d\n"
        "node = %d\n"
        "interval = 1\n\n",
        i, i);
    out << strformat(
        "[knn]\n"
        "id = onenn%d\n"
        "k = 1\n"
        "input[input] = sadc%d.output0\n\n",
        i, i);
    out << strformat(
        "[ibuffer]\n"
        "id = buf%d\n"
        "input[input] = onenn%d.output0\n"
        "size = %d\n"
        "slide = %d\n\n",
        i, i, p.windowSize, p.windowSlide);
  }
}

void appendAggBb(std::ostringstream& out, int group, int firstNode,
                 int count) {
  out << strformat(
      "[agg_bb]\n"
      "id = aggbb%d\n",
      group);
  for (int i = 0; i < count; ++i) {
    out << strformat("input[l%d] = buf%d.output0\n", i, firstNode + i);
  }
  out << "\n";
}

void appendBlackBox(std::ostringstream& out, const PipelineParams& p) {
  appendBlackBoxCollection(out, p, 1, p.slaves);
  if (p.tierGroups.empty()) {
    out << strformat(
        "[analysis_bb]\n"
        "id = analysis_bb\n"
        "threshold = %g\n"
        "window = %d\n"
        "slide = %d\n"
        "quorum = %d\n",
        p.bbThreshold, p.windowSize, p.windowSlide, p.quorum);
    for (int i = 1; i <= p.slaves; ++i) {
      out << strformat("input[l%d] = buf%d.output0\n", i - 1, i);
    }
  } else {
    int firstNode = 1;
    for (std::size_t g = 0; g < p.tierGroups.size(); ++g) {
      appendAggBb(out, static_cast<int>(g + 1), firstNode, p.tierGroups[g]);
      firstNode += p.tierGroups[g];
    }
    // The merge instance keeps the flat id so alarm channels, origins
    // and MonitoringEvents are byte-identical across topologies.
    out << strformat(
        "[analysis_bb_merge]\n"
        "id = analysis_bb\n"
        "threshold = %g\n"
        "window = %d\n"
        "slide = %d\n"
        "quorum = %d\n",
        p.bbThreshold, p.windowSize, p.windowSlide, p.quorum);
    for (std::size_t g = 0; g < p.tierGroups.size(); ++g) {
      out << strformat("input[s%zu] = aggbb%zu.summary\n", g, g + 1);
    }
  }
  out << strformat(
      "\n[print]\n"
      "id = BlackBoxAlarm\n"
      "quiet = %d\n"
      "input[a] = @analysis_bb\n\n",
      p.quietPrint ? 1 : 0);
}

void appendWhiteBoxCollection(std::ostringstream& out,
                              const PipelineParams& p, int firstNode,
                              int count) {
  for (int i = firstNode; i < firstNode + count; ++i) {
    out << strformat(
        "[hadoop_log]\n"
        "id = hl%d\n"
        "node = %d\n"
        "interval = 1\n\n",
        i, i);
    out << strformat(
        "[mavgvec]\n"
        "id = mavg%d\n"
        "window = %d\n"
        "slide = %d\n"
        "input[input] = hl%d.output0\n\n",
        i, p.windowSize, p.windowSlide, i);
  }
}

void appendAggWb(std::ostringstream& out, int group, int firstNode,
                 int count) {
  out << strformat(
      "[agg_wb]\n"
      "id = aggwb%d\n",
      group);
  for (int i = 0; i < count; ++i) {
    out << strformat("input[a%d] = mavg%d.mean\n", i, firstNode + i);
    out << strformat("input[d%d] = mavg%d.stddev\n", i, firstNode + i);
  }
  out << "\n";
}

void appendWhiteBox(std::ostringstream& out, const PipelineParams& p) {
  appendWhiteBoxCollection(out, p, 1, p.slaves);
  if (p.tierGroups.empty()) {
    out << strformat(
        "[analysis_wb]\n"
        "id = analysis_wb\n"
        "k = %g\n"
        "quorum = %d\n",
        p.wbK, p.quorum);
    for (int i = 1; i <= p.slaves; ++i) {
      out << strformat("input[a%d] = mavg%d.mean\n", i - 1, i);
      out << strformat("input[d%d] = mavg%d.stddev\n", i - 1, i);
    }
  } else {
    int firstNode = 1;
    for (std::size_t g = 0; g < p.tierGroups.size(); ++g) {
      appendAggWb(out, static_cast<int>(g + 1), firstNode, p.tierGroups[g]);
      firstNode += p.tierGroups[g];
    }
    out << strformat(
        "[analysis_wb_merge]\n"
        "id = analysis_wb\n"
        "k = %g\n"
        "quorum = %d\n",
        p.wbK, p.quorum);
    for (std::size_t g = 0; g < p.tierGroups.size(); ++g) {
      out << strformat("input[s%zu] = aggwb%zu.summary\n", g, g + 1);
    }
  }
  out << strformat(
      "\n[print]\n"
      "id = WhiteBoxAlarm\n"
      "quiet = %d\n"
      "input[a] = @analysis_wb\n\n",
      p.quietPrint ? 1 : 0);
}

void appendNodeHealth(std::ostringstream& out, const PipelineParams& p) {
  if (!p.nodeHealth) return;
  out << "[node_health]\n"
         "id = node_health\n"
         "interval = 1\n\n";
  if (!p.nodeHealthCsv.empty()) {
    out << strformat(
        "[csv_sink]\n"
        "id = health_csv\n"
        "file = %s\n"
        "input[h] = node_health.health\n\n",
        p.nodeHealthCsv.c_str());
  }
}

}  // namespace

std::string buildBlackBoxConfig(const PipelineParams& params) {
  checkTierGroups(params);
  std::ostringstream out;
  out << "# ASDF black-box pipeline (generated)\n\n";
  appendBlackBox(out, params);
  return out.str();
}

std::string buildWhiteBoxConfig(const PipelineParams& params) {
  checkTierGroups(params);
  std::ostringstream out;
  out << "# ASDF white-box pipeline (generated)\n\n";
  appendWhiteBox(out, params);
  return out.str();
}

std::string buildCombinedConfig(const PipelineParams& params) {
  checkTierGroups(params);
  std::ostringstream out;
  out << "# ASDF combined black-box + white-box pipeline (generated)\n\n";
  appendBlackBox(out, params);
  appendWhiteBox(out, params);
  appendNodeHealth(out, params);
  return out.str();
}

std::string buildAggregatorConfig(const PipelineParams& params,
                                  int firstNode, int groupSize) {
  if (firstNode < 1 || groupSize < 1) {
    throw ConfigError("pipelines: aggregator group must be >= 1 node");
  }
  std::ostringstream out;
  out << "# ASDF aggregator pipeline (generated)\n\n";
  appendBlackBoxCollection(out, params, firstNode, groupSize);
  appendAggBb(out, 1, firstNode, groupSize);
  appendWhiteBoxCollection(out, params, firstNode, groupSize);
  appendAggWb(out, 1, firstNode, groupSize);
  return out.str();
}

}  // namespace asdf::harness
