#include "harness/pipelines.h"

#include <sstream>

#include "common/strings.h"

namespace asdf::harness {
namespace {

void appendBlackBox(std::ostringstream& out, const PipelineParams& p) {
  for (int i = 1; i <= p.slaves; ++i) {
    out << strformat(
        "[sadc]\n"
        "id = sadc%d\n"
        "node = %d\n"
        "interval = 1\n\n",
        i, i);
    out << strformat(
        "[knn]\n"
        "id = onenn%d\n"
        "k = 1\n"
        "input[input] = sadc%d.output0\n\n",
        i, i);
    out << strformat(
        "[ibuffer]\n"
        "id = buf%d\n"
        "input[input] = onenn%d.output0\n"
        "size = %d\n"
        "slide = %d\n\n",
        i, i, p.windowSize, p.windowSlide);
  }
  out << strformat(
      "[analysis_bb]\n"
      "id = analysis_bb\n"
      "threshold = %g\n"
      "window = %d\n"
      "slide = %d\n"
      "quorum = %d\n",
      p.bbThreshold, p.windowSize, p.windowSlide, p.quorum);
  for (int i = 1; i <= p.slaves; ++i) {
    out << strformat("input[l%d] = buf%d.output0\n", i - 1, i);
  }
  out << strformat(
      "\n[print]\n"
      "id = BlackBoxAlarm\n"
      "quiet = %d\n"
      "input[a] = @analysis_bb\n\n",
      p.quietPrint ? 1 : 0);
}

void appendWhiteBox(std::ostringstream& out, const PipelineParams& p) {
  for (int i = 1; i <= p.slaves; ++i) {
    out << strformat(
        "[hadoop_log]\n"
        "id = hl%d\n"
        "node = %d\n"
        "interval = 1\n\n",
        i, i);
    out << strformat(
        "[mavgvec]\n"
        "id = mavg%d\n"
        "window = %d\n"
        "slide = %d\n"
        "input[input] = hl%d.output0\n\n",
        i, p.windowSize, p.windowSlide, i);
  }
  out << strformat(
      "[analysis_wb]\n"
      "id = analysis_wb\n"
      "k = %g\n"
      "quorum = %d\n",
      p.wbK, p.quorum);
  for (int i = 1; i <= p.slaves; ++i) {
    out << strformat("input[a%d] = mavg%d.mean\n", i - 1, i);
    out << strformat("input[d%d] = mavg%d.stddev\n", i - 1, i);
  }
  out << strformat(
      "\n[print]\n"
      "id = WhiteBoxAlarm\n"
      "quiet = %d\n"
      "input[a] = @analysis_wb\n\n",
      p.quietPrint ? 1 : 0);
}

void appendNodeHealth(std::ostringstream& out, const PipelineParams& p) {
  if (!p.nodeHealth) return;
  out << "[node_health]\n"
         "id = node_health\n"
         "interval = 1\n\n";
  if (!p.nodeHealthCsv.empty()) {
    out << strformat(
        "[csv_sink]\n"
        "id = health_csv\n"
        "file = %s\n"
        "input[h] = node_health.health\n\n",
        p.nodeHealthCsv.c_str());
  }
}

}  // namespace

std::string buildBlackBoxConfig(const PipelineParams& params) {
  std::ostringstream out;
  out << "# ASDF black-box pipeline (generated)\n\n";
  appendBlackBox(out, params);
  return out.str();
}

std::string buildWhiteBoxConfig(const PipelineParams& params) {
  std::ostringstream out;
  out << "# ASDF white-box pipeline (generated)\n\n";
  appendWhiteBox(out, params);
  return out.str();
}

std::string buildCombinedConfig(const PipelineParams& params) {
  std::ostringstream out;
  out << "# ASDF combined black-box + white-box pipeline (generated)\n\n";
  appendBlackBox(out, params);
  appendWhiteBox(out, params);
  appendNodeHealth(out, params);
  return out.str();
}

}  // namespace asdf::harness
