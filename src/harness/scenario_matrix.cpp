#include "harness/scenario_matrix.h"

#include <cstdio>
#include <cstring>

namespace asdf::harness {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnvBytes(std::uint64_t& h, const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnvDouble(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  fnvBytes(h, &bits, sizeof bits);
}

ApproachSummary aggregateOf(const ScenarioMatrix& matrix,
                            ApproachSummary ScenarioOutcome::* member) {
  ApproachSummary agg;
  double latencySum = 0.0;
  int localized = 0;
  for (const ScenarioOutcome& row : matrix.rows) {
    const ApproachSummary& s = row.*member;
    agg.eval.tp += s.eval.tp;
    agg.eval.fp += s.eval.fp;
    agg.eval.tn += s.eval.tn;
    agg.eval.fn += s.eval.fn;
    if (s.latencySeconds >= 0.0) {
      latencySum += s.latencySeconds;
      ++localized;
    }
  }
  agg.latencySeconds = localized > 0 ? latencySum / localized : -1.0;
  return agg;
}

}  // namespace

std::uint64_t fingerprintAlarms(const analysis::AlarmSeries& series) {
  std::uint64_t h = kFnvOffset;
  for (const analysis::AlarmRecord& record : series) {
    fnvDouble(h, record.time);
    for (double f : record.flags) fnvDouble(h, f);
    for (double s : record.scores) fnvDouble(h, s);
  }
  return h;
}

std::uint64_t fingerprintEvents(
    const std::vector<faults::ScenarioEvent>& events) {
  std::uint64_t h = kFnvOffset;
  for (const faults::ScenarioEvent& e : events) {
    fnvDouble(h, e.time);
    fnvBytes(h, e.what.data(), e.what.size());
  }
  return h;
}

ExperimentSpec specForScenario(const ExperimentSpec& base,
                               faults::ScenarioClass cls) {
  ExperimentSpec spec = base;
  spec.fault = faults::FaultSpec{};
  spec.scenario = base.scenario;
  spec.scenario.cls = cls;
  // Per-class scenario stream, decorrelated from the cluster streams
  // (which hash the base seed with different multipliers).
  spec.scenario.seed =
      base.seed * 1000003ULL + static_cast<std::uint64_t>(cls) * 7919ULL;
  if (spec.scenario.startTime <= 0.0) {
    spec.scenario.startTime = 0.3 * spec.duration;
  }
  if (cls == faults::ScenarioClass::kRackPartition &&
      spec.scenario.endTime == kNoTime) {
    spec.scenario.endTime = 0.75 * spec.duration;
  }
  return spec;
}

ScenarioOutcome runScenarioClass(const ExperimentSpec& base,
                                 faults::ScenarioClass cls,
                                 const analysis::BlackBoxModel& model) {
  const ExperimentSpec spec = specForScenario(base, cls);
  const ExperimentResult result = runExperiment(spec, model);
  const ExperimentSummary summary = summarize(result);

  ScenarioOutcome out;
  out.cls = cls;
  out.name = faults::scenarioName(cls);
  out.blackBox = summary.blackBox;
  out.whiteBox = summary.whiteBox;
  out.combined = summary.combined;
  out.culprits = result.truth.culprits;
  out.eventCount = result.scenarioEvents.size();
  out.eventFingerprint = fingerprintEvents(result.scenarioEvents);
  std::uint64_t h = kFnvOffset;
  const std::uint64_t bb = fingerprintAlarms(result.blackBox);
  const std::uint64_t wb = fingerprintAlarms(result.whiteBox);
  fnvBytes(h, &bb, sizeof bb);
  fnvBytes(h, &wb, sizeof wb);
  out.alarmFingerprint = h;
  return out;
}

void aggregateMatrix(ScenarioMatrix& matrix) {
  matrix.blackBox = aggregateOf(matrix, &ScenarioOutcome::blackBox);
  matrix.whiteBox = aggregateOf(matrix, &ScenarioOutcome::whiteBox);
  matrix.combined = aggregateOf(matrix, &ScenarioOutcome::combined);
}

ScenarioMatrix runScenarioMatrix(const ExperimentSpec& base,
                                 const analysis::BlackBoxModel& model) {
  ScenarioMatrix matrix;
  for (faults::ScenarioClass cls : faults::allScenarios()) {
    matrix.rows.push_back(runScenarioClass(base, cls, model));
  }
  aggregateMatrix(matrix);
  return matrix;
}

std::string formatScenarioMatrix(const ScenarioMatrix& matrix) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%-16s %28s %28s %28s\n", "scenario",
                "black-box acc%/fpr%/lat", "white-box acc%/fpr%/lat",
                "combined acc%/fpr%/lat");
  out += line;
  auto cell = [](const ApproachSummary& s) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%6.2f /%6.2f /%7.1f",
                  s.eval.balancedAccuracyPct(),
                  s.eval.falsePositiveRatePct(), s.latencySeconds);
    return std::string(buf);
  };
  for (const ScenarioOutcome& row : matrix.rows) {
    std::snprintf(line, sizeof line, "%-16s %28s %28s %28s\n",
                  row.name.c_str(), cell(row.blackBox).c_str(),
                  cell(row.whiteBox).c_str(), cell(row.combined).c_str());
    out += line;
  }
  std::snprintf(line, sizeof line, "%-16s %28s %28s %28s\n", "aggregate",
                cell(matrix.blackBox).c_str(), cell(matrix.whiteBox).c_str(),
                cell(matrix.combined).c_str());
  out += line;
  return out;
}

}  // namespace asdf::harness
