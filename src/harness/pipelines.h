// fpt-core configuration builders for the Hadoop deployment.
//
// The harness does not wire modules programmatically: it emits the
// same kind of configuration text a system administrator would write
// (Figures 3 and 4 of the paper) and feeds it through the real parser
// and DAG builder, so every experiment also exercises the
// configuration path end to end.
#pragma once

#include <string>
#include <vector>

namespace asdf::harness {

struct PipelineParams {
  int slaves = 16;
  int windowSize = 60;   // samples per analysis window
  int windowSlide = 5;   // samples between windows
  double bbThreshold = 60.0;
  double wbK = 3.0;
  bool quietPrint = true;
  /// Minimum surviving (monitorable) peers for analysis alarms to be
  /// valid; 0 = the modules' majority default (N/2 + 1, at least 3).
  int quorum = 0;
  /// Emit a [node_health] section (requires the harness to provide the
  /// "node_health" registry service), optionally recorded to CSV.
  bool nodeHealth = false;
  std::string nodeHealthCsv;  // empty = no csv_sink section
  /// Aggregation-tier topology (DESIGN.md §12): group sizes covering
  /// the slaves in ascending contiguous ranges. Empty = flat analysis
  /// (the default; byte-identical to pre-tier configurations). When
  /// set, the builders interpose one agg_bb/agg_wb per group and the
  /// analysis instances become analysis_bb_merge/analysis_wb_merge —
  /// keeping the flat instance ids, so alarm channels, origins and
  /// MonitoringEvents are unchanged. Sizes must sum to `slaves`.
  std::vector<int> tierGroups;
};

/// Black-box pipeline: per slave sadc -> knn -> ibuffer, then one
/// analysis_bb across all slaves feeding a print sink named
/// "BlackBoxAlarm".
std::string buildBlackBoxConfig(const PipelineParams& params);

/// White-box pipeline: per slave hadoop_log -> mavgvec, then one
/// analysis_wb across all slaves feeding "WhiteBoxAlarm".
std::string buildWhiteBoxConfig(const PipelineParams& params);

/// Both pipelines in one DAG (the deployment of Figure 4, which runs
/// black-box and white-box analyses in parallel).
std::string buildCombinedConfig(const PipelineParams& params);

/// One live aggregator's pipeline: the collection and reduce stages
/// for slaves [firstNode, firstNode + groupSize) only — per-slave
/// sadc -> knn -> ibuffer feeding one agg_bb, and hadoop_log ->
/// mavgvec feeding one agg_wb. No merge, no print: the summaries are
/// published through the "summary_board" environment service and
/// served upward by the aggregator daemon (DESIGN.md §12).
std::string buildAggregatorConfig(const PipelineParams& params,
                                  int firstNode, int groupSize);

}  // namespace asdf::harness
