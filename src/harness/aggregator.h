// The aggregation tier's live processes (DESIGN.md §12).
//
// AggregatorNode is the heart of asdf_aggd: one region's collection
// and reduce stages. It runs the buildAggregatorConfig() pipeline —
// per-leaf collection chains feeding one agg_bb and one agg_wb — on a
// RealTimeDriver against the region's leaf asdf_rpcd daemons, and
// re-serves the published GroupSummary windows upward through a
// net::AggServer on the same CRC-framed protocol.
//
// runTieredLiveExperiment() is the root: it fetches summaries from
// every aggregator, aligns windows across regions by virtual time,
// merges them with the exact kernels the sim merge modules use
// (analysis/partials.h), and applies the same quorum gating and
// MonitoringEvent semantics. An aggregator that stops answering is
// marked down after a failure streak and its whole region merges as
// unmonitorable — degraded analysis, not a crash — but down is
// transient: the root keeps probing (redials are backoff-gated in
// FramedClient, never a hot loop) and re-admits the region when the
// daemon answers again, resuming its summary cursor from the freshest
// published window (DESIGN.md §13 rejoin state machine).
#pragma once

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.h"
#include "rpc/summary.h"

namespace asdf {
namespace net {
class AggServer;
class FanoutCollector;
}  // namespace net
namespace core {
class FptCore;
class RealTimeDriver;
}  // namespace core
namespace archive {
class ArchiveWriter;
}  // namespace archive
}  // namespace asdf

namespace asdf::harness {

struct AggregatorOptions {
  /// The whole experiment's spec: total slave count, seed, window
  /// geometry, rpc policy, realtimeScale, duration — shared by every
  /// tier so the schedules line up. archiveDir, when set, flight-
  /// records this aggregator's collection rounds (the per-tier tap).
  ExperimentSpec base;
  /// The region: monitored nodes [firstNode, firstNode + groupSize).
  int firstNode = 1;
  int groupSize = 0;
  /// Leaf asdf_rpcd endpoints ("host:port"): one per node, or fewer
  /// shared ones (see net::FanoutCollector routing).
  std::vector<std::string> leafEndpoints;
  std::uint16_t port = 0;  // summary serving port (0 = ephemeral)
  /// Idle-connection reaping on the summary server (0 = never).
  double idleTimeoutSeconds = 0.0;
  /// Network-plane shards on the summary server (--shards; see
  /// net::ShardGroup). 1 = the classic single loop.
  int shards = 1;
};

class AggregatorNode {
 public:
  /// Connects to every leaf (throws NetError when one is unreachable).
  /// The model must be the same one every other tier trained — same
  /// base seed, same derivations (trainModel()).
  AggregatorNode(const AggregatorOptions& opts,
                 const analysis::BlackBoxModel& model);
  ~AggregatorNode();
  AggregatorNode(const AggregatorNode&) = delete;
  AggregatorNode& operator=(const AggregatorNode&) = delete;

  std::uint16_t port() const;
  const rpc::SummaryBoard& board() const { return board_; }

  /// Pumps the pipeline for base.duration virtual seconds while
  /// serving summary fetches; keeps serving after the pipeline
  /// finishes until stop() or a kShutdown frame. Blocks.
  void run();
  /// Thread-safe; makes run() return.
  void stop();

 private:
  struct Impl;
  rpc::SummaryBoard board_;
  std::unique_ptr<Impl> impl_;
};

/// The root of a live tiered deployment: merges summaries fetched
/// from spec.aggEndpoints (one per tierGroupsFor(spec) entry) into
/// the same alarms, monitoring events and per-tier Table 4 channel
/// reports runExperiment() produces. Dispatched by runExperiment()
/// when transport == kLive && tiered.
ExperimentResult runTieredLiveExperiment(const ExperimentSpec& spec);

}  // namespace asdf::harness
