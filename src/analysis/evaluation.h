// Evaluation metrics (Section 4.6): false-positive rate on fault-free
// traces, balanced accuracy against injected-fault ground truth, and
// fingerpointing latency (injection -> first correct alarm).
#pragma once

#include <vector>

#include "common/types.h"

namespace asdf::analysis {

/// One emitted analysis window: flags/scores per slave node, in slave
/// order (index 0 = slave 1).
struct AlarmRecord {
  SimTime time = kNoTime;
  std::vector<double> flags;
  std::vector<double> scores;
  /// Monitoring health per node (0 healthy / 1 degraded /
  /// 2 unmonitorable); empty for pipelines without the fault-tolerant
  /// collection layer.
  std::vector<double> health;
};

using AlarmSeries = std::vector<AlarmRecord>;

/// What was actually injected. slaveIndex is 0-based (node 1 -> 0);
/// a negative slaveIndex means a fault-free run. Correlated scenarios
/// (faults/scenarios.h) can name several culprits at once via
/// `culprits`; when it is empty the single-culprit semantics of
/// slaveIndex apply unchanged, keeping every pre-scenario evaluation
/// byte-identical.
struct GroundTruth {
  int slaveIndex = -1;
  SimTime faultStart = kNoTime;
  SimTime faultEnd = kNoTime;  // kNoTime = until end of trace
  /// 0-based culprit slave indices, ascending; empty = slaveIndex only.
  std::vector<int> culprits;
  bool anyCulprit() const { return slaveIndex >= 0 || !culprits.empty(); }
  bool isCulprit(int idx) const {
    if (culprits.empty()) return idx >= 0 && idx == slaveIndex;
    for (int c : culprits) {
      if (c == idx) return true;
    }
    return false;
  }
  bool activeAt(SimTime t) const {
    return anyCulprit() && t >= faultStart &&
           (faultEnd == kNoTime || t <= faultEnd);
  }
};

struct EvalResult {
  long tp = 0, fp = 0, tn = 0, fn = 0;
  double truePositiveRate() const;
  double trueNegativeRate() const;
  /// (TPR + TNR) / 2, in percent — the paper's headline metric.
  double balancedAccuracyPct() const;
  /// FP / (FP + TN), in percent.
  double falsePositiveRatePct() const;
};

/// Scores per-(window, node) decisions: a positive is "fault active at
/// the window's time AND node is the culprit".
EvalResult evaluate(const AlarmSeries& series, const GroundTruth& truth);

/// Seconds from injection to the first window whose flags include any
/// culprit; negative when no culprit was flagged after start.
double fingerpointingLatency(const AlarmSeries& series,
                             const GroundTruth& truth);

/// Re-thresholds a recorded series from its scores: flag = score >
/// threshold. Enables offline threshold sweeps (Figures 6a/6b).
AlarmSeries applyThreshold(const AlarmSeries& series, double threshold);

/// Alarm-confidence filter: a node's flag survives only when it was
/// raised in `consecutive` successive windows (reported at the last of
/// them). The paper waits for 3 consecutive anomalous windows before
/// fingerpointing — the source of its ~200 s latencies.
AlarmSeries requireConsecutive(const AlarmSeries& series, int consecutive);

/// Union of two analyses' alarms (the paper's "combined" approach).
/// Records are matched by window time within `slack` seconds; a window
/// present in only one series contributes its flags alone.
AlarmSeries combineUnion(const AlarmSeries& a, const AlarmSeries& b,
                         double slack = 5.0);

/// Convenience: percentage of flagged (window, node) decisions —
/// evaluates the FP rate of a fault-free trace.
double flaggedFractionPct(const AlarmSeries& series);

}  // namespace asdf::analysis
