#include "analysis/partials.h"

#include <algorithm>
#include <cmath>

#include "analysis/peercompare.h"
#include "common/stats.h"

namespace asdf::analysis {
namespace {

constexpr std::size_t kNoPart = static_cast<std::size_t>(-1);

// An unpack() guard, not a capacity limit: a summary datagram claiming
// more members than this is malformed, never real.
constexpr double kMaxUnpackCount = 1.0e7;

bool isCount(double v) {
  return v >= 0.0 && v <= kMaxUnpackCount && v == std::floor(v);
}

}  // namespace

void reduceMedianPartial(const double* const* rows, std::size_t n,
                         std::size_t dims, MedianPartial& out) {
  out.members = n;
  out.dims = dims;
  out.sorted.resize(n * dims);
  for (std::size_t d = 0; d < dims; ++d) {
    double* column = out.sorted.data() + d * n;
    for (std::size_t r = 0; r < n; ++r) column[r] = rows[r][d];
    std::sort(column, column + n);
  }
}

void mergeMedianPartials(const MedianPartial* const* parts,
                         std::size_t nparts, std::size_t dims,
                         MergeScratch& scratch, double* out) {
  std::size_t total = 0;
  for (std::size_t p = 0; p < nparts; ++p) total += parts[p]->members;
  if (total == 0) {
    std::fill(out, out + dims, 0.0);
    return;
  }
  const std::size_t mid = total / 2;
  const bool odd = (total % 2) == 1;
  scratch.cursor.resize(nparts);
  for (std::size_t d = 0; d < dims; ++d) {
    std::fill(scratch.cursor.begin(), scratch.cursor.end(),
              static_cast<std::size_t>(0));
    // Count-and-select: pop the global minimum across the sorted
    // columns until the median rank(s) are reached. This visits the
    // multiset in nondecreasing order, so rank r's value equals the
    // r-th order statistic of the concatenation — exactly what
    // nth_element selects in medianInPlace().
    double lo = 0.0;
    double hi = 0.0;
    for (std::size_t rank = 0; rank <= mid; ++rank) {
      std::size_t best = kNoPart;
      double bestValue = 0.0;
      for (std::size_t p = 0; p < nparts; ++p) {
        const MedianPartial& part = *parts[p];
        const std::size_t c = scratch.cursor[p];
        if (c >= part.members) continue;
        const double v = part.sorted[d * part.members + c];
        if (best == kNoPart || v < bestValue) {
          best = p;
          bestValue = v;
        }
      }
      ++scratch.cursor[best];
      if (rank + 1 == mid) lo = bestValue;
      if (rank == mid) hi = bestValue;
    }
    // Same arithmetic as medianInPlace(): odd count takes the middle
    // element; even count averages the two middle elements.
    out[d] = odd ? hi : 0.5 * (lo + hi);
  }
}

std::size_t GroupSummary::survivors() const {
  std::size_t s = 0;
  for (const double h : health) {
    if (h != 2.0) ++s;
  }
  return s;
}

void GroupSummary::pack(std::vector<double>& out) const {
  const std::size_t s = survivors();
  out.clear();
  out.reserve(4 + members + (hasDev ? 3 : 2) * s * dims);
  out.push_back(time);
  out.push_back(static_cast<double>(members));
  out.push_back(static_cast<double>(dims));
  out.push_back(hasDev ? 1.0 : 0.0);
  out.insert(out.end(), health.begin(), health.end());
  const std::vector<double>& flatRows = rows.flat();
  out.insert(out.end(), flatRows.begin(), flatRows.end());
  out.insert(out.end(), median.sorted.begin(), median.sorted.end());
  if (hasDev) {
    out.insert(out.end(), devMedian.sorted.begin(), devMedian.sorted.end());
  }
}

bool GroupSummary::unpack(const double* data, std::size_t n) {
  if (n < 4) return false;
  if (!isCount(data[1]) || !isCount(data[2])) return false;
  if (data[3] != 0.0 && data[3] != 1.0) return false;
  time = data[0];
  members = static_cast<std::size_t>(data[1]);
  dims = static_cast<std::size_t>(data[2]);
  hasDev = data[3] == 1.0;
  if (n < 4 + members) return false;
  health.assign(data + 4, data + 4 + members);
  std::size_t s = 0;
  for (const double h : health) {
    if (h != 0.0 && h != 1.0 && h != 2.0) return false;
    if (h != 2.0) ++s;
  }
  const std::size_t block = s * dims;
  const std::size_t expected = 4 + members + (hasDev ? 3 : 2) * block;
  if (n != expected) return false;
  const double* cursor = data + 4 + members;
  rows.resizeRows(s, dims);
  std::copy(cursor, cursor + block, rows.flat().data());
  cursor += block;
  median.members = s;
  median.dims = dims;
  median.sorted.assign(cursor, cursor + block);
  cursor += block;
  if (hasDev) {
    devMedian.members = s;
    devMedian.dims = dims;
    devMedian.sorted.assign(cursor, cursor + block);
  } else {
    devMedian.clear();
  }
  return true;
}

std::size_t totalSurvivors(const GroupSummary* const* groups,
                           std::size_t ngroups) {
  std::size_t s = 0;
  for (std::size_t g = 0; g < ngroups; ++g) s += groups[g]->survivors();
  return s;
}

namespace {

std::size_t summaryDims(const GroupSummary* const* groups,
                        std::size_t ngroups) {
  for (std::size_t g = 0; g < ngroups; ++g) {
    if (groups[g]->dims > 0) return groups[g]->dims;
  }
  return 0;
}

// Walks every group's members in concatenated order, scoring survivor
// rows with `score`; non-survivors are skipped (callers pre-zero the
// output arrays), mirroring the flat modules' scatter-back.
template <typename ScoreFn>
std::size_t scoreSurvivors(const GroupSummary* const* groups,
                           std::size_t ngroups, double* flags,
                           double* scores, ScoreFn score) {
  std::size_t offset = 0;
  std::size_t survivors = 0;
  for (std::size_t g = 0; g < ngroups; ++g) {
    const GroupSummary& group = *groups[g];
    std::size_t j = 0;  // survivor row index within the group
    for (std::size_t m = 0; m < group.members; ++m) {
      if (group.health[m] == 2.0) continue;
      score(group.rows.row(j), flags + offset + m, scores + offset + m);
      ++j;
      ++survivors;
    }
    offset += group.members;
  }
  return survivors;
}

void collectParts(const GroupSummary* const* groups, std::size_t ngroups,
                  bool dev, std::vector<const MedianPartial*>& parts) {
  parts.resize(ngroups);
  for (std::size_t g = 0; g < ngroups; ++g) {
    parts[g] = dev ? &groups[g]->devMedian : &groups[g]->median;
  }
}

}  // namespace

std::size_t mergeBlackBoxSummaries(const GroupSummary* const* groups,
                                   std::size_t ngroups, double threshold,
                                   TieredScratch& scratch, double* flags,
                                   double* scores) {
  const std::size_t dims = summaryDims(groups, ngroups);
  scratch.median.resize(dims);
  collectParts(groups, ngroups, /*dev=*/false, scratch.parts);
  mergeMedianPartials(scratch.parts.data(), ngroups, dims, scratch.merge,
                      scratch.median.data());
  const double* median = scratch.median.data();
  return scoreSurvivors(
      groups, ngroups, flags, scores,
      [&](const double* row, double* flag, double* scoreOut) {
        const double d = l1DistanceN(row, median, dims);
        *scoreOut = d;
        *flag = d > threshold ? 1.0 : 0.0;
      });
}

std::size_t mergeWhiteBoxSummaries(const GroupSummary* const* groups,
                                   std::size_t ngroups, double k,
                                   TieredScratch& scratch, double* flags,
                                   double* scores) {
  const std::size_t dims = summaryDims(groups, ngroups);
  scratch.median.resize(dims);
  scratch.sigmaMedian.resize(dims);
  collectParts(groups, ngroups, /*dev=*/false, scratch.parts);
  mergeMedianPartials(scratch.parts.data(), ngroups, dims, scratch.merge,
                      scratch.median.data());
  collectParts(groups, ngroups, /*dev=*/true, scratch.parts);
  mergeMedianPartials(scratch.parts.data(), ngroups, dims, scratch.merge,
                      scratch.sigmaMedian.data());
  const double* median = scratch.median.data();
  const double* sigmaMedian = scratch.sigmaMedian.data();
  return scoreSurvivors(
      groups, ngroups, flags, scores,
      [&](const double* row, double* flag, double* scoreOut) {
        const double criticalK =
            whiteBoxCriticalK(row, median, sigmaMedian, dims);
        *scoreOut = criticalK;
        *flag = criticalK > k ? 1.0 : 0.0;
      });
}

void reduceWindowStats(const SlidingWindow* windows, std::size_t dims,
                       double* mean, double* var, double* stddev) {
  for (std::size_t d = 0; d < dims; ++d) {
    mean[d] = windows[d].mean();
    var[d] = windows[d].variance();
    stddev[d] = windows[d].stddev();
  }
}

}  // namespace asdf::analysis
