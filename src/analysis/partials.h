// Pre-reduced peer-comparison partials — the kernel split behind the
// hierarchical aggregation tier (ROADMAP item 1).
//
// The flat fingerpointers compute a cross-node median over per-node
// rows (StateVector histograms for black-box, per-metric window means
// and stddevs for white-box) and then score each node against that
// median. Both steps are rank selections and per-row arithmetic, so
// they factor exactly into:
//
//   reduce (per group, near the leaves):
//     sort each component's column of the group's survivor rows —
//     a MedianPartial — and keep the survivor rows themselves;
//
//   merge (at the root):
//     per component, count-and-select across the groups' sorted
//     columns to the ranks medianInPlace() would pick over the
//     concatenated multiset, then score every survivor row against
//     the merged medians with the *same* scoring helpers the flat
//     kernels use.
//
// Determinism argument: medianInPlace() is a pure rank selection —
// for odd n it returns the rank-(n/2) element, for even n it returns
// 0.5 * (rank-(n/2-1) + rank-(n/2)). Rank selection over a multiset
// of doubles is independent of arrival order, so walking the groups'
// sorted columns to the same two ranks yields bit-identical medians,
// and identical per-row arithmetic yields bit-identical flags and
// scores. Groups cover contiguous ascending node ranges, so the
// concatenated survivor order equals the flat iteration order.
//
// What does NOT travel in a summary: raw window sums. SlidingWindow
// sums its ring buffer in storage order, so re-summing transmitted
// windows at the root could reassociate floating-point adds; instead
// mavgvec's per-dimension statistics loop is factored into
// reduceWindowStats() and evaluated once, leaf-side, and only the
// resulting means/stddevs are shipped (see GroupSummary).
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.h"
#include "common/stats.h"

namespace asdf::analysis {

/// Sorted per-component columns of a group's rows, ready for rank
/// merging. Layout is column-major: sorted[d * members + j] is the
/// j-th smallest value of component d.
struct MedianPartial {
  std::size_t members = 0;
  std::size_t dims = 0;
  std::vector<double> sorted;

  void clear() {
    members = 0;
    dims = 0;
    sorted.clear();
  }
};

/// Reduce step: sorts each component's column of rows[0..n) into
/// `out`. Capacity is retained across windows.
void reduceMedianPartial(const double* const* rows, std::size_t n,
                         std::size_t dims, MedianPartial& out);

/// Scratch for the k-way rank walk; capacity retained across calls.
struct MergeScratch {
  std::vector<std::size_t> cursor;
};

/// Merge step: writes into out[0..dims) the component-wise median of
/// the union multiset of all partials — bit-identical to
/// componentwiseMedianInto() over the concatenated rows. Partials
/// with zero members are permitted; an all-empty union yields zeros
/// (matching medianInPlace() on an empty buffer).
void mergeMedianPartials(const MedianPartial* const* parts,
                         std::size_t nparts, std::size_t dims,
                         MergeScratch& scratch, double* out);

/// One group's per-window contribution to the root analysis — the
/// unit the aggregator tier ships upward. `rows` holds only the
/// survivor (monitorable) members' rows in ascending member order;
/// excluded members are recorded in `health` (rpc::NodeHealth codes)
/// so the root can reconstruct global indices and re-check quorum.
/// For black-box summaries the rows are StateVector histograms; for
/// white-box they are per-metric window means and `devMedian` holds
/// the partial over the survivors' stddev rows.
struct GroupSummary {
  double time = 0.0;
  std::size_t members = 0;
  std::size_t dims = 0;
  bool hasDev = false;
  std::vector<double> health;  // per member: 0 healthy, 1 degraded, 2 unmon.
  Matrix rows;                 // survivors x dims
  MedianPartial median;        // over rows
  MedianPartial devMedian;     // over survivor stddev rows (hasDev only)

  std::size_t survivors() const;

  /// Single canonical flat representation, used both as the DAG value
  /// between the sim aggregator and merge modules and as the wire
  /// payload body (rpc/summary.h) — one layout, zero re-marshalling.
  void pack(std::vector<double>& out) const;

  /// Rebuilds from pack() output; returns false (leaving *this
  /// unspecified) on a malformed buffer. Capacity is reused.
  bool unpack(const double* data, std::size_t n);
};

/// Scratch + merged-median buffers for the root merge; capacity
/// retained across windows.
struct TieredScratch {
  MergeScratch merge;
  std::vector<const MedianPartial*> parts;
  std::vector<double> median;
  std::vector<double> sigmaMedian;
};

/// Total survivor count across groups — the quantity quorum gating
/// compares (callers suppress the merge entirely below quorum, like
/// the flat modules do).
std::size_t totalSurvivors(const GroupSummary* const* groups,
                           std::size_t ngroups);

/// Root merge of black-box summaries: merges the median partials and
/// scores every survivor against the merged median StateVector,
/// bit-identically to blackBoxCompareInto() over the concatenated
/// survivor rows. flags/scores must hold the total member count
/// across groups (concatenated group order); non-survivor entries
/// are left untouched (callers pre-zero). Returns the survivor count.
std::size_t mergeBlackBoxSummaries(const GroupSummary* const* groups,
                                   std::size_t ngroups, double threshold,
                                   TieredScratch& scratch, double* flags,
                                   double* scores);

/// Root merge of white-box summaries: merged medians of means and of
/// stddevs, then the flat kernel's critical-k scoring per survivor.
/// Same output conventions as mergeBlackBoxSummaries().
std::size_t mergeWhiteBoxSummaries(const GroupSummary* const* groups,
                                   std::size_t ngroups, double k,
                                   TieredScratch& scratch, double* flags,
                                   double* scores);

/// The leaf-side reduce step factored out of [mavgvec]: per-dimension
/// window statistics with arithmetic identical to SlidingWindow's
/// (ring-storage summation order). Window sums are never recomputed
/// from transmitted values — see the header comment.
void reduceWindowStats(const SlidingWindow* windows, std::size_t dims,
                       double* mean, double* var, double* stddev);

}  // namespace asdf::analysis
