#include "analysis/kmeans.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/simd.h"
#include "common/stats.h"

namespace asdf::analysis {
namespace {

// k-means++ seeding with a fused weight pass: updating d^2 against the
// newest centroid and accumulating the cumulative weights happen in
// one sweep, and the chosen index falls out of a binary search over
// the prefix sums instead of a second linear subtract-scan.
void seedPlusPlus(const Matrix& points, int k, Rng& rng,
                  std::vector<double>& d2, std::vector<double>& cum,
                  Matrix& centroids) {
  const std::size_t n = points.rows();
  const std::size_t dims = points.cols();
  centroids.resizeRows(static_cast<std::size_t>(k), dims);
  std::size_t seeded = 1;
  {
    const auto first = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<long>(n) - 1));
    std::copy_n(points.row(first), dims, centroids.row(0));
  }
  d2.assign(n, std::numeric_limits<double>::infinity());
  cum.resize(n);
  while (seeded < static_cast<std::size_t>(k)) {
    const double* latest = centroids.row(seeded - 1);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d =
          std::min(d2[i], sqDistanceN(points.row(i), latest, dims));
      d2[i] = d;
      total += d;
      cum[i] = total;
    }
    if (total <= 0.0) {
      // All points coincide with existing centroids; duplicate one.
      std::copy_n(centroids.row(seeded - 1), dims, centroids.row(seeded));
      ++seeded;
      continue;
    }
    const double x = rng.uniform(0.0, total);
    const auto it = std::upper_bound(cum.begin(), cum.end(), x);
    const std::size_t chosen =
        it == cum.end() ? n - 1
                        : static_cast<std::size_t>(it - cum.begin());
    std::copy_n(points.row(chosen), dims, centroids.row(seeded));
    ++seeded;
  }
}

}  // namespace

double sqDistanceN(const double* a, const double* b, std::size_t n) {
  return simd::sqDistance(a, b, n);
}

KMeansResult kmeans(const Matrix& points, const KMeansOptions& options,
                    Rng& rng) {
  KMeansScratch scratch;
  KMeansResult result;
  kmeans(points, options, rng, scratch, result);
  return result;
}

void kmeans(const Matrix& points, const KMeansOptions& options, Rng& rng,
            KMeansScratch& scratch, KMeansResult& result) {
  assert(points.rows() > 0);
  assert(options.k >= 1);
  const std::size_t n = points.rows();
  const std::size_t dims = points.cols();
  const auto k = static_cast<std::size_t>(options.k);

  seedPlusPlus(points, options.k, rng, scratch.d2, scratch.cum,
               result.centroids);
  result.assignment.assign(n, 0);
  result.iterations = 0;

  double prevInertia = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < options.maxIterations; ++iter) {
    result.iterations = iter + 1;

    // Assignment step.
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double* p = points.row(i);
      const std::size_t c = nearestCentroid(result.centroids, p);
      result.assignment[i] = static_cast<int>(c);
      inertia += sqDistanceN(p, result.centroids.row(c), dims);
    }
    result.inertia = inertia;

    // Update step.
    scratch.sums.resizeRows(k, dims);
    std::fill(scratch.sums.flat().begin(), scratch.sums.flat().end(), 0.0);
    scratch.counts.assign(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(result.assignment[i]);
      ++scratch.counts[c];
      const double* p = points.row(i);
      double* s = scratch.sums.row(c);
      for (std::size_t d = 0; d < dims; ++d) s[d] += p[d];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (scratch.counts[c] == 0) continue;  // empty cluster keeps centroid
      const double* s = scratch.sums.row(c);
      double* dst = result.centroids.row(c);
      for (std::size_t d = 0; d < dims; ++d) {
        dst[d] = s[d] / static_cast<double>(scratch.counts[c]);
      }
    }

    if (prevInertia - inertia <=
        options.tolerance * std::max(1.0, prevInertia)) {
      break;
    }
    prevInertia = inertia;
  }

  // Final assignment pass so reported assignments are nearest to the
  // *final* centroids (the update step moved them after the last
  // assignment).
  double inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* p = points.row(i);
    const std::size_t c = nearestCentroid(result.centroids, p);
    result.assignment[i] = static_cast<int>(c);
    inertia += sqDistanceN(p, result.centroids.row(c), dims);
  }
  result.inertia = inertia;
}

std::size_t nearestCentroid(const Matrix& centroids, const double* x) {
  assert(centroids.rows() > 0);
  const std::size_t dims = centroids.cols();
  std::size_t best = 0;
  double bestD = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centroids.rows(); ++c) {
    const double d = sqDistanceN(centroids.row(c), x, dims);
    if (d < bestD) {
      bestD = d;
      best = c;
    }
  }
  return best;
}

std::size_t nearestCentroid(const Matrix& centroids,
                            const std::vector<double>& x) {
  assert(x.size() == centroids.cols());
  return nearestCentroid(centroids, x.data());
}

const std::vector<std::size_t>& nearestCentroids(const Matrix& centroids,
                                                 const double* x,
                                                 std::size_t k,
                                                 NearestScratch& scratch) {
  const std::size_t n = centroids.rows();
  const std::size_t dims = centroids.cols();
  scratch.dist.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    scratch.dist[c] = sqDistanceN(centroids.row(c), x, dims);
  }
  scratch.order.resize(n);
  std::iota(scratch.order.begin(), scratch.order.end(), 0);
  std::sort(scratch.order.begin(), scratch.order.end(),
            [&](std::size_t a, std::size_t b) {
              return scratch.dist[a] < scratch.dist[b];
            });
  scratch.order.resize(std::min(k, n));
  return scratch.order;
}

std::vector<std::size_t> nearestCentroids(const Matrix& centroids,
                                          const std::vector<double>& x,
                                          std::size_t k) {
  assert(x.size() == centroids.cols());
  NearestScratch scratch;
  return nearestCentroids(centroids, x.data(), k, scratch);
}

}  // namespace asdf::analysis
