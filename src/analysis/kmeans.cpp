#include "analysis/kmeans.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/stats.h"

namespace asdf::analysis {
namespace {

double sq(double x) { return x * x; }

double sqDistance(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += sq(a[i] - b[i]);
  return sum;
}

std::vector<std::vector<double>> seedPlusPlus(
    const std::vector<std::vector<double>>& points, int k, Rng& rng) {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(static_cast<std::size_t>(k));
  centroids.push_back(
      points[static_cast<std::size_t>(rng.uniformInt(
          0, static_cast<long>(points.size()) - 1))]);
  std::vector<double> d2(points.size(),
                         std::numeric_limits<double>::infinity());
  while (static_cast<int>(centroids.size()) < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      d2[i] = std::min(d2[i], sqDistance(points[i], centroids.back()));
      total += d2[i];
    }
    if (total <= 0.0) {
      // All points coincide with existing centroids; duplicate one.
      centroids.push_back(centroids.back());
      continue;
    }
    double x = rng.uniform(0.0, total);
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      x -= d2[i];
      if (x < 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

}  // namespace

KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                    const KMeansOptions& options, Rng& rng) {
  assert(!points.empty());
  assert(options.k >= 1);
  const std::size_t dims = points.front().size();

  KMeansResult result;
  result.centroids = seedPlusPlus(points, options.k, rng);
  result.assignment.assign(points.size(), 0);

  double prevInertia = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < options.maxIterations; ++iter) {
    result.iterations = iter + 1;

    // Assignment step.
    double inertia = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::size_t c = nearestCentroid(result.centroids, points[i]);
      result.assignment[i] = static_cast<int>(c);
      inertia += sqDistance(points[i], result.centroids[c]);
    }
    result.inertia = inertia;

    // Update step.
    std::vector<std::vector<double>> sums(
        result.centroids.size(), std::vector<double>(dims, 0.0));
    std::vector<std::size_t> counts(result.centroids.size(), 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto c = static_cast<std::size_t>(result.assignment[i]);
      ++counts[c];
      for (std::size_t d = 0; d < dims; ++d) sums[c][d] += points[i][d];
    }
    for (std::size_t c = 0; c < result.centroids.size(); ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      for (std::size_t d = 0; d < dims; ++d) {
        result.centroids[c][d] =
            sums[c][d] / static_cast<double>(counts[c]);
      }
    }

    if (prevInertia - inertia <=
        options.tolerance * std::max(1.0, prevInertia)) {
      break;
    }
    prevInertia = inertia;
  }

  // Final assignment pass so reported assignments are nearest to the
  // *final* centroids (the update step moved them after the last
  // assignment).
  double inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::size_t c = nearestCentroid(result.centroids, points[i]);
    result.assignment[i] = static_cast<int>(c);
    inertia += sqDistance(points[i], result.centroids[c]);
  }
  result.inertia = inertia;
  return result;
}

std::size_t nearestCentroid(const std::vector<std::vector<double>>& centroids,
                            const std::vector<double>& x) {
  assert(!centroids.empty());
  std::size_t best = 0;
  double bestD = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    const double d = sqDistance(centroids[c], x);
    if (d < bestD) {
      bestD = d;
      best = c;
    }
  }
  return best;
}

std::vector<std::size_t> nearestCentroids(
    const std::vector<std::vector<double>>& centroids,
    const std::vector<double>& x, std::size_t k) {
  std::vector<std::size_t> order(centroids.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return sqDistance(centroids[a], x) < sqDistance(centroids[b], x);
  });
  order.resize(std::min(k, order.size()));
  return order;
}

}  // namespace asdf::analysis
