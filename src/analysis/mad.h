// Median-absolute-deviation peer comparison — an "off-the-shelf
// analysis technique" of the kind Section 1 argues administrators
// should be able to plug in ("allow administrators to leverage
// off-the-shelf analysis techniques").
//
// Instead of the paper's fixed threshold on the L1 distance to the
// median StateVector, the MAD detector derives the threshold from the
// current window itself: node i is flagged when
//
//   score_i > median(scores) + k * MAD(scores)
//
// with MAD = median(|score - median(scores)|). This self-calibrates
// across workload phases (no trained threshold needed) at the price of
// a breakdown point: with few nodes, one loud node inflates the MAD.
// bench_ablation_analysis compares it against the paper's detector.
#pragma once

#include <vector>

#include "analysis/peercompare.h"

namespace asdf::analysis {

/// Robust z-score style decision over per-node anomaly scores.
/// `minMad` guards the all-identical-scores case (MAD = 0).
PeerComparisonResult madCompare(const std::vector<double>& scores, double k,
                                double minMad = 1.0);

/// Convenience: the black-box StateVector pipeline with a MAD decision
/// rule instead of the fixed threshold.
PeerComparisonResult blackBoxMadCompare(
    const std::vector<std::vector<double>>& histograms, double k);

}  // namespace asdf::analysis
