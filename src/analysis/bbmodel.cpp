#include "analysis/bbmodel.h"

#include <cassert>
#include <cmath>
#include <sstream>

#include "analysis/kmeans.h"
#include "common/error.h"
#include "common/stats.h"
#include "common/strings.h"

namespace asdf::analysis {

std::vector<double> BlackBoxModel::transform(
    const std::vector<double>& raw) const {
  assert(raw.size() == sigmas.size());
  std::vector<double> out(raw.size());
  transformInto(raw.data(), raw.size(), out.data());
  return out;
}

void BlackBoxModel::transformInto(const double* raw, std::size_t n,
                                  double* out) const {
  assert(n == sigmas.size());
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::log1p(std::max(0.0, raw[i])) / sigmas[i];
  }
}

std::size_t BlackBoxModel::classify(const std::vector<double>& raw) const {
  return nearestCentroid(centroids, transform(raw));
}

BlackBoxModel trainBlackBoxModel(
    const std::vector<std::vector<double>>& rawTraining, int k, Rng& rng) {
  assert(!rawTraining.empty());
  const std::size_t dims = rawTraining.front().size();

  BlackBoxModel model;
  model.sigmas.assign(dims, 1.0);

  // Per-metric sigma of log(1+x) over the training corpus.
  std::vector<RunningStats> stats(dims);
  for (const auto& row : rawTraining) {
    assert(row.size() == dims);
    for (std::size_t d = 0; d < dims; ++d) {
      stats[d].add(std::log1p(std::max(0.0, row[d])));
    }
  }
  for (std::size_t d = 0; d < dims; ++d) {
    const double s = stats[d].stddev();
    model.sigmas[d] = s > 1e-12 ? s : 1.0;
  }

  Matrix transformed;
  transformed.reserveRows(rawTraining.size(), dims);
  {
    std::vector<double> row(dims);
    for (const auto& raw : rawTraining) {
      model.transformInto(raw.data(), raw.size(), row.data());
      transformed.push_back(row);
    }
  }

  KMeansOptions options;
  options.k = k;
  model.centroids = std::move(kmeans(transformed, options, rng).centroids);
  return model;
}

std::string serializeModel(const BlackBoxModel& model) {
  std::ostringstream out;
  out << "sigmas";
  for (double s : model.sigmas) out << ',' << strformat("%.17g", s);
  out << '\n';
  for (std::size_t r = 0; r < model.centroids.rows(); ++r) {
    const double* c = model.centroids.row(r);
    out << "centroid";
    for (std::size_t d = 0; d < model.centroids.cols(); ++d) {
      out << ',' << strformat("%.17g", c[d]);
    }
    out << '\n';
  }
  return out.str();
}

BlackBoxModel deserializeModel(const std::string& text) {
  BlackBoxModel model;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    const auto cells = split(line, ',');
    std::vector<double> values;
    values.reserve(cells.size() - 1);
    for (std::size_t i = 1; i < cells.size(); ++i) {
      double v = 0.0;
      if (!parseDouble(cells[i], v)) {
        throw ConfigError("black-box model: malformed number '" + cells[i] +
                          "'");
      }
      values.push_back(v);
    }
    if (cells.empty()) continue;
    if (cells[0] == "sigmas") {
      model.sigmas = std::move(values);
    } else if (cells[0] == "centroid") {
      if (!model.centroids.empty() && values.size() != model.centroids.cols()) {
        throw ConfigError("black-box model: centroid dimension mismatch");
      }
      model.centroids.push_back(values);
    } else {
      throw ConfigError("black-box model: unknown row tag '" + cells[0] + "'");
    }
  }
  if (model.sigmas.empty() || model.centroids.empty()) {
    throw ConfigError("black-box model: missing sigmas or centroids");
  }
  if (model.centroids.cols() != model.sigmas.size()) {
    throw ConfigError("black-box model: centroid dimension mismatch");
  }
  return model;
}

}  // namespace asdf::analysis
