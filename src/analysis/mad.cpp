#include "analysis/mad.h"

#include <cmath>

#include "common/simd.h"
#include "common/stats.h"

namespace asdf::analysis {

PeerComparisonResult madCompare(const std::vector<double>& scores, double k,
                                double minMad) {
  PeerComparisonResult result;
  if (scores.empty()) return result;
  const double med = median(scores);
  std::vector<double> deviations(scores.size());
  simd::absDeviations(scores.data(), med, deviations.data(), scores.size());
  const double mad = std::max(minMad, median(deviations));

  result.flags.reserve(scores.size());
  result.scores.reserve(scores.size());
  for (double s : scores) {
    // Sweepable score: the k at which this node stops being flagged.
    const double criticalK = (s - med) / mad;
    result.scores.push_back(criticalK);
    result.flags.push_back(criticalK > k ? 1.0 : 0.0);
  }
  return result;
}

PeerComparisonResult blackBoxMadCompare(
    const std::vector<std::vector<double>>& histograms, double k) {
  if (histograms.empty()) return {};
  const std::vector<double> medianHist = componentwiseMedian(histograms);
  std::vector<double> l1;
  l1.reserve(histograms.size());
  for (const auto& h : histograms) l1.push_back(l1Distance(h, medianHist));
  return madCompare(l1, k);
}

}  // namespace asdf::analysis
