#include "analysis/peercompare.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/stats.h"

namespace asdf::analysis {

std::vector<double> stateHistogram(const std::vector<double>& stateIndices,
                                   std::size_t numStates) {
  std::vector<double> hist(numStates, 0.0);
  for (double raw : stateIndices) {
    const long s = std::lround(raw);
    if (s >= 0 && static_cast<std::size_t>(s) < numStates) {
      hist[static_cast<std::size_t>(s)] += 1.0;
    }
  }
  return hist;
}

PeerComparisonResult blackBoxCompare(
    const std::vector<std::vector<double>>& histograms, double threshold) {
  PeerComparisonResult result;
  if (histograms.empty()) return result;
  const std::vector<double> medianHist = componentwiseMedian(histograms);
  result.flags.reserve(histograms.size());
  result.scores.reserve(histograms.size());
  for (const auto& h : histograms) {
    const double d = l1Distance(h, medianHist);
    result.scores.push_back(d);
    result.flags.push_back(d > threshold ? 1.0 : 0.0);
  }
  return result;
}

PeerComparisonResult whiteBoxCompare(
    const std::vector<std::vector<double>>& means,
    const std::vector<std::vector<double>>& stddevs, double k) {
  PeerComparisonResult result;
  if (means.empty()) return result;
  assert(means.size() == stddevs.size());
  const std::size_t nodes = means.size();
  const std::size_t dims = means.front().size();

  const std::vector<double> medianMean = componentwiseMedian(means);
  const std::vector<double> sigmaMedian = componentwiseMedian(stddevs);

  result.flags.assign(nodes, 0.0);
  result.scores.assign(nodes, 0.0);
  for (std::size_t i = 0; i < nodes; ++i) {
    assert(means[i].size() == dims && stddevs[i].size() == dims);
    double criticalK = 0.0;
    for (std::size_t m = 0; m < dims; ++m) {
      const double diff = std::abs(means[i][m] - medianMean[m]);
      if (diff <= 1.0) continue;  // below the max(1, .) floor at any k
      const double sigma = sigmaMedian[m];
      const double metricCritical =
          sigma > 1e-12 ? diff / sigma : kWhiteBoxAlwaysFlagged;
      criticalK = std::max(criticalK, metricCritical);
    }
    result.scores[i] = criticalK;
    // Flagged iff some metric has diff > max(1, k*sigma), i.e. the
    // critical k is strictly above the configured k.
    result.flags[i] = criticalK > k ? 1.0 : 0.0;
  }
  return result;
}

}  // namespace asdf::analysis
