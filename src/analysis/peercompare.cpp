#include "analysis/peercompare.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/simd.h"
#include "common/stats.h"

namespace asdf::analysis {
namespace {

std::vector<const double*> rowViews(
    const std::vector<std::vector<double>>& rows) {
  std::vector<const double*> out(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) out[i] = rows[i].data();
  return out;
}

}  // namespace

std::vector<double> stateHistogram(const std::vector<double>& stateIndices,
                                   std::size_t numStates) {
  std::vector<double> hist(numStates, 0.0);
  stateHistogramInto(stateIndices.data(), stateIndices.size(), hist.data(),
                     numStates);
  return hist;
}

void stateHistogramInto(const double* stateIndices, std::size_t n,
                        double* hist, std::size_t numStates) {
  std::fill(hist, hist + numStates, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const long s = std::lround(stateIndices[i]);
    if (s >= 0 && static_cast<std::size_t>(s) < numStates) {
      hist[static_cast<std::size_t>(s)] += 1.0;
    }
  }
}

PeerComparisonResult blackBoxCompare(
    const std::vector<std::vector<double>>& histograms, double threshold) {
  PeerComparisonResult result;
  if (histograms.empty()) return result;
  const std::size_t dims = histograms.front().size();
  const auto rows = rowViews(histograms);
  PeerScratch scratch;
  result.flags.resize(histograms.size());
  result.scores.resize(histograms.size());
  blackBoxCompareInto(rows.data(), rows.size(), dims, threshold, scratch,
                      result.flags.data(), result.scores.data());
  return result;
}

void blackBoxCompareInto(const double* const* histograms, std::size_t nodes,
                         std::size_t dims, double threshold,
                         PeerScratch& scratch, double* flags, double* scores) {
  if (nodes == 0) return;
  scratch.median.resize(dims);
  componentwiseMedianInto(histograms, nodes, dims, scratch.median.data(),
                          scratch.column);
  for (std::size_t i = 0; i < nodes; ++i) {
    const double d = l1DistanceN(histograms[i], scratch.median.data(), dims);
    scores[i] = d;
    flags[i] = d > threshold ? 1.0 : 0.0;
  }
}

PeerComparisonResult whiteBoxCompare(
    const std::vector<std::vector<double>>& means,
    const std::vector<std::vector<double>>& stddevs, double k) {
  PeerComparisonResult result;
  if (means.empty()) return result;
  assert(means.size() == stddevs.size());
  const std::size_t dims = means.front().size();
  const auto meanRows = rowViews(means);
  const auto stddevRows = rowViews(stddevs);
  PeerScratch scratch;
  result.flags.resize(means.size());
  result.scores.resize(means.size());
  whiteBoxCompareInto(meanRows.data(), stddevRows.data(), means.size(), dims,
                      k, scratch, result.flags.data(), result.scores.data());
  return result;
}

void whiteBoxCompareInto(const double* const* means,
                         const double* const* stddevs, std::size_t nodes,
                         std::size_t dims, double k, PeerScratch& scratch,
                         double* flags, double* scores) {
  if (nodes == 0) return;
  scratch.median.resize(dims);
  scratch.sigmaMedian.resize(dims);
  componentwiseMedianInto(means, nodes, dims, scratch.median.data(),
                          scratch.column);
  componentwiseMedianInto(stddevs, nodes, dims, scratch.sigmaMedian.data(),
                          scratch.column);

  for (std::size_t i = 0; i < nodes; ++i) {
    const double criticalK = whiteBoxCriticalK(
        means[i], scratch.median.data(), scratch.sigmaMedian.data(), dims);
    scores[i] = criticalK;
    // Flagged iff some metric has diff > max(1, k*sigma), i.e. the
    // critical k is strictly above the configured k.
    flags[i] = criticalK > k ? 1.0 : 0.0;
  }
}

double whiteBoxCriticalK(const double* mean, const double* median,
                         const double* sigmaMedian, std::size_t dims) {
  // diff <= 1.0 is below the max(1, .) floor at any k and contributes
  // nothing; the SIMD kernel mirrors that gate (including NaN diffs
  // falling through to the sigma branch) bit-exactly.
  return simd::whiteBoxCriticalK(mean, median, sigmaMedian, dims,
                                 kWhiteBoxAlwaysFlagged);
}

}  // namespace asdf::analysis
