// Peer-comparison fingerpointing primitives (Sections 4.4 and 4.5).
//
// Both analyses exploit the same hypothesis: fault-free Hadoop slaves
// do statistically similar work, so the median across nodes is a
// robust reference (valid while more than half the nodes are healthy),
// and a node whose windowed behaviour departs from the median beyond a
// threshold is fingerpointed.
//
// Black-box: per-window histograms of 1-NN workload states, compared
// by L1 distance to the component-wise median histogram.
//
// White-box: per-window means of each Hadoop state metric, compared to
// the cross-node median with threshold max(1, k * sigma_median), where
// sigma_median is the median of the per-node window standard
// deviations of that metric.
//
// Each function also reports a *sweepable score* per node — the
// smallest threshold at which the node would NOT be flagged — so
// threshold sweeps (Figures 6a/6b) replay recorded windows without
// re-running the cluster.
//
// The *Into forms are the online hot path: they take row-pointer views
// plus a caller-owned PeerScratch, write flags/scores into caller
// buffers, and allocate nothing once the scratch is warm. The
// vector-of-vectors forms are retained as the reference surface
// (tests, offline sweeps) and share the same arithmetic.
#pragma once

#include <cstddef>
#include <vector>

namespace asdf::analysis {

/// Histogram of state indices over a window: entry s counts how many
/// samples were assigned state s. This is the paper's StateVector.
std::vector<double> stateHistogram(const std::vector<double>& stateIndices,
                                   std::size_t numStates);

/// Flat form: accumulates into hist[0..numStates) (zeroed first).
void stateHistogramInto(const double* stateIndices, std::size_t n,
                        double* hist, std::size_t numStates);

struct PeerComparisonResult {
  std::vector<double> flags;   // 1.0 = fingerpointed
  std::vector<double> scores;  // sweepable per-node score (see above)
};

/// Reusable workspace for the *Into comparisons; capacity is retained
/// across windows so the steady state allocates nothing.
struct PeerScratch {
  std::vector<double> median;       // component-wise median buffer
  std::vector<double> sigmaMedian;  // white-box per-metric sigma medians
  std::vector<double> column;       // componentwiseMedianInto scratch
};

/// Black-box window decision. `histograms` holds one StateVector per
/// node. scores[i] is the L1 distance to the median StateVector;
/// flags[i] = scores[i] > threshold.
PeerComparisonResult blackBoxCompare(
    const std::vector<std::vector<double>>& histograms, double threshold);

/// Flat black-box form: histograms[i] points at a row of `dims`
/// doubles; flags/scores must hold `nodes` doubles.
void blackBoxCompareInto(const double* const* histograms, std::size_t nodes,
                         std::size_t dims, double threshold,
                         PeerScratch& scratch, double* flags, double* scores);

/// White-box window decision. `means` / `stddevs` hold one vector per
/// node (per-metric window mean / standard deviation). A node is
/// flagged when any metric's |mean - median| exceeds
/// max(1, k * sigma_median). scores[i] is the critical k: the node is
/// flagged at exactly those k < scores[i] (infinite-threshold metrics,
/// i.e. sigma_median == 0 with |diff| > 1, yield a huge sentinel).
PeerComparisonResult whiteBoxCompare(
    const std::vector<std::vector<double>>& means,
    const std::vector<std::vector<double>>& stddevs, double k);

/// Flat white-box form; same row-pointer conventions as
/// blackBoxCompareInto.
void whiteBoxCompareInto(const double* const* means,
                         const double* const* stddevs, std::size_t nodes,
                         std::size_t dims, double k, PeerScratch& scratch,
                         double* flags, double* scores);

/// One node's white-box score given already-computed medians: the
/// critical k above which the node is no longer flagged. Shared by
/// the flat kernel and the tiered merge (analysis/partials.h) so the
/// two topologies are arithmetic-identical by construction.
double whiteBoxCriticalK(const double* mean, const double* median,
                         const double* sigmaMedian, std::size_t dims);

/// The sentinel used for "flagged at every k" in white-box scores.
inline constexpr double kWhiteBoxAlwaysFlagged = 1.0e9;

}  // namespace asdf::analysis
