#include "analysis/evaluation.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace asdf::analysis {

double EvalResult::truePositiveRate() const {
  return tp + fn == 0 ? 1.0
                      : static_cast<double>(tp) /
                            static_cast<double>(tp + fn);
}

double EvalResult::trueNegativeRate() const {
  return tn + fp == 0 ? 1.0
                      : static_cast<double>(tn) /
                            static_cast<double>(tn + fp);
}

double EvalResult::balancedAccuracyPct() const {
  return 50.0 * (truePositiveRate() + trueNegativeRate());
}

double EvalResult::falsePositiveRatePct() const {
  return fp + tn == 0 ? 0.0
                      : 100.0 * static_cast<double>(fp) /
                            static_cast<double>(fp + tn);
}

EvalResult evaluate(const AlarmSeries& series, const GroundTruth& truth) {
  EvalResult r;
  for (const auto& record : series) {
    const bool faultActive = truth.activeAt(record.time);
    for (std::size_t node = 0; node < record.flags.size(); ++node) {
      const bool flagged = record.flags[node] > 0.5;
      const bool culprit =
          faultActive && truth.isCulprit(static_cast<int>(node));
      if (culprit && flagged) ++r.tp;
      if (culprit && !flagged) ++r.fn;
      if (!culprit && flagged) ++r.fp;
      if (!culprit && !flagged) ++r.tn;
    }
  }
  return r;
}

double fingerpointingLatency(const AlarmSeries& series,
                             const GroundTruth& truth) {
  if (!truth.anyCulprit()) return -1.0;
  for (const auto& record : series) {
    if (record.time < truth.faultStart) continue;
    for (std::size_t node = 0; node < record.flags.size(); ++node) {
      if (truth.isCulprit(static_cast<int>(node)) &&
          record.flags[node] > 0.5) {
        return record.time - truth.faultStart;
      }
    }
  }
  return -1.0;
}

AlarmSeries applyThreshold(const AlarmSeries& series, double threshold) {
  AlarmSeries out = series;
  for (auto& record : out) {
    record.flags.assign(record.scores.size(), 0.0);
    for (std::size_t i = 0; i < record.scores.size(); ++i) {
      record.flags[i] = record.scores[i] > threshold ? 1.0 : 0.0;
    }
  }
  return out;
}

AlarmSeries requireConsecutive(const AlarmSeries& series, int consecutive) {
  if (consecutive <= 1) return series;
  AlarmSeries out = series;
  std::map<std::size_t, int> streak;
  for (std::size_t w = 0; w < series.size(); ++w) {
    for (std::size_t node = 0; node < series[w].flags.size(); ++node) {
      if (series[w].flags[node] > 0.5) {
        ++streak[node];
      } else {
        streak[node] = 0;
      }
      out[w].flags[node] = streak[node] >= consecutive ? 1.0 : 0.0;
    }
  }
  return out;
}

AlarmSeries combineUnion(const AlarmSeries& a, const AlarmSeries& b,
                         double slack) {
  AlarmSeries out = a;
  std::vector<char> bUsed(b.size(), 0);
  for (auto& record : out) {
    // Find the closest unused b record within the slack.
    std::size_t best = b.size();
    double bestDt = slack;
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (bUsed[j]) continue;
      const double dt = std::abs(b[j].time - record.time);
      if (dt <= bestDt) {
        bestDt = dt;
        best = j;
      }
    }
    if (best == b.size()) continue;
    bUsed[best] = 1;
    const auto& other = b[best];
    const std::size_t n = std::max(record.flags.size(), other.flags.size());
    record.flags.resize(n, 0.0);
    for (std::size_t i = 0; i < other.flags.size() && i < n; ++i) {
      if (other.flags[i] > 0.5) record.flags[i] = 1.0;
    }
  }
  // Windows only present in b still count.
  for (std::size_t j = 0; j < b.size(); ++j) {
    if (!bUsed[j]) out.push_back(b[j]);
  }
  std::sort(out.begin(), out.end(),
            [](const AlarmRecord& x, const AlarmRecord& y) {
              return x.time < y.time;
            });
  return out;
}

double flaggedFractionPct(const AlarmSeries& series) {
  long flagged = 0;
  long total = 0;
  for (const auto& record : series) {
    for (double f : record.flags) {
      ++total;
      if (f > 0.5) ++flagged;
    }
  }
  return total == 0 ? 0.0
                    : 100.0 * static_cast<double>(flagged) /
                          static_cast<double>(total);
}

}  // namespace asdf::analysis
