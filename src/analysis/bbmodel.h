// The black-box workload model (Section 4.5).
//
// Raw sadc metric vectors are transformed as x' = log(1 + x) / sigma,
// where sigma is the per-metric standard deviation of log(1 + x) over
// fault-free training data ("we used logarithms to reduce the dynamic
// range ... and scaled the resulting logarithmic metric samples by the
// standard deviation"). k-means centroids trained on the transformed
// fault-free vectors define the workload "states" that the knn module
// matches at runtime.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"

namespace asdf::analysis {

struct BlackBoxModel {
  /// Per-metric standard deviation of log(1+x) on training data;
  /// entries of exactly 0 are replaced by 1 (constant metrics carry no
  /// scale information but must not divide by zero).
  std::vector<double> sigmas;
  /// Centroids in the transformed space (row-major, one per state).
  Matrix centroids;

  std::size_t dims() const { return sigmas.size(); }
  std::size_t states() const { return centroids.size(); }
  bool empty() const { return centroids.empty(); }

  /// Applies the log/sigma transform to a raw metric vector.
  std::vector<double> transform(const std::vector<double>& raw) const;

  /// Flat form: writes dims() transformed values into out; the online
  /// hot path (knn) feeds a preallocated scratch buffer.
  void transformInto(const double* raw, std::size_t n, double* out) const;

  /// 1-NN state assignment for a raw metric vector.
  std::size_t classify(const std::vector<double>& raw) const;
};

/// Trains the model from raw fault-free vectors.
BlackBoxModel trainBlackBoxModel(
    const std::vector<std::vector<double>>& rawTraining, int k, Rng& rng);

/// Serialization (CSV-ish text) so trained models can be shipped to
/// the knn module via a file, mirroring the paper's offline-training /
/// online-matching split.
std::string serializeModel(const BlackBoxModel& model);
BlackBoxModel deserializeModel(const std::string& text);

}  // namespace asdf::analysis
