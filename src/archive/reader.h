// ArchiveReader — crash-recovering, integrity-checking archive loads.
//
// Opening an archive directory scans its segments in index order and
// loads every record into memory (a 50-node, 30-minute run is a few
// tens of MB — replay needs random access by timestamp anyway).
//
// Integrity contract:
//   * Sealed segments (".asar") must verify end to end: valid trailer,
//     footer frame exactly where the trailer points, every frame CRC
//     good, zero unframed bytes, and footer counts matching the
//     records actually present. Any single flipped bit fails the open
//     (the frame CRC-32 covers payloads; header fields are validated
//     structurally; the trailer is checked field by field).
//   * Active segments (".asar.open" — a crashed or still-running
//     writer) tolerate exactly one torn tail: trailing bytes that do
//     not yet assemble into a frame are reported via tornTailBytes().
//     A decode *error* (bad magic / CRC) is still corruption.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "archive/format.h"

namespace asdf::archive {

struct SegmentInfo {
  std::string path;
  std::uint64_t index = 0;
  bool sealed = false;
  std::uint32_t version = kFormatVersion;  // from the meta frame
  std::int64_t fileBytes = 0;
  std::int64_t records = 0;
  std::int64_t checkpoints = 0;  // format v2 full-state snapshots
  double firstNow = kNoTime;
  double lastNow = kNoTime;
  std::size_t tornTailBytes = 0;  // .open segments only
};

class ArchiveReader {
 public:
  /// Loads and validates every segment. Throws ArchiveError on an
  /// unreadable directory, an empty archive, or any corruption the
  /// integrity contract above rejects.
  explicit ArchiveReader(const std::string& dir);

  const ArchiveMeta& meta() const { return meta_; }
  const std::optional<TruthRecord>& truth() const { return truth_; }
  const std::vector<SegmentInfo>& segments() const { return segments_; }
  /// All sample records in file order (per-stream seq ascending).
  const std::vector<SampleRecord>& records() const { return records_; }

  double firstNow() const;
  double lastNow() const;
  std::size_t tornTailBytes() const;

  struct VerifyResult {
    bool ok = false;
    std::int64_t recordsVerified = 0;
    std::size_t tornTailBytes = 0;
    std::vector<std::string> errors;
    /// Per-segment record counts and time ranges (successful verify
    /// only) — lets an operator spot a short segment without replay.
    std::vector<SegmentInfo> segments;
  };
  /// Full-archive integrity check (the `asdf_archive verify` command):
  /// ok iff the archive loads under the contract above.
  static VerifyResult verify(const std::string& dir);

 private:
  void loadSegment(const std::string& path, std::uint64_t index,
                   bool sealed);

  ArchiveMeta meta_;
  std::optional<TruthRecord> truth_;
  std::vector<SegmentInfo> segments_;
  std::vector<SampleRecord> records_;
};

/// Copies records with `fromTime <= now <= toTime` (plus meta + truth)
/// into a fresh archive at dstDir. Returns the number of records kept.
std::int64_t trimArchive(const std::string& srcDir, const std::string& dstDir,
                         double fromTime, double toTime);

}  // namespace asdf::archive
