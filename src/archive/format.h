// On-disk format of the telemetry flight recorder (DESIGN.md §11).
//
// An archive is a directory of segment files:
//
//   seg-00000001.asar        sealed segment (footer + trailer present)
//   seg-00000002.asar.open   active segment (crash-recoverable prefix)
//
// A segment is a stream of frames in the live wire framing
// (src/net/frame.h: 16-byte header with magic/version/type/length and
// a CRC-32 of the payload), using record types from a range disjoint
// from the live protocol's message types:
//
//   kMetaRecord   (0x40)  first frame: run parameters (seed, slaves,
//                         fault, durations) — enough to replay
//   kSampleRecord (0x41)  one collection round: kind, node, seq, now,
//                         watermark, attempts, ok, payload bytes
//   kTruthRecord  (0x42)  ground truth + cluster counters, written
//                         when the recording run ends
//   kFooterRecord (0x43)  record counts + time range, sealed segments
//   kCheckpointRecord
//                 (0x44)  periodic full-state snapshot (format v2):
//                         per-stream seq watermarks plus the latest
//                         sadc metric vector per node, so a reader can
//                         seek into a segment (the footer indexes the
//                         checkpoints by time and file offset) instead
//                         of replaying from record zero
//
// A sealed segment ends with a fixed 16-byte raw trailer:
//
//   offset  size  field
//   0       4     magic 0x41534654 ("ASFT"), big-endian
//   4       4     format version (big-endian)
//   8       8     file offset of the footer frame (big-endian)
//
// so a reader can locate the footer without scanning — and any torn or
// truncated seal is detectable because the trailer is the very last
// thing written before fsync + rename-into-place. Active segments have
// no footer/trailer; on crash-recovery open the reader walks frames
// sequentially and tolerates a torn final record (the committed prefix
// is intact because records hit the file with unbuffered writes).
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/frame.h"
#include "rpc/collection_tap.h"
#include "rpc/wire.h"

namespace asdf::archive {

/// Raised on unreadable, corrupt, or version-skewed archives.
class ArchiveError : public std::runtime_error {
 public:
  explicit ArchiveError(const std::string& what)
      : std::runtime_error(what) {}
};

// v1: PR 5 shape. v2 adds checkpoint records and the footer's
// checkpoint index; v1 archives remain fully readable.
inline constexpr std::uint32_t kFormatVersion = 2;
inline constexpr std::uint32_t kMinReadVersion = 1;

// Archive record types share the frame header's u16 type field with
// the live protocol but start at 0x40, so a stray archive segment fed
// to a live decoder (or vice versa) is unmistakable.
inline constexpr net::MsgType kMetaRecord = static_cast<net::MsgType>(0x40);
inline constexpr net::MsgType kSampleRecord = static_cast<net::MsgType>(0x41);
inline constexpr net::MsgType kTruthRecord = static_cast<net::MsgType>(0x42);
inline constexpr net::MsgType kFooterRecord = static_cast<net::MsgType>(0x43);
inline constexpr net::MsgType kCheckpointRecord =
    static_cast<net::MsgType>(0x44);

inline constexpr std::uint32_t kTrailerMagic = 0x41534654u;  // "ASFT"
inline constexpr std::size_t kTrailerBytes = 16;

/// Run parameters stamped into every segment's first frame. Everything
/// `asdf_archive replay` needs to retrain the model and rebuild the
/// pipeline for a faithful re-run.
struct ArchiveMeta {
  // Format version of the segment this meta was decoded from (encode
  // always stamps kFormatVersion). Not a run parameter.
  std::uint32_t version = kFormatVersion;
  std::uint64_t seed = 0;
  int slaves = 0;
  std::string source;  // "sim" | "live" | "rpcd-sim" | "rpcd-proc"
  double duration = 0.0;
  double trainDuration = 0.0;
  double trainWarmup = 0.0;
  int centroids = 0;
  std::uint32_t faultType = 0;  // faults::FaultType as stored
  NodeId faultNode = 0;
  double faultStart = kNoTime;
  double faultEnd = kNoTime;
  double mixChangeTime = -1.0;
};

/// One archived collection round (the durable form of CollectSample).
/// `seq` numbers records per (kind, node) stream for gap diagnostics.
struct SampleRecord {
  rpc::CollectKind kind = rpc::CollectKind::kSadc;
  NodeId node = 0;
  std::int64_t seq = 0;
  double now = kNoTime;
  double watermark = kNoTime;
  int attempts = 1;
  bool ok = true;
  std::vector<std::uint8_t> payload;
};

/// Ground truth + cluster counters of the recording run, written when
/// it ends. Absent from archives whose recorder was killed mid-run —
/// replay then falls back to the meta frame's fault fields.
struct TruthRecord {
  int slaveIndex = -1;
  double faultStart = kNoTime;
  double faultEnd = kNoTime;
  double simulatedSeconds = 0.0;
  std::int64_t jobsSubmitted = 0;
  std::int64_t jobsCompleted = 0;
  std::int64_t tasksCompleted = 0;
  std::int64_t tasksFailed = 0;
  std::int64_t speculativeLaunches = 0;
  std::int64_t syncDroppedSeconds = 0;
};

/// Sequence watermark of one (kind, node) collection stream at a
/// checkpoint: the next seq the stream will archive and the timestamp
/// of its most recent record.
struct StreamState {
  rpc::CollectKind kind = rpc::CollectKind::kSadc;
  NodeId node = 0;
  std::int64_t nextSeq = 0;
  double lastNow = kNoTime;
};

/// Latest flattened sadc metric vector (metrics::flattenNodeVector
/// order: 64 node-level + 18 NIC metrics) a node had reported by
/// checkpoint time — the "full state" a seeking reader resumes from.
struct NodeState {
  NodeId node = 0;
  double sampleNow = kNoTime;
  std::vector<double> values;
};

/// Periodic full-state snapshot interleaved into segments (format v2).
struct CheckpointRecord {
  double now = kNoTime;
  std::vector<StreamState> streams;
  std::vector<NodeState> nodes;
};

/// Footer index entry locating one checkpoint frame inside its
/// segment: a reader seeks to `offset` and decodes forward from there.
struct CheckpointIndexEntry {
  double now = kNoTime;
  std::uint64_t offset = 0;  // file offset of the checkpoint frame
};

/// Per-segment index written as the sealed segment's last frame.
struct SegmentFooter {
  std::int64_t recordCount = 0;  // sample records only
  double firstNow = kNoTime;
  double lastNow = kNoTime;
  std::array<std::int64_t, rpc::kCollectKindCount> kindCounts{};
  std::int64_t payloadBytes = 0;
  std::vector<CheckpointIndexEntry> checkpoints;  // format v2
};

void encodeMeta(rpc::Encoder& enc, const ArchiveMeta& meta);
ArchiveMeta decodeMeta(rpc::Decoder& dec);

/// Encodes a sample straight from the observer callback (no
/// intermediate SampleRecord copy on the write path).
void encodeSample(rpc::Encoder& enc, const rpc::CollectSample& sample,
                  std::int64_t seq);
void encodeSample(rpc::Encoder& enc, const SampleRecord& rec);
SampleRecord decodeSample(rpc::Decoder& dec);

void encodeTruth(rpc::Encoder& enc, const TruthRecord& truth);
TruthRecord decodeTruth(rpc::Decoder& dec);

void encodeCheckpoint(rpc::Encoder& enc, const CheckpointRecord& cp);
CheckpointRecord decodeCheckpoint(rpc::Decoder& dec);

/// Footer layout depends on the segment's format version (the meta
/// frame's version field): v1 footers have no checkpoint index.
void encodeFooter(rpc::Encoder& enc, const SegmentFooter& footer);
SegmentFooter decodeFooter(rpc::Decoder& dec, std::uint32_t version);

std::vector<std::uint8_t> encodeTrailer(std::uint64_t footerOffset);
/// False when the 16 bytes are not a valid trailer of any readable
/// version (kMinReadVersion..kFormatVersion).
bool decodeTrailer(const std::uint8_t* data, std::size_t size,
                   std::uint64_t& footerOffset);

/// "seg-%08llu.asar" — sealed name; active segments append ".open".
std::string segmentFileName(std::uint64_t index);
inline constexpr const char* kOpenSuffix = ".open";

}  // namespace asdf::archive
