// ArchiveCollector — replay an archive through the live client path.
//
// Implements rpc::LiveCollector over an archive directory, so
// RpcClient's timeout/retry/breaker/health/byte-accounting machinery
// runs unchanged (ExperimentSpec.transport = replay). Each archived
// record keys on (kind, node, bit pattern of `now`): the fpt-core
// module schedule is deterministic, so a replayed run asks for exactly
// the timestamps the recording run fetched.
//
// Round outcomes reproduce faithfully:
//   * ok record, attempts = n  — the collector fails the first n-1
//     attempts of the round, then succeeds: the client re-derives the
//     same retried/degraded bookkeeping and charges the same failed-
//     attempt bytes the original run charged.
//   * !ok record               — every attempt fails; the client fails
//     the round, feeds its breaker, marks the node unmonitorable.
//   * missing key              — failed round (a partially recorded
//     archive degrades gracefully instead of faulting the pipeline).
//
// Breaker fast-fail rounds (attempts = 0) never reach the collector in
// either run, so they reproduce from the identical outcome history.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <tuple>

#include "archive/reader.h"
#include "rpc/live_collector.h"

namespace asdf::archive {

class ArchiveCollector final : public rpc::LiveCollector {
 public:
  /// Loads the archive (ArchiveReader rules; throws ArchiveError).
  explicit ArchiveCollector(const std::string& dir);

  const ArchiveMeta& meta() const { return reader_.meta(); }
  const std::optional<TruthRecord>& truth() const { return reader_.truth(); }
  const ArchiveReader& reader() const { return reader_; }

  int slaves() const override { return reader_.meta().slaves; }
  bool fetchSadc(NodeId node, SimTime now, metrics::SadcSnapshot& out,
                 std::size_t& responseBytes) override;
  bool fetchTt(NodeId node, SimTime now, SimTime watermark,
               std::vector<hadooplog::StateSample>& out,
               std::size_t& responseBytes) override;
  bool fetchDn(NodeId node, SimTime now, SimTime watermark,
               std::vector<hadooplog::StateSample>& out,
               std::size_t& responseBytes) override;
  bool fetchStrace(NodeId node, SimTime now, syscalls::TraceSecond& out,
                   std::size_t& responseBytes) override;

  /// Successful attempts served from the archive.
  long hits() const;
  /// Attempts for which no record exists (schedule divergence or a
  /// truncated archive) — zero on a faithful replay.
  long misses() const;
  /// Attempts failed to reproduce a recorded retry or failed round.
  long replayedFailures() const;

 private:
  struct Entry {
    const SampleRecord* rec = nullptr;
    int failuresServed = 0;  // of the rec->attempts - 1 recorded retries
  };
  /// nullptr = this attempt fails; otherwise the record to decode.
  const SampleRecord* attempt(rpc::CollectKind kind, NodeId node,
                              SimTime now);

  ArchiveReader reader_;
  mutable std::mutex mutex_;
  std::map<std::tuple<int, NodeId, std::uint64_t>, Entry> index_;
  long hits_ = 0;
  long misses_ = 0;
  long replayedFailures_ = 0;
};

}  // namespace asdf::archive
