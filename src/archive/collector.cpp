#include "archive/collector.h"

#include <bit>

#include "rpc/payloads.h"

namespace asdf::archive {
namespace {

// Timestamps key bit-exactly: the replayed module schedule computes
// the same doubles the recording run computed, not merely close ones.
std::uint64_t timeKey(SimTime now) {
  return std::bit_cast<std::uint64_t>(now);
}

}  // namespace

ArchiveCollector::ArchiveCollector(const std::string& dir) : reader_(dir) {
  for (const SampleRecord& rec : reader_.records()) {
    // Duplicate keys keep the first occurrence (a daemon-side archive
    // can hold one record per *served attempt* of a retried round).
    index_.emplace(std::make_tuple(static_cast<int>(rec.kind), rec.node,
                                   timeKey(rec.now)),
                   Entry{&rec, 0});
  }
}

const SampleRecord* ArchiveCollector::attempt(rpc::CollectKind kind,
                                              NodeId node, SimTime now) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(
      std::make_tuple(static_cast<int>(kind), node, timeKey(now)));
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  Entry& e = it->second;
  if (!e.rec->ok) {
    ++replayedFailures_;
    return nullptr;
  }
  if (e.failuresServed < e.rec->attempts - 1) {
    ++e.failuresServed;
    ++replayedFailures_;
    return nullptr;
  }
  ++hits_;
  return e.rec;
}

bool ArchiveCollector::fetchSadc(NodeId node, SimTime now,
                                 metrics::SadcSnapshot& out,
                                 std::size_t& responseBytes) {
  const SampleRecord* rec = attempt(rpc::CollectKind::kSadc, node, now);
  if (rec == nullptr) return false;
  rpc::Decoder dec(rec->payload);
  out = rpc::decodeSnapshot(dec);
  responseBytes = rec->payload.size();
  return true;
}

bool ArchiveCollector::fetchTt(NodeId node, SimTime now, SimTime /*watermark*/,
                               std::vector<hadooplog::StateSample>& out,
                               std::size_t& responseBytes) {
  const SampleRecord* rec = attempt(rpc::CollectKind::kTt, node, now);
  if (rec == nullptr) return false;
  rpc::Decoder dec(rec->payload);
  out = rpc::decodeSamples(dec);
  responseBytes = rec->payload.size();
  return true;
}

bool ArchiveCollector::fetchDn(NodeId node, SimTime now, SimTime /*watermark*/,
                               std::vector<hadooplog::StateSample>& out,
                               std::size_t& responseBytes) {
  const SampleRecord* rec = attempt(rpc::CollectKind::kDn, node, now);
  if (rec == nullptr) return false;
  rpc::Decoder dec(rec->payload);
  out = rpc::decodeSamples(dec);
  responseBytes = rec->payload.size();
  return true;
}

bool ArchiveCollector::fetchStrace(NodeId node, SimTime now,
                                   syscalls::TraceSecond& out,
                                   std::size_t& responseBytes) {
  const SampleRecord* rec = attempt(rpc::CollectKind::kStrace, node, now);
  if (rec == nullptr) return false;
  rpc::Decoder dec(rec->payload);
  out = rpc::decodeTrace(dec);
  responseBytes = rec->payload.size();
  return true;
}

long ArchiveCollector::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

long ArchiveCollector::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

long ArchiveCollector::replayedFailures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return replayedFailures_;
}

}  // namespace asdf::archive
