#include "archive/writer.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "metrics/sadc.h"
#include "rpc/payloads.h"

namespace asdf::archive {
namespace {

std::string errnoString() { return std::strerror(errno); }

// mkdir -p: creates every missing component. EEXIST is fine (races
// with a concurrent writer or a pre-created directory).
void ensureDir(const std::string& dir) {
  std::string partial;
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') {
      partial.push_back(dir[i]);
      continue;
    }
    if (!partial.empty() && partial != "." && partial != "..") {
      if (::mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST) {
        throw ArchiveError("archive: mkdir " + partial + ": " +
                           errnoString());
      }
    }
    if (i < dir.size()) partial.push_back('/');
  }
  struct stat st{};
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    throw ArchiveError("archive: " + dir + " is not a directory");
  }
}

// Highest segment index present (sealed or .open); 0 when none.
std::uint64_t maxSegmentIndex(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    throw ArchiveError("archive: opendir " + dir + ": " + errnoString());
  }
  std::uint64_t maxIndex = 0;
  while (dirent* entry = ::readdir(d)) {
    unsigned long long index = 0;
    char suffix[16] = {0};
    // Matches both "seg-%08llu.asar" and its ".open" form.
    if (std::sscanf(entry->d_name, "seg-%8llu%15s", &index, suffix) == 2 &&
        (std::strcmp(suffix, ".asar") == 0 ||
         std::strcmp(suffix, ".asar.open") == 0)) {
      maxIndex = std::max<std::uint64_t>(maxIndex, index);
    }
  }
  ::closedir(d);
  return maxIndex;
}

void fsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;  // best effort: some filesystems refuse dir fds
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

ArchiveWriter::ArchiveWriter(ArchiveWriterOptions opts, ArchiveMeta meta)
    : opts_(std::move(opts)), meta_(std::move(meta)) {
  if (opts_.dir.empty()) {
    throw ArchiveError("archive: writer needs a directory");
  }
  ensureDir(opts_.dir);
  nextIndex_ = maxSegmentIndex(opts_.dir) + 1;
  std::lock_guard<std::mutex> lock(mutex_);
  openSegmentLocked();
}

ArchiveWriter::~ArchiveWriter() {
  try {
    close();
  } catch (const std::exception&) {
    // Destructor: the .open segment stays recoverable on disk.
  }
}

void ArchiveWriter::writeAllLocked(const std::uint8_t* data,
                                   std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd_, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ArchiveError("archive: write " + activePath_ + ": " +
                         errnoString());
    }
    done += static_cast<std::size_t>(n);
  }
  segmentBytes_ += static_cast<std::int64_t>(size);
  bytesWritten_ += static_cast<std::int64_t>(size);
}

void ArchiveWriter::writeFrameLocked(net::MsgType type,
                                     const rpc::Encoder& enc) {
  const std::vector<std::uint8_t> frame = net::encodeFrame(type, enc);
  writeAllLocked(frame.data(), frame.size());
}

void ArchiveWriter::openSegmentLocked() {
  activePath_ =
      opts_.dir + "/" + segmentFileName(nextIndex_) + kOpenSuffix;
  fd_ = ::open(activePath_.c_str(),
               O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw ArchiveError("archive: open " + activePath_ + ": " +
                       errnoString());
  }
  segmentBytes_ = 0;
  segmentStartNow_ = kNoTime;
  footer_ = SegmentFooter{};
  rpc::Encoder enc;
  encodeMeta(enc, meta_);
  writeFrameLocked(kMetaRecord, enc);
}

void ArchiveWriter::sealSegmentLocked() {
  const std::uint64_t footerOffset =
      static_cast<std::uint64_t>(segmentBytes_);
  rpc::Encoder enc;
  encodeFooter(enc, footer_);
  writeFrameLocked(kFooterRecord, enc);
  const std::vector<std::uint8_t> trailer = encodeTrailer(footerOffset);
  writeAllLocked(trailer.data(), trailer.size());
  // Durability order: data + footer + trailer must be on disk before
  // the rename publishes the sealed name.
  if (::fsync(fd_) != 0) {
    throw ArchiveError("archive: fsync " + activePath_ + ": " +
                       errnoString());
  }
  ::close(fd_);
  fd_ = -1;
  const std::string sealedPath =
      activePath_.substr(0, activePath_.size() - std::strlen(kOpenSuffix));
  if (::rename(activePath_.c_str(), sealedPath.c_str()) != 0) {
    throw ArchiveError("archive: rename " + activePath_ + ": " +
                       errnoString());
  }
  fsyncDir(opts_.dir);
  const std::uint64_t sealedIndex = nextIndex_;
  ++segmentsSealed_;
  ++nextIndex_;
  // The sealed name is durable at this point — hand the segment to
  // whoever compacts (the hook must not reenter this writer).
  if (opts_.onSeal) opts_.onSeal(sealedPath, sealedIndex);
}

void ArchiveWriter::maybeRotateLocked(double now) {
  if (footer_.recordCount == 0) return;  // never seal an empty segment
  const bool bySize =
      segmentBytes_ >= static_cast<std::int64_t>(opts_.maxSegmentBytes);
  const bool byAge = segmentStartNow_ != kNoTime && now != kNoTime &&
                     now - segmentStartNow_ >= opts_.maxSegmentSeconds;
  if (!bySize && !byAge) return;
  sealSegmentLocked();
  openSegmentLocked();
}

void ArchiveWriter::writeSampleLocked(const rpc::CollectSample& sample,
                                      std::int64_t seq) {
  maybeRotateLocked(sample.now);
  rpc::Encoder enc;
  encodeSample(enc, sample, seq);
  writeFrameLocked(kSampleRecord, enc);
  if (footer_.recordCount == 0) {
    segmentStartNow_ = sample.now;
    footer_.firstNow = sample.now;
  }
  footer_.lastNow = sample.now;
  ++footer_.recordCount;
  ++footer_.kindCounts[static_cast<int>(sample.kind)];
  footer_.payloadBytes += static_cast<std::int64_t>(sample.payloadSize);
  ++recordsWritten_;

  // Checkpoint state rides on every written record (trim appends
  // included, which is why this lives here and not in onSample).
  StreamState& stream =
      streams_[{static_cast<int>(sample.kind), sample.node}];
  stream.kind = sample.kind;
  stream.node = sample.node;
  stream.nextSeq = seq + 1;
  stream.lastNow = sample.now;
  if (sample.kind == rpc::CollectKind::kSadc && sample.ok &&
      sample.payloadSize > 0) {
    lastSadc_[sample.node] = {
        sample.now, std::vector<std::uint8_t>(
                        sample.payload, sample.payload + sample.payloadSize)};
  }

  if (opts_.checkpointSeconds > 0 && sample.now != kNoTime) {
    if (lastCheckpointNow_ == kNoTime) {
      lastCheckpointNow_ = sample.now;  // cadence starts at first sample
    } else if (sample.now - lastCheckpointNow_ >= opts_.checkpointSeconds) {
      writeCheckpointLocked(sample.now);
      lastCheckpointNow_ = sample.now;
    }
  }
}

void ArchiveWriter::writeCheckpointLocked(double now) {
  CheckpointRecord cp;
  cp.now = now;
  cp.streams.reserve(streams_.size());
  for (const auto& [key, stream] : streams_) cp.streams.push_back(stream);
  for (const auto& [node, entry] : lastSadc_) {
    // The payload is opaque at this layer; tolerate bytes that are not
    // a sadc snapshot (synthetic test payloads) by skipping the node.
    try {
      rpc::Decoder dec(entry.second);
      const metrics::SadcSnapshot snap = rpc::decodeSnapshot(dec);
      if (snap.node.size() != metrics::kNodeMetricCount ||
          snap.nic.size() != metrics::kNicMetricCount) {
        continue;
      }
      NodeState state;
      state.node = node;
      state.sampleNow = entry.first;
      state.values = metrics::flattenNodeVector(snap);
      cp.nodes.push_back(std::move(state));
    } catch (const std::exception&) {
    }
  }
  const std::uint64_t offset = static_cast<std::uint64_t>(segmentBytes_);
  rpc::Encoder enc;
  encodeCheckpoint(enc, cp);
  writeFrameLocked(kCheckpointRecord, enc);
  footer_.checkpoints.push_back({now, offset});
  ++checkpointsWritten_;
}

void ArchiveWriter::onSample(const rpc::CollectSample& sample) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;
  const std::int64_t seq =
      nextSeq_[{static_cast<int>(sample.kind), sample.node}]++;
  writeSampleLocked(sample, seq);
}

void ArchiveWriter::append(const SampleRecord& rec) {
  rpc::CollectSample sample;
  sample.kind = rec.kind;
  sample.node = rec.node;
  sample.now = rec.now;
  sample.watermark = rec.watermark;
  sample.attempts = rec.attempts;
  sample.ok = rec.ok;
  sample.payload = rec.payload.data();
  sample.payloadSize = rec.payload.size();

  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;
  writeSampleLocked(sample, rec.seq);  // original seq preserved
}

void ArchiveWriter::writeTruth(const TruthRecord& truth) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;
  rpc::Encoder enc;
  encodeTruth(enc, truth);
  writeFrameLocked(kTruthRecord, enc);
}

void ArchiveWriter::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;
  sealSegmentLocked();
}

void ArchiveWriter::abandonForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
}

long ArchiveWriter::recordsWritten() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recordsWritten_;
}

long ArchiveWriter::segmentsSealed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segmentsSealed_;
}

long ArchiveWriter::checkpointsWritten() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return checkpointsWritten_;
}

std::int64_t ArchiveWriter::bytesWritten() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytesWritten_;
}

std::int64_t ArchiveWriter::activeSegmentBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segmentBytes_;
}

}  // namespace asdf::archive
