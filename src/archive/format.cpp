#include "archive/format.h"

#include "common/bytes.h"
#include "common/strings.h"

namespace asdf::archive {
namespace {

// XDR-opaque payload bytes ride in the codec's string type (length
// prefix + zero padding); std::string carries arbitrary bytes.
std::string bytesToString(const std::uint8_t* data, std::size_t size) {
  return std::string(reinterpret_cast<const char*>(data), size);
}

std::vector<std::uint8_t> stringToBytes(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

}  // namespace

void encodeMeta(rpc::Encoder& enc, const ArchiveMeta& meta) {
  enc.putU32(kFormatVersion);
  enc.putI64(static_cast<std::int64_t>(meta.seed));
  enc.putU32(static_cast<std::uint32_t>(meta.slaves));
  enc.putString(meta.source);
  enc.putDouble(meta.duration);
  enc.putDouble(meta.trainDuration);
  enc.putDouble(meta.trainWarmup);
  enc.putU32(static_cast<std::uint32_t>(meta.centroids));
  enc.putU32(meta.faultType);
  enc.putI64(static_cast<std::int64_t>(meta.faultNode));
  enc.putDouble(meta.faultStart);
  enc.putDouble(meta.faultEnd);
  enc.putDouble(meta.mixChangeTime);
}

ArchiveMeta decodeMeta(rpc::Decoder& dec) {
  const std::uint32_t version = dec.getU32();
  if (version < kMinReadVersion || version > kFormatVersion) {
    throw ArchiveError("archive: format version " + std::to_string(version) +
                       " (this build reads versions " +
                       std::to_string(kMinReadVersion) + ".." +
                       std::to_string(kFormatVersion) + ")");
  }
  ArchiveMeta meta;
  meta.version = version;
  meta.seed = static_cast<std::uint64_t>(dec.getI64());
  meta.slaves = static_cast<int>(dec.getU32());
  meta.source = dec.getString();
  meta.duration = dec.getDouble();
  meta.trainDuration = dec.getDouble();
  meta.trainWarmup = dec.getDouble();
  meta.centroids = static_cast<int>(dec.getU32());
  meta.faultType = dec.getU32();
  meta.faultNode = static_cast<NodeId>(dec.getI64());
  meta.faultStart = dec.getDouble();
  meta.faultEnd = dec.getDouble();
  meta.mixChangeTime = dec.getDouble();
  return meta;
}

namespace {

void encodeSampleFields(rpc::Encoder& enc, rpc::CollectKind kind, NodeId node,
                        std::int64_t seq, double now, double watermark,
                        int attempts, bool ok, const std::uint8_t* payload,
                        std::size_t payloadSize) {
  enc.putU32(static_cast<std::uint32_t>(kind));
  enc.putU32(static_cast<std::uint32_t>(node));
  enc.putI64(seq);
  enc.putDouble(now);
  enc.putDouble(watermark);
  enc.putU32(static_cast<std::uint32_t>(attempts));
  enc.putU32(ok ? 1 : 0);
  enc.putString(bytesToString(payload, payloadSize));
}

}  // namespace

void encodeSample(rpc::Encoder& enc, const rpc::CollectSample& sample,
                  std::int64_t seq) {
  encodeSampleFields(enc, sample.kind, sample.node, seq, sample.now,
                     sample.watermark, sample.attempts, sample.ok,
                     sample.payload, sample.payloadSize);
}

void encodeSample(rpc::Encoder& enc, const SampleRecord& rec) {
  encodeSampleFields(enc, rec.kind, rec.node, rec.seq, rec.now, rec.watermark,
                     rec.attempts, rec.ok, rec.payload.data(),
                     rec.payload.size());
}

SampleRecord decodeSample(rpc::Decoder& dec) {
  SampleRecord rec;
  const std::uint32_t kind = dec.getU32();
  if (kind >= static_cast<std::uint32_t>(rpc::kCollectKindCount)) {
    throw ArchiveError("archive: unknown collect kind " +
                       std::to_string(kind));
  }
  rec.kind = static_cast<rpc::CollectKind>(kind);
  rec.node = static_cast<NodeId>(dec.getU32());
  rec.seq = dec.getI64();
  rec.now = dec.getDouble();
  rec.watermark = dec.getDouble();
  rec.attempts = static_cast<int>(dec.getU32());
  rec.ok = dec.getU32() != 0;
  rec.payload = stringToBytes(dec.getString());
  return rec;
}

void encodeTruth(rpc::Encoder& enc, const TruthRecord& truth) {
  enc.putI64(truth.slaveIndex);
  enc.putDouble(truth.faultStart);
  enc.putDouble(truth.faultEnd);
  enc.putDouble(truth.simulatedSeconds);
  enc.putI64(truth.jobsSubmitted);
  enc.putI64(truth.jobsCompleted);
  enc.putI64(truth.tasksCompleted);
  enc.putI64(truth.tasksFailed);
  enc.putI64(truth.speculativeLaunches);
  enc.putI64(truth.syncDroppedSeconds);
}

TruthRecord decodeTruth(rpc::Decoder& dec) {
  TruthRecord truth;
  truth.slaveIndex = static_cast<int>(dec.getI64());
  truth.faultStart = dec.getDouble();
  truth.faultEnd = dec.getDouble();
  truth.simulatedSeconds = dec.getDouble();
  truth.jobsSubmitted = dec.getI64();
  truth.jobsCompleted = dec.getI64();
  truth.tasksCompleted = dec.getI64();
  truth.tasksFailed = dec.getI64();
  truth.speculativeLaunches = dec.getI64();
  truth.syncDroppedSeconds = dec.getI64();
  return truth;
}

void encodeCheckpoint(rpc::Encoder& enc, const CheckpointRecord& cp) {
  enc.putDouble(cp.now);
  enc.putU32(static_cast<std::uint32_t>(cp.streams.size()));
  for (const StreamState& s : cp.streams) {
    enc.putU32(static_cast<std::uint32_t>(s.kind));
    enc.putU32(static_cast<std::uint32_t>(s.node));
    enc.putI64(s.nextSeq);
    enc.putDouble(s.lastNow);
  }
  enc.putU32(static_cast<std::uint32_t>(cp.nodes.size()));
  for (const NodeState& n : cp.nodes) {
    enc.putU32(static_cast<std::uint32_t>(n.node));
    enc.putDouble(n.sampleNow);
    enc.putDoubleVector(n.values);
  }
}

CheckpointRecord decodeCheckpoint(rpc::Decoder& dec) {
  CheckpointRecord cp;
  cp.now = dec.getDouble();
  const std::uint32_t nStreams = dec.getU32();
  cp.streams.reserve(nStreams);
  for (std::uint32_t i = 0; i < nStreams; ++i) {
    StreamState s;
    const std::uint32_t kind = dec.getU32();
    if (kind >= static_cast<std::uint32_t>(rpc::kCollectKindCount)) {
      throw ArchiveError("archive: checkpoint stream has unknown kind " +
                         std::to_string(kind));
    }
    s.kind = static_cast<rpc::CollectKind>(kind);
    s.node = static_cast<NodeId>(dec.getU32());
    s.nextSeq = dec.getI64();
    s.lastNow = dec.getDouble();
    cp.streams.push_back(s);
  }
  const std::uint32_t nNodes = dec.getU32();
  cp.nodes.reserve(nNodes);
  for (std::uint32_t i = 0; i < nNodes; ++i) {
    NodeState n;
    n.node = static_cast<NodeId>(dec.getU32());
    n.sampleNow = dec.getDouble();
    n.values = dec.getDoubleVector();
    cp.nodes.push_back(std::move(n));
  }
  return cp;
}

void encodeFooter(rpc::Encoder& enc, const SegmentFooter& footer) {
  enc.putI64(footer.recordCount);
  enc.putDouble(footer.firstNow);
  enc.putDouble(footer.lastNow);
  for (std::int64_t count : footer.kindCounts) enc.putI64(count);
  enc.putI64(footer.payloadBytes);
  enc.putU32(static_cast<std::uint32_t>(footer.checkpoints.size()));
  for (const CheckpointIndexEntry& cp : footer.checkpoints) {
    enc.putDouble(cp.now);
    enc.putI64(static_cast<std::int64_t>(cp.offset));
  }
}

SegmentFooter decodeFooter(rpc::Decoder& dec, std::uint32_t version) {
  SegmentFooter footer;
  footer.recordCount = dec.getI64();
  footer.firstNow = dec.getDouble();
  footer.lastNow = dec.getDouble();
  for (std::int64_t& count : footer.kindCounts) count = dec.getI64();
  footer.payloadBytes = dec.getI64();
  if (version >= 2) {
    const std::uint32_t n = dec.getU32();
    footer.checkpoints.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      CheckpointIndexEntry cp;
      cp.now = dec.getDouble();
      cp.offset = static_cast<std::uint64_t>(dec.getI64());
      footer.checkpoints.push_back(cp);
    }
  }
  return footer;
}

std::vector<std::uint8_t> encodeTrailer(std::uint64_t footerOffset) {
  std::vector<std::uint8_t> out;
  out.reserve(kTrailerBytes);
  bytes::putU32(out, kTrailerMagic);
  bytes::putU32(out, kFormatVersion);
  bytes::putU64(out, footerOffset);
  return out;
}

bool decodeTrailer(const std::uint8_t* data, std::size_t size,
                   std::uint64_t& footerOffset) {
  if (size != kTrailerBytes) return false;
  if (bytes::readU32(data) != kTrailerMagic) return false;
  const std::uint32_t version = bytes::readU32(data + 4);
  if (version < kMinReadVersion || version > kFormatVersion) return false;
  footerOffset = bytes::readU64(data + 8);
  return true;
}

std::string segmentFileName(std::uint64_t index) {
  return strformat("seg-%08llu.asar",
                   static_cast<unsigned long long>(index));
}

}  // namespace asdf::archive
