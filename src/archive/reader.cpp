#include "archive/reader.h"

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "archive/writer.h"

namespace asdf::archive {
namespace {

struct SegmentPath {
  std::string path;
  std::uint64_t index = 0;
  bool sealed = false;
};

std::vector<SegmentPath> listSegments(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    throw ArchiveError("archive: cannot open directory " + dir);
  }
  std::vector<SegmentPath> out;
  while (dirent* entry = ::readdir(d)) {
    unsigned long long index = 0;
    char suffix[16] = {0};
    if (std::sscanf(entry->d_name, "seg-%8llu%15s", &index, suffix) != 2) {
      continue;
    }
    SegmentPath sp;
    if (std::strcmp(suffix, ".asar") == 0) {
      sp.sealed = true;
    } else if (std::strcmp(suffix, ".asar.open") == 0) {
      sp.sealed = false;
    } else {
      continue;
    }
    sp.index = index;
    sp.path = dir + "/" + entry->d_name;
    out.push_back(std::move(sp));
  }
  ::closedir(d);
  std::sort(out.begin(), out.end(),
            [](const SegmentPath& a, const SegmentPath& b) {
              return a.index < b.index;
            });
  return out;
}

std::vector<std::uint8_t> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ArchiveError("archive: cannot read " + path);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

}  // namespace

ArchiveReader::ArchiveReader(const std::string& dir) {
  const std::vector<SegmentPath> paths = listSegments(dir);
  if (paths.empty()) {
    throw ArchiveError("archive: no segments in " + dir);
  }
  for (const SegmentPath& sp : paths) {
    loadSegment(sp.path, sp.index, sp.sealed);
  }
}

void ArchiveReader::loadSegment(const std::string& path, std::uint64_t index,
                                bool sealed) {
  const std::vector<std::uint8_t> bytes = readFile(path);
  SegmentInfo info;
  info.path = path;
  info.index = index;
  info.sealed = sealed;
  info.fileBytes = static_cast<std::int64_t>(bytes.size());

  std::size_t framedBytes = bytes.size();
  std::uint64_t footerOffset = 0;
  if (sealed) {
    if (bytes.size() < kTrailerBytes) {
      throw ArchiveError("archive: " + path + ": sealed segment shorter "
                         "than its trailer");
    }
    framedBytes = bytes.size() - kTrailerBytes;
    if (!decodeTrailer(bytes.data() + framedBytes, kTrailerBytes,
                       footerOffset)) {
      throw ArchiveError("archive: " + path + ": invalid trailer");
    }
    if (footerOffset >= framedBytes) {
      throw ArchiveError("archive: " + path + ": trailer points past "
                         "the footer region");
    }
  }

  net::FrameDecoder decoder;
  decoder.feed(bytes.data(), framedBytes);
  if (decoder.error() != net::FrameDecoder::Error::kNone) {
    throw ArchiveError("archive: " + path + ": frame decode failed (" +
                       net::frameErrorName(decoder.error()) + ")");
  }

  bool sawMeta = false;
  bool sawFooter = false;
  std::uint32_t segVersion = kFormatVersion;
  SegmentFooter footer;
  SegmentFooter counted;
  std::vector<CheckpointIndexEntry> checkpointsSeen;
  std::size_t offset = 0;  // file offset of the frame being decoded
  net::Frame frame;
  while (decoder.next(frame)) {
    const std::size_t frameStart = offset;
    offset += net::kFrameHeaderBytes + frame.payload.size();
    if (sawFooter) {
      throw ArchiveError("archive: " + path + ": frames after the footer");
    }
    rpc::Decoder dec(frame.payload);
    if (!sawMeta) {
      if (frame.type != kMetaRecord) {
        throw ArchiveError("archive: " + path + ": first frame is not a "
                           "meta record");
      }
      // Segments written by later sessions in the same directory carry
      // their own meta; the archive's parameters come from the first.
      const ArchiveMeta meta = decodeMeta(dec);
      segVersion = meta.version;
      if (segments_.empty()) meta_ = meta;
      sawMeta = true;
    } else if (frame.type == kSampleRecord) {
      SampleRecord rec = decodeSample(dec);
      if (counted.recordCount == 0) counted.firstNow = rec.now;
      counted.lastNow = rec.now;
      ++counted.recordCount;
      ++counted.kindCounts[static_cast<int>(rec.kind)];
      counted.payloadBytes += static_cast<std::int64_t>(rec.payload.size());
      records_.push_back(std::move(rec));
    } else if (frame.type == kTruthRecord) {
      truth_ = decodeTruth(dec);
    } else if (frame.type == kCheckpointRecord) {
      if (segVersion < 2) {
        throw ArchiveError("archive: " + path + ": checkpoint record in a "
                           "v1 segment");
      }
      const CheckpointRecord cp = decodeCheckpoint(dec);
      checkpointsSeen.push_back(
          {cp.now, static_cast<std::uint64_t>(frameStart)});
    } else if (frame.type == kFooterRecord) {
      if (sealed && frameStart != footerOffset) {
        throw ArchiveError("archive: " + path + ": footer frame not at "
                           "the trailer's offset");
      }
      footer = decodeFooter(dec, segVersion);
      sawFooter = true;
    } else if (frame.type == kMetaRecord) {
      throw ArchiveError("archive: " + path + ": duplicate meta record");
    } else {
      throw ArchiveError("archive: " + path + ": unexpected record type " +
                         std::to_string(static_cast<int>(frame.type)));
    }
    if (!dec.exhausted()) {
      throw ArchiveError("archive: " + path + ": record payload has "
                         "trailing bytes");
    }
  }

  if (!sawMeta) {
    throw ArchiveError("archive: " + path + ": no meta record");
  }
  if (sealed) {
    if (!sawFooter) {
      throw ArchiveError("archive: " + path + ": sealed segment has no "
                         "footer frame");
    }
    if (decoder.pendingBytes() != 0) {
      throw ArchiveError("archive: " + path + ": sealed segment has " +
                         std::to_string(decoder.pendingBytes()) +
                         " unframed bytes");
    }
    if (footer.recordCount != counted.recordCount ||
        footer.kindCounts != counted.kindCounts ||
        footer.payloadBytes != counted.payloadBytes ||
        (footer.recordCount > 0 && (footer.firstNow != counted.firstNow ||
                                    footer.lastNow != counted.lastNow))) {
      throw ArchiveError("archive: " + path + ": footer index disagrees "
                         "with the records present");
    }
    // The checkpoint index must locate exactly the checkpoint frames
    // present — a stale offset would send a seeking reader into the
    // middle of some other record.
    if (footer.checkpoints.size() != checkpointsSeen.size()) {
      throw ArchiveError("archive: " + path + ": footer checkpoint index "
                         "disagrees with the checkpoints present");
    }
    for (std::size_t i = 0; i < checkpointsSeen.size(); ++i) {
      if (footer.checkpoints[i].now != checkpointsSeen[i].now ||
          footer.checkpoints[i].offset != checkpointsSeen[i].offset) {
        throw ArchiveError("archive: " + path + ": footer checkpoint " +
                           std::to_string(i) + " offset/time mismatch");
      }
    }
  } else {
    if (sawFooter) {
      // A crash between footer write and rename: the segment is
      // complete in content, only the sealed name is missing.
    }
    info.tornTailBytes = decoder.pendingBytes();
  }

  info.version = segVersion;
  info.records = counted.recordCount;
  info.checkpoints = static_cast<std::int64_t>(checkpointsSeen.size());
  info.firstNow = counted.firstNow;
  info.lastNow = counted.lastNow;
  segments_.push_back(std::move(info));
}

double ArchiveReader::firstNow() const {
  for (const SegmentInfo& s : segments_) {
    if (s.records > 0) return s.firstNow;
  }
  return kNoTime;
}

double ArchiveReader::lastNow() const {
  double last = kNoTime;
  for (const SegmentInfo& s : segments_) {
    if (s.records > 0) last = s.lastNow;
  }
  return last;
}

std::size_t ArchiveReader::tornTailBytes() const {
  std::size_t total = 0;
  for (const SegmentInfo& s : segments_) total += s.tornTailBytes;
  return total;
}

ArchiveReader::VerifyResult ArchiveReader::verify(const std::string& dir) {
  VerifyResult out;
  try {
    const ArchiveReader reader(dir);
    out.ok = true;
    out.recordsVerified = static_cast<std::int64_t>(reader.records().size());
    out.tornTailBytes = reader.tornTailBytes();
    out.segments = reader.segments();
  } catch (const std::exception& e) {
    out.ok = false;
    out.errors.push_back(e.what());
  }
  return out;
}

std::int64_t trimArchive(const std::string& srcDir, const std::string& dstDir,
                         double fromTime, double toTime) {
  const ArchiveReader reader(srcDir);
  ArchiveWriterOptions opts;
  opts.dir = dstDir;
  ArchiveWriter writer(opts, reader.meta());
  std::int64_t kept = 0;
  for (const SampleRecord& rec : reader.records()) {
    if (rec.now < fromTime || rec.now > toTime) continue;
    writer.append(rec);
    ++kept;
  }
  if (reader.truth().has_value()) writer.writeTruth(*reader.truth());
  writer.close();
  return kept;
}

}  // namespace asdf::archive
