// ArchiveWriter — the flight recorder's append side.
//
// Implements rpc::CollectionObserver so it can be plugged into any of
// the collection plane's taps (RpcHub, RpcClient, RpcdServer) and
// persists every observed collection round into segment files under
// one directory (format.h). Durability contract:
//
//   * Records reach the file with unbuffered ::write() calls, so after
//     a SIGKILL the active segment holds every committed record plus
//     at most one torn tail — which the reader detects and skips.
//   * Sealing a segment writes footer + trailer, fsyncs the file,
//     renames ".asar.open" -> ".asar", then fsyncs the directory: a
//     sealed name is a promise that the footer index is durable.
//
// Segments rotate by size and by archived time span. A new writer in a
// non-empty directory continues numbering after the highest existing
// segment (daemon restarts append rather than clobber).
//
// Thread-safe: onSample() may be called from pool threads.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "archive/format.h"

namespace asdf::archive {

struct ArchiveWriterOptions {
  std::string dir;
  std::size_t maxSegmentBytes = 8u << 20;  // seal + rotate past this
  double maxSegmentSeconds = 600.0;        // archived (virtual) time span
  /// Checkpoint cadence in archived (virtual) seconds (format v2): a
  /// full-state snapshot is interleaved whenever this much archived
  /// time has passed since the previous one. 0 disables checkpoints.
  double checkpointSeconds = 60.0;
  /// Invoked after each segment seals (fsync + rename durable) with
  /// the sealed path and segment index — the hook that hands sealed
  /// segments to the tsdb compactor while recording continues. Called
  /// with the writer lock held: keep it cheap (queue push) and never
  /// call back into the writer.
  std::function<void(const std::string& sealedPath, std::uint64_t index)>
      onSeal;
};

class ArchiveWriter final : public rpc::CollectionObserver {
 public:
  /// Creates the directory when missing and opens the first segment
  /// (meta frame included) immediately, so even a zero-sample run
  /// leaves a replayable archive. Throws ArchiveError on I/O failure.
  ArchiveWriter(ArchiveWriterOptions opts, ArchiveMeta meta);
  ~ArchiveWriter() override;
  ArchiveWriter(const ArchiveWriter&) = delete;
  ArchiveWriter& operator=(const ArchiveWriter&) = delete;

  /// Collection tap: persists one observed round. Samples arriving
  /// after close() are dropped (daemon-shutdown race).
  void onSample(const rpc::CollectSample& sample) override;

  /// Re-archives an existing record verbatim (seq preserved) — the
  /// `asdf_archive trim` path.
  void append(const SampleRecord& rec);

  /// Writes the ground-truth record into the active segment. Call once
  /// when the recording run ends, before close().
  void writeTruth(const TruthRecord& truth);

  /// Seals the active segment. Idempotent.
  void close();

  /// Test hook: abandons the active segment without sealing it, as a
  /// SIGKILL would — the ".open" file keeps every committed record.
  void abandonForTest();

  long recordsWritten() const;
  long segmentsSealed() const;
  long checkpointsWritten() const;
  std::int64_t bytesWritten() const;
  /// Bytes committed to the active segment so far (test hook for the
  /// truncation sweep: offsets are exact because writes are unbuffered).
  std::int64_t activeSegmentBytes() const;

 private:
  void openSegmentLocked();
  void sealSegmentLocked();
  void maybeRotateLocked(double now);
  void writeSampleLocked(const rpc::CollectSample& sample, std::int64_t seq);
  void writeCheckpointLocked(double now);
  void writeFrameLocked(net::MsgType type, const rpc::Encoder& enc);
  void writeAllLocked(const std::uint8_t* data, std::size_t size);

  ArchiveWriterOptions opts_;
  ArchiveMeta meta_;

  mutable std::mutex mutex_;
  int fd_ = -1;
  std::string activePath_;
  std::uint64_t nextIndex_ = 1;
  std::int64_t segmentBytes_ = 0;
  double segmentStartNow_ = kNoTime;
  SegmentFooter footer_;
  std::map<std::pair<int, NodeId>, std::int64_t> nextSeq_;
  // Checkpoint state: per-stream watermarks fed by every written
  // record (including trim appends), plus the latest sadc payload per
  // node, decoded lazily at checkpoint time.
  std::map<std::pair<int, NodeId>, StreamState> streams_;
  std::map<NodeId, std::pair<double, std::vector<std::uint8_t>>> lastSadc_;
  double lastCheckpointNow_ = kNoTime;
  long recordsWritten_ = 0;
  long segmentsSealed_ = 0;
  long checkpointsWritten_ = 0;
  std::int64_t bytesWritten_ = 0;
};

}  // namespace asdf::archive
