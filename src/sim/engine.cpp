#include "sim/engine.h"

#include <cassert>
#include <utility>

namespace asdf::sim {

void SimEngine::push(SimTime at, Callback fn, int periodicId) {
  if (at < now_) at = now_;
  queue_.push(Event{at, nextSeq_++, std::move(fn), periodicId});
}

void SimEngine::scheduleAt(SimTime at, Callback fn) {
  push(at, std::move(fn), -1);
}

void SimEngine::scheduleAfter(SimTime delay, Callback fn) {
  push(now_ + (delay < 0 ? 0 : delay), std::move(fn), -1);
}

int SimEngine::addPeriodic(SimTime interval, Callback fn, SimTime phase) {
  assert(interval > 0);
  const int id = static_cast<int>(periodics_.size());
  periodics_.push_back(PeriodicTask{interval, std::move(fn), true});
  const SimTime first = now_ + (phase >= 0 ? phase : interval);
  // The queued event only holds the id; the callback lives in
  // periodics_ so cancelPeriodic can drop future firings.
  push(first, Callback{}, id);
  return id;
}

void SimEngine::cancelPeriodic(int id) {
  if (id >= 0 && static_cast<std::size_t>(id) < periodics_.size()) {
    periodics_[static_cast<std::size_t>(id)].active = false;
  }
}

bool SimEngine::step() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  assert(ev.at >= now_);
  now_ = ev.at;
  if (ev.periodicId >= 0) {
    auto& task = periodics_[static_cast<std::size_t>(ev.periodicId)];
    if (!task.active) return true;  // cancelled; swallow the firing
    // Re-arm before running so the callback can cancel itself.
    push(now_ + task.interval, Callback{}, ev.periodicId);
    task.fn();
  } else {
    ev.fn();
  }
  return true;
}

std::size_t SimEngine::runUntil(SimTime until) {
  std::size_t dispatched = 0;
  while (!queue_.empty() && queue_.top().at <= until) {
    if (!step()) break;
    ++dispatched;
  }
  if (now_ < until) now_ = until;
  return dispatched;
}

}  // namespace asdf::sim
