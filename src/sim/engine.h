// Discrete-event simulation engine.
//
// The whole reproduction runs on virtual time: the Hadoop substrate,
// the OS-metric models, the fault injectors, and the fpt-core
// scheduler are all driven by one SimEngine. Events at equal
// timestamps run in scheduling order (a strictly increasing sequence
// number breaks ties), which makes every run bit-reproducible for a
// given seed.
//
// The cluster substrate advances in 1-second ticks (the paper samples
// every data source at 1 Hz), while irregular events — job arrivals,
// task scheduling decisions, fault injection — are ordinary one-shot
// events scheduled at arbitrary times.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace asdf::sim {

class SimEngine {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time in seconds.
  SimTime now() const { return now_; }

  /// Schedules a one-shot callback at absolute time `at`. Times in the
  /// past are clamped to "immediately" (run at now()).
  void scheduleAt(SimTime at, Callback fn);

  /// Schedules a one-shot callback `delay` seconds from now.
  void scheduleAfter(SimTime delay, Callback fn);

  /// Registers a periodic callback with the given interval; the first
  /// firing happens at now() + phase (phase defaults to one interval).
  /// Returns an id usable with cancelPeriodic.
  int addPeriodic(SimTime interval, Callback fn, SimTime phase = -1.0);

  /// Stops a periodic callback; pending firings are dropped.
  void cancelPeriodic(int id);

  /// Runs events until virtual time `until` (inclusive). Events
  /// scheduled exactly at `until` do run. Returns the number of events
  /// dispatched.
  std::size_t runUntil(SimTime until);

  /// Runs a single event if one is pending; returns false when idle.
  bool step();

  /// True when no events are pending.
  bool idle() const { return queue_.empty(); }

  /// Timestamp of the earliest pending event; meaningless when idle().
  SimTime nextEventTime() const { return queue_.top().at; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
    int periodicId;  // -1 for one-shot
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  struct PeriodicTask {
    SimTime interval;
    Callback fn;
    bool active;
  };

  void push(SimTime at, Callback fn, int periodicId);

  SimTime now_ = 0.0;
  std::uint64_t nextSeq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<PeriodicTask> periodics_;
};

}  // namespace asdf::sim
