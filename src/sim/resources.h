// Per-node shared-resource models.
//
// The substrate advances in 1-second ticks. Within a tick every
// consumer (map/reduce task phases, HDFS block transfers, daemons,
// fault injectors) *requests* an amount of each resource it wants —
// CPU-core-seconds, disk bytes, NIC bytes — and the resource then
// *grants* either the full demand (when under capacity) or a
// proportional share (when oversubscribed). This processor-sharing
// model is what makes peer comparison meaningful: fault-free peers see
// similar utilization, while a CPUHog / DiskHog / lossy NIC distorts
// the grants (and therefore task progress and OS counters) on exactly
// one node.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace asdf::sim {

/// A capacity-per-tick resource with proportional sharing.
class ShareResource {
 public:
  ShareResource(std::string name, double capacityPerTick);

  /// Clears all demands at the start of a tick.
  void beginTick();

  /// Registers a demand; returns a handle valid until the next
  /// beginTick(). Demands must be non-negative.
  int request(double amount);

  /// Computes grants; call once after all request()s for the tick.
  void finalize();

  /// The amount granted for the handle (<= the requested amount).
  double granted(int handle) const;

  /// Fraction of the demand that was granted (1 when under capacity).
  double grantRatio() const { return grantRatio_; }

  double capacity() const { return capacity_; }
  void setCapacity(double capacity);

  /// Total demand this tick.
  double demand() const { return totalDemand_; }

  /// Total granted this tick (== min(demand, capacity)).
  double totalGranted() const;

  /// Utilization in [0, 1].
  double utilization() const;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  double capacity_;
  double totalDemand_ = 0.0;
  double grantRatio_ = 1.0;
  bool finalized_ = false;
  std::vector<double> demands_;
};

/// A node's CPU: `cores` core-seconds available per tick. The paper's
/// EC2 Large instances have two dual-core CPUs, so the default is 4.
class CpuResource : public ShareResource {
 public:
  explicit CpuResource(double cores = 4.0)
      : ShareResource("cpu", cores) {}
  double cores() const { return capacity(); }
};

/// A node's disk, in bytes per second, shared between reads and
/// writes. Sequential-scan HDFS traffic and log appends both land
/// here; the DiskHog fault saturates it.
class DiskResource : public ShareResource {
 public:
  explicit DiskResource(double bytesPerSec = 80.0e6)
      : ShareResource("disk", bytesPerSec) {}
};

/// A node's NIC, in payload bytes per second. Packet loss (the
/// PacketLoss fault) multiplies effective goodput by a TCP-collapse
/// factor: at 50% loss the achievable goodput is a few percent of
/// line rate, matching the "long block transfer times" of HADOOP-2956.
class NicResource {
 public:
  explicit NicResource(double bytesPerSec = 100.0e6);

  void beginTick();
  int request(double bytes);
  void finalize();
  double granted(int handle) const;

  /// Sets the packet-loss probability in [0, 1); 0 disables the fault.
  void setLossRate(double loss);
  double lossRate() const { return loss_; }

  /// Goodput multiplier implied by the current loss rate.
  double goodputFactor() const;

  double lineRate() const { return line_.capacity(); }
  double utilization() const { return line_.utilization(); }
  double demand() const { return line_.demand(); }
  double totalGranted() const { return line_.totalGranted(); }

 private:
  ShareResource line_;
  double loss_ = 0.0;
};

}  // namespace asdf::sim
