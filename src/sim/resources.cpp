#include "sim/resources.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace asdf::sim {

ShareResource::ShareResource(std::string name, double capacityPerTick)
    : name_(std::move(name)), capacity_(capacityPerTick) {
  assert(capacity_ > 0.0);
}

void ShareResource::beginTick() {
  demands_.clear();
  totalDemand_ = 0.0;
  grantRatio_ = 1.0;
  finalized_ = false;
}

int ShareResource::request(double amount) {
  assert(!finalized_ && "request() after finalize()");
  assert(amount >= 0.0);
  demands_.push_back(amount);
  totalDemand_ += amount;
  return static_cast<int>(demands_.size()) - 1;
}

void ShareResource::finalize() {
  finalized_ = true;
  grantRatio_ =
      totalDemand_ <= capacity_ ? 1.0 : capacity_ / totalDemand_;
}

double ShareResource::granted(int handle) const {
  assert(finalized_ && "granted() before finalize()");
  assert(handle >= 0 && static_cast<std::size_t>(handle) < demands_.size());
  return demands_[static_cast<std::size_t>(handle)] * grantRatio_;
}

void ShareResource::setCapacity(double capacity) {
  assert(capacity > 0.0);
  capacity_ = capacity;
}

double ShareResource::totalGranted() const {
  return std::min(totalDemand_, capacity_);
}

double ShareResource::utilization() const {
  return std::min(1.0, totalDemand_ / capacity_);
}

NicResource::NicResource(double bytesPerSec) : line_("nic", bytesPerSec) {}

void NicResource::beginTick() { line_.beginTick(); }

int NicResource::request(double bytes) { return line_.request(bytes); }

void NicResource::finalize() { line_.finalize(); }

double NicResource::goodputFactor() const {
  if (loss_ <= 0.0) return 1.0;
  // TCP goodput collapses super-linearly with loss: each lost segment
  // halves the congestion window and forces retransmission. The
  // 1/(1 + 20 p) shape gives ~4.5% of line rate at p = 0.5 — the same
  // order as the stalled block transfers HADOOP-2956 reports.
  return (1.0 - loss_) / (1.0 + 20.0 * loss_);
}

double NicResource::granted(int handle) const {
  return line_.granted(handle) * goodputFactor();
}

void NicResource::setLossRate(double loss) {
  assert(loss >= 0.0 && loss < 1.0);
  loss_ = loss;
}

}  // namespace asdf::sim
